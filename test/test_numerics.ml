(* Unit and property tests for Rip_numerics. *)

module Matrix = Rip_numerics.Matrix
module Bracket = Rip_numerics.Bracket
module Newton = Rip_numerics.Newton
module Stats = Rip_numerics.Stats
module Prng = Rip_numerics.Prng

let check_float = Alcotest.(check (float 1e-9))
let qcheck = QCheck_alcotest.to_alcotest

(* --- Matrix ----------------------------------------------------------- *)

let test_solve_identity () =
  let a = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let x = Matrix.solve a [| 3.0; -4.0 |] in
  check_float "x0" 3.0 x.(0);
  check_float "x1" (-4.0) x.(1)

let test_solve_known_2x2 () =
  (* 2x + y = 5; x - y = 1  ->  x = 2, y = 1 *)
  let a = [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] in
  let x = Matrix.solve a [| 5.0; 1.0 |] in
  check_float "x" 2.0 x.(0);
  check_float "y" 1.0 x.(1)

let test_solve_needs_pivoting () =
  (* Zero leading pivot forces a row swap. *)
  let a = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Matrix.solve a [| 7.0; 9.0 |] in
  check_float "x" 9.0 x.(0);
  check_float "y" 7.0 x.(1)

let test_solve_singular () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" Matrix.Singular (fun () ->
      ignore (Matrix.solve a [| 1.0; 2.0 |]))

let test_solve_dimension_mismatch () =
  let a = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Matrix.solve: dimension mismatch") (fun () ->
      ignore (Matrix.solve a [| 1.0 |]))

let test_solve_preserves_inputs () =
  let a = [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] in
  let b = [| 5.0; 1.0 |] in
  ignore (Matrix.solve a b);
  check_float "a00 intact" 2.0 a.(0).(0);
  check_float "b0 intact" 5.0 b.(0)

let test_mat_vec () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = Matrix.mat_vec a [| 1.0; 1.0 |] in
  check_float "y0" 3.0 y.(0);
  check_float "y1" 7.0 y.(1)

let prop_solve_residual =
  QCheck.Test.make ~name:"random diagonally dominant systems solve" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 8) (list (float_range (-5.0) 5.0)))
    (fun rows ->
      let n = List.length rows in
      QCheck.assume (n > 0);
      let a =
        Array.init n (fun i ->
            let row = List.nth rows i in
            Array.init n (fun j ->
                let v =
                  match List.nth_opt row j with Some v -> v | None -> 0.3
                in
                if i = j then v +. 20.0 else v))
      in
      let b = Array.init n (fun i -> float_of_int (i + 1)) in
      let x = Matrix.solve a b in
      Matrix.residual_norm a x b < 1e-8)

(* --- Bracket ----------------------------------------------------------- *)

let test_bisect_linear () =
  let root =
    Bracket.bisect ~f:(fun x -> x -. 3.0) ~lo:0.0 ~hi:10.0 ~tol:1e-12
      ~max_iter:200
  in
  check_float "root" 3.0 root

let test_bisect_cos () =
  let root =
    Bracket.bisect ~f:cos ~lo:0.0 ~hi:3.0 ~tol:1e-12 ~max_iter:200
  in
  Alcotest.(check (float 1e-9)) "pi/2" (Float.pi /. 2.0) root

let test_bisect_requires_sign_change () =
  Alcotest.check_raises "no sign change"
    (Invalid_argument "Bracket.bisect: endpoints do not straddle zero")
    (fun () ->
      ignore
        (Bracket.bisect ~f:(fun x -> x +. 10.0) ~lo:0.0 ~hi:1.0 ~tol:1e-9
           ~max_iter:10))

let test_expand_bracket () =
  match
    Bracket.expand_bracket ~f:(fun x -> x -. 1000.0) ~lo:0.1 ~hi:1.0
      ~max_expansions:20
  with
  | Some (lo, hi) ->
      Alcotest.(check bool) "straddles" true (lo < 1000.0 && hi > 1000.0)
  | None -> Alcotest.fail "expected a bracket"

let test_expand_bracket_failure () =
  match
    Bracket.expand_bracket ~f:(fun _ -> 1.0) ~lo:0.1 ~hi:1.0
      ~max_expansions:4
  with
  | None -> ()
  | Some _ -> Alcotest.fail "no bracket exists"

let test_find_root () =
  match Bracket.find_root ~f:(fun x -> (x *. x) -. 2.0) ~lo:0.5 ~hi:1.0
          ~tol:1e-12 with
  | Bracket.Root r -> Alcotest.(check (float 1e-9)) "sqrt2" (sqrt 2.0) r
  | Bracket.No_sign_change _ -> Alcotest.fail "root exists"

let prop_bisect_monotone_cubic =
  (* find_root's bracket expansion is designed for the solver's positive
     half-line (Lagrange multipliers), so the root is kept positive. *)
  QCheck.Test.make ~name:"bisect solves monotone cubics" ~count:200
    QCheck.(pair (float_range 0.1 5.0) (float_range 0.1 50.0))
    (fun (a, b) ->
      let f x = (a *. x *. x *. x) +. x -. b in
      match Bracket.find_root ~f ~lo:1e-6 ~hi:1.0 ~tol:1e-12 with
      | Bracket.Root r -> Float.abs (f r) < 1e-6 *. (1.0 +. Float.abs b)
      | Bracket.No_sign_change _ -> false)

(* --- Newton ------------------------------------------------------------ *)

let test_newton_scalar_sqrt () =
  match
    Newton.solve_scalar
      ~f:(fun x -> (x *. x) -. 2.0)
      ~df:(fun x -> 2.0 *. x)
      ~init:1.0 ()
  with
  | Some r -> Alcotest.(check (float 1e-9)) "sqrt2" (sqrt 2.0) r
  | None -> Alcotest.fail "newton diverged"

let test_newton_scalar_divergence () =
  (* Zero derivative at the start kills the iteration. *)
  match
    Newton.solve_scalar ~f:(fun x -> (x *. x) +. 1.0) ~df:(fun _ -> 0.0)
      ~init:0.0 ()
  with
  | None -> ()
  | Some _ -> Alcotest.fail "expected divergence"

let test_newton_system () =
  (* x^2 + y^2 = 4 and x = y -> x = y = sqrt 2. *)
  let residual z =
    [| (z.(0) *. z.(0)) +. (z.(1) *. z.(1)) -. 4.0; z.(0) -. z.(1) |]
  in
  let jacobian z =
    [| [| 2.0 *. z.(0); 2.0 *. z.(1) |]; [| 1.0; -1.0 |] |]
  in
  let r = Newton.solve_system ~residual ~jacobian ~init:[| 1.0; 2.0 |] () in
  (match r.Newton.status with
  | Newton.Converged _ -> ()
  | _ -> Alcotest.fail "should converge");
  Alcotest.(check (float 1e-6)) "x" (sqrt 2.0) r.Newton.solution.(0);
  Alcotest.(check (float 1e-6)) "y" (sqrt 2.0) r.Newton.solution.(1)

let test_newton_lower_bounds () =
  (* The positive root is enforced by the bound even though the seed is
     nearer the negative one. *)
  let residual z = [| (z.(0) *. z.(0)) -. 4.0 |] in
  let jacobian z = [| [| 2.0 *. z.(0) |] |] in
  let r =
    Newton.solve_system ~residual ~jacobian ~init:[| 0.5 |]
      ~lower_bounds:[| 0.0 |] ()
  in
  (match r.Newton.status with
  | Newton.Converged _ ->
      Alcotest.(check (float 1e-6)) "positive root" 2.0 r.Newton.solution.(0)
  | _ -> Alcotest.fail "should converge")

let test_newton_singular_jacobian () =
  let residual z = [| z.(0) +. 1.0 |] in
  let jacobian _ = [| [| 0.0 |] |] in
  let r = Newton.solve_system ~residual ~jacobian ~init:[| 0.0 |] () in
  match r.Newton.status with
  | Newton.Diverged -> ()
  | _ -> Alcotest.fail "expected divergence on singular jacobian"

(* --- Stats -------------------------------------------------------------- *)

let test_stats_basics () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "mean empty" 0.0 (Stats.mean []);
  check_float "max" 3.0 (Stats.max_value [ 1.0; 3.0; 2.0 ]);
  check_float "min" 1.0 (Stats.min_value [ 2.0; 1.0; 3.0 ]);
  check_float "stddev pair" 1.0 (Stats.stddev [ 1.0; 3.0 ]);
  check_float "stddev singleton" 0.0 (Stats.stddev [ 5.0 ])

let test_percentile () =
  let xs = [ 4.0; 1.0; 3.0; 2.0 ] in
  check_float "p0" 1.0 (Stats.percentile 0.0 xs);
  check_float "p100" 4.0 (Stats.percentile 1.0 xs);
  check_float "median" 2.5 (Stats.percentile 0.5 xs)

let test_percentile_errors () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.percentile: empty list") (fun () ->
      ignore (Stats.percentile 0.5 []));
  Alcotest.check_raises "range"
    (Invalid_argument "Stats.percentile: p outside [0,1]") (fun () ->
      ignore (Stats.percentile 1.5 [ 1.0 ]))

let test_ratio_percent () =
  check_float "half" 50.0 (Stats.ratio_percent 100.0 50.0);
  check_float "zero base" 0.0 (Stats.ratio_percent 0.0 50.0);
  check_float "negative saving" (-50.0) (Stats.ratio_percent 100.0 150.0)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 30) (float_range (-100.) 100.))
    (fun xs ->
      let m = Stats.mean xs in
      m >= Stats.min_value xs -. 1e-9 && m <= Stats.max_value xs +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:300
    QCheck.(
      triple
        (list_of_size (Gen.int_range 1 20) (float_range (-10.) 10.))
        (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (xs, p1, p2) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile lo xs <= Stats.percentile hi xs +. 1e-12)

(* --- Prng --------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a)
      (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1L and b = Prng.create 2L in
  Alcotest.(check bool) "different streams" true
    (Prng.next_int64 a <> Prng.next_int64 b)

let test_prng_derive_is_stable () =
  let parent = Prng.create 7L in
  (* Consuming from the parent must not change derived streams. *)
  let d1 = Prng.derive parent 3L in
  ignore (Prng.next_int64 parent);
  let d2 = Prng.derive parent 3L in
  Alcotest.(check int64) "derive independent of consumption"
    (Prng.next_int64 d1) (Prng.next_int64 d2)

let test_prng_bool_varies () =
  let g = Prng.create 11L in
  let values = List.init 64 (fun _ -> Prng.bool g) in
  Alcotest.(check bool) "both outcomes" true
    (List.mem true values && List.mem false values)

let prop_float_range =
  QCheck.Test.make ~name:"float_range stays inside its bounds" ~count:500
    QCheck.(pair (float_range (-1000.) 1000.) (float_range 0.0 1000.))
    (fun (lo, span) ->
      let g = Prng.create (Int64.of_float (lo *. 7919.0)) in
      let v = Prng.float_range g lo (lo +. span +. 1e-9) in
      v >= lo && v < lo +. span +. 1e-9)

let prop_int_range =
  QCheck.Test.make ~name:"int_range covers its inclusive bounds" ~count:100
    QCheck.(pair (int_range (-50) 50) (int_range 0 20))
    (fun (lo, span) ->
      let g = Prng.create (Int64.of_int (lo + (span * 1000))) in
      let seen = Array.make (span + 1) false in
      for _ = 1 to 400 do
        let v = Prng.int_range g lo (lo + span) in
        if v < lo || v > lo + span then failwith "out of range";
        seen.(v - lo) <- true
      done;
      Array.for_all (fun x -> x) seen)

(* --- Cpu_clock -------------------------------------------------------- *)

let test_cpu_clock_monotone () =
  let module Cpu_clock = Rip_numerics.Cpu_clock in
  let t0 = Cpu_clock.thread_seconds () in
  (* Burn a little CPU so the clock has something to count. *)
  let acc = ref 0.0 in
  for i = 1 to 2_000_000 do
    acc := !acc +. sqrt (float_of_int i)
  done;
  ignore (Sys.opaque_identity !acc);
  let t1 = Cpu_clock.thread_seconds () in
  Alcotest.(check bool) "non-negative origin" true (t0 >= 0.0);
  Alcotest.(check bool) "advances under CPU work" true (t1 > t0)

let test_cpu_clock_ignores_sleep () =
  let module Cpu_clock = Rip_numerics.Cpu_clock in
  (* Only meaningful when the per-thread clock exists: sleeping burns
     wall time but (almost) no CPU time. *)
  if Cpu_clock.available then begin
    let t0 = Cpu_clock.thread_seconds () in
    Unix.sleepf 0.05;
    let elapsed = Cpu_clock.thread_seconds () -. t0 in
    Alcotest.(check bool)
      (Printf.sprintf "sleep not charged as CPU (%.4fs)" elapsed)
      true (elapsed < 0.04)
  end

let suite =
  [
    ( "numerics.matrix",
      [
        Alcotest.test_case "identity" `Quick test_solve_identity;
        Alcotest.test_case "known 2x2" `Quick test_solve_known_2x2;
        Alcotest.test_case "pivoting" `Quick test_solve_needs_pivoting;
        Alcotest.test_case "singular" `Quick test_solve_singular;
        Alcotest.test_case "dimension mismatch" `Quick
          test_solve_dimension_mismatch;
        Alcotest.test_case "inputs preserved" `Quick
          test_solve_preserves_inputs;
        Alcotest.test_case "mat_vec" `Quick test_mat_vec;
        qcheck prop_solve_residual;
      ] );
    ( "numerics.bracket",
      [
        Alcotest.test_case "linear" `Quick test_bisect_linear;
        Alcotest.test_case "cosine" `Quick test_bisect_cos;
        Alcotest.test_case "sign change required" `Quick
          test_bisect_requires_sign_change;
        Alcotest.test_case "expand" `Quick test_expand_bracket;
        Alcotest.test_case "expand failure" `Quick test_expand_bracket_failure;
        Alcotest.test_case "find_root" `Quick test_find_root;
        qcheck prop_bisect_monotone_cubic;
      ] );
    ( "numerics.newton",
      [
        Alcotest.test_case "scalar sqrt" `Quick test_newton_scalar_sqrt;
        Alcotest.test_case "scalar divergence" `Quick
          test_newton_scalar_divergence;
        Alcotest.test_case "2d system" `Quick test_newton_system;
        Alcotest.test_case "lower bounds" `Quick test_newton_lower_bounds;
        Alcotest.test_case "singular jacobian" `Quick
          test_newton_singular_jacobian;
      ] );
    ( "numerics.stats",
      [
        Alcotest.test_case "basics" `Quick test_stats_basics;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
        Alcotest.test_case "ratio percent" `Quick test_ratio_percent;
        qcheck prop_mean_bounded;
        qcheck prop_percentile_monotone;
      ] );
    ( "numerics.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick
          test_prng_seed_sensitivity;
        Alcotest.test_case "derive stability" `Quick
          test_prng_derive_is_stable;
        Alcotest.test_case "bool varies" `Quick test_prng_bool_varies;
        qcheck prop_float_range;
        qcheck prop_int_range;
      ] );
    ( "numerics.cpu_clock",
      [
        Alcotest.test_case "monotone under work" `Quick
          test_cpu_clock_monotone;
        Alcotest.test_case "sleep is not CPU time" `Quick
          test_cpu_clock_ignores_sleep;
      ] );
  ]
