(* The service subsystem: wire protocol round trips, solve-cache LRU
   semantics and key canonicalization, and an end-to-end in-process
   server over a socketpair. *)

module Protocol = Rip_service.Protocol
module Trace = Rip_obs.Trace
module Solve_cache = Rip_service.Solve_cache
module Server = Rip_service.Server
module Client = Rip_service.Client
module Net = Rip_net.Net
module Segment = Rip_net.Segment
module Zone = Rip_net.Zone
module Geometry = Rip_net.Geometry
module Rip = Rip_core.Rip

let process = Helpers.process

let sample_net ?(name = "proto") () =
  Net.create ~name
    ~segments:
      [
        Segment.of_layer Rip_tech.Layer.metal4 ~length:1800.0;
        Segment.of_layer Rip_tech.Layer.metal5 ~length:2200.0;
      ]
    ~zones:[ Zone.create ~z_start:1500.0 ~z_end:2600.0 ]
    ~driver_width:20.0 ~receiver_width:40.0 ()

let sample_solution =
  {
    Protocol.repeaters = [ (812.5, 40.0); (2437.5, 81.25) ];
    total_width = 121.25;
    delay = 3.25e-10;
    power_watts = 1.75e-3;
  }

let sample_stats =
  {
    Protocol.shard_id = "s0";
    uptime_seconds = 12.5;
    requests = 9;
    solved = 7;
    errors = 1;
    rejected_busy = 1;
    cache_hits = 3;
    cache_misses = 4;
    cache_evictions = 2;
    cache_size = 2;
    cache_capacity = 4;
    queue_wait_seconds = 0.75;
    solve_cpu_seconds = 1.5;
    timeouts = 2;
    degraded = 3;
    toobig = 1;
    cache_self_heals = 1;
    cache_replayed = 5;
    journal_bytes = 4096;
    journal_compactions = 1;
    in_flight = 2;
    queue_depth = 1;
    queue_wait_p50 = 0.125;
    queue_wait_p95 = 0.5;
    queue_wait_p99 = 0.625;
    solve_p50 = 0.25;
    solve_p95 = 0.875;
    solve_p99 = 1.0;
  }

(* --- Protocol ----------------------------------------------------------- *)

let frame_lines s =
  let lines = String.split_on_char '\n' s in
  match List.rev lines with "" :: rest -> List.rev rest | _ -> lines

let check_request_round_trip request =
  let wire = Protocol.print_request request in
  match Protocol.input_request (Protocol.reader_of_lines (frame_lines wire)) with
  | Ok (Some parsed) ->
      Alcotest.(check bool)
        (Printf.sprintf "request round trip %S" wire)
        true
        (Protocol.request_equal request parsed)
  | Ok None -> Alcotest.failf "round trip of %S hit end of stream" wire
  | Error e -> Alcotest.failf "round trip of %S failed: %s" wire e

let check_response_round_trip response =
  let wire = Protocol.print_response response in
  match
    Protocol.input_response (Protocol.reader_of_lines (frame_lines wire))
  with
  | Ok (Some parsed) ->
      Alcotest.(check bool)
        (Printf.sprintf "response round trip %S" wire)
        true
        (Protocol.response_equal response parsed)
  | Ok None -> Alcotest.failf "round trip of %S hit end of stream" wire
  | Error e -> Alcotest.failf "round trip of %S failed: %s" wire e

let test_protocol_request_round_trips () =
  check_request_round_trip Protocol.Ping;
  check_request_round_trip Protocol.Stats;
  check_request_round_trip Protocol.Metrics;
  check_request_round_trip Protocol.Health;
  check_request_round_trip Protocol.Shutdown;
  check_request_round_trip
    (Protocol.Solve
       {
         budget = 6.25e-10;
         deadline_ms = None;
         trace = None;
         net = sample_net ();
       });
  check_request_round_trip
    (Protocol.Solve
       {
         budget = 6.25e-10;
         deadline_ms = Some 50.0;
         trace = None;
         net = sample_net ();
       });
  check_request_round_trip
    (Protocol.Solve
       {
         budget = 6.25e-10;
         deadline_ms = Some 50.0;
         trace =
           Some
             (Trace.make_context ~scope:"loadgen" ~digest:"abc" ~seq:7 ());
         net = sample_net ();
       });
  (* A budget that needs all 17 significant digits must survive. *)
  check_request_round_trip
    (Protocol.Solve
       { budget = 1.0 /. 3.0 *. 1e-9; deadline_ms = Some (1.0 /. 3.0);
         trace = None;
         net = Helpers.Net.uniform ~name:"u"
           Rip_tech.Layer.metal4 ~length:5000.0 ~segment_count:3
           ~driver_width:30.0 ~receiver_width:60.0 })

let test_protocol_response_round_trips () =
  check_response_round_trip Protocol.Pong;
  check_response_round_trip Protocol.Bye;
  check_response_round_trip Protocol.Busy;
  check_response_round_trip Protocol.Timeout;
  check_response_round_trip Protocol.Toobig;
  List.iter
    (fun reason ->
      check_response_round_trip
        (Protocol.Degraded { reason; solution = sample_solution }))
    [ Protocol.Deadline_exceeded; Protocol.Overload; Protocol.Worker_lost ];
  List.iter
    (fun kind ->
      check_response_round_trip
        (Protocol.Error_frame { kind; message = "something went wrong" }))
    [
      Protocol.Protocol_error; Protocol.Infeasible_budget;
      Protocol.Invalid_net; Protocol.Internal_error;
    ];
  check_response_round_trip
    (Protocol.Result { served = Fresh; solution = sample_solution });
  check_response_round_trip
    (Protocol.Result { served = Cached; solution = sample_solution });
  (* The bare-wire answer: zero repeaters is a legal solution. *)
  check_response_round_trip
    (Protocol.Result
       {
         served = Fresh;
         solution =
           { Protocol.repeaters = []; total_width = 0.0; delay = 4.5e-10;
             power_watts = 0.0 };
       });
  check_response_round_trip (Protocol.Stats_frame sample_stats);
  check_response_round_trip
    (Protocol.Health_frame
       {
         Protocol.health_shard_id = "s0";
         health_in_flight = 3;
         health_queue_depth = 64;
         health_high_water = 48;
       });
  (* A METRICS frame carries its Prometheus body bytewise: comment
     lines, label syntax and full-precision floats must all survive. *)
  check_response_round_trip
    (Protocol.Metrics_frame
       "# HELP rip_requests_total SOLVE requests received\n\
        # TYPE rip_requests_total counter\n\
        rip_requests_total 9\n\
        rip_queue_wait_seconds_bucket{le=\"9.9999999999999995e-07\"} 0\n\
        rip_queue_wait_seconds_bucket{le=\"+Inf\"} 4\n\
        rip_queue_wait_seconds_sum 0.75\n\
        rip_queue_wait_seconds_count 4\n");
  check_response_round_trip (Protocol.Metrics_frame "")

let test_protocol_errors () =
  let request_of lines =
    Protocol.input_request (Protocol.reader_of_lines lines)
  in
  let response_of lines =
    Protocol.input_response (Protocol.reader_of_lines lines)
  in
  (match request_of [] with
  | Ok None -> ()
  | Ok (Some _) | Error _ -> Alcotest.fail "empty stream should be Ok None");
  (match request_of [ "FROBNICATE" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage verb should not parse");
  (match request_of [ "SOLVE not-a-float" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric budget should not parse");
  (* Truncated frames: the stream ends before END. *)
  (match request_of [ "SOLVE 1e-10"; "driver 20" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated SOLVE should not parse");
  (match response_of [ "RESULT fresh"; "width 10" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated RESULT should not parse");
  (match response_of [ "RESULT stale" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown served marker should not parse");
  (* Carriage returns from interactive socat/telnet sessions are fine. *)
  match request_of [ "PING\r" ] with
  | Ok (Some Protocol.Ping) -> ()
  | Ok _ | Error _ -> Alcotest.fail "trailing \\r should be stripped"

(* TRACE is best-effort context propagation: a malformed, truncated or
   duplicated header must degrade to an untraced request — never a
   protocol error, never a crash — while DEADLINE keeps its strict
   semantics in the same header line. *)
let solve_body_lines =
  lazy
    (let base =
       Protocol.print_request
         (Protocol.Solve
            {
              budget = 2.5e-10;
              deadline_ms = None;
              trace = None;
              net = sample_net ();
            })
     in
     List.tl (frame_lines base))

let parse_with_header header =
  Protocol.input_request
    (Protocol.reader_of_lines (header :: Lazy.force solve_body_lines))

let test_trace_header_parsing () =
  let ctx = Trace.make_context ~scope:"loadgen" ~digest:"abc" ~seq:3 () in
  let trace_tokens =
    Printf.sprintf "TRACE %s %s %d" ctx.Trace.trace_id
      ctx.Trace.parent_span_id ctx.Trace.flags
  in
  let expect_trace name header expected =
    match parse_with_header header with
    | Ok (Some (Protocol.Solve { trace; _ })) ->
        Alcotest.(check bool)
          name true
          (Option.equal Trace.context_equal trace expected)
    | Ok _ -> Alcotest.failf "%s: not a SOLVE" name
    | Error e -> Alcotest.failf "%s: %s" name e
  in
  let expect_deadline name header expected =
    match parse_with_header header with
    | Ok (Some (Protocol.Solve { deadline_ms; _ })) ->
        Alcotest.(check (option (float 1e-9))) name expected deadline_ms
    | Ok _ -> Alcotest.failf "%s: not a SOLVE" name
    | Error e -> Alcotest.failf "%s: %s" name e
  in
  expect_trace "valid TRACE parses" ("SOLVE 2.5e-10 " ^ trace_tokens)
    (Some ctx);
  expect_trace "TRACE then DEADLINE"
    ("SOLVE 2.5e-10 " ^ trace_tokens ^ " DEADLINE 50")
    (Some ctx);
  expect_trace "DEADLINE then TRACE"
    ("SOLVE 2.5e-10 DEADLINE 50 " ^ trace_tokens)
    (Some ctx);
  expect_deadline "deadline survives a leading TRACE"
    ("SOLVE 2.5e-10 " ^ trace_tokens ^ " DEADLINE 50")
    (Some 50.0);
  (* every malformed variant degrades to untraced, still Ok *)
  List.iter
    (fun (name, header) -> expect_trace name header None)
    [
      ("bad hex degrades", "SOLVE 2.5e-10 TRACE zz yy 0");
      ("short trace id degrades", "SOLVE 2.5e-10 TRACE abc 0000000000000000 0");
      ( "flags out of range degrade",
        Printf.sprintf "SOLVE 2.5e-10 TRACE %s %s 999" ctx.Trace.trace_id
          ctx.Trace.parent_span_id );
      ("truncated TRACE degrades", "SOLVE 2.5e-10 TRACE abcdef");
      ("bare TRACE degrades", "SOLVE 2.5e-10 TRACE");
      ( "duplicate TRACE degrades",
        Printf.sprintf "SOLVE 2.5e-10 %s %s" trace_tokens trace_tokens );
    ];
  expect_deadline "deadline survives a truncated TRACE"
    "SOLVE 2.5e-10 TRACE garbage DEADLINE 50" (Some 50.0);
  (* DEADLINE stays strict: its errors are still protocol errors *)
  (match parse_with_header "SOLVE 2.5e-10 DEADLINE -5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative deadline should not parse");
  match parse_with_header "SOLVE 2.5e-10 DEADLINE nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric deadline should not parse"

let fuzz_trace_header =
  QCheck.Test.make ~count:500
    ~name:"arbitrary SOLVE header tokens never crash the parser"
    QCheck.(
      make
        Gen.(
          list_size (int_range 0 8)
            (oneofl
               [
                 "TRACE";
                 "DEADLINE";
                 "50";
                 "-3";
                 "abc";
                 String.make 32 'a';
                 String.make 32 'g';
                 String.make 16 '0';
                 "zz";
                 "1e-3";
                 "999";
                 "";
               ])))
    (fun tokens ->
      let header = String.concat " " ("SOLVE" :: "2.5e-10" :: tokens) in
      match parse_with_header header with
      | Ok (Some (Protocol.Solve { budget; _ })) -> budget = 2.5e-10
      | Ok _ | Error _ -> true)

let test_protocol_cached_body_identical () =
  let body served =
    Protocol.print_response (Protocol.Result { served; solution = sample_solution })
  in
  let strip_header s =
    match String.index_opt s '\n' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  Alcotest.(check string)
    "cached replay is byte-identical below the header"
    (strip_header (body Protocol.Fresh))
    (strip_header (body Protocol.Cached));
  Alcotest.(check string)
    "the body is solution_body plus END"
    (Protocol.solution_body sample_solution ^ "END\n")
    (strip_header (body Protocol.Fresh))

(* --- Solve_cache -------------------------------------------------------- *)

let test_cache_hit_after_insert () =
  let cache = Solve_cache.create ~capacity:4 in
  let key = Solve_cache.key ~process ~net:(sample_net ()) ~budget:1e-10 in
  Alcotest.(check (option int)) "cold" None (Solve_cache.find cache key);
  Solve_cache.add cache key 42;
  Alcotest.(check (option int)) "hit" (Some 42) (Solve_cache.find cache key);
  let stats = Solve_cache.stats cache in
  Alcotest.(check int) "hits" 1 stats.Solve_cache.hits;
  Alcotest.(check int) "misses" 1 stats.Solve_cache.misses;
  Alcotest.(check int) "evictions" 0 stats.Solve_cache.evictions;
  Alcotest.(check int) "size" 1 stats.Solve_cache.size

let test_cache_capacity_one_evicts () =
  let cache = Solve_cache.create ~capacity:1 in
  Solve_cache.add cache "a" 1;
  Solve_cache.add cache "b" 2;
  Alcotest.(check (option int)) "a evicted" None (Solve_cache.find cache "a");
  Alcotest.(check (option int)) "b kept" (Some 2) (Solve_cache.find cache "b");
  let stats = Solve_cache.stats cache in
  Alcotest.(check int) "one eviction" 1 stats.Solve_cache.evictions;
  Alcotest.(check int) "size stays 1" 1 stats.Solve_cache.size

let test_cache_lru_order () =
  let cache = Solve_cache.create ~capacity:2 in
  Solve_cache.add cache "a" 1;
  Solve_cache.add cache "b" 2;
  (* Touch a: b becomes the least recently used and must go first. *)
  ignore (Solve_cache.find cache "a");
  Solve_cache.add cache "c" 3;
  Alcotest.(check (option int)) "a kept" (Some 1) (Solve_cache.find cache "a");
  Alcotest.(check (option int)) "b evicted" None (Solve_cache.find cache "b");
  Alcotest.(check (option int)) "c kept" (Some 3) (Solve_cache.find cache "c")

let test_cache_overwrite_refreshes () =
  let cache = Solve_cache.create ~capacity:2 in
  Solve_cache.add cache "a" 1;
  Solve_cache.add cache "b" 2;
  Solve_cache.add cache "a" 10;
  Solve_cache.add cache "c" 3;
  Alcotest.(check (option int))
    "overwritten entry survives with the new value" (Some 10)
    (Solve_cache.find cache "a");
  Alcotest.(check (option int)) "b evicted" None (Solve_cache.find cache "b");
  Alcotest.(check int) "size" 2 (Solve_cache.size cache)

let test_cache_capacity_zero_disables () =
  let cache = Solve_cache.create ~capacity:0 in
  Solve_cache.add cache "a" 1;
  Alcotest.(check (option int)) "never stored" None (Solve_cache.find cache "a");
  Alcotest.(check int) "size 0" 0 (Solve_cache.size cache);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Solve_cache.create: negative capacity") (fun () ->
      ignore (Solve_cache.create ~capacity:(-1)))

let test_cache_key_canonicalization () =
  let net = sample_net () in
  let renamed =
    Net.create ~name:"proto_alias"
      ~segments:(Array.to_list net.Net.segments)
      ~zones:net.Net.zones ~driver_width:net.Net.driver_width
      ~receiver_width:net.Net.receiver_width ()
  in
  let key n = Solve_cache.key ~process ~net:n ~budget:6.25e-10 in
  Alcotest.(check string)
    "cosmetic rename shares the key" (key net) (key renamed);
  (* Distinct electrical content must get distinct keys even when the
     name collides. *)
  let other =
    Net.create ~name:"proto"
      ~segments:[ Segment.of_layer Rip_tech.Layer.metal4 ~length:4000.0 ]
      ~zones:[] ~driver_width:20.0 ~receiver_width:40.0 ()
  in
  Alcotest.(check bool) "different net, different key" false
    (String.equal (key net) (key other));
  Alcotest.(check bool) "different budget, different key" false
    (String.equal (key net)
       (Solve_cache.key ~process ~net ~budget:6.26e-10));
  let r = process.Rip_tech.Process.repeater in
  let perturbed =
    {
      process with
      Rip_tech.Process.repeater =
        Rip_tech.Repeater_model.create ~rs:(1.01 *. r.Rip_tech.Repeater_model.rs)
          ~co:r.Rip_tech.Repeater_model.co ~cp:r.Rip_tech.Repeater_model.cp;
    }
  in
  Alcotest.(check bool) "different process, different key" false
    (String.equal (key net)
       (Solve_cache.key ~process:perturbed ~net ~budget:6.25e-10))

(* --- End to end over a socketpair --------------------------------------- *)

let expect_result = function
  | Ok (Protocol.Result { served; solution }) -> (served, solution)
  | Ok other ->
      Alcotest.failf "expected RESULT, got %S"
        (Protocol.print_response other)
  | Error e -> Alcotest.failf "transport failure: %s" e

let test_server_end_to_end () =
  let server =
    Server.create
      ~config:
        { Server.default_config with jobs = Some 1; cache_capacity = 8 }
      process
  in
  let server_fd, client_fd =
    Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let worker = Thread.create (Server.handle_connection server) server_fd in
  let client = Client.of_fd client_fd in
  (match Client.request client Protocol.Ping with
  | Ok Protocol.Pong -> ()
  | Ok other ->
      Alcotest.failf "PING answered %S" (Protocol.print_response other)
  | Error e -> Alcotest.failf "PING failed: %s" e);
  let net = sample_net () in
  let budget = 1.3 *. Rip.tau_min process (Geometry.of_net net) in
  let solve = Protocol.Solve { budget; deadline_ms = None; trace = None; net } in
  let served1, solution1 = expect_result (Client.request client solve) in
  Alcotest.(check bool) "first solve is fresh" true (served1 = Protocol.Fresh);
  Alcotest.(check bool) "some repeaters inserted" true
    (List.length solution1.Protocol.repeaters > 0);
  let served2, solution2 = expect_result (Client.request client solve) in
  Alcotest.(check bool) "second solve is cached" true
    (served2 = Protocol.Cached);
  Alcotest.(check string) "cached replay is byte-identical"
    (Protocol.solution_body solution1)
    (Protocol.solution_body solution2);
  (* An infeasible budget comes back as a typed ERROR, uncached. *)
  (match
     Client.request client
       (Protocol.Solve { budget = 1e-15; deadline_ms = None; trace = None; net })
   with
  | Ok (Protocol.Error_frame { kind = Protocol.Infeasible_budget; _ }) -> ()
  | Ok other ->
      Alcotest.failf "infeasible solve answered %S"
        (Protocol.print_response other)
  | Error e -> Alcotest.failf "infeasible solve failed: %s" e);
  (match Client.request client Protocol.Stats with
  | Ok (Protocol.Stats_frame stats) ->
      Alcotest.(check int) "requests" 3 stats.Protocol.requests;
      Alcotest.(check int) "solved" 2 stats.Protocol.solved;
      Alcotest.(check int) "errors" 1 stats.Protocol.errors;
      Alcotest.(check int) "cache hits" 1 stats.Protocol.cache_hits;
      Alcotest.(check int) "cache misses" 2 stats.Protocol.cache_misses;
      Alcotest.(check int) "cache size" 1 stats.Protocol.cache_size;
      Alcotest.(check bool) "solver cpu accounted" true
        (stats.Protocol.solve_cpu_seconds > 0.0)
  | Ok other ->
      Alcotest.failf "STATS answered %S" (Protocol.print_response other)
  | Error e -> Alcotest.failf "STATS failed: %s" e);
  (match Client.request client Protocol.Metrics with
  | Ok (Protocol.Metrics_frame body) ->
      Alcotest.(check bool) "requests counter scraped" true
        (Helpers.contains body "rip_requests_total 3");
      Alcotest.(check bool) "histogram type line" true
        (Helpers.contains body "# TYPE rip_solve_cpu_seconds histogram");
      let histograms = Rip_obs.Metrics.parse_histograms body in
      let solve =
        List.assoc Rip_service.Metrics.solve_cpu_metric histograms
      in
      let queue =
        List.assoc Rip_service.Metrics.queue_wait_metric histograms
      in
      (* Both dispatched solves (the fresh one and the infeasible one)
         ran on the pool and account their times; the cache hit did
         not. *)
      Alcotest.(check int) "dispatched solves in the histogram" 2
        solve.Rip_obs.Metrics.Histogram.count;
      Alcotest.(check int) "queue waits recorded with them" 2
        queue.Rip_obs.Metrics.Histogram.count;
      Alcotest.(check bool) "solve cpu sum positive" true
        (solve.Rip_obs.Metrics.Histogram.sum > 0.0)
  | Ok other ->
      Alcotest.failf "METRICS answered %S" (Protocol.print_response other)
  | Error e -> Alcotest.failf "METRICS failed: %s" e);
  (match Client.request client Protocol.Shutdown with
  | Ok Protocol.Bye -> ()
  | Ok other ->
      Alcotest.failf "SHUTDOWN answered %S" (Protocol.print_response other)
  | Error e -> Alcotest.failf "SHUTDOWN failed: %s" e);
  Thread.join worker;
  Client.close client;
  Server.shutdown server

(* A traced solve must leave the full span tree: admission and cache
   lookup on the connection thread, the queue wait, the solve, and the
   per-phase solver spans — with span ids derived from the request's
   cache key, so the same request traced twice yields the same ids. *)
let test_server_traced_spans () =
  let tracer = Rip_obs.Trace.create () in
  let server =
    Server.create
      ~config:
        {
          Server.default_config with
          jobs = Some 1;
          cache_capacity = 8;
          tracer = Some tracer;
        }
      process
  in
  let server_fd, client_fd =
    Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let worker = Thread.create (Server.handle_connection server) server_fd in
  let client = Client.of_fd client_fd in
  let net = sample_net () in
  let budget = 1.3 *. Rip.tau_min process (Geometry.of_net net) in
  let solve = Protocol.Solve { budget; deadline_ms = None; trace = None; net } in
  let _ = expect_result (Client.request client solve) in
  (match Client.request client Protocol.Shutdown with
  | Ok Protocol.Bye -> ()
  | Ok other ->
      Alcotest.failf "SHUTDOWN answered %S" (Protocol.print_response other)
  | Error e -> Alcotest.failf "SHUTDOWN failed: %s" e);
  Thread.join worker;
  Client.close client;
  Server.shutdown server;
  let spans = Rip_obs.Trace.spans tracer in
  let names = List.map (fun (s : Rip_obs.Trace.span) -> s.name) spans in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "span %S recorded" expected)
        true (List.mem expected names))
    [ "admission"; "cache_lookup"; "queue"; "solve"; "solve:coarse_dp" ];
  let key = Server.cache_key server ~net ~budget in
  let solve_span =
    List.find (fun (s : Rip_obs.Trace.span) -> s.name = "solve") spans
  in
  Alcotest.(check (option string))
    "span id derives from the cache key"
    (Some (Rip_obs.Trace.span_id ~digest:key "solve"))
    (List.assoc_opt "span_id" solve_span.args);
  (* The chrome dump is valid enough for a tooling smoke test. *)
  Alcotest.(check bool) "chrome json has the solve span" true
    (Helpers.contains
       (Rip_obs.Trace.to_chrome_json tracer)
       "\"name\":\"solve\"")

(* The cross-process parentage contract: a SOLVE carrying a TRACE
   context (as the router's forward path sends it) must stamp every
   server-side span with that trace id, parented under the upstream
   span — and a scoped tracer must key its span ids on the scope, so
   two shards solving the same digest cannot collide in a merged
   timeline. *)
let test_server_trace_parentage () =
  let tracer = Rip_obs.Trace.create ~scope:"s7" ~pid:1234 () in
  let server =
    Server.create
      ~config:
        {
          Server.default_config with
          jobs = Some 1;
          cache_capacity = 8;
          tracer = Some tracer;
        }
      process
  in
  let server_fd, client_fd =
    Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let worker = Thread.create (Server.handle_connection server) server_fd in
  let client = Client.of_fd client_fd in
  let net = sample_net () in
  let budget = 1.3 *. Rip.tau_min process (Geometry.of_net net) in
  (* the upstream parent: what a router's forward span would mint *)
  let root = Trace.make_context ~scope:"router" ~digest:"up" ~seq:0 () in
  let ctx = Trace.child root ~span_id:"feedfacefeedface" in
  let solve =
    Protocol.Solve { budget; deadline_ms = None; trace = Some ctx; net }
  in
  let _ = expect_result (Client.request client solve) in
  (match Client.request client Protocol.Shutdown with
  | Ok Protocol.Bye -> ()
  | Ok other ->
      Alcotest.failf "SHUTDOWN answered %S" (Protocol.print_response other)
  | Error e -> Alcotest.failf "SHUTDOWN failed: %s" e);
  Thread.join worker;
  Client.close client;
  Server.shutdown server;
  let spans = Rip_obs.Trace.spans tracer in
  let solve_span =
    List.find (fun (s : Rip_obs.Trace.span) -> s.name = "solve") spans
  in
  Alcotest.(check (option string))
    "solve span carries the trace id"
    (Some ctx.Trace.trace_id)
    (List.assoc_opt "trace_id" solve_span.args);
  Alcotest.(check (option string))
    "solve span parents under the upstream span" (Some "feedfacefeedface")
    (List.assoc_opt "parent_span_id" solve_span.args);
  let key = Server.cache_key server ~net ~budget in
  Alcotest.(check (option string))
    "span ids are scoped to the shard"
    (Some (Rip_obs.Trace.span_id ~scope:"s7" ~digest:key "solve"))
    (List.assoc_opt "span_id" solve_span.args);
  (* every span of the request carries the same trace id *)
  List.iter
    (fun (s : Rip_obs.Trace.span) ->
      if List.mem s.name [ "admission"; "cache_lookup"; "queue"; "solve" ]
      then
        Alcotest.(check (option string))
          (Printf.sprintf "span %S in the trace" s.name)
          (Some ctx.Trace.trace_id)
          (List.assoc_opt "trace_id" s.args))
    spans

(* A garbage TRACE header on the live wire must not kill the
   connection: the server answers the solve untraced. *)
let test_server_garbage_trace_header () =
  let server =
    Server.create
      ~config:{ Server.default_config with jobs = Some 1 }
      process
  in
  let server_fd, client_fd =
    Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let worker = Thread.create (Server.handle_connection server) server_fd in
  let net = sample_net () in
  let budget = 1.3 *. Rip.tau_min process (Geometry.of_net net) in
  let base =
    Protocol.print_request
      (Protocol.Solve { budget; deadline_ms = None; trace = None; net })
  in
  let nl = String.index base '\n' in
  let frame =
    String.sub base 0 nl ^ " TRACE zz yy 999"
    ^ String.sub base nl (String.length base - nl)
  in
  let _ = Unix.write_substring client_fd frame 0 (String.length frame) in
  let buffer = Bytes.create 65536 in
  let rec read_response acc =
    if Helpers.contains acc "END\n" then acc
    else
      let n = Unix.read client_fd buffer 0 (Bytes.length buffer) in
      if n = 0 then acc else read_response (acc ^ Bytes.sub_string buffer 0 n)
  in
  let answer = read_response "" in
  Alcotest.(check bool)
    "garbage TRACE still answers RESULT" true
    (String.length answer >= 6 && String.sub answer 0 6 = "RESULT");
  Unix.close client_fd;
  Thread.join worker;
  Server.shutdown server

let test_server_rejects_garbage () =
  let server =
    Server.create
      ~config:{ Server.default_config with jobs = Some 1 }
      process
  in
  let server_fd, client_fd =
    Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let worker = Thread.create (Server.handle_connection server) server_fd in
  let _ = Unix.write_substring client_fd "FROBNICATE\n" 0 11 in
  let buffer = Bytes.create 256 in
  let n = Unix.read client_fd buffer 0 256 in
  let answer = Bytes.sub_string buffer 0 n in
  Alcotest.(check bool) "typed protocol error" true
    (Helpers.contains answer "ERROR protocol");
  (* The server hangs up after a protocol error. *)
  Thread.join worker;
  Unix.close client_fd;
  Server.shutdown server

let suite =
  [
    ( "service.protocol",
      [
        Alcotest.test_case "request round trips" `Quick
          test_protocol_request_round_trips;
        Alcotest.test_case "response round trips" `Quick
          test_protocol_response_round_trips;
        Alcotest.test_case "parse errors" `Quick test_protocol_errors;
        Alcotest.test_case "TRACE header: best-effort parsing" `Quick
          test_trace_header_parsing;
        QCheck_alcotest.to_alcotest fuzz_trace_header;
        Alcotest.test_case "cached body identical" `Quick
          test_protocol_cached_body_identical;
      ] );
    ( "service.cache",
      [
        Alcotest.test_case "hit after insert" `Quick
          test_cache_hit_after_insert;
        Alcotest.test_case "capacity 1 evicts" `Quick
          test_cache_capacity_one_evicts;
        Alcotest.test_case "lru order" `Quick test_cache_lru_order;
        Alcotest.test_case "overwrite refreshes" `Quick
          test_cache_overwrite_refreshes;
        Alcotest.test_case "capacity 0 disables" `Quick
          test_cache_capacity_zero_disables;
        Alcotest.test_case "key canonicalization" `Quick
          test_cache_key_canonicalization;
      ] );
    ( "service.server",
      [
        Alcotest.test_case "end to end" `Quick test_server_end_to_end;
        Alcotest.test_case "traced solve leaves the span tree" `Quick
          test_server_traced_spans;
        Alcotest.test_case "TRACE context parents the server spans" `Quick
          test_server_trace_parentage;
        Alcotest.test_case "garbage TRACE header degrades to untraced"
          `Quick test_server_garbage_trace_header;
        Alcotest.test_case "rejects garbage" `Quick
          test_server_rejects_garbage;
      ] );
  ]
