(* Unit and property tests for Rip_core: configuration, validation and the
   full RIP pipeline. *)

module Geometry = Rip_net.Geometry
module Net = Rip_net.Net
module Zone = Rip_net.Zone
module Solution = Rip_elmore.Solution
module Delay = Rip_elmore.Delay
module Repeater_library = Rip_dp.Repeater_library
module Config = Rip_core.Config
module Validate = Rip_core.Validate
module Rip = Rip_core.Rip

let qcheck = QCheck_alcotest.to_alcotest
let process = Helpers.process
let repeater = Helpers.repeater

(* --- Config ------------------------------------------------------------- *)

let test_config_defaults () =
  let c = Config.default in
  Alcotest.(check (list (float 1e-9))) "coarse library"
    [ 80.0; 160.0; 240.0; 320.0; 400.0 ]
    (Repeater_library.widths c.Config.coarse_library);
  Alcotest.(check (float 1e-9)) "coarse pitch" 200.0 c.Config.coarse_pitch;
  Alcotest.(check (float 1e-9)) "refined grid" 10.0 c.Config.refined_granularity;
  Alcotest.(check int) "radius" 10 c.Config.refined_radius;
  Alcotest.(check (float 1e-9)) "refined pitch" 50.0 c.Config.refined_pitch;
  Alcotest.(check int) "reference library size" 40
    (Repeater_library.size Config.reference_library)

(* --- Validate ------------------------------------------------------------- *)

let test_net () =
  Net.create
    ~segments:
      [
        Rip_net.Segment.of_layer Rip_tech.Layer.metal4 ~length:4000.0;
        Rip_net.Segment.of_layer Rip_tech.Layer.metal5 ~length:4000.0;
      ]
    ~zones:[ Zone.create ~z_start:2500.0 ~z_end:3500.0 ]
    ~driver_width:20.0 ~receiver_width:40.0 ()

let generous_budget net =
  let geometry = Geometry.of_net net in
  2.0 *. Delay.total repeater geometry Solution.empty

let test_validate_ok () =
  let net = test_net () in
  Alcotest.(check bool) "empty valid" true
    (Validate.is_valid process net ~budget:(generous_budget net)
       Solution.empty);
  Alcotest.(check bool) "legal repeater" true
    (Validate.is_valid process net ~budget:(generous_budget net)
       (Solution.create [ (1000.0, 100.0) ]))

let test_validate_zone () =
  let net = test_net () in
  match
    Validate.check process net ~budget:(generous_budget net)
      (Solution.create [ (3000.0, 100.0) ])
  with
  | [ Validate.In_forbidden_zone x ] ->
      Alcotest.(check (float 1e-9)) "position" 3000.0 x
  | other -> Alcotest.failf "expected zone violation, got %d" (List.length other)

let test_validate_outside () =
  let net = test_net () in
  match
    Validate.check process net ~budget:(generous_budget net)
      (Solution.create [ (9000.0, 100.0) ])
  with
  | [ Validate.Outside_net _ ] -> ()
  | _ -> Alcotest.fail "expected outside-net violation"

let test_validate_budget () =
  let net = test_net () in
  match Validate.check process net ~budget:1e-15 Solution.empty with
  | [ Validate.Over_budget _ ] -> ()
  | _ -> Alcotest.fail "expected budget violation"

let test_validate_width_range () =
  let net = test_net () in
  (* A 5u repeater also *slows* the net, so a budget violation may
     legitimately accompany the width violation. *)
  let violations =
    Validate.check ~min_width:10.0 ~max_width:400.0 process net
      ~budget:(generous_budget net)
      (Solution.create [ (1000.0, 5.0) ])
  in
  Alcotest.(check bool) "width violation reported" true
    (List.exists
       (function Validate.Width_out_of_range 5.0 -> true | _ -> false)
       violations)

(* --- Rip pipeline ----------------------------------------------------------- *)

let suite_nets = Rip_workload.Suite.nets ~count:4 ()

let prop_rip_output_valid =
  QCheck.Test.make ~name:"RIP solutions are always legal and in budget"
    ~count:20
    QCheck.(pair (int_range 0 3) (float_range 1.05 2.05))
    (fun (net_index, slack) ->
      let net = List.nth suite_nets net_index in
      let geometry = Geometry.of_net net in
      let tau_min = Rip.tau_min process geometry in
      let budget = slack *. tau_min in
      match Rip.solve (Rip.problem ~geometry process net ~budget) with
      | Error _ -> false
      | Ok r ->
          Validate.is_valid ~min_width:Config.default.Config.min_width
            ~max_width:Config.default.Config.max_width process net ~budget
            r.Rip.solution
          && Helpers.close ~rel:1e-9 r.Rip.total_width
               (Solution.total_width r.Rip.solution))

let prop_rip_beats_its_own_seed =
  QCheck.Test.make ~name:"RIP never returns more width than its coarse seed"
    ~count:15
    QCheck.(pair (int_range 0 3) (float_range 1.05 2.0))
    (fun (net_index, slack) ->
      let net = List.nth suite_nets net_index in
      let geometry = Geometry.of_net net in
      let tau_min = Rip.tau_min process geometry in
      match
        Rip.solve (Rip.problem ~geometry process net ~budget:(slack *. tau_min))
      with
      | Error _ -> false
      | Ok r -> (
          match r.Rip.trace.Rip.coarse with
          | Some coarse ->
              (* A min-delay-seeded coarse phase is not a power solution;
                 only compare against budget-meeting seeds. *)
              coarse.Rip_dp.Power_dp.delay > slack *. tau_min
              || r.Rip.total_width
                 <= coarse.Rip_dp.Power_dp.total_width +. 1e-9
          | None -> false))

let test_rip_impossible_budget () =
  let net = List.nth suite_nets 0 in
  match Rip.solve (Rip.problem process net ~budget:1e-15) with
  | Error (Rip.Infeasible_budget { budget; tau_min_hint }) ->
      Alcotest.(check (float 1e-30)) "budget echoed" 1e-15 budget;
      (match tau_min_hint with
      | Some tau -> Alcotest.(check bool) "hint above budget" true (tau > 1e-15)
      | None -> Alcotest.fail "expected a tau_min hint")
  | Error e -> Alcotest.failf "wrong error: %s" (Rip.error_to_string e)
  | Ok _ -> Alcotest.fail "expected infeasible"

let test_rip_invalid_problem () =
  let net = List.nth suite_nets 0 in
  (match Rip.solve (Rip.problem process net ~budget:(-1.0)) with
  | Error (Rip.Invalid_net [ Validate.Nonpositive_budget b ]) ->
      Alcotest.(check (float 0.0)) "budget echoed" (-1.0) b
  | Error e -> Alcotest.failf "wrong error: %s" (Rip.error_to_string e)
  | Ok _ -> Alcotest.fail "negative budget accepted");
  let other = Geometry.of_net (List.nth suite_nets 1) in
  match Rip.solve (Rip.problem ~geometry:other process net ~budget:1e-9) with
  | Error (Rip.Invalid_net violations) ->
      Alcotest.(check bool) "geometry mismatch flagged" true
        (List.mem Validate.Geometry_mismatch violations)
  | Error e -> Alcotest.failf "wrong error: %s" (Rip.error_to_string e)
  | Ok _ -> Alcotest.fail "mismatched geometry accepted"

let test_rip_power_consistency () =
  let net = List.nth suite_nets 1 in
  let geometry = Geometry.of_net net in
  let tau_min = Rip.tau_min process geometry in
  match Rip.solve (Rip.problem ~geometry process net ~budget:(1.3 *. tau_min)) with
  | Error e -> Alcotest.failf "unexpected failure: %s" (Rip.error_to_string e)
  | Ok r ->
      let expected =
        Rip_tech.Power_model.repeater_power process.Rip_tech.Process.power
          ~repeater ~total_width:r.Rip.total_width
      in
      Alcotest.(check bool) "power matches width"
        true
        (Helpers.close ~rel:1e-12 expected r.Rip.power_watts)

let test_rip_trace_populated () =
  let net = List.nth suite_nets 2 in
  let geometry = Geometry.of_net net in
  let tau_min = Rip.tau_min process geometry in
  match Rip.solve (Rip.problem ~geometry process net ~budget:(1.4 *. tau_min)) with
  | Error e -> Alcotest.failf "unexpected failure: %s" (Rip.error_to_string e)
  | Ok r ->
      Alcotest.(check bool) "coarse present" true (r.Rip.trace.Rip.coarse <> None);
      Alcotest.(check bool) "refine present" true
        (r.Rip.trace.Rip.refined <> None);
      Alcotest.(check bool) "final present" true (r.Rip.trace.Rip.final <> None);
      Alcotest.(check bool) "runtime measured" true (r.Rip.runtime_seconds > 0.0)

let test_rip_problem_constructor_agrees () =
  (* The convenience constructor and a literal record state the same
     problem bit for bit. *)
  let net = List.nth suite_nets 3 in
  let geometry = Geometry.of_net net in
  let tau_min = Rip.tau_min process geometry in
  let budget = 1.5 *. tau_min in
  let via_constructor = Rip.solve (Rip.problem ~geometry process net ~budget) in
  let via_record =
    Rip.solve { Rip.process; net; geometry = Some geometry; budget }
  in
  match (via_constructor, via_record) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "identical solution" true
        (Solution.equal a.Rip.solution b.Rip.solution)
  | _, _ -> Alcotest.fail "both should succeed"

let test_rip_loose_budget_drops_repeaters () =
  (* A budget safely above the bare-wire delay needs no repeaters at all. *)
  let net = List.nth suite_nets 0 in
  let geometry = Geometry.of_net net in
  let bare = Delay.total repeater geometry Solution.empty in
  match Rip.solve (Rip.problem ~geometry process net ~budget:(1.5 *. bare)) with
  | Error e -> Alcotest.failf "unexpected failure: %s" (Rip.error_to_string e)
  | Ok r -> Alcotest.(check int) "no repeaters" 0 (Solution.count r.Rip.solution)

let test_rip_multi_pass_never_worse () =
  let config = { Config.default with Config.refine_passes = 3 } in
  List.iter
    (fun net ->
      let geometry = Geometry.of_net net in
      let tau_min = Rip.tau_min process geometry in
      let budget = 1.3 *. tau_min in
      match
        ( Rip.solve (Rip.problem ~geometry process net ~budget),
          Rip.solve ~config (Rip.problem ~geometry process net ~budget) )
      with
      | Ok one, Ok three ->
          Alcotest.(check bool) "extra passes never cost width" true
            (three.Rip.total_width <= one.Rip.total_width +. 1e-9);
          Alcotest.(check bool) "still valid" true
            (Validate.is_valid process net ~budget three.Rip.solution)
      | _, _ -> Alcotest.fail "both should solve")
    suite_nets

let test_rip_tau_min_is_reachable () =
  (* 1.05 * tau_min is the paper's tightest target; RIP must solve it on
     every suite net. *)
  List.iter
    (fun net ->
      let geometry = Geometry.of_net net in
      let tau_min = Rip.tau_min process geometry in
      match
        Rip.solve (Rip.problem ~geometry process net ~budget:(1.05 *. tau_min))
      with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "%s: %s" net.Net.name (Rip.error_to_string e))
    suite_nets

let suite =
  [
    ( "core.config",
      [ Alcotest.test_case "defaults" `Quick test_config_defaults ] );
    ( "core.validate",
      [
        Alcotest.test_case "accepts valid" `Quick test_validate_ok;
        Alcotest.test_case "zone violation" `Quick test_validate_zone;
        Alcotest.test_case "outside net" `Quick test_validate_outside;
        Alcotest.test_case "budget violation" `Quick test_validate_budget;
        Alcotest.test_case "width range" `Quick test_validate_width_range;
      ] );
    ( "core.rip",
      [
        Alcotest.test_case "impossible budget" `Quick
          test_rip_impossible_budget;
        Alcotest.test_case "power consistency" `Quick
          test_rip_power_consistency;
        Alcotest.test_case "trace populated" `Quick test_rip_trace_populated;
        Alcotest.test_case "problem constructor = record" `Quick
          test_rip_problem_constructor_agrees;
        Alcotest.test_case "invalid problems are typed" `Quick
          test_rip_invalid_problem;
        Alcotest.test_case "loose budgets drop repeaters" `Quick
          test_rip_loose_budget_drops_repeaters;
        Alcotest.test_case "1.05 tau_min reachable" `Slow
          test_rip_tau_min_is_reachable;
        Alcotest.test_case "multi-pass refine never worse" `Slow
          test_rip_multi_pass_never_worse;
        qcheck prop_rip_output_valid;
        qcheck prop_rip_beats_its_own_seed;
      ] );
  ]
