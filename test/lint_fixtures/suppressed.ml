(* Lint fixture: the same violations as the bad_* files, silenced with
   expression-level, binding-level and file-wide [@lint.allow]. *)

[@@@lint.allow "no-hashtbl-order"]

type point = { x : float; y : float }

let same (a : point) (b : point) = (a = b) [@lint.allow "no-poly-compare"]

let[@lint.allow "no-wall-clock"] stamp () = Unix.gettimeofday ()

let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
