(* blocking-under-lock: a blocking primitive called directly inside a
   lock region, one reached through a helper, and the sanctioned
   Condition.wait idiom. *)

type t = { mutex : Mutex.t; cond : Condition.t; mutable ready : bool }

(* Flagged: Unix.read blocks while t.mutex is held. *)
let direct t fd buf =
  Mutex.lock t.mutex;
  ignore (Unix.read fd buf 0 1);
  Mutex.unlock t.mutex

let helper () = Thread.delay 0.01

(* Flagged: the call to [helper] reaches Thread.delay under the lock. *)
let indirect t =
  Mutex.lock t.mutex;
  helper ();
  Mutex.unlock t.mutex

(* Not flagged: Condition.wait releases the mutex while waiting — it is
   the sanctioned way to block under a lock. *)
let wait_ready t =
  Mutex.lock t.mutex;
  while not t.ready do
    Condition.wait t.cond t.mutex
  done;
  Mutex.unlock t.mutex

(* Not flagged: the delay runs after the unlock. *)
let polite t =
  Mutex.lock t.mutex;
  t.ready <- false;
  Mutex.unlock t.mutex;
  Thread.delay 0.01
