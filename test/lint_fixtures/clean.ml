(* Lint fixture: determinism-conscious code no rule should flag. *)

type sample = { value : float; weight : float }

let order (a : sample) (b : sample) =
  match Float.compare a.value b.value with
  | 0 -> Float.compare a.weight b.weight
  | c -> c

let sorted_keys tbl =
  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let render (s : sample) = Printf.sprintf "%.17g %.17g" s.value s.weight
