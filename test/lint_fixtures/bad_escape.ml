(* domain-escape: a spawned worker that mutates shared state only
   through helpers.  The intraprocedural guarded-mutation rule cannot
   see past the call boundary; the two-phase analysis follows the call
   graph from the spawn site, propagating which arguments are caller-
   local and whether a lock is inherited. *)

type counter = { mutable count : int; mutex : Mutex.t }

(* Flagged: reached from [worker] (a spawn target) with no lock held. *)
let bump c = c.count <- c.count + 1

(* Not flagged: the write is inside this function's own lock region. *)
let guarded_bump c =
  Mutex.lock c.mutex;
  c.count <- c.count + 1;
  Mutex.unlock c.mutex

let worker c () =
  bump c;
  guarded_bump c

let spawn_it c = Thread.create (worker c) ()

(* Not flagged: every caller holds the lock across the call, and the
   analysis propagates the inherited-lock bit into the callee. *)
let locked_helper c = c.count <- c.count + 1

let worker2 c () =
  Mutex.lock c.mutex;
  locked_helper c;
  Mutex.unlock c.mutex

let spawn_it2 c = Thread.create (worker2 c) ()

(* Not flagged: [local_counter]'s state is freshly allocated inside the
   spawned closure, so every access is rooted in a spawn-local value. *)
let local_work () =
  let c = { count = 0; mutex = Mutex.create () } in
  bump c;
  c.count

let spawn_local () = Thread.create (fun () -> ignore (local_work ())) ()
