(* Lint fixture: shared mutable state captured by spawned threads.  The
   three [_unguarded] functions are violations; the locked, protected
   and atomic variants exercise every sanction the analysis knows. *)

type counter = { lock : Mutex.t; mutable count : int }

let write_unguarded (c : counter) = Domain.spawn (fun () -> c.count <- 1)

let read_unguarded (c : counter) =
  Thread.create (fun () -> Stdlib.ignore c.count) ()

let set_flag_unguarded (flag : bool ref) =
  Thread.create (fun () -> flag := true) ()

let write_locked (c : counter) =
  Domain.spawn (fun () ->
      Mutex.lock c.lock;
      c.count <- c.count + 1;
      Mutex.unlock c.lock)

let write_protected (c : counter) =
  Domain.spawn (fun () ->
      Mutex.protect c.lock (fun () -> c.count <- c.count + 1))

let bump_atomic (a : int Atomic.t) = Domain.spawn (fun () -> Atomic.incr a)
