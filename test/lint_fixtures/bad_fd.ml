(* fd-leak positives: a socket that is never closed, a double close on
   one straight-line path, and an fd captured by a spawned thread with
   no close on the spawn-failure path. *)

(* Flagged: bound, used only through non-owning calls, never closed. *)
let leak () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  ignore (Unix.getsockname fd)

(* Flagged: the second close runs on the same path as the first. *)
let double_close () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.close fd;
  Unix.close fd

(* Flagged: if Thread.create raises, no thread owns [fd] and nothing
   closes it. *)
let spawn_capture handler =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  ignore (Thread.create (fun () -> handler fd) ())
