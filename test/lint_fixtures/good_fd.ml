(* fd-leak negatives: every ownership discipline the rule accepts. *)

(* Fun.protect ~finally closes the fd: the occurrence inside the
   [finally] closure counts as a close on every path. *)
let with_socket f =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> f fd)

(* Returning the fd hands ownership to the caller. *)
let dial () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  fd

(* Spawn capture is fine when an exception handler around the spawn
   closes the fd on the failure path. *)
let serve handler =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Thread.create (fun () -> handler fd) () with
  | thread -> Thread.join thread
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

(* Passing the fd to another function is an ownership handoff, not a
   leak: the new owner is responsible for closing it. *)
let adopt give =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  give fd
