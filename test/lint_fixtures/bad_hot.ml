(* alloc-in-hot-loop: boxing allocations inside for/while loops of
   [@lint.hot] functions; raise-path allocations are exempt, and
   unannotated functions are never scanned. *)

(* Flagged: a tuple and a closure allocated on every iteration. *)
let[@lint.hot] sum_pairs n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    let pair = (i, i * 2) in
    let add x = x + fst pair + snd pair in
    acc := add !acc
  done;
  !acc

(* Not flagged: loop body only reads and writes through pre-allocated
   structure. *)
let[@lint.hot] clean_sum (xs : int array) =
  let acc = ref 0 in
  for i = 0 to Array.length xs - 1 do
    acc := !acc + xs.(i)
  done;
  !acc

(* Not flagged: the constructor allocation feeds a raise — error paths
   are exempt by design. *)
let[@lint.hot] checked_sum (xs : int array) n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    if i >= Array.length xs then raise (Invalid_argument "checked_sum");
    acc := !acc + xs.(i)
  done;
  !acc

(* Not flagged: no [@lint.hot] annotation, so the rule never looks. *)
let unannotated n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    let pair = (i, i) in
    acc := !acc + fst pair
  done;
  !acc
