(* Lint fixture: float conversions in formats must be exactly %.17g. *)

let lossy x = Printf.sprintf "%g" x
let rounded x = Printf.sprintf "%.6f" x
let exact x = Printf.sprintf "%.17g" x
let integral n = Printf.sprintf "%d" n
