(* Lint fixture: Hashtbl traversals.  [keys] and [dump] leak hash
   iteration order; [sorted_keys] flows into an explicit sort and is
   sanctioned. *)

let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let dump tbl = Hashtbl.iter (fun k v -> Printf.printf "%d %s\n" k v) tbl

let sorted_keys tbl =
  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
