(* Lint fixture for the rip_obs rule set: the monotonic stub
   (Rip_numerics.Cpu_clock) is sanctioned — it is how spans and
   histograms are supposed to take time — while the process wall clock
   remains a finding even inside an observability unit. *)

let epoch = Rip_numerics.Cpu_clock.monotonic_seconds ()
let elapsed () = Rip_numerics.Cpu_clock.monotonic_seconds () -. epoch
let drift () = Unix.gettimeofday () -. epoch
