(* Lint fixture: polymorphic comparisons at float-carrying types.  The
   bare-float [<] below is idiomatic IEEE and must NOT be flagged; the
   bare-float [compare] must (it orders NaN). *)

type point = { x : float; y : float }

let order (a : point) (b : point) = compare a b
let same (a : point) (b : point) = a = b
let upper (a : point) (b : point) = max a b
let member (p : point) ps = List.mem p ps
let bare_less (a : float) (b : float) = a < b
let bare_compare (a : float) (b : float) = compare a b
