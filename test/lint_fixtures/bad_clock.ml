(* Lint fixture: wall-clock reads, banned outside engine/service. *)

let stamp () = Unix.gettimeofday ()
let seconds () = Unix.time ()
let cpu () = Sys.time ()
