(* Tests for Rip_tree: topology, layout, Elmore, the tree DPs, Lagrangian
   sizing and the hybrid — anchored by the certification that every tree
   algorithm collapses to its chain counterpart on path trees. *)

module Net = Rip_net.Net
module Geometry = Rip_net.Geometry
module Solution = Rip_elmore.Solution
module Delay = Rip_elmore.Delay
module Repeater_library = Rip_dp.Repeater_library
module Power_dp = Rip_dp.Power_dp
module Min_delay = Rip_dp.Min_delay
module Candidates = Rip_dp.Candidates
module Tree = Rip_tree.Tree
module Tree_solution = Rip_tree.Tree_solution
module Tree_layout = Rip_tree.Tree_layout
module Tree_delay = Rip_tree.Tree_delay
module Tree_dp = Rip_tree.Tree_dp
module Tree_min_delay = Rip_tree.Tree_min_delay
module Tree_sizing = Rip_tree.Tree_sizing
module Tree_hybrid = Rip_tree.Tree_hybrid

let qcheck = QCheck_alcotest.to_alcotest
let invalid name f = Alcotest.match_raises name (function Invalid_argument _ -> true | _ -> false) f
let repeater = Helpers.repeater
let process = Helpers.process

(* --- Fixtures --------------------------------------------------------------- *)

(* Two-level 3-sink tree on mixed layers. *)
let three_sink_tree () =
  let b = Tree.builder ~name:"y3" ~driver_width:20.0 () in
  let trunk = Tree.add_layer_edge b ~parent:0 Rip_tech.Layer.metal5 ~length:3000.0 in
  let left = Tree.add_layer_edge b ~parent:trunk Rip_tech.Layer.metal4 ~length:2500.0 in
  let right = Tree.add_layer_edge b ~parent:trunk Rip_tech.Layer.metal4 ~length:1800.0 in
  let rl = Tree.add_layer_edge b ~parent:right Rip_tech.Layer.metal5 ~length:2200.0 in
  let rr =
    Tree.add_layer_edge b ~parent:right
      ~zones:[ (400.0, 900.0) ]
      Rip_tech.Layer.metal4 ~length:1500.0
  in
  Tree.set_sink b ~node:left ~load_width:40.0;
  Tree.set_sink b ~node:rl ~load_width:30.0;
  Tree.set_sink b ~node:rr ~load_width:50.0;
  Tree.build b

(* Chain solution -> tree solution on a chain tree built by chain_of_net. *)
let chain_solution_to_tree (net : Net.t) solution =
  let boundaries =
    Array.to_list
      (Array.mapi (fun i s -> (i + 1, s.Rip_net.Segment.length)) net.Net.segments)
  in
  let place (r : Solution.repeater) =
    let rec locate position = function
      | (edge, len) :: rest ->
          if position <= len || rest = [] then (edge, position)
          else locate (position -. len) rest
      | [] -> assert false
    in
    let edge, offset = locate r.position boundaries in
    (edge, offset, r.width)
  in
  Tree_solution.create (List.map place (Solution.repeaters solution))

(* Global chain candidate positions -> per-edge tree site offsets, so the
   chain and tree DPs search exactly the same design space. *)
let sites_of_chain_candidates (net : Net.t) candidates =
  let sites = Array.make (Net.segment_count net + 1) [] in
  let locate position =
    let rec walk edge start =
      let len = net.Net.segments.(edge - 1).Rip_net.Segment.length in
      if position <= start +. len || edge = Net.segment_count net then
        (edge, position -. start)
      else walk (edge + 1) (start +. len)
    in
    walk 1 0.0
  in
  List.iter
    (fun position ->
      let edge, offset = locate position in
      sites.(edge) <- sites.(edge) @ [ offset ])
    candidates;
  sites

(* --- Builder ----------------------------------------------------------------- *)

let test_builder_validation () =
  invalid "no edges" (fun () ->
      ignore (Tree.build (Tree.builder ~driver_width:10.0 ())));
  invalid "bad parent" (fun () ->
      let b = Tree.builder ~driver_width:10.0 () in
      ignore
        (Tree.add_edge b ~parent:5 ~length:10.0 ~resistance_per_um:0.1
           ~capacitance_per_um:1e-16 ()));
  invalid "leaf without sink" (fun () ->
      let b = Tree.builder ~driver_width:10.0 () in
      ignore (Tree.add_layer_edge b ~parent:0 Rip_tech.Layer.metal4 ~length:10.0);
      ignore (Tree.build b));
  invalid "sink on internal node" (fun () ->
      let b = Tree.builder ~driver_width:10.0 () in
      let a = Tree.add_layer_edge b ~parent:0 Rip_tech.Layer.metal4 ~length:10.0 in
      let c = Tree.add_layer_edge b ~parent:a Rip_tech.Layer.metal4 ~length:10.0 in
      Tree.set_sink b ~node:a ~load_width:10.0;
      Tree.set_sink b ~node:c ~load_width:10.0;
      ignore (Tree.build b));
  invalid "zone outside edge" (fun () ->
      let b = Tree.builder ~driver_width:10.0 () in
      ignore
        (Tree.add_edge b ~parent:0 ~zones:[ (5.0, 20.0) ] ~length:10.0
           ~resistance_per_um:0.1 ~capacitance_per_um:1e-16 ()))

let test_tree_queries () =
  let t = three_sink_tree () in
  Alcotest.(check int) "nodes" 6 (Tree.node_count t);
  Alcotest.(check int) "sinks" 3 (Tree.sink_count t);
  Alcotest.(check (float 1e-9)) "wire length" 11000.0 (Tree.total_wire_length t);
  Alcotest.(check bool) "leaf" true (Tree.is_leaf t 2);
  Alcotest.(check bool) "internal" false (Tree.is_leaf t 1);
  Alcotest.(check (list int)) "path" [ 4; 3; 1; 0 ] (Tree.path_to_root t 4);
  Alcotest.(check bool) "zone blocks" false (Tree.offset_legal t ~edge:5 600.0);
  Alcotest.(check bool) "zone edge ok" true (Tree.offset_legal t ~edge:5 400.0);
  Alcotest.(check bool) "interior ok" true (Tree.offset_legal t ~edge:5 1000.0)

let test_tree_solution () =
  let s = Tree_solution.create [ (2, 100.0, 30.0); (1, 50.0, 20.0) ] in
  Alcotest.(check int) "count" 2 (Tree_solution.count s);
  Alcotest.(check (float 1e-9)) "width" 50.0 (Tree_solution.total_width s);
  (match Tree_solution.repeaters s with
  | first :: _ ->
      Alcotest.(check int) "sorted by edge" 1 first.Tree_solution.edge
  | [] -> Alcotest.fail "expected repeaters");
  invalid "duplicate" (fun () ->
      ignore (Tree_solution.create [ (1, 5.0, 10.0); (1, 5.0, 20.0) ]))

(* --- Chain equivalence -------------------------------------------------------- *)

let chain_fixture () =
  let gen = Helpers.net_gen ~with_zone:true () in
  QCheck.make ~print:(Fmt.str "%a" Net.pp) gen

let prop_chain_delay_equivalence =
  QCheck.Test.make
    ~name:"tree Elmore equals chain Elmore on path trees" ~count:60
    (chain_fixture ())
    (fun net ->
      let tree = Tree.chain_of_net net in
      let geometry = Geometry.of_net net in
      let length = Net.total_length net in
      let placements =
        List.filter (fun (p, _) -> p > 1.0 && p < length -. 1.0)
          [ (0.31 *. length, 45.0); (0.72 *. length, 90.0) ]
      in
      let chain_solution = Solution.create placements in
      let tree_solution = chain_solution_to_tree net chain_solution in
      let chain_delay = Delay.total repeater geometry chain_solution in
      let tree_delay = Tree_delay.max_delay repeater tree tree_solution in
      Helpers.close ~rel:1e-9 chain_delay tree_delay)

let prop_chain_dp_equivalence =
  QCheck.Test.make
    ~name:"tree power DP equals chain power DP on path trees" ~count:30
    QCheck.(pair (QCheck.make (Helpers.net_gen ~with_zone:true ())) (float_range 1.1 2.0))
    (fun (net, slack) ->
      let tree = Tree.chain_of_net net in
      let geometry = Geometry.of_net net in
      let bare = Delay.total repeater geometry Solution.empty in
      let budget = bare *. slack /. 1.4 in
      let library =
        Repeater_library.uniform ~min_width:40.0 ~step:60.0 ~count:4
      in
      let candidates = Candidates.uniform net ~pitch:400.0 in
      let chain =
        Power_dp.run
          (Power_dp.request geometry repeater ~library ~candidates ~budget)
      in
      let tree_result =
        Tree_dp.solve repeater tree ~library
          ~sites:(sites_of_chain_candidates net candidates)
          ~budget
      in
      match (chain, tree_result) with
      | None, None -> true
      | Some a, Some b ->
          Helpers.close ~rel:1e-9 a.Power_dp.total_width
            b.Tree_dp.total_width
      | Some _, None | None, Some _ -> false)

let prop_chain_min_delay_equivalence =
  QCheck.Test.make
    ~name:"tree min-delay equals chain min-delay on path trees" ~count:30
    (chain_fixture ())
    (fun net ->
      let tree = Tree.chain_of_net net in
      let geometry = Geometry.of_net net in
      let library =
        Repeater_library.uniform ~min_width:50.0 ~step:100.0 ~count:3
      in
      let candidates = Candidates.uniform net ~pitch:500.0 in
      let chain =
        Min_delay.tau_min geometry repeater ~library ~candidates
      in
      let tree_value =
        Tree_min_delay.tau_min repeater tree ~library
          ~sites:(sites_of_chain_candidates net candidates)
      in
      Helpers.close ~rel:1e-9 chain tree_value)

let prop_chain_sizing_equivalence =
  QCheck.Test.make
    ~name:"tree sizing equals the chain width solver on path trees"
    ~count:25
    (QCheck.make (Helpers.net_gen ~with_zone:false ()))
    (fun net ->
      let tree = Tree.chain_of_net net in
      let geometry = Geometry.of_net net in
      let length = Net.total_length net in
      let positions = [| 0.35 *. length; 0.7 *. length |] in
      let sizing_chain =
        Rip_refine.Width_solver.min_delay_sizing geometry repeater ~positions
      in
      let budget =
        1.4
        *. Rip_refine.Width_solver.tau_total geometry repeater ~positions
             ~widths:sizing_chain
      in
      let chain =
        Rip_refine.Width_solver.solve geometry repeater ~positions ~budget
      in
      let placements =
        chain_solution_to_tree net
          (Solution.create [ (positions.(0), 50.0); (positions.(1), 50.0) ])
      in
      let tree_result =
        Tree_sizing.solve repeater tree ~placements ~budget
      in
      match (chain, tree_result) with
      | Some c, Some t ->
          Helpers.close ~rel:2e-2 c.Rip_refine.Width_solver.total_width
            t.Tree_sizing.total_width
          && Helpers.close ~rel:1e-3 budget t.Tree_sizing.max_delay
      | _, _ -> false)

(* --- Multi-sink behaviour ------------------------------------------------------ *)

let test_layout_structure () =
  let tree = three_sink_tree () in
  let solution = Tree_solution.create [ (1, 1500.0, 80.0); (4, 1000.0, 60.0) ] in
  let layout = Tree_layout.expand tree solution in
  (* root + 2 repeater points + 5 node points *)
  Alcotest.(check int) "points" 8 (Array.length layout.Tree_layout.points);
  Alcotest.(check int) "repeaters" 2 layout.Tree_layout.repeater_count;
  Alcotest.(check int) "sink points" 3
    (List.length layout.Tree_layout.sink_points)

let test_layout_gate_relations () =
  (* Two repeaters nested on the same edge: the second one's parent gate
     is the first one, not the driver. *)
  let tree = three_sink_tree () in
  let solution =
    Tree_solution.create [ (1, 800.0, 70.0); (1, 2200.0, 90.0) ]
  in
  let layout = Tree_layout.expand tree solution in
  let points = Tree_layout.repeater_points layout in
  Alcotest.(check int) "first's parent is the driver" 0
    (Tree_layout.parent_gate layout points.(0));
  Alcotest.(check int) "second's parent is the first"
    points.(0)
    (Tree_layout.parent_gate layout points.(1));
  (* The driver's stage capacitance stops at the first repeater: wire up
     to 800 um plus its input capacitance. *)
  let widths = [| 70.0; 90.0 |] in
  let expected =
    (800.0 *. tree.Tree.nodes.(1).Tree.capacitance_per_um)
    +. Rip_tech.Repeater_model.input_capacitance repeater 70.0
  in
  Alcotest.(check bool) "driver stage cap" true
    (Helpers.close ~rel:1e-9 expected
       (Tree_layout.stage_capacitance repeater layout ~widths ~gate:0))

let test_sizing_concentrates_on_critical_sink () =
  (* Make one branch far longer: sizing must leave the short sink with
     slack while the critical sink lands on the budget. *)
  let b = Tree.builder ~name:"skewed" ~driver_width:20.0 () in
  let trunk = Tree.add_layer_edge b ~parent:0 Rip_tech.Layer.metal4 ~length:1500.0 in
  let long_leaf = Tree.add_layer_edge b ~parent:trunk Rip_tech.Layer.metal4 ~length:6000.0 in
  let short_leaf = Tree.add_layer_edge b ~parent:trunk Rip_tech.Layer.metal4 ~length:900.0 in
  Tree.set_sink b ~node:long_leaf ~load_width:40.0;
  Tree.set_sink b ~node:short_leaf ~load_width:40.0;
  let tree = Tree.build b in
  let placements =
    Tree_solution.create [ (2, 1500.0, 80.0); (2, 4000.0, 80.0) ]
  in
  let layout = Tree_layout.expand tree placements in
  let fastest = Tree_sizing.min_delay_widths repeater tree ~placements in
  let budget =
    1.3 *. Tree_layout.max_sink_delay repeater layout ~widths:fastest
  in
  match Tree_sizing.solve repeater tree ~placements ~budget with
  | None -> Alcotest.fail "expected feasible"
  | Some r ->
      let delays =
        Tree_layout.sink_delays repeater layout ~widths:r.Tree_sizing.widths
      in
      (* Sink order follows tree.sinks: long first, short second. *)
      Alcotest.(check bool) "critical sink at the budget" true
        (Helpers.close ~rel:1e-3 budget delays.(0));
      Alcotest.(check bool) "short sink has slack" true
        (delays.(1) < 0.9 *. budget)

let test_tree_delays_sane () =
  let tree = three_sink_tree () in
  let bare = Tree_delay.sink_delays repeater tree Tree_solution.empty in
  Alcotest.(check int) "three delays" 3 (Array.length bare);
  Array.iter
    (fun d -> Alcotest.(check bool) "positive" true (d > 0.0))
    bare;
  (* A repeater on the trunk speeds up the worst sink. *)
  let buffered =
    Tree_delay.max_delay repeater tree
      (Tree_solution.create [ (1, 1500.0, 150.0) ])
  in
  Alcotest.(check bool) "trunk repeater helps" true
    (buffered < Array.fold_left Float.max 0.0 bare)

let test_tree_dp_respects_zones () =
  let tree = three_sink_tree () in
  let budget = 1.2 *. Tree_hybrid.tau_min process tree in
  let library = Repeater_library.range ~min_width:10.0 ~max_width:400.0 ~step:40.0 in
  match
    Tree_dp.solve repeater tree ~library
      ~sites:(Tree_dp.uniform_sites tree ~pitch:100.0)
      ~budget
  with
  | None -> Alcotest.fail "expected feasible"
  | Some r ->
      Alcotest.(check bool) "legal" true
        (Tree_solution.legal tree r.Tree_dp.solution);
      Alcotest.(check bool) "meets budget" true
        (Tree_delay.meets_budget repeater tree r.Tree_dp.solution ~budget)

let prop_tree_dp_reported_delay_consistent =
  QCheck.Test.make
    ~name:"tree DP's reported delay matches re-evaluation" ~count:20
    QCheck.(float_range 1.15 2.0)
    (fun slack ->
      let tree = three_sink_tree () in
      let budget = slack *. Tree_hybrid.tau_min process tree in
      let library =
        Repeater_library.uniform ~min_width:40.0 ~step:80.0 ~count:4
      in
      match
        Tree_dp.solve repeater tree ~library
          ~sites:(Tree_dp.uniform_sites tree ~pitch:200.0)
          ~budget
      with
      | None -> false
      | Some r ->
          Helpers.close ~rel:1e-9 r.Tree_dp.max_delay
            (Tree_delay.max_delay repeater tree r.Tree_dp.solution)
          && r.Tree_dp.max_delay <= budget *. (1.0 +. 1e-9))

let test_tree_dp_exhaustive_tiny () =
  (* One site per edge, tiny library: enumerate all assignments. *)
  let tree = three_sink_tree () in
  let library = Repeater_library.create [ 60.0; 180.0 ] in
  let sites =
    Array.init (Tree.node_count tree) (fun id ->
        if id = 0 then []
        else
          let mid = 0.5 *. tree.Tree.nodes.(id).Tree.length in
          if Tree.offset_legal tree ~edge:id mid then [ mid ] else [])
  in
  let budget = 1.3 *. Tree_hybrid.tau_min process tree in
  let site_list =
    Array.to_list sites
    |> List.mapi (fun edge offsets -> List.map (fun o -> (edge, o)) offsets)
    |> List.concat
  in
  let widths = Repeater_library.widths library in
  let rec enumerate chosen = function
    | [] -> [ chosen ]
    | site :: rest ->
        enumerate chosen rest
        @ List.concat_map
            (fun w -> enumerate ((site, w) :: chosen) rest)
            widths
  in
  let best = ref None in
  List.iter
    (fun assignment ->
      let solution =
        Tree_solution.create
          (List.map (fun ((edge, o), w) -> (edge, o, w)) assignment)
      in
      if Tree_delay.meets_budget repeater tree solution ~budget then begin
        let width = Tree_solution.total_width solution in
        match !best with
        | Some (_, bw) when bw <= width -> ()
        | _ -> best := Some (solution, width)
      end)
    (enumerate [] site_list);
  match (Tree_dp.solve repeater tree ~library ~sites ~budget, !best) with
  | Some dp, Some (_, brute_width) ->
      Alcotest.(check (float 1e-9)) "matches exhaustive" brute_width
        dp.Tree_dp.total_width
  | None, None -> ()
  | Some _, None -> Alcotest.fail "DP found a solution exhaustion missed"
  | None, Some _ -> Alcotest.fail "exhaustion found a solution DP missed"

let prop_tree_sizing_valid =
  QCheck.Test.make
    ~name:"tree sizing meets the budget with positive widths" ~count:15
    QCheck.(float_range 1.2 2.0)
    (fun slack ->
      let tree = three_sink_tree () in
      let placements =
        Tree_solution.create [ (1, 1500.0, 80.0); (3, 900.0, 80.0) ]
      in
      let fastest =
        Tree_sizing.min_delay_widths repeater tree ~placements
      in
      let layout = Tree_layout.expand tree placements in
      let floor_delay =
        Tree_layout.max_sink_delay repeater layout ~widths:fastest
      in
      let budget = slack *. floor_delay in
      match Tree_sizing.solve repeater tree ~placements ~budget with
      | None -> false
      | Some r ->
          Array.for_all (fun w -> w > 0.0) r.Tree_sizing.widths
          && r.Tree_sizing.max_delay <= budget *. (1.0 +. 1e-5)
          && r.Tree_sizing.total_width
             <= Array.fold_left ( +. ) 0.0 fastest +. 1e-6)

let test_tree_hybrid_end_to_end () =
  let tree = three_sink_tree () in
  let tau_min = Tree_hybrid.tau_min process tree in
  List.iter
    (fun slack ->
      let budget = slack *. tau_min in
      match Tree_hybrid.solve process tree ~budget with
      | Error e -> Alcotest.failf "x%.2f: %s" slack e
      | Ok r ->
          Alcotest.(check bool) "legal" true
            (Tree_solution.legal tree r.Tree_hybrid.solution);
          Alcotest.(check bool) "meets budget" true
            (Tree_delay.meets_budget repeater tree r.Tree_hybrid.solution
               ~budget);
          (match r.Tree_hybrid.coarse with
          | Some c ->
              Alcotest.(check bool) "never worse than coarse" true
                (r.Tree_hybrid.total_width
                <= c.Tree_dp.total_width +. 1e-9)
          | None -> Alcotest.fail "coarse trace missing"))
    [ 1.1; 1.3; 1.6; 2.0 ]

let test_tree_hybrid_beats_coarse_dp () =
  let tree = three_sink_tree () in
  let budget = 1.3 *. Tree_hybrid.tau_min process tree in
  match Tree_hybrid.solve process tree ~budget with
  | Error e -> Alcotest.failf "hybrid failed: %s" e
  | Ok r -> (
      match r.Tree_hybrid.coarse with
      | Some coarse ->
          Alcotest.(check bool)
            (Printf.sprintf "hybrid %.0fu < coarse %.0fu"
               r.Tree_hybrid.total_width coarse.Tree_dp.total_width)
            true
            (r.Tree_hybrid.total_width < coarse.Tree_dp.total_width)
      | None -> Alcotest.fail "no coarse trace")

let suite =
  [
    ( "tree.topology",
      [
        Alcotest.test_case "builder validation" `Quick
          test_builder_validation;
        Alcotest.test_case "queries" `Quick test_tree_queries;
        Alcotest.test_case "solutions" `Quick test_tree_solution;
      ] );
    ( "tree.chain_equivalence",
      [
        qcheck prop_chain_delay_equivalence;
        qcheck prop_chain_dp_equivalence;
        qcheck prop_chain_min_delay_equivalence;
        qcheck prop_chain_sizing_equivalence;
      ] );
    ( "tree.multi_sink",
      [
        Alcotest.test_case "layout structure" `Quick test_layout_structure;
        Alcotest.test_case "layout gate relations" `Quick
          test_layout_gate_relations;
        Alcotest.test_case "sizing tracks criticality" `Quick
          test_sizing_concentrates_on_critical_sink;
        Alcotest.test_case "delays sane" `Quick test_tree_delays_sane;
        Alcotest.test_case "dp respects zones" `Quick
          test_tree_dp_respects_zones;
        Alcotest.test_case "dp vs exhaustive" `Slow
          test_tree_dp_exhaustive_tiny;
        Alcotest.test_case "hybrid end to end" `Slow
          test_tree_hybrid_end_to_end;
        Alcotest.test_case "hybrid beats coarse" `Slow
          test_tree_hybrid_beats_coarse_dp;
        qcheck prop_tree_dp_reported_delay_consistent;
        qcheck prop_tree_sizing_valid;
      ] );
  ]
