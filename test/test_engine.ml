(* Tests for Rip_engine: the domain pool, the generic parallel maps, and
   the determinism contract of typed solve batches. *)

module Geometry = Rip_net.Geometry
module Repeater_library = Rip_dp.Repeater_library
module Validate = Rip_core.Validate
module Rip = Rip_core.Rip
module Pool = Rip_engine.Pool
module Telemetry = Rip_engine.Telemetry
module Job = Rip_engine.Job
module Engine = Rip_engine.Engine
module Suite = Rip_workload.Suite

let qcheck = QCheck_alcotest.to_alcotest
let process = Helpers.process

(* --- Pool ----------------------------------------------------------------- *)

let test_pool_runs_every_task () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 100 in
      let hits = Array.make n 0 in
      let mutex = Mutex.create () in
      let remaining = ref n in
      let done_ = Condition.create () in
      for i = 0 to n - 1 do
        Pool.submit pool (fun () ->
            Mutex.lock mutex;
            hits.(i) <- hits.(i) + 1;
            decr remaining;
            if !remaining = 0 then Condition.signal done_;
            Mutex.unlock mutex)
      done;
      Mutex.lock mutex;
      while !remaining > 0 do
        Condition.wait done_ mutex
      done;
      Mutex.unlock mutex;
      Alcotest.(check bool) "each task ran exactly once" true
        (Array.for_all (fun h -> h = 1) hits))

let test_pool_submit_after_shutdown () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  match Pool.submit pool (fun () -> ()) with
  | () -> Alcotest.fail "submit after shutdown should raise"
  | exception Invalid_argument _ -> ()

let test_pool_size_floor () =
  Pool.with_pool ~jobs:0 (fun pool ->
      Alcotest.(check int) "floored at one worker" 1 (Pool.size pool))

(* --- Engine.map ----------------------------------------------------------- *)

let test_map_preserves_order () =
  let input = Array.init 257 (fun i -> i) in
  let doubled = Engine.map ~jobs:4 (fun i -> 2 * i) input in
  Alcotest.(check (array int)) "order preserved"
    (Array.map (fun i -> 2 * i) input)
    doubled

let test_map_empty () =
  Alcotest.(check (array int)) "empty batch" [||]
    (Engine.map ~jobs:4 (fun i -> i) [||])

let test_map_propagates_first_failure () =
  let input = Array.init 16 (fun i -> i) in
  match
    Engine.map ~jobs:4
      (fun i -> if i >= 3 then failwith (string_of_int i) else i)
      input
  with
  | _ -> Alcotest.fail "expected the exception to re-raise"
  | exception Failure msg ->
      (* first by submission order, not completion order *)
      Alcotest.(check string) "first failing element" "3" msg

let test_timed_map_telemetry () =
  let input = Array.init 20 (fun i -> i) in
  let results, telemetry = Engine.timed_map ~jobs:3 (fun i -> i + 1) input in
  Alcotest.(check (array int)) "values" (Array.map (fun i -> i + 1) input)
    (Array.map fst results);
  Array.iter
    (fun (_, seconds) ->
      Alcotest.(check bool) "per-element time non-negative" true (seconds >= 0.0))
    results;
  Alcotest.(check int) "workers" 3 telemetry.Telemetry.workers;
  Alcotest.(check int) "tasks" 20 telemetry.Telemetry.tasks;
  Alcotest.(check bool) "wall covers the batch" true
    (telemetry.Telemetry.wall_seconds >= 0.0);
  Alcotest.(check bool) "utilization sane" true
    (telemetry.Telemetry.utilization >= 0.0)

let test_jobs_capped_at_batch_size () =
  (* Asking for more workers than tasks must not spawn idle domains. *)
  let input = Array.init 2 (fun i -> i) in
  let _, telemetry = Engine.timed_map ~jobs:64 (fun i -> i) input in
  Alcotest.(check int) "pool capped at batch size" 2
    telemetry.Telemetry.workers

let test_single_job_runs_inline () =
  (* jobs:1 (and a 1-element batch at any jobs) executes in the calling
     domain: same results, one reported worker, first failure semantics
     preserved. *)
  let caller = Domain.self () in
  let ran_on = ref None in
  let _, telemetry =
    Engine.timed_map ~jobs:1 (fun i -> ran_on := Some (Domain.self ()); i)
      (Array.init 5 (fun i -> i))
  in
  Alcotest.(check int) "one worker reported" 1 telemetry.Telemetry.workers;
  Alcotest.(check bool) "ran in the calling domain" true
    (!ran_on = Some caller);
  match
    Engine.map ~jobs:1
      (fun i -> if i >= 3 then failwith (string_of_int i) else i)
      (Array.init 16 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected the exception to re-raise"
  | exception Failure msg ->
      Alcotest.(check string) "first failing element" "3" msg

let test_map_suite_groups_in_order () =
  let inputs = [ 1; 2; 3 ] in
  let grouped, telemetry =
    Engine.map_suite ~jobs:4
      ~prepare:(fun i -> 10 * i)
      ~targets:(fun ctx -> [ ctx; ctx + 1 ])
      ~cell:(fun ctx k -> ctx + k)
      inputs
  in
  Alcotest.(check (list (pair int (list int))))
    "contexts and cells in input order"
    [ (10, [ 20; 21 ]); (20, [ 40; 41 ]); (30, [ 60; 61 ]) ]
    grouped;
  Alcotest.(check int) "prep + cell tasks" 9 telemetry.Telemetry.tasks

(* --- Long-lived handles ---------------------------------------------------- *)

let test_handle_reuse_across_batches () =
  Engine.with_handle ~jobs:3 (fun handle ->
      Alcotest.(check int) "jobs resolved" 3 (Engine.handle_jobs handle);
      (* Several batches on the same workers, no respawn between them. *)
      for round = 1 to 3 do
        let input = Array.init 41 (fun i -> (round * 100) + i) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d order preserved" round)
          (Array.map (fun i -> i + 1) input)
          (Engine.map_on_handle handle (fun i -> i + 1) input)
      done;
      let _, telemetry =
        Engine.timed_map_on_handle handle (fun i -> i) (Array.init 7 Fun.id)
      in
      Alcotest.(check int) "telemetry reports the handle's workers" 3
        telemetry.Telemetry.workers)

let test_handle_concurrent_batches () =
  (* The serviced worker-pool contract: connection threads share one
     handle and submit batches concurrently. *)
  Engine.with_handle ~jobs:2 (fun handle ->
      let results = Array.make 4 [||] in
      let threads =
        Array.init 4 (fun t ->
            Thread.create
              (fun () ->
                results.(t) <-
                  Engine.map_on_handle handle
                    (fun i -> (t * 1000) + (2 * i))
                    (Array.init 50 Fun.id))
              ())
      in
      Array.iter Thread.join threads;
      Array.iteri
        (fun t got ->
          Alcotest.(check (array int))
            (Printf.sprintf "thread %d batch intact" t)
            (Array.init 50 (fun i -> (t * 1000) + (2 * i)))
            got)
        results)

let test_handle_shutdown_semantics () =
  let handle = Engine.create_handle ~jobs:2 () in
  Engine.shutdown_handle handle;
  Engine.shutdown_handle handle;
  (* idempotent *)
  match Engine.map_on_handle handle Fun.id [| 1 |] with
  | _ -> Alcotest.fail "map on a shut-down handle should raise"
  | exception Invalid_argument _ -> ()

(* --- Determinism of solve batches ----------------------------------------- *)

let quick_suite_jobs () =
  (* 6 nets x 3 budgets, RIP plus a coarse-library baseline on a subset —
     a miniature of the paper's sweep. *)
  let nets = Suite.nets ~count:6 () in
  let jobs =
    List.concat_map
      (fun net ->
        let geometry = Geometry.of_net net in
        let tau_min = Rip.tau_min process geometry in
        List.concat_map
          (fun slack ->
            let budget = slack *. tau_min in
            let rip = Job.make ~geometry process net ~budget in
            let dp =
              Job.make ~geometry process net ~budget
                ~algo:
                  (Job.Baseline_dp
                     {
                       library =
                         Repeater_library.range ~min_width:40.0
                           ~max_width:400.0 ~step:90.0;
                       pitch = 400.0;
                     })
            in
            [ rip; dp ])
          [ 1.05; 1.3; 1.8 ])
      nets
  in
  Array.of_list jobs

let test_run_deterministic_across_pool_sizes () =
  let jobs = quick_suite_jobs () in
  let sequential = Engine.run ~jobs:1 jobs in
  let parallel = Engine.run ~jobs:8 jobs in
  Alcotest.(check int) "same length" (Array.length sequential)
    (Array.length parallel);
  Array.iteri
    (fun i a ->
      Alcotest.(check bool)
        (Printf.sprintf "outcome %d identical" i)
        true
        (Job.outcome_equal a parallel.(i)))
    sequential

let test_run_stats_counts_jobs () =
  let jobs = quick_suite_jobs () in
  let outcomes, telemetry = Engine.run_stats ~jobs:2 jobs in
  Alcotest.(check int) "one outcome per job" (Array.length jobs)
    (Array.length outcomes);
  Alcotest.(check int) "telemetry counts the batch" (Array.length jobs)
    telemetry.Telemetry.tasks;
  Array.iter
    (fun o ->
      Alcotest.(check bool) "cpu time measured" true (o.Job.cpu_seconds >= 0.0))
    outcomes

let test_job_execute_never_raises () =
  (* An unsolvable budget comes back as a typed error, not an exception. *)
  let net = List.hd (Suite.nets ~count:1 ()) in
  match Job.execute (Job.make process net ~budget:1e-15) with
  | Error (Rip.Infeasible_budget _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Rip.error_to_string e)
  | Ok _ -> Alcotest.fail "expected infeasible"

(* --- Typed error round-trips ---------------------------------------------- *)

let violation_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun x -> Validate.Outside_net x) (float_bound_exclusive 1e4);
        map (fun x -> Validate.In_forbidden_zone x) (float_bound_exclusive 1e4);
        map (fun x -> Validate.Width_out_of_range x) (float_bound_exclusive 1e3);
        map2
          (fun delay budget -> Validate.Over_budget { delay; budget })
          (float_bound_exclusive 1e-9) (float_bound_exclusive 1e-9);
        map (fun x -> Validate.Nonpositive_budget (-.x)) (float_bound_exclusive 1.0);
        return Validate.Geometry_mismatch;
      ])

let error_gen =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun budget hint ->
            Rip.Infeasible_budget { budget; tau_min_hint = hint })
          (float_bound_exclusive 1e-9)
          (opt (float_bound_exclusive 1e-9));
        map
          (fun vs -> Rip.Invalid_net vs)
          (list_size (int_range 0 4) violation_gen);
        map (fun s -> Rip.Internal s) string_printable;
      ])

let error_arbitrary =
  QCheck.make ~print:Rip.error_to_string error_gen

let prop_error_to_string_matches_pp =
  QCheck.Test.make ~name:"error_to_string agrees with pp and is non-empty"
    ~count:200 error_arbitrary (fun e ->
      let s = Rip.error_to_string e in
      String.length s > 0 && String.equal s (Fmt.str "%a" Rip.pp_error e))

let suite =
  [
    ( "engine",
      [
        Alcotest.test_case "pool runs every task once" `Quick
          test_pool_runs_every_task;
        Alcotest.test_case "submit after shutdown raises" `Quick
          test_pool_submit_after_shutdown;
        Alcotest.test_case "pool size floored at 1" `Quick test_pool_size_floor;
        Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
        Alcotest.test_case "map on empty batch" `Quick test_map_empty;
        Alcotest.test_case "map re-raises first failure" `Quick
          test_map_propagates_first_failure;
        Alcotest.test_case "timed_map telemetry" `Quick test_timed_map_telemetry;
        Alcotest.test_case "jobs capped at batch size" `Quick
          test_jobs_capped_at_batch_size;
        Alcotest.test_case "one worker runs inline" `Quick
          test_single_job_runs_inline;
        Alcotest.test_case "map_suite groups per input" `Quick
          test_map_suite_groups_in_order;
        Alcotest.test_case "handle reused across batches" `Quick
          test_handle_reuse_across_batches;
        Alcotest.test_case "handle shared by threads" `Quick
          test_handle_concurrent_batches;
        Alcotest.test_case "handle shutdown semantics" `Quick
          test_handle_shutdown_semantics;
        Alcotest.test_case "run jobs:1 = run jobs:8" `Slow
          test_run_deterministic_across_pool_sizes;
        Alcotest.test_case "run_stats counts the batch" `Slow
          test_run_stats_counts_jobs;
        Alcotest.test_case "execute never raises" `Quick
          test_job_execute_never_raises;
        qcheck prop_error_to_string_matches_pp;
      ] );
  ]
