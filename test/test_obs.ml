(* Tests for the rip_obs observability layer: the shared quantile
   convention, histogram exactness and concurrency, the Prometheus
   render/parse round trip, trace spans, and the solver probe hooks. *)

module Stats = Rip_numerics.Stats
module Obs = Rip_obs.Metrics
module Counter = Rip_obs.Metrics.Counter
module Gauge = Rip_obs.Metrics.Gauge
module Histogram = Rip_obs.Metrics.Histogram
module Trace = Rip_obs.Trace
module Trace_merge = Rip_obs.Trace_merge
module Geometry = Rip_net.Geometry
module Rip = Rip_core.Rip

let check_float = Alcotest.(check (float 1e-9))
let contains = Helpers.contains

let invalid name f =
  Alcotest.match_raises name
    (function Invalid_argument _ -> true | _ -> false)
    f

(* --- The shared quantile function (satellite: n = 1, 2, 4, 100) ---------- *)

let test_quantile_exact () =
  check_float "n=1 median" 42.0 (Stats.quantile 0.5 [ 42.0 ]);
  check_float "n=1 p99" 42.0 (Stats.quantile 0.99 [ 42.0 ]);
  check_float "n=2 min" 10.0 (Stats.quantile 0.0 [ 20.0; 10.0 ]);
  check_float "n=2 median" 15.0 (Stats.quantile 0.5 [ 20.0; 10.0 ]);
  check_float "n=2 q0.25" 12.5 (Stats.quantile 0.25 [ 20.0; 10.0 ]);
  check_float "n=2 max" 20.0 (Stats.quantile 1.0 [ 20.0; 10.0 ]);
  let four = [ 4.0; 1.0; 3.0; 2.0 ] in
  check_float "n=4 median" 2.5 (Stats.quantile 0.5 four);
  check_float "n=4 q0.25" 1.75 (Stats.quantile 0.25 four);
  check_float "n=4 q0.95" 3.85 (Stats.quantile 0.95 four);
  let hundred = List.init 100 (fun i -> float_of_int (100 - i)) in
  check_float "n=100 median" 50.5 (Stats.quantile 0.5 hundred);
  check_float "n=100 q0.95" 95.05 (Stats.quantile 0.95 hundred);
  check_float "n=100 q0.99" 99.01 (Stats.quantile 0.99 hundred);
  check_float "n=100 max" 100.0 (Stats.quantile 1.0 hundred)

let test_quantile_errors () =
  invalid "empty" (fun () -> ignore (Stats.quantile 0.5 []));
  invalid "q > 1" (fun () -> ignore (Stats.quantile 1.5 [ 1.0 ]));
  invalid "rank n=0" (fun () -> ignore (Stats.quantile_rank ~n:0 0.5))

(* --- Histogram buckets, clamping, exact placement ------------------------ *)

let bounds = [| 1.0; 10.0; 100.0 |]

let test_histogram_buckets () =
  let r = Obs.create () in
  let h = Obs.histogram ~bounds r ~name:"h" ~help:"test" in
  List.iter (Histogram.observe h)
    [ 0.5; 1.0; 5.0; 10.0; 99.0; 1000.0; -3.0; Float.nan ];
  let s = Histogram.snapshot h in
  Alcotest.(check (array (float 1e-12)))
    "bounds kept" bounds s.Histogram.upper_bounds;
  (* [0.5; 1.0; -3.0 (clamped)] <= 1; [5.0; 10.0]; [99.0];
     [1000.0; nan (overflow)] *)
  Alcotest.(check (array int)) "per-bucket counts" [| 3; 2; 1; 2 |]
    s.Histogram.counts;
  Alcotest.(check int) "count" 8 s.Histogram.count;
  (* nan contributes 0 to the sum, -3 contributes 0 after clamping. *)
  check_float "sum" (0.5 +. 1.0 +. 5.0 +. 10.0 +. 99.0 +. 1000.0)
    s.Histogram.sum

let test_log_bounds () =
  let b = Histogram.log_bounds ~lo:1e-3 ~hi:1.0 ~per_decade:3 in
  Alcotest.(check int) "count" 10 (Array.length b);
  check_float "first" 1e-3 b.(0);
  check_float "last is hi exactly" 1.0 b.(Array.length b - 1);
  Array.iteri
    (fun i v ->
      if i > 0 then
        Alcotest.(check bool)
          "strictly increasing" true
          (v > b.(i - 1)))
    b;
  let d = Histogram.default_latency_bounds in
  check_float "default lo" 1e-6 d.(0);
  check_float "default hi" 100.0 d.(Array.length d - 1)

(* Histogram quantiles must bracket the exact sample quantile computed
   with the same rank convention. *)
let test_histogram_quantile_brackets () =
  let r = Obs.create () in
  let h =
    Obs.histogram
      ~bounds:(Histogram.log_bounds ~lo:1e-3 ~hi:10.0 ~per_decade:5)
      r ~name:"h" ~help:"test"
  in
  let rng = Rip_numerics.Prng.create 7L in
  let samples =
    List.init 200 (fun _ -> Rip_numerics.Prng.float_range rng 1e-3 5.0)
  in
  List.iter (Histogram.observe h) samples;
  let s = Histogram.snapshot h in
  List.iter
    (fun q ->
      let exact = Stats.quantile q samples in
      let lo = Histogram.quantile ~estimate:Histogram.Lower s q in
      let hi = Histogram.quantile ~estimate:Histogram.Upper s q in
      let mid = Histogram.quantile s q in
      Alcotest.(check bool)
        (Printf.sprintf "lower <= exact at q=%g" q)
        true (lo <= exact);
      Alcotest.(check bool)
        (Printf.sprintf "exact <= upper at q=%g" q)
        true (exact <= hi);
      Alcotest.(check bool)
        (Printf.sprintf "interpolated inside bucket at q=%g" q)
        true
        (lo <= mid && mid <= hi))
    [ 0.0; 0.25; 0.5; 0.95; 0.99; 1.0 ]

let test_merge_diff () =
  let r = Obs.create () in
  let a = Obs.histogram ~bounds r ~name:"a" ~help:"test" in
  let b = Obs.histogram ~bounds r ~name:"b" ~help:"test" in
  List.iter (Histogram.observe a) [ 0.5; 5.0 ];
  List.iter (Histogram.observe b) [ 50.0; 500.0; 5.0 ];
  let sa = Histogram.snapshot a and sb = Histogram.snapshot b in
  let m = Histogram.merge sa sb in
  Alcotest.(check int) "merge preserves counts" 5 m.Histogram.count;
  Alcotest.(check (array int)) "merge buckets" [| 1; 2; 1; 1 |]
    m.Histogram.counts;
  check_float "merge sum" (560.5) m.Histogram.sum;
  let d = Histogram.diff m sa in
  Alcotest.(check int) "diff count" 3 d.Histogram.count;
  Alcotest.(check (array int)) "diff buckets" sb.Histogram.counts
    d.Histogram.counts;
  invalid "negative diff" (fun () -> ignore (Histogram.diff sa m));
  let r2 = Obs.create () in
  let other =
    Obs.histogram ~bounds:[| 2.0; 4.0 |] r2 ~name:"a" ~help:"test"
  in
  invalid "mismatched bounds" (fun () ->
      ignore (Histogram.merge sa (Histogram.snapshot other)))

(* --- Concurrency: hammer one registry from several domains --------------- *)

(* Satellite (c): every domain records into the same histogram and bumps
   a twin counter; after joining, the snapshot must show every sample
   exactly once and agree with the counter, and count must equal the
   bucket sum (the latter holds even on torn snapshots, by
   construction). *)
let test_multicore_stress () =
  let r = Obs.create () in
  let h = Obs.histogram r ~name:"stress_seconds" ~help:"test" in
  let c = Obs.counter r ~name:"stress_total" ~help:"test" in
  let g = Obs.gauge r ~name:"stress_gauge" ~help:"test" in
  let domains = 4 and per_domain = 20_000 in
  let torn = Atomic.make false in
  let snapshots_taken = Atomic.make 0 in
  let worker k () =
    let rng = Rip_numerics.Prng.create (Int64.of_int (k + 1)) in
    for _ = 1 to per_domain do
      Histogram.observe h (Rip_numerics.Prng.float_range rng 0.0 0.1);
      Counter.incr c;
      Gauge.add g 1.0
    done
  in
  (* A reader scrapes concurrently: count = sum of buckets must hold on
     every snapshot, torn or not. *)
  let reader () =
    while Atomic.get snapshots_taken < 50 do
      let s = Histogram.snapshot h in
      if s.Histogram.count <> Array.fold_left ( + ) 0 s.Histogram.counts
      then Atomic.set torn true;
      Atomic.incr snapshots_taken
    done
  in
  let ds = List.init domains (fun k -> Domain.spawn (worker k)) in
  let rd = Domain.spawn reader in
  List.iter Domain.join ds;
  Domain.join rd;
  Alcotest.(check bool) "no torn snapshot" false (Atomic.get torn);
  let s = Histogram.snapshot h in
  let total = domains * per_domain in
  Alcotest.(check int) "histogram total" total s.Histogram.count;
  Alcotest.(check int) "counter total" total (Counter.value c);
  check_float "gauge total" (float_of_int total) (Gauge.value g);
  Alcotest.(check int) "bucket sum" total
    (Array.fold_left ( + ) 0 s.Histogram.counts)

(* --- Registry: registration, render, parse round trip -------------------- *)

let test_registry_names () =
  let r = Obs.create () in
  let _ = Obs.counter r ~name:"a_total" ~help:"test" in
  let _ = Obs.gauge r ~name:"b" ~help:"test" in
  Obs.gauge_fn r ~name:"c" ~help:"test" (fun () -> 3.0);
  Alcotest.(check (list string))
    "registration order" [ "a_total"; "b"; "c" ] (Obs.registered_names r);
  invalid "duplicate name" (fun () ->
      ignore (Obs.counter r ~name:"a_total" ~help:"again"));
  invalid "invalid name" (fun () ->
      ignore (Obs.counter r ~name:"bad name" ~help:"test"))

let test_render_parse_roundtrip () =
  let r = Obs.create () in
  let c = Obs.counter r ~name:"reqs_total" ~help:"requests" in
  let h = Obs.histogram ~bounds r ~name:"lat_seconds" ~help:"latency" in
  Counter.add c 3;
  List.iter (Histogram.observe h) [ 0.5; 5.0; 500.0 ];
  let text = Obs.render r in
  Alcotest.(check bool)
    "help line present" true
    (List.exists
       (fun l -> l = "# HELP reqs_total requests")
       (String.split_on_char '\n' text));
  Alcotest.(check bool)
    "+Inf bucket present" true
    (List.exists
       (fun l -> l = "lat_seconds_bucket{le=\"+Inf\"} 3")
       (String.split_on_char '\n' text));
  match Obs.parse_histograms text with
  | [ ("lat_seconds", parsed) ] ->
      let s = Histogram.snapshot h in
      Alcotest.(check (array (float 1e-12)))
        "bounds round-trip" s.Histogram.upper_bounds
        parsed.Histogram.upper_bounds;
      Alcotest.(check (array int))
        "buckets round-trip" s.Histogram.counts parsed.Histogram.counts;
      Alcotest.(check int) "count round-trip" s.Histogram.count
        parsed.Histogram.count;
      check_float "sum round-trip" s.Histogram.sum parsed.Histogram.sum
  | other ->
      Alcotest.failf "expected one parsed histogram, got %d"
        (List.length other)

(* --- Trace spans ---------------------------------------------------------- *)

let test_trace_spans () =
  let t = Trace.create () in
  let finish = Trace.begin_span t ~cat:"test" ~args:[ ("k", "v") ] "outer" in
  Trace.span (Some t) "inner" (fun () -> ());
  finish ();
  finish ();
  (* idempotent: the second call records nothing *)
  Alcotest.(check int) "two spans" 2 (Trace.span_count t);
  let json = Trace.to_chrome_json t in
  Alcotest.(check bool)
    "chrome envelope" true
    (String.length json > 0
    && String.sub json 0 1 = "{"
    && contains json "\"traceEvents\""
    && contains json "\"ph\":\"X\""
    && contains json "\"name\":\"outer\""
    && contains json "\"k\":\"v\"");
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check bool) "non-negative duration" true (s.duration >= 0.0);
      Alcotest.(check bool) "non-negative start" true (s.start >= 0.0))
    (Trace.spans t)

let test_trace_span_id () =
  let a = Trace.span_id ~digest:"abc" "solve" in
  Alcotest.(check string)
    "deterministic" a
    (Trace.span_id ~digest:"abc" "solve");
  Alcotest.(check int) "16 hex chars" 16 (String.length a);
  Alcotest.(check bool)
    "name changes the id" true
    (a <> Trace.span_id ~digest:"abc" "queue");
  Alcotest.(check bool)
    "digest changes the id" true
    (a <> Trace.span_id ~digest:"abd" "solve")

let test_trace_disabled_nop () =
  Alcotest.(check int)
    "span over None runs the body" 7
    (Trace.span None "nothing" (fun () -> 7));
  let finish = Trace.begin_opt None "nothing" in
  finish ()

(* Regression: span ids used to be MD5(digest/name) with no process
   scope, so two shards solving the same digest collided in a merged
   timeline.  The empty scope must keep the historical formula (old
   dumps stay diffable); any non-empty scope must perturb it. *)
let test_scoped_span_ids () =
  let legacy = Trace.span_id ~digest:"abc" "solve" in
  Alcotest.(check string)
    "empty scope is the legacy id" legacy
    (Trace.span_id ~scope:"" ~digest:"abc" "solve");
  let s0 = Trace.span_id ~scope:"s0" ~digest:"abc" "solve" in
  let s1 = Trace.span_id ~scope:"s1" ~digest:"abc" "solve" in
  Alcotest.(check bool) "scope perturbs the id" true (s0 <> legacy);
  Alcotest.(check bool) "distinct scopes, distinct ids" true (s0 <> s1);
  Alcotest.(check int) "still 16 hex chars" 16 (String.length s0);
  let t = Trace.create ~scope:"s0" () in
  Alcotest.(check string)
    "scoped_span_id uses the tracer's scope" s0
    (Trace.scoped_span_id t ~digest:"abc" "solve")

let test_trace_context () =
  let c = Trace.make_context ~scope:"loadgen" ~digest:"abc" ~seq:7 () in
  Alcotest.(check bool) "valid" true (Trace.valid_context c);
  Alcotest.(check int) "32-hex trace id" 32 (String.length c.Trace.trace_id);
  Alcotest.(check string)
    "ingress parent is the root" Trace.root_span_id c.Trace.parent_span_id;
  Alcotest.(check bool)
    "deterministic" true
    (Trace.context_equal c
       (Trace.make_context ~scope:"loadgen" ~digest:"abc" ~seq:7 ()));
  Alcotest.(check bool)
    "seq separates repeat solves" true
    (not
       (Trace.context_equal c
          (Trace.make_context ~scope:"loadgen" ~digest:"abc" ~seq:8 ())));
  let child = Trace.child c ~span_id:"aaaaaaaaaaaaaaaa" in
  Alcotest.(check string)
    "child keeps the trace" c.Trace.trace_id child.Trace.trace_id;
  Alcotest.(check string)
    "child reparents" "aaaaaaaaaaaaaaaa" child.Trace.parent_span_id;
  (match
     Trace.context_of_tokens ~trace_id:c.Trace.trace_id
       ~parent_span_id:c.Trace.parent_span_id
       ~flags:(string_of_int c.Trace.flags)
   with
  | Some parsed ->
      Alcotest.(check bool)
        "token round trip" true (Trace.context_equal c parsed)
  | None -> Alcotest.fail "valid tokens rejected");
  List.iter
    (fun (tid, psid, flags) ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %s/%s/%s" tid psid flags)
        true
        (Option.is_none
           (Trace.context_of_tokens ~trace_id:tid ~parent_span_id:psid ~flags)))
    [
      ("short", "0000000000000000", "0");
      (String.make 32 'g', "0000000000000000", "0");
      (c.Trace.trace_id, "short", "0");
      (c.Trace.trace_id, "0000000000000000", "256");
      (c.Trace.trace_id, "0000000000000000", "-1");
      (c.Trace.trace_id, "0000000000000000", "x");
    ]

(* --- Wide events ---------------------------------------------------------- *)

module Wide_event = Rip_obs.Wide_event

let sample_event =
  {
    Wide_event.empty with
    process = "s0";
    trace_id = "deadbeefdeadbeefdeadbeefdeadbeef";
    digest = "abc";
    shard = "s0";
    outcome = "fresh";
    cache = "miss";
    dp_backend = "pruning";
    labels_pruned = 42;
    queue_wait = 0.001;
    latency = 0.25;
    deadline_slack = 0.75;
  }

let test_wide_event_roundtrip () =
  let line = Wide_event.to_line sample_event in
  Alcotest.(check bool)
    "one line, no newline" true
    (not (String.contains line '\n'));
  (match Wide_event.of_line line with
  | Ok e -> Alcotest.(check bool) "round trips" true (e = sample_event)
  | Error e -> Alcotest.fail e);
  (* nan deadline slack (no deadline) must survive the round trip *)
  let no_deadline = { sample_event with Wide_event.deadline_slack = Float.nan } in
  (match Wide_event.of_line (Wide_event.to_line no_deadline) with
  | Ok e ->
      Alcotest.(check bool)
        "nan slack round trips" true
        (Float.is_nan e.Wide_event.deadline_slack)
  | Error e -> Alcotest.fail e);
  (match Wide_event.of_line "{\"schema\":999}" with
  | Ok _ -> Alcotest.fail "future schema accepted"
  | Error _ -> ());
  match Wide_event.of_line "not json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

let test_wide_event_sampling () =
  let sampler = { Wide_event.latency_threshold = 0.1; sample_ratio = 0.0 } in
  let fast = { sample_event with Wide_event.latency = 0.001 } in
  Alcotest.(check bool)
    "boring fast event sampled out at ratio 0" false
    (Wide_event.keep sampler fast);
  Alcotest.(check bool)
    "slow event always kept" true
    (Wide_event.keep sampler { fast with Wide_event.latency = 0.2 });
  List.iter
    (fun e ->
      Alcotest.(check bool)
        ("interesting always kept: " ^ e.Wide_event.outcome
       ^ if e.Wide_event.hedged then "+hedged" else "")
        true
        (Wide_event.interesting e && Wide_event.keep sampler e))
    [
      { fast with Wide_event.outcome = "degraded" };
      { fast with Wide_event.outcome = "timeout" };
      { fast with Wide_event.outcome = "error" };
      { fast with Wide_event.hedged = true };
      { fast with Wide_event.failover = true };
      { fast with Wide_event.spilled = true };
      { fast with Wide_event.breaker_skip = true };
    ];
  Alcotest.(check bool)
    "ratio 1 keeps everything" true
    (Wide_event.keep Wide_event.keep_all fast);
  (* the probabilistic tier is deterministic in the event identity *)
  let half = { Wide_event.latency_threshold = 0.1; sample_ratio = 0.5 } in
  Alcotest.(check bool)
    "sampling decision is deterministic" (Wide_event.keep half fast)
    (Wide_event.keep half fast)

let test_wide_event_spool () =
  let path = Filename.temp_file "rip_spool" ".jsonl" in
  let spool = Wide_event.create ~sampler:Wide_event.keep_all path in
  let events =
    List.init 5 (fun i ->
        { sample_event with Wide_event.labels_pruned = i })
  in
  List.iter (Wide_event.emit spool) events;
  Alcotest.(check int) "all written" 5 (Wide_event.written spool);
  Alcotest.(check int) "none sampled out" 0 (Wide_event.sampled_out spool);
  Wide_event.close spool;
  let loaded = Wide_event.load_file path in
  Alcotest.(check int) "all load back" 5 (List.length loaded);
  Alcotest.(check bool) "in order, intact" true (loaded = events);
  (* a torn tail (crash mid-line) is skipped, not an error *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"schema\":1,\"proc";
  close_out oc;
  Alcotest.(check int)
    "torn tail skipped" 5
    (List.length (Wide_event.load_file path));
  Sys.remove path

let test_wide_event_spool_rotation () =
  let path = Filename.temp_file "rip_spool_rot" ".jsonl" in
  let spool =
    Wide_event.create ~max_bytes:4096 ~sampler:Wide_event.keep_all path
  in
  for i = 1 to 40 do
    Wide_event.emit spool { sample_event with Wide_event.labels_pruned = i }
  done;
  Wide_event.close spool;
  Alcotest.(check bool)
    "rotated generation exists" true
    (Sys.file_exists (path ^ ".1"));
  Alcotest.(check bool)
    "live file stays under the cap" true
    ((Unix.stat path).Unix.st_size <= 4096);
  (* disk is bounded at ~2x max_bytes: older generations are clobbered,
     but the most recent events always survive in the live file *)
  let live = Wide_event.load_file path in
  let old = Wide_event.load_file (path ^ ".1") in
  Alcotest.(check bool)
    "both generations parse" true
    (live <> [] && old <> []);
  (match List.rev live with
  | last :: _ ->
      Alcotest.(check int)
        "newest event is in the live file" 40 last.Wide_event.labels_pruned
  | [] -> Alcotest.fail "empty live spool");
  Sys.remove path;
  Sys.remove (path ^ ".1")

(* --- Cross-process trace merging ------------------------------------------ *)

let test_trace_merge () =
  let router = Trace.create ~scope:"router" ~pid:11 () in
  let shard = Trace.create ~scope:"s0" ~pid:22 () in
  let ctx = Trace.make_context ~scope:"loadgen" ~digest:"abc" ~seq:0 () in
  let fwd_id = Trace.scoped_span_id router ~digest:"abc" "forward:s0" in
  Trace.span (Some router) ~cat:"router"
    ~args:
      (("span_id", fwd_id)
      :: Trace.context_args (Trace.child ctx ~span_id:fwd_id))
    "forward:s0"
    (fun () ->
      Trace.span (Some shard) ~cat:"service"
        ~args:
          (("span_id", Trace.scoped_span_id shard ~digest:"abc" "solve")
          :: Trace.context_args (Trace.child ctx ~span_id:fwd_id))
        "solve"
        (fun () -> ()));
  let parse t =
    match Trace_merge.parse (Trace.to_chrome_json t) with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let dr = parse router and ds = parse shard in
  Alcotest.(check string)
    "ripMeta scope becomes the label" "router" dr.Trace_merge.label;
  Alcotest.(check int) "pid carried" 11 dr.Trace_merge.pid;
  let merged = Trace_merge.merge [ dr; ds ] in
  Alcotest.(check bool)
    "both process tracks labelled" true
    (contains merged "\"router\"" && contains merged "\"s0\""
    && contains merged "process_name");
  (match Trace_merge.parse merged with
  | Ok d ->
      Alcotest.(check bool)
        "merged doc reparses" true
        (List.length d.Trace_merge.events >= 2)
  | Error e -> Alcotest.fail e);
  match Trace_merge.traces [ dr; ds ] with
  | [ (tid, spans) ] ->
      Alcotest.(check string) "grouped by trace id" ctx.Trace.trace_id tid;
      Alcotest.(check int) "both spans in the trace" 2 (List.length spans);
      let solve =
        List.find
          (fun (s : Trace_merge.trace_span) -> s.span_name = "solve")
          spans
      in
      Alcotest.(check string)
        "shard span parents under the forward span" fwd_id
        (Option.value ~default:""
           (List.assoc_opt "parent_span_id" solve.Trace_merge.span_args))
  | traces ->
      Alcotest.fail
        (Printf.sprintf "expected 1 trace, got %d" (List.length traces))

(* --- Prometheus exposition conformance ------------------------------------ *)

let test_exposition_conformance () =
  let r = Obs.create () in
  let c =
    Obs.counter r ~name:"conf_total" ~help:"line one\nline two \\ backslash"
  in
  let h = Obs.histogram ~bounds r ~name:"conf_seconds" ~help:"latency" in
  Counter.incr c;
  Histogram.observe h 0.5;
  Histogram.observe h 1e9 (* lands in the +Inf overflow bucket *);
  let text = Obs.render r in
  Alcotest.(check bool)
    "HELP and TYPE comments" true
    (contains text "# HELP conf_total "
    && contains text "# TYPE conf_total counter"
    && contains text "# HELP conf_seconds "
    && contains text "# TYPE conf_seconds histogram");
  Alcotest.(check bool)
    "HELP newline and backslash escaped" true
    (contains text "line one\\nline two \\\\ backslash");
  Alcotest.(check bool)
    "explicit +Inf bucket" true
    (contains text "conf_seconds_bucket{le=\"+Inf\"} 2");
  Alcotest.(check bool)
    "sum and count series" true
    (contains text "conf_seconds_sum" && contains text "conf_seconds_count 2");
  (* every bucket line is cumulative and le-sorted *)
  match Obs.parse_histograms text with
  | [ ("conf_seconds", s) ] ->
      Alcotest.(check int) "parse sees both samples" 2 s.Histogram.count
  | _ -> Alcotest.fail "histogram family did not round trip"

(* --- Solver probes through the full pipeline ------------------------------ *)

let probe_request () =
  let net =
    Rip_net.Net.create
      ~segments:
        [
          Rip_net.Segment.of_layer Rip_tech.Layer.metal4 ~length:4000.0;
          Rip_net.Segment.of_layer Rip_tech.Layer.metal5 ~length:4000.0;
        ]
      ~zones:[ Rip_net.Zone.create ~z_start:2500.0 ~z_end:3500.0 ]
      ~driver_width:20.0 ~receiver_width:40.0 ()
  in
  let geometry = Geometry.of_net net in
  let budget = 1.4 *. Rip.tau_min Helpers.process geometry in
  { Rip.process = Helpers.process; net; geometry = Some geometry; budget }

let test_solver_probes () =
  let dp_events = ref 0 and pruned = ref 0 in
  let refine_iterations = ref 0 and newton_events = ref 0 in
  let phases = ref [] in
  let probe = function
    | Rip.Dp (Rip_dp.Power_dp.Column { collected; kept; _ }) ->
        incr dp_events;
        Alcotest.(check bool) "kept <= collected" true (kept <= collected);
        pruned := !pruned + (collected - kept)
    | Rip.Refine (Rip_refine.Refine.Iteration { iteration; _ }) ->
        refine_iterations := max !refine_iterations iteration
    | Rip.Refine (Rip_refine.Refine.Newton _) -> incr newton_events
  in
  let phase name =
    phases := name :: !phases;
    fun () -> ()
  in
  let probed =
    Rip.solve
      ~hooks:(Rip_core.Hooks.make ~probe ~phase ())
      (probe_request ())
  in
  let plain = Rip.solve (probe_request ()) in
  (match (probed, plain) with
  | Ok a, Ok b ->
      Alcotest.(check bool)
        "probe does not change the solution" true
        (Rip_elmore.Solution.equal a.Rip.solution b.Rip.solution)
  | _ -> Alcotest.fail "solve failed");
  Alcotest.(check bool) "dp columns observed" true (!dp_events > 0);
  Alcotest.(check bool) "labels pruned observed" true (!pruned >= 0);
  Alcotest.(check bool)
    "phases include the coarse DP" true
    (List.mem "coarse_dp" !phases);
  Alcotest.(check bool)
    "phases include refine" true
    (List.mem "refine" !phases)

let suite =
  [
    ( "obs.quantile",
      [
        Alcotest.test_case "exact values at n = 1, 2, 4, 100" `Quick
          test_quantile_exact;
        Alcotest.test_case "errors" `Quick test_quantile_errors;
      ] );
    ( "obs.histogram",
      [
        Alcotest.test_case "bucket placement and clamping" `Quick
          test_histogram_buckets;
        Alcotest.test_case "log bounds" `Quick test_log_bounds;
        Alcotest.test_case "quantile brackets the exact sample quantile"
          `Quick test_histogram_quantile_brackets;
        Alcotest.test_case "merge and diff preserve counts" `Quick
          test_merge_diff;
        Alcotest.test_case "multi-domain stress: consistent snapshots" `Slow
          test_multicore_stress;
      ] );
    ( "obs.registry",
      [
        Alcotest.test_case "names and duplicates" `Quick test_registry_names;
        Alcotest.test_case "render/parse round trip" `Quick
          test_render_parse_roundtrip;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "spans and chrome JSON" `Quick test_trace_spans;
        Alcotest.test_case "deterministic span ids" `Quick test_trace_span_id;
        Alcotest.test_case "disabled tracer is a nop" `Quick
          test_trace_disabled_nop;
        Alcotest.test_case "scoped span ids do not collide across shards"
          `Quick test_scoped_span_ids;
        Alcotest.test_case "trace contexts: mint, parse, child" `Quick
          test_trace_context;
        Alcotest.test_case "cross-process merge links forward to solve"
          `Quick test_trace_merge;
      ] );
    ( "obs.wide_events",
      [
        Alcotest.test_case "line round trip" `Quick test_wide_event_roundtrip;
        Alcotest.test_case "tail sampler keeps the tail" `Quick
          test_wide_event_sampling;
        Alcotest.test_case "spool write/load and torn tails" `Quick
          test_wide_event_spool;
        Alcotest.test_case "spool rotation bounds disk" `Quick
          test_wide_event_spool_rotation;
      ] );
    ( "obs.exposition",
      [
        Alcotest.test_case "Prometheus conformance: HELP escaping, +Inf"
          `Quick test_exposition_conformance;
      ] );
    ( "obs.probes",
      [
        Alcotest.test_case "probe and phase hooks through Rip.solve" `Quick
          test_solver_probes;
      ] );
  ]
