(* Tests for the rip_obs observability layer: the shared quantile
   convention, histogram exactness and concurrency, the Prometheus
   render/parse round trip, trace spans, and the solver probe hooks. *)

module Stats = Rip_numerics.Stats
module Obs = Rip_obs.Metrics
module Counter = Rip_obs.Metrics.Counter
module Gauge = Rip_obs.Metrics.Gauge
module Histogram = Rip_obs.Metrics.Histogram
module Trace = Rip_obs.Trace
module Geometry = Rip_net.Geometry
module Rip = Rip_core.Rip

let check_float = Alcotest.(check (float 1e-9))
let contains = Helpers.contains

let invalid name f =
  Alcotest.match_raises name
    (function Invalid_argument _ -> true | _ -> false)
    f

(* --- The shared quantile function (satellite: n = 1, 2, 4, 100) ---------- *)

let test_quantile_exact () =
  check_float "n=1 median" 42.0 (Stats.quantile 0.5 [ 42.0 ]);
  check_float "n=1 p99" 42.0 (Stats.quantile 0.99 [ 42.0 ]);
  check_float "n=2 min" 10.0 (Stats.quantile 0.0 [ 20.0; 10.0 ]);
  check_float "n=2 median" 15.0 (Stats.quantile 0.5 [ 20.0; 10.0 ]);
  check_float "n=2 q0.25" 12.5 (Stats.quantile 0.25 [ 20.0; 10.0 ]);
  check_float "n=2 max" 20.0 (Stats.quantile 1.0 [ 20.0; 10.0 ]);
  let four = [ 4.0; 1.0; 3.0; 2.0 ] in
  check_float "n=4 median" 2.5 (Stats.quantile 0.5 four);
  check_float "n=4 q0.25" 1.75 (Stats.quantile 0.25 four);
  check_float "n=4 q0.95" 3.85 (Stats.quantile 0.95 four);
  let hundred = List.init 100 (fun i -> float_of_int (100 - i)) in
  check_float "n=100 median" 50.5 (Stats.quantile 0.5 hundred);
  check_float "n=100 q0.95" 95.05 (Stats.quantile 0.95 hundred);
  check_float "n=100 q0.99" 99.01 (Stats.quantile 0.99 hundred);
  check_float "n=100 max" 100.0 (Stats.quantile 1.0 hundred)

let test_quantile_errors () =
  invalid "empty" (fun () -> ignore (Stats.quantile 0.5 []));
  invalid "q > 1" (fun () -> ignore (Stats.quantile 1.5 [ 1.0 ]));
  invalid "rank n=0" (fun () -> ignore (Stats.quantile_rank ~n:0 0.5))

(* --- Histogram buckets, clamping, exact placement ------------------------ *)

let bounds = [| 1.0; 10.0; 100.0 |]

let test_histogram_buckets () =
  let r = Obs.create () in
  let h = Obs.histogram ~bounds r ~name:"h" ~help:"test" in
  List.iter (Histogram.observe h)
    [ 0.5; 1.0; 5.0; 10.0; 99.0; 1000.0; -3.0; Float.nan ];
  let s = Histogram.snapshot h in
  Alcotest.(check (array (float 1e-12)))
    "bounds kept" bounds s.Histogram.upper_bounds;
  (* [0.5; 1.0; -3.0 (clamped)] <= 1; [5.0; 10.0]; [99.0];
     [1000.0; nan (overflow)] *)
  Alcotest.(check (array int)) "per-bucket counts" [| 3; 2; 1; 2 |]
    s.Histogram.counts;
  Alcotest.(check int) "count" 8 s.Histogram.count;
  (* nan contributes 0 to the sum, -3 contributes 0 after clamping. *)
  check_float "sum" (0.5 +. 1.0 +. 5.0 +. 10.0 +. 99.0 +. 1000.0)
    s.Histogram.sum

let test_log_bounds () =
  let b = Histogram.log_bounds ~lo:1e-3 ~hi:1.0 ~per_decade:3 in
  Alcotest.(check int) "count" 10 (Array.length b);
  check_float "first" 1e-3 b.(0);
  check_float "last is hi exactly" 1.0 b.(Array.length b - 1);
  Array.iteri
    (fun i v ->
      if i > 0 then
        Alcotest.(check bool)
          "strictly increasing" true
          (v > b.(i - 1)))
    b;
  let d = Histogram.default_latency_bounds in
  check_float "default lo" 1e-6 d.(0);
  check_float "default hi" 100.0 d.(Array.length d - 1)

(* Histogram quantiles must bracket the exact sample quantile computed
   with the same rank convention. *)
let test_histogram_quantile_brackets () =
  let r = Obs.create () in
  let h =
    Obs.histogram
      ~bounds:(Histogram.log_bounds ~lo:1e-3 ~hi:10.0 ~per_decade:5)
      r ~name:"h" ~help:"test"
  in
  let rng = Rip_numerics.Prng.create 7L in
  let samples =
    List.init 200 (fun _ -> Rip_numerics.Prng.float_range rng 1e-3 5.0)
  in
  List.iter (Histogram.observe h) samples;
  let s = Histogram.snapshot h in
  List.iter
    (fun q ->
      let exact = Stats.quantile q samples in
      let lo = Histogram.quantile ~estimate:Histogram.Lower s q in
      let hi = Histogram.quantile ~estimate:Histogram.Upper s q in
      let mid = Histogram.quantile s q in
      Alcotest.(check bool)
        (Printf.sprintf "lower <= exact at q=%g" q)
        true (lo <= exact);
      Alcotest.(check bool)
        (Printf.sprintf "exact <= upper at q=%g" q)
        true (exact <= hi);
      Alcotest.(check bool)
        (Printf.sprintf "interpolated inside bucket at q=%g" q)
        true
        (lo <= mid && mid <= hi))
    [ 0.0; 0.25; 0.5; 0.95; 0.99; 1.0 ]

let test_merge_diff () =
  let r = Obs.create () in
  let a = Obs.histogram ~bounds r ~name:"a" ~help:"test" in
  let b = Obs.histogram ~bounds r ~name:"b" ~help:"test" in
  List.iter (Histogram.observe a) [ 0.5; 5.0 ];
  List.iter (Histogram.observe b) [ 50.0; 500.0; 5.0 ];
  let sa = Histogram.snapshot a and sb = Histogram.snapshot b in
  let m = Histogram.merge sa sb in
  Alcotest.(check int) "merge preserves counts" 5 m.Histogram.count;
  Alcotest.(check (array int)) "merge buckets" [| 1; 2; 1; 1 |]
    m.Histogram.counts;
  check_float "merge sum" (560.5) m.Histogram.sum;
  let d = Histogram.diff m sa in
  Alcotest.(check int) "diff count" 3 d.Histogram.count;
  Alcotest.(check (array int)) "diff buckets" sb.Histogram.counts
    d.Histogram.counts;
  invalid "negative diff" (fun () -> ignore (Histogram.diff sa m));
  let r2 = Obs.create () in
  let other =
    Obs.histogram ~bounds:[| 2.0; 4.0 |] r2 ~name:"a" ~help:"test"
  in
  invalid "mismatched bounds" (fun () ->
      ignore (Histogram.merge sa (Histogram.snapshot other)))

(* --- Concurrency: hammer one registry from several domains --------------- *)

(* Satellite (c): every domain records into the same histogram and bumps
   a twin counter; after joining, the snapshot must show every sample
   exactly once and agree with the counter, and count must equal the
   bucket sum (the latter holds even on torn snapshots, by
   construction). *)
let test_multicore_stress () =
  let r = Obs.create () in
  let h = Obs.histogram r ~name:"stress_seconds" ~help:"test" in
  let c = Obs.counter r ~name:"stress_total" ~help:"test" in
  let g = Obs.gauge r ~name:"stress_gauge" ~help:"test" in
  let domains = 4 and per_domain = 20_000 in
  let torn = Atomic.make false in
  let snapshots_taken = Atomic.make 0 in
  let worker k () =
    let rng = Rip_numerics.Prng.create (Int64.of_int (k + 1)) in
    for _ = 1 to per_domain do
      Histogram.observe h (Rip_numerics.Prng.float_range rng 0.0 0.1);
      Counter.incr c;
      Gauge.add g 1.0
    done
  in
  (* A reader scrapes concurrently: count = sum of buckets must hold on
     every snapshot, torn or not. *)
  let reader () =
    while Atomic.get snapshots_taken < 50 do
      let s = Histogram.snapshot h in
      if s.Histogram.count <> Array.fold_left ( + ) 0 s.Histogram.counts
      then Atomic.set torn true;
      Atomic.incr snapshots_taken
    done
  in
  let ds = List.init domains (fun k -> Domain.spawn (worker k)) in
  let rd = Domain.spawn reader in
  List.iter Domain.join ds;
  Domain.join rd;
  Alcotest.(check bool) "no torn snapshot" false (Atomic.get torn);
  let s = Histogram.snapshot h in
  let total = domains * per_domain in
  Alcotest.(check int) "histogram total" total s.Histogram.count;
  Alcotest.(check int) "counter total" total (Counter.value c);
  check_float "gauge total" (float_of_int total) (Gauge.value g);
  Alcotest.(check int) "bucket sum" total
    (Array.fold_left ( + ) 0 s.Histogram.counts)

(* --- Registry: registration, render, parse round trip -------------------- *)

let test_registry_names () =
  let r = Obs.create () in
  let _ = Obs.counter r ~name:"a_total" ~help:"test" in
  let _ = Obs.gauge r ~name:"b" ~help:"test" in
  Obs.gauge_fn r ~name:"c" ~help:"test" (fun () -> 3.0);
  Alcotest.(check (list string))
    "registration order" [ "a_total"; "b"; "c" ] (Obs.registered_names r);
  invalid "duplicate name" (fun () ->
      ignore (Obs.counter r ~name:"a_total" ~help:"again"));
  invalid "invalid name" (fun () ->
      ignore (Obs.counter r ~name:"bad name" ~help:"test"))

let test_render_parse_roundtrip () =
  let r = Obs.create () in
  let c = Obs.counter r ~name:"reqs_total" ~help:"requests" in
  let h = Obs.histogram ~bounds r ~name:"lat_seconds" ~help:"latency" in
  Counter.add c 3;
  List.iter (Histogram.observe h) [ 0.5; 5.0; 500.0 ];
  let text = Obs.render r in
  Alcotest.(check bool)
    "help line present" true
    (List.exists
       (fun l -> l = "# HELP reqs_total requests")
       (String.split_on_char '\n' text));
  Alcotest.(check bool)
    "+Inf bucket present" true
    (List.exists
       (fun l -> l = "lat_seconds_bucket{le=\"+Inf\"} 3")
       (String.split_on_char '\n' text));
  match Obs.parse_histograms text with
  | [ ("lat_seconds", parsed) ] ->
      let s = Histogram.snapshot h in
      Alcotest.(check (array (float 1e-12)))
        "bounds round-trip" s.Histogram.upper_bounds
        parsed.Histogram.upper_bounds;
      Alcotest.(check (array int))
        "buckets round-trip" s.Histogram.counts parsed.Histogram.counts;
      Alcotest.(check int) "count round-trip" s.Histogram.count
        parsed.Histogram.count;
      check_float "sum round-trip" s.Histogram.sum parsed.Histogram.sum
  | other ->
      Alcotest.failf "expected one parsed histogram, got %d"
        (List.length other)

(* --- Trace spans ---------------------------------------------------------- *)

let test_trace_spans () =
  let t = Trace.create () in
  let finish = Trace.begin_span t ~cat:"test" ~args:[ ("k", "v") ] "outer" in
  Trace.span (Some t) "inner" (fun () -> ());
  finish ();
  finish ();
  (* idempotent: the second call records nothing *)
  Alcotest.(check int) "two spans" 2 (Trace.span_count t);
  let json = Trace.to_chrome_json t in
  Alcotest.(check bool)
    "chrome envelope" true
    (String.length json > 0
    && String.sub json 0 1 = "{"
    && contains json "\"traceEvents\""
    && contains json "\"ph\":\"X\""
    && contains json "\"name\":\"outer\""
    && contains json "\"k\":\"v\"");
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check bool) "non-negative duration" true (s.duration >= 0.0);
      Alcotest.(check bool) "non-negative start" true (s.start >= 0.0))
    (Trace.spans t)

let test_trace_span_id () =
  let a = Trace.span_id ~digest:"abc" "solve" in
  Alcotest.(check string)
    "deterministic" a
    (Trace.span_id ~digest:"abc" "solve");
  Alcotest.(check int) "16 hex chars" 16 (String.length a);
  Alcotest.(check bool)
    "name changes the id" true
    (a <> Trace.span_id ~digest:"abc" "queue");
  Alcotest.(check bool)
    "digest changes the id" true
    (a <> Trace.span_id ~digest:"abd" "solve")

let test_trace_disabled_nop () =
  Alcotest.(check int)
    "span over None runs the body" 7
    (Trace.span None "nothing" (fun () -> 7));
  let finish = Trace.begin_opt None "nothing" in
  finish ()

(* --- Solver probes through the full pipeline ------------------------------ *)

let probe_request () =
  let net =
    Rip_net.Net.create
      ~segments:
        [
          Rip_net.Segment.of_layer Rip_tech.Layer.metal4 ~length:4000.0;
          Rip_net.Segment.of_layer Rip_tech.Layer.metal5 ~length:4000.0;
        ]
      ~zones:[ Rip_net.Zone.create ~z_start:2500.0 ~z_end:3500.0 ]
      ~driver_width:20.0 ~receiver_width:40.0 ()
  in
  let geometry = Geometry.of_net net in
  let budget = 1.4 *. Rip.tau_min Helpers.process geometry in
  { Rip.process = Helpers.process; net; geometry = Some geometry; budget }

let test_solver_probes () =
  let dp_events = ref 0 and pruned = ref 0 in
  let refine_iterations = ref 0 and newton_events = ref 0 in
  let phases = ref [] in
  let probe = function
    | Rip.Dp (Rip_dp.Power_dp.Column { collected; kept; _ }) ->
        incr dp_events;
        Alcotest.(check bool) "kept <= collected" true (kept <= collected);
        pruned := !pruned + (collected - kept)
    | Rip.Refine (Rip_refine.Refine.Iteration { iteration; _ }) ->
        refine_iterations := max !refine_iterations iteration
    | Rip.Refine (Rip_refine.Refine.Newton _) -> incr newton_events
  in
  let phase name =
    phases := name :: !phases;
    fun () -> ()
  in
  let probed =
    Rip.solve
      ~hooks:(Rip_core.Hooks.make ~probe ~phase ())
      (probe_request ())
  in
  let plain = Rip.solve (probe_request ()) in
  (match (probed, plain) with
  | Ok a, Ok b ->
      Alcotest.(check bool)
        "probe does not change the solution" true
        (Rip_elmore.Solution.equal a.Rip.solution b.Rip.solution)
  | _ -> Alcotest.fail "solve failed");
  Alcotest.(check bool) "dp columns observed" true (!dp_events > 0);
  Alcotest.(check bool) "labels pruned observed" true (!pruned >= 0);
  Alcotest.(check bool)
    "phases include the coarse DP" true
    (List.mem "coarse_dp" !phases);
  Alcotest.(check bool)
    "phases include refine" true
    (List.mem "refine" !phases)

let suite =
  [
    ( "obs.quantile",
      [
        Alcotest.test_case "exact values at n = 1, 2, 4, 100" `Quick
          test_quantile_exact;
        Alcotest.test_case "errors" `Quick test_quantile_errors;
      ] );
    ( "obs.histogram",
      [
        Alcotest.test_case "bucket placement and clamping" `Quick
          test_histogram_buckets;
        Alcotest.test_case "log bounds" `Quick test_log_bounds;
        Alcotest.test_case "quantile brackets the exact sample quantile"
          `Quick test_histogram_quantile_brackets;
        Alcotest.test_case "merge and diff preserve counts" `Quick
          test_merge_diff;
        Alcotest.test_case "multi-domain stress: consistent snapshots" `Slow
          test_multicore_stress;
      ] );
    ( "obs.registry",
      [
        Alcotest.test_case "names and duplicates" `Quick test_registry_names;
        Alcotest.test_case "render/parse round trip" `Quick
          test_render_parse_roundtrip;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "spans and chrome JSON" `Quick test_trace_spans;
        Alcotest.test_case "deterministic span ids" `Quick test_trace_span_id;
        Alcotest.test_case "disabled tracer is a nop" `Quick
          test_trace_disabled_nop;
      ] );
    ( "obs.probes",
      [
        Alcotest.test_case "probe and phase hooks through Rip.solve" `Quick
          test_solver_probes;
      ] );
  ]
