(* The router subsystem's pure parts: consistent-hash ring placement
   (balance, restart determinism, minimal remap on membership edits)
   and the price controller's climb/decay dynamics.  The process-level
   behaviour — supervision, failover, shedding — is exercised by the
   bench cluster ladder and the CI cluster smoke job. *)

module Ring = Rip_router.Ring
module Pricing = Rip_router.Pricing
module Router = Rip_router.Router

let qcheck = QCheck_alcotest.to_alcotest

(* --- Ring: fixed-example behaviour -------------------------------------- *)

let members n = List.init n (fun i -> (Printf.sprintf "s%d" i, 1))

let test_ring_basics () =
  let ring = Ring.create (members 3) in
  Alcotest.(check int) "members" 3 (Ring.size ring);
  Alcotest.(check int) "vnodes"
    (3 * Ring.default_vnodes_per_weight)
    (Ring.vnode_count ring);
  (match Ring.lookup ring "some key" with
  | Some id -> Alcotest.(check bool) "member owns key"
      true
      (List.mem_assoc id (Ring.members ring))
  | None -> Alcotest.fail "non-empty ring must own every key");
  (* The share accounting covers the whole keyspace. *)
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 (Ring.shares ring) in
  Alcotest.(check (float 1e-9)) "shares sum to 1" 1.0 total

let test_ring_single_shard () =
  let ring = Ring.create (members 1) in
  (match Ring.lookup_pair ring "k" with
  | Some ("s0", None) -> ()
  | Some (id, second) ->
      Alcotest.failf "expected (s0, None), got (%s, %s)" id
        (Option.value second ~default:"<none>")
  | None -> Alcotest.fail "single-shard ring owns everything");
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Ring.create: duplicate shard s0") (fun () ->
      ignore (Ring.create [ ("s0", 1); ("s0", 2) ]))

let test_ring_pair_distinct () =
  let ring = Ring.create (members 4) in
  List.iter
    (fun i ->
      let key = Printf.sprintf "net-%d" i in
      match Ring.lookup_pair ring key with
      | Some (primary, Some second) ->
          if String.equal primary second then
            Alcotest.failf "spill target equals primary for %s" key
      | Some (_, None) ->
          Alcotest.fail "4-shard ring must offer a second choice"
      | None -> Alcotest.fail "non-empty ring owns every key")
    (List.init 64 Fun.id)

(* --- Ring: properties ---------------------------------------------------- *)

let shard_count_gen = QCheck.Gen.int_range 2 8

(* Balance: at the default vnode count, equally-weighted shards own
   keyspace shares within a 3x max/min spread.  (MD5 positions are not
   uniform enough for a tighter bound at 128 vnodes; the router cares
   that no shard is starved or doubled up on, not about perfection.) *)
let prop_ring_balance =
  QCheck.Test.make ~name:"ring balance: max/min share within 3x" ~count:20
    (QCheck.make shard_count_gen) (fun n ->
      let ring = Ring.create (members n) in
      let shares = List.map snd (Ring.shares ring) in
      let mx = List.fold_left Float.max 0.0 shares in
      let mn = List.fold_left Float.min 1.0 shares in
      mn > 0.0 && mx /. mn <= 3.0)

(* Determinism: placement is a pure function of the membership, so a
   ring rebuilt from scratch (a process restart) routes every key
   identically. *)
let prop_ring_restart_deterministic =
  QCheck.Test.make ~name:"ring determinism across rebuilds" ~count:20
    QCheck.(pair (make shard_count_gen) small_int)
    (fun (n, salt) ->
      let a = Ring.create (members n) in
      let b = Ring.create (members n) in
      List.for_all
        (fun i ->
          let key = Printf.sprintf "key-%d-%d" salt i in
          match (Ring.lookup a key, Ring.lookup b key) with
          | Some x, Some y -> String.equal x y
          | _ -> false)
        (List.init 100 Fun.id))

(* Minimal remap: removing one of [n] equally-weighted shards moves
   only the removed shard's keys (survivors keep every key they had),
   and the moved fraction is ~1/n. *)
let prop_ring_minimal_remap =
  QCheck.Test.make ~name:"ring remap on removal is ~1/n and one-way"
    ~count:10
    (QCheck.make (QCheck.Gen.int_range 3 8))
    (fun n ->
      let before = Ring.create (members n) in
      let after = Ring.remove before "s0" in
      let keys = List.init 2000 (Printf.sprintf "net-%d") in
      let moved =
        List.fold_left
          (fun acc key ->
            match (Ring.lookup before key, Ring.lookup after key) with
            | Some b, Some a ->
                if String.equal b "s0" then
                  (* must move, anywhere *)
                  if String.equal a "s0" then QCheck.Test.fail_report
                      "removed shard still owns a key"
                  else acc + 1
                else if not (String.equal b a) then
                  QCheck.Test.fail_report
                    "a key moved between surviving shards"
                else acc
            | _ -> QCheck.Test.fail_report "lookup failed")
          0 keys
      in
      let expected = float_of_int (List.length keys) /. float_of_int n in
      (* The removed shard's true share is its arc share, not exactly
         1/n; allow a generous band around the ideal. *)
      let f = float_of_int moved in
      f > 0.2 *. expected && f < 3.0 *. expected)

(* add is remove's inverse: re-adding the shard restores the original
   placement exactly. *)
let prop_ring_add_restores =
  QCheck.Test.make ~name:"ring re-add restores placement" ~count:10
    (QCheck.make (QCheck.Gen.int_range 2 6))
    (fun n ->
      let original = Ring.create (members n) in
      let restored = Ring.add (Ring.remove original "s1") "s1" ~weight:1 in
      List.for_all
        (fun i ->
          let key = Printf.sprintf "k%d" i in
          match (Ring.lookup original key, Ring.lookup restored key) with
          | Some a, Some b -> String.equal a b
          | _ -> false)
        (List.init 500 Fun.id))

(* --- Pricing ------------------------------------------------------------- *)

let tick ?(seconds = 1.0) ?(completed = 0) ?(degraded = 0) ?(timeouts = 0)
    ?(busy = 0) ?(in_flight = 0) ?(queue_depth = 64) () =
  {
    Pricing.seconds;
    completed;
    degraded;
    timeouts;
    busy;
    in_flight;
    queue_depth;
  }

let test_pricing_climbs_under_pain () =
  let p = Pricing.create () in
  let congested =
    tick ~completed:40 ~degraded:10 ~busy:20 ~in_flight:60 ()
  in
  let initial = Pricing.price p in
  let floor = (Pricing.config p).Pricing.floor in
  let ceiling = (Pricing.config p).Pricing.ceiling in
  for _ = 1 to 12 do
    let price = Pricing.observe p congested in
    Alcotest.(check bool) "price stays within bounds" true
      (price >= floor && price <= ceiling)
  done;
  Alcotest.(check bool) "price rose under sustained congestion" true
    (Pricing.price p > initial)

let test_pricing_decays_when_idle () =
  let p = Pricing.create () in
  let congested = tick ~completed:40 ~degraded:10 ~busy:20 ~in_flight:60 () in
  List.iter (fun _ -> ignore (Pricing.observe p congested)) (List.init 8 Fun.id);
  let peak = Pricing.price p in
  let idle = tick ~completed:2 ~in_flight:1 () in
  List.iter (fun _ -> ignore (Pricing.observe p idle)) (List.init 40 Fun.id);
  let floor = (Pricing.config p).Pricing.floor in
  Alcotest.(check bool) "price fell from its peak" true (Pricing.price p < peak);
  Alcotest.(check (float 1e-9)) "idle price reaches the floor" floor
    (Pricing.price p)

let test_pricing_profit () =
  let config = Pricing.default_config in
  let o = tick ~seconds:2.0 ~completed:20 ~degraded:2 ~timeouts:1 ~busy:4 () in
  let expected =
    (20.0 /. 2.0)
    -. (config.Pricing.degraded_cost *. 2.0 /. 2.0)
    -. (config.Pricing.timeout_cost *. 1.0 /. 2.0)
    -. (config.Pricing.busy_cost *. 4.0 /. 2.0)
  in
  Alcotest.(check (float 1e-9)) "profit arithmetic" expected
    (Pricing.profit config o);
  Alcotest.(check (float 1e-9)) "empty window profits nothing" 0.0
    (Pricing.profit config (tick ~seconds:0.0 ()))

let test_pricing_validation () =
  let bad config =
    match Pricing.create ~config () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad { Pricing.default_config with floor = 0.0 };
  bad { Pricing.default_config with floor = 2.0; initial_price = 1.0 };
  bad { Pricing.default_config with ceiling = 0.5 };
  bad { Pricing.default_config with growth = 1.0 };
  bad { Pricing.default_config with shrink = 1.0 }

(* Router.create rejects nonsense hedge / breaker configuration before
   touching any socket, so the bad specs below never reach the
   connection pools. *)
let test_router_config_validation () =
  let shards =
    [ { Router.id = "s0"; socket = "/nonexistent/validation.sock"; weight = 1 } ]
  in
  let process = Rip_tech.Process.default_180nm in
  let bad config =
    match Router.create ~config ~shards process with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad { Router.default_config with hedge_delay_floor = -0.001 };
  bad { Router.default_config with hedge_delay_factor = 0.0 };
  bad { Router.default_config with breaker_threshold = 0 };
  bad { Router.default_config with pool_size = 0 };
  bad { Router.default_config with spill_price = 2.0; shed_price = 1.0 }

(* Determinism: the same observation sequence always yields the same
   price path — the router's admission decisions are replayable. *)
let prop_pricing_deterministic =
  QCheck.Test.make ~name:"pricing determinism" ~count:50
    QCheck.(
      list_of_size (Gen.int_range 0 30)
        (pair (int_bound 80) (int_bound 10)))
    (fun ticks ->
      let run () =
        let p = Pricing.create () in
        List.map
          (fun (completed, degraded) ->
            Pricing.observe p
              (tick ~completed ~degraded ~in_flight:(completed / 2) ()))
          ticks
      in
      List.for_all2 (fun a b -> Float.equal a b) (run ()) (run ()))

let suite =
  [
    ( "router.ring",
      [
        Alcotest.test_case "basics" `Quick test_ring_basics;
        Alcotest.test_case "single shard" `Quick test_ring_single_shard;
        Alcotest.test_case "spill target distinct" `Quick
          test_ring_pair_distinct;
        qcheck prop_ring_balance;
        qcheck prop_ring_restart_deterministic;
        qcheck prop_ring_minimal_remap;
        qcheck prop_ring_add_restores;
      ] );
    ( "router.pricing",
      [
        Alcotest.test_case "climbs under pain" `Quick
          test_pricing_climbs_under_pain;
        Alcotest.test_case "decays when idle" `Quick
          test_pricing_decays_when_idle;
        Alcotest.test_case "profit arithmetic" `Quick test_pricing_profit;
        Alcotest.test_case "config validation" `Quick test_pricing_validation;
        qcheck prop_pricing_deterministic;
      ] );
    ( "router.config",
      [
        Alcotest.test_case "hedge and breaker validation" `Quick
          test_router_config_validation;
      ] );
  ]
