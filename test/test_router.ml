(* The router subsystem's pure parts: consistent-hash ring placement
   (balance, restart determinism, minimal remap on membership edits)
   and the price controller's climb/decay dynamics.  The process-level
   behaviour — supervision, failover, shedding — is exercised by the
   bench cluster ladder and the CI cluster smoke job. *)

module Ring = Rip_router.Ring
module Pricing = Rip_router.Pricing
module Router = Rip_router.Router

let qcheck = QCheck_alcotest.to_alcotest

(* --- Ring: fixed-example behaviour -------------------------------------- *)

let members n = List.init n (fun i -> (Printf.sprintf "s%d" i, 1))

let test_ring_basics () =
  let ring = Ring.create (members 3) in
  Alcotest.(check int) "members" 3 (Ring.size ring);
  Alcotest.(check int) "vnodes"
    (3 * Ring.default_vnodes_per_weight)
    (Ring.vnode_count ring);
  (match Ring.lookup ring "some key" with
  | Some id -> Alcotest.(check bool) "member owns key"
      true
      (List.mem_assoc id (Ring.members ring))
  | None -> Alcotest.fail "non-empty ring must own every key");
  (* The share accounting covers the whole keyspace. *)
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 (Ring.shares ring) in
  Alcotest.(check (float 1e-9)) "shares sum to 1" 1.0 total

let test_ring_single_shard () =
  let ring = Ring.create (members 1) in
  (match Ring.lookup_pair ring "k" with
  | Some ("s0", None) -> ()
  | Some (id, second) ->
      Alcotest.failf "expected (s0, None), got (%s, %s)" id
        (Option.value second ~default:"<none>")
  | None -> Alcotest.fail "single-shard ring owns everything");
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Ring.create: duplicate shard s0") (fun () ->
      ignore (Ring.create [ ("s0", 1); ("s0", 2) ]))

let test_ring_pair_distinct () =
  let ring = Ring.create (members 4) in
  List.iter
    (fun i ->
      let key = Printf.sprintf "net-%d" i in
      match Ring.lookup_pair ring key with
      | Some (primary, Some second) ->
          if String.equal primary second then
            Alcotest.failf "spill target equals primary for %s" key
      | Some (_, None) ->
          Alcotest.fail "4-shard ring must offer a second choice"
      | None -> Alcotest.fail "non-empty ring owns every key")
    (List.init 64 Fun.id)

(* --- Ring: properties ---------------------------------------------------- *)

let shard_count_gen = QCheck.Gen.int_range 2 8

(* Balance: at the default vnode count, equally-weighted shards own
   keyspace shares within a 3x max/min spread.  (MD5 positions are not
   uniform enough for a tighter bound at 128 vnodes; the router cares
   that no shard is starved or doubled up on, not about perfection.) *)
let prop_ring_balance =
  QCheck.Test.make ~name:"ring balance: max/min share within 3x" ~count:20
    (QCheck.make shard_count_gen) (fun n ->
      let ring = Ring.create (members n) in
      let shares = List.map snd (Ring.shares ring) in
      let mx = List.fold_left Float.max 0.0 shares in
      let mn = List.fold_left Float.min 1.0 shares in
      mn > 0.0 && mx /. mn <= 3.0)

(* Determinism: placement is a pure function of the membership, so a
   ring rebuilt from scratch (a process restart) routes every key
   identically. *)
let prop_ring_restart_deterministic =
  QCheck.Test.make ~name:"ring determinism across rebuilds" ~count:20
    QCheck.(pair (make shard_count_gen) small_int)
    (fun (n, salt) ->
      let a = Ring.create (members n) in
      let b = Ring.create (members n) in
      List.for_all
        (fun i ->
          let key = Printf.sprintf "key-%d-%d" salt i in
          match (Ring.lookup a key, Ring.lookup b key) with
          | Some x, Some y -> String.equal x y
          | _ -> false)
        (List.init 100 Fun.id))

(* Minimal remap: removing one of [n] equally-weighted shards moves
   only the removed shard's keys (survivors keep every key they had),
   and the moved fraction is ~1/n. *)
let prop_ring_minimal_remap =
  QCheck.Test.make ~name:"ring remap on removal is ~1/n and one-way"
    ~count:10
    (QCheck.make (QCheck.Gen.int_range 3 8))
    (fun n ->
      let before = Ring.create (members n) in
      let after = Ring.remove before "s0" in
      let keys = List.init 2000 (Printf.sprintf "net-%d") in
      let moved =
        List.fold_left
          (fun acc key ->
            match (Ring.lookup before key, Ring.lookup after key) with
            | Some b, Some a ->
                if String.equal b "s0" then
                  (* must move, anywhere *)
                  if String.equal a "s0" then QCheck.Test.fail_report
                      "removed shard still owns a key"
                  else acc + 1
                else if not (String.equal b a) then
                  QCheck.Test.fail_report
                    "a key moved between surviving shards"
                else acc
            | _ -> QCheck.Test.fail_report "lookup failed")
          0 keys
      in
      let expected = float_of_int (List.length keys) /. float_of_int n in
      (* The removed shard's true share is its arc share, not exactly
         1/n; allow a generous band around the ideal. *)
      let f = float_of_int moved in
      f > 0.2 *. expected && f < 3.0 *. expected)

(* add is remove's inverse: re-adding the shard restores the original
   placement exactly. *)
let prop_ring_add_restores =
  QCheck.Test.make ~name:"ring re-add restores placement" ~count:10
    (QCheck.make (QCheck.Gen.int_range 2 6))
    (fun n ->
      let original = Ring.create (members n) in
      let restored = Ring.add (Ring.remove original "s1") "s1" ~weight:1 in
      List.for_all
        (fun i ->
          let key = Printf.sprintf "k%d" i in
          match (Ring.lookup original key, Ring.lookup restored key) with
          | Some a, Some b -> String.equal a b
          | _ -> false)
        (List.init 500 Fun.id))

(* --- Pricing ------------------------------------------------------------- *)

let tick ?(seconds = 1.0) ?(completed = 0) ?(degraded = 0) ?(timeouts = 0)
    ?(busy = 0) ?(in_flight = 0) ?(queue_depth = 64) () =
  {
    Pricing.seconds;
    completed;
    degraded;
    timeouts;
    busy;
    in_flight;
    queue_depth;
  }

let test_pricing_climbs_under_pain () =
  let p = Pricing.create () in
  let congested =
    tick ~completed:40 ~degraded:10 ~busy:20 ~in_flight:60 ()
  in
  let initial = Pricing.price p in
  let floor = (Pricing.config p).Pricing.floor in
  let ceiling = (Pricing.config p).Pricing.ceiling in
  for _ = 1 to 12 do
    let price = Pricing.observe p congested in
    Alcotest.(check bool) "price stays within bounds" true
      (price >= floor && price <= ceiling)
  done;
  Alcotest.(check bool) "price rose under sustained congestion" true
    (Pricing.price p > initial)

let test_pricing_decays_when_idle () =
  let p = Pricing.create () in
  let congested = tick ~completed:40 ~degraded:10 ~busy:20 ~in_flight:60 () in
  List.iter (fun _ -> ignore (Pricing.observe p congested)) (List.init 8 Fun.id);
  let peak = Pricing.price p in
  let idle = tick ~completed:2 ~in_flight:1 () in
  List.iter (fun _ -> ignore (Pricing.observe p idle)) (List.init 40 Fun.id);
  let floor = (Pricing.config p).Pricing.floor in
  Alcotest.(check bool) "price fell from its peak" true (Pricing.price p < peak);
  Alcotest.(check (float 1e-9)) "idle price reaches the floor" floor
    (Pricing.price p)

let test_pricing_profit () =
  let config = Pricing.default_config in
  let o = tick ~seconds:2.0 ~completed:20 ~degraded:2 ~timeouts:1 ~busy:4 () in
  let expected =
    (20.0 /. 2.0)
    -. (config.Pricing.degraded_cost *. 2.0 /. 2.0)
    -. (config.Pricing.timeout_cost *. 1.0 /. 2.0)
    -. (config.Pricing.busy_cost *. 4.0 /. 2.0)
  in
  Alcotest.(check (float 1e-9)) "profit arithmetic" expected
    (Pricing.profit config o);
  Alcotest.(check (float 1e-9)) "empty window profits nothing" 0.0
    (Pricing.profit config (tick ~seconds:0.0 ()))

let test_pricing_validation () =
  let bad config =
    match Pricing.create ~config () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad { Pricing.default_config with floor = 0.0 };
  bad { Pricing.default_config with floor = 2.0; initial_price = 1.0 };
  bad { Pricing.default_config with ceiling = 0.5 };
  bad { Pricing.default_config with growth = 1.0 };
  bad { Pricing.default_config with shrink = 1.0 }

(* Router.create rejects nonsense hedge / breaker configuration before
   touching any socket, so the bad specs below never reach the
   connection pools. *)
let test_router_config_validation () =
  let shards =
    [ { Router.id = "s0"; socket = "/nonexistent/validation.sock"; weight = 1 } ]
  in
  let process = Rip_tech.Process.default_180nm in
  let bad config =
    match Router.create ~config ~shards process with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad { Router.default_config with hedge_delay_floor = -0.001 };
  bad { Router.default_config with hedge_delay_factor = 0.0 };
  bad { Router.default_config with breaker_threshold = 0 };
  bad { Router.default_config with pool_size = 0 };
  bad { Router.default_config with spill_price = 2.0; shed_price = 1.0 }

(* Determinism: the same observation sequence always yields the same
   price path — the router's admission decisions are replayable. *)
let prop_pricing_deterministic =
  QCheck.Test.make ~name:"pricing determinism" ~count:50
    QCheck.(
      list_of_size (Gen.int_range 0 30)
        (pair (int_bound 80) (int_bound 10)))
    (fun ticks ->
      let run () =
        let p = Pricing.create () in
        List.map
          (fun (completed, degraded) ->
            Pricing.observe p
              (tick ~completed ~degraded ~in_flight:(completed / 2) ()))
          ticks
      in
      List.for_all2 (fun a b -> Float.equal a b) (run ()) (run ()))

(* --- End to end: router -> shard span parentage -------------------------- *)

(* One in-process shard server and router, each with a scoped tracer,
   a traced SOLVE through the router's front socket — then merge both
   Chrome dumps and assert the cross-process parent chain the TRACE
   header is supposed to build: client root -> router ingress -> router
   forward:<shard> -> shard spans. *)
let test_router_trace_parentage () =
  let process = Helpers.process in
  let module Server = Rip_service.Server in
  let module Client = Rip_service.Client in
  let module Protocol = Rip_service.Protocol in
  let module Trace = Rip_obs.Trace in
  let module Trace_merge = Rip_obs.Trace_merge in
  let dir = Filename.get_temp_dir_name () in
  let tag = Unix.getpid () in
  let shard_sock =
    Filename.concat dir (Printf.sprintf "rip-test-%d-shard.sock" tag)
  in
  let router_sock =
    Filename.concat dir (Printf.sprintf "rip-test-%d-router.sock" tag)
  in
  let shard_tracer = Trace.create ~scope:"s0" ~pid:1 () in
  let server =
    Server.create
      ~config:
        {
          Server.default_config with
          jobs = Some 1;
          shard_id = "s0";
          tracer = Some shard_tracer;
        }
      process
  in
  let server_listener = Server.listen_unix shard_sock in
  let server_thread =
    Thread.create (fun () -> Server.run server server_listener) ()
  in
  let router_tracer = Trace.create ~scope:"router" ~pid:2 () in
  let router =
    Router.create
      ~config:{ Router.default_config with tracer = Some router_tracer }
      ~shards:[ { Router.id = "s0"; socket = shard_sock; weight = 1 } ]
      process
  in
  let router_listener = Router.listen_unix router_sock in
  let router_thread =
    Thread.create (fun () -> Router.run router router_listener) ()
  in
  let net =
    Helpers.Net.uniform ~name:"traced" Rip_tech.Layer.metal4 ~length:5000.0
      ~segment_count:3 ~driver_width:30.0 ~receiver_width:60.0
  in
  let budget =
    1.3
    *. Rip_core.Rip.tau_min process (Rip_net.Geometry.of_net net)
  in
  let ctx =
    Trace.make_context ~scope:"test" ~digest:"client" ~seq:0 ()
  in
  let client = Client.connect_unix router_sock in
  (match
     Client.request client
       (Protocol.Solve { budget; deadline_ms = None; trace = Some ctx; net })
   with
  | Ok (Protocol.Result _) -> ()
  | Ok other ->
      Alcotest.failf "traced solve answered %S"
        (Protocol.print_response other)
  | Error e -> Alcotest.failf "traced solve failed: %s" e);
  (match Client.request client Protocol.Shutdown with
  | Ok Protocol.Bye -> ()
  | Ok _ | Error _ -> Router.request_shutdown router);
  Client.close client;
  Thread.join router_thread;
  Server.request_shutdown server;
  (* nudge the accept loop awake so it notices the shutdown *)
  (try Client.close (Client.connect_unix shard_sock)
   with Unix.Unix_error _ -> ());
  Thread.join server_thread;
  Server.shutdown server;
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ shard_sock; router_sock ];
  let parse t =
    match Trace_merge.parse (Trace.to_chrome_json t) with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let dumps = [ parse router_tracer; parse shard_tracer ] in
  match Trace_merge.traces dumps with
  | [ (tid, spans) ] ->
      Alcotest.(check string)
        "one trace, the client's" ctx.Trace.trace_id tid;
      let find name =
        match
          List.find_opt
            (fun (s : Trace_merge.trace_span) -> s.span_name = name)
            spans
        with
        | Some s -> s
        | None -> Alcotest.failf "span %S missing from the merged trace" name
      in
      let span_arg name (s : Trace_merge.trace_span) =
        Option.value ~default:"" (List.assoc_opt name s.span_args)
      in
      let ingress = find "ingress" in
      let forward = find "forward:s0" in
      let solve = find "solve" in
      Alcotest.(check string)
        "ingress recorded by the router" "router" ingress.span_process;
      Alcotest.(check string)
        "solve recorded by the shard" "s0" solve.span_process;
      Alcotest.(check string)
        "ingress parents under the client's context"
        ctx.Trace.parent_span_id
        (span_arg "parent_span_id" ingress);
      Alcotest.(check string)
        "forward parents under ingress"
        (span_arg "span_id" ingress)
        (span_arg "parent_span_id" forward);
      Alcotest.(check string)
        "shard solve parents under the router's forward span"
        (span_arg "span_id" forward)
        (span_arg "parent_span_id" solve)
  | traces ->
      Alcotest.failf "expected exactly 1 merged trace, got %d"
        (List.length traces)

let suite =
  [
    ( "router.ring",
      [
        Alcotest.test_case "basics" `Quick test_ring_basics;
        Alcotest.test_case "single shard" `Quick test_ring_single_shard;
        Alcotest.test_case "spill target distinct" `Quick
          test_ring_pair_distinct;
        qcheck prop_ring_balance;
        qcheck prop_ring_restart_deterministic;
        qcheck prop_ring_minimal_remap;
        qcheck prop_ring_add_restores;
      ] );
    ( "router.pricing",
      [
        Alcotest.test_case "climbs under pain" `Quick
          test_pricing_climbs_under_pain;
        Alcotest.test_case "decays when idle" `Quick
          test_pricing_decays_when_idle;
        Alcotest.test_case "profit arithmetic" `Quick test_pricing_profit;
        Alcotest.test_case "config validation" `Quick test_pricing_validation;
        qcheck prop_pricing_deterministic;
      ] );
    ( "router.config",
      [
        Alcotest.test_case "hedge and breaker validation" `Quick
          test_router_config_validation;
      ] );
    ( "router.trace",
      [
        Alcotest.test_case
          "merged trace links client, router and shard spans" `Quick
          test_router_trace_parentage;
      ] );
  ]
