(* Resilience and chaos suite: deadlines, fault injection, graceful
   degradation, bounded frames, cache self-healing and client retries.

   Every fault plan here is deterministic (fixed seed), so the suite is
   reproducible; the @chaos dune alias runs exactly these tests. *)

module Protocol = Rip_service.Protocol
module Server = Rip_service.Server
module Client = Rip_service.Client
module Faults = Rip_service.Faults
module Wire = Rip_service.Wire
module Loadgen = Rip_service.Loadgen
module Cancel = Rip_engine.Cancel
module Net = Rip_net.Net
module Segment = Rip_net.Segment
module Zone = Rip_net.Zone
module Geometry = Rip_net.Geometry
module Rip = Rip_core.Rip
module Validate = Rip_core.Validate
module Solution = Rip_elmore.Solution

let process = Helpers.process

let sample_net ?(name = "chaos") () =
  Net.create ~name
    ~segments:
      [
        Segment.of_layer Rip_tech.Layer.metal4 ~length:1800.0;
        Segment.of_layer Rip_tech.Layer.metal5 ~length:2200.0;
      ]
    ~zones:[ Zone.create ~z_start:1500.0 ~z_end:2600.0 ]
    ~driver_width:20.0 ~receiver_width:40.0 ()

let feasible_budget net = 1.3 *. Rip.tau_min process (Geometry.of_net net)

let faults spec =
  match Faults.parse_spec spec with
  | Ok f -> f
  | Error e -> Alcotest.failf "bad fault spec %S: %s" spec e

(* One in-process connection over a socketpair. *)
let connect_pair server =
  let server_fd, client_fd =
    Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let worker = Thread.create (Server.handle_connection server) server_fd in
  (Client.of_fd client_fd, worker)

let with_server ?config f =
  let server = Server.create ?config process in
  Fun.protect ~finally:(fun () -> Server.shutdown server) (fun () -> f server)

let solution_of_wire (s : Protocol.solution) =
  Solution.create s.Protocol.repeaters

(* A degraded answer may miss the budget (that is the point) but must be
   legal in every other respect. *)
let check_degraded_legal net ~budget (s : Protocol.solution) =
  let violations =
    Validate.check process net ~budget (solution_of_wire s)
    |> List.filter (function
         | Validate.Over_budget _ -> false
         | _ -> true)
  in
  Alcotest.(check int)
    "degraded solution has no legality violations" 0 (List.length violations)

(* --- Cancellation tokens ------------------------------------------------- *)

let test_cancel_token () =
  let t = Cancel.create () in
  Alcotest.(check bool) "fresh token not cancelled" false (Cancel.cancelled t);
  Cancel.hook t ();
  Cancel.cancel t;
  Alcotest.(check bool) "cancelled after cancel" true (Cancel.cancelled t);
  Alcotest.check_raises "hook raises once fired" Cancel.Cancelled
    (Cancel.hook t);
  Alcotest.(check (option int))
    "protect maps Cancelled to None" None
    (Cancel.protect (fun () -> Cancel.hook t (); 1));
  Alcotest.(check (option int))
    "protect passes values through" (Some 7)
    (Cancel.protect (fun () -> 7))

(* --- Deadline edge cases -------------------------------------------------- *)

let test_timeout_at_admission () =
  with_server ~config:{ Server.default_config with jobs = Some 1 }
    (fun server ->
      let client, worker = connect_pair server in
      let net = sample_net () in
      (match
         Client.request client
           (Protocol.Solve
              { budget = feasible_budget net; deadline_ms = Some 0.0; net })
       with
      | Ok Protocol.Timeout -> ()
      | Ok other ->
          Alcotest.failf "expired deadline answered %S"
            (Protocol.print_response other)
      | Error e -> Alcotest.failf "transport failure: %s" e);
      let stats = Server.stats server in
      Alcotest.(check int) "one timeout" 1 stats.Protocol.timeouts;
      Alcotest.(check int) "nothing solved" 0 stats.Protocol.solved;
      Alcotest.(check int) "no solver time spent" 0
        (compare stats.Protocol.solve_cpu_seconds 0.0);
      Client.close client;
      Thread.join worker)

let test_cache_hit_beats_expired_deadline () =
  with_server ~config:{ Server.default_config with jobs = Some 1 }
    (fun server ->
      let client, worker = connect_pair server in
      let net = sample_net () in
      let budget = feasible_budget net in
      (match
         Client.request client
           (Protocol.Solve { budget; deadline_ms = None; net })
       with
      | Ok (Protocol.Result { served = Protocol.Fresh; _ }) -> ()
      | Ok other ->
          Alcotest.failf "warmup answered %S" (Protocol.print_response other)
      | Error e -> Alcotest.failf "warmup failed: %s" e);
      (* The replay is free, so a cached answer beats TIMEOUT even for a
         deadline that was already dead on arrival. *)
      (match
         Client.request client
           (Protocol.Solve { budget; deadline_ms = Some 0.0; net })
       with
      | Ok (Protocol.Result { served = Protocol.Cached; _ }) -> ()
      | Ok other ->
          Alcotest.failf "cache hit past deadline answered %S"
            (Protocol.print_response other)
      | Error e -> Alcotest.failf "cache hit failed: %s" e);
      Alcotest.(check int) "no timeout counted" 0
        (Server.stats server).Protocol.timeouts;
      Client.close client;
      Thread.join worker)

let test_deadline_mid_solve_degrades () =
  (* The injected 500 ms solve delay guarantees the 50 ms deadline fires
     mid-solve; the interruptible delay observes the token, so the
     request still answers promptly. *)
  with_server
    ~config:
      {
        Server.default_config with
        jobs = Some 1;
        faults = Some (faults "seed=3,delay:p=1:ms=500");
      }
    (fun server ->
      let client, worker = connect_pair server in
      let net = sample_net () in
      let budget = feasible_budget net in
      (match
         Client.request client
           (Protocol.Solve { budget; deadline_ms = Some 50.0; net })
       with
      | Ok (Protocol.Degraded { reason = Protocol.Deadline_exceeded; solution })
        ->
          check_degraded_legal net ~budget solution
      | Ok other ->
          Alcotest.failf "deadline mid-solve answered %S"
            (Protocol.print_response other)
      | Error e -> Alcotest.failf "transport failure: %s" e);
      let stats = Server.stats server in
      Alcotest.(check int) "one degradation" 1 stats.Protocol.degraded;
      Alcotest.(check int) "no TIMEOUT (work was attempted)" 0
        stats.Protocol.timeouts;
      Client.close client;
      Thread.join worker)

(* --- Fault injection ------------------------------------------------------ *)

let test_worker_kill_degrades () =
  with_server
    ~config:
      {
        Server.default_config with
        jobs = Some 1;
        faults = Some (faults "seed=5,kill:p=1");
      }
    (fun server ->
      let client, worker = connect_pair server in
      let net = sample_net () in
      let budget = feasible_budget net in
      let solve =
        Protocol.Solve { budget; deadline_ms = None; net }
      in
      (match Client.request client solve with
      | Ok (Protocol.Degraded { reason = Protocol.Worker_lost; solution }) ->
          check_degraded_legal net ~budget solution
      | Ok other ->
          Alcotest.failf "killed worker answered %S"
            (Protocol.print_response other)
      | Error e -> Alcotest.failf "transport failure: %s" e);
      (* The server survives its dead worker: the connection still
         answers, both solves and pings. *)
      (match Client.request client solve with
      | Ok (Protocol.Degraded { reason = Protocol.Worker_lost; _ }) -> ()
      | Ok other ->
          Alcotest.failf "second kill answered %S"
            (Protocol.print_response other)
      | Error e -> Alcotest.failf "second solve failed: %s" e);
      (match Client.request client Protocol.Ping with
      | Ok Protocol.Pong -> ()
      | Ok other ->
          Alcotest.failf "PING after kills answered %S"
            (Protocol.print_response other)
      | Error e -> Alcotest.failf "PING failed: %s" e);
      Alcotest.(check int) "both requests degraded" 2
        (Server.stats server).Protocol.degraded;
      Client.close client;
      Thread.join worker)

let test_overload_sheds_to_degraded () =
  (* high_water 1 under queue_depth 2: the first solve (held in its
     injected 300 ms delay) occupies the only below-high-water slot, so
     a concurrent second solve is answered from the analytic tier. *)
  with_server
    ~config:
      {
        Server.default_config with
        jobs = Some 1;
        queue_depth = 2;
        high_water = 1;
        faults = Some (faults "seed=9,delay:p=1:ms=300");
      }
    (fun server ->
      let net = sample_net () in
      let budget = feasible_budget net in
      let solve = Protocol.Solve { budget; deadline_ms = None; net } in
      let responses = Array.make 2 (Error "not run") in
      let one index () =
        let client, worker = connect_pair server in
        responses.(index) <- Client.request client solve;
        Client.close client;
        Thread.join worker
      in
      let first = Thread.create (one 0) () in
      Thread.delay 0.08;  (* let the first solve enter its delay *)
      let second = Thread.create (one 1) () in
      Thread.join first;
      Thread.join second;
      let degraded, full =
        Array.fold_left
          (fun (d, f) r ->
            match r with
            | Ok (Protocol.Degraded { reason = Protocol.Overload; solution })
              ->
                check_degraded_legal net ~budget solution;
                (d + 1, f)
            | Ok (Protocol.Result _) -> (d, f + 1)
            | Ok other ->
                Alcotest.failf "unexpected answer %S"
                  (Protocol.print_response other)
            | Error e -> Alcotest.failf "transport failure: %s" e)
          (0, 0) responses
      in
      Alcotest.(check int) "one request shed" 1 degraded;
      Alcotest.(check int) "one full solve" 1 full)

let test_cache_corruption_self_heals () =
  with_server ~config:{ Server.default_config with jobs = Some 1 }
    (fun server ->
      let client, worker = connect_pair server in
      let net = sample_net () in
      let budget = feasible_budget net in
      let solve = Protocol.Solve { budget; deadline_ms = None; net } in
      let served () =
        match Client.request client solve with
        | Ok (Protocol.Result { served; _ }) -> served
        | Ok other ->
            Alcotest.failf "solve answered %S" (Protocol.print_response other)
        | Error e -> Alcotest.failf "solve failed: %s" e
      in
      Alcotest.(check bool) "warmup is fresh" true (served () = Protocol.Fresh);
      Alcotest.(check bool) "replay is cached" true
        (served () = Protocol.Cached);
      (* Flip the stored digest: the next read must detect the mismatch,
         evict the entry and re-solve rather than serve the bad bytes. *)
      Alcotest.(check bool) "corruption hook found the entry" true
        (Server.corrupt_cache_entry server (Server.cache_key server ~net ~budget));
      Alcotest.(check bool) "corrupted entry is re-solved" true
        (served () = Protocol.Fresh);
      Alcotest.(check bool) "healed entry serves again" true
        (served () = Protocol.Cached);
      let stats = Server.stats server in
      Alcotest.(check int) "one self-heal counted" 1
        stats.Protocol.cache_self_heals;
      Client.close client;
      Thread.join worker)

(* --- Frame bounds --------------------------------------------------------- *)

let read_all fd =
  let buffer = Bytes.create 4096 in
  let out = Buffer.create 256 in
  let rec go () =
    match Unix.read fd buffer 0 (Bytes.length buffer) with
    | 0 -> Buffer.contents out
    | n ->
        Buffer.add_subbytes out buffer 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        Buffer.contents out
  in
  go ()

let test_oversized_frame_rejected () =
  with_server
    ~config:
      { Server.default_config with jobs = Some 1; max_frame_bytes = 256 }
    (fun server ->
      let server_fd, client_fd =
        Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
      in
      let worker =
        Thread.create (Server.handle_connection server) server_fd
      in
      (* One endless header line: the frame budget must trip on buffered
         bytes before any line is handed to the parser, however the reads
         split. *)
      let s = "SOLVE " ^ String.make 600 'x' ^ "\nEND\n" in
      (try Wire.send client_fd s
       with Unix.Unix_error (Unix.EPIPE, _, _) -> ());
      let answer = read_all client_fd in
      Alcotest.(check string) "typed TOOBIG then hang up" "TOOBIG\n" answer;
      Thread.join worker;
      Unix.close client_fd;
      Alcotest.(check int) "toobig counted" 1
        (Server.stats server).Protocol.toobig)

let test_wire_reader_bounds () =
  (* Writes are interleaved with reads so each read sees exactly one
     line's bytes: the budget is checked on buffer growth, so batching
     both lines into one read would trip it before the first line. *)
  let read_fd, write_fd = Unix.pipe ~cloexec:true () in
  let reader = Wire.create ~max_frame_bytes:16 read_fd in
  let next = Wire.reader reader in
  Wire.send write_fd "0123456789\n";
  Alcotest.(check (option string)) "first line fits" (Some "0123456789")
    (next ());
  (* The second line pushes the frame past 16 bytes... *)
  Wire.send write_fd "0123456789\n";
  Alcotest.check_raises "second line trips the frame budget"
    Wire.Frame_too_big (fun () -> ignore (next ()));
  (* ...but a new frame resets the budget; the buffered line that
     tripped the bound is then readable again. *)
  Wire.new_frame reader;
  Alcotest.(check (option string)) "after new_frame" (Some "0123456789")
    (next ());
  Wire.send write_fd "ok\n";
  Unix.close write_fd;
  Alcotest.(check (option string)) "reads on" (Some "ok") (next ());
  Alcotest.(check (option string)) "eof" None (next ());
  Unix.close read_fd

let test_wire_reader_lines () =
  let read_fd, write_fd = Unix.pipe ~cloexec:true () in
  let next = Wire.reader (Wire.create read_fd) in
  Wire.send write_fd "alpha\r\nbeta\ntail-without-newline";
  Unix.close write_fd;
  Alcotest.(check (option string)) "crlf stripped" (Some "alpha") (next ());
  Alcotest.(check (option string)) "plain line" (Some "beta") (next ());
  Alcotest.(check (option string)) "final unterminated line"
    (Some "tail-without-newline") (next ());
  Alcotest.(check (option string)) "eof" None (next ());
  Unix.close read_fd

(* --- Fault plans ---------------------------------------------------------- *)

let test_faults_spec_parsing () =
  let plan =
    faults "seed=7,delay:p=0.5:ms=20,kill:p=0.25,drop:p=0.75:bytes=64,corrupt"
  in
  let spec = Faults.spec plan in
  Alcotest.(check int64) "seed" 7L spec.Faults.seed;
  Alcotest.(check (float 0.0)) "delay p" 0.5 spec.Faults.delay_p;
  Alcotest.(check (float 0.0)) "delay seconds" 0.020 spec.Faults.delay_seconds;
  Alcotest.(check (float 0.0)) "kill p" 0.25 spec.Faults.kill_p;
  Alcotest.(check int) "drop bytes" 64 spec.Faults.drop_bytes;
  Alcotest.(check (float 0.0)) "bare clause means p=1" 1.0
    spec.Faults.corrupt_p;
  (match Faults.parse_spec "" with
  | Ok plan ->
      Alcotest.(check (float 0.0)) "empty spec is disabled" 0.0
        (Faults.spec plan).Faults.kill_p
  | Error e -> Alcotest.failf "empty spec rejected: %s" e);
  List.iter
    (fun bad ->
      match Faults.parse_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "spec %S should not parse" bad)
    [ "frobnicate"; "kill:p=nope"; "kill:p=1.5"; "seed=xyz"; "delay:ms=-3" ]

let test_faults_deterministic () =
  let draws spec =
    let plan = faults spec in
    List.init 32 (fun _ -> (Faults.kill_worker plan, Faults.solve_delay plan))
  in
  Alcotest.(check bool) "same seed, same schedule" true
    (draws "seed=42,kill:p=0.3,delay:p=0.4:ms=5"
    = draws "seed=42,kill:p=0.3,delay:p=0.4:ms=5");
  Alcotest.(check bool) "different seed, different schedule" true
    (draws "seed=42,kill:p=0.3,delay:p=0.4:ms=5"
    <> draws "seed=43,kill:p=0.3,delay:p=0.4:ms=5");
  let off = Faults.disabled () in
  Alcotest.(check bool) "disabled never kills" false (Faults.kill_worker off);
  Alcotest.(check bool) "disabled never delays" true
    (Faults.solve_delay off = None);
  Alcotest.(check bool) "disabled never drops" true
    (Faults.drop_after off = None)

(* --- Client retries over a real listener ---------------------------------- *)

let temp_socket_path tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "rip_%s_%d.sock" tag (Unix.getpid ()))

let with_listening_server ~config ~tag f =
  let path = temp_socket_path tag in
  let server = Server.create ~config process in
  let listen_fd = Server.listen_unix path in
  let run_thread = Thread.create (Server.run server) listen_fd in
  Fun.protect
    ~finally:(fun () ->
      Server.request_shutdown server;
      Thread.join run_thread;
      Server.shutdown server;
      if Sys.file_exists path then
        try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f server path)

let test_dropped_connection_retries () =
  (* Every response is cut after 5 bytes: the client must see a typed
     transport error (never a half-parsed Ok), reconnect, retry, and
     finally report the failure after exhausting its attempts. *)
  with_listening_server ~tag:"drop"
    ~config:
      {
        Server.default_config with
        jobs = Some 1;
        faults = Some (faults "seed=2,drop:p=1:bytes=5");
      }
    (fun server path ->
      let policy =
        {
          Client.default_retry_policy with
          attempts = 3;
          backoff_seconds = 0.001;
          backoff_cap_seconds = 0.002;
        }
      in
      let session =
        Client.session ~policy ~seed:77L (fun () -> Client.connect_unix path)
      in
      let net = sample_net () in
      let outcome =
        Client.request_with_retry session
          (Protocol.Solve
             { budget = feasible_budget net; deadline_ms = None; net })
      in
      Client.close_session session;
      (match outcome.Client.response with
      | Error _ -> ()
      | Ok r ->
          Alcotest.failf "dropped responses produced an Ok %S"
            (Protocol.print_response r));
      Alcotest.(check int) "all attempts used" 3 outcome.Client.attempts;
      Alcotest.(check int) "both retries were transport retries" 2
        outcome.Client.retried_transport;
      (* Every attempt reached the server and was fully served there. *)
      let stats = Server.stats server in
      Alcotest.(check int) "server saw every attempt" 3
        stats.Protocol.requests;
      Alcotest.(check int) "first attempt solved, replays hit the cache" 2
        stats.Protocol.cache_hits)

let test_busy_retries_counted () =
  with_server ~config:{ Server.default_config with jobs = Some 1 }
    (fun server ->
      (* Draining servers reject solves with BUSY; the session must retry
         the configured number of times and surface the final BUSY. *)
      Server.request_shutdown server;
      let client, worker = connect_pair server in
      let connected = ref (Some client) in
      let session =
        Client.session
          ~policy:
            {
              Client.default_retry_policy with
              attempts = 3;
              backoff_seconds = 0.001;
              backoff_cap_seconds = 0.002;
            }
          ~seed:5L
          (fun () ->
            match !connected with
            | Some c ->
                connected := None;
                c
            | None -> Alcotest.fail "BUSY must not reconnect")
      in
      let net = sample_net () in
      let outcome =
        Client.request_with_retry session
          (Protocol.Solve
             { budget = feasible_budget net; deadline_ms = None; net })
      in
      (match outcome.Client.response with
      | Ok Protocol.Busy -> ()
      | Ok other ->
          Alcotest.failf "draining server answered %S"
            (Protocol.print_response other)
      | Error e -> Alcotest.failf "transport failure: %s" e);
      Alcotest.(check int) "two busy retries" 2 outcome.Client.retried_busy;
      Alcotest.(check int) "server counted every attempt" 3
        (Server.stats server).Protocol.rejected_busy;
      Client.close_session session;
      Thread.join worker)

(* --- The chaos storm ------------------------------------------------------ *)

(* The acceptance scenario: injected worker kills and solve delays under
   a 50 ms deadline.  Every request must get exactly one well-formed
   typed response — RESULT, DEGRADED, TIMEOUT or BUSY — with zero hangs,
   and the load generator's counts must reconcile with the server's
   STATS deltas. *)
let test_chaos_storm_counts_reconcile () =
  with_listening_server ~tag:"chaos"
    ~config:
      {
        Server.default_config with
        jobs = Some 2;
        queue_depth = 8;
        high_water = 8;
        faults = Some (faults "seed=11,delay:p=0.4:ms=20,kill:p=0.3");
      }
    (fun server path ->
      let requests = 24 in
      let workload =
        Loadgen.workload ~seed:20050307L ~distinct_nets:2 ~slack:1.3
          ~deadline_ms:50.0 ~requests process
      in
      let policy =
        {
          Client.attempts = 2;
          backoff_seconds = 0.001;
          backoff_cap_seconds = 0.005;
          attempt_timeout = Some 5.0;
        }
      in
      let result =
        Loadgen.run
          ~connect:(fun () -> Client.connect_unix path)
          ~connections:3 ~policy ~seed:5L workload
      in
      (* Exactly one typed response per request, no hangs, no errors. *)
      Alcotest.(check int) "all requests issued" requests result.Loadgen.sent;
      Alcotest.(check int) "no transport failures" 0
        result.Loadgen.transport_failures;
      Alcotest.(check int) "no transport retries" 0
        result.Loadgen.retried_transport;
      Alcotest.(check int) "no solver errors" 0 result.Loadgen.errors;
      Alcotest.(check int) "every request answered with a typed frame"
        requests
        (result.Loadgen.solved_fresh + result.Loadgen.solved_cached
        + result.Loadgen.degraded + result.Loadgen.timeouts
        + result.Loadgen.busy);
      (* The loadgen's view reconciles with the server's STATS: every
         retried BUSY/TIMEOUT attempt also reached the server. *)
      let stats = Server.stats server in
      let attempts =
        requests + result.Loadgen.retried_busy + result.Loadgen.retried_timeout
      in
      Alcotest.(check int) "server saw every attempt" attempts
        stats.Protocol.requests;
      Alcotest.(check int) "solved reconciles"
        (result.Loadgen.solved_fresh + result.Loadgen.solved_cached)
        stats.Protocol.solved;
      Alcotest.(check int) "degraded reconciles" result.Loadgen.degraded
        stats.Protocol.degraded;
      Alcotest.(check int) "timeouts reconcile"
        (result.Loadgen.timeouts + result.Loadgen.retried_timeout)
        stats.Protocol.timeouts;
      Alcotest.(check int) "busy reconciles"
        (result.Loadgen.busy + result.Loadgen.retried_busy)
        stats.Protocol.rejected_busy;
      Alcotest.(check int) "cache hits reconcile" result.Loadgen.solved_cached
        stats.Protocol.cache_hits;
      Alcotest.(check int) "every attempt hit or missed the cache"
        stats.Protocol.requests
        (stats.Protocol.cache_hits + stats.Protocol.cache_misses);
      (* Under kills and delays something must actually have degraded —
         otherwise this storm is not testing what it claims to. *)
      Alcotest.(check bool) "the storm injected real faults" true
        (result.Loadgen.degraded > 0))

let suite =
  [
    ( "resilience.cancel",
      [ Alcotest.test_case "token semantics" `Quick test_cancel_token ] );
    ( "resilience.deadline",
      [
        Alcotest.test_case "expired at admission" `Quick
          test_timeout_at_admission;
        Alcotest.test_case "cache hit beats deadline" `Quick
          test_cache_hit_beats_expired_deadline;
        Alcotest.test_case "fires mid-solve" `Quick
          test_deadline_mid_solve_degrades;
      ] );
    ( "resilience.faults",
      [
        Alcotest.test_case "spec parsing" `Quick test_faults_spec_parsing;
        Alcotest.test_case "deterministic draws" `Quick
          test_faults_deterministic;
        Alcotest.test_case "worker kill degrades" `Quick
          test_worker_kill_degrades;
        Alcotest.test_case "overload sheds" `Quick
          test_overload_sheds_to_degraded;
        Alcotest.test_case "cache self-heals" `Quick
          test_cache_corruption_self_heals;
      ] );
    ( "resilience.wire",
      [
        Alcotest.test_case "oversized frame rejected" `Quick
          test_oversized_frame_rejected;
        Alcotest.test_case "reader frame budget" `Quick
          test_wire_reader_bounds;
        Alcotest.test_case "reader line handling" `Quick
          test_wire_reader_lines;
      ] );
    ( "resilience.retry",
      [
        Alcotest.test_case "dropped connection" `Quick
          test_dropped_connection_retries;
        Alcotest.test_case "busy retries counted" `Quick
          test_busy_retries_counted;
      ] );
    ( "resilience.chaos",
      [
        Alcotest.test_case "storm counts reconcile" `Quick
          test_chaos_storm_counts_reconcile;
      ] );
  ]
