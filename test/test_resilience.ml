(* Resilience and chaos suite: deadlines, fault injection, graceful
   degradation, bounded frames, cache self-healing and client retries.

   Every fault plan here is deterministic (fixed seed), so the suite is
   reproducible; the @chaos dune alias runs exactly these tests. *)

module Protocol = Rip_service.Protocol
module Server = Rip_service.Server
module Client = Rip_service.Client
module Faults = Rip_service.Faults
module Wire = Rip_service.Wire
module Loadgen = Rip_service.Loadgen
module Cancel = Rip_engine.Cancel
module Net = Rip_net.Net
module Segment = Rip_net.Segment
module Zone = Rip_net.Zone
module Geometry = Rip_net.Geometry
module Rip = Rip_core.Rip
module Validate = Rip_core.Validate
module Solution = Rip_elmore.Solution

let process = Helpers.process

let sample_net ?(name = "chaos") () =
  Net.create ~name
    ~segments:
      [
        Segment.of_layer Rip_tech.Layer.metal4 ~length:1800.0;
        Segment.of_layer Rip_tech.Layer.metal5 ~length:2200.0;
      ]
    ~zones:[ Zone.create ~z_start:1500.0 ~z_end:2600.0 ]
    ~driver_width:20.0 ~receiver_width:40.0 ()

let feasible_budget net = 1.3 *. Rip.tau_min process (Geometry.of_net net)

let faults spec =
  match Faults.parse_spec spec with
  | Ok f -> f
  | Error e -> Alcotest.failf "bad fault spec %S: %s" spec e

(* One in-process connection over a socketpair. *)
let connect_pair server =
  let server_fd, client_fd =
    Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let worker = Thread.create (Server.handle_connection server) server_fd in
  (Client.of_fd client_fd, worker)

let with_server ?config f =
  let server = Server.create ?config process in
  Fun.protect ~finally:(fun () -> Server.shutdown server) (fun () -> f server)

let solution_of_wire (s : Protocol.solution) =
  Solution.create s.Protocol.repeaters

(* A degraded answer may miss the budget (that is the point) but must be
   legal in every other respect. *)
let check_degraded_legal net ~budget (s : Protocol.solution) =
  let violations =
    Validate.check process net ~budget (solution_of_wire s)
    |> List.filter (function
         | Validate.Over_budget _ -> false
         | _ -> true)
  in
  Alcotest.(check int)
    "degraded solution has no legality violations" 0 (List.length violations)

(* --- Cancellation tokens ------------------------------------------------- *)

let test_cancel_token () =
  let t = Cancel.create () in
  Alcotest.(check bool) "fresh token not cancelled" false (Cancel.cancelled t);
  Cancel.hook t ();
  Cancel.cancel t;
  Alcotest.(check bool) "cancelled after cancel" true (Cancel.cancelled t);
  Alcotest.check_raises "hook raises once fired" Cancel.Cancelled
    (Cancel.hook t);
  Alcotest.(check (option int))
    "protect maps Cancelled to None" None
    (Cancel.protect (fun () -> Cancel.hook t (); 1));
  Alcotest.(check (option int))
    "protect passes values through" (Some 7)
    (Cancel.protect (fun () -> 7))

(* --- Deadline edge cases -------------------------------------------------- *)

let test_timeout_at_admission () =
  with_server ~config:{ Server.default_config with jobs = Some 1 }
    (fun server ->
      let client, worker = connect_pair server in
      let net = sample_net () in
      (match
         Client.request client
           (Protocol.Solve
              { budget = feasible_budget net; deadline_ms = Some 0.0; trace = None; net })
       with
      | Ok Protocol.Timeout -> ()
      | Ok other ->
          Alcotest.failf "expired deadline answered %S"
            (Protocol.print_response other)
      | Error e -> Alcotest.failf "transport failure: %s" e);
      let stats = Server.stats server in
      Alcotest.(check int) "one timeout" 1 stats.Protocol.timeouts;
      Alcotest.(check int) "nothing solved" 0 stats.Protocol.solved;
      Alcotest.(check int) "no solver time spent" 0
        (compare stats.Protocol.solve_cpu_seconds 0.0);
      Client.close client;
      Thread.join worker)

let test_cache_hit_beats_expired_deadline () =
  with_server ~config:{ Server.default_config with jobs = Some 1 }
    (fun server ->
      let client, worker = connect_pair server in
      let net = sample_net () in
      let budget = feasible_budget net in
      (match
         Client.request client
           (Protocol.Solve { budget; deadline_ms = None; trace = None; net })
       with
      | Ok (Protocol.Result { served = Protocol.Fresh; _ }) -> ()
      | Ok other ->
          Alcotest.failf "warmup answered %S" (Protocol.print_response other)
      | Error e -> Alcotest.failf "warmup failed: %s" e);
      (* The replay is free, so a cached answer beats TIMEOUT even for a
         deadline that was already dead on arrival. *)
      (match
         Client.request client
           (Protocol.Solve { budget; deadline_ms = Some 0.0; trace = None; net })
       with
      | Ok (Protocol.Result { served = Protocol.Cached; _ }) -> ()
      | Ok other ->
          Alcotest.failf "cache hit past deadline answered %S"
            (Protocol.print_response other)
      | Error e -> Alcotest.failf "cache hit failed: %s" e);
      Alcotest.(check int) "no timeout counted" 0
        (Server.stats server).Protocol.timeouts;
      Client.close client;
      Thread.join worker)

let test_deadline_mid_solve_degrades () =
  (* The injected 500 ms solve delay guarantees the 50 ms deadline fires
     mid-solve; the interruptible delay observes the token, so the
     request still answers promptly. *)
  with_server
    ~config:
      {
        Server.default_config with
        jobs = Some 1;
        faults = Some (faults "seed=3,delay:p=1:ms=500");
      }
    (fun server ->
      let client, worker = connect_pair server in
      let net = sample_net () in
      let budget = feasible_budget net in
      (match
         Client.request client
           (Protocol.Solve { budget; deadline_ms = Some 50.0; trace = None; net })
       with
      | Ok (Protocol.Degraded { reason = Protocol.Deadline_exceeded; solution })
        ->
          check_degraded_legal net ~budget solution
      | Ok other ->
          Alcotest.failf "deadline mid-solve answered %S"
            (Protocol.print_response other)
      | Error e -> Alcotest.failf "transport failure: %s" e);
      let stats = Server.stats server in
      Alcotest.(check int) "one degradation" 1 stats.Protocol.degraded;
      Alcotest.(check int) "no TIMEOUT (work was attempted)" 0
        stats.Protocol.timeouts;
      Client.close client;
      Thread.join worker)

(* --- Fault injection ------------------------------------------------------ *)

let test_worker_kill_degrades () =
  with_server
    ~config:
      {
        Server.default_config with
        jobs = Some 1;
        faults = Some (faults "seed=5,kill:p=1");
      }
    (fun server ->
      let client, worker = connect_pair server in
      let net = sample_net () in
      let budget = feasible_budget net in
      let solve =
        Protocol.Solve { budget; deadline_ms = None; trace = None; net }
      in
      (match Client.request client solve with
      | Ok (Protocol.Degraded { reason = Protocol.Worker_lost; solution }) ->
          check_degraded_legal net ~budget solution
      | Ok other ->
          Alcotest.failf "killed worker answered %S"
            (Protocol.print_response other)
      | Error e -> Alcotest.failf "transport failure: %s" e);
      (* The server survives its dead worker: the connection still
         answers, both solves and pings. *)
      (match Client.request client solve with
      | Ok (Protocol.Degraded { reason = Protocol.Worker_lost; _ }) -> ()
      | Ok other ->
          Alcotest.failf "second kill answered %S"
            (Protocol.print_response other)
      | Error e -> Alcotest.failf "second solve failed: %s" e);
      (match Client.request client Protocol.Ping with
      | Ok Protocol.Pong -> ()
      | Ok other ->
          Alcotest.failf "PING after kills answered %S"
            (Protocol.print_response other)
      | Error e -> Alcotest.failf "PING failed: %s" e);
      Alcotest.(check int) "both requests degraded" 2
        (Server.stats server).Protocol.degraded;
      Client.close client;
      Thread.join worker)

let test_overload_sheds_to_degraded () =
  (* high_water 1 under queue_depth 2: the first solve (held in its
     injected 300 ms delay) occupies the only below-high-water slot, so
     a concurrent second solve is answered from the analytic tier. *)
  with_server
    ~config:
      {
        Server.default_config with
        jobs = Some 1;
        queue_depth = 2;
        high_water = 1;
        faults = Some (faults "seed=9,delay:p=1:ms=300");
      }
    (fun server ->
      let net = sample_net () in
      let budget = feasible_budget net in
      let solve = Protocol.Solve { budget; deadline_ms = None; trace = None; net } in
      let responses = Array.make 2 (Error "not run") in
      let one index () =
        let client, worker = connect_pair server in
        responses.(index) <- Client.request client solve;
        Client.close client;
        Thread.join worker
      in
      let first = Thread.create (one 0) () in
      Thread.delay 0.08;  (* let the first solve enter its delay *)
      let second = Thread.create (one 1) () in
      Thread.join first;
      Thread.join second;
      let degraded, full =
        Array.fold_left
          (fun (d, f) r ->
            match r with
            | Ok (Protocol.Degraded { reason = Protocol.Overload; solution })
              ->
                check_degraded_legal net ~budget solution;
                (d + 1, f)
            | Ok (Protocol.Result _) -> (d, f + 1)
            | Ok other ->
                Alcotest.failf "unexpected answer %S"
                  (Protocol.print_response other)
            | Error e -> Alcotest.failf "transport failure: %s" e)
          (0, 0) responses
      in
      Alcotest.(check int) "one request shed" 1 degraded;
      Alcotest.(check int) "one full solve" 1 full)

let test_cache_corruption_self_heals () =
  with_server ~config:{ Server.default_config with jobs = Some 1 }
    (fun server ->
      let client, worker = connect_pair server in
      let net = sample_net () in
      let budget = feasible_budget net in
      let solve = Protocol.Solve { budget; deadline_ms = None; trace = None; net } in
      let served () =
        match Client.request client solve with
        | Ok (Protocol.Result { served; _ }) -> served
        | Ok other ->
            Alcotest.failf "solve answered %S" (Protocol.print_response other)
        | Error e -> Alcotest.failf "solve failed: %s" e
      in
      Alcotest.(check bool) "warmup is fresh" true (served () = Protocol.Fresh);
      Alcotest.(check bool) "replay is cached" true
        (served () = Protocol.Cached);
      (* Flip the stored digest: the next read must detect the mismatch,
         evict the entry and re-solve rather than serve the bad bytes. *)
      Alcotest.(check bool) "corruption hook found the entry" true
        (Server.corrupt_cache_entry server (Server.cache_key server ~net ~budget));
      Alcotest.(check bool) "corrupted entry is re-solved" true
        (served () = Protocol.Fresh);
      Alcotest.(check bool) "healed entry serves again" true
        (served () = Protocol.Cached);
      let stats = Server.stats server in
      Alcotest.(check int) "one self-heal counted" 1
        stats.Protocol.cache_self_heals;
      Client.close client;
      Thread.join worker)

(* --- Frame bounds --------------------------------------------------------- *)

let read_all fd =
  let buffer = Bytes.create 4096 in
  let out = Buffer.create 256 in
  let rec go () =
    match Unix.read fd buffer 0 (Bytes.length buffer) with
    | 0 -> Buffer.contents out
    | n ->
        Buffer.add_subbytes out buffer 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        Buffer.contents out
  in
  go ()

let test_oversized_frame_rejected () =
  with_server
    ~config:
      { Server.default_config with jobs = Some 1; max_frame_bytes = 256 }
    (fun server ->
      let server_fd, client_fd =
        Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
      in
      let worker =
        Thread.create (Server.handle_connection server) server_fd
      in
      (* One endless header line: the frame budget must trip on buffered
         bytes before any line is handed to the parser, however the reads
         split. *)
      let s = "SOLVE " ^ String.make 600 'x' ^ "\nEND\n" in
      (try Wire.send client_fd s
       with Unix.Unix_error (Unix.EPIPE, _, _) -> ());
      let answer = read_all client_fd in
      Alcotest.(check string) "typed TOOBIG then hang up" "TOOBIG\n" answer;
      Thread.join worker;
      Unix.close client_fd;
      Alcotest.(check int) "toobig counted" 1
        (Server.stats server).Protocol.toobig)

let test_wire_reader_bounds () =
  (* Writes are interleaved with reads so each read sees exactly one
     line's bytes: the budget is checked on buffer growth, so batching
     both lines into one read would trip it before the first line. *)
  let read_fd, write_fd = Unix.pipe ~cloexec:true () in
  let reader = Wire.create ~max_frame_bytes:16 read_fd in
  let next = Wire.reader reader in
  Wire.send write_fd "0123456789\n";
  Alcotest.(check (option string)) "first line fits" (Some "0123456789")
    (next ());
  (* The second line pushes the frame past 16 bytes... *)
  Wire.send write_fd "0123456789\n";
  Alcotest.check_raises "second line trips the frame budget"
    Wire.Frame_too_big (fun () -> ignore (next ()));
  (* ...but a new frame resets the budget; the buffered line that
     tripped the bound is then readable again. *)
  Wire.new_frame reader;
  Alcotest.(check (option string)) "after new_frame" (Some "0123456789")
    (next ());
  Wire.send write_fd "ok\n";
  Unix.close write_fd;
  Alcotest.(check (option string)) "reads on" (Some "ok") (next ());
  Alcotest.(check (option string)) "eof" None (next ());
  Unix.close read_fd

let test_wire_reader_lines () =
  let read_fd, write_fd = Unix.pipe ~cloexec:true () in
  let next = Wire.reader (Wire.create read_fd) in
  Wire.send write_fd "alpha\r\nbeta\ntail-without-newline";
  Unix.close write_fd;
  Alcotest.(check (option string)) "crlf stripped" (Some "alpha") (next ());
  Alcotest.(check (option string)) "plain line" (Some "beta") (next ());
  Alcotest.(check (option string)) "final unterminated line"
    (Some "tail-without-newline") (next ());
  Alcotest.(check (option string)) "eof" None (next ());
  Unix.close read_fd

(* --- Fault plans ---------------------------------------------------------- *)

let test_faults_spec_parsing () =
  let plan =
    faults "seed=7,delay:p=0.5:ms=20,kill:p=0.25,drop:p=0.75:bytes=64,corrupt"
  in
  let spec = Faults.spec plan in
  Alcotest.(check int64) "seed" 7L spec.Faults.seed;
  Alcotest.(check (float 0.0)) "delay p" 0.5 spec.Faults.delay_p;
  Alcotest.(check (float 0.0)) "delay seconds" 0.020 spec.Faults.delay_seconds;
  Alcotest.(check (float 0.0)) "kill p" 0.25 spec.Faults.kill_p;
  Alcotest.(check int) "drop bytes" 64 spec.Faults.drop_bytes;
  Alcotest.(check (float 0.0)) "bare clause means p=1" 1.0
    spec.Faults.corrupt_p;
  let disk =
    faults "seed=9,torn:p=0.25,bitflip:p=0.125,fsyncdelay:p=0.5:ms=8"
  in
  let disk_spec = Faults.spec disk in
  Alcotest.(check (float 0.0)) "torn p" 0.25 disk_spec.Faults.torn_p;
  Alcotest.(check (float 0.0)) "bitflip p" 0.125 disk_spec.Faults.bitflip_p;
  Alcotest.(check (float 0.0)) "fsyncdelay p" 0.5
    disk_spec.Faults.fsync_delay_p;
  Alcotest.(check (float 0.0)) "fsyncdelay seconds" 0.008
    disk_spec.Faults.fsync_delay_seconds;
  (match Faults.parse_spec "" with
  | Ok plan ->
      Alcotest.(check (float 0.0)) "empty spec is disabled" 0.0
        (Faults.spec plan).Faults.kill_p
  | Error e -> Alcotest.failf "empty spec rejected: %s" e);
  List.iter
    (fun bad ->
      match Faults.parse_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "spec %S should not parse" bad)
    [
      "frobnicate"; "kill:p=nope"; "kill:p=1.5"; "seed=xyz"; "delay:ms=-3";
      "torn:p=2"; "fsyncdelay:ms=-1";
    ]

let test_faults_deterministic () =
  let draws spec =
    let plan = faults spec in
    List.init 32 (fun _ -> (Faults.kill_worker plan, Faults.solve_delay plan))
  in
  Alcotest.(check bool) "same seed, same schedule" true
    (draws "seed=42,kill:p=0.3,delay:p=0.4:ms=5"
    = draws "seed=42,kill:p=0.3,delay:p=0.4:ms=5");
  Alcotest.(check bool) "different seed, different schedule" true
    (draws "seed=42,kill:p=0.3,delay:p=0.4:ms=5"
    <> draws "seed=43,kill:p=0.3,delay:p=0.4:ms=5");
  let off = Faults.disabled () in
  Alcotest.(check bool) "disabled never kills" false (Faults.kill_worker off);
  Alcotest.(check bool) "disabled never delays" true
    (Faults.solve_delay off = None);
  Alcotest.(check bool) "disabled never drops" true
    (Faults.drop_after off = None)

(* --- Client retries over a real listener ---------------------------------- *)

let temp_socket_path tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "rip_%s_%d.sock" tag (Unix.getpid ()))

let with_listening_server ~config ~tag f =
  let path = temp_socket_path tag in
  let server = Server.create ~config process in
  let listen_fd = Server.listen_unix path in
  let run_thread = Thread.create (Server.run server) listen_fd in
  Fun.protect
    ~finally:(fun () ->
      Server.request_shutdown server;
      Thread.join run_thread;
      Server.shutdown server;
      if Sys.file_exists path then
        try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f server path)

let test_dropped_connection_retries () =
  (* Every response is cut after 5 bytes: the client must see a typed
     transport error (never a half-parsed Ok), reconnect, retry, and
     finally report the failure after exhausting its attempts. *)
  with_listening_server ~tag:"drop"
    ~config:
      {
        Server.default_config with
        jobs = Some 1;
        faults = Some (faults "seed=2,drop:p=1:bytes=5");
      }
    (fun server path ->
      let policy =
        {
          Client.default_retry_policy with
          attempts = 3;
          backoff_seconds = 0.001;
          backoff_cap_seconds = 0.002;
        }
      in
      let session =
        Client.session ~policy ~seed:77L (fun () -> Client.connect_unix path)
      in
      let net = sample_net () in
      let outcome =
        Client.request_with_retry session
          (Protocol.Solve
             { budget = feasible_budget net; deadline_ms = None; trace = None; net })
      in
      Client.close_session session;
      (match outcome.Client.response with
      | Error _ -> ()
      | Ok r ->
          Alcotest.failf "dropped responses produced an Ok %S"
            (Protocol.print_response r));
      Alcotest.(check int) "all attempts used" 3 outcome.Client.attempts;
      Alcotest.(check int) "both retries were transport retries" 2
        outcome.Client.retried_transport;
      (* Every attempt reached the server and was fully served there. *)
      let stats = Server.stats server in
      Alcotest.(check int) "server saw every attempt" 3
        stats.Protocol.requests;
      Alcotest.(check int) "first attempt solved, replays hit the cache" 2
        stats.Protocol.cache_hits)

let test_busy_retries_counted () =
  with_server ~config:{ Server.default_config with jobs = Some 1 }
    (fun server ->
      (* Draining servers reject solves with BUSY; the session must retry
         the configured number of times and surface the final BUSY. *)
      Server.request_shutdown server;
      let client, worker = connect_pair server in
      let connected = ref (Some client) in
      let session =
        Client.session
          ~policy:
            {
              Client.default_retry_policy with
              attempts = 3;
              backoff_seconds = 0.001;
              backoff_cap_seconds = 0.002;
            }
          ~seed:5L
          (fun () ->
            match !connected with
            | Some c ->
                connected := None;
                c
            | None -> Alcotest.fail "BUSY must not reconnect")
      in
      let net = sample_net () in
      let outcome =
        Client.request_with_retry session
          (Protocol.Solve
             { budget = feasible_budget net; deadline_ms = None; trace = None; net })
      in
      (match outcome.Client.response with
      | Ok Protocol.Busy -> ()
      | Ok other ->
          Alcotest.failf "draining server answered %S"
            (Protocol.print_response other)
      | Error e -> Alcotest.failf "transport failure: %s" e);
      Alcotest.(check int) "two busy retries" 2 outcome.Client.retried_busy;
      Alcotest.(check int) "server counted every attempt" 3
        (Server.stats server).Protocol.rejected_busy;
      Client.close_session session;
      Thread.join worker)

(* --- The chaos storm ------------------------------------------------------ *)

(* The acceptance scenario: injected worker kills and solve delays under
   a 50 ms deadline.  Every request must get exactly one well-formed
   typed response — RESULT, DEGRADED, TIMEOUT or BUSY — with zero hangs,
   and the load generator's counts must reconcile with the server's
   STATS deltas. *)
let test_chaos_storm_counts_reconcile () =
  with_listening_server ~tag:"chaos"
    ~config:
      {
        Server.default_config with
        jobs = Some 2;
        queue_depth = 8;
        high_water = 8;
        faults = Some (faults "seed=11,delay:p=0.4:ms=20,kill:p=0.3");
      }
    (fun server path ->
      let requests = 24 in
      let workload =
        Loadgen.workload ~seed:20050307L ~distinct_nets:2 ~slack:1.3
          ~deadline_ms:50.0 ~requests process
      in
      let policy =
        {
          Client.attempts = 2;
          backoff_seconds = 0.001;
          backoff_cap_seconds = 0.005;
          attempt_timeout = Some 5.0;
        }
      in
      let result =
        Loadgen.run
          ~connect:(fun () -> Client.connect_unix path)
          ~connections:3 ~policy ~seed:5L workload
      in
      (* Exactly one typed response per request, no hangs, no errors. *)
      Alcotest.(check int) "all requests issued" requests result.Loadgen.sent;
      Alcotest.(check int) "no transport failures" 0
        result.Loadgen.transport_failures;
      Alcotest.(check int) "no transport retries" 0
        result.Loadgen.retried_transport;
      Alcotest.(check int) "no solver errors" 0 result.Loadgen.errors;
      Alcotest.(check int) "every request answered with a typed frame"
        requests
        (result.Loadgen.solved_fresh + result.Loadgen.solved_cached
        + result.Loadgen.degraded + result.Loadgen.timeouts
        + result.Loadgen.busy);
      (* The loadgen's view reconciles with the server's STATS: every
         retried BUSY/TIMEOUT attempt also reached the server. *)
      let stats = Server.stats server in
      let attempts =
        requests + result.Loadgen.retried_busy + result.Loadgen.retried_timeout
      in
      Alcotest.(check int) "server saw every attempt" attempts
        stats.Protocol.requests;
      Alcotest.(check int) "solved reconciles"
        (result.Loadgen.solved_fresh + result.Loadgen.solved_cached)
        stats.Protocol.solved;
      Alcotest.(check int) "degraded reconciles" result.Loadgen.degraded
        stats.Protocol.degraded;
      Alcotest.(check int) "timeouts reconcile"
        (result.Loadgen.timeouts + result.Loadgen.retried_timeout)
        stats.Protocol.timeouts;
      Alcotest.(check int) "busy reconciles"
        (result.Loadgen.busy + result.Loadgen.retried_busy)
        stats.Protocol.rejected_busy;
      Alcotest.(check int) "cache hits reconcile" result.Loadgen.solved_cached
        stats.Protocol.cache_hits;
      Alcotest.(check int) "every attempt hit or missed the cache"
        stats.Protocol.requests
        (stats.Protocol.cache_hits + stats.Protocol.cache_misses);
      (* Under kills and delays something must actually have degraded —
         otherwise this storm is not testing what it claims to. *)
      Alcotest.(check bool) "the storm injected real faults" true
        (result.Loadgen.degraded > 0))

(* --- Crash-durable journal ------------------------------------------------ *)

module Journal = Rip_service.Journal

let qcheck = QCheck_alcotest.to_alcotest

let temp_dir tag =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rip_journal_%s_%d_%d" tag (Unix.getpid ())
         (Hashtbl.hash tag))
  in
  (match Journal.prepare_dir dir with
  | Ok () -> ()
  | Error e -> Alcotest.failf "prepare_dir %s: %s" dir e);
  dir

let remove_dir dir =
  (match Sys.readdir dir with
  | names ->
      Array.iter
        (fun name ->
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        names
  | exception Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let with_journal_dir tag f =
  let dir = temp_dir tag in
  Fun.protect ~finally:(fun () -> remove_dir dir) (fun () -> f dir)

let open_exn ?faults config =
  match Journal.open_ ?faults config with
  | Ok pair -> pair
  | Error e -> Alcotest.failf "Journal.open_: %s" e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let segment_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".rj")
  |> List.sort String.compare
  |> List.map (Filename.concat dir)

let test_journal_crc32_vector () =
  (* The standard IEEE 802.3 check value: crc32("123456789"). *)
  let b = Bytes.of_string "123456789" in
  Alcotest.(check int32)
    "crc32 check vector" 0xCBF43926l
    (Journal.crc32 b ~pos:0 ~len:9)

let test_journal_roundtrip () =
  with_journal_dir "roundtrip" (fun dir ->
      let pairs =
        List.init 8 (fun i ->
            (Printf.sprintf "key-%d" i, Printf.sprintf "value-%d-%s" i dir))
      in
      let journal, recovery = open_exn (Journal.default_config ~dir) in
      Alcotest.(check int) "fresh dir has no entries" 0
        (List.length recovery.Journal.entries);
      List.iter (fun (key, value) -> Journal.append journal ~key ~value) pairs;
      Journal.close journal;
      let journal2, recovery2 = open_exn (Journal.default_config ~dir) in
      Alcotest.(check bool) "clean footer found" true recovery2.Journal.clean;
      Alcotest.(check int) "no CRC rejects" 0 recovery2.Journal.crc_rejected;
      Alcotest.(check int) "no torn bytes" 0 recovery2.Journal.torn_bytes;
      Alcotest.(check bool) "entries replay in append order" true
        (recovery2.Journal.entries = pairs);
      Journal.close journal2)

let test_journal_last_wins () =
  with_journal_dir "lastwins" (fun dir ->
      let journal, _ = open_exn (Journal.default_config ~dir) in
      Journal.append journal ~key:"a" ~value:"stale";
      Journal.append journal ~key:"b" ~value:"kept";
      Journal.append journal ~key:"a" ~value:"fresh";
      Journal.close journal;
      let journal2, recovery = open_exn (Journal.default_config ~dir) in
      Alcotest.(check bool) "last write per key wins" true
        (recovery.Journal.entries = [ ("a", "fresh"); ("b", "kept") ]
        || recovery.Journal.entries = [ ("b", "kept"); ("a", "fresh") ]);
      Alcotest.(check int) "one live record per key" 2
        (List.length recovery.Journal.entries);
      Journal.close journal2)

let test_journal_rotation () =
  with_journal_dir "rotation" (fun dir ->
      let config =
        { (Journal.default_config ~dir) with Journal.segment_bytes = 128 }
      in
      let journal, _ = open_exn config in
      let pairs =
        List.init 16 (fun i ->
            (Printf.sprintf "rot-%02d" i, String.make 40 (Char.chr (65 + i))))
      in
      List.iter (fun (key, value) -> Journal.append journal ~key ~value) pairs;
      let stats = Journal.stats journal in
      Alcotest.(check bool) "rotation produced several segments" true
        (stats.Journal.segments > 1);
      Journal.close journal;
      let journal2, recovery = open_exn config in
      Alcotest.(check bool) "all records survive rotation" true
        (recovery.Journal.entries = pairs);
      Journal.close journal2)

let test_journal_compaction () =
  with_journal_dir "compaction" (fun dir ->
      let config =
        {
          (Journal.default_config ~dir) with
          Journal.compact_min_bytes = 1;
          compact_dead_ratio = 0.5;
        }
      in
      let journal, _ = open_exn config in
      let keys = List.init 8 (fun i -> Printf.sprintf "cmp-%d" i) in
      List.iter
        (fun key -> Journal.append journal ~key ~value:(String.make 64 'x'))
        keys;
      (* Evict five of eight: the fifth eviction pushes the dead ratio
         past 0.5 and compaction rewrites the three live records into a
         fresh segment.  (Evictions *after* the last compaction are not
         persisted — there are no tombstone records — so the test ends
         exactly on the compaction to make the on-disk set exact.) *)
      List.iteri
        (fun i key -> if i < 5 then Journal.note_evicted journal ~key)
        keys;
      let stats = Journal.stats journal in
      Alcotest.(check bool) "compaction ran" true (stats.Journal.compactions >= 1);
      Alcotest.(check int) "live entries" 3 stats.Journal.live_entries;
      Alcotest.(check int) "compaction left no dead bytes" 0
        stats.Journal.dead_bytes;
      Journal.close journal;
      let journal2, recovery = open_exn config in
      Alcotest.(check bool) "only live keys replay" true
        (List.map fst recovery.Journal.entries = [ "cmp-5"; "cmp-6"; "cmp-7" ]);
      Journal.close journal2)

let test_journal_torn_tail () =
  with_journal_dir "torn" (fun dir ->
      let journal, _ = open_exn (Journal.default_config ~dir) in
      Journal.append journal ~key:"whole" ~value:"survives";
      Journal.flush journal;
      Journal.close journal;
      (* A crash mid-append: valid frames, then a ragged half-record. *)
      let path = List.hd (segment_files dir) in
      let bytes = read_file path in
      write_file path (bytes ^ "E\x00\x00\x00\x05\x00");
      let journal2, recovery = open_exn (Journal.default_config ~dir) in
      Alcotest.(check bool) "torn tail truncated" true
        (recovery.Journal.torn_bytes > 0);
      Alcotest.(check bool) "log no longer clean" false recovery.Journal.clean;
      Alcotest.(check bool) "records before the tear survive" true
        (recovery.Journal.entries = [ ("whole", "survives") ]);
      Journal.close journal2;
      (* The repair truncated the file in place: a third recovery sees
         no tear at all. *)
      let journal3, recovery3 = open_exn (Journal.default_config ~dir) in
      Alcotest.(check int) "repair is durable" 0 recovery3.Journal.torn_bytes;
      Journal.close journal3)

let test_journal_crc_reject () =
  with_journal_dir "crc" (fun dir ->
      let journal, _ = open_exn (Journal.default_config ~dir) in
      Journal.append journal ~key:"first" ~value:"to-be-rotted";
      Journal.append journal ~key:"second" ~value:"intact";
      Journal.close journal;
      let path = List.hd (segment_files dir) in
      let bytes = Bytes.of_string (read_file path) in
      (* Flip one payload bit of the first record (magic 9B + header 13B
         + "first"): its CRC must reject it while the second record and
         the footer still parse. *)
      let pos = 9 + 13 + 5 + 1 in
      Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x10));
      write_file path (Bytes.to_string bytes);
      let journal2, recovery = open_exn (Journal.default_config ~dir) in
      Alcotest.(check int) "one record rejected" 1 recovery.Journal.crc_rejected;
      Alcotest.(check bool) "later record unaffected" true
        (recovery.Journal.entries = [ ("second", "intact") ]);
      Alcotest.(check bool) "footer still terminates the log" true
        recovery.Journal.clean;
      Journal.close journal2)

let test_journal_prepare_dir () =
  (* Typed errors, not exceptions: an unwritable parent and a path
     through a regular file must both come back as Error. *)
  (match Journal.prepare_dir "/proc/rip-journal-denied" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "prepare_dir under /proc should fail");
  with_journal_dir "prepok" (fun dir ->
      let file = Filename.concat dir "plain-file" in
      write_file file "not a directory";
      (match Journal.prepare_dir (Filename.concat file "sub") with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "prepare_dir through a file should fail");
      (* Re-preparing an existing directory is the mkdir-race idiom:
         always Ok. *)
      match Journal.prepare_dir dir with
      | Ok () -> ()
      | Error e -> Alcotest.failf "re-prepare of %s failed: %s" dir e)

(* Fuzz the recovery path: any byte-prefix of a valid journal, with any
   bits flipped, must recover to a subset of the original records —
   never crash, never surface a record that was not appended. *)
let test_journal_fuzz_recovery =
  let base_pairs =
    List.init 6 (fun i ->
        (Printf.sprintf "fuzz-key-%d" i, Printf.sprintf "fuzz-value-%d" i))
  in
  let base_bytes =
    let dir = temp_dir "fuzzbase" in
    Fun.protect
      ~finally:(fun () -> remove_dir dir)
      (fun () ->
        let journal, _ = open_exn (Journal.default_config ~dir) in
        List.iter
          (fun (key, value) -> Journal.append journal ~key ~value)
          base_pairs;
        Journal.close journal;
        read_file (List.hd (segment_files dir)))
  in
  let gen =
    QCheck.Gen.(
      pair
        (int_range 0 (String.length base_bytes))
        (list_size (int_range 0 8)
           (pair (int_range 0 (String.length base_bytes - 1)) (int_range 0 7))))
  in
  QCheck.Test.make ~count:100
    ~name:"journal recovery of mutilated logs yields a valid subset"
    (QCheck.make gen) (fun (keep, flips) ->
      let bytes = Bytes.of_string (String.sub base_bytes 0 keep) in
      List.iter
        (fun (pos, bit) ->
          if pos < Bytes.length bytes then
            Bytes.set bytes pos
              (Char.chr (Char.code (Bytes.get bytes pos) lxor (1 lsl bit))))
        flips;
      let dir = temp_dir (Printf.sprintf "fuzz%d" (Hashtbl.hash (keep, flips))) in
      Fun.protect
        ~finally:(fun () -> remove_dir dir)
        (fun () ->
          write_file
            (Filename.concat dir "segment-00000000.rj")
            (Bytes.to_string bytes);
          match Journal.open_ (Journal.default_config ~dir) with
          | Error e -> QCheck.Test.fail_reportf "open_ failed: %s" e
          | Ok (journal, recovery) ->
              Journal.close journal;
              List.for_all
                (fun entry -> List.mem entry base_pairs)
                recovery.Journal.entries))

(* End-to-end crash recovery: solve through a journaled server, tear
   the journal's tail as a crash would, boot a second server on the
   same directory and demand byte-identical cached replays. *)
let test_journal_server_restart () =
  with_journal_dir "server" (fun dir ->
      let config =
        {
          Server.default_config with
          jobs = Some 1;
          journal_dir = Some dir;
        }
      in
      let nets =
        List.init 5 (fun i ->
            Net.create
              ~name:(Printf.sprintf "restart-%d" i)
              ~segments:
                [
                  Segment.of_layer Rip_tech.Layer.metal4
                    ~length:(1800.0 +. (130.0 *. float_of_int i));
                  Segment.of_layer Rip_tech.Layer.metal5 ~length:2200.0;
                ]
              ~zones:[ Zone.create ~z_start:1500.0 ~z_end:2600.0 ]
              ~driver_width:20.0 ~receiver_width:40.0 ())
      in
      let solve server net =
        let client, worker = connect_pair server in
        let answer =
          Client.request client
            (Protocol.Solve
               { budget = feasible_budget net; deadline_ms = None; trace = None; net })
        in
        Client.close client;
        Thread.join worker;
        match answer with
        | Ok (Protocol.Result { served; solution }) ->
            (served, Protocol.solution_body solution)
        | Ok other ->
            Alcotest.failf "unexpected response %s" (Protocol.print_response other)
        | Error e -> Alcotest.failf "transport failure: %s" e
      in
      let first_bodies =
        let server = Server.create ~config process in
        Fun.protect
          ~finally:(fun () -> Server.shutdown server)
          (fun () -> List.map (fun net -> snd (solve server net)) nets)
      in
      (* The crash: a ragged half-record after the (cleanly closed) log.
         Recovery must truncate it and keep every whole record. *)
      let segments =
        segment_files dir |> List.filter (fun p -> Sys.file_exists p)
      in
      let last = List.nth segments (List.length segments - 1) in
      write_file last (read_file last ^ "E\x00\x00\x01");
      let server2 = Server.create ~config process in
      Fun.protect
        ~finally:(fun () -> Server.shutdown server2)
        (fun () ->
          (match Server.journal_recovery server2 with
          | None -> Alcotest.fail "journaled server reports no recovery"
          | Some r ->
              Alcotest.(check int) "every solve was journaled" 5
                (List.length r.Journal.entries);
              Alcotest.(check bool) "the torn tail was repaired" true
                (r.Journal.torn_bytes > 0));
          let stats = Server.stats server2 in
          Alcotest.(check int) "all records replayed into the cache" 5
            stats.Protocol.cache_replayed;
          let replayed =
            List.map
              (fun net ->
                let served, body = solve server2 net in
                Alcotest.(check bool) "answered from the replayed cache" true
                  (served = Protocol.Cached);
                body)
              nets
          in
          Alcotest.(check bool) "cached replays are byte-identical" true
            (replayed = first_bodies);
          let stats = Server.stats server2 in
          Alcotest.(check int) "no misses: the warm set covered the suite" 0
            stats.Protocol.cache_misses;
          Alcotest.(check int) "replay counts as neither hit nor miss" 5
            stats.Protocol.cache_hits))

let suite =
  [
    ( "resilience.cancel",
      [ Alcotest.test_case "token semantics" `Quick test_cancel_token ] );
    ( "resilience.deadline",
      [
        Alcotest.test_case "expired at admission" `Quick
          test_timeout_at_admission;
        Alcotest.test_case "cache hit beats deadline" `Quick
          test_cache_hit_beats_expired_deadline;
        Alcotest.test_case "fires mid-solve" `Quick
          test_deadline_mid_solve_degrades;
      ] );
    ( "resilience.faults",
      [
        Alcotest.test_case "spec parsing" `Quick test_faults_spec_parsing;
        Alcotest.test_case "deterministic draws" `Quick
          test_faults_deterministic;
        Alcotest.test_case "worker kill degrades" `Quick
          test_worker_kill_degrades;
        Alcotest.test_case "overload sheds" `Quick
          test_overload_sheds_to_degraded;
        Alcotest.test_case "cache self-heals" `Quick
          test_cache_corruption_self_heals;
      ] );
    ( "resilience.wire",
      [
        Alcotest.test_case "oversized frame rejected" `Quick
          test_oversized_frame_rejected;
        Alcotest.test_case "reader frame budget" `Quick
          test_wire_reader_bounds;
        Alcotest.test_case "reader line handling" `Quick
          test_wire_reader_lines;
      ] );
    ( "resilience.retry",
      [
        Alcotest.test_case "dropped connection" `Quick
          test_dropped_connection_retries;
        Alcotest.test_case "busy retries counted" `Quick
          test_busy_retries_counted;
      ] );
    ( "resilience.chaos",
      [
        Alcotest.test_case "storm counts reconcile" `Quick
          test_chaos_storm_counts_reconcile;
      ] );
    ( "resilience.journal",
      [
        Alcotest.test_case "crc32 check vector" `Quick
          test_journal_crc32_vector;
        Alcotest.test_case "roundtrip with clean footer" `Quick
          test_journal_roundtrip;
        Alcotest.test_case "last write wins" `Quick test_journal_last_wins;
        Alcotest.test_case "segment rotation" `Quick test_journal_rotation;
        Alcotest.test_case "eviction-driven compaction" `Quick
          test_journal_compaction;
        Alcotest.test_case "torn tail truncated" `Quick
          test_journal_torn_tail;
        Alcotest.test_case "CRC rejection skips a record" `Quick
          test_journal_crc_reject;
        Alcotest.test_case "prepare_dir typed errors" `Quick
          test_journal_prepare_dir;
        qcheck test_journal_fuzz_recovery;
        Alcotest.test_case "server crash restart replays cache" `Quick
          test_journal_server_restart;
      ] );
  ]
