(* End-to-end integration tests: the full RIP pipeline against the paper's
   headline claims, on hand-built and generated nets, through the public
   API only. *)

module Net = Rip_net.Net
module Zone = Rip_net.Zone
module Segment = Rip_net.Segment
module Geometry = Rip_net.Geometry
module Net_io = Rip_net.Net_io
module Solution = Rip_elmore.Solution
module Delay = Rip_elmore.Delay
module Validate = Rip_core.Validate
module Rip = Rip_core.Rip
module Baseline = Rip_workload.Baseline
module Suite = Rip_workload.Suite

let process = Helpers.process
let repeater = Helpers.repeater

(* A hand-built 5-segment multi-layer net crossing one macro block. *)
let macro_net () =
  Net.create ~name:"macro_crossing"
    ~segments:
      [
        Segment.of_layer Rip_tech.Layer.metal4 ~length:2100.0;
        Segment.of_layer Rip_tech.Layer.metal5 ~length:1700.0;
        Segment.of_layer Rip_tech.Layer.metal4 ~length:2400.0;
        Segment.of_layer Rip_tech.Layer.metal5 ~length:1300.0;
        Segment.of_layer Rip_tech.Layer.metal4 ~length:2000.0;
      ]
    ~zones:[ Zone.create ~z_start:3200.0 ~z_end:6100.0 ]
    ~driver_width:20.0 ~receiver_width:40.0 ()

let test_full_pipeline_on_macro_net () =
  let net = macro_net () in
  let geometry = Geometry.of_net net in
  let tau_min = Rip.tau_min process geometry in
  List.iter
    (fun slack ->
      let budget = slack *. tau_min in
      match Rip.solve (Rip.problem ~geometry process net ~budget) with
      | Error e ->
          Alcotest.failf "x%.2f failed: %s" slack (Rip.error_to_string e)
      | Ok r ->
          Alcotest.(check bool)
            (Printf.sprintf "valid at x%.2f" slack)
            true
            (Validate.is_valid ~min_width:10.0 ~max_width:400.0 process net
               ~budget r.Rip.solution))
    [ 1.05; 1.25; 1.55; 2.05 ]

let test_pipeline_through_file_round_trip () =
  (* Write the net to a file, parse it back, solve, and compare widths. *)
  let net = macro_net () in
  let path = Filename.temp_file "rip_integration" ".net" in
  Net_io.write_file path net;
  let parsed =
    match Net_io.parse_file path with
    | Ok n -> n
    | Error e -> Alcotest.failf "parse: %s" e
  in
  Sys.remove path;
  let budget = 1.4 *. Rip.tau_min process (Geometry.of_net net) in
  match
    ( Rip.solve (Rip.problem process net ~budget),
      Rip.solve (Rip.problem process parsed ~budget) )
  with
  | Ok a, Ok b ->
      Alcotest.(check bool) "same result through the file" true
        (Solution.equal a.Rip.solution b.Rip.solution)
  | _, _ -> Alcotest.fail "both solves should succeed"

let test_refine_improves_coarse_seed () =
  (* The analytical stage is the paper's contribution: on the macro net it
     must strictly improve the coarse seed for mid-range budgets. *)
  let net = macro_net () in
  let geometry = Geometry.of_net net in
  let tau_min = Rip.tau_min process geometry in
  match
    Rip.solve (Rip.problem ~geometry process net ~budget:(1.35 *. tau_min))
  with
  | Error e -> Alcotest.failf "failed: %s" (Rip.error_to_string e)
  | Ok r -> (
      match (r.Rip.trace.Rip.coarse, r.Rip.trace.Rip.refined) with
      | Some coarse, Some refined ->
          Alcotest.(check bool) "refine below coarse" true
            (refined.Rip_refine.Refine.total_width
            < coarse.Rip_dp.Power_dp.total_width +. 1e-9);
          Alcotest.(check bool) "final below coarse" true
            (r.Rip.total_width <= coarse.Rip_dp.Power_dp.total_width +. 1e-9)
      | _ -> Alcotest.fail "trace incomplete")

let test_rip_never_violates_where_baseline_does () =
  (* Zone I of Figure 7(a): budgets the capped baseline cannot meet, RIP
     must still meet. *)
  let nets = Suite.nets ~count:5 () in
  let found_zone1 = ref false in
  List.iter
    (fun net ->
      let geometry = Geometry.of_net net in
      let tau_min = Rip.tau_min process geometry in
      List.iter
        (fun slack ->
          let budget = slack *. tau_min in
          let base =
            Baseline.solve (Baseline.fixed_size ~granularity:10.0) process
              geometry ~budget
          in
          if base.Baseline.result = None then begin
            found_zone1 := true;
            match Rip.solve (Rip.problem ~geometry process net ~budget) with
            | Ok r ->
                Alcotest.(check bool) "RIP feasible in zone I" true
                  (Validate.is_valid process net ~budget r.Rip.solution)
            | Error e ->
                Alcotest.failf "RIP must not violate (%s): %s" net.Net.name
                  (Rip.error_to_string e)
          end)
        [ 1.05; 1.10; 1.15 ])
    nets;
  Alcotest.(check bool) "zone I exercised" true !found_zone1

let test_rip_beats_coarse_baseline_on_average () =
  (* The headline claim, in miniature: against the g=40u baseline, RIP's
     mean saving across a small sweep is solidly positive. *)
  let nets = Suite.nets ~count:4 () in
  let savings = ref [] in
  List.iter
    (fun net ->
      let geometry = Geometry.of_net net in
      let tau_min = Rip.tau_min process geometry in
      List.iter
        (fun slack ->
          let budget = slack *. tau_min in
          let base =
            Baseline.solve (Baseline.fixed_size ~granularity:40.0) process
              geometry ~budget
          in
          match
            ( base.Baseline.result,
              Rip.solve (Rip.problem ~geometry process net ~budget) )
          with
          | Some b, Ok r when b.Rip_dp.Power_dp.total_width > 0.0 ->
              savings :=
                (100.0
                *. (b.Rip_dp.Power_dp.total_width -. r.Rip.total_width)
                /. b.Rip_dp.Power_dp.total_width)
                :: !savings
          | _ -> ())
        [ 1.1; 1.3; 1.5; 1.7; 1.9 ])
    nets;
  let mean = Rip_numerics.Stats.mean !savings in
  Alcotest.(check bool)
    (Printf.sprintf "mean saving %.1f%% > 5%%" mean)
    true (mean > 5.0)

let test_rip_runtime_beats_fine_baseline () =
  (* Table 2's speedup claim, in miniature: RIP is at least 5x faster than
     the g_DP = 10u fixed-range baseline at comparable quality. *)
  let net = List.hd (Suite.nets ~count:1 ()) in
  let geometry = Geometry.of_net net in
  let tau_min = Rip.tau_min process geometry in
  let budget = 1.3 *. tau_min in
  let base =
    Baseline.solve (Baseline.fixed_range ~granularity:10.0) process geometry
      ~budget
  in
  match
    ( base.Baseline.result,
      Rip.solve (Rip.problem ~geometry process net ~budget) )
  with
  | Some _, Ok r ->
      Alcotest.(check bool)
        (Printf.sprintf "speedup %.0fx >= 5x"
           (base.Baseline.runtime_seconds /. r.Rip.runtime_seconds))
        true
        (base.Baseline.runtime_seconds >= 5.0 *. r.Rip.runtime_seconds)
  | _ -> Alcotest.fail "both should solve"

let test_stage_delay_additivity_across_pipeline () =
  (* The delay reported by RIP equals an independent re-evaluation. *)
  let net = macro_net () in
  let geometry = Geometry.of_net net in
  let tau_min = Rip.tau_min process geometry in
  match
    Rip.solve (Rip.problem ~geometry process net ~budget:(1.5 *. tau_min))
  with
  | Error e -> Alcotest.failf "failed: %s" (Rip.error_to_string e)
  | Ok r ->
      Alcotest.(check bool) "delay re-evaluates" true
        (Helpers.close ~rel:1e-12 r.Rip.delay
           (Delay.total repeater geometry r.Rip.solution))

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "full pipeline on macro-crossing net" `Slow
          test_full_pipeline_on_macro_net;
        Alcotest.test_case "file round trip through solve" `Slow
          test_pipeline_through_file_round_trip;
        Alcotest.test_case "REFINE improves the coarse seed" `Slow
          test_refine_improves_coarse_seed;
        Alcotest.test_case "RIP feasible across zone I" `Slow
          test_rip_never_violates_where_baseline_does;
        Alcotest.test_case "mean saving vs g=40u baseline" `Slow
          test_rip_beats_coarse_baseline_on_average;
        Alcotest.test_case "speedup vs fine baseline" `Slow
          test_rip_runtime_beats_fine_baseline;
        Alcotest.test_case "reported delay re-evaluates" `Slow
          test_stage_delay_additivity_across_pipeline;
      ] );
  ]
