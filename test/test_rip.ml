(* Aggregated test entry point; each module contributes its suites. *)
let () =
  Alcotest.run "rip"
    (List.concat
       [
         Test_numerics.suite;
         Test_obs.suite;
         Test_tech.suite;
         Test_net.suite;
         Test_elmore.suite;
         Test_dp.suite;
         Test_refine.suite;
         Test_core.suite;
         Test_engine.suite;
         Test_service.suite;
         Test_router.suite;
         Test_resilience.suite;
         Test_workload.suite;
         Test_tree.suite;
         Test_integration.suite;
       ])
