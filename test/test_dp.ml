(* Unit and property tests for Rip_dp, including certification of the DP
   against exhaustive enumeration on small instances. *)

module Geometry = Rip_net.Geometry
module Net = Rip_net.Net
module Zone = Rip_net.Zone
module Solution = Rip_elmore.Solution
module Delay = Rip_elmore.Delay
module Repeater_library = Rip_dp.Repeater_library
module Candidates = Rip_dp.Candidates
module Chain = Rip_dp.Chain
module Power_dp = Rip_dp.Power_dp
module Min_delay = Rip_dp.Min_delay
module Exhaustive = Rip_dp.Exhaustive

let qcheck = QCheck_alcotest.to_alcotest
let invalid name f = Alcotest.match_raises name (function Invalid_argument _ -> true | _ -> false) f
let check_float = Alcotest.(check (float 1e-9))
let repeater = Helpers.repeater

(* Most tests go through the redesigned request/run entry point; [backend]
   defaults to [Auto] exactly as production callers get it. *)
let run_dp ?backend ?frontier_cap ?arena ?hooks geometry repeater ~library
    ~candidates ~budget =
  Power_dp.run
    (Power_dp.request ?backend ?frontier_cap ?arena ?hooks geometry repeater
       ~library ~candidates ~budget)

let identical_results (a : Power_dp.result) (b : Power_dp.result) =
  let eq = List.for_all2 Float.equal in
  eq (Solution.positions a.solution) (Solution.positions b.solution)
  && eq (Solution.widths a.solution) (Solution.widths b.solution)
  && Float.equal a.delay b.delay
  && Float.equal a.total_width b.total_width

(* --- Repeater_library ------------------------------------------------------ *)

let test_library_create () =
  let l = Repeater_library.create [ 30.0; 10.0; 30.0; 20.0 ] in
  Alcotest.(check (list (float 1e-9))) "sorted dedup" [ 10.0; 20.0; 30.0 ]
    (Repeater_library.widths l);
  Alcotest.(check int) "size" 3 (Repeater_library.size l);
  check_float "min" 10.0 (Repeater_library.min_width l);
  check_float "max" 30.0 (Repeater_library.max_width l);
  Alcotest.(check bool) "mem" true (Repeater_library.mem l 20.0);
  Alcotest.(check bool) "not mem" false (Repeater_library.mem l 25.0)

let test_library_validation () =
  invalid "empty" (fun () -> ignore (Repeater_library.create []));
  invalid "non-positive" (fun () -> ignore (Repeater_library.create [ 0.0 ]))

let test_library_uniform_range () =
  Alcotest.(check (list (float 1e-9))) "uniform"
    [ 80.0; 160.0; 240.0; 320.0; 400.0 ]
    (Repeater_library.widths
       (Repeater_library.uniform ~min_width:80.0 ~step:80.0 ~count:5));
  let paper_baseline =
    Repeater_library.uniform ~min_width:10.0 ~step:10.0 ~count:10
  in
  check_float "baseline cap" 100.0 (Repeater_library.max_width paper_baseline);
  Alcotest.(check int) "range size"
    40
    (Repeater_library.size
       (Repeater_library.range ~min_width:10.0 ~max_width:400.0 ~step:10.0))

let test_library_round_to_grid () =
  let l =
    Repeater_library.round_to_grid ~granularity:10.0 ~min_width:10.0
      ~max_width:400.0 [ 23.2; 396.0 ]
  in
  (* 23.2 snaps to 20 with neighbours 10 and 30; 396 snaps to 400 with
     neighbour 390 (410 clamps onto 400). *)
  Alcotest.(check (list (float 1e-9))) "snapped"
    [ 10.0; 20.0; 30.0; 390.0; 400.0 ]
    (Repeater_library.widths l)

let test_library_round_clamps () =
  let l =
    Repeater_library.round_to_grid ~granularity:10.0 ~min_width:10.0
      ~max_width:400.0 [ 2.0; 1000.0 ]
  in
  check_float "floor" 10.0 (Repeater_library.min_width l);
  check_float "ceiling" 400.0 (Repeater_library.max_width l)

(* --- Candidates ------------------------------------------------------------- *)

let zoned_net () =
  Net.create
    ~segments:[ Rip_net.Segment.of_layer Rip_tech.Layer.metal4 ~length:2000.0 ]
    ~zones:[ Zone.create ~z_start:700.0 ~z_end:1300.0 ]
    ~driver_width:20.0 ~receiver_width:40.0 ()

let test_candidates_uniform () =
  let sites = Candidates.uniform (zoned_net ()) ~pitch:200.0 in
  (* 200..1800 step 200, minus zone interior (800..1200) and endpoints. *)
  Alcotest.(check (list (float 1e-9)))
    "sites" [ 200.0; 400.0; 600.0; 1400.0; 1600.0; 1800.0 ] sites

let test_candidates_around () =
  let sites =
    Candidates.around (zoned_net ()) ~centers:[ 500.0 ] ~radius:2 ~pitch:100.0
  in
  (* 300..700; 700 is the zone edge hence legal. *)
  Alcotest.(check (list (float 1e-9)))
    "window" [ 300.0; 400.0; 500.0; 600.0; 700.0 ] sites

let test_candidates_merge () =
  Alcotest.(check (list (float 1e-9))) "merged" [ 1.0; 2.0; 3.0 ]
    (Candidates.merge [ 1.0; 3.0 ] [ 2.0; 3.0 ])

let prop_candidates_legal =
  QCheck.Test.make ~name:"uniform candidates are interior and zone-free"
    ~count:150
    (Helpers.net_arb ())
    (fun net ->
      let sites = Candidates.uniform net ~pitch:150.0 in
      let length = Net.total_length net in
      List.for_all
        (fun x -> x > 0.0 && x < length && Net.position_legal net x)
        sites
      && List.sort compare sites = sites)

(* --- Chain ------------------------------------------------------------------- *)

let prop_chain_stage_matches_stage =
  QCheck.Test.make
    ~name:"chain stage delay equals the geometry stage delay" ~count:80
    (Helpers.net_with_span_arb ~with_zone:false ())
    (fun (net, (a, b)) ->
      let length = Net.total_length net in
      QCheck.assume (a > 1.0 && b < length -. 1.0 && b -. a > 1.0);
      let geometry = Geometry.of_net net in
      let chain = Chain.create geometry repeater ~candidates:[ a; b ] in
      let via_chain =
        Chain.stage_delay chain ~from_site:1 ~from_width:33.0 ~to_site:2
          ~to_width:77.0
      in
      let direct =
        Rip_elmore.Stage.delay repeater geometry ~driver_pos:a
          ~driver_width:33.0 ~load_pos:b ~load_width:77.0
      in
      Helpers.close ~rel:1e-9 via_chain direct)

let test_chain_sites () =
  let net = zoned_net () in
  let geometry = Geometry.of_net net in
  let chain = Chain.create geometry repeater ~candidates:[ 500.0; 1500.0 ] in
  Alcotest.(check int) "sites" 4 (Chain.site_count chain);
  Alcotest.(check int) "interior" 2 (Chain.interior_count chain);
  Alcotest.(check bool) "driver not interior" false (Chain.is_interior chain 0);
  Alcotest.(check bool) "receiver not interior" false
    (Chain.is_interior chain 3);
  Alcotest.(check bool) "site 1 interior" true (Chain.is_interior chain 1)

(* --- Power_dp vs Exhaustive --------------------------------------------------- *)

let small_instance_gen =
  QCheck.Gen.(
    let* net = Helpers.net_gen () in
    let length = Rip_net.Net.total_length net in
    let* site_count = int_range 2 5 in
    let* sites =
      list_repeat site_count (float_range (0.02 *. length) (0.98 *. length))
    in
    let sites = List.filter (Net.position_legal net) sites in
    let* widths = list_size (int_range 1 3) (float_range 10.0 200.0) in
    let widths = if widths = [] then [ 50.0 ] else widths in
    let* slack = float_range 0.9 2.5 in
    return (net, sites, widths, slack))

let small_instance_arb =
  QCheck.make
    ~print:(fun (net, sites, widths, slack) ->
      Fmt.str "%a sites=%a widths=%a slack=%g" Rip_net.Net.pp net
        Fmt.(Dump.list float)
        sites
        Fmt.(Dump.list float)
        widths slack)
    small_instance_gen

let prop_power_dp_optimal =
  QCheck.Test.make ~name:"power DP matches exhaustive enumeration" ~count:60
    small_instance_arb
    (fun (net, sites, widths, slack) ->
      let geometry = Geometry.of_net net in
      let library = Repeater_library.create widths in
      let bare = Delay.total repeater geometry Solution.empty in
      let budget = bare *. slack /. 1.5 in
      let dp =
        run_dp geometry repeater ~library ~candidates:sites ~budget
      in
      let brute =
        Exhaustive.min_width_under_budget geometry repeater ~library
          ~candidates:sites ~budget
      in
      match (dp, brute) with
      | None, None -> true
      | Some dp, Some (_, brute_width) ->
          Helpers.close ~rel:1e-9 dp.Power_dp.total_width brute_width
      | Some _, None | None, Some _ -> false)

let prop_power_dp_valid =
  QCheck.Test.make ~name:"power DP output is legal and meets its budget"
    ~count:60 small_instance_arb
    (fun (net, sites, widths, slack) ->
      let geometry = Geometry.of_net net in
      let library = Repeater_library.create widths in
      let bare = Delay.total repeater geometry Solution.empty in
      let budget = bare *. slack in
      match run_dp geometry repeater ~library ~candidates:sites ~budget
      with
      | None -> true
      | Some r ->
          r.Power_dp.delay <= budget +. (1e-9 *. budget)
          && Solution.legal net r.Power_dp.solution
          && Helpers.close ~rel:1e-9
               (Solution.total_width r.Power_dp.solution)
               r.Power_dp.total_width)

let prop_power_dp_monotone_in_budget =
  QCheck.Test.make ~name:"looser budgets never cost more width" ~count:40
    small_instance_arb
    (fun (net, sites, widths, _) ->
      let geometry = Geometry.of_net net in
      let library = Repeater_library.create widths in
      let bare = Delay.total repeater geometry Solution.empty in
      let width_at budget =
        run_dp geometry repeater ~library ~candidates:sites ~budget
        |> Option.map (fun r -> r.Power_dp.total_width)
      in
      match (width_at (0.8 *. bare), width_at (1.1 *. bare)) with
      | Some tight, Some loose -> loose <= tight +. 1e-9
      | None, _ -> true
      | Some _, None -> false)

let test_power_dp_generous_budget_is_free () =
  let net = zoned_net () in
  let geometry = Geometry.of_net net in
  let bare = Delay.total repeater geometry Solution.empty in
  let library = Repeater_library.uniform ~min_width:10.0 ~step:10.0 ~count:5 in
  match
    run_dp geometry repeater ~library
      ~candidates:(Candidates.uniform net ~pitch:200.0)
      ~budget:(10.0 *. bare)
  with
  | Some r -> check_float "no repeaters needed" 0.0 r.Power_dp.total_width
  | None -> Alcotest.fail "generous budget must be feasible"

let test_power_dp_impossible_budget () =
  let net = zoned_net () in
  let geometry = Geometry.of_net net in
  let library = Repeater_library.uniform ~min_width:10.0 ~step:10.0 ~count:5 in
  Alcotest.(check bool) "infeasible" true
    (run_dp geometry repeater ~library
       ~candidates:(Candidates.uniform net ~pitch:200.0)
       ~budget:1e-15
    = None)

let test_power_dp_zone_respected () =
  (* All candidate sites come from the generator, which excludes zones, so
     any solution is zone-free; verify on a zone-heavy net. *)
  let net =
    Net.create
      ~segments:[ Rip_net.Segment.of_layer Rip_tech.Layer.metal4 ~length:8000.0 ]
      ~zones:[ Zone.create ~z_start:1000.0 ~z_end:7000.0 ]
      ~driver_width:20.0 ~receiver_width:40.0 ()
  in
  let geometry = Geometry.of_net net in
  let bare = Delay.total repeater geometry Solution.empty in
  let library = Repeater_library.range ~min_width:10.0 ~max_width:400.0 ~step:30.0 in
  match
    run_dp geometry repeater ~library
      ~candidates:(Candidates.uniform net ~pitch:100.0)
      ~budget:(0.75 *. bare)
  with
  | Some r ->
      Alcotest.(check bool) "legal" true (Solution.legal net r.Power_dp.solution)
  | None -> Alcotest.fail "expected feasible"

(* --- Min_delay ----------------------------------------------------------------- *)

let prop_min_delay_optimal =
  QCheck.Test.make ~name:"min-delay DP matches exhaustive enumeration"
    ~count:60 small_instance_arb
    (fun (net, sites, widths, _) ->
      let geometry = Geometry.of_net net in
      let library = Repeater_library.create widths in
      let dp = Min_delay.solve geometry repeater ~library ~candidates:sites in
      let _, brute =
        Exhaustive.min_delay geometry repeater ~library ~candidates:sites
      in
      Helpers.close ~rel:1e-9 dp.Min_delay.delay brute)

let prop_min_delay_consistent =
  QCheck.Test.make
    ~name:"min-delay DP's reported delay matches its solution" ~count:60
    small_instance_arb
    (fun (net, sites, widths, _) ->
      let geometry = Geometry.of_net net in
      let library = Repeater_library.create widths in
      let dp = Min_delay.solve geometry repeater ~library ~candidates:sites in
      Helpers.close ~rel:1e-9 dp.Min_delay.delay
        (Delay.total repeater geometry dp.Min_delay.solution))

let prop_min_delay_lower_bounds_power_dp =
  QCheck.Test.make ~name:"tau_min lower-bounds every feasible budget"
    ~count:40 small_instance_arb
    (fun (net, sites, widths, slack) ->
      let geometry = Geometry.of_net net in
      let library = Repeater_library.create widths in
      let tau =
        Min_delay.tau_min geometry repeater ~library ~candidates:sites
      in
      let bare = Delay.total repeater geometry Solution.empty in
      match
        run_dp geometry repeater ~library ~candidates:sites
          ~budget:(bare *. slack)
      with
      | None -> true
      | Some r -> r.Power_dp.delay >= tau -. (1e-9 *. tau))

(* --- Exhaustive ------------------------------------------------------------------ *)

let test_enumeration_size () =
  Alcotest.(check int) "3 sites 2 widths" 27
    (Exhaustive.enumeration_size ~sites:3 ~library_size:2)

let test_enumeration_guard () =
  let net = zoned_net () in
  let geometry = Geometry.of_net net in
  let library = Repeater_library.range ~min_width:10.0 ~max_width:400.0 ~step:10.0 in
  invalid "too large" (fun () ->
      ignore
        (Exhaustive.min_delay geometry repeater ~library
           ~candidates:(List.init 12 (fun i -> 100.0 +. float_of_int i))))

(* Regression for the frontier collection order: labels are gathered
   from a Hashtbl, so without the canonical pre-sort the result could
   depend on hash iteration order.  Two solves must agree bit-for-bit. *)
let prop_power_dp_deterministic =
  QCheck.Test.make
    ~name:"two solves of the same net return identical solutions" ~count:40
    small_instance_arb
    (fun (net, sites, widths, slack) ->
      let geometry = Geometry.of_net net in
      let library = Repeater_library.create widths in
      let bare = Delay.total repeater geometry Solution.empty in
      let budget = bare *. slack in
      let solve () =
        run_dp geometry repeater ~library ~candidates:sites ~budget
      in
      let identical (a : Power_dp.result) (b : Power_dp.result) =
        let eq = List.for_all2 Float.equal in
        eq (Solution.positions a.solution) (Solution.positions b.solution)
        && eq (Solution.widths a.solution) (Solution.widths b.solution)
        && Float.equal a.delay b.delay
        && Float.equal a.total_width b.total_width
      in
      match (solve (), solve ()) with
      | None, None -> true
      | Some a, Some b -> identical a b
      | Some _, None | None, Some _ -> false)

(* The cancellation hook must be a pure observer: threading a token that
   never fires through the DP has to leave the result bit-identical to a
   solve without the hook. *)
let prop_power_dp_cancel_identity =
  QCheck.Test.make
    ~name:"a never-firing cancel token leaves the solve bit-identical"
    ~count:40 small_instance_arb
    (fun (net, sites, widths, slack) ->
      let geometry = Geometry.of_net net in
      let library = Repeater_library.create widths in
      let bare = Delay.total repeater geometry Solution.empty in
      let budget = bare *. slack in
      let token = Rip_engine.Cancel.create () in
      let plain =
        run_dp geometry repeater ~library ~candidates:sites ~budget
      in
      let hooked =
        run_dp
          ~hooks:
            (Rip_numerics.Hooks.make ~cancel:(Rip_engine.Cancel.hook token) ())
          geometry repeater ~library ~candidates:sites ~budget
      in
      let identical (a : Power_dp.result) (b : Power_dp.result) =
        let eq = List.for_all2 Float.equal in
        eq (Solution.positions a.solution) (Solution.positions b.solution)
        && eq (Solution.widths a.solution) (Solution.widths b.solution)
        && Float.equal a.delay b.delay
        && Float.equal a.total_width b.total_width
      in
      match (plain, hooked) with
      | None, None -> true
      | Some a, Some b -> identical a b
      | Some _, None | None, Some _ -> false)

(* --- Backend equivalence ----------------------------------------------------- *)

(* The tentpole contract: the O(bn^2)-pruned flat-arena backend returns
   the same solution, bit for bit, as the reference frontier DP.  Run
   uncapped (the documented divergence caveat only concerns a binding
   frontier cap), and thread a never-firing cancel token through the fast
   side so its poll points are covered too. *)
let prop_backend_equivalence =
  QCheck.Test.make
    ~name:"fast backend is bit-identical to the reference backend" ~count:80
    small_instance_arb
    (fun (net, sites, widths, slack) ->
      let geometry = Geometry.of_net net in
      let library = Repeater_library.create widths in
      let bare = Delay.total repeater geometry Solution.empty in
      List.for_all
        (fun budget ->
          let reference =
            run_dp ~backend:Power_dp.Reference geometry repeater ~library
              ~candidates:sites ~budget
          in
          let token = Rip_engine.Cancel.create () in
          let fast =
            run_dp ~backend:Power_dp.Fast
              ~hooks:
                (Rip_numerics.Hooks.make ~cancel:(Rip_engine.Cancel.hook token)
                   ())
              geometry repeater ~library ~candidates:sites ~budget
          in
          match (reference, fast) with
          | None, None -> true
          | Some a, Some b ->
              identical_results a b
              && a.Power_dp.stats.Power_dp.sites
                 = b.Power_dp.stats.Power_dp.sites
          | Some _, None | None, Some _ -> false)
        [ bare *. slack /. 1.5; bare *. slack; bare *. slack *. 2.0 ])

(* One arena reused across many fast solves must behave exactly like a
   fresh arena per solve, and its capacity must stop growing once it has
   seen the biggest instance. *)
let test_arena_reuse () =
  let net = zoned_net () in
  let geometry = Geometry.of_net net in
  let bare = Delay.total repeater geometry Solution.empty in
  let library =
    Repeater_library.range ~min_width:10.0 ~max_width:400.0 ~step:30.0
  in
  let candidates = Candidates.uniform net ~pitch:100.0 in
  let arena = Rip_dp.Fast_dp.Arena.create () in
  let budgets = [ 0.7 *. bare; 0.8 *. bare; 1.1 *. bare; 0.7 *. bare ] in
  let shared =
    List.map
      (fun budget ->
        run_dp ~backend:Power_dp.Fast ~arena geometry repeater ~library
          ~candidates ~budget)
      budgets
  in
  let capacity_after_warmup = Rip_dp.Fast_dp.Arena.capacity arena in
  let fresh =
    List.map
      (fun budget ->
        run_dp ~backend:Power_dp.Fast geometry repeater ~library ~candidates
          ~budget)
      budgets
  in
  List.iter2
    (fun shared fresh ->
      match (shared, fresh) with
      | None, None -> ()
      | Some a, Some b ->
          Alcotest.(check bool)
            "shared arena result equals fresh arena result" true
            (identical_results a b)
      | Some _, None | None, Some _ ->
          Alcotest.fail "shared/fresh arena feasibility mismatch")
    shared fresh;
  List.iter
    (fun budget ->
      ignore
        (run_dp ~backend:Power_dp.Fast ~arena geometry repeater ~library
           ~candidates ~budget))
    budgets;
  Alcotest.(check int) "capacity stabilises after warmup" capacity_after_warmup
    (Rip_dp.Fast_dp.Arena.capacity arena)

let test_auto_backend () =
  Alcotest.(check string) "auto resolves small instances to the reference"
    (Power_dp.backend_name Power_dp.Reference)
    (Power_dp.backend_name
       (Power_dp.auto_backend ~interior_sites:3 ~library_size:5));
  Alcotest.(check string) "auto resolves large instances to fast"
    (Power_dp.backend_name Power_dp.Fast)
    (Power_dp.backend_name
       (Power_dp.auto_backend ~interior_sites:20 ~library_size:10));
  Alcotest.(check bool) "cutover boundary goes fast" true
    (Power_dp.auto_backend ~interior_sites:Power_dp.auto_cutover
       ~library_size:1
    = Power_dp.Fast)

(* The deprecated entry point must stay a faithful shim over the new
   one. *)
let[@alert "-deprecated"] test_deprecated_solve_shim () =
  let net = zoned_net () in
  let geometry = Geometry.of_net net in
  let bare = Delay.total repeater geometry Solution.empty in
  let library = Repeater_library.uniform ~min_width:10.0 ~step:10.0 ~count:5 in
  let candidates = Candidates.uniform net ~pitch:200.0 in
  let budget = 0.8 *. bare in
  let old_style =
    Power_dp.solve geometry repeater ~library ~candidates ~budget
  in
  let new_style =
    run_dp ~backend:Power_dp.Reference geometry repeater ~library ~candidates
      ~budget
  in
  match (old_style, new_style) with
  | None, None -> ()
  | Some a, Some b ->
      Alcotest.(check bool) "solve = run (request ~backend:Reference)" true
        (identical_results a b)
  | Some _, None | None, Some _ ->
      Alcotest.fail "deprecated shim feasibility mismatch"

let test_run_rejects_tiny_cap () =
  let net = zoned_net () in
  let geometry = Geometry.of_net net in
  let library = Repeater_library.uniform ~min_width:10.0 ~step:10.0 ~count:5 in
  let candidates = Candidates.uniform net ~pitch:200.0 in
  invalid "cap of 1" (fun () ->
      ignore
        (run_dp ~frontier_cap:1 geometry repeater ~library ~candidates
           ~budget:1e-9))

let suite =
  [
    ( "dp.repeater_library",
      [
        Alcotest.test_case "create" `Quick test_library_create;
        Alcotest.test_case "validation" `Quick test_library_validation;
        Alcotest.test_case "uniform and range" `Quick
          test_library_uniform_range;
        Alcotest.test_case "round to grid" `Quick test_library_round_to_grid;
        Alcotest.test_case "round clamps" `Quick test_library_round_clamps;
      ] );
    ( "dp.candidates",
      [
        Alcotest.test_case "uniform excludes zone" `Quick
          test_candidates_uniform;
        Alcotest.test_case "around window" `Quick test_candidates_around;
        Alcotest.test_case "merge" `Quick test_candidates_merge;
        qcheck prop_candidates_legal;
      ] );
    ( "dp.chain",
      [
        Alcotest.test_case "site bookkeeping" `Quick test_chain_sites;
        qcheck prop_chain_stage_matches_stage;
      ] );
    ( "dp.power_dp",
      [
        Alcotest.test_case "generous budget" `Quick
          test_power_dp_generous_budget_is_free;
        Alcotest.test_case "impossible budget" `Quick
          test_power_dp_impossible_budget;
        Alcotest.test_case "zones respected" `Quick test_power_dp_zone_respected;
        qcheck prop_power_dp_optimal;
        qcheck prop_power_dp_valid;
        qcheck prop_power_dp_monotone_in_budget;
        qcheck prop_power_dp_deterministic;
        qcheck prop_power_dp_cancel_identity;
      ] );
    ( "dp.backends",
      [
        qcheck prop_backend_equivalence;
        Alcotest.test_case "arena reuse" `Quick test_arena_reuse;
        Alcotest.test_case "auto cutover" `Quick test_auto_backend;
        Alcotest.test_case "deprecated solve shim" `Quick
          test_deprecated_solve_shim;
        Alcotest.test_case "tiny frontier cap rejected" `Quick
          test_run_rejects_tiny_cap;
      ] );
    ( "dp.min_delay",
      [
        qcheck prop_min_delay_optimal;
        qcheck prop_min_delay_consistent;
        qcheck prop_min_delay_lower_bounds_power_dp;
      ] );
    ( "dp.exhaustive",
      [
        Alcotest.test_case "enumeration size" `Quick test_enumeration_size;
        Alcotest.test_case "size guard" `Quick test_enumeration_guard;
      ] );
  ]
