(* Unit and property tests for Rip_net. *)

module Net = Rip_net.Net
module Segment = Rip_net.Segment
module Zone = Rip_net.Zone
module Geometry = Rip_net.Geometry
module Net_io = Rip_net.Net_io

let qcheck = QCheck_alcotest.to_alcotest
let invalid name f = Alcotest.match_raises name (function Invalid_argument _ -> true | _ -> false) f
let check_float = Alcotest.(check (float 1e-9))

(* --- Segment ------------------------------------------------------------- *)

let test_segment_totals () =
  let s =
    Segment.create ~length:1000.0 ~resistance_per_um:0.1
      ~capacitance_per_um:2e-16 ()
  in
  check_float "R" 100.0 (Segment.total_resistance s);
  Alcotest.(check (float 1e-25)) "C" 2e-13 (Segment.total_capacitance s)

let test_segment_validation () =
  invalid "length" (fun () ->
      ignore
        (Segment.create ~length:0.0 ~resistance_per_um:0.1
           ~capacitance_per_um:1e-16 ()));
  invalid "rc" (fun () ->
      ignore
        (Segment.create ~length:1.0 ~resistance_per_um:(-0.1)
           ~capacitance_per_um:1e-16 ()))

let test_segment_of_layer () =
  let s = Segment.of_layer Rip_tech.Layer.metal4 ~length:500.0 in
  Alcotest.(check string) "layer name" "metal4" s.Segment.layer_name;
  check_float "r" Rip_tech.Layer.metal4.Rip_tech.Layer.resistance_per_um
    s.Segment.resistance_per_um

(* --- Zone ---------------------------------------------------------------- *)

let test_zone_open_interval () =
  let z = Zone.create ~z_start:10.0 ~z_end:20.0 in
  Alcotest.(check bool) "inside" true (Zone.contains z 15.0);
  Alcotest.(check bool) "start edge legal" false (Zone.contains z 10.0);
  Alcotest.(check bool) "end edge legal" false (Zone.contains z 20.0);
  check_float "length" 10.0 (Zone.length z)

let test_zone_validation () =
  invalid "reversed" (fun () -> ignore (Zone.create ~z_start:5.0 ~z_end:5.0));
  invalid "negative" (fun () ->
      ignore (Zone.create ~z_start:(-1.0) ~z_end:5.0))

let test_zone_normalize_merges () =
  let zones =
    [
      Zone.create ~z_start:30.0 ~z_end:40.0;
      Zone.create ~z_start:10.0 ~z_end:20.0;
      Zone.create ~z_start:15.0 ~z_end:35.0;
    ]
  in
  match Zone.normalize zones with
  | [ z ] ->
      check_float "merged start" 10.0 z.Zone.z_start;
      check_float "merged end" 40.0 z.Zone.z_end
  | other ->
      Alcotest.failf "expected one merged zone, got %d" (List.length other)

let test_zone_normalize_keeps_disjoint () =
  let zones =
    [ Zone.create ~z_start:50.0 ~z_end:60.0; Zone.create ~z_start:10.0 ~z_end:20.0 ]
  in
  match Zone.normalize zones with
  | [ a; b ] ->
      check_float "sorted first" 10.0 a.Zone.z_start;
      check_float "sorted second" 50.0 b.Zone.z_start
  | other -> Alcotest.failf "expected two zones, got %d" (List.length other)

let test_zone_snapping () =
  let zones = [ Zone.create ~z_start:10.0 ~z_end:20.0 ] in
  check_float "snap forward" 20.0 (Zone.first_allowed_at_or_after zones 15.0);
  check_float "snap back" 10.0 (Zone.last_allowed_at_or_before zones 15.0);
  check_float "already legal" 5.0 (Zone.first_allowed_at_or_after zones 5.0)

let prop_normalize_disjoint_sorted =
  QCheck.Test.make ~name:"normalize yields sorted disjoint zones" ~count:300
    QCheck.(
      list_of_size (Gen.int_range 0 8)
        (pair (float_range 0.0 100.0) (float_range 0.1 40.0)))
    (fun raw ->
      let zones =
        List.map (fun (s, l) -> Zone.create ~z_start:s ~z_end:(s +. l)) raw
      in
      let normalized = Zone.normalize zones in
      let rec ok = function
        | a :: (b :: _ as rest) ->
            a.Zone.z_end < b.Zone.z_start && ok rest
        | [ _ ] | [] -> true
      in
      ok normalized)

let prop_normalize_preserves_blocking =
  QCheck.Test.make ~name:"normalize preserves blocked positions" ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 6)
           (pair (float_range 0.0 100.0) (float_range 0.1 30.0)))
        (float_range 0.0 140.0))
    (fun (raw, x) ->
      let zones =
        List.map (fun (s, l) -> Zone.create ~z_start:s ~z_end:(s +. l)) raw
      in
      Zone.blocked zones x = Zone.blocked (Zone.normalize zones) x)

(* --- Net ----------------------------------------------------------------- *)

let two_segment_net () =
  Net.create
    ~segments:
      [
        Segment.of_layer Rip_tech.Layer.metal4 ~length:1000.0;
        Segment.of_layer Rip_tech.Layer.metal5 ~length:2000.0;
      ]
    ~zones:[ Zone.create ~z_start:500.0 ~z_end:800.0 ]
    ~driver_width:20.0 ~receiver_width:40.0 ()

let test_net_totals () =
  let net = two_segment_net () in
  check_float "length" 3000.0 (Net.total_length net);
  Alcotest.(check int) "segments" 2 (Net.segment_count net);
  let m4 = Rip_tech.Layer.metal4 and m5 = Rip_tech.Layer.metal5 in
  check_float "wire R"
    ((1000.0 *. m4.Rip_tech.Layer.resistance_per_um)
    +. (2000.0 *. m5.Rip_tech.Layer.resistance_per_um))
    (Net.total_wire_resistance net)

let test_net_position_legal () =
  let net = two_segment_net () in
  Alcotest.(check bool) "driver end" true (Net.position_legal net 0.0);
  Alcotest.(check bool) "receiver end" true (Net.position_legal net 3000.0);
  Alcotest.(check bool) "inside zone" false (Net.position_legal net 600.0);
  Alcotest.(check bool) "zone edge" true (Net.position_legal net 500.0);
  Alcotest.(check bool) "beyond net" false (Net.position_legal net 3001.0);
  Alcotest.(check bool) "before net" false (Net.position_legal net (-1.0))

let test_net_validation () =
  invalid "no segments" (fun () ->
      ignore
        (Net.create ~segments:[] ~zones:[] ~driver_width:1.0
           ~receiver_width:1.0 ()));
  invalid "bad pin" (fun () ->
      ignore
        (Net.create
           ~segments:[ Segment.of_layer Rip_tech.Layer.metal4 ~length:10.0 ]
           ~zones:[] ~driver_width:0.0 ~receiver_width:1.0 ()));
  invalid "zone outside" (fun () ->
      ignore
        (Net.create
           ~segments:[ Segment.of_layer Rip_tech.Layer.metal4 ~length:10.0 ]
           ~zones:[ Zone.create ~z_start:5.0 ~z_end:20.0 ]
           ~driver_width:1.0 ~receiver_width:1.0 ()))

let test_net_uniform () =
  let net =
    Net.uniform Rip_tech.Layer.metal4 ~length:4000.0 ~segment_count:4
      ~driver_width:10.0 ~receiver_width:10.0
  in
  Alcotest.(check int) "pieces" 4 (Net.segment_count net);
  check_float "length" 4000.0 (Net.total_length net)

(* --- Geometry ------------------------------------------------------------ *)

let test_geometry_boundaries () =
  let net = two_segment_net () in
  let g = Geometry.of_net net in
  Alcotest.(check (list (float 1e-9))) "boundaries" [ 0.0; 1000.0; 3000.0 ]
    (Geometry.boundaries g)

let test_geometry_side_lookup () =
  let net = two_segment_net () in
  let g = Geometry.of_net net in
  Alcotest.(check int) "left of boundary" 0
    (Geometry.segment_index_at g Geometry.Left 1000.0);
  Alcotest.(check int) "right of boundary" 1
    (Geometry.segment_index_at g Geometry.Right 1000.0);
  Alcotest.(check int) "interior" 0
    (Geometry.segment_index_at g Geometry.Left 400.0);
  Alcotest.(check int) "at zero" 0
    (Geometry.segment_index_at g Geometry.Left 0.0);
  Alcotest.(check int) "at end" 1
    (Geometry.segment_index_at g Geometry.Right 3000.0)

let test_geometry_unit_rc_sides () =
  let net = two_segment_net () in
  let g = Geometry.of_net net in
  let r_left, _ = Geometry.unit_rc_at g Geometry.Left 1000.0 in
  let r_right, _ = Geometry.unit_rc_at g Geometry.Right 1000.0 in
  check_float "left is metal4"
    Rip_tech.Layer.metal4.Rip_tech.Layer.resistance_per_um r_left;
  check_float "right is metal5"
    Rip_tech.Layer.metal5.Rip_tech.Layer.resistance_per_um r_right

let test_geometry_out_of_range () =
  let net = two_segment_net () in
  let g = Geometry.of_net net in
  invalid "far outside" (fun () ->
      ignore (Geometry.cumulative_resistance g 5000.0))

let prop_resistance_matches_integration =
  QCheck.Test.make ~name:"resistance_between equals numeric integration"
    ~count:60
    (Helpers.net_with_span_arb ())
    (fun (net, (a, b)) ->
      let g = Geometry.of_net net in
      Helpers.close ~rel:1e-6
        (Helpers.brute_resistance net ~a ~b)
        (Geometry.resistance_between g a b))

let prop_capacitance_matches_integration =
  QCheck.Test.make ~name:"capacitance_between equals numeric integration"
    ~count:60
    (Helpers.net_with_span_arb ())
    (fun (net, (a, b)) ->
      let g = Geometry.of_net net in
      Helpers.close ~rel:1e-6
        (Helpers.brute_capacitance net ~a ~b)
        (Geometry.capacitance_between g a b))

let prop_wire_elmore_matches_integration =
  QCheck.Test.make ~name:"wire_elmore_between equals numeric integration"
    ~count:60
    (Helpers.net_with_span_arb ())
    (fun (net, (a, b)) ->
      let g = Geometry.of_net net in
      Helpers.close ~rel:1e-3
        (Helpers.brute_wire_elmore net ~a ~b)
        (Geometry.wire_elmore_between g a b))

let prop_spans_additive =
  QCheck.Test.make ~name:"wire R and C are additive over adjacent spans"
    ~count:200
    (Helpers.net_with_span_arb ())
    (fun (net, (a, b)) ->
      let g = Geometry.of_net net in
      let mid = 0.5 *. (a +. b) in
      Helpers.close ~rel:1e-9
        (Geometry.resistance_between g a b)
        (Geometry.resistance_between g a mid
        +. Geometry.resistance_between g mid b)
      && Helpers.close ~rel:1e-9
           (Geometry.capacitance_between g a b)
           (Geometry.capacitance_between g a mid
           +. Geometry.capacitance_between g mid b))

let prop_wire_elmore_matches_eq1_sum =
  (* Independent closed form: the last term of Eq. (1) summed over the
     whole pieces between a and b — a different derivation than both the
     prefix sums and numeric integration. *)
  QCheck.Test.make
    ~name:"wire elmore equals the segment-wise Eq. (1) sum" ~count:80
    (Helpers.net_with_span_arb ())
    (fun (net, (a, b)) ->
      let g = Geometry.of_net net in
      let cuts =
        List.filter (fun x -> x > a && x < b) (Geometry.boundaries g)
      in
      let points = (a :: cuts) @ [ b ] in
      let rec pieces = function
        | x :: (y :: _ as rest) -> (x, y) :: pieces rest
        | [ _ ] | [] -> []
      in
      let eq1 =
        List.fold_left
          (fun acc (x, y) ->
            let r, c = Geometry.unit_rc_at g Geometry.Right x in
            let l = y -. x in
            let downstream = Geometry.capacitance_between g y b in
            acc +. (r *. l *. ((0.5 *. c *. l) +. downstream)))
          0.0 (pieces points)
      in
      (* 1e-6, not 1e-9: the prefix-sum form cancels catastrophically on
         sub-micron pieces (e.g. a ~0.5 um forbidden zone splitting a
         span), which occasionally overruns a 1e-9 relative bound. *)
      Helpers.close ~rel:1e-6 eq1 (Geometry.wire_elmore_between g a b))

let prop_wire_elmore_nonnegative_monotone =
  QCheck.Test.make ~name:"wire elmore is non-negative and grows with span"
    ~count:200
    (Helpers.net_with_span_arb ())
    (fun (net, (a, b)) ->
      let g = Geometry.of_net net in
      let d = Geometry.wire_elmore_between g a b in
      let wider =
        Geometry.wire_elmore_between g (0.8 *. a)
          (b +. (0.1 *. (Rip_net.Net.total_length net -. b)))
      in
      d >= 0.0 && wider >= d -. 1e-18)

(* --- Net_io ---------------------------------------------------------------- *)

let test_io_round_trip_simple () =
  let net = two_segment_net () in
  match Net_io.parse_string (Net_io.to_string net) with
  | Ok parsed -> Alcotest.(check bool) "equal" true (Net.equal net parsed)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_io_parse_example () =
  let body =
    "# a comment\n\
     net example\n\
     driver 20\n\
     receiver 40\n\
     segment 1800 0.06 0.48 metal4\n\
     segment 2200 0.05 0.52 metal5\n\
     zone 1500 2600\n"
  in
  match Net_io.parse_string body with
  | Ok net ->
      Alcotest.(check string) "name" "example" net.Net.name;
      Alcotest.(check int) "segments" 2 (Net.segment_count net);
      check_float "length" 4000.0 (Net.total_length net);
      Alcotest.(check int) "zones" 1 (List.length net.Net.zones)
  | Error e -> Alcotest.failf "parse failed: %s" e

let expect_error body fragment =
  match Net_io.parse_string body with
  | Ok _ -> Alcotest.failf "expected parse error mentioning %S" fragment
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" e fragment)
        true
        (Helpers.contains e fragment)

let test_io_parse_errors () =
  expect_error "receiver 40\nsegment 100 0.1 0.1\n" "driver";
  expect_error "driver 20\nsegment 100 0.1 0.1\n" "receiver";
  expect_error "driver 20\nreceiver 40\n" "segment";
  expect_error "driver x\nreceiver 40\nsegment 100 0.1 0.1\n" "line 1";
  expect_error "driver 20\nreceiver 40\nsegment 100 0.1 0.1\nfrobnicate 1\n"
    "frobnicate";
  expect_error "driver 20\nreceiver 40\nsegment 100 0.1 0.1\nzone 90 80\n"
    "Zone"

let test_io_missing_file () =
  match Net_io.parse_file "/nonexistent/path/foo.net" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error"

let test_io_file_round_trip () =
  let net = two_segment_net () in
  let path = Filename.temp_file "rip_test" ".net" in
  Net_io.write_file path net;
  (match Net_io.parse_file path with
  | Ok parsed -> Alcotest.(check bool) "equal" true (Net.equal net parsed)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  Sys.remove path

let prop_io_round_trip =
  QCheck.Test.make ~name:"net files round-trip exactly" ~count:100
    (Helpers.net_arb ())
    (fun net ->
      match Net_io.parse_string (Net_io.to_string net) with
      | Ok parsed -> Net.equal net parsed
      | Error _ -> false)

(* Stronger than value equality: re-rendering the parse reproduces the
   file byte for byte, so a net can shuttle through the service protocol
   (SOLVE bodies reuse this format) any number of times without drift. *)
let prop_io_reprint_identical =
  QCheck.Test.make ~name:"net file reprint is byte-identical" ~count:100
    (Helpers.net_arb ())
    (fun net ->
      let body = Net_io.to_string net in
      match Net_io.parse_string body with
      | Ok parsed -> String.equal body (Net_io.to_string parsed)
      | Error _ -> false)

let rename net name =
  Net.create ~name
    ~segments:(Array.to_list net.Net.segments)
    ~zones:net.Net.zones ~driver_width:net.Net.driver_width
    ~receiver_width:net.Net.receiver_width ()

let prop_digest_ignores_names =
  QCheck.Test.make ~name:"canonical digest ignores cosmetic names" ~count:100
    (Helpers.net_arb ())
    (fun net ->
      String.equal (Net.canonical_digest net)
        (Net.canonical_digest (rename net "renamed")))

let prop_digest_survives_io =
  QCheck.Test.make ~name:"canonical digest survives a file round trip"
    ~count:100 (Helpers.net_arb ())
    (fun net ->
      match Net_io.parse_string (Net_io.to_string net) with
      | Ok parsed ->
          String.equal (Net.canonical_digest net)
            (Net.canonical_digest parsed)
      | Error _ -> false)

let suite =
  [
    ( "net.segment",
      [
        Alcotest.test_case "totals" `Quick test_segment_totals;
        Alcotest.test_case "validation" `Quick test_segment_validation;
        Alcotest.test_case "of_layer" `Quick test_segment_of_layer;
      ] );
    ( "net.zone",
      [
        Alcotest.test_case "open interval" `Quick test_zone_open_interval;
        Alcotest.test_case "validation" `Quick test_zone_validation;
        Alcotest.test_case "normalize merges" `Quick
          test_zone_normalize_merges;
        Alcotest.test_case "normalize keeps disjoint" `Quick
          test_zone_normalize_keeps_disjoint;
        Alcotest.test_case "snapping" `Quick test_zone_snapping;
        qcheck prop_normalize_disjoint_sorted;
        qcheck prop_normalize_preserves_blocking;
      ] );
    ( "net.net",
      [
        Alcotest.test_case "totals" `Quick test_net_totals;
        Alcotest.test_case "position legality" `Quick test_net_position_legal;
        Alcotest.test_case "validation" `Quick test_net_validation;
        Alcotest.test_case "uniform" `Quick test_net_uniform;
      ] );
    ( "net.geometry",
      [
        Alcotest.test_case "boundaries" `Quick test_geometry_boundaries;
        Alcotest.test_case "side lookup" `Quick test_geometry_side_lookup;
        Alcotest.test_case "unit rc sides" `Quick test_geometry_unit_rc_sides;
        Alcotest.test_case "out of range" `Quick test_geometry_out_of_range;
        qcheck prop_resistance_matches_integration;
        qcheck prop_capacitance_matches_integration;
        qcheck prop_wire_elmore_matches_integration;
        qcheck prop_wire_elmore_matches_eq1_sum;
        qcheck prop_spans_additive;
        qcheck prop_wire_elmore_nonnegative_monotone;
      ] );
    ( "net.io",
      [
        Alcotest.test_case "round trip" `Quick test_io_round_trip_simple;
        Alcotest.test_case "parse example" `Quick test_io_parse_example;
        Alcotest.test_case "parse errors" `Quick test_io_parse_errors;
        Alcotest.test_case "missing file" `Quick test_io_missing_file;
        Alcotest.test_case "file round trip" `Quick test_io_file_round_trip;
        qcheck prop_io_round_trip;
        qcheck prop_io_reprint_identical;
        qcheck prop_digest_ignores_names;
        qcheck prop_digest_survives_io;
      ] );
  ]
