(* Tests for the rip_lint pass: exact expected findings for each
   fixture unit, the lock-region analysis, the format-string scanner,
   and the CLI end to end.  Fixture sources live in
   ../lint_fixtures/; their cmts are declared as dune deps. *)

module Driver = Rip_lint.Driver
module Rules = Rip_lint.Rules
module Lint_config = Rip_lint.Lint_config
module Finding = Rip_lint.Finding

let fixture_cmt unit_ =
  Filename.concat "../lint_fixtures/.lint_fixtures.objs/byte"
    ("lint_fixtures__" ^ unit_ ^ ".cmt")

(* Render with the path reduced to its basename so expectations do not
   depend on where dune anchors the build context. *)
let render (f : Finding.t) =
  Printf.sprintf "%s:%d:%d [%s] %s"
    (Filename.basename f.Finding.file)
    f.Finding.line f.Finding.col f.Finding.rule f.Finding.message

let run_fixture ?(rules = Lint_config.all) unit_ =
  Driver.run ~library:"lint_fixtures" ~rules [ fixture_cmt unit_ ]
  |> List.map render

let check_findings ?rules expected unit_ () =
  Alcotest.(check (list string)) unit_ expected (run_fixture ?rules unit_)

(* --- Expected findings, one list per fixture ------------------------------- *)

let poly_msg = "; use an explicit comparator built from Float.compare"

let bad_poly_expected =
  [
    "bad_poly.ml:7:36 [no-poly-compare] polymorphic compare at a \
     float-carrying type" ^ poly_msg;
    "bad_poly.ml:8:37 [no-poly-compare] polymorphic = at a float-carrying \
     type" ^ poly_msg;
    "bad_poly.ml:9:36 [no-poly-compare] polymorphic max at a float-carrying \
     type" ^ poly_msg;
    "bad_poly.ml:10:28 [no-poly-compare] polymorphic List.mem at a \
     float-carrying type" ^ poly_msg;
    "bad_poly.ml:12:43 [no-poly-compare] polymorphic compare on float is \
     NaN-unsafe; use Float.compare";
  ]

let hashtbl_msg =
  " iterates in hash order; sort the result explicitly (e.g. List.sort) \
   before it feeds a deterministic path"

let bad_hashtbl_expected =
  [
    "bad_hashtbl.ml:5:15 [no-hashtbl-order] Hashtbl.fold" ^ hashtbl_msg;
    "bad_hashtbl.ml:7:15 [no-hashtbl-order] Hashtbl.iter" ^ hashtbl_msg;
  ]

let clock_msg =
  " reads a process clock; solver code must be clock-free (timing belongs \
   to engine/service telemetry or Rip_numerics.Cpu_clock)"

let bad_clock_expected =
  [
    "bad_clock.ml:3:15 [no-wall-clock] Unix.gettimeofday" ^ clock_msg;
    "bad_clock.ml:4:17 [no-wall-clock] Unix.time" ^ clock_msg;
    "bad_clock.ml:5:13 [no-wall-clock] Sys.time" ^ clock_msg;
  ]

let mutation_msg what verb =
  Printf.sprintf
    "%s is %s by a spawned thread outside a lock on its structure; guard it \
     with the owning mutex or make it Atomic.t"
    what verb

(* The three [_unguarded] accesses, and nothing from the locked,
   Mutex.protect or Atomic variants: this is the lock-region analysis's
   expected sanction behaviour. *)
let bad_mutation_expected =
  [
    "bad_mutation.ml:7:60 [guarded-mutation] "
    ^ mutation_msg "mutable field c.count" "written";
    "bad_mutation.ml:10:41 [guarded-mutation] "
    ^ mutation_msg "mutable field c.count" "read";
    "bad_mutation.ml:13:27 [guarded-mutation] "
    ^ mutation_msg "ref flag" "written";
  ]

(* --- Interprocedural rules -------------------------------------------------- *)

let escape_msg what verb =
  Printf.sprintf
    "%s is %s on a spawn-reachable path with no lock held; guard it with \
     the owning mutex, make it Atomic.t, or keep it thread-local"
    what verb

(* Only [bump]'s access fires: [guarded_bump] holds its own lock,
   [locked_helper] inherits its callers' lock across the call edge, and
   [local_work]'s state is rooted in a spawn-local allocation. *)
let bad_escape_expected =
  [
    "bad_escape.ml:10:13 [domain-escape] "
    ^ escape_msg "mutable field c.count" "written";
    "bad_escape.ml:10:24 [domain-escape] "
    ^ escape_msg "mutable field c.count" "read";
  ]

(* The supersession check: on the intraprocedural fixture, domain-escape
   alone reproduces exactly the three guarded-mutation sanctions, which
   is why the default library sets drop the older rule. *)
let test_escape_supersedes_mutation () =
  Alcotest.(check (list string))
    "domain-escape finds the same three accesses"
    [
      "bad_mutation.ml:7:60 [domain-escape] "
      ^ escape_msg "mutable field c.count" "written";
      "bad_mutation.ml:10:41 [domain-escape] "
      ^ escape_msg "mutable field c.count" "read";
      "bad_mutation.ml:13:27 [domain-escape] "
      ^ escape_msg "ref flag" "written";
    ]
    (run_fixture ~rules:[ Lint_config.Domain_escape ] "Bad_mutation")

let bad_fd_expected =
  [
    "bad_fd.ml:7:6 [fd-leak] fd bound from Unix.socket is never closed; \
     close it on every path, wrap it in Fun.protect ~finally, or hand it to \
     an owner";
    "bad_fd.ml:14:2 [fd-leak] fd is closed twice on the same path";
    "bad_fd.ml:20:9 [fd-leak] fd from Unix.socket is captured by a spawned \
     thread with no close on the spawn-failure path; close it in an \
     exception handler around the spawn";
  ]

let bad_block_expected =
  [
    "bad_block.ml:10:9 [blocking-under-lock] blocking Unix.read while a \
     mutex is held; move it outside the lock region (to wait under a lock, \
     use Condition.wait)";
    "bad_block.ml:18:2 [blocking-under-lock] call to helper may block \
     (reaches Thread.delay) while a mutex is held; move it outside the \
     lock region";
  ]

let bad_hot_expected =
  [
    "bad_hot.ml:9:15 [alloc-in-hot-loop] tuple allocation inside a loop of \
     [@lint.hot] sum_pairs; hoist it out of the loop or shrink the hot \
     region";
    "bad_hot.ml:10:12 [alloc-in-hot-loop] closure allocation inside a loop \
     of [@lint.hot] sum_pairs; hoist it out of the loop or shrink the hot \
     region";
  ]

let format_msg spec =
  Printf.sprintf
    "float conversion %S must be \"%%.17g\" so rendered floats round-trip \
     byte-identically"
    spec

let bad_format_expected =
  [
    "bad_format.ml:3:29 [float-format-precision] " ^ format_msg "%g";
    "bad_format.ml:4:31 [float-format-precision] " ^ format_msg "%.6f";
  ]

(* The rip_obs rule set: the monotonic stub passes (it is not a wall
   clock), Unix.gettimeofday is still flagged even in an obs-style
   unit. *)
let obs_clock_expected =
  [ "obs_clock.ml:8:15 [no-wall-clock] Unix.gettimeofday" ^ clock_msg ]

let test_obs_clock () =
  Alcotest.(check (list string))
    "Obs_clock under the rip_obs rules" obs_clock_expected
    (run_fixture ~rules:(Lint_config.rules_for_library "rip_obs") "Obs_clock")

let test_rule_filter () =
  Alcotest.(check (list string))
    "wall-clock rule alone sees nothing in bad_poly" []
    (run_fixture ~rules:[ Lint_config.No_wall_clock ] "Bad_poly")

(* --- Format-string scanner ------------------------------------------------- *)

let test_scanner () =
  let check = Alcotest.(check (list string)) in
  check "lone %g" [ "%g" ] (Rules.bad_float_conversions "%g");
  check "exact is fine" [] (Rules.bad_float_conversions "sum %.17g\n");
  check "non-float specs skipped" [ "%e" ]
    (Rules.bad_float_conversions "%d %s %e");
  check "width and precision kept in the spec" [ "%8.3f" ]
    (Rules.bad_float_conversions "%8.3f");
  check "literal %% is not a conversion" []
    (Rules.bad_float_conversions "100%% %.17g");
  check "flags and uppercase" [ "%-12.5E" ]
    (Rules.bad_float_conversions "load %-12.5E end");
  check "hex floats too" [ "%h" ] (Rules.bad_float_conversions "%h");
  check "several offenders, in order" [ "%g"; "%f" ]
    (Rules.bad_float_conversions "%g then %f")

(* --- CLI end to end -------------------------------------------------------- *)

let read_process cmd =
  let ic = Unix.open_process_in cmd in
  let rec lines acc =
    match In_channel.input_line ic with
    | Some l -> lines (l :: acc)
    | None -> List.rev acc
  in
  let out = lines [] in
  (out, Unix.close_process_in ic)

let exe = Filename.concat ".." (Filename.concat ".." "bin/rip_lint.exe")

let test_cli_flags_violation () =
  let out, status =
    read_process
      (Printf.sprintf "%s --lib lint_fixtures %s 2>/dev/null" exe
         (fixture_cmt "Bad_poly"))
  in
  Alcotest.(check bool) "exit code 1" true (status = Unix.WEXITED 1);
  match out with
  | first :: _ ->
      Alcotest.(check string)
        "first finding, with location"
        ("test/lint_fixtures/bad_poly.ml:7:36 [no-poly-compare] polymorphic \
          compare at a float-carrying type" ^ poly_msg)
        first
  | [] -> Alcotest.fail "no output from rip_lint"

let test_cli_clean () =
  let out, status =
    read_process
      (Printf.sprintf "%s --lib lint_fixtures %s %s 2>/dev/null" exe
         (fixture_cmt "Clean") (fixture_cmt "Suppressed"))
  in
  Alcotest.(check bool) "exit code 0" true (status = Unix.WEXITED 0);
  Alcotest.(check (list string)) "no output" [] out

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let test_cli_sarif () =
  let out, status =
    read_process
      (Printf.sprintf "%s --lib lint_fixtures --format sarif %s 2>/dev/null"
         exe (fixture_cmt "Bad_fd"))
  in
  Alcotest.(check bool) "exit code 1" true (status = Unix.WEXITED 1);
  let doc = String.concat "\n" out in
  Alcotest.(check bool) "SARIF version" true
    (contains ~needle:{|"version": "2.1.0"|} doc);
  Alcotest.(check bool) "driver name" true
    (contains ~needle:{|"name": "rip_lint"|} doc);
  Alcotest.(check bool) "rule declared once" true
    (contains ~needle:{|{"id": "fd-leak"}|} doc);
  Alcotest.(check bool) "result carries the rule" true
    (contains ~needle:{|"ruleId": "fd-leak"|} doc);
  Alcotest.(check bool) "1-based column" true
    (contains ~needle:{|"region": {"startLine": 7, "startColumn": 7}|} doc)

(* --update-baseline records today's findings; a rerun against that
   baseline is silent and green; a fixture with *different* findings
   still fails. *)
let test_cli_baseline_roundtrip () =
  let baseline = Filename.temp_file "rip_lint_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove baseline)
    (fun () ->
      let out, status =
        read_process
          (Printf.sprintf
             "%s --lib lint_fixtures --baseline %s --update-baseline %s \
              2>/dev/null"
             exe baseline (fixture_cmt "Bad_fd"))
      in
      Alcotest.(check bool) "update exits 0" true (status = Unix.WEXITED 0);
      Alcotest.(check bool) "update reports count" true
        (match out with
        | [ line ] -> contains ~needle:"wrote 3 finding(s)" line
        | _ -> false);
      let out, status =
        read_process
          (Printf.sprintf "%s --lib lint_fixtures --baseline %s %s 2>/dev/null"
             exe baseline (fixture_cmt "Bad_fd"))
      in
      Alcotest.(check bool) "baselined run exits 0" true
        (status = Unix.WEXITED 0);
      Alcotest.(check (list string)) "baselined run is silent" [] out;
      let _, status =
        read_process
          (Printf.sprintf "%s --lib lint_fixtures --baseline %s %s 2>/dev/null"
             exe baseline (fixture_cmt "Bad_block"))
      in
      Alcotest.(check bool) "new findings still fail" true
        (status = Unix.WEXITED 1))

let test_cli_baseline_missing () =
  let _, status =
    read_process
      (Printf.sprintf
         "%s --lib lint_fixtures --baseline /nonexistent/baseline.txt %s \
          2>/dev/null"
         exe (fixture_cmt "Clean"))
  in
  Alcotest.(check bool) "unreadable baseline exits 2" true
    (status = Unix.WEXITED 2)

let () =
  Alcotest.run "rip_lint"
    [
      ( "lint.findings",
        [
          Alcotest.test_case "bad_poly: exact findings" `Quick
            (check_findings bad_poly_expected "Bad_poly");
          Alcotest.test_case "bad_hashtbl: exact findings" `Quick
            (check_findings bad_hashtbl_expected "Bad_hashtbl");
          Alcotest.test_case "bad_clock: exact findings" `Quick
            (check_findings bad_clock_expected "Bad_clock");
          Alcotest.test_case
            "obs_clock: monotonic stub sanctioned, wall clock flagged"
            `Quick test_obs_clock;
          Alcotest.test_case "bad_format: exact findings" `Quick
            (check_findings bad_format_expected "Bad_format");
          Alcotest.test_case "clean file: no findings" `Quick
            (check_findings [] "Clean");
          Alcotest.test_case "lint.allow suppresses everything" `Quick
            (check_findings [] "Suppressed");
          Alcotest.test_case "rule filter" `Quick test_rule_filter;
        ] );
      ( "lint.lock_region",
        [
          Alcotest.test_case
            "unguarded accesses flagged; lock/protect/atomic sanctioned"
            `Quick
            (check_findings
               ~rules:[ Lint_config.Guarded_mutation ]
               bad_mutation_expected "Bad_mutation");
        ] );
      ( "lint.interproc",
        [
          Alcotest.test_case
            "bad_escape: helper mutation reached from spawn; lock \
             inheritance and spawn-local state sanctioned"
            `Quick
            (check_findings bad_escape_expected "Bad_escape");
          Alcotest.test_case "domain-escape supersedes guarded-mutation"
            `Quick test_escape_supersedes_mutation;
          Alcotest.test_case "bad_fd: leak, double close, spawn capture"
            `Quick
            (check_findings bad_fd_expected "Bad_fd");
          Alcotest.test_case
            "good_fd: Fun.protect, handoff and handler-close accepted" `Quick
            (check_findings [] "Good_fd");
          Alcotest.test_case
            "bad_block: direct and transitive blocking; Condition.wait \
             sanctioned"
            `Quick
            (check_findings bad_block_expected "Bad_block");
          Alcotest.test_case
            "bad_hot: loop allocations in [@lint.hot]; raise path and \
             unannotated functions exempt"
            `Quick
            (check_findings bad_hot_expected "Bad_hot");
        ] );
      ( "lint.format_scanner",
        [ Alcotest.test_case "conversion scanner" `Quick test_scanner ] );
      ( "lint.cli",
        [
          Alcotest.test_case "violation: exit 1 and located finding" `Quick
            test_cli_flags_violation;
          Alcotest.test_case "clean and suppressed: exit 0, silent" `Quick
            test_cli_clean;
          Alcotest.test_case "--format sarif emits SARIF 2.1.0" `Quick
            test_cli_sarif;
          Alcotest.test_case
            "--update-baseline / --baseline round-trip" `Quick
            test_cli_baseline_roundtrip;
          Alcotest.test_case "unreadable --baseline is a hard error" `Quick
            test_cli_baseline_missing;
        ] );
    ]
