(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section plus the DESIGN.md ablations and kernel
   microbenchmarks.

     dune exec bench/main.exe                  -- everything
     dune exec bench/main.exe table1 fig7      -- selected experiments
     dune exec bench/main.exe -- --quick all   -- reduced suite (CI-sized)
     dune exec bench/main.exe -- --jobs 8 suite -- engine scaling run

   Experiments: table1, table2, fig7, tree, ablation, micro, service,
   cluster, suite.
   The suite experiment runs the quick sweep through the rip_engine
   domain pool at jobs=1 and jobs=N, checks the outcome arrays are
   identical, and writes machine-readable rows to BENCH_suite.json in
   the working directory (a generated artifact, not tracked in git). *)

module Experiments = Rip_workload.Experiments
module Suite = Rip_workload.Suite
module Baseline = Rip_workload.Baseline
module Table = Rip_workload.Table
module Rip = Rip_core.Rip
module Config = Rip_core.Config
module Stats = Rip_numerics.Stats
module Geometry = Rip_net.Geometry
module Solution = Rip_elmore.Solution
module Engine = Rip_engine.Engine
module Telemetry = Rip_engine.Telemetry
module Trace = Rip_obs.Trace
module Trace_merge = Rip_obs.Trace_merge
module Wide_event = Rip_obs.Wide_event
module Obs = Rip_obs.Metrics

let process = Rip_tech.Process.default_180nm

type scale = {
  nets : int;
  targets : int;
}

let full_scale = { nets = Suite.default_count; targets = 20 }
let quick_scale = { nets = 6; targets = 7 }

let section title =
  Printf.printf "\n================ %s ================\n%!" title

(* --- Table 1 and Figure 7 (shared sweep) ------------------------------ *)

let run_table1_fig7 ?jobs scale =
  section "Table 1 / Figure 7 sweep";
  let nets = Suite.nets ~count:scale.nets () in
  let started = Unix.gettimeofday () in
  let runs, telemetry =
    Experiments.run_suite_stats ?jobs ~granularities:[ 10.0; 20.0; 40.0 ]
      ~fixed_range:false ~nets ~targets_per_net:scale.targets process
  in
  Printf.printf "(sweep of %d nets x %d targets took %.1fs wall; %s)\n\n"
    scale.nets scale.targets
    (Unix.gettimeofday () -. started)
    (Fmt.str "%a" Telemetry.pp telemetry);
  print_string "Table 1: power reduction for two-pin nets\n";
  print_string (Experiments.render_table1 (Experiments.table1 runs));
  print_newline ();
  List.iter
    (fun granularity ->
      print_string
        (Experiments.render_fig7 ~granularity
           (Experiments.fig7 ~granularity runs));
      print_newline ())
    [ 10.0; 40.0 ];
  (* RIP feasibility claim of the paper: no violations, ever. *)
  let rip_failures =
    List.concat_map
      (fun (run : Experiments.net_run) ->
        List.filter_map
          (fun (cell : Experiments.cell) ->
            match cell.Experiments.rip with
            | Error e ->
                Some
                  ( run.Experiments.net.Rip_net.Net.name,
                    Rip.error_to_string e )
            | Ok _ -> None)
          run.Experiments.cells)
      runs
  in
  Printf.printf "RIP timing violations across the sweep: %d\n"
    (List.length rip_failures);
  List.iter (fun (net, e) -> Printf.printf "  %s: %s\n" net e) rip_failures

(* --- Table 2 ----------------------------------------------------------- *)

let run_table2 ?jobs scale =
  section "Table 2: power savings and speedup tradeoff";
  let nets = Suite.nets ~count:scale.nets () in
  let started = Unix.gettimeofday () in
  let rows =
    Experiments.table2 ?jobs ~granularities:[ 40.0; 30.0; 20.0; 10.0 ] ~nets
      ~targets_per_net:scale.targets process
  in
  Printf.printf "(took %.1fs)\n\n" (Unix.gettimeofday () -. started);
  print_string (Experiments.render_table2 rows)

(* --- Ablations (DESIGN.md section 5) ----------------------------------- *)

(* Mean saving of a RIP variant over the g=40u fixed-size baseline on a
   reduced sweep, plus its mean runtime. *)
let ablation_measure config nets targets =
  let savings = ref [] and times = ref [] in
  List.iter
    (fun net ->
      let geometry = Geometry.of_net net in
      let tau_min = Rip.tau_min process geometry in
      let baseline = Baseline.fixed_size ~granularity:40.0 in
      List.iter
        (fun budget ->
          let base = Baseline.solve baseline process geometry ~budget in
          match
            ( base.Baseline.result,
              Rip.solve ~config
                { Rip.process; net; geometry = Some geometry; budget } )
          with
          | Some b, Ok r ->
              times := r.Rip.runtime_seconds :: !times;
              (match Experiments.saving_percent ~baseline:b ~rip:r with
              | Some s -> savings := s :: !savings
              | None -> ())
          | _, Ok r -> times := r.Rip.runtime_seconds :: !times
          | _, Error _ -> ())
        (Suite.timing_targets ~count:targets ~tau_min ()))
    nets;
  (Stats.mean !savings, Stats.mean !times)

let run_ablation scale =
  section "Ablations (vs DP[14] size-10 g=40u)";
  let nets = Suite.nets ~count:(Stdlib.min scale.nets 8) () in
  let targets = Stdlib.min scale.targets 7 in
  let base_config = Config.default in
  let variants =
    [
      ("rip default", base_config);
      ( "no REFINE movement (widths only)",
        { base_config with
          refine = { base_config.Config.refine with
                     Rip_refine.Refine.max_iterations = 0 } } );
      ( "newton width solver",
        { base_config with
          refine = { base_config.Config.refine with
                     Rip_refine.Refine.backend = Rip_refine.Width_solver.Newton } } );
      ( "refined radius 2",
        { base_config with Config.refined_radius = 2 } );
      ( "refined radius 20",
        { base_config with Config.refined_radius = 20 } );
      ( "coarse pitch 400um",
        { base_config with Config.coarse_pitch = 400.0 } );
      ( "coarse pitch 100um",
        { base_config with Config.coarse_pitch = 100.0 } );
      ( "coarse library 2x160u",
        { base_config with
          Config.coarse_library =
            Rip_dp.Repeater_library.uniform ~min_width:160.0 ~step:160.0
              ~count:2 } );
      ("three refine passes", { base_config with Config.refine_passes = 3 });
      ( "REFINE hops small zones",
        { base_config with
          refine = { base_config.Config.refine with
                     Rip_refine.Refine.hop_zones = true } } );
    ]
  in
  let rows =
    List.map
      (fun (name, config) ->
        let saving, time = ablation_measure config nets targets in
        [ name; Table.percent saving; Table.seconds time ])
      variants
  in
  print_string
    (Table.render ~header:[ "variant"; "DMean vs g40 (%)"; "T_RIP(s)" ] ~rows)

(* --- Tree extension ------------------------------------------------------ *)

let run_tree scale =
  section "Tree extension: hybrid vs pure DPs on random trees";
  let count = Stdlib.min 10 (Stdlib.max 4 (scale.nets / 2)) in
  let trees = Rip_workload.Tree_gen.suite ~count () in
  let started = Unix.gettimeofday () in
  let rows =
    Rip_workload.Tree_experiments.run ~trees ~targets_per_tree:6 process
  in
  Printf.printf "(took %.1fs)\n\n" (Unix.gettimeofday () -. started);
  print_string (Rip_workload.Tree_experiments.render rows)

(* --- Microbenchmarks (Bechamel) ---------------------------------------- *)

let run_micro () =
  section "Kernel microbenchmarks (Bechamel)";
  let open Bechamel in
  let net = List.nth (Suite.nets ~count:5 ()) 3 in
  let geometry = Geometry.of_net net in
  let repeater = process.Rip_tech.Process.repeater in
  let tau_min = Rip.tau_min process geometry in
  let budget = 1.4 *. tau_min in
  let candidates = Rip_dp.Candidates.uniform net ~pitch:200.0 in
  let library =
    Rip_dp.Repeater_library.uniform ~min_width:10.0 ~step:40.0 ~count:10
  in
  let coarse =
    match
      Rip_dp.Power_dp.run
        (Rip_dp.Power_dp.request geometry repeater
           ~library:Config.default.Config.coarse_library ~candidates ~budget)
    with
    | Some r -> r.Rip_dp.Power_dp.solution
    | None -> Solution.empty
  in
  let positions = Array.of_list (Solution.positions coarse) in
  let dp_micro backend name =
    let open Bechamel in
    Test.make ~name
      (Staged.stage (fun () ->
           Rip_dp.Power_dp.run
             (Rip_dp.Power_dp.request ~backend geometry repeater ~library
                ~candidates ~budget)))
  in
  let tests =
    [
      Test.make ~name:"stage_delay(eq1)"
        (Staged.stage (fun () ->
             Rip_elmore.Stage.delay repeater geometry ~driver_pos:500.0
               ~driver_width:40.0 ~load_pos:4000.0 ~load_width:80.0));
      Test.make ~name:"total_delay(eq2)"
        (Staged.stage (fun () ->
             Rip_elmore.Delay.total repeater geometry coarse));
      dp_micro Rip_dp.Power_dp.Reference "power_dp_ref(g=40u)";
      dp_micro Rip_dp.Power_dp.Fast "power_dp_fast(g=40u)";
      Test.make ~name:"width_solver(eq5+eq8)"
        (Staged.stage (fun () ->
             Rip_refine.Width_solver.solve geometry repeater ~positions
               ~budget));
      Test.make ~name:"refine(fig5)"
        (Staged.stage (fun () ->
             Rip_refine.Refine.run geometry repeater ~budget ~initial:coarse));
      Test.make ~name:"rip(fig6)"
        (Staged.stage (fun () ->
             Rip.solve { Rip.process; net; geometry = Some geometry; budget }));
    ]
  in
  let test = Test.make_grouped ~name:"rip" ~fmt:"%s/%s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let nanos =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | Some [] | None -> Float.nan
        in
        (name, nanos) :: acc)
      results []
    |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
    |> List.map (fun (name, nanos) ->
           [ name; Printf.sprintf "%.3f us" (nanos /. 1e3) ])
  in
  print_string (Table.render ~header:[ "kernel"; "time/run" ] ~rows)

(* --- Service: daemon + loadgen round trip ------------------------------- *)

(* The acceptance loop of the service subsystem: an in-process daemon on
   a Unix socket, a cold pass that fills the solve cache, then a warm
   pass replaying the same workload.  The warm pass must be cache-served
   and strictly faster. *)
let run_service scale =
  section "Service: cold vs warm solve cache (Unix socket)";
  let module Server = Rip_service.Server in
  let module Client = Rip_service.Client in
  let module Loadgen = Rip_service.Loadgen in
  let module Protocol = Rip_service.Protocol in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rip-bench-%d.sock" (Unix.getpid ()))
  in
  let server = Server.create process in
  let listener = Server.listen_unix path in
  let acceptor = Thread.create (fun () -> Server.run server listener) () in
  let requests = scale.nets * scale.targets in
  let workload =
    Loadgen.workload ~distinct_nets:(Stdlib.min scale.nets 8) ~requests
      process
  in
  let connect () = Client.connect_unix path in
  let pass label =
    let r = Loadgen.run ~connect ~connections:4 workload in
    Printf.printf "%s pass (%d requests):\n%s%!" label requests
      (Loadgen.render r);
    r
  in
  let cold = pass "cold" in
  let warm = pass "warm" in
  if cold.Loadgen.throughput > 0.0 then
    Printf.printf "warm/cold throughput: %.1fx\n"
      (warm.Loadgen.throughput /. cold.Loadgen.throughput);
  print_string
    (Protocol.print_response (Protocol.Stats_frame (Server.stats server)));
  let closer = Client.connect_unix path in
  (match Client.request closer Protocol.Shutdown with
  | Ok Protocol.Bye -> ()
  | Ok _ | Error _ -> Server.request_shutdown server);
  Client.close closer;
  Thread.join acceptor;
  try Sys.remove path with Sys_error _ -> ()

(* --- Cluster: sharded solve throughput ladder (BENCH_cluster.json) ------ *)

module Loadgen = Rip_service.Loadgen

type cluster_rung = {
  cl_shards : int;
  cl_cold : Loadgen.result;
  cl_warm : Loadgen.result;
  cl_hit_rates : (string * float) list;
  cl_router : Loadgen.result option;
}

(* The cluster acceptance ladder: spawn real rip_serviced shard
   processes, drive one workload through a client-side consistent-hash
   ring (the same placement rip_routerd computes) at 1 and 4 shards,
   then replay the warm pass through an in-process router to price the
   front-end hop.  Every rung gives each shard the same --jobs budget,
   so the ladder measures process-level scaling; on a box with fewer
   cores than shards the cold factor is core-bound, which is why the
   2.5x expectation is reported, not enforced. *)
let run_cluster scale =
  section "Cluster: sharded solve throughput (rip_serviced x N)";
  let module Client = Rip_service.Client in
  let module Protocol = Rip_service.Protocol in
  let module Supervisor = Rip_router.Supervisor in
  let module Ring = Rip_router.Ring in
  let module Router = Rip_router.Router in
  let module Net = Rip_net.Net in
  let exe =
    match Sys.getenv_opt "RIP_SERVICED" with
    | Some exe -> exe
    | None ->
        Filename.concat
          (Filename.dirname (Filename.dirname Sys.executable_name))
          "bin/rip_serviced.exe"
  in
  if not (Sys.file_exists exe) then
    Printf.printf
      "skipped: rip_serviced not found at %s (set RIP_SERVICED or build \
       bin/rip_serviced.exe)\n"
      exe
  else begin
    let cores = Engine.default_jobs () in
    let ladder = [ 1; 4 ] in
    let max_shards = List.fold_left Stdlib.max 1 ladder in
    let shard_jobs = Stdlib.max 1 (cores / max_shards) in
    let requests = scale.nets * scale.targets in
    let workload =
      Loadgen.workload ~distinct_nets:(Stdlib.min scale.nets 20) ~requests
        process
    in
    let dir = Filename.get_temp_dir_name () in
    let tag = Unix.getpid () in
    let solve_key frame =
      match frame with
      | Protocol.Solve { net; _ } -> Net.canonical_digest net
      | _ -> ""
    in
    (* Warm pass replayed through an in-process Router over the same
       (already hot) shards: the delta against the direct warm pass is
       the cost of the extra hop plus the pricing/ring decision.
       Returns the loadgen result plus the router's own METRICS
       exposition (hedge counters, forward latency). *)
    let router_pass ?(rconfig = Router.default_config) ?(wl = workload)
        children =
      let specs =
        List.map
          (fun c ->
            {
              Router.id = Supervisor.id c;
              socket = Supervisor.socket c;
              weight = 1;
            })
          children
      in
      let router = Router.create ~config:rconfig ~shards:specs process in
      let rpath =
        Filename.concat dir (Printf.sprintf "rip-bench-%d-router.sock" tag)
      in
      let listener = Router.listen_unix rpath in
      let acceptor = Thread.create (fun () -> Router.run router listener) () in
      let connect () = Client.connect_unix rpath in
      let r = Loadgen.run ~connect ~connections:4 wl in
      let mrender = Rip_router.Router_metrics.render (Router.metrics router) in
      let closer = Client.connect_unix rpath in
      (match Client.request closer Protocol.Shutdown with
      | Ok Protocol.Bye -> ()
      | Ok _ | Error _ -> Router.request_shutdown router);
      Client.close closer;
      Thread.join acceptor;
      (try Sys.remove rpath with Sys_error _ -> ());
      (r, mrender)
    in
    let run_rung n =
      let children =
        List.init n (fun i ->
            Supervisor.spawn ~exe
              ~extra_args:[ "--jobs"; string_of_int shard_jobs ]
              ~id:(Printf.sprintf "s%d" i)
              ~socket:
                (Filename.concat dir
                   (Printf.sprintf "rip-bench-%d-%d-%d.sock" tag n i))
              ())
      in
      Fun.protect
        ~finally:(fun () -> List.iter Supervisor.terminate children)
        (fun () ->
          List.iter
            (fun c ->
              match Supervisor.wait_ready c with
              | Ok () -> ()
              | Error e -> failwith e)
            children;
          let ids = Array.of_list (List.map Supervisor.id children) in
          let ring =
            Ring.create (Array.to_list (Array.map (fun id -> (id, 1)) ids))
          in
          let index_of id =
            let rec find i =
              if String.equal ids.(i) id then i else find (i + 1)
            in
            find 0
          in
          let connects =
            Array.of_list
              (List.map
                 (fun c ->
                   let s = Supervisor.socket c in
                   fun () -> Client.connect_unix s)
                 children)
          in
          let route ~index:_ frame =
            match Ring.lookup ring (solve_key frame) with
            | Some id -> index_of id
            | None -> 0
          in
          let pass label =
            let r = (Loadgen.run_multi ~connects ~route workload) in
            Printf.printf "%d shard(s), %s pass (%d requests):\n%s%!" n label
              requests
              (Loadgen.render r.Loadgen.merged);
            r
          in
          let cold = pass "cold" in
          let warm = pass "warm" in
          (* Shards whose partition was empty served no traffic and
             have no hit rate to report. *)
          let hit_rates =
            List.filteri
              (fun e _ -> warm.Loadgen.by_endpoint.(e).Loadgen.sent > 0)
              (Array.to_list
                 (Array.mapi
                    (fun e (r : Loadgen.result) ->
                      ( ids.(e),
                        float_of_int r.Loadgen.solved_cached
                        /. float_of_int (Stdlib.max 1 r.Loadgen.sent) ))
                    warm.Loadgen.by_endpoint))
          in
          Printf.printf "warm cache hit rate: %s\n%!"
            (String.concat ", "
               (List.map
                  (fun (id, rate) ->
                    Printf.sprintf "%s %.1f%%" id (100.0 *. rate))
                  hit_rates));
          let router =
            if n = max_shards then begin
              let r, _metrics = router_pass children in
              Printf.printf
                "via in-process router (%d shards, warm): %.1f req/s (direct \
                 warm %.1f req/s)\n"
                n r.Loadgen.throughput warm.Loadgen.merged.Loadgen.throughput;
              Some r
            end
            else None
          in
          {
            cl_shards = n;
            cl_cold = cold.Loadgen.merged;
            cl_warm = warm.Loadgen.merged;
            cl_hit_rates = hit_rates;
            cl_router = router;
          })
    in
    let rungs =
      List.filter_map
        (fun n ->
          try Some (run_rung n)
          with Failure e ->
            Printf.printf "cluster rung %d skipped: %s\n" n e;
            None)
        ladder
    in
    let find_rung n =
      List.find_opt (fun r -> r.cl_shards = n) rungs
    in
    let scaling =
      match (find_rung 1, find_rung max_shards) with
      | Some one, Some top
        when max_shards > 1 && one.cl_cold.Loadgen.throughput > 0.0 ->
          Some
            (top.cl_cold.Loadgen.throughput /. one.cl_cold.Loadgen.throughput)
      | _ -> None
    in
    (match scaling with
    | Some f ->
        Printf.printf "cold aggregate scaling %d vs 1 shards: %.2fx (%d \
                       cores, %d jobs/shard)\n"
          max_shards f cores shard_jobs;
        if f < 2.5 then
          Printf.printf
            "note: below the 2.5x acceptance expectation — informative on a \
             %d-core machine; the CI runners demonstrate the multi-core \
             factor\n"
            cores
    | None -> ());
    (* The tracing rung: same top-rung cluster, shards run with
       --trace-out and --wide-events, three router passes over warm
       caches — untraced baseline, traced (the <5% overhead gate), and
       traced with the hedge delay floored at zero so hedged requests
       demonstrably propagate their context to both shards.  Artifacts
       land next to BENCH_cluster.json: the merged Chrome trace, the
       merged METRICS histograms, and a spool reconciliation against
       the loadgen counts. *)
    let fetch_exposition socket =
      let client = Client.connect_unix socket in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          match Client.request client Protocol.Metrics with
          | Ok (Protocol.Metrics_frame body) -> Some body
          | Ok _ | Error _ -> None)
    in
    let run_traced () =
      let obs_dir = Filename.concat dir (Printf.sprintf "rip-bench-%d-obs" tag) in
      (try Unix.mkdir obs_dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let children =
        List.init max_shards (fun i ->
            Supervisor.spawn ~exe
              ~extra_args:
                [
                  "--jobs"; string_of_int shard_jobs;
                  "--trace-out"; obs_dir ^ "/";
                  "--wide-events"; obs_dir ^ "/";
                  "--wide-sample-ratio"; "1.0";
                ]
              ~id:(Printf.sprintf "s%d" i)
              ~socket:
                (Filename.concat dir
                   (Printf.sprintf "rip-bench-%d-t%d.sock" tag i))
              ())
      in
      Fun.protect
        ~finally:(fun () -> List.iter Supervisor.terminate children)
        (fun () ->
          List.iter
            (fun c ->
              match Supervisor.wait_ready c with
              | Ok () -> ()
              | Error e -> failwith e)
            children;
          let tracer = Trace.create ~scope:"router" ~pid:(Unix.getpid ()) () in
          let spool_path = Filename.concat obs_dir "wide-router.jsonl" in
          let spool =
            Wide_event.create ~sampler:Wide_event.keep_all spool_path
          in
          let traced_wl =
            Loadgen.workload ~distinct_nets:(Stdlib.min scale.nets 20)
              ~requests ~traced:true process
          in
          ignore (router_pass children) (* warm the shard caches *);
          let baseline, _ = router_pass children in
          let traced_cfg =
            {
              Router.default_config with
              tracer = Some tracer;
              spool = Some spool;
            }
          in
          let traced, traced_metrics =
            router_pass ~rconfig:traced_cfg ~wl:traced_wl children
          in
          let hedge_cfg =
            {
              traced_cfg with
              hedge_delay_floor = 0.0;
              hedge_delay_factor = 1e-4;
            }
          in
          let hedged, hedge_metrics =
            router_pass ~rconfig:hedge_cfg ~wl:traced_wl children
          in
          (* Merge every process's METRICS histograms before shutdown. *)
          let expositions =
            [ traced_metrics; hedge_metrics ]
            @ List.filter_map
                (fun c -> fetch_exposition (Supervisor.socket c))
                children
          in
          let merged_hists =
            List.fold_left
              (fun acc body ->
                List.fold_left
                  (fun acc (name, snap) ->
                    match List.assoc_opt name acc with
                    | None -> (name, snap) :: acc
                    | Some prior ->
                        (name, Obs.Histogram.merge prior snap)
                        :: List.remove_assoc name acc)
                  acc
                  (Obs.parse_histograms body))
              [] expositions
            |> List.sort (fun (a, _) (b, _) -> String.compare a b)
          in
          let hist_json =
            Printf.sprintf "{\n%s\n}\n"
              (String.concat ",\n"
                 (List.map
                    (fun (name, (s : Obs.Histogram.snapshot)) ->
                      let q p = Obs.Histogram.quantile s p in
                      Printf.sprintf
                        "  %S: { \"count\": %d, \"sum\": %.6f, \"p50\": %.6g, \
                         \"p95\": %.6g, \"p99\": %.6g }"
                        name s.Obs.Histogram.count s.Obs.Histogram.sum
                        (q 0.50) (q 0.95) (q 0.99))
                    merged_hists))
          in
          let out = open_out "BENCH_cluster_metrics.json" in
          output_string out hist_json;
          close_out out;
          (* Graceful shutdown flushes every shard's trace and spool. *)
          List.iter Supervisor.terminate children;
          let router_trace = Filename.concat obs_dir "trace-router.json" in
          Trace.dump_to_file tracer router_trace;
          Wide_event.close spool;
          let trace_files =
            router_trace
            :: List.init max_shards (fun i ->
                   Filename.concat obs_dir (Printf.sprintf "trace-s%d.json" i))
          in
          let trace_files = List.filter Sys.file_exists trace_files in
          (match Trace_merge.merge_files trace_files with
          | Error e -> failwith ("trace merge: " ^ e)
          | Ok merged ->
              let out = open_out "BENCH_cluster_trace.json" in
              output_string out merged;
              close_out out);
          (* Cross-process linkage: a shard span parenting under a router
             forward span, and a hedged trace forwarding to two shards. *)
          let dumps =
            List.filter_map
              (fun f -> Result.to_option (Trace_merge.load_file f))
              trace_files
          in
          let linked, multi =
            List.fold_left
              (fun (linked, multi) (_, spans) ->
                let is_forward (s : Trace_merge.trace_span) =
                  String.length s.span_name > 8
                  && String.sub s.span_name 0 8 = "forward:"
                in
                let forwards = List.filter is_forward spans in
                let targets =
                  List.sort_uniq String.compare
                    (List.map
                       (fun (s : Trace_merge.trace_span) -> s.span_name)
                       forwards)
                in
                let this_linked =
                  List.exists
                    (fun (s : Trace_merge.trace_span) ->
                      (not (is_forward s))
                      && List.exists
                           (fun (f : Trace_merge.trace_span) ->
                             (not (String.equal f.span_process s.span_process))
                             &&
                             match
                               ( List.assoc_opt "span_id" f.span_args,
                                 List.assoc_opt "parent_span_id" s.span_args )
                             with
                             | Some fid, Some pid -> String.equal fid pid
                             | _ -> false)
                           forwards)
                    spans
                in
                ( (linked + if this_linked then 1 else 0),
                  multi + if this_linked && List.length targets >= 2 then 1
                          else 0 ))
              (0, 0) (Trace_merge.traces dumps)
          in
          (* Spool reconciliation: interesting events are kept at 100%,
             so the router spool's counts must equal the loadgen's. *)
          let events = Wide_event.load_file spool_path in
          let count pred = List.length (List.filter pred events) in
          let spool_degraded =
            count (fun (e : Wide_event.t) -> e.outcome = "degraded")
          in
          let spool_timeouts =
            count (fun (e : Wide_event.t) -> e.outcome = "timeout")
          in
          let spool_hedged = count (fun (e : Wide_event.t) -> e.hedged) in
          let spool_total = List.length events in
          let scalar body name =
            Option.value ~default:0.0 (Obs.scalar body name)
          in
          let hedges_total =
            int_of_float
              (scalar traced_metrics "rip_router_hedges_total"
              +. scalar hedge_metrics "rip_router_hedges_total")
          in
          let lg_degraded = traced.Loadgen.degraded + hedged.Loadgen.degraded in
          let lg_timeouts = traced.Loadgen.timeouts + hedged.Loadgen.timeouts in
          let lg_total = traced.Loadgen.sent + hedged.Loadgen.sent in
          let reconciled =
            spool_degraded = lg_degraded
            && spool_timeouts = lg_timeouts
            && spool_hedged = hedges_total
            && spool_total = lg_total
          in
          let overhead =
            if baseline.Loadgen.throughput > 0.0 then
              1.0 -. (traced.Loadgen.throughput /. baseline.Loadgen.throughput)
            else 0.0
          in
          Printf.printf
            "tracing rung (%d shards, warm): untraced %.1f req/s, traced \
             %.1f req/s (overhead %.1f%%), hedge-forced %.1f req/s\n"
            max_shards baseline.Loadgen.throughput traced.Loadgen.throughput
            (100.0 *. overhead) hedged.Loadgen.throughput;
          Printf.printf
            "traces: %d linked across processes, %d hedged/failover; spool \
             reconciliation %s (degraded %d/%d, timeouts %d/%d, hedged \
             %d/%d, total %d/%d)\n"
            linked multi
            (if reconciled then "exact" else "MISMATCH")
            spool_degraded lg_degraded spool_timeouts lg_timeouts spool_hedged
            hedges_total spool_total lg_total;
          Printf.printf
            "wrote BENCH_cluster_trace.json (%d dumps) and \
             BENCH_cluster_metrics.json (%d histogram families)\n"
            (List.length trace_files) (List.length merged_hists);
          if overhead > 0.05 then
            Printf.printf
              "note: tracing overhead above the 5%% acceptance expectation\n";
          Printf.sprintf
            ",\n\
            \  \"tracing\": { \"baseline_throughput\": %.2f, \
             \"traced_throughput\": %.2f, \"overhead\": %.4f, \
             \"linked_traces\": %d, \"hedged_traces\": %d, \
             \"spool_events\": %d, \"spool_reconciled\": %b }"
            baseline.Loadgen.throughput traced.Loadgen.throughput overhead
            linked multi spool_total reconciled)
    in
    let tracing_json =
      if rungs = [] then ""
      else
        try run_traced ()
        with Failure e ->
          Printf.printf "tracing rung skipped: %s\n" e;
          ""
    in
    let json =
      let row ?hits ~shards ~pass (r : Loadgen.result) =
        Printf.sprintf
          "    { \"shards\": %d, \"pass\": %S, \"requests\": %d, \"fresh\": \
           %d, \"cached\": %d, \"degraded\": %d, \"wall_seconds\": %.4f, \
           \"throughput\": %.2f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \
           \"p99_ms\": %.3f%s }"
          shards pass r.Loadgen.sent r.Loadgen.solved_fresh
          r.Loadgen.solved_cached r.Loadgen.degraded r.Loadgen.wall_seconds
          r.Loadgen.throughput (r.Loadgen.p50 *. 1e3) (r.Loadgen.p95 *. 1e3)
          (r.Loadgen.p99 *. 1e3)
          (match hits with
          | None -> ""
          | Some hit_rates ->
              Printf.sprintf ", \"warm_hit_rates\": [ %s ]"
                (String.concat ", "
                   (List.map
                      (fun (id, rate) ->
                        Printf.sprintf "{ \"shard\": %S, \"hit_rate\": %.4f }"
                          id rate)
                      hit_rates)))
      in
      let rows =
        List.concat_map
          (fun rung ->
            [
              row ~shards:rung.cl_shards ~pass:"cold" rung.cl_cold;
              row ~hits:rung.cl_hit_rates ~shards:rung.cl_shards ~pass:"warm"
                rung.cl_warm;
            ]
            @
            match rung.cl_router with
            | Some r -> [ row ~shards:rung.cl_shards ~pass:"router-warm" r ]
            | None -> [])
          rungs
      in
      Printf.sprintf
        "{\n  \"cores\": %d,\n  \"shard_jobs\": %d,\n  \"requests\": %d,\n\
        \  \"cold_scaling\": %s,\n  \"runs\": [\n%s\n  ]%s\n}\n"
        cores shard_jobs requests
        (match scaling with
        | Some f -> Printf.sprintf "%.3f" f
        | None -> "null")
        (String.concat ",\n" rows)
        tracing_json
    in
    let out = open_out "BENCH_cluster.json" in
    output_string out json;
    close_out out;
    Printf.printf "wrote BENCH_cluster.json (%d rungs)\n" (List.length rungs)
  end

(* --- Restart: journal warm-start vs cold (BENCH_restart.json) ----------- *)

(* The crash-recovery experiment behind DESIGN §6e: solve a 20-net
   suite cold, replay it against the live warm cache, SIGKILL the shard
   (no grace, no footer — a real crash), restart it on the same
   --journal-dir, and replay once more against the journal-replayed
   cache.  The interesting ratios: replayed-warm should be within ~2x
   of live-warm (replay rebuilds the same cache; the residue is boot
   cost) and at least ~5x over cold (a cache hit skips the DP
   entirely).  Both are reported, not enforced — a loaded CI box blurs
   wall-clock ratios. *)
let run_restart () =
  section "Restart: cold vs live-warm vs journal-replayed-warm";
  let module Client = Rip_service.Client in
  let module Protocol = Rip_service.Protocol in
  let module Supervisor = Rip_router.Supervisor in
  let exe =
    match Sys.getenv_opt "RIP_SERVICED" with
    | Some exe -> exe
    | None ->
        Filename.concat
          (Filename.dirname (Filename.dirname Sys.executable_name))
          "bin/rip_serviced.exe"
  in
  if not (Sys.file_exists exe) then
    Printf.printf
      "skipped: rip_serviced not found at %s (set RIP_SERVICED or build \
       bin/rip_serviced.exe)\n"
      exe
  else begin
    let dir = Filename.get_temp_dir_name () in
    let tag = Unix.getpid () in
    let journal_dir =
      Filename.concat dir (Printf.sprintf "rip-bench-%d-journal" tag)
    in
    let socket =
      Filename.concat dir (Printf.sprintf "rip-bench-%d-restart.sock" tag)
    in
    let distinct_nets = 20 in
    let workload =
      Loadgen.workload ~distinct_nets ~requests:distinct_nets process
    in
    let child =
      Supervisor.spawn ~restart_backoff:0.0 ~exe
        ~extra_args:[ "--jobs"; "2"; "--journal-dir"; journal_dir ]
        ~id:"restart0" ~socket ()
    in
    let cleanup () =
      Supervisor.terminate child;
      let shard_dir = Filename.concat journal_dir "restart0" in
      (match Sys.readdir shard_dir with
      | names ->
          Array.iter
            (fun name ->
              try Sys.remove (Filename.concat shard_dir name)
              with Sys_error _ -> ())
            names;
          (try Unix.rmdir shard_dir with Unix.Unix_error _ -> ());
          (try Unix.rmdir journal_dir with Unix.Unix_error _ -> ())
      | exception Sys_error _ -> ())
    in
    Fun.protect ~finally:cleanup (fun () ->
        match Supervisor.wait_ready child with
        | Error e -> Printf.printf "skipped: %s\n" e
        | Ok () ->
            let connect () = Client.connect_unix socket in
            let pass label =
              let r = Loadgen.run ~connect ~connections:4 workload in
              Printf.printf "%-14s: %d requests (fresh %d, cached %d), %.1f \
                             req/s\n%!"
                label r.Loadgen.sent r.Loadgen.solved_fresh
                r.Loadgen.solved_cached r.Loadgen.throughput;
              r
            in
            let cold = pass "cold" in
            let live_warm = pass "live-warm" in
            (* A crash, not a shutdown: SIGKILL leaves no clean footer,
               so the restart exercises the full recovery scan. *)
            Supervisor.kill child;
            if not (Supervisor.restart_if_due child) then
              Printf.printf "skipped: shard did not respawn\n"
            else
              match Supervisor.wait_ready child with
              | Error e -> Printf.printf "skipped after restart: %s\n" e
              | Ok () ->
                  let replayed_warm = pass "replayed-warm" in
                  let cache_replayed =
                    match
                      let conn = Client.connect_unix socket in
                      Fun.protect
                        ~finally:(fun () -> Client.close conn)
                        (fun () -> Client.request conn Protocol.Stats)
                    with
                    | Ok (Protocol.Stats_frame s) -> s.Protocol.cache_replayed
                    | Ok _ | Error _ | (exception Unix.Unix_error _) -> -1
                  in
                  let ratio a b = if b > 0.0 then a /. b else 0.0 in
                  let vs_cold =
                    ratio replayed_warm.Loadgen.throughput
                      cold.Loadgen.throughput
                  in
                  let vs_live =
                    ratio live_warm.Loadgen.throughput
                      replayed_warm.Loadgen.throughput
                  in
                  Printf.printf
                    "journal replayed %d records; replayed-warm %.1fx over \
                     cold (expect >= ~5x), live-warm %.2fx over replayed-warm \
                     (expect <= ~2x)\n"
                    cache_replayed vs_cold vs_live;
                  let row label (r : Loadgen.result) =
                    Printf.sprintf
                      "    { \"pass\": %S, \"requests\": %d, \"fresh\": %d, \
                       \"cached\": %d, \"wall_seconds\": %.4f, \
                       \"throughput\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": \
                       %.3f }"
                      label r.Loadgen.sent r.Loadgen.solved_fresh
                      r.Loadgen.solved_cached r.Loadgen.wall_seconds
                      r.Loadgen.throughput (r.Loadgen.p50 *. 1e3)
                      (r.Loadgen.p99 *. 1e3)
                  in
                  let json =
                    Printf.sprintf
                      "{\n\
                      \  \"distinct_nets\": %d,\n\
                      \  \"cache_replayed\": %d,\n\
                      \  \"replayed_warm_over_cold\": %.3f,\n\
                      \  \"live_warm_over_replayed_warm\": %.3f,\n\
                      \  \"runs\": [\n%s\n  ]\n}\n"
                      distinct_nets cache_replayed vs_cold vs_live
                      (String.concat ",\n"
                         [
                           row "cold" cold;
                           row "live-warm" live_warm;
                           row "replayed-warm" replayed_warm;
                         ])
                  in
                  let out = open_out "BENCH_restart.json" in
                  output_string out json;
                  close_out out;
                  print_endline "wrote BENCH_restart.json")
  end

(* --- Engine batch-solve scaling (BENCH_suite.json) ---------------------- *)

(* Per-cell results modulo runtime: the determinism contract is that the
   solution arrays are bit-identical whatever the job count. *)
let suite_fingerprint runs =
  List.concat_map
    (fun (run : Experiments.net_run) ->
      List.map
        (fun (cell : Experiments.cell) ->
          match cell.Experiments.rip with
          | Ok r ->
              Ok
                ( Solution.repeaters r.Rip.solution,
                  r.Rip.total_width,
                  r.Rip.delay )
          | Error e -> Error (Rip.error_to_string e))
        run.Experiments.cells)
    runs

type suite_row = {
  row_backend : Rip_dp.Power_dp.backend;
  row_jobs : int;
  row_wall : float;
  row_telemetry : Telemetry.t;
  row_runs : Experiments.net_run list;
  row_labels_pruned : int;
  row_dp_columns : int;
}

let run_suite_bench scale jobs_list =
  section "Engine batch-solve scaling";
  (* Engine telemetry feeds an observability registry: one recorder per
     bench process, every ladder run observed into it, the exposition
     printed at the end (histogram bucket lines elided for brevity). *)
  let registry = Obs.create () in
  let recorder = Telemetry.Recorder.create registry in
  let nets = Suite.nets ~count:scale.nets () in
  let cells = scale.nets * scale.targets in
  (* The ladder runs once per DP backend: same nets, same targets, so the
     fingerprint check below doubles as the cross-backend bit-identity
     gate, and the jobs=1 rows give an apples-to-apples cells/s ratio. *)
  let one backend jobs =
    let name = Rip_dp.Power_dp.backend_name backend in
    Trace.span (Trace.global ()) ~cat:"bench"
      (Printf.sprintf "suite backend=%s jobs=%d" name jobs)
    @@ fun () ->
    let labels_pruned = Atomic.make 0 in
    let dp_columns = Atomic.make 0 in
    let hooks =
      (* Same counters the solve service keeps; atomics because with
         jobs > 1 the probe fires from every pool domain. *)
      Rip_core.Hooks.make
        ~probe:(function
          | Rip.Dp (Rip_dp.Power_dp.Column { collected; kept; _ }) ->
              Atomic.incr dp_columns;
              ignore (Atomic.fetch_and_add labels_pruned (collected - kept))
          | Rip.Refine _ -> ())
        ()
    in
    let config =
      { Config.default with
        Config.dp = { Config.default.Config.dp with Config.backend } }
    in
    let started = Unix.gettimeofday () in
    let runs, telemetry =
      Experiments.run_suite_stats ~jobs ~granularities:[] ~nets
        ~targets_per_net:scale.targets ~config ~hooks process
    in
    let wall = Unix.gettimeofday () -. started in
    Telemetry.Recorder.observe recorder telemetry;
    Printf.printf
      "backend=%-9s jobs=%-2d  wall %6.2fs  cpu %6.2fs  %6.1f cells/s  \
       utilization %3.0f%%  pruned %d/%d columns\n%!"
      name jobs wall telemetry.Telemetry.cpu_seconds
      (float_of_int cells /. wall)
      (100.0 *. telemetry.Telemetry.utilization)
      (Atomic.get labels_pruned) (Atomic.get dp_columns);
    { row_backend = backend; row_jobs = jobs; row_wall = wall;
      row_telemetry = telemetry; row_runs = runs;
      row_labels_pruned = Atomic.get labels_pruned;
      row_dp_columns = Atomic.get dp_columns }
  in
  let measurements =
    List.concat_map
      (fun backend -> List.map (one backend) jobs_list)
      [ Rip_dp.Power_dp.Reference; Rip_dp.Power_dp.Fast ]
  in
  (match measurements with
  | reference :: rest ->
      let reference_fp = suite_fingerprint reference.row_runs in
      List.iter
        (fun row ->
          if suite_fingerprint row.row_runs <> reference_fp then begin
            Printf.eprintf
              "DETERMINISM VIOLATION: backend=%s jobs=%d differs from \
               backend=%s jobs=%d\n"
              (Rip_dp.Power_dp.backend_name row.row_backend)
              row.row_jobs
              (Rip_dp.Power_dp.backend_name reference.row_backend)
              reference.row_jobs;
            exit 1
          end)
        rest;
      Printf.printf
        "outcome arrays identical across job counts and backends: yes\n"
  | [] -> ());
  (* Perf gate: at the first job count, the pruning backend must beat the
     reference — CI runs @bench-quick, so a Fast regression fails the
     build. *)
  (match jobs_list with
  | first_jobs :: _ ->
      let cps backend =
        List.find_map
          (fun r ->
            if r.row_backend = backend && r.row_jobs = first_jobs then
              Some (float_of_int cells /. r.row_wall)
            else None)
          measurements
      in
      (match (cps Rip_dp.Power_dp.Reference, cps Rip_dp.Power_dp.Fast) with
      | Some reference, Some fast ->
          Printf.printf "fast/reference cells/s at jobs=%d: %.1fx\n"
            first_jobs (fast /. reference);
          if fast <= reference then begin
            Printf.eprintf
              "PERF REGRESSION: fast backend (%.1f cells/s) does not beat \
               reference (%.1f cells/s) at jobs=%d\n"
              fast reference first_jobs;
            exit 1
          end
      | _, _ -> ())
  | [] -> ());
  (* Machine-readable perf trajectory for future PRs. *)
  let json =
    let row r =
      Printf.sprintf
        "    { \"nets\": %d, \"targets\": %d, \"backend\": %S, \
         \"jobs\": %d, \"wall_seconds\": %.4f, \"cpu_seconds\": %.4f, \
         \"cells_per_second\": %.2f, \"utilization\": %.3f, \
         \"labels_pruned\": %d, \"dp_columns\": %d }"
        scale.nets scale.targets
        (Rip_dp.Power_dp.backend_name r.row_backend)
        r.row_jobs r.row_wall r.row_telemetry.Telemetry.cpu_seconds
        (float_of_int cells /. r.row_wall)
        r.row_telemetry.Telemetry.utilization r.row_labels_pruned
        r.row_dp_columns
    in
    Printf.sprintf "{\n  \"runs\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.map row measurements))
  in
  let out = open_out "BENCH_suite.json" in
  output_string out json;
  close_out out;
  Printf.printf "wrote BENCH_suite.json (%d runs)\n" (List.length measurements);
  let contains_substring haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
    at 0
  in
  print_string "\nengine registry (bucket samples elided):\n";
  String.split_on_char '\n' (Obs.render registry)
  |> List.filter (fun line -> not (contains_substring line "_bucket{"))
  |> List.iter print_endline

(* --- Entry point -------------------------------------------------------- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  (* --jobs N caps the scaling ladder and sizes the sweeps' domain pool. *)
  let rec extract_jobs acc = function
    | [ "--jobs" ] ->
        prerr_endline "--jobs expects a value";
        exit 2
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some jobs when jobs >= 1 -> (Some jobs, List.rev acc @ rest)
        | Some _ | None ->
            Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
            exit 2)
    | a :: rest -> extract_jobs (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let jobs_override, args = extract_jobs [] args in
  (* --trace-out FILE installs a global tracer: engine batches/jobs and
     the suite ladder leave spans, dumped as Chrome-trace JSON at exit.
     Without the flag every span hook is a nop. *)
  let rec extract_trace_out acc = function
    | [ "--trace-out" ] ->
        prerr_endline "--trace-out expects a file";
        exit 2
    | "--trace-out" :: file :: rest -> (Some file, List.rev acc @ rest)
    | a :: rest -> extract_trace_out (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let trace_out, args = extract_trace_out [] args in
  if Option.is_some trace_out then Trace.set_global (Some (Trace.create ()));
  let quick = List.mem "--quick" args in
  let scale = if quick then quick_scale else full_scale in
  let wanted = List.filter (fun a -> a <> "--quick") args in
  let wanted = if wanted = [] || List.mem "all" wanted then
      [ "table1"; "table2"; "tree"; "ablation"; "micro"; "service";
        "cluster"; "restart"; "suite" ]
    else wanted
  in
  let known =
    [ "table1"; "fig7"; "table2"; "tree"; "ablation"; "micro"; "service";
      "cluster"; "restart"; "suite" ]
  in
  List.iter
    (fun w ->
      if not (List.mem w known) then begin
        Printf.eprintf "unknown experiment %S (known: %s)\n" w
          (String.concat ", " known);
        exit 2
      end)
    wanted;
  (* fig7 shares table1's sweep; run it once when either is requested. *)
  if List.mem "table1" wanted || List.mem "fig7" wanted then
    run_table1_fig7 ?jobs:jobs_override scale;
  if List.mem "table2" wanted then run_table2 ?jobs:jobs_override scale;
  if List.mem "tree" wanted then run_tree scale;
  if List.mem "ablation" wanted then run_ablation scale;
  if List.mem "micro" wanted then run_micro ();
  if List.mem "service" wanted then run_service scale;
  if List.mem "cluster" wanted then run_cluster scale;
  if List.mem "restart" wanted then run_restart ();
  if List.mem "suite" wanted then begin
    (* The scaling ladder: sequential, then the machine's own pool size.
       Never force more domains than the machine recommends — an
       oversubscribed pool serialises on minor-GC synchronisation and
       benchmarks slower than jobs=1 (use --jobs to override). *)
    let top =
      match jobs_override with
      | Some jobs -> jobs
      | None -> Engine.default_jobs ()
    in
    let ladder = if top <= 1 then [ 1 ] else [ 1; top ] in
    run_suite_bench (if quick then quick_scale else scale) ladder
  end;
  match (trace_out, Trace.global ()) with
  | Some file, Some tracer ->
      Trace.dump_to_file tracer file;
      Printf.printf "wrote %d trace spans to %s\n"
        (Trace.span_count tracer) file
  | _ -> ()
