(** A zero-dependency metrics registry: atomic counters, gauges and
    fixed-bucket log-scale histograms, renderable as Prometheus text.

    Every instrument is lock-free on the write path — counters and
    histogram buckets are [Atomic.t] ints, histogram sums are quantised
    to nanounits and accumulated with [Atomic.fetch_and_add] — so
    recording a sample from a worker domain never contends with other
    writers or with a scrape.  Snapshots are internally consistent by
    construction: a histogram snapshot's [count] is derived from the
    bucket counts read in one pass, so [count = sum of buckets] always
    holds, torn or not; under quiescence (writers joined) every recorded
    sample is visible exactly once. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  (** @raise Invalid_argument on a negative increment (counters are
      monotone). *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  type snapshot = {
    upper_bounds : float array;
        (** inclusive bucket upper bounds, strictly increasing; an
            implicit +infinity bucket follows the last *)
    counts : int array;  (** per-bucket counts, length [upper_bounds + 1] *)
    count : int;  (** total observations = sum of [counts] *)
    sum : float;  (** sum of observed values (nanounit-quantised) *)
  }

  val log_bounds : lo:float -> hi:float -> per_decade:int -> float array
  (** Log-scale bucket upper bounds from [lo] to at least [hi], with
      [per_decade] bounds per decade.
      @raise Invalid_argument unless [0 < lo < hi] and [per_decade > 0]. *)

  val default_latency_bounds : float array
  (** 1 microsecond to 100 seconds, five buckets per decade — wide enough
      for a cache hit and a pathological DP alike. *)

  val observe : t -> float -> unit
  (** Record one sample.  Negative and non-finite samples clamp to 0 /
      the overflow bucket respectively — a histogram must never lose an
      event its twin counter recorded. *)

  val snapshot : t -> snapshot

  val merge : snapshot -> snapshot -> snapshot
  (** Bucket-wise sum; counts and sums add.
      @raise Invalid_argument when the bucket bounds differ. *)

  val diff : snapshot -> snapshot -> snapshot
  (** [diff later earlier]: the samples recorded between two scrapes of
      the same histogram.
      @raise Invalid_argument when bounds differ or a count would go
      negative (snapshots from different instruments). *)

  type bound_estimate = Lower | Interpolated | Upper

  val quantile : ?estimate:bound_estimate -> snapshot -> float -> float
  (** [quantile s q] for [q] in [0,1]: the value at the shared
      {!Rip_numerics.Stats.quantile_rank} rank, located in the bucket
      cumulative counts.  [Interpolated] (default) interpolates linearly
      inside the bucket; [Lower]/[Upper] return the bucket's bounds — a
      sound under/over-estimate of the true sample quantile.  0 on an
      empty snapshot.
      @raise Invalid_argument for [q] outside [0,1]. *)
end

type t
(** A registry: a named collection of instruments with one render. *)

val create : unit -> t

val counter : t -> name:string -> help:string -> Counter.t
val gauge : t -> name:string -> help:string -> Gauge.t

val gauge_fn : t -> name:string -> help:string -> (unit -> float) -> unit
(** A gauge computed at scrape time (uptime, queue depth, cache size). *)

val histogram :
  ?bounds:float array -> t -> name:string -> help:string -> Histogram.t
(** Default bounds: {!Histogram.default_latency_bounds}. *)

val find_histogram : t -> string -> Histogram.t option

val render : t -> string
(** Prometheus text exposition: [# HELP]/[# TYPE] then samples, metrics
    in registration order, histogram buckets as cumulative
    [name_bucket{le="..."}] with an explicit [+Inf] bucket, plus
    [name_sum]/[name_count].  HELP text is escaped per the exposition
    format (backslash and newline); floats are rendered at full
    precision so a scrape diff round-trips. *)

val parse_histograms : string -> (string * Histogram.snapshot) list
(** Parse the histogram families out of a {!render}-produced exposition
    (the client side of METRICS reconciliation).  Unknown lines are
    ignored; malformed histogram families are dropped. *)

val parse_scalars : string -> (string * float) list
(** The scalar samples of an exposition — counters, gauges, histogram
    [_sum]/[_count] series — in exposition order.  Comment and
    label-carrying lines are skipped (this registry never emits
    labels). *)

val scalar : string -> string -> float option
(** [scalar text name]: the first scalar sample named [name], the
    single-value lookup dashboards poll. *)

val registered_names : t -> string list
(** Registration order; duplicate registration raises. *)
