(** Trace spans on the monotonic clock, dumpable as Chrome-trace JSON.

    A tracer owns one span buffer per thread (keyed on [Thread.id], which
    is globally unique across domains), so recording a span never
    contends with other threads beyond a brief buffer-lookup lock.
    Timestamps come from {!Rip_numerics.Cpu_clock.monotonic_seconds} —
    wall clocks can step backwards under NTP and would produce negative
    durations; span ids must come from request digests, never from the
    clock, so traces of the same workload are comparable run to run. *)

type t

val create : unit -> t
(** A fresh tracer; its epoch (Chrome-trace t=0) is the creation
    instant. *)

val begin_span :
  t -> ?cat:string -> ?args:(string * string) list -> string -> unit -> unit
(** [begin_span t name] starts a span now and returns its end closure;
    calling the closure records the completed span into the current
    thread's buffer.  Calling it more than once records only the first
    end.  [cat] defaults to ["rip"]. *)

val begin_opt :
  t option ->
  ?cat:string ->
  ?args:(string * string) list ->
  string ->
  unit ->
  unit
(** Like {!begin_span} but a no-op returning a no-op closure when the
    tracer is [None] — call sites guard once, not twice. *)

val span :
  t option -> ?cat:string -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a span; the span is recorded even
    when [f] raises. *)

val span_id : digest:string -> string -> string
(** Deterministic 16-hex-char span id derived from a request digest and
    the span name — the same request traced twice yields the same ids,
    so traces diff cleanly. *)

type span = {
  name : string;
  cat : string;
  start : float;  (** seconds since the tracer epoch *)
  duration : float;  (** seconds, clamped non-negative *)
  tid : int;  (** [Thread.id] of the recording thread *)
  args : (string * string) list;
}

val spans : t -> span list
(** Completed spans so far, sorted by [(tid, start)].  Reading while
    other threads still record sees some prefix of each thread's
    spans. *)

val span_count : t -> int
(** Total spans recorded so far, across all threads. *)

val to_chrome_json : t -> string
(** The [traceEvents] JSON object Chrome's [about://tracing] and Perfetto
    load: one ["ph":"X"] complete event per span, timestamps and
    durations in microseconds relative to the tracer epoch. *)

val dump_to_file : t -> string -> unit
(** Write {!to_chrome_json} to a path (truncating). *)

val set_global : t option -> unit
(** Install a process-wide tracer that deep layers (engine workers,
    bench harness) read with {!global} instead of threading a tracer
    through every signature.  Last set wins. *)

val global : unit -> t option
