(** Trace spans on the monotonic clock, dumpable as Chrome-trace JSON.

    A tracer owns one span buffer per thread (keyed on [Thread.id], which
    is globally unique across domains), so recording a span never
    contends with other threads beyond a brief buffer-lookup lock.
    Timestamps come from {!Rip_numerics.Cpu_clock.monotonic_seconds} —
    wall clocks can step backwards under NTP and would produce negative
    durations; span ids must come from request digests, never from the
    clock, so traces of the same workload are comparable run to run.

    For cross-process traces each tracer carries a {e scope} — by
    convention [<shard-id>] or ["router"] — mixed into every span id
    ({!scoped_span_id}) so two shards tracing the same request digest
    produce distinct ids, and a [pid] stamped into the Chrome dump so a
    merged timeline ({!Trace_merge}) keeps one track per process. *)

type t

val create : ?scope:string -> ?pid:int -> unit -> t
(** A fresh tracer; its epoch (Chrome-trace t=0) is the creation
    instant.  [scope] (default [""]) names the process in dumps and
    keys its span ids; [pid] (default 0) is the OS pid to stamp into
    the Chrome dump — passed in because this library does not depend
    on [unix]. *)

val scope : t -> string
val epoch : t -> float
(** Tracer creation instant on the monotonic clock — the timebase
    shared by every process on the machine, which is what lets
    {!Trace_merge} align per-process dumps. *)

val begin_span :
  t -> ?cat:string -> ?args:(string * string) list -> string -> unit -> unit
(** [begin_span t name] starts a span now and returns its end closure;
    calling the closure records the completed span into the current
    thread's buffer.  Calling it more than once records only the first
    end.  [cat] defaults to ["rip"]. *)

val begin_opt :
  t option ->
  ?cat:string ->
  ?args:(string * string) list ->
  string ->
  unit ->
  unit
(** Like {!begin_span} but a no-op returning a no-op closure when the
    tracer is [None] — call sites guard once, not twice. *)

val span :
  t option -> ?cat:string -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a span; the span is recorded even
    when [f] raises. *)

val span_id : ?scope:string -> digest:string -> string -> string
(** Deterministic 16-hex-char span id derived from a request digest and
    the span name — the same request traced twice yields the same ids,
    so traces diff cleanly.  A non-empty [scope] (default [""]) is
    mixed into the hash so distinct processes solving the same digest
    get distinct ids; the empty scope preserves the historical
    unscoped formula. *)

val scoped_span_id : t -> digest:string -> string -> string
(** {!span_id} under the tracer's own scope. *)

(** {2 Trace context}

    The value the optional [TRACE <trace-id> <parent-span-id> <flags>]
    protocol header carries: which distributed trace a request belongs
    to and which upstream span its server-side spans should parent
    under. *)

type context = {
  trace_id : string;  (** 32 hex chars *)
  parent_span_id : string;  (** 16 hex chars; {!root_span_id} at ingress *)
  flags : int;  (** 0..255; bit 0 = sampled *)
}

val root_span_id : string
(** The all-zero parent span id of an ingress-generated context. *)

val valid_context : context -> bool

val make_context : ?scope:string -> digest:string -> seq:int -> unit -> context
(** A deterministic ingress context: the trace id is
    [MD5("trace/" scope "/" digest "/" seq)] — no clock, no randomness,
    so traced runs of the same workload are diffable; [seq] (a
    per-process request counter) keeps repeat solves of one digest in
    distinct traces. *)

val context_of_tokens :
  trace_id:string -> parent_span_id:string -> flags:string -> context option
(** Parse the three TRACE header tokens; [None] on anything invalid
    (bad hex, wrong length, unparsable or out-of-range flags) — the
    caller degrades to an untraced request, never a protocol error. *)

val child : context -> span_id:string -> context
(** The context to forward downstream: same trace, the given span as
    the new parent. *)

val context_args : context -> (string * string) list
(** [trace_id]/[parent_span_id] span args — how spans advertise their
    trace membership in dumps. *)

val context_equal : context -> context -> bool

type span = {
  name : string;
  cat : string;
  start : float;  (** seconds since the tracer epoch *)
  duration : float;  (** seconds, clamped non-negative *)
  tid : int;  (** [Thread.id] of the recording thread *)
  args : (string * string) list;
}

val spans : t -> span list
(** Completed spans so far, sorted by [(tid, start)].  Reading while
    other threads still record sees some prefix of each thread's
    spans. *)

val span_count : t -> int
(** Total spans recorded so far, across all threads. *)

val to_chrome_json : t -> string
(** The [traceEvents] JSON object Chrome's [about://tracing] and Perfetto
    load: one ["ph":"X"] complete event per span, timestamps and
    durations in microseconds relative to the tracer epoch, stamped
    with the tracer's pid.  A top-level [ripMeta] object carries the
    scope, pid and epoch for {!Trace_merge}; a [process_name] metadata
    event labels the process track when the scope is non-empty. *)

val dump_to_file : t -> string -> unit
(** Write {!to_chrome_json} to a path (truncating). *)

val set_global : t option -> unit
(** Install a process-wide tracer that deep layers (engine workers,
    bench harness) read with {!global} instead of threading a tracer
    through every signature.  Last set wins. *)

val global : unit -> t option
