(** Merge per-process Chrome-trace dumps into one cross-process
    timeline.

    Every {!Trace.to_chrome_json} dump carries a [ripMeta] header with
    the tracer's scope, pid and epoch.  Epochs are instants on the
    machine-wide [CLOCK_MONOTONIC] timebase, so rebasing each dump's
    timestamps onto the earliest epoch aligns all processes on one
    timeline without touching a wall clock; span ids are already
    collision-free across processes ({!Trace.scoped_span_id}), so the
    merged file groups cleanly by the [trace_id] span arg. *)

type dump = {
  label : string;  (** process label: the ripMeta scope, or the filename *)
  pid : int;
  epoch_us : float;  (** tracer epoch in microseconds (monotonic) *)
  events : Json.t list;  (** the raw [traceEvents] objects *)
}

val parse : ?label:string -> string -> (dump, string) result
(** Parse one Chrome-trace JSON document.  Dumps without [ripMeta]
    (foreign traces) load with scope [""], pid 0 and epoch 0. *)

val load_file : string -> (dump, string) result
(** {!parse} a file; the default label is the filename without
    extension when the dump carries no scope. *)

val merge : dump list -> string
(** One merged Chrome-trace JSON document: each dump's events rebased
    onto the earliest epoch, every process on its own [pid] track
    (reassigned when dumps collide or carry pid 0) labelled with a
    [process_name] metadata event. *)

val merge_files : string list -> (string, string) result

type trace_span = {
  span_process : string;  (** which dump (label) recorded it *)
  span_name : string;
  span_cat : string;
  span_args : (string * string) list;
}

val traces : dump list -> (string * trace_span list) list
(** Group spans across all dumps by their [trace_id] arg — the
    cross-process view of each distributed trace, in first-seen order.
    Spans without a [trace_id] arg are not included. *)
