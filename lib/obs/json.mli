(** A minimal zero-dependency JSON reader/writer for the observability
    artifacts this repo itself produces and consumes — Chrome-trace
    dumps ({!Trace_merge}) and wide-event spool lines ({!Wide_event}).

    Deliberately not a general JSON library: [\uXXXX] escapes above
    U+00FF decode to ['?'] (the repo never emits them), and NaN prints
    as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering; integers print as integers, other
    floats at full [%.17g] precision so a parse/print cycle
    round-trips. *)

val parse : string -> (t, string) result
(** Strict parse of one JSON value (leading/trailing whitespace
    allowed); a number without ['.'/'e'] that fits an OCaml int parses
    as {!Int}, everything else numeric as {!Float}. *)

val member : string -> t -> t option
(** Field of an {!Obj} ([None] on anything else or a missing key). *)

val string_value : t -> string option
val int_value : t -> int option
(** {!Int}, or an integral {!Float} within int range. *)

val float_value : t -> float option
(** {!Float}, or an {!Int} widened. *)

val bool_value : t -> bool option
val list_value : t -> t list option
