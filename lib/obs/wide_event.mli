(** Wide events: exactly one structured JSON line per request, spooled
    per process with tail sampling.

    A wide event is the request's whole story in one record — digest,
    serving shard, cache outcome, degradation rung, hedge/breaker/
    failover involvement, queue wait, DP backend, deadline slack — so
    offline analysis (rip_trace query) joins nothing.  The schema is
    versioned ({!schema_version}, carried in every line); consumers
    reject lines from a schema they do not understand.

    Tail sampling keeps the spool small without losing the tail:
    anomalous events (every outcome other than [fresh]/[cached], and
    any hedge/failover/spill/breaker involvement) are kept at 100% —
    offline counts of them are exact, not estimates — plus everything
    above a latency threshold; the boring rest is sampled
    deterministically from the event identity, never a clock or PRNG,
    so replayed workloads spool identically. *)

val schema_version : int

type t = {
  schema : int;
  process : string;  (** emitting process scope: ["router"], ["s0"], ... *)
  trace_id : string;  (** [""] when the request was untraced *)
  digest : string;
  shard : string;  (** serving shard id ([""] when none was chosen) *)
  outcome : string;
      (** [fresh | cached | degraded | timeout | busy | toobig | error | shed] *)
  degrade_reason : string;  (** [""] unless [outcome = "degraded"] *)
  cache : string;  (** ["hit" | "miss" | ""] *)
  hedged : bool;
  hedge_won : bool;
  failover : bool;
  spilled : bool;
  breaker_skip : bool;  (** an open breaker excluded the primary shard *)
  dp_backend : string;
  labels_pruned : int;
  queue_wait : float;  (** seconds *)
  latency : float;  (** seconds, request wall time at the emitter *)
  deadline_slack : float;
      (** seconds left at completion; [nan] = no deadline *)
}

val empty : t
(** All-blank event at the current schema — build events with record
    update syntax so adding a field never touches call sites. *)

val to_line : t -> string
(** One compact JSON object, no trailing newline. *)

val of_line : string -> (t, string) result
(** Inverse of {!to_line}; unknown fields are ignored, a missing or
    unsupported [schema] is an error. *)

(** {2 Tail sampling} *)

type sampler = {
  latency_threshold : float;  (** keep everything at or above, seconds *)
  sample_ratio : float;  (** [0,1]: fraction of the boring rest kept *)
}

val default_sampler : sampler
(** 100 ms threshold, 5% of the rest. *)

val keep_all : sampler

val interesting : t -> bool
(** The always-keep predicate: any outcome other than [fresh]/[cached],
    or any hedge/failover/spill/breaker involvement. *)

val keep : sampler -> t -> bool

(** {2 The bounded spool} *)

type spool

val create : ?max_bytes:int -> ?sampler:sampler -> string -> spool
(** Open (truncating) a JSONL spool at a path.  When the file would
    exceed [max_bytes] (default 4 MiB) it rotates to [path.1]
    (clobbering the previous generation), bounding disk at ~2x
    [max_bytes].
    @raise Invalid_argument on [max_bytes < 4096] or a sampler with
    [sample_ratio] outside [0,1] or a negative threshold. *)

val emit : spool -> t -> unit
(** Sample, serialise, append, flush.  Thread-safe; dropped events are
    only counted ({!sampled_out}). *)

val written : spool -> int
val sampled_out : spool -> int
val path : spool -> string
val close : spool -> unit

(** {2 Offline loading} *)

val load_file : string -> t list
(** Parse a spool file, skipping unparsable lines (a torn tail after a
    crash is expected, not an error); an unreadable path yields []. *)

val load_files : string list -> t list
