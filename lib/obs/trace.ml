module Cpu_clock = Rip_numerics.Cpu_clock

type span = {
  name : string;
  cat : string;
  start : float;  (* seconds since tracer epoch *)
  duration : float;
  tid : int;
  args : (string * string) list;
}

type t = {
  epoch : float;
  mutex : Mutex.t;  (* guards the buffer table, not the buffers *)
  buffers : (int, span list ref) Hashtbl.t;  (* Thread.id -> own buffer *)
}

let create () =
  {
    epoch = Cpu_clock.monotonic_seconds ();
    mutex = Mutex.create ();
    buffers = Hashtbl.create 8;
  }

(* Each buffer is only ever pushed by its owning thread; the mutex is
   held just long enough to find or create the ref, because a Hashtbl
   read racing another thread's [add] is unsafe under OCaml 5. *)
let buffer_for t tid =
  Mutex.lock t.mutex;
  let buf =
    match Hashtbl.find_opt t.buffers tid with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.add t.buffers tid b;
        b
  in
  Mutex.unlock t.mutex;
  buf

let record t span =
  let buf = buffer_for t span.tid in
  buf := span :: !buf

let begin_span t ?(cat = "rip") ?(args = []) name =
  let tid = Thread.id (Thread.self ()) in
  let start = Cpu_clock.monotonic_seconds () in
  let ended = ref false in
  fun () ->
    if not !ended then begin
      ended := true;
      let stop = Cpu_clock.monotonic_seconds () in
      record t
        {
          name;
          cat;
          start = start -. t.epoch;
          duration = Float.max 0.0 (stop -. start);
          tid;
          args;
        }
    end

let nop () = ()

let begin_opt t ?cat ?args name =
  match t with
  | None -> nop
  | Some t -> begin_span t ?cat ?args name

let span t ?cat ?args name f =
  match t with
  | None -> f ()
  | Some t ->
      let finish = begin_span t ?cat ?args name in
      Fun.protect ~finally:finish f

let span_id ~digest name =
  String.sub (Digest.to_hex (Digest.string (digest ^ "/" ^ name))) 0 16

let spans t =
  (* Reading a buffer owned by a still-running thread sees some prefix
     of its spans — fine for a count or a dump-at-exit.  The Hashtbl
     traversal lives inside the sort argument, so its hash order never
     escapes. *)
  List.sort
    (fun a b ->
      match Int.compare a.tid b.tid with
      | 0 -> Float.compare a.start b.start
      | c -> c)
    (let buffers =
       Mutex.lock t.mutex;
       let bs = Hashtbl.fold (fun _ buf acc -> buf :: acc) t.buffers [] in
       Mutex.unlock t.mutex;
       bs
     in
     List.concat_map (fun buf -> List.rev !buf) buffers)

let span_count t = List.length (spans t)

let json_escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let to_chrome_json t =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_string buffer
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d"
           (json_escape s.name) (json_escape s.cat) (s.start *. 1e6)
           (s.duration *. 1e6) s.tid);
      (match s.args with
      | [] -> ()
      | args ->
          Buffer.add_string buffer ",\"args\":{";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_char buffer ',';
              Buffer.add_string buffer
                (Printf.sprintf "\"%s\":\"%s\"" (json_escape k)
                   (json_escape v)))
            args;
          Buffer.add_char buffer '}');
      Buffer.add_char buffer '}')
    (spans t);
  Buffer.add_string buffer "\n]}\n";
  Buffer.contents buffer

let dump_to_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json t))

let installed : t option Atomic.t = Atomic.make None
let set_global t = Atomic.set installed t
let global () = Atomic.get installed
