module Cpu_clock = Rip_numerics.Cpu_clock

type span = {
  name : string;
  cat : string;
  start : float;  (* seconds since tracer epoch *)
  duration : float;
  tid : int;
  args : (string * string) list;
}

type t = {
  epoch : float;
  scope : string;
  pid : int;
  mutex : Mutex.t;  (* guards the buffer table, not the buffers *)
  buffers : (int, span list ref) Hashtbl.t;  (* Thread.id -> own buffer *)
}

let create ?(scope = "") ?(pid = 0) () =
  {
    epoch = Cpu_clock.monotonic_seconds ();
    scope;
    pid;
    mutex = Mutex.create ();
    buffers = Hashtbl.create 8;
  }

let scope t = t.scope
let epoch t = t.epoch

(* Each buffer is only ever pushed by its owning thread; the mutex is
   held just long enough to find or create the ref, because a Hashtbl
   read racing another thread's [add] is unsafe under OCaml 5. *)
let buffer_for t tid =
  Mutex.lock t.mutex;
  let buf =
    match Hashtbl.find_opt t.buffers tid with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.add t.buffers tid b;
        b
  in
  Mutex.unlock t.mutex;
  buf

let record t span =
  let buf = buffer_for t span.tid in
  buf := span :: !buf

let begin_span t ?(cat = "rip") ?(args = []) name =
  let tid = Thread.id (Thread.self ()) in
  let start = Cpu_clock.monotonic_seconds () in
  let ended = ref false in
  fun () ->
    if not !ended then begin
      ended := true;
      let stop = Cpu_clock.monotonic_seconds () in
      record t
        {
          name;
          cat;
          start = start -. t.epoch;
          duration = Float.max 0.0 (stop -. start);
          tid;
          args;
        }
    end

let nop () = ()

let begin_opt t ?cat ?args name =
  match t with
  | None -> nop
  | Some t -> begin_span t ?cat ?args name

let span t ?cat ?args name f =
  match t with
  | None -> f ()
  | Some t ->
      let finish = begin_span t ?cat ?args name in
      Fun.protect ~finally:finish f

(* The legacy formula (no scope) is kept bit-for-bit so single-process
   traces of the same workload still diff cleanly across releases; a
   non-empty scope keys the hash so two shards solving the same digest
   no longer collide in a merged timeline. *)
let span_id ?(scope = "") ~digest name =
  let base = digest ^ "/" ^ name in
  let keyed = if scope = "" then base else scope ^ "\x00" ^ base in
  String.sub (Digest.to_hex (Digest.string keyed)) 0 16

let scoped_span_id t ~digest name = span_id ~scope:t.scope ~digest name

(* --- Trace context (the TRACE protocol header) -------------------------- *)

type context = {
  trace_id : string;  (* 32 hex chars *)
  parent_span_id : string;  (* 16 hex chars *)
  flags : int;  (* 0..255; bit 0 = sampled *)
}

let root_span_id = String.make 16 '0'

let is_hex s =
  s <> ""
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
       s

let valid_context c =
  String.length c.trace_id = 32
  && is_hex c.trace_id
  && String.length c.parent_span_id = 16
  && is_hex c.parent_span_id
  && c.flags >= 0 && c.flags <= 255

let make_context ?(scope = "") ~digest ~seq () =
  {
    trace_id =
      Digest.to_hex
        (Digest.string (Printf.sprintf "trace/%s/%s/%d" scope digest seq));
    parent_span_id = root_span_id;
    flags = 1;
  }

let context_of_tokens ~trace_id ~parent_span_id ~flags =
  match int_of_string_opt flags with
  | None -> None
  | Some flags ->
      let c = { trace_id; parent_span_id; flags } in
      if valid_context c then Some c else None

let child context ~span_id = { context with parent_span_id = span_id }

let context_args c =
  [ ("trace_id", c.trace_id); ("parent_span_id", c.parent_span_id) ]

let context_equal a b =
  String.equal a.trace_id b.trace_id
  && String.equal a.parent_span_id b.parent_span_id
  && a.flags = b.flags

(* --- Dumping ------------------------------------------------------------ *)

let spans t =
  (* Reading a buffer owned by a still-running thread sees some prefix
     of its spans — fine for a count or a dump-at-exit.  The Hashtbl
     traversal lives inside the sort argument, so its hash order never
     escapes. *)
  List.sort
    (fun a b ->
      match Int.compare a.tid b.tid with
      | 0 -> Float.compare a.start b.start
      | c -> c)
    (let buffers =
       Mutex.lock t.mutex;
       let bs = Hashtbl.fold (fun _ buf acc -> buf :: acc) t.buffers [] in
       Mutex.unlock t.mutex;
       bs
     in
     List.concat_map (fun buf -> List.rev !buf) buffers)

let span_count t = List.length (spans t)

let json_escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let to_chrome_json t =
  let buffer = Buffer.create 4096 in
  (* ripMeta carries what a cross-process merge needs: the scope that
     keys this process's span ids and the tracer epoch on the shared
     CLOCK_MONOTONIC timebase, so per-process dumps can be rebased onto
     one timeline.  Chrome/Perfetto ignore unknown top-level keys. *)
  Buffer.add_string buffer
    (Printf.sprintf
       "{\"displayTimeUnit\":\"ms\",\"ripMeta\":{\"scope\":\"%s\",\"pid\":%d,\"epoch_us\":%.3f},\"traceEvents\":["
       (json_escape t.scope) t.pid (t.epoch *. 1e6));
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buffer ','
  in
  if t.scope <> "" then begin
    sep ();
    Buffer.add_string buffer
      (Printf.sprintf
         "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
         t.pid (json_escape t.scope))
  end;
  List.iter
    (fun s ->
      sep ();
      Buffer.add_string buffer
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d"
           (json_escape s.name) (json_escape s.cat) (s.start *. 1e6)
           (s.duration *. 1e6) t.pid s.tid);
      (match s.args with
      | [] -> ()
      | args ->
          Buffer.add_string buffer ",\"args\":{";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_char buffer ',';
              Buffer.add_string buffer
                (Printf.sprintf "\"%s\":\"%s\"" (json_escape k)
                   (json_escape v)))
            args;
          Buffer.add_char buffer '}');
      Buffer.add_char buffer '}')
    (spans t);
  Buffer.add_string buffer "\n]}\n";
  Buffer.contents buffer

let dump_to_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json t))

let installed : t option Atomic.t = Atomic.make None
let set_global t = Atomic.set installed t
let global () = Atomic.get installed
