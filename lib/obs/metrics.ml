(* Lock-free instruments.  The only mutex in this module guards the
   registry's registration list; the instruments themselves are plain
   atomics so the write path never blocks and never allocates. *)

module Stats = Rip_numerics.Stats

module Counter = struct
  type t = int Atomic.t

  let make () = Atomic.make 0
  let[@lint.hot] incr t = ignore (Atomic.fetch_and_add t 1)

  let[@lint.hot] add t n =
    if n < 0 then invalid_arg "Metrics.Counter.add: negative increment";
    ignore (Atomic.fetch_and_add t n)

  let value t = Atomic.get t
end

module Gauge = struct
  (* A float atomic: [set] is a plain store, [add] a CAS loop.  Gauges
     are low-rate (slot acquire/release), so contention is negligible. *)
  type t = float Atomic.t

  let make () = Atomic.make 0.0
  let[@lint.hot] set t v = Atomic.set t v

  let[@lint.hot] rec add t v =
    let current = Atomic.get t in
    if not (Atomic.compare_and_set t current (current +. v)) then add t v

  let value t = Atomic.get t
end

module Histogram = struct
  (* Sums are quantised to nanounits and accumulated as an int so
     [fetch_and_add] keeps the write path wait-free; at 1e-9 resolution
     the int range covers ~292 years of accumulated seconds. *)
  let nano = 1e9

  type t = {
    upper_bounds : float array;
    buckets : int Atomic.t array;  (* length upper_bounds + 1 (+Inf) *)
    sum_nano : int Atomic.t;
  }

  type snapshot = {
    upper_bounds : float array;
    counts : int array;
    count : int;
    sum : float;
  }

  let log_bounds ~lo ~hi ~per_decade =
    if not (0.0 < lo && lo < hi) then
      invalid_arg "Histogram.log_bounds: need 0 < lo < hi";
    if per_decade < 1 then
      invalid_arg "Histogram.log_bounds: per_decade must be positive";
    let step = 1.0 /. float_of_int per_decade in
    (* Stop as soon as a bound reaches [hi] (within float slop) and pin
       [hi] itself as the final bound, so the array is strictly
       increasing even when the log grid lands exactly on [hi]. *)
    let rec build acc k =
      let bound = lo *. Float.pow 10.0 (float_of_int k *. step) in
      if bound >= hi *. (1.0 -. 1e-9) then List.rev acc
      else build (bound :: acc) (k + 1)
    in
    Array.of_list (build [] 0 @ [ hi ])

  let default_latency_bounds = log_bounds ~lo:1e-6 ~hi:100.0 ~per_decade:5

  let make bounds =
    let n = Array.length bounds in
    if n = 0 then invalid_arg "Histogram.make: no buckets";
    for i = 1 to n - 1 do
      if bounds.(i) <= bounds.(i - 1) then
        invalid_arg "Histogram.make: bounds must be strictly increasing"
    done;
    {
      upper_bounds = Array.copy bounds;
      buckets = Array.init (n + 1) (fun _ -> Atomic.make 0);
      sum_nano = Atomic.make 0;
    }

  (* First bucket whose upper bound is >= v; the +Inf bucket otherwise. *)
  let[@lint.hot] bucket_index bounds v =
    let n = Array.length bounds in
    if v <= bounds.(0) then 0
    else if v > bounds.(n - 1) then n
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      (* invariant: bounds.(lo) < v <= bounds.(hi) *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if v <= bounds.(mid) then hi := mid else lo := mid
      done;
      !hi
    end

  let[@lint.hot] observe (t : t) v =
    let v = if Float.is_nan v then Float.infinity else v in
    let v = if v < 0.0 then 0.0 else v in
    let index =
      if Float.is_finite v then bucket_index t.upper_bounds v
      else Array.length t.upper_bounds
    in
    ignore (Atomic.fetch_and_add t.buckets.(index) 1);
    let quantised =
      if Float.is_finite v then int_of_float (Float.round (v *. nano)) else 0
    in
    ignore (Atomic.fetch_and_add t.sum_nano quantised)

  (* [count] is derived from the bucket reads themselves, so a snapshot
     can never disagree with its own buckets, however the reads race
     with writers. *)
  let snapshot (t : t) =
    let counts = Array.map Atomic.get t.buckets in
    {
      upper_bounds = Array.copy t.upper_bounds;
      counts;
      count = Array.fold_left ( + ) 0 counts;
      sum = float_of_int (Atomic.get t.sum_nano) /. nano;
    }

  let same_bounds (a : snapshot) (b : snapshot) =
    Array.length a.upper_bounds = Array.length b.upper_bounds
    && Array.for_all2 Float.equal a.upper_bounds b.upper_bounds

  let merge (a : snapshot) (b : snapshot) =
    if not (same_bounds a b) then
      invalid_arg "Histogram.merge: bucket bounds differ";
    let counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts in
    {
      upper_bounds = Array.copy a.upper_bounds;
      counts;
      count = a.count + b.count;
      sum = a.sum +. b.sum;
    }

  let diff (later : snapshot) (earlier : snapshot) =
    if not (same_bounds later earlier) then
      invalid_arg "Histogram.diff: bucket bounds differ";
    let counts =
      Array.mapi
        (fun i c ->
          let d = c - earlier.counts.(i) in
          if d < 0 then
            invalid_arg "Histogram.diff: negative bucket delta"
          else d)
        later.counts
    in
    {
      upper_bounds = Array.copy later.upper_bounds;
      counts;
      count = Array.fold_left ( + ) 0 counts;
      sum = later.sum -. earlier.sum;
    }

  type bound_estimate = Lower | Interpolated | Upper

  (* Estimate the 0-based [j]-th order statistic from the buckets. *)
  let order_stat estimate (s : snapshot) j =
    let n_buckets = Array.length s.counts in
    let rec locate b cum =
      if b >= n_buckets then (n_buckets - 1, cum)  (* unreachable when j < count *)
      else if j < cum + s.counts.(b) then (b, cum)
      else locate (b + 1) (cum + s.counts.(b))
    in
    let b, cum_before = locate 0 0 in
    let finite = Array.length s.upper_bounds in
    let lower = if b = 0 then 0.0 else s.upper_bounds.(b - 1) in
    let upper =
      if b < finite then s.upper_bounds.(b) else Float.infinity
    in
    match estimate with
    | Lower -> lower
    | Upper -> upper
    | Interpolated ->
        if b >= finite then s.upper_bounds.(finite - 1)
        else
          let inside =
            (float_of_int (j - cum_before) +. 0.5)
            /. float_of_int s.counts.(b)
          in
          lower +. (inside *. (upper -. lower))

  let quantile ?(estimate = Interpolated) (s : snapshot) q =
    if q < 0.0 || q > 1.0 then
      invalid_arg "Histogram.quantile: q outside [0,1]";
    if s.count = 0 then 0.0
    else
      (* The same rank convention as Rip_numerics.Stats.quantile, so a
         histogram estimate and an exact sample quantile bracket the
         same order statistics. *)
      let rank = Stats.quantile_rank ~n:s.count q in
      let k = int_of_float (Float.floor rank) in
      let frac = rank -. float_of_int k in
      match estimate with
      | Lower -> order_stat Lower s k
      | Upper -> order_stat Upper s (Stdlib.min (s.count - 1) (k + 1))
      | Interpolated ->
          if frac = 0.0 then order_stat Interpolated s k
          else
            ((1.0 -. frac) *. order_stat Interpolated s k)
            +. (frac *. order_stat Interpolated s (k + 1))
end

(* --- Registry ------------------------------------------------------------- *)

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_gauge_fn of (unit -> float)
  | I_histogram of Histogram.t

type entry = { name : string; help : string; instrument : instrument }

type t = {
  mutex : Mutex.t;
  mutable entries : entry list;  (* reverse registration order *)
}

let create () = { mutex = Mutex.create (); entries = [] }

let valid_name name =
  name <> ""
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let register t ~name ~help instrument =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  Mutex.lock t.mutex;
  let duplicate = List.exists (fun e -> e.name = name) t.entries in
  if not duplicate then t.entries <- { name; help; instrument } :: t.entries;
  Mutex.unlock t.mutex;
  if duplicate then
    invalid_arg (Printf.sprintf "Metrics: metric %S already registered" name)

let counter t ~name ~help =
  let c = Counter.make () in
  register t ~name ~help (I_counter c);
  c

let gauge t ~name ~help =
  let g = Gauge.make () in
  register t ~name ~help (I_gauge g);
  g

let gauge_fn t ~name ~help f = register t ~name ~help (I_gauge_fn f)

let histogram ?(bounds = Histogram.default_latency_bounds) t ~name ~help =
  let h = Histogram.make bounds in
  register t ~name ~help (I_histogram h);
  h

let entries t =
  Mutex.lock t.mutex;
  let es = List.rev t.entries in
  Mutex.unlock t.mutex;
  es

let registered_names t = List.map (fun e -> e.name) (entries t)

let find_histogram t name =
  List.find_map
    (fun e ->
      match e.instrument with
      | I_histogram h when e.name = name -> Some h
      | _ -> None)
    (entries t)

(* --- Prometheus text exposition ------------------------------------------- *)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* Prometheus text exposition escapes exactly two characters in HELP
   text: backslash and newline.  Help strings in this repo are single
   lines today, but conformance must not depend on that staying true. *)
let help_escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let render t =
  let buffer = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt in
  List.iter
    (fun e ->
      line "# HELP %s %s" e.name (help_escape e.help);
      match e.instrument with
      | I_counter c ->
          line "# TYPE %s counter" e.name;
          line "%s %d" e.name (Counter.value c)
      | I_gauge g ->
          line "# TYPE %s gauge" e.name;
          line "%s %s" e.name (float_str (Gauge.value g))
      | I_gauge_fn f ->
          line "# TYPE %s gauge" e.name;
          line "%s %s" e.name (float_str (f ()))
      | I_histogram h ->
          line "# TYPE %s histogram" e.name;
          let s = Histogram.snapshot h in
          let cumulative = ref 0 in
          Array.iteri
            (fun i upper ->
              cumulative := !cumulative + s.Histogram.counts.(i);
              line "%s_bucket{le=\"%.17g\"} %d" e.name upper !cumulative)
            s.Histogram.upper_bounds;
          line "%s_bucket{le=\"+Inf\"} %d" e.name s.Histogram.count;
          line "%s_sum %.17g" e.name s.Histogram.sum;
          line "%s_count %d" e.name s.Histogram.count)
    (entries t);
  Buffer.contents buffer

(* --- Exposition parsing (the METRICS reconciliation client) --------------- *)

type partial = {
  mutable bucket_rows : (float * int) list;  (* le bound, cumulative; rev *)
  mutable inf_count : int option;
  mutable p_sum : float option;
  mutable p_count : int option;
}

let strip_suffix ~suffix s =
  if String.length s > String.length suffix
     && String.ends_with ~suffix s
  then Some (String.sub s 0 (String.length s - String.length suffix))
  else None

let parse_histograms text =
  let families : (string, partial) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let family name =
    match Hashtbl.find_opt families name with
    | Some p -> p
    | None ->
        let p =
          { bucket_rows = []; inf_count = None; p_sum = None; p_count = None }
        in
        Hashtbl.add families name p;
        order := name :: !order;
        p
  in
  let bucket_line line =
    (* name_bucket{le="<bound>"} <cumulative> *)
    match String.index_opt line '{' with
    | None -> None
    | Some brace -> (
        match strip_suffix ~suffix:"_bucket" (String.sub line 0 brace) with
        | None -> None
        | Some name -> (
            match String.index_from_opt line brace '}' with
            | None -> None
            | Some close ->
                let label = String.sub line (brace + 1) (close - brace - 1) in
                let value =
                  String.trim
                    (String.sub line (close + 1)
                       (String.length line - close - 1))
                in
                let bound =
                  match String.split_on_char '"' label with
                  | [ "le="; b; "" ] -> Some b
                  | _ -> None
                in
                match (bound, int_of_string_opt value) with
                | Some bound, Some n -> Some (name, bound, n)
                | _ -> None))
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" && line.[0] <> '#' then
           match bucket_line line with
           | Some (name, "+Inf", n) -> (family name).inf_count <- Some n
           | Some (name, bound, n) -> (
               match float_of_string_opt bound with
               | Some b ->
                   let p = family name in
                   p.bucket_rows <- (b, n) :: p.bucket_rows
               | None -> ())
           | None -> (
               match String.index_opt line ' ' with
               | None -> ()
               | Some space -> (
                   let key = String.sub line 0 space in
                   let value =
                     String.sub line (space + 1)
                       (String.length line - space - 1)
                   in
                   match strip_suffix ~suffix:"_sum" key with
                   | Some name ->
                       (family name).p_sum <- float_of_string_opt value
                   | None -> (
                       match strip_suffix ~suffix:"_count" key with
                       | Some name ->
                           (family name).p_count <- int_of_string_opt value
                       | None -> ()))));
  List.rev !order
  |> List.filter_map (fun name ->
         let p = Hashtbl.find families name in
         match (p.inf_count, p.p_sum, p.p_count) with
         | Some total, Some sum, Some count when count = total ->
             let rows = List.rev p.bucket_rows in
             let upper_bounds = Array.of_list (List.map fst rows) in
             let cumulative = Array.of_list (List.map snd rows) in
             let n = Array.length cumulative in
             let monotone = ref true in
             let counts =
               Array.init (n + 1) (fun i ->
                   let c =
                     if i = 0 then if n = 0 then total else cumulative.(0)
                     else if i < n then cumulative.(i) - cumulative.(i - 1)
                     else total - cumulative.(n - 1)
                   in
                   if c < 0 then monotone := false;
                   c)
             in
             if !monotone then
               Some
                 ( name,
                   {
                     Histogram.upper_bounds;
                     counts;
                     count = total;
                     sum;
                   } )
             else None
         | _ -> None)

(* Scalar samples — counters and gauges, plus the _sum/_count series of
   histograms — for consumers that watch individual values rather than
   whole histograms (rip_top).  Label-carrying series are skipped: this
   registry never emits them. *)
let parse_scalars text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         if line = "" || line.[0] = '#' || String.contains line '{' then None
         else
           match String.index_opt line ' ' with
           | None -> None
           | Some space ->
               let name = String.sub line 0 space in
               let value =
                 String.trim
                   (String.sub line (space + 1)
                      (String.length line - space - 1))
               in
               if valid_name name then
                 Option.map (fun v -> (name, v)) (float_of_string_opt value)
               else None)

let scalar text name =
  (* First match wins; an exposition renders each family once. *)
  List.assoc_opt name (parse_scalars text)
