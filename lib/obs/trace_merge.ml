(* Merge per-process Chrome-trace dumps into one cross-process
   timeline.  Each dump's [ripMeta] (written by Trace.to_chrome_json)
   carries the tracer's scope, pid and epoch; epochs are instants on
   the machine-wide CLOCK_MONOTONIC timebase, so rebasing every dump
   onto the earliest epoch aligns the processes without any wall
   clock.  Span ids are already collision-free across processes
   (Trace.scoped_span_id mixes the scope into the hash), so events can
   be concatenated and grouped by the [trace_id] arg alone. *)

type dump = {
  label : string;
  pid : int;
  epoch_us : float;
  events : Json.t list;  (* the raw traceEvents objects *)
}

let parse ?label text =
  match Json.parse text with
  | Error e -> Error (Printf.sprintf "bad trace JSON: %s" e)
  | Ok json -> (
      match Option.bind (Json.member "traceEvents" json) Json.list_value with
      | None -> Error "no traceEvents array"
      | Some events ->
          let meta = Json.member "ripMeta" json in
          let meta_str key =
            Option.bind meta (fun m ->
                Option.bind (Json.member key m) Json.string_value)
          in
          let meta_num key =
            Option.bind meta (fun m ->
                Option.bind (Json.member key m) Json.float_value)
          in
          let scope = Option.value (meta_str "scope") ~default:"" in
          let label =
            match label with
            | Some l -> l
            | None -> if scope = "" then "process" else scope
          in
          Ok
            {
              label;
              pid =
                (match
                   Option.bind meta (fun m ->
                       Option.bind (Json.member "pid" m) Json.int_value)
                 with
                | Some pid -> pid
                | None -> 0);
              epoch_us = Option.value (meta_num "epoch_us") ~default:0.0;
              events;
            })

let load_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let text = really_input_string ic (in_channel_length ic) in
          parse ~label:(Filename.remove_extension (Filename.basename path))
            text)

(* --- Merging ------------------------------------------------------------- *)

let set_field key value fields =
  (key, value) :: List.filter (fun (k, _) -> not (String.equal k key)) fields

let merge dumps =
  let base_epoch =
    List.fold_left
      (fun acc d -> Float.min acc d.epoch_us)
      Float.infinity dumps
  in
  let base_epoch = if Float.is_finite base_epoch then base_epoch else 0.0 in
  (* Distinct processes must land on distinct Chrome pids even when the
     dumps carry none (pid 0) or collide; remap by dump index then. *)
  let pids = List.map (fun d -> d.pid) dumps in
  let collide =
    List.exists (fun p -> p = 0) pids
    || List.length (List.sort_uniq Int.compare pids) < List.length pids
  in
  let events =
    List.concat
      (List.mapi
         (fun index d ->
           let pid = if collide then index + 1 else d.pid in
           let shift = d.epoch_us -. base_epoch in
           let name_meta =
             Json.Obj
               [
                 ("name", Json.String "process_name");
                 ("ph", Json.String "M");
                 ("pid", Json.Int pid);
                 ("tid", Json.Int 0);
                 ("args", Json.Obj [ ("name", Json.String d.label) ]);
               ]
           in
           name_meta
           :: List.filter_map
                (fun event ->
                  match event with
                  | Json.Obj fields ->
                      (* Drop per-dump metadata (re-emitted above) and
                         rebase/rebadge the real events. *)
                      let ph =
                        Option.bind (Json.member "ph" event) Json.string_value
                      in
                      if
                        (match ph with Some "M" -> true | _ -> false)
                      then None
                      else
                        let fields =
                          match
                            Option.bind (Json.member "ts" event)
                              Json.float_value
                          with
                          | Some ts ->
                              set_field "ts" (Json.Float (ts +. shift)) fields
                          | None -> fields
                        in
                        Some (Json.Obj (set_field "pid" (Json.Int pid) fields))
                  | _ -> None)
                d.events)
         dumps)
  in
  Json.to_string
    (Json.Obj
       [
         ("displayTimeUnit", Json.String "ms");
         ("traceEvents", Json.List events);
       ])
  ^ "\n"

let merge_files paths =
  let rec load acc = function
    | [] -> Ok (List.rev acc)
    | path :: rest -> (
        match load_file path with
        | Ok dump -> load (dump :: acc) rest
        | Error e -> Error (Printf.sprintf "%s: %s" path e))
  in
  match load [] paths with
  | Error e -> Error e
  | Ok dumps -> Ok (merge dumps)

(* --- Cross-process trace inspection -------------------------------------- *)

type trace_span = {
  span_process : string;
  span_name : string;
  span_cat : string;
  span_args : (string * string) list;
}

let event_arg key event =
  Option.bind (Json.member "args" event) (fun args ->
      Option.bind (Json.member key args) Json.string_value)

let traces dumps =
  let table : (string, trace_span list ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun d ->
      List.iter
        (fun event ->
          match event_arg "trace_id" event with
          | None -> ()
          | Some trace_id ->
              let bucket =
                match Hashtbl.find_opt table trace_id with
                | Some b -> b
                | None ->
                    let b = ref [] in
                    Hashtbl.add table trace_id b;
                    order := trace_id :: !order;
                    b
              in
              let str key =
                Option.value
                  (Option.bind (Json.member key event) Json.string_value)
                  ~default:""
              in
              let span_args =
                match Json.member "args" event with
                | Some (Json.Obj fields) ->
                    List.filter_map
                      (fun (k, v) ->
                        Option.map (fun s -> (k, s)) (Json.string_value v))
                      fields
                | _ -> []
              in
              bucket :=
                {
                  span_process = d.label;
                  span_name = str "name";
                  span_cat = str "cat";
                  span_args;
                }
                :: !bucket)
        d.events)
    dumps;
  List.rev !order
  |> List.map (fun trace_id ->
         match Hashtbl.find_opt table trace_id with
         | Some bucket -> (trace_id, List.rev !bucket)
         | None -> (trace_id, []))
