(* A minimal zero-dependency JSON reader/writer — just enough for the
   observability artifacts this repo produces and consumes itself
   (Chrome-trace dumps, wide-event spool lines).  Not a general JSON
   library: \uXXXX escapes above U+00FF decode to '?', and numbers are
   either OCaml ints or floats. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- Printing ----------------------------------------------------------- *)

let escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let float_str v =
  if Float.is_nan v then "null"  (* NaN is not JSON; absent beats invalid *)
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec write buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float v -> Buffer.add_string buffer (float_str v)
  | String s ->
      Buffer.add_char buffer '"';
      Buffer.add_string buffer (escape s);
      Buffer.add_char buffer '"'
  | List items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buffer ',';
          write buffer item)
        items;
      Buffer.add_char buffer ']'
  | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buffer ',';
          Buffer.add_char buffer '"';
          Buffer.add_string buffer (escape k);
          Buffer.add_string buffer "\":";
          write buffer v)
        fields;
      Buffer.add_char buffer '}'

let to_string value =
  let buffer = Buffer.create 256 in
  write buffer value;
  Buffer.contents buffer

(* --- Parsing ------------------------------------------------------------ *)

exception Bad of string

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c message =
  raise (Bad (Printf.sprintf "%s at offset %d" message c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some got when got = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.text
    && String.equal (String.sub c.text c.pos n) word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let hex_value ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> raise (Bad "bad \\u escape")

let parse_string_body c =
  let buffer = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char buffer '"'
            | '\\' -> Buffer.add_char buffer '\\'
            | '/' -> Buffer.add_char buffer '/'
            | 'b' -> Buffer.add_char buffer '\b'
            | 'f' -> Buffer.add_char buffer '\012'
            | 'n' -> Buffer.add_char buffer '\n'
            | 'r' -> Buffer.add_char buffer '\r'
            | 't' -> Buffer.add_char buffer '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.text then
                  fail c "truncated \\u escape";
                let code =
                  (hex_value c.text.[c.pos] * 4096)
                  + (hex_value c.text.[c.pos + 1] * 256)
                  + (hex_value c.text.[c.pos + 2] * 16)
                  + hex_value c.text.[c.pos + 3]
                in
                c.pos <- c.pos + 4;
                Buffer.add_char buffer
                  (if code < 0x100 then Char.chr code else '?')
            | _ -> fail c "unknown escape");
            loop ())
    | Some ch ->
        advance c;
        Buffer.add_char buffer ch;
        loop ()
  in
  loop ();
  Buffer.contents buffer

let parse_number c =
  let start = c.pos in
  let is_number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec scan () =
    match peek c with
    | Some ch when is_number_char ch ->
        advance c;
        scan ()
    | _ -> ()
  in
  scan ();
  let token = String.sub c.text start (c.pos - start) in
  let looks_int =
    String.for_all (function '0' .. '9' | '-' -> true | _ -> false) token
  in
  if looks_int then
    match int_of_string_opt token with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt token with
        | Some v -> Float v
        | None -> fail c (Printf.sprintf "bad number %S" token))
  else
    match float_of_string_opt token with
    | Some v -> Float v
    | None -> fail c (Printf.sprintf "bad number %S" token)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' ->
      advance c;
      String (parse_string_body c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          expect c '"';
          let key = parse_string_body c in
          skip_ws c;
          expect c ':';
          let value = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((key, value) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, value) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let value = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (value :: acc)
          | Some ']' ->
              advance c;
              List.rev (value :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (items [])
      end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let parse text =
  let c = { text; pos = 0 } in
  match parse_value c with
  | value ->
      skip_ws c;
      if c.pos = String.length text then Ok value
      else Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
  | exception Bad message -> Error message

(* --- Accessors ---------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let string_value = function String s -> Some s | _ -> None

let int_value = function
  | Int i -> Some i
  | Float v when Float.is_integer v && Float.abs v < 1e15 ->
      Some (int_of_float v)
  | _ -> None

let float_value = function
  | Int i -> Some (float_of_int i)
  | Float v -> Some v
  | _ -> None

let bool_value = function Bool b -> Some b | _ -> None
let list_value = function List items -> Some items | _ -> None
