(* Wide events: one structured JSON line per request ("canonical log
   lines"), spooled per process with tail sampling.  The schema is
   versioned; every line carries [schema] so offline consumers
   (rip_trace query) can reject lines they do not understand instead
   of misreading them. *)

let schema_version = 1

type t = {
  schema : int;
  process : string;  (* emitting process scope: "router", "s0", ... *)
  trace_id : string;  (* "" when the request was untraced *)
  digest : string;
  shard : string;  (* serving shard id ("" when none was chosen) *)
  outcome : string;
  degrade_reason : string;  (* "" unless outcome = "degraded" *)
  cache : string;  (* "hit" | "miss" | "" *)
  hedged : bool;
  hedge_won : bool;
  failover : bool;
  spilled : bool;
  breaker_skip : bool;  (* an open breaker excluded the primary shard *)
  dp_backend : string;
  labels_pruned : int;
  queue_wait : float;  (* seconds *)
  latency : float;  (* seconds, request wall time at the emitter *)
  deadline_slack : float;  (* seconds left at completion; nan = no deadline *)
}

let empty =
  {
    schema = schema_version;
    process = "";
    trace_id = "";
    digest = "";
    shard = "";
    outcome = "";
    degrade_reason = "";
    cache = "";
    hedged = false;
    hedge_won = false;
    failover = false;
    spilled = false;
    breaker_skip = false;
    dp_backend = "";
    labels_pruned = 0;
    queue_wait = 0.0;
    latency = 0.0;
    deadline_slack = Float.nan;
  }

let to_json event =
  Json.Obj
    [
      ("schema", Json.Int event.schema);
      ("process", Json.String event.process);
      ("trace_id", Json.String event.trace_id);
      ("digest", Json.String event.digest);
      ("shard", Json.String event.shard);
      ("outcome", Json.String event.outcome);
      ("degrade_reason", Json.String event.degrade_reason);
      ("cache", Json.String event.cache);
      ("hedged", Json.Bool event.hedged);
      ("hedge_won", Json.Bool event.hedge_won);
      ("failover", Json.Bool event.failover);
      ("spilled", Json.Bool event.spilled);
      ("breaker_skip", Json.Bool event.breaker_skip);
      ("dp_backend", Json.String event.dp_backend);
      ("labels_pruned", Json.Int event.labels_pruned);
      ("queue_wait", Json.Float event.queue_wait);
      ("latency", Json.Float event.latency);
      ("deadline_slack", Json.Float event.deadline_slack);
    ]

let to_line event = Json.to_string (to_json event)

let of_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok json -> (
      let str key fallback =
        match Option.bind (Json.member key json) Json.string_value with
        | Some s -> s
        | None -> fallback
      in
      let flag key =
        match Option.bind (Json.member key json) Json.bool_value with
        | Some b -> b
        | None -> false
      in
      let num key fallback =
        match Option.bind (Json.member key json) Json.float_value with
        | Some v -> v
        | None -> fallback
      in
      let int key fallback =
        match Option.bind (Json.member key json) Json.int_value with
        | Some v -> v
        | None -> fallback
      in
      match Option.bind (Json.member "schema" json) Json.int_value with
      | Some schema when schema = schema_version ->
          Ok
            {
              schema;
              process = str "process" "";
              trace_id = str "trace_id" "";
              digest = str "digest" "";
              shard = str "shard" "";
              outcome = str "outcome" "";
              degrade_reason = str "degrade_reason" "";
              cache = str "cache" "";
              hedged = flag "hedged";
              hedge_won = flag "hedge_won";
              failover = flag "failover";
              spilled = flag "spilled";
              breaker_skip = flag "breaker_skip";
              dp_backend = str "dp_backend" "";
              labels_pruned = int "labels_pruned" 0;
              queue_wait = num "queue_wait" 0.0;
              latency = num "latency" 0.0;
              deadline_slack = num "deadline_slack" Float.nan;
            }
      | Some schema ->
          Error (Printf.sprintf "unsupported wide-event schema %d" schema)
      | None -> Error "missing wide-event schema")

(* --- Tail sampling ------------------------------------------------------- *)

type sampler = {
  latency_threshold : float;  (* keep everything at or above, seconds *)
  sample_ratio : float;  (* [0,1]: fraction of the boring rest to keep *)
}

let default_sampler = { latency_threshold = 0.1; sample_ratio = 0.05 }
let keep_all = { latency_threshold = 0.0; sample_ratio = 1.0 }

(* The tail-sampling contract: anything anomalous is kept at 100% so
   offline counts of errors / timeouts / degradations / hedges are
   exact, not estimates. *)
let interesting event =
  (match event.outcome with
  | "fresh" | "cached" -> false
  | _ -> true)
  || event.hedged || event.hedge_won || event.failover || event.spilled
  || event.breaker_skip

(* Deterministic [0,1) from the event identity — no wall clock, no
   PRNG state, so a replayed workload samples identically. *)
let hash01 event =
  let hex =
    String.sub
      (Digest.to_hex (Digest.string (event.trace_id ^ "\x00" ^ event.digest)))
      0 12
  in
  float_of_string ("0x" ^ hex) /. 16777216.0 /. 16777216.0 /. 16.0

let keep sampler event =
  interesting event
  || event.latency >= sampler.latency_threshold
  || sampler.sample_ratio >= 1.0
  || hash01 event < sampler.sample_ratio

(* --- The bounded spool --------------------------------------------------- *)

type spool = {
  path : string;
  max_bytes : int;
  sampler : sampler;
  mutex : Mutex.t;
  mutable channel : out_channel option;
  mutable bytes : int;
  mutable written : int;
  mutable sampled_out : int;
}

let default_max_bytes = 4 * 1024 * 1024

let create ?(max_bytes = default_max_bytes) ?(sampler = default_sampler) path =
  if max_bytes < 4096 then
    invalid_arg "Wide_event.create: max_bytes must be at least 4096";
  if not (sampler.sample_ratio >= 0.0 && sampler.sample_ratio <= 1.0) then
    invalid_arg "Wide_event.create: sample_ratio outside [0,1]";
  if not (sampler.latency_threshold >= 0.0) then
    invalid_arg "Wide_event.create: negative latency_threshold";
  {
    path;
    max_bytes;
    sampler;
    mutex = Mutex.create ();
    channel = Some (open_out path);
    bytes = 0;
    written = 0;
    sampled_out = 0;
  }

let path spool = spool.path
let written spool = spool.written
let sampled_out spool = spool.sampled_out

(* Rotation keeps on-disk usage bounded at ~2x max_bytes: the filled
   spool becomes [path.1] (clobbering the previous generation) and a
   fresh file takes over.  Anomalous events older than two generations
   are gone — a spool is a flight recorder, not an archive. *)
let rotate_locked spool channel =
  close_out channel;
  (try Sys.rename spool.path (spool.path ^ ".1") with Sys_error _ -> ());
  let channel = open_out spool.path in
  spool.channel <- Some channel;
  spool.bytes <- 0;
  channel

let emit spool event =
  if keep spool.sampler event then begin
    let line = to_line event in
    Mutex.lock spool.mutex;
    (match spool.channel with
    | None -> ()
    | Some channel ->
        let channel =
          if spool.bytes + String.length line + 1 > spool.max_bytes then
            rotate_locked spool channel
          else channel
        in
        output_string channel line;
        output_char channel '\n';
        flush channel;
        spool.bytes <- spool.bytes + String.length line + 1;
        spool.written <- spool.written + 1);
    Mutex.unlock spool.mutex
  end
  else begin
    Mutex.lock spool.mutex;
    spool.sampled_out <- spool.sampled_out + 1;
    Mutex.unlock spool.mutex
  end

let close spool =
  Mutex.lock spool.mutex;
  (match spool.channel with
  | Some channel ->
      close_out channel;
      spool.channel <- None
  | None -> ());
  Mutex.unlock spool.mutex

(* --- Offline loading ----------------------------------------------------- *)

let load_file path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec loop acc =
            match input_line ic with
            | exception End_of_file -> List.rev acc
            | line -> (
                match of_line line with
                | Ok event -> loop (event :: acc)
                | Error _ -> loop acc  (* torn tail / foreign line *))
          in
          loop [])

let load_files paths = List.concat_map load_file paths
