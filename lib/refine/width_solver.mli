(** Continuous optimal repeater widths for fixed locations — Eqs. (5) and
    (8) of the paper (REFINE lines 1 and 7).

    Given repeater positions [x_1 < ... < x_n], find widths [w_i > 0] and
    the Lagrange multiplier [lambda] with

    - stationarity (Eq. (8)):
      [1 + lambda (Co (R_{i-1} + Rs/w_{i-1}) - Rs (C_i + Co w_{i+1}) / w_i^2) = 0]
    - active delay constraint (Eq. (5)): [tau_total(w) = tau_t]

    Two backends: [Gauss_seidel] exploits that for fixed [lambda] Eq. (8)
    yields the closed form
    [w_i = sqrt (Rs (C_i + Co w_{i+1}) / (1/lambda + Co (R_{i-1} + Rs/w_{i-1})))]
    whose sweeps converge geometrically, while [tau_total(w(lambda))] is
    strictly decreasing in [lambda], so the outer constraint is solved by
    monotone bracketing.  [Newton] runs a damped Newton–Raphson on the full
    (n+1)-dimensional KKT system (the method the paper names), seeded by a
    loose Gauss–Seidel pass.  Both agree to solver tolerance. *)

type backend = Gauss_seidel | Newton

type result = {
  widths : float array;  (** optimal continuous widths, length n *)
  lambda : float;  (** Lagrange multiplier, > 0 *)
  total_width : float;  (** sum of [widths] *)
  delay : float;  (** [tau_total] at the solution; equals the budget *)
  evaluations : int;  (** inner-solve invocations (diagnostics) *)
}

val tau_total :
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t ->
  positions:float array -> widths:float array -> float
(** Eq. (2) for continuous widths at the given positions (driver and
    receiver widths come from the net). *)

val min_delay_sizing :
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t ->
  positions:float array -> float array
(** The [lambda -> infinity] limit of Eq. (8): the fastest continuous
    sizing for these positions; its [tau_total] is the feasibility bound. *)

val min_delay_sizing_bounded :
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t ->
  positions:float array -> min_width:float -> max_width:float -> float array
(** As {!min_delay_sizing} with every width projected into
    [min_width, max_width] during the sweeps (projected fixed point) — the
    fastest *manufacturable* sizing, used by the analytical tau_min. *)

val solve :
  ?backend:backend ->
  ?hooks:Rip_numerics.Newton.probe_event Rip_numerics.Hooks.t ->
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t ->
  positions:float array -> budget:float -> result option
(** [None] when even {!min_delay_sizing} misses the budget (the positions
    are infeasible).  With empty [positions] the answer is [Some] with no
    widths when the bare wire meets the budget, [None] otherwise.
    [hooks] is forwarded to {!Rip_numerics.Newton.solve_system} and only
    ever consulted by the [Newton] backend; absent, it costs nothing.
    @raise Invalid_argument when positions are not strictly increasing or
    lie outside (0, L). *)
