module Geometry = Rip_net.Geometry
module Net = Rip_net.Net
module Repeater_model = Rip_tech.Repeater_model
module Bracket = Rip_numerics.Bracket
module Newton_solver = Rip_numerics.Newton

type backend = Gauss_seidel | Newton

type result = {
  widths : float array;
  lambda : float;
  total_width : float;
  delay : float;
  evaluations : int;
}

(* Per-problem precomputation: stage i (0..n) spans positions p_i..p_{i+1}
   with p_0 = 0 and p_{n+1} = L.  wire_r/wire_c/wire_d are the span's total
   resistance, capacitance and distributed Elmore term. *)
type stages = {
  rs : float;
  co : float;
  intrinsic : float;  (* Rs * Cp per stage *)
  n : int;
  wire_r : float array;  (* length n+1 *)
  wire_c : float array;
  wire_d : float array;
  driver_width : float;
  receiver_width : float;
}

let build_stages geometry repeater ~positions =
  let net = Geometry.net geometry in
  let length = Geometry.total_length geometry in
  let n = Array.length positions in
  Array.iteri
    (fun i x ->
      if x <= 0.0 || x >= length then
        invalid_arg "Width_solver: position outside (0, L)";
      if i > 0 && x <= positions.(i - 1) then
        invalid_arg "Width_solver: positions must be strictly increasing")
    positions;
  let point i =
    if i = 0 then 0.0 else if i = n + 1 then length else positions.(i - 1)
  in
  let span f i = f geometry (point i) (point (i + 1)) in
  {
    rs = repeater.Repeater_model.rs;
    co = repeater.Repeater_model.co;
    intrinsic = Repeater_model.intrinsic_delay repeater;
    n;
    wire_r = Array.init (n + 1) (span Geometry.resistance_between);
    wire_c = Array.init (n + 1) (span Geometry.capacitance_between);
    wire_d = Array.init (n + 1) (span Geometry.wire_elmore_between);
    driver_width = net.Net.driver_width;
    receiver_width = net.Net.receiver_width;
  }

(* Width of the gate at endpoint index i in 0..n+1 given interior widths. *)
let endpoint_width st widths i =
  if i = 0 then st.driver_width
  else if i = st.n + 1 then st.receiver_width
  else widths.(i - 1)

let delay_of st widths =
  let total = ref 0.0 in
  for i = 0 to st.n do
    let wa = endpoint_width st widths i in
    let wb = endpoint_width st widths (i + 1) in
    total :=
      !total +. st.intrinsic
      +. (st.rs /. wa *. (st.wire_c.(i) +. (st.co *. wb)))
      +. (st.wire_r.(i) *. st.co *. wb)
      +. st.wire_d.(i)
  done;
  !total

(* d tau_total / d w_i for interior repeater i (1-based in the math). *)
let delay_gradient st widths i =
  let wi = widths.(i - 1) in
  let w_next = endpoint_width st widths (i + 1) in
  let w_prev = endpoint_width st widths (i - 1) in
  (st.co *. (st.wire_r.(i - 1) +. (st.rs /. w_prev)))
  -. (st.rs *. (st.wire_c.(i) +. (st.co *. w_next)) /. (wi *. wi))

(* One Gauss-Seidel sweep of the Eq. (8) closed form at fixed 1/lambda,
   projecting each width into [w_lo, w_hi].  Returns the largest relative
   width change. *)
let sweep ?(w_lo = 0.0) ?(w_hi = Float.infinity) st widths inv_lambda =
  let worst = ref 0.0 in
  for i = 1 to st.n do
    let w_prev = endpoint_width st widths (i - 1) in
    let w_next = endpoint_width st widths (i + 1) in
    let numerator = st.rs *. (st.wire_c.(i) +. (st.co *. w_next)) in
    let denominator =
      inv_lambda +. (st.co *. (st.wire_r.(i - 1) +. (st.rs /. w_prev)))
    in
    let w = Float.max w_lo (Float.min w_hi (sqrt (numerator /. denominator))) in
    let old = widths.(i - 1) in
    widths.(i - 1) <- w;
    worst := Float.max !worst (Float.abs (w -. old) /. Float.max w 1e-12)
  done;
  !worst

let converge_widths ?w_lo ?w_hi st widths inv_lambda =
  let rec loop k =
    let change = sweep ?w_lo ?w_hi st widths inv_lambda in
    if change > 1e-13 && k < 500 then loop (k + 1) else k + 1
  in
  loop 0

let min_delay_sizing_stages st =
  let widths = Array.make st.n 100.0 in
  ignore (converge_widths st widths 0.0);
  widths

let min_delay_sizing geometry repeater ~positions =
  min_delay_sizing_stages (build_stages geometry repeater ~positions)

let min_delay_sizing_bounded geometry repeater ~positions ~min_width
    ~max_width =
  let st = build_stages geometry repeater ~positions in
  let widths = Array.make st.n (0.5 *. (min_width +. max_width)) in
  ignore (converge_widths ~w_lo:min_width ~w_hi:max_width st widths 0.0);
  widths

let tau_total geometry repeater ~positions ~widths =
  let st = build_stages geometry repeater ~positions in
  if Array.length widths <> st.n then
    invalid_arg "Width_solver.tau_total: width/position count mismatch";
  delay_of st widths

let solve_gauss_seidel st ~budget =
  let evaluations = ref 0 in
  let widths = min_delay_sizing_stages st in
  let fastest = delay_of st widths in
  if fastest > budget then None
  else begin
    (* tau(w(lambda)) is decreasing in lambda, i.e. increasing in
       inv_lambda; find inv_lambda with tau = budget.  Warm-start each
       inner solve from the previous widths. *)
    let f inv_lambda =
      incr evaluations;
      ignore (converge_widths st widths inv_lambda);
      delay_of st widths -. budget
    in
    (* Scale guess: inv_lambda has units of d tau/d w. *)
    let scale =
      Float.max 1e-30 (Float.abs (fastest /. Float.max 1.0 (float_of_int st.n) /. 100.0))
    in
    match
      Bracket.find_root ~f ~lo:(1e-6 *. scale) ~hi:(1e3 *. scale) ~tol:1e-13
    with
    | Bracket.No_sign_change _ -> None
    | Bracket.Root inv_lambda ->
        ignore (converge_widths st widths inv_lambda);
        Some
          {
            widths;
            lambda = (if inv_lambda = 0.0 then Float.infinity else 1.0 /. inv_lambda);
            total_width = Array.fold_left ( +. ) 0.0 widths;
            delay = delay_of st widths;
            evaluations = !evaluations;
          }
  end

(* Full KKT Newton: unknowns z = (w_1..w_n, lambda); residuals are Eq. (8)
   for each i and Eq. (5).  Seeded from a loose Gauss-Seidel solve. *)
let solve_newton ?hooks st ~budget =
  match solve_gauss_seidel st ~budget with
  | None -> None
  | Some seed ->
      let n = st.n in
      let unpack z = (Array.sub z 0 n, z.(n)) in
      let residual z =
        let widths, lambda = unpack z in
        let r = Array.make (n + 1) 0.0 in
        for i = 1 to n do
          r.(i - 1) <- 1.0 +. (lambda *. delay_gradient st widths i)
        done;
        r.(n) <- delay_of st widths -. budget;
        r
      in
      let jacobian z =
        let widths, lambda = unpack z in
        let j = Array.make_matrix (n + 1) (n + 1) 0.0 in
        for i = 1 to n do
          let row = j.(i - 1) in
          let wi = widths.(i - 1) in
          let w_next = endpoint_width st widths (i + 1) in
          (* d/dw_i of Eq. (8) residual *)
          row.(i - 1) <-
            lambda *. 2.0 *. st.rs
            *. (st.wire_c.(i) +. (st.co *. w_next))
            /. (wi *. wi *. wi);
          (* d/dw_{i-1}: only when the upstream gate is a repeater *)
          if i - 1 >= 1 then begin
            let wp = widths.(i - 2) in
            row.(i - 2) <- lambda *. st.co *. (-.st.rs /. (wp *. wp))
          end;
          (* d/dw_{i+1} *)
          if i + 1 <= n then
            row.(i) <- lambda *. (-.st.rs *. st.co) /. (wi *. wi);
          row.(n) <- delay_gradient st widths i
        done;
        for i = 1 to n do
          j.(n).(i - 1) <- delay_gradient st widths i
        done;
        j.(n).(n) <- 0.0;
        j
      in
      let init = Array.append seed.widths [| seed.lambda |] in
      let lower_bounds = Array.make (n + 1) 1e-6 in
      let outcome =
        Newton_solver.solve_system ~residual ~jacobian ~init ~tol:1e-9
          ~lower_bounds ?hooks ()
      in
      (match outcome.Newton_solver.status with
      | Newton_solver.Converged _ ->
          let widths, lambda = unpack outcome.Newton_solver.solution in
          Some
            {
              widths;
              lambda;
              total_width = Array.fold_left ( +. ) 0.0 widths;
              delay = delay_of st widths;
              evaluations = seed.evaluations;
            }
      | Newton_solver.Max_iterations | Newton_solver.Diverged ->
          (* Fall back to the (already valid) Gauss-Seidel answer. *)
          Some seed)

let solve ?(backend = Gauss_seidel) ?hooks geometry repeater ~positions
    ~budget =
  let st = build_stages geometry repeater ~positions in
  if st.n = 0 then
    if delay_of st [||] <= budget then
      Some { widths = [||]; lambda = 0.0; total_width = 0.0;
             delay = delay_of st [||]; evaluations = 0 }
    else None
  else
    match backend with
    | Gauss_seidel -> solve_gauss_seidel st ~budget
    | Newton -> solve_newton ?hooks st ~budget
