module Geometry = Rip_net.Geometry
module Net = Rip_net.Net
module Solution = Rip_elmore.Solution
module Hooks = Rip_numerics.Hooks

type config = {
  move_step : float;
  epsilon : float;
  max_iterations : int;
  min_gap : float;
  patience : int;
  hop_zones : bool;
  max_hop : float;
  backend : Width_solver.backend;
}

let default_config =
  { move_step = 50.0; epsilon = 1e-4; max_iterations = 256; min_gap = 1.0;
    patience = 4; hop_zones = false; max_hop = 800.0;
    backend = Width_solver.Gauss_seidel }

type probe_event =
  | Iteration of { iteration : int; moved : int; total_width : float }
  | Newton of Rip_numerics.Newton.probe_event

type outcome = {
  solution : Solution.t;
  lambda : float;
  iterations : int;
  moves : int;
  initial_total_width : float;
  total_width : float;
  delay : float;
  converged : bool;
}

let solution_of positions widths =
  Solution.create
    (List.combine (Array.to_list positions) (Array.to_list widths))

(* Apply one round of moves left to right.  The left bound uses the
   neighbour's already-updated position, the right bound the old one, so
   simultaneous opposite moves can never cross.  Returns the number of
   repeaters actually moved. *)
let apply_moves config net length step positions directions =
  let n = Array.length positions in
  let moved = ref 0 in
  for i = 0 to n - 1 do
    let target =
      match directions.(i) with
      | Movement.Stay -> positions.(i)
      | Movement.Downstream -> positions.(i) +. step
      | Movement.Upstream -> positions.(i) -. step
    in
    if target <> positions.(i) then begin
      let lo =
        if i = 0 then config.min_gap else positions.(i - 1) +. config.min_gap
      in
      let hi =
        if i = n - 1 then length -. config.min_gap
        else positions.(i + 1) -. config.min_gap
      in
      let clamped = Float.max lo (Float.min hi target) in
      (* Fig. 5: a repeater is not moved if the move would place it inside
         a forbidden zone — unless zone hopping is enabled (the paper's
         future-work variant), in which case it lands on the far edge. *)
      let clamped =
        if Net.position_legal net clamped || not config.hop_zones then
          clamped
        else
          let zones = net.Net.zones in
          let hopped =
            match directions.(i) with
            | Movement.Downstream ->
                Rip_net.Zone.first_allowed_at_or_after zones clamped
            | Movement.Upstream ->
                Rip_net.Zone.last_allowed_at_or_before zones clamped
            | Movement.Stay -> clamped
          in
          if
            Float.abs (hopped -. positions.(i)) <= config.max_hop
            && hopped >= lo && hopped <= hi
          then hopped
          else clamped
      in
      if clamped <> positions.(i) && Net.position_legal net clamped then begin
        positions.(i) <- clamped;
        incr moved
      end
    end
  done;
  !moved

type state = {
  mutable current : Width_solver.result;
  mutable step : float;
  mutable quiet : int;  (* consecutive below-epsilon iterations *)
  mutable moves : int;
  mutable iterations : int;
  mutable best_solution : Solution.t;
  mutable best : Width_solver.result;
}

let run ?(config = default_config) ?(hooks = Hooks.default) geometry repeater
    ~budget ~initial =
  let net = Geometry.net geometry in
  let length = Geometry.total_length geometry in
  let positions = Array.of_list (Solution.positions initial) in
  let probe = hooks.Hooks.probe in
  (* Newton events flow through the same bundle, re-tagged; when [probe]
     is absent the contramapped probe is also [None], so the width solver
     allocates nothing. *)
  let newton_hooks = Hooks.contramap (fun e -> Newton e) hooks in
  let solve () =
    Width_solver.solve ~backend:config.backend ~hooks:newton_hooks geometry
      repeater ~positions ~budget
  in
  match solve () with
  | None -> None
  | Some first ->
      let st =
        { current = first; step = config.move_step; quiet = 0; moves = 0;
          iterations = 0;
          best_solution = solution_of positions first.Width_solver.widths;
          best = first }
      in
      let min_step = config.move_step /. 10.0 in
      let finished = ref (Array.length positions = 0) in
      let converged = ref !finished in
      while not !finished do
        (* Iteration-granularity cancellation poll. *)
        hooks.Hooks.cancel ();
        if st.iterations >= config.max_iterations then finished := true
        else begin
          st.iterations <- st.iterations + 1;
          let derivatives =
            Movement.location_derivatives geometry repeater ~positions
              ~widths:st.current.Width_solver.widths
          in
          let directions =
            Array.map
              (Movement.preferred_direction
                 ~lambda:st.current.Width_solver.lambda)
              derivatives
          in
          let saved = Array.copy positions in
          let moved =
            apply_moves config net length st.step positions directions
          in
          (if moved = 0 then begin
            converged := true;
            finished := true
          end
          else begin
            st.moves <- st.moves + moved;
            match solve () with
            | None ->
                (* The move round broke feasibility: revert and stop. *)
                Array.blit saved 0 positions 0 (Array.length saved);
                finished := true
            | Some next ->
                let gain =
                  (st.current.Width_solver.total_width
                  -. next.Width_solver.total_width)
                  /. st.current.Width_solver.total_width
                in
                if gain < 0.0 then begin
                  (* Overshoot: revert the round and walk finer. *)
                  Array.blit saved 0 positions 0 (Array.length saved);
                  st.step <- st.step /. 2.0;
                  if st.step < min_step then begin
                    converged := true;
                    finished := true
                  end
                end
                else begin
                  st.current <- next;
                  if next.Width_solver.total_width
                     < st.best.Width_solver.total_width
                  then begin
                    st.best <- next;
                    st.best_solution <-
                      solution_of positions next.Width_solver.widths
                  end;
                  if gain <= config.epsilon then begin
                    st.quiet <- st.quiet + 1;
                    if st.quiet >= config.patience then begin
                      converged := true;
                      finished := true
                    end
                  end
                  else st.quiet <- 0
                end
          end);
          (* Guarded so the event record is never allocated without a
             listener. *)
          match probe with
          | None -> ()
          | Some f ->
              f
                (Iteration
                   {
                     iteration = st.iterations;
                     moved;
                     total_width = st.current.Width_solver.total_width;
                   })
        end
      done;
      Some
        {
          solution = st.best_solution;
          lambda = st.best.Width_solver.lambda;
          iterations = st.iterations;
          moves = st.moves;
          initial_total_width = first.Width_solver.total_width;
          total_width = st.best.Width_solver.total_width;
          delay = st.best.Width_solver.delay;
          converged = !converged;
        }

let run_callbacks ?config ?cancel ?probe geometry repeater ~budget ~initial =
  run ?config
    ~hooks:(Hooks.make ?cancel ?probe ())
    geometry repeater ~budget ~initial
