(** Algorithm REFINE (Figure 5 of the paper).

    From an initial discrete insertion solution, iteratively (a) solve the
    continuous optimal widths and the multiplier [lambda] for the current
    locations ({!Width_solver}), (b) evaluate the one-sided location
    derivatives ({!Movement}), (c) slide each repeater one step in the
    width-reducing direction — skipping moves that would land inside a
    forbidden zone, cross a neighbour, or leave the net — and (d) repeat
    until the relative total-width improvement stays below [epsilon] for
    [patience] consecutive iterations.  A move round that increases the
    total width is reverted and the step halved (backtracking), so the
    first-order move rule of Eq. (13) cannot oscillate around an optimum;
    the walk ends when the step shrinks below a tenth of [move_step].

    The result carries continuous widths; RIP subsequently re-discretises
    them (library rounding + final DP). *)

type config = {
  move_step : float;  (** the paper's "preselected distance", um *)
  epsilon : float;  (** the stopping threshold eps_0 on relative gain *)
  max_iterations : int;
  min_gap : float;  (** minimum spacing kept between repeaters, um *)
  patience : int;
      (** consecutive below-epsilon iterations tolerated before stopping:
          individual 50 um moves gain little each but add up over a long
          walk, so a single quiet iteration must not end the loop *)
  hop_zones : bool;
      (** the paper's future-work variant: instead of vetoing a move that
          lands inside a forbidden zone, hop to the zone's far edge when
          that stays within [max_hop] of the current position *)
  max_hop : float;  (** um; only used when [hop_zones] *)
  backend : Width_solver.backend;
}

val default_config : config
(** 50 um step, eps_0 = 1e-4, 256 iterations max, 1 um gap, patience 4,
    Gauss-Seidel. *)

type probe_event =
  | Iteration of { iteration : int; moved : int; total_width : float }
      (** One move-round finished: repeaters moved this round and the
          total width after the round's re-solve (unchanged when the
          round was reverted). *)
  | Newton of Rip_numerics.Newton.probe_event
      (** Forwarded from the width solver's KKT Newton backend (only
          emitted when [config.backend = Newton]). *)

type outcome = {
  solution : Rip_elmore.Solution.t;  (** best solution seen (continuous widths) *)
  lambda : float;  (** multiplier at the returned solution *)
  iterations : int;  (** while-loop iterations executed *)
  moves : int;  (** total repeater moves applied *)
  initial_total_width : float;  (** width after the first solve (Line 1) *)
  total_width : float;  (** width of the returned solution *)
  delay : float;  (** its delay; equals the budget to solver tolerance *)
  converged : bool;  (** stopped on epsilon rather than iteration cap *)
}

val run :
  ?config:config ->
  ?hooks:probe_event Rip_numerics.Hooks.t ->
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t ->
  budget:float -> initial:Rip_elmore.Solution.t -> outcome option
(** [None] when even the fastest continuous sizing at the initial locations
    misses the budget.  The initial solution's widths are ignored (Line 1
    recomputes them); its locations seed the iteration.

    [hooks.cancel] is polled once per iteration of the move loop; returning
    unit leaves the run bit-identical to one without the hook, raising
    aborts it with that exception (see {!Rip_engine.Cancel}).
    [hooks.probe] receives one [Iteration] event per move round (plus
    [Newton] events forwarded from the width solver when that backend is
    selected).  Both are bit-identity-preserving observers; with
    {!Rip_numerics.Hooks.default} nothing is observed and nothing is
    allocated. *)

val run_callbacks :
  ?config:config -> ?cancel:(unit -> unit) ->
  ?probe:(probe_event -> unit) ->
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t ->
  budget:float -> initial:Rip_elmore.Solution.t -> outcome option
[@@ocaml.deprecated
  "Use Refine.run with ?hooks (Rip_numerics.Hooks.make ?cancel ?probe ())."]
(** Pre-[Hooks] calling convention, kept for one release as a thin shim
    over {!run}. *)
