type t = {
  name : string;
  repeater : Repeater_model.t;
  layers : Layer.t list;
  power : Power_model.t;
}

let create ~name ~repeater ~layers ~power =
  (match layers with
  | [] -> invalid_arg "Process.create: no routing layers"
  | _ :: _ -> ());
  { name; repeater; layers; power }

let default_180nm =
  create ~name:"generic-0.18um"
    ~repeater:(Repeater_model.create ~rs:14100.0 ~co:1.8e-15 ~cp:1.5e-15)
    ~layers:[ Layer.metal4; Layer.metal5 ]
    ~power:Power_model.default_180nm

let layer_by_name t name =
  List.find_opt (fun (l : Layer.t) -> String.equal l.name name) t.layers

let optimal_uniform_width t (layer : Layer.t) =
  sqrt
    (t.repeater.Repeater_model.rs *. layer.capacitance_per_um
    /. (layer.resistance_per_um *. t.repeater.Repeater_model.co))

let optimal_uniform_spacing t (layer : Layer.t) =
  sqrt
    (2.0 *. t.repeater.Repeater_model.rs
    *. (t.repeater.Repeater_model.cp +. t.repeater.Repeater_model.co)
    /. (layer.resistance_per_um *. layer.capacitance_per_um))

let pp ppf t =
  Fmt.pf ppf "@[<v>process %s@,%a@,%a@,layers: %a@]" t.name Repeater_model.pp
    t.repeater Power_model.pp t.power
    Fmt.(list ~sep:comma Layer.pp)
    t.layers
