(** Per-shard price controller for admission decisions.

    An extremum-seeking climb on the shard's profit — useful answers per
    second minus weighted degradation costs — in the style of
    CloudNetworking's [optimizeResourcePriceNew]: raise the price by a
    multiplicative step while profit still improves, reverse into a
    shrink on the first losing step, and decay straight to the floor
    when the shard is comfortably idle.  The router compares the
    resulting prices against its spill/shed thresholds; this module
    never makes the admission decision itself. *)

type config = {
  initial_price : float;
  floor : float;  (** idle decay target; an idle shard must become cheap *)
  ceiling : float;  (** the climb's hard cap *)
  growth : float;  (** multiplicative raise while profit improves, > 1 *)
  shrink : float;  (** back-off / idle-decay factor, in (0, 1) *)
  degraded_cost : float;  (** profit penalty per DEGRADED/s *)
  timeout_cost : float;  (** profit penalty per TIMEOUT/s *)
  busy_cost : float;  (** profit penalty per BUSY/s *)
  utilization_low : float;
      (** below this fraction of [queue_depth], decay instead of climb *)
}

val default_config : config

type observation = {
  seconds : float;  (** wall seconds covered by this tick *)
  completed : int;  (** RESULT answers (fresh + cached) in the window *)
  degraded : int;
  timeouts : int;
  busy : int;
  in_flight : int;  (** admission slots held now *)
  queue_depth : int;  (** the shard's configured bound (from HEALTH) *)
}

type t

val create : ?config:config -> unit -> t
(** @raise Invalid_argument on a config violating
    [0 < floor <= initial_price <= ceiling], [growth > 1], or
    [shrink] outside (0, 1). *)

val price : t -> float
(** The current ask; starts at [initial_price], always within
    [[floor, ceiling]]. *)

val config : t -> config

val profit : config -> observation -> float
(** [completed/s - degraded_cost*degraded/s - timeout_cost*timeouts/s -
    busy_cost*busy/s]; 0 when the window is empty.  Exposed for tests. *)

val observe : t -> observation -> float
(** Feed one tick's delta; returns the updated price.  Deterministic:
    the same observation sequence always yields the same price path. *)
