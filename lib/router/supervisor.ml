(* Shard process supervision: spawn rip_serviced children, notice when
   they die, and restart them with a configurable backoff.

   The supervisor is deliberately dumb — it owns pids and sockets,
   nothing else.  Liveness of the *service* (is the shard answering
   STATS?) is the router's poller's business; [alive] only answers "has
   the OS process exited", via a non-blocking [waitpid] that also reaps
   the zombie.  Keeping the two notions separate matters for the
   degrade path: a wedged-but-running shard must be routed around even
   though its pid is alive, and a freshly-restarted one must stay out
   of the ring until it answers PING. *)

type child = {
  id : string;
  socket : string;
  exe : string;
  argv : string array;  (* full argv, argv.(0) = exe *)
  restart_backoff : float;  (* seconds to wait before a respawn *)
  mutable pid : int option;
  mutable restarts : int;
  mutable last_exit : float;  (* monotonic time of last observed death *)
}

let monotonic = Rip_numerics.Cpu_clock.monotonic_seconds

let spawn_process child =
  (* A stale socket from a crashed incarnation would make the child's
     bind fail; rip_serviced unlinks it itself, but be safe when the
     previous owner was killed mid-listen. *)
  (if Sys.file_exists child.socket then
     try Unix.unlink child.socket with Unix.Unix_error _ -> ());
  let pid =
    Unix.create_process child.exe child.argv Unix.stdin Unix.stdout
      Unix.stderr
  in
  child.pid <- Some pid;
  pid

let spawn ?(restart_backoff = 1.0) ~exe ~extra_args ~id ~socket () =
  let argv =
    Array.of_list
      ((exe :: [ "--socket"; socket; "--shard-id"; id ]) @ extra_args)
  in
  let child =
    {
      id;
      socket;
      exe;
      argv;
      restart_backoff;
      pid = None;
      restarts = 0;
      last_exit = 0.0;
    }
  in
  ignore (spawn_process child);
  child

let id child = child.id
let socket child = child.socket
let pid child = child.pid
let restarts child = child.restarts

let alive child =
  match child.pid with
  | None -> false
  | Some pid -> (
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> true
      | _, _ ->
          child.pid <- None;
          child.last_exit <- monotonic ();
          false
      | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
          (* Reaped elsewhere (or not our child): treat as dead. *)
          child.pid <- None;
          child.last_exit <- monotonic ();
          false)

(* Respawn a dead child once its backoff has elapsed.  Returns [true]
   when a new process was started this call.  The backoff is what lets
   the CI kill test observe the degraded window: with a long backoff
   the killed shard *stays* dead while the router proves it can serve
   around the hole. *)
let restart_if_due child =
  if alive child then false
  else if monotonic () -. child.last_exit < child.restart_backoff then false
  else begin
    ignore (spawn_process child);
    child.restarts <- child.restarts + 1;
    true
  end

(* Connect-and-PING until the child answers; a freshly-spawned shard
   needs a moment to bind its socket and start its acceptor. *)
let wait_ready ?(attempts = 100) ?(delay = 0.05) child =
  let rec go remaining =
    if remaining = 0 then
      Error
        (Printf.sprintf "shard %s did not become ready on %s" child.id
           child.socket)
    else
      match Rip_service.Client.connect_unix ~timeout:1.0 child.socket with
      | conn ->
          let answer = Rip_service.Client.request conn Rip_service.Protocol.Ping in
          Rip_service.Client.close conn;
          (match answer with
          | Ok Rip_service.Protocol.Pong -> Ok ()
          | Ok _ | Error _ ->
              Thread.delay delay;
              go (remaining - 1))
      | exception Unix.Unix_error _ ->
          Thread.delay delay;
          go (remaining - 1)
  in
  go attempts

(* The grace window exists for durability: a journaled shard flushes
   its unsynced journal bytes on SIGTERM, so killing it early would
   needlessly shrink the warm set it restarts with.  [log] reports
   which path was taken — CI greps for the escalation line. *)
let terminate ?(timeout = 5.0) ?(log = fun _ -> ()) child =
  match child.pid with
  | None -> ()
  | Some pid ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      let deadline = monotonic () +. timeout in
      let rec reap () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
            if monotonic () >= deadline then begin
              log
                (Printf.sprintf
                   "shard %s: no exit within %.1f s of SIGTERM; escalating \
                    to SIGKILL"
                   child.id timeout);
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
            end
            else begin
              Thread.delay 0.02;
              reap ()
            end
        | _, _ ->
            log
              (Printf.sprintf "shard %s: exited within the %.1f s grace window"
                 child.id timeout)
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      in
      reap ();
      child.pid <- None;
      if Sys.file_exists child.socket then
        try Unix.unlink child.socket with Unix.Unix_error _ -> ()

(* SIGKILL with no grace at all — the crash-simulation path (bench
   restart, chaos tests).  The socket file is left in place, exactly as
   a real crash would leave it; the next [spawn_process] unlinks it. *)
let kill child =
  match child.pid with
  | None -> ()
  | Some pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore
        (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0));
      child.pid <- None;
      child.last_exit <- monotonic ()
