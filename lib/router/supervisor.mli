(** Shard process supervision: spawn [rip_serviced] children over Unix
    sockets, detect exits, and respawn after a backoff.

    Owns only pids and socket paths.  Service-level liveness (does the
    shard answer STATS?) is the router poller's concern — a wedged
    process is [alive] here yet still gets routed around, and a fresh
    respawn stays out of the ring until it answers PING
    ({!wait_ready}). *)

type child

val spawn :
  ?restart_backoff:float ->
  exe:string ->
  extra_args:string list ->
  id:string ->
  socket:string ->
  unit ->
  child
(** Start [exe --socket socket --shard-id id <extra_args>], inheriting
    stdio.  [restart_backoff] (default 1 s) is the minimum dead time
    before {!restart_if_due} respawns — a long backoff keeps a killed
    shard down long enough to observe the cluster degrading gracefully. *)

val id : child -> string
val socket : child -> string

val pid : child -> int option
(** [None] once the child has been observed dead (and reaped). *)

val restarts : child -> int

val alive : child -> bool
(** Non-blocking: [waitpid WNOHANG], reaping the zombie on exit. *)

val restart_if_due : child -> bool
(** Respawn a dead child whose backoff has elapsed; [true] when a new
    process was started by this call.  No-op on a live child. *)

val wait_ready : ?attempts:int -> ?delay:float -> child -> (unit, string) result
(** Connect-and-PING until the shard answers [PONG] (default: 100
    attempts, 50 ms apart — 5 s). *)

val terminate : ?timeout:float -> ?log:(string -> unit) -> child -> unit
(** SIGTERM, wait up to [timeout] (default 5 s), then SIGKILL; reaps
    and removes the socket file.  Idempotent.  The grace window lets a
    journaled shard flush its unsynced journal bytes; [log] receives
    one line saying whether the child exited within the window or was
    escalated to SIGKILL. *)

val kill : child -> unit
(** SIGKILL immediately, no grace, and reap — simulates a crash for
    restart experiments.  Unlike {!terminate} the socket file is left
    behind, as a real crash would leave it; a subsequent respawn
    unlinks it.  The child remains restartable ({!restart_if_due}). *)
