(** A weighted consistent-hash ring over shard ids.

    Routing keys are opaque strings — the router uses
    {!Rip_net.Net.canonical_digest}, so electrically identical nets land
    on the same shard and its solve cache stays hot for that key range.
    Placement is a pure function of the membership (MD5 positions), so
    it is identical across process restarts, and membership edits move
    only the edited shard's arcs: removing one of [n] equally-weighted
    shards remaps ~1/n of the keyspace and no key that stays moves
    between surviving shards. *)

type t

val default_vnodes_per_weight : int
(** 128 — enough vnodes that equal weights get near-equal key shares. *)

val create : ?vnodes_per_weight:int -> (string * int) list -> t
(** [create members] builds the ring over [(shard id, weight)] pairs; a
    shard owns [vnodes_per_weight * weight] virtual nodes.
    @raise Invalid_argument on a duplicate or invalid shard id
    ({!Rip_service.Protocol.valid_shard_id}), a weight < 1, or
    [vnodes_per_weight < 1]. *)

val add : t -> string -> weight:int -> t
(** A new ring with one more shard; existing shards' vnodes are
    unchanged (functional update — swap it in atomically). *)

val remove : t -> string -> t
(** A new ring without [id]; its arcs fall to their clockwise
    successors, everything else keeps its owner.
    @raise Invalid_argument when [id] is not a member. *)

val lookup : t -> string -> string option
(** The shard owning [key] — the first vnode clockwise from the key's
    position.  [None] on an empty ring. *)

val lookup_pair : t -> string -> (string * string option) option
(** [(primary, second_choice)]: the owner plus the next *distinct*
    shard clockwise — the spill target.  The second component is [None]
    when the ring has a single shard. *)

val members : t -> (string * int) list
val size : t -> int
(** Member shards (not vnodes). *)

val vnode_count : t -> int
val vnodes_per_weight : t -> int

val shares : t -> (string * float) list
(** Exact fraction of the keyspace each shard owns (arc lengths; sums
    to 1 on a non-empty ring) — what the balance property tests bound. *)

val key_position : string -> int64
(** The ring position of a routing key (first 8 bytes of its MD5,
    big-endian, compared unsigned) — exposed for tests. *)
