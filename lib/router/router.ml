(* The cluster front end: one listening socket, N rip_serviced shards.

   Requests route by consistent-hashing the net's canonical digest over
   the shard ring — the same net always lands on the same shard, so
   each shard's LRU solve cache stays hot for its own key range instead
   of every shard caching a diluted copy of everything.

   Admission is price-based rather than a static high-water mark.  A
   poller thread scrapes each shard's STATS on a fixed tick, feeds the
   delta to the shard's {!Pricing} controller, and the resulting prices
   drive three-way decisions on the request path:

     - primary price below [spill_price]       -> forward to the primary
     - primary expensive, second choice cheaper -> spill to the second
       choice (the next distinct shard clockwise, so no third shard's
       key range is disturbed)
     - every candidate above [shed_price]       -> answer DEGRADED
       (overload) from the router's own analytic fallback tier rather
       than queue behind a saturated cluster

   With a single shard there is no spill target and pricing alone would
   shed too eagerly, so the shard's static high-water mark keeps its
   original role as the floor: the router only sheds when the price
   says so *and* the shard's last-reported in-flight count is at or
   past its high-water mark.

   The same poller doubles as the failure detector.  A shard that
   misses [down_after] consecutive polls is marked down (no longer a
   forward target); after [remove_after] further misses it is removed
   from the ring so its keyspace arcs fall to the survivors (a
   rebalance, counted).  A recovered shard is re-added, reclaiming
   exactly its old arcs — consistent hashing makes both transitions
   minimal.  A transport failure on the request path fails over to the
   other candidate immediately; when no candidate is left the router
   answers DEGRADED (worker lost) locally.  The router never drops a
   request on the floor. *)

module Client = Rip_service.Client
module Protocol = Rip_service.Protocol
module Wire = Rip_service.Wire
module Fallback = Rip_service.Fallback
module Obs = Rip_obs.Metrics
module Trace = Rip_obs.Trace
module Wide_event = Rip_obs.Wide_event
module Cpu_clock = Rip_numerics.Cpu_clock
module Net = Rip_net.Net

type shard_spec = { id : string; socket : string; weight : int }

type config = {
  pool_size : int;  (* connections kept per shard *)
  request_timeout : float;  (* per-forward socket timeout, seconds *)
  poll_interval : float;  (* pricing / liveness tick, seconds *)
  vnodes_per_weight : int;
  spill_price : float;  (* primary above this may spill *)
  shed_price : float;  (* every candidate above this sheds *)
  down_after : int;  (* missed polls before a shard is down *)
  remove_after : int;  (* further misses before ring removal *)
  pricing : Pricing.config;
  solver : Rip_core.Config.t option;  (* for the local fallback tier *)
  max_frame_bytes : int;
  hedge : bool;  (* hedge slow forwards onto the spill target *)
  hedge_delay_floor : float;  (* seconds; hedge delay never below this *)
  hedge_delay_factor : float;  (* hedge delay = factor * forward p99 *)
  breaker_threshold : int;  (* consecutive transport failures to open *)
  tracer : Trace.t option;  (* ingress/forward spans + TRACE propagation *)
  spool : Wide_event.spool option;  (* one wide event per request *)
}

let default_config =
  {
    pool_size = 8;
    request_timeout = 60.0;
    poll_interval = 0.25;
    vnodes_per_weight = Ring.default_vnodes_per_weight;
    spill_price = 4.0;
    shed_price = 16.0;
    down_after = 2;
    remove_after = 8;
    pricing = Pricing.default_config;
    solver = None;
    max_frame_bytes = Wire.default_max_frame_bytes;
    hedge = true;
    hedge_delay_floor = 0.05;
    hedge_delay_factor = 1.5;
    breaker_threshold = 3;
    tracer = None;
    spool = None;
  }

(* Counter totals carried across shard incarnations.  A restarted shard
   reports counters from zero; folding the dead incarnation's last
   snapshot into this baseline keeps the router's aggregate STATS
   monotone, which the load generator's delta reconciliation relies
   on. *)
type baseline = {
  mutable b_requests : int;
  mutable b_solved : int;
  mutable b_errors : int;
  mutable b_rejected_busy : int;
  mutable b_timeouts : int;
  mutable b_degraded : int;
  mutable b_toobig : int;
  mutable b_cache_self_heals : int;
  mutable b_cache_hits : int;
  mutable b_cache_misses : int;
  mutable b_cache_evictions : int;
  mutable b_cache_replayed : int;
  mutable b_journal_compactions : int;
  mutable b_queue_wait_seconds : float;
  mutable b_solve_cpu_seconds : float;
}

let zero_baseline () =
  {
    b_requests = 0;
    b_solved = 0;
    b_errors = 0;
    b_rejected_busy = 0;
    b_timeouts = 0;
    b_degraded = 0;
    b_toobig = 0;
    b_cache_self_heals = 0;
    b_cache_hits = 0;
    b_cache_misses = 0;
    b_cache_evictions = 0;
    b_cache_replayed = 0;
    b_journal_compactions = 0;
    b_queue_wait_seconds = 0.0;
    b_solve_cpu_seconds = 0.0;
  }

let fold_into_baseline b (s : Protocol.stats) =
  b.b_requests <- b.b_requests + s.requests;
  b.b_solved <- b.b_solved + s.solved;
  b.b_errors <- b.b_errors + s.errors;
  b.b_rejected_busy <- b.b_rejected_busy + s.rejected_busy;
  b.b_timeouts <- b.b_timeouts + s.timeouts;
  b.b_degraded <- b.b_degraded + s.degraded;
  b.b_toobig <- b.b_toobig + s.toobig;
  b.b_cache_self_heals <- b.b_cache_self_heals + s.cache_self_heals;
  b.b_cache_hits <- b.b_cache_hits + s.cache_hits;
  b.b_cache_misses <- b.b_cache_misses + s.cache_misses;
  b.b_cache_evictions <- b.b_cache_evictions + s.cache_evictions;
  b.b_cache_replayed <- b.b_cache_replayed + s.cache_replayed;
  b.b_journal_compactions <- b.b_journal_compactions + s.journal_compactions;
  b.b_queue_wait_seconds <- b.b_queue_wait_seconds +. s.queue_wait_seconds;
  b.b_solve_cpu_seconds <- b.b_solve_cpu_seconds +. s.solve_cpu_seconds

(* The circuit breaker shadows the poller's failure detector on a much
   faster clock: the poller needs [down_after] ticks to mark a shard
   down, but [breaker_threshold] consecutive transport failures on the
   request path trip the breaker immediately, taking the shard out of
   the candidate set before more requests burn a timeout each.  A
   successful poll while open moves to half-open (the poller is the
   probe); the next forwarded request decides — success closes,
   failure re-opens. *)
type breaker_state = Breaker_closed | Breaker_open | Breaker_half_open

type shard = {
  spec : shard_spec;
  pool : Client.Pool.t;
  pricing : Pricing.t;
  inst : Router_metrics.shard_instruments;
  baseline : baseline;
  (* The remaining fields are guarded by the router mutex. *)
  mutable up : bool;
  mutable missed_polls : int;
  mutable down_polls : int;
  mutable in_ring : bool;
  mutable last_stats : Protocol.stats option;
  mutable last_poll_at : float;  (* monotonic; 0 before the first poll *)
  mutable queue_bound : int;  (* the shard's --queue-depth (HEALTH) *)
  mutable high_water : int;  (* the shard's --high-water (HEALTH) *)
  mutable breaker : breaker_state;
  mutable breaker_failures : int;  (* consecutive transport failures *)
}

type t = {
  process : Rip_tech.Process.t;
  config : config;
  shards : shard array;
  metrics : Router_metrics.t;
  mutex : Mutex.t;  (* ring + shard state + lifecycle *)
  seq : int Atomic.t;  (* minted-trace sequence at ingress *)
  mutable ring : Ring.t;
  mutable in_flight : int;
  mutable stopping : bool;
  mutable listener : Unix.file_descr option;
  mutable connection_threads : Thread.t list;
  mutable poller : Thread.t option;
}

let create ?(config = default_config) ~shards process =
  if List.length shards = 0 then
    invalid_arg "Router.create: at least one shard is required";
  if config.pool_size < 1 then
    invalid_arg "Router.create: pool_size must be >= 1";
  if config.poll_interval <= 0.0 then
    invalid_arg "Router.create: poll_interval must be positive";
  if config.down_after < 1 || config.remove_after < 1 then
    invalid_arg "Router.create: down_after and remove_after must be >= 1";
  if not (config.spill_price > 0.0 && config.shed_price >= config.spill_price)
  then invalid_arg "Router.create: need 0 < spill_price <= shed_price";
  if config.hedge_delay_floor < 0.0 || config.hedge_delay_factor <= 0.0 then
    invalid_arg
      "Router.create: hedge_delay_floor must be >= 0 and hedge_delay_factor \
       positive";
  if config.breaker_threshold < 1 then
    invalid_arg "Router.create: breaker_threshold must be >= 1";
  let ring =
    Ring.create ~vnodes_per_weight:config.vnodes_per_weight
      (List.map (fun s -> (s.id, s.weight)) shards)
  in
  let metrics =
    Router_metrics.create ~shard_ids:(List.map (fun s -> s.id) shards) ()
  in
  let shard_states =
    Array.of_list
      (List.map
         (fun spec ->
           let socket = spec.socket in
           {
             spec;
             pool =
               Client.Pool.create ~timeout:config.request_timeout
                 ~size:config.pool_size (fun () ->
                   Client.connect_unix socket);
             pricing = Pricing.create ~config:config.pricing ();
             inst = Router_metrics.shard metrics spec.id;
             baseline = zero_baseline ();
             up = true;
             missed_polls = 0;
             down_polls = 0;
             in_ring = true;
             last_stats = None;
             last_poll_at = 0.0;
             queue_bound = 64;
             high_water = 48;
             breaker = Breaker_closed;
             breaker_failures = 0;
           })
         shards)
  in
  {
    process;
    config;
    shards = shard_states;
    metrics;
    mutex = Mutex.create ();
    seq = Atomic.make 0;
    ring;
    in_flight = 0;
    stopping = false;
    listener = None;
    connection_threads = [];
    poller = None;
  }

let metrics t = t.metrics
let shard_count t = Array.length t.shards

let stopping t =
  Mutex.lock t.mutex;
  let s = t.stopping in
  Mutex.unlock t.mutex;
  s

(* --- Poller: pricing + failure detection ---------------------------------- *)

let refresh_bounds t shard =
  match Client.Pool.request shard.pool Protocol.Health with
  | Ok (Protocol.Health_frame h) ->
      Mutex.lock t.mutex;
      shard.queue_bound <- h.Protocol.health_queue_depth;
      shard.high_water <- h.Protocol.health_high_water;
      Mutex.unlock t.mutex
  | Ok _ | Error _ -> ()

let mark_recovered t shard =
  Mutex.lock t.mutex;
  let re_add = not shard.in_ring in
  shard.up <- true;
  shard.missed_polls <- 0;
  shard.down_polls <- 0;
  if re_add then begin
    t.ring <- Ring.add t.ring shard.spec.id ~weight:shard.spec.weight;
    shard.in_ring <- true
  end;
  Mutex.unlock t.mutex;
  Obs.Gauge.set shard.inst.up 1.0;
  if re_add then Obs.Counter.incr t.metrics.rebalances

(* --- Circuit breaker ------------------------------------------------------- *)

let breaker_gauge = function
  | Breaker_closed -> 0.0
  | Breaker_open -> 1.0
  | Breaker_half_open -> 2.0

(* [available] is the request path's view of a shard: poller liveness
   AND a breaker that is not open.  Half-open admits traffic — the next
   forward is the probe that decides.  Callers hold the router mutex. *)
let available shard = shard.up && shard.breaker <> Breaker_open

let shard_available t shard =
  Mutex.lock t.mutex;
  let a = available shard in
  Mutex.unlock t.mutex;
  a

let note_forward_ok t shard =
  Mutex.lock t.mutex;
  shard.breaker_failures <- 0;
  let closed = shard.breaker <> Breaker_closed in
  shard.breaker <- Breaker_closed;
  Mutex.unlock t.mutex;
  if closed then
    Obs.Gauge.set shard.inst.breaker_state (breaker_gauge Breaker_closed)

let note_forward_error t shard =
  Mutex.lock t.mutex;
  shard.breaker_failures <- shard.breaker_failures + 1;
  let opened =
    match shard.breaker with
    | Breaker_closed -> shard.breaker_failures >= t.config.breaker_threshold
    | Breaker_half_open -> true  (* the probe failed; snap back open *)
    | Breaker_open -> false
  in
  if opened then shard.breaker <- Breaker_open;
  Mutex.unlock t.mutex;
  if opened then begin
    Obs.Gauge.set shard.inst.breaker_state (breaker_gauge Breaker_open);
    Obs.Counter.incr shard.inst.breaker_opens
  end

let on_stats t shard now (stats : Protocol.stats) =
  let was_down =
    Mutex.lock t.mutex;
    let d = not shard.up in
    Mutex.unlock t.mutex;
    d
  in
  if was_down then begin
    (* Back from the dead: a new incarnation, with fresh counters and
       possibly a different configuration. *)
    refresh_bounds t shard;
    mark_recovered t shard
  end;
  Mutex.lock t.mutex;
  shard.missed_polls <- 0;
  (* An answered poll is the open breaker's probe: move to half-open so
     the next forwarded request decides (success closes, failure snaps
     back open). *)
  let half_opened =
    match shard.breaker with
    | Breaker_open ->
        shard.breaker <- Breaker_half_open;
        true
    | _ -> false
  in
  (* Restart detection: counters went backwards (or uptime did) — fold
     the dead incarnation's final snapshot into the baseline so the
     aggregate stays monotone, and delta from zero. *)
  (match shard.last_stats with
  | Some prev
    when stats.Protocol.uptime_seconds < prev.Protocol.uptime_seconds
         || stats.Protocol.requests < prev.Protocol.requests ->
      fold_into_baseline shard.baseline prev;
      shard.last_stats <- None
  | _ -> ());
  let observation =
    let prev_solved, prev_degraded, prev_timeouts, prev_busy =
      match shard.last_stats with
      | Some p ->
          ( p.Protocol.solved,
            p.Protocol.degraded,
            p.Protocol.timeouts,
            p.Protocol.rejected_busy )
      | None -> (0, 0, 0, 0)
    in
    let seconds =
      if shard.last_poll_at > 0.0 then now -. shard.last_poll_at
      else t.config.poll_interval
    in
    {
      Pricing.seconds;
      completed = stats.Protocol.solved - prev_solved;
      degraded = stats.Protocol.degraded - prev_degraded;
      timeouts = stats.Protocol.timeouts - prev_timeouts;
      busy = stats.Protocol.rejected_busy - prev_busy;
      in_flight = stats.Protocol.in_flight;
      queue_depth = shard.queue_bound;
    }
  in
  shard.last_stats <- Some stats;
  shard.last_poll_at <- now;
  let price = Pricing.observe shard.pricing observation in
  Mutex.unlock t.mutex;
  if half_opened then
    Obs.Gauge.set shard.inst.breaker_state (breaker_gauge Breaker_half_open);
  Obs.Gauge.set shard.inst.price price

let on_poll_failure t shard =
  Mutex.lock t.mutex;
  let went_down =
    shard.missed_polls <- shard.missed_polls + 1;
    shard.up && shard.missed_polls >= t.config.down_after
  in
  if went_down then begin
    shard.up <- false;
    shard.down_polls <- 0
  end
  else if not shard.up then shard.down_polls <- shard.down_polls + 1;
  let removed =
    if
      (not shard.up) && shard.in_ring
      && shard.down_polls >= t.config.remove_after
    then begin
      t.ring <- Ring.remove t.ring shard.spec.id;
      shard.in_ring <- false;
      true
    end
    else false
  in
  Mutex.unlock t.mutex;
  if went_down then Obs.Gauge.set shard.inst.up 0.0;
  if removed then Obs.Counter.incr t.metrics.rebalances

let poll_shard t shard =
  let now = Cpu_clock.monotonic_seconds () in
  match Client.Pool.request shard.pool Protocol.Stats with
  | Ok (Protocol.Stats_frame stats) -> on_stats t shard now stats
  | Ok _ | Error _ -> on_poll_failure t shard

let rec poll_loop t =
  if not (stopping t) then begin
    Array.iter
      (fun shard ->
        let never_polled =
          Mutex.lock t.mutex;
          let b = shard.last_poll_at <= 0.0 && shard.up in
          Mutex.unlock t.mutex;
          b
        in
        if never_polled then refresh_bounds t shard;
        poll_shard t shard)
      t.shards;
    Thread.delay t.config.poll_interval;
    poll_loop t
  end

(* --- Local degraded answers ------------------------------------------------ *)

let degraded_response t ~budget ~net ~shed reason =
  Obs.Counter.incr t.metrics.local_degraded;
  if shed then Obs.Counter.incr t.metrics.shed;
  Protocol.Degraded
    {
      reason;
      solution =
        Fallback.solution ~process:t.process ?solver:t.config.solver ~budget
          ~net ();
    }

(* --- Request routing ------------------------------------------------------- *)

let find_shard t id =
  let found = ref None in
  Array.iter
    (fun s -> if String.equal s.spec.id id then found := Some s)
    t.shards;
  match !found with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Router: unknown shard %s" id)

type routing =
  | Forward of {
      target : shard;
      failover : shard option;
      spilled : bool;
      breaker_skip : bool;  (* the key's primary was skipped breaker-open *)
    }
  | Shed
  | No_candidate

(* The shard's original static mark keeps its role as the pricing
   floor: with a single shard there is no spill target and a young
   price controller would shed too eagerly, so shedding additionally
   requires the shard's last-reported in-flight count to have reached
   its high-water mark. *)
let floor_reached shard =
  match shard.last_stats with
  | Some s -> s.Protocol.in_flight >= shard.high_water
  | None -> false

let route t key =
  Mutex.lock t.mutex;
  let decision =
    match Ring.lookup_pair t.ring key with
    | None -> No_candidate
    | Some (primary_id, secondary_id) -> (
        let primary = find_shard t primary_id in
        let secondary = Option.map (find_shard t) secondary_id in
        let secondary_up =
          match secondary with Some s when available s -> Some s | _ -> None
        in
        if not (available primary) then
          match secondary_up with
          | Some s ->
              Forward
                {
                  target = s;
                  failover = None;
                  spilled = false;
                  breaker_skip = primary.breaker = Breaker_open;
                }
          | None -> No_candidate
        else
          let p_primary = Pricing.price primary.pricing in
          let target, failover, spilled =
            if p_primary < t.config.spill_price then
              (primary, secondary_up, false)
            else
              match secondary_up with
              | Some s when Pricing.price s.pricing < p_primary ->
                  (s, Some primary, true)
              | _ -> (primary, secondary_up, false)
          in
          let price = Pricing.price target.pricing in
          if price >= t.config.shed_price then
            if Array.length t.shards = 1 && not (floor_reached target) then
              Forward { target; failover; spilled; breaker_skip = false }
            else Shed
          else Forward { target; failover; spilled; breaker_skip = false })
  in
  Mutex.unlock t.mutex;
  decision

let forward ?(args = []) t shard frame =
  let started = Cpu_clock.monotonic_seconds () in
  let result =
    Trace.span t.config.tracer ~cat:"router" ~args
      ("forward:" ^ shard.spec.id)
      (fun () -> Client.Pool.request shard.pool frame)
  in
  (match result with
  | Ok _ ->
      note_forward_ok t shard;
      Obs.Counter.incr shard.inst.forwarded;
      Obs.Histogram.observe t.metrics.forward_seconds
        (Cpu_clock.monotonic_seconds () -. started)
  | Error _ ->
      note_forward_error t shard;
      Obs.Counter.incr shard.inst.failovers);
  result

(* --- Hedged forwards ------------------------------------------------------- *)

(* Tail tolerance: once a forward has been in flight longer than the
   hedge delay — derived from the p99 of recent forward round-trips,
   floored so a cold histogram cannot hedge everything — the same
   request is issued to the failover candidate (the spill target, whose
   cache the key would land on anyway) and the first answer wins.  The
   loser is not torn down mid-flight: its connection completes in the
   background inside its pool slot and the late answer is discarded,
   which keeps the pool invariant (one request per checkout) intact.

   The slot poll mirrors {!Watchdog}: [Condition] has no timed wait, so
   a 2 ms tick bounds the added latency at well under the hedge delay
   floor. *)

type forward_slot = {
  slot_mutex : Mutex.t;
  mutable slot_result : (Protocol.response, string) result option;
}

(* Per-request involvement flags for the wide event; mutated only on
   the connection thread (the hedge's primary runs on its own thread
   but posts through the slot, never through this). *)
type request_obs = {
  mutable o_shard : string;
  mutable o_hedged : bool;
  mutable o_hedge_won : bool;
  mutable o_failover : bool;
}

let hedge_tick_seconds = 0.002

let hedge_delay t =
  let snapshot = Obs.Histogram.snapshot t.metrics.forward_seconds in
  Float.max t.config.hedge_delay_floor
    (t.config.hedge_delay_factor *. Obs.Histogram.quantile snapshot 0.99)

let hedged_forward t obs (primary, primary_frame, primary_args)
    (secondary, secondary_frame, secondary_args) =
  let slot = { slot_mutex = Mutex.create (); slot_result = None } in
  let post result =
    Mutex.lock slot.slot_mutex;
    slot.slot_result <- Some result;
    Mutex.unlock slot.slot_mutex
  in
  let peek () =
    Mutex.lock slot.slot_mutex;
    let r = slot.slot_result in
    Mutex.unlock slot.slot_mutex;
    r
  in
  ignore
    (Thread.create
       (fun () -> post (forward ~args:primary_args t primary primary_frame))
       ()
      : Thread.t);
  let deadline = Cpu_clock.monotonic_seconds () +. hedge_delay t in
  let rec await_primary () =
    match peek () with
    | Some result -> Some result
    | None ->
        if Cpu_clock.monotonic_seconds () >= deadline then None
        else begin
          Thread.delay hedge_tick_seconds;
          await_primary ()
        end
  in
  match await_primary () with
  | Some (Ok response) -> Ok response
  | Some (Error _) ->
      (* The primary's transport failed before the delay expired: this
         is an ordinary failover, not a hedge. *)
      obs.o_failover <- true;
      obs.o_shard <- secondary.spec.id;
      forward ~args:secondary_args t secondary secondary_frame
  | None -> (
      Obs.Counter.incr t.metrics.hedges;
      obs.o_hedged <- true;
      match forward ~args:secondary_args t secondary secondary_frame with
      | Ok response -> (
          (* First answer wins: if the primary posted while the hedge
             ran, its answer was first and is the one served. *)
          match peek () with
          | Some (Ok primary_response) -> Ok primary_response
          | Some (Error _) | None ->
              Obs.Counter.incr t.metrics.hedge_wins;
              obs.o_hedge_won <- true;
              obs.o_shard <- secondary.spec.id;
              Ok response)
      | Error _ ->
          (* The hedge lost its transport; all that is left is waiting
             out the primary, bounded by the request timeout. *)
          let give_up =
            Cpu_clock.monotonic_seconds () +. t.config.request_timeout
          in
          let rec await_outcome () =
            match peek () with
            | Some result -> result
            | None ->
                if Cpu_clock.monotonic_seconds () >= give_up then
                  Error "hedged forward: both candidates failed"
                else begin
                  Thread.delay hedge_tick_seconds;
                  await_outcome ()
                end
          in
          await_outcome ())

let serve_solve t ~budget ~deadline_ms ~trace ~net =
  let started = Cpu_clock.monotonic_seconds () in
  Obs.Counter.incr t.metrics.requests;
  let key = Net.canonical_digest net in
  let tracer = t.config.tracer in
  let scope =
    match tracer with
    | Some tr when not (String.equal (Trace.scope tr) "") -> Trace.scope tr
    | _ -> "router"
  in
  (* Ingress: propagate the client's TRACE context, or mint a
     deterministic root when observability is on — the trace id is the
     join key every downstream span and wide event carries. *)
  let context =
    match trace with
    | Some c -> Some c
    | None ->
        if Option.is_some tracer || Option.is_some t.config.spool then
          Some
            (Trace.make_context ~scope ~digest:key
               ~seq:(Atomic.fetch_and_add t.seq 1) ())
        else None
  in
  let sid name = Trace.span_id ~scope ~digest:key name in
  let span_args ~parent name =
    ("span_id", sid name)
    :: (match context with
       | Some c ->
           [ ("trace_id", c.Trace.trace_id); ("parent_span_id", parent) ]
       | None -> [])
  in
  let ingress_id = sid "ingress" in
  (* A forwarded frame carries a child context parented on that shard's
     forward span, so shard-side spans nest under the router's forward
     in the merged timeline. *)
  let frame_for shard =
    let trace =
      Option.map
        (fun c -> Trace.child c ~span_id:(sid ("forward:" ^ shard.spec.id)))
        context
    in
    Protocol.Solve { budget; deadline_ms; trace; net }
  in
  let fwd_args shard =
    span_args ~parent:ingress_id ("forward:" ^ shard.spec.id)
  in
  let obs =
    { o_shard = ""; o_hedged = false; o_hedge_won = false; o_failover = false }
  in
  let spilled_flag = ref false and breaker_flag = ref false in
  let ingress_parent =
    match context with
    | Some c -> c.Trace.parent_span_id
    | None -> Trace.root_span_id
  in
  let response =
    Trace.span tracer ~cat:"router"
      ~args:(span_args ~parent:ingress_parent "ingress")
      "ingress"
      (fun () ->
        match route t key with
        | No_candidate ->
            (* Every shard is gone; the router still answers. *)
            degraded_response t ~budget ~net ~shed:false Protocol.Worker_lost
        | Shed -> degraded_response t ~budget ~net ~shed:true Protocol.Overload
        | Forward { target; failover; spilled; breaker_skip } -> (
            obs.o_shard <- target.spec.id;
            spilled_flag := spilled;
            breaker_flag := breaker_skip;
            if spilled then Obs.Counter.incr target.inst.spills;
            let hedge_target =
              if t.config.hedge then
                match failover with
                | Some other when shard_available t other -> Some other
                | _ -> None
              else None
            in
            match hedge_target with
            | Some other -> (
                match
                  hedged_forward t obs
                    (target, frame_for target, fwd_args target)
                    (other, frame_for other, fwd_args other)
                with
                | Ok response -> response
                | Error _ ->
                    (* Both candidates were already tried inside the
                       hedge. *)
                    degraded_response t ~budget ~net ~shed:false
                      Protocol.Worker_lost)
            | None -> (
                match
                  forward ~args:(fwd_args target) t target (frame_for target)
                with
                | Ok response -> response
                | Error _ -> (
                    (* The poller will notice the death on its own tick;
                       the request fails over right now. *)
                    match failover with
                    | Some other when shard_available t other -> (
                        obs.o_failover <- true;
                        obs.o_shard <- other.spec.id;
                        match
                          forward ~args:(fwd_args other) t other
                            (frame_for other)
                        with
                        | Ok response -> response
                        | Error _ ->
                            degraded_response t ~budget ~net ~shed:false
                              Protocol.Worker_lost)
                    | _ ->
                        degraded_response t ~budget ~net ~shed:false
                          Protocol.Worker_lost))))
  in
  (* Exactly one wide event per request through the router, always kept
     by the tail sampler when anything interesting happened (degraded,
     hedged, failover, spill, breaker skip), so offline [rip_trace
     query] counts reconcile exactly with the load generator's. *)
  (match t.config.spool with
  | None -> ()
  | Some spool ->
      let finished = Cpu_clock.monotonic_seconds () in
      let outcome, degrade_reason, cache =
        match response with
        | Protocol.Result { served = Protocol.Cached; _ } ->
            ("cached", "", "hit")
        | Protocol.Result { served = Protocol.Fresh; _ } ->
            ("fresh", "", "miss")
        | Protocol.Degraded { reason; _ } ->
            ("degraded", Protocol.degrade_reason_to_string reason, "")
        | Protocol.Timeout -> ("timeout", "", "")
        | Protocol.Busy -> ("busy", "", "")
        | _ -> ("error", "", "")
      in
      Wide_event.emit spool
        {
          Wide_event.empty with
          process = scope;
          trace_id =
            (match context with Some c -> c.Trace.trace_id | None -> "");
          digest = key;
          shard = obs.o_shard;
          outcome;
          degrade_reason;
          cache;
          hedged = obs.o_hedged;
          hedge_won = obs.o_hedge_won;
          failover = obs.o_failover;
          spilled = !spilled_flag;
          breaker_skip = !breaker_flag;
          latency = finished -. started;
          deadline_slack =
            (match deadline_ms with
            | None -> Float.nan
            | Some ms -> started +. (ms /. 1000.0) -. finished);
        });
  response

(* --- Aggregated views ------------------------------------------------------ *)

(* The cluster's STATS, as if it were one server: counters are the sum
   of every shard's live counters, each shard's retired-incarnation
   baseline, and the answers the router produced itself; percentiles
   are the worst (max) across shards — a conservative bound a client's
   own percentile must still dominate; uptime is the router's own. *)
let aggregate_stats t =
  let live =
    Array.map
      (fun shard ->
        match Client.Pool.request shard.pool Protocol.Stats with
        | Ok (Protocol.Stats_frame s) -> Some s
        | Ok _ | Error _ ->
            Mutex.lock t.mutex;
            let cached = shard.last_stats in
            Mutex.unlock t.mutex;
            cached)
      t.shards
  in
  let sum_i f =
    Array.fold_left (fun acc s -> acc + match s with Some s -> f s | None -> 0) 0 live
  in
  let sum_f f =
    Array.fold_left
      (fun acc s -> acc +. match s with Some s -> f s | None -> 0.0)
      0.0 live
  in
  let max_f f =
    Array.fold_left
      (fun acc s -> Float.max acc (match s with Some s -> f s | None -> 0.0))
      0.0 live
  in
  let base f = Array.fold_left (fun acc s -> acc + f s.baseline) 0 t.shards in
  let base_f f =
    Array.fold_left (fun acc s -> acc +. f s.baseline) 0.0 t.shards
  in
  let local_degraded = Obs.Counter.value t.metrics.local_degraded in
  (* The whole snapshot is taken under the lock: the poller folds dead
     incarnations into [shard.baseline] concurrently, and a torn read
     would break the accounting identity below. *)
  Mutex.lock t.mutex;
  let in_flight = t.in_flight in
  let stats =
  {
    Protocol.shard_id = "router";
    uptime_seconds = Router_metrics.uptime_seconds t.metrics;
    (* Requests the router shed never reached a shard; adding the
       locally-degraded count on both sides keeps the accounting
       identity requests = solved + errors + busy + timeouts + degraded
       + toobig across the aggregate. *)
    requests = sum_i (fun s -> s.Protocol.requests) + base (fun b -> b.b_requests) + local_degraded;
    solved = sum_i (fun s -> s.Protocol.solved) + base (fun b -> b.b_solved);
    errors = sum_i (fun s -> s.Protocol.errors) + base (fun b -> b.b_errors);
    rejected_busy =
      sum_i (fun s -> s.Protocol.rejected_busy) + base (fun b -> b.b_rejected_busy);
    timeouts = sum_i (fun s -> s.Protocol.timeouts) + base (fun b -> b.b_timeouts);
    degraded =
      sum_i (fun s -> s.Protocol.degraded) + base (fun b -> b.b_degraded)
      + local_degraded;
    toobig = sum_i (fun s -> s.Protocol.toobig) + base (fun b -> b.b_toobig);
    cache_self_heals =
      sum_i (fun s -> s.Protocol.cache_self_heals)
      + base (fun b -> b.b_cache_self_heals);
    cache_hits =
      sum_i (fun s -> s.Protocol.cache_hits) + base (fun b -> b.b_cache_hits);
    cache_misses =
      sum_i (fun s -> s.Protocol.cache_misses) + base (fun b -> b.b_cache_misses);
    cache_evictions =
      sum_i (fun s -> s.Protocol.cache_evictions)
      + base (fun b -> b.b_cache_evictions);
    cache_replayed =
      sum_i (fun s -> s.Protocol.cache_replayed)
      + base (fun b -> b.b_cache_replayed);
    cache_size = sum_i (fun s -> s.Protocol.cache_size);
    cache_capacity = sum_i (fun s -> s.Protocol.cache_capacity);
    queue_wait_seconds =
      sum_f (fun s -> s.Protocol.queue_wait_seconds)
      +. base_f (fun b -> b.b_queue_wait_seconds);
    solve_cpu_seconds =
      sum_f (fun s -> s.Protocol.solve_cpu_seconds)
      +. base_f (fun b -> b.b_solve_cpu_seconds);
    (* A gauge, like cache_size: live bytes only, no baseline. *)
    journal_bytes = sum_i (fun s -> s.Protocol.journal_bytes);
    journal_compactions =
      sum_i (fun s -> s.Protocol.journal_compactions)
      + base (fun b -> b.b_journal_compactions);
    in_flight;
    queue_depth = sum_i (fun s -> s.Protocol.queue_depth);
    queue_wait_p50 = max_f (fun s -> s.Protocol.queue_wait_p50);
    queue_wait_p95 = max_f (fun s -> s.Protocol.queue_wait_p95);
    queue_wait_p99 = max_f (fun s -> s.Protocol.queue_wait_p99);
    solve_p50 = max_f (fun s -> s.Protocol.solve_p50);
    solve_p95 = max_f (fun s -> s.Protocol.solve_p95);
    solve_p99 = max_f (fun s -> s.Protocol.solve_p99);
  }
  in
  Mutex.unlock t.mutex;
  stats

let health t =
  Mutex.lock t.mutex;
  let in_flight = t.in_flight in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 t.shards in
  let queue_depth = sum (fun s -> s.queue_bound) in
  let high_water = sum (fun s -> s.high_water) in
  Mutex.unlock t.mutex;
  {
    Protocol.health_shard_id = "router";
    health_in_flight = in_flight;
    health_queue_depth = queue_depth;
    health_high_water = high_water;
  }

(* --- Lifecycle ------------------------------------------------------------- *)

let request_shutdown t =
  Mutex.lock t.mutex;
  let listener = t.listener in
  t.stopping <- true;
  t.listener <- None;
  Mutex.unlock t.mutex;
  match listener with
  | Some fd -> (
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  | None -> ()

(* --- Connection handling --------------------------------------------------- *)

let track_in_flight t delta =
  Mutex.lock t.mutex;
  t.in_flight <- t.in_flight + delta;
  let now = t.in_flight in
  Mutex.unlock t.mutex;
  Obs.Gauge.set t.metrics.in_flight (float_of_int now)

let handle_connection t fd =
  let wire = Wire.create ~max_frame_bytes:t.config.max_frame_bytes fd in
  let reader = Wire.reader wire in
  let send response = Wire.send fd (Protocol.print_response response) in
  let rec serve () =
    Wire.new_frame wire;
    match Protocol.input_request reader with
    | Ok None -> ()
    | Error message ->
        send (Protocol.Error_frame { kind = Protocol.Protocol_error; message })
    | Ok (Some Protocol.Ping) ->
        send Protocol.Pong;
        serve ()
    | Ok (Some Protocol.Stats) ->
        send (Protocol.Stats_frame (aggregate_stats t));
        serve ()
    | Ok (Some Protocol.Metrics) ->
        send (Protocol.Metrics_frame (Router_metrics.render t.metrics));
        serve ()
    | Ok (Some Protocol.Health) ->
        send (Protocol.Health_frame (health t));
        serve ()
    | Ok (Some Protocol.Shutdown) ->
        send Protocol.Bye;
        request_shutdown t
    | Ok (Some (Protocol.Solve { budget; deadline_ms; trace; net })) ->
        track_in_flight t 1;
        let response =
          Fun.protect
            ~finally:(fun () -> track_in_flight t (-1))
            (fun () ->
              try serve_solve t ~budget ~deadline_ms ~trace ~net
              with exn ->
                Protocol.Error_frame
                  {
                    kind = Protocol.Internal_error;
                    message = Protocol.one_line (Printexc.to_string exn);
                  })
        in
        send response;
        serve ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try serve () with
      | Unix.Unix_error _ | Sys_error _ | End_of_file -> ()
      | Wire.Frame_too_big -> (
          try Wire.send fd (Protocol.print_response Protocol.Toobig)
          with Unix.Unix_error _ | Sys_error _ -> ()))

(* --- Accept loop ----------------------------------------------------------- *)

let listen_unix = Rip_service.Server.listen_unix
let listen_tcp = Rip_service.Server.listen_tcp

let run t listen_fd =
  Mutex.lock t.mutex;
  let refused = t.stopping in
  if not refused then begin
    t.listener <- Some listen_fd;
    t.poller <- Some (Thread.create poll_loop t)
  end;
  Mutex.unlock t.mutex;
  if refused then (try Unix.close listen_fd with Unix.Unix_error _ -> ())
  else begin
    let rec accept_loop () =
      match Unix.accept ~cloexec:true listen_fd with
      | client_fd, _ ->
          (match Thread.create (fun () -> handle_connection t client_fd) () with
          | thread ->
              Mutex.lock t.mutex;
              t.connection_threads <- thread :: t.connection_threads;
              Mutex.unlock t.mutex
          | exception e ->
              (* The spawn failed, so no thread owns the fd: close it
                 here or it leaks. *)
              (try Unix.close client_fd with Unix.Unix_error _ -> ());
              raise e);
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> ()
    in
    accept_loop ();
    request_shutdown t;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    Mutex.lock t.mutex;
    let threads = t.connection_threads in
    t.connection_threads <- [];
    let poller = t.poller in
    t.poller <- None;
    Mutex.unlock t.mutex;
    List.iter Thread.join threads;
    Option.iter Thread.join poller;
    Array.iter (fun shard -> Client.Pool.close_all shard.pool) t.shards
  end
