(** The router's own instrument registry (separate from any shard's).

    Per-shard series are encoded in the metric name —
    [rip_router_shard_<id>_forwarded_total] etc., with shard-id
    characters outside [A-Za-z0-9_] mapped to ['_'] — because the
    registry has no label support. *)

module Obs = Rip_obs.Metrics

type shard_instruments = {
  forwarded : Obs.Counter.t;
  failovers : Obs.Counter.t;
  spills : Obs.Counter.t;
  price : Obs.Gauge.t;
  up : Obs.Gauge.t;
  breaker_state : Obs.Gauge.t;  (** 0 closed, 1 open, 2 half-open *)
  breaker_opens : Obs.Counter.t;
}

type t = {
  registry : Obs.t;
  started : float;
  requests : Obs.Counter.t;
  shed : Obs.Counter.t;
  local_degraded : Obs.Counter.t;
  rebalances : Obs.Counter.t;
  hedges : Obs.Counter.t;  (** hedge delays that expired (secondary sent) *)
  hedge_wins : Obs.Counter.t;  (** hedges where the secondary's answer won *)
  forward_seconds : Obs.Histogram.t;
  in_flight : Obs.Gauge.t;
  shards : (string * shard_instruments) list;
}

val create : shard_ids:string list -> unit -> t
(** All shard gauges start [up = 1]. *)

val sanitize : string -> string

val shard : t -> string -> shard_instruments
(** @raise Not_found for an unknown id. *)

val render : t -> string
val registry : t -> Obs.t
val uptime_seconds : t -> float
