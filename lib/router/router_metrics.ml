module Obs = Rip_obs.Metrics
module Cpu_clock = Rip_numerics.Cpu_clock

(* The router's own registry — deliberately separate from any shard's.
   The registry has no label support, so per-shard series are encoded in
   the metric name: shard "s0" yields [rip_router_shard_s0_forwarded_total]
   and so on.  Shard ids are protocol tokens over [A-Za-z0-9._-]; the
   dots and dashes Prometheus names cannot carry are mapped to '_'. *)

let sanitize id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    id

type shard_instruments = {
  forwarded : Obs.Counter.t;  (* requests relayed to this shard *)
  failovers : Obs.Counter.t;  (* transport failures that triggered a retry elsewhere *)
  spills : Obs.Counter.t;  (* requests priced off this primary to its second choice *)
  price : Obs.Gauge.t;
  up : Obs.Gauge.t;  (* 1 while the shard answers its polls *)
  breaker_state : Obs.Gauge.t;  (* 0 closed, 1 open, 2 half-open *)
  breaker_opens : Obs.Counter.t;  (* closed/half-open -> open transitions *)
}

type t = {
  registry : Obs.t;
  started : float;
  requests : Obs.Counter.t;
  shed : Obs.Counter.t;
  local_degraded : Obs.Counter.t;
  rebalances : Obs.Counter.t;
  hedges : Obs.Counter.t;
  hedge_wins : Obs.Counter.t;
  forward_seconds : Obs.Histogram.t;
  in_flight : Obs.Gauge.t;
  shards : (string * shard_instruments) list;
}

let create ~shard_ids () =
  let registry = Obs.create () in
  let started = Cpu_clock.monotonic_seconds () in
  let counter name help = Obs.counter registry ~name ~help in
  Obs.gauge_fn registry ~name:"rip_router_uptime_seconds"
    ~help:"Seconds since router start (monotonic clock)" (fun () ->
      Cpu_clock.monotonic_seconds () -. started);
  let requests = counter "rip_router_requests_total" "SOLVE requests received" in
  let shed =
    counter "rip_router_shed_total"
      "SOLVE requests answered DEGRADED locally because every priced shard \
       was above the shed threshold"
  in
  let local_degraded =
    counter "rip_router_degraded_total"
      "SOLVE requests answered DEGRADED by the router itself (price shed + \
       shard loss)"
  in
  let rebalances =
    counter "rip_router_rebalances_total"
      "hash-ring membership changes (shard removed on sustained death or \
       re-added on recovery)"
  in
  let hedges =
    counter "rip_router_hedges_total"
      "forwards whose p99-derived hedge delay expired, issuing the request \
       to the spill target as well"
  in
  let hedge_wins =
    counter "rip_router_hedge_wins_total"
      "hedged forwards where the secondary's answer came back first and was \
       the one served"
  in
  let forward_seconds =
    Obs.histogram registry ~name:"rip_router_forward_seconds"
      ~help:"round-trip seconds of requests forwarded to a shard"
  in
  let in_flight =
    Obs.gauge registry ~name:"rip_router_in_flight"
      ~help:"SOLVE requests currently inside the router"
  in
  let shards =
    List.map
      (fun id ->
        let p name help =
          counter (Printf.sprintf "rip_router_shard_%s_%s" (sanitize id) name)
            (Printf.sprintf "%s (shard %s)" help id)
        in
        let g name help =
          Obs.gauge registry
            ~name:
              (Printf.sprintf "rip_router_shard_%s_%s" (sanitize id) name)
            ~help:(Printf.sprintf "%s (shard %s)" help id)
        in
        ( id,
          {
            forwarded = p "forwarded_total" "requests forwarded";
            failovers =
              p "failovers_total"
                "transport failures that sent the request elsewhere";
            spills =
              p "spills_total"
                "requests priced off this primary to its second choice";
            price = g "price" "current admission price";
            up = g "up" "1 while the shard answers polls";
            breaker_state =
              g "breaker_state"
                "circuit breaker: 0 closed, 1 open, 2 half-open";
            breaker_opens =
              p "breaker_opens_total"
                "circuit breaker trips on consecutive transport failures";
          } ))
      shard_ids
  in
  List.iter (fun (_, i) -> Obs.Gauge.set i.up 1.0) shards;
  {
    registry;
    started;
    requests;
    shed;
    local_degraded;
    rebalances;
    hedges;
    hedge_wins;
    forward_seconds;
    in_flight;
    shards;
  }

let shard t id = List.assoc id t.shards
let render t = Obs.render t.registry
let registry t = t.registry
let uptime_seconds t = Cpu_clock.monotonic_seconds () -. t.started
