(* A weighted consistent-hash ring over shard ids.

   Positions are the first 8 bytes of MD5, read big-endian and compared
   unsigned — a pure function of the shard id (for vnodes) or the
   routing key (for lookups), so the ring is deterministic across
   process restarts: the same membership always yields the same
   placement, which is what keeps every shard's LRU cache hot for its
   key range.  Each shard owns [vnodes_per_weight * weight] virtual
   nodes; a key is served by the first vnode clockwise from its
   position, and its second choice is the next vnode belonging to a
   *different* shard — the spill target that still leaves every other
   shard's key range untouched.

   Membership edits are functional ([add]/[remove] return a new ring):
   the router swaps the ring atomically under its mutex and readers
   never observe a half-rebuilt table.  Removing one of [n]
   equally-weighted shards moves only that shard's arcs (~1/n of the
   keyspace) to their clockwise successors; every other key keeps its
   shard — the minimal-remap property the tests pin down. *)

type t = {
  positions : int64 array;  (* vnode positions, ascending unsigned *)
  owners : string array;  (* owners.(i) owns positions.(i) *)
  members : (string * int) list;  (* (id, weight), insertion order *)
  vnodes_per_weight : int;
}

let default_vnodes_per_weight = 128

let position_of_string s =
  (* First 8 of the 16 MD5 bytes; big-endian so the hex prefix a human
     reads in digests orders the same way the ring does. *)
  String.get_int64_be (Digest.string s) 0

let key_position key = position_of_string key

let vnode_position id index =
  position_of_string (Printf.sprintf "%s#%d" id index)

let members t = t.members
let vnodes_per_weight t = t.vnodes_per_weight
let size t = List.length t.members
let vnode_count t = Array.length t.positions

let create ?(vnodes_per_weight = default_vnodes_per_weight) members =
  if vnodes_per_weight < 1 then
    invalid_arg "Ring.create: vnodes_per_weight must be >= 1";
  List.iteri
    (fun i (id, weight) ->
      if weight < 1 then
        invalid_arg
          (Printf.sprintf "Ring.create: shard %s has weight %d (must be >= 1)"
             id weight);
      if not (Rip_service.Protocol.valid_shard_id id) then
        invalid_arg (Printf.sprintf "Ring.create: invalid shard id %S" id);
      List.iteri
        (fun j (other, _) ->
          if j < i && String.equal id other then
            invalid_arg (Printf.sprintf "Ring.create: duplicate shard %s" id))
        members)
    members;
  let nodes =
    List.concat_map
      (fun (id, weight) ->
        List.init (vnodes_per_weight * weight) (fun i ->
            (vnode_position id i, id)))
      members
  in
  let nodes = Array.of_list nodes in
  Array.sort
    (fun (a, ida) (b, idb) ->
      match Int64.unsigned_compare a b with
      | 0 -> String.compare ida idb
      | c -> c)
    nodes;
  {
    positions = Array.map fst nodes;
    owners = Array.map snd nodes;
    members;
    vnodes_per_weight;
  }

let add t id ~weight =
  create ~vnodes_per_weight:t.vnodes_per_weight (t.members @ [ (id, weight) ])

let remove t id =
  if not (List.exists (fun (m, _) -> String.equal m id) t.members) then
    invalid_arg (Printf.sprintf "Ring.remove: unknown shard %s" id);
  create ~vnodes_per_weight:t.vnodes_per_weight
    (List.filter (fun (m, _) -> not (String.equal m id)) t.members)

(* Index of the first vnode at or clockwise-after [pos] (wrapping). *)
let successor t pos =
  let n = Array.length t.positions in
  let rec search lo hi =
    (* invariant: positions.(lo-1) < pos <= positions.(hi) (unsigned),
       with virtual sentinels at both ends *)
    if lo >= hi then hi
    else
      let mid = (lo + hi) / 2 in
      if Int64.unsigned_compare t.positions.(mid) pos < 0 then
        search (mid + 1) hi
      else search lo mid
  in
  let i = search 0 n in
  if i = n then 0 else i

let lookup t key =
  if Array.length t.positions = 0 then None
  else Some t.owners.(successor t (key_position key))

let lookup_pair t key =
  let n = Array.length t.positions in
  if n = 0 then None
  else
    let first = successor t (key_position key) in
    let primary = t.owners.(first) in
    let rec next i steps =
      if steps >= n then None
      else if String.equal t.owners.(i) primary then next ((i + 1) mod n) (succ steps)
      else Some t.owners.(i)
    in
    Some (primary, next ((first + 1) mod n) 0)

(* Fraction of the keyspace each shard owns, from vnode arc lengths.
   The arc ending at positions.(i) (coming from its predecessor,
   wrapping) belongs to owners.(i). *)
let shares t =
  let n = Array.length t.positions in
  if n = 0 then []
  else begin
    let totals = Hashtbl.create 16 in
    List.iter (fun (id, _) -> Hashtbl.replace totals id 0.0) t.members;
    let arc_fraction prev cur =
      (* unsigned (cur - prev) / 2^64; Int64 subtraction is exact
         modular arithmetic, so wrapping arcs come out right.  A full
         wrap (single vnode) measures 0 here and is fixed up below. *)
      let span = Int64.sub cur prev in
      let f = Int64.to_float span in
      let f = if f < 0.0 then f +. 0x1p64 else f in
      f /. 0x1p64
    in
    for i = 0 to n - 1 do
      let prev = t.positions.((i + n - 1) mod n) in
      let fraction =
        if n = 1 then 1.0 else arc_fraction prev t.positions.(i)
      in
      let id = t.owners.(i) in
      Hashtbl.replace totals id
        (Hashtbl.find totals id +. fraction)
    done;
    List.map (fun (id, _) -> (id, Hashtbl.find totals id)) t.members
  end
