(* Price-based admission control, one controller per shard.

   Instead of gating on a static high-water mark, the router treats each
   shard as a resource with an ask price and searches for the price that
   maximises the shard's *profit*: useful answers per second minus the
   weighted cost of the degradation it is inflicting (DEGRADED answers,
   TIMEOUTs, BUSY rejections).  The search is the iterative scheme of
   CloudNetworking's [optimizeResourcePriceNew]: while raising the price
   still raises profit, keep multiplying it by the growth factor; the
   first step that *loses* profit reverses direction and shrinks — a
   one-dimensional extremum-seeking climb that needs no model of the
   solver's capacity, only the last tick's observation.

   When the shard is comfortably below its utilization target the
   controller bypasses the climb entirely and decays the price toward
   the floor: an idle shard must become cheap quickly, or a transient
   spike would keep spilling traffic off a now-empty machine.

   The router turns prices into decisions: a key's primary shard serves
   it while its price is below [spill_price]; above that the request
   goes to its second-choice shard when that one is cheaper; when even
   the chosen shard's price has climbed past [shed_price] the router
   answers DEGRADED locally rather than queue behind a saturated
   cluster.  Those two thresholds live in the router's config — this
   module only maintains the per-shard price. *)

type config = {
  initial_price : float;
  floor : float;  (* idle price; decay target *)
  ceiling : float;  (* climb stops here regardless of profit *)
  growth : float;  (* multiplicative raise while profit improves *)
  shrink : float;  (* multiplicative back-off / idle decay *)
  degraded_cost : float;  (* profit penalty per DEGRADED per second *)
  timeout_cost : float;  (* profit penalty per TIMEOUT per second *)
  busy_cost : float;  (* profit penalty per BUSY per second *)
  utilization_low : float;  (* below this the price decays to floor *)
}

let default_config =
  {
    initial_price = 1.0;
    floor = 0.25;
    ceiling = 64.0;
    growth = 1.5;
    shrink = 0.6;
    degraded_cost = 2.0;
    timeout_cost = 4.0;
    busy_cost = 1.0;
    utilization_low = 0.25;
  }

type observation = {
  seconds : float;  (* wall seconds covered by this tick *)
  completed : int;  (* RESULT answers (fresh + cached) in the window *)
  degraded : int;
  timeouts : int;
  busy : int;
  in_flight : int;  (* admission slots held right now *)
  queue_depth : int;  (* the shard's configured bound (HEALTH) *)
}

type t = {
  config : config;
  mutable price : float;
  mutable last_profit : float;
  mutable rising : bool;  (* current climb direction *)
  mutable ticks : int;
}

let validate config =
  if not (config.floor > 0.0 && config.floor <= config.initial_price) then
    invalid_arg "Pricing.create: need 0 < floor <= initial_price";
  if config.ceiling < config.initial_price then
    invalid_arg "Pricing.create: ceiling below initial_price";
  if config.growth <= 1.0 then
    invalid_arg "Pricing.create: growth must exceed 1";
  if not (config.shrink > 0.0 && config.shrink < 1.0) then
    invalid_arg "Pricing.create: shrink must be in (0, 1)"

let create ?(config = default_config) () =
  validate config;
  {
    config;
    price = config.initial_price;
    last_profit = 0.0;
    rising = true;
    ticks = 0;
  }

let price t = t.price
let config t = t.config

let profit config o =
  if o.seconds <= 0.0 then 0.0
  else
    let per_second n = float_of_int n /. o.seconds in
    per_second o.completed
    -. (config.degraded_cost *. per_second o.degraded)
    -. (config.timeout_cost *. per_second o.timeouts)
    -. (config.busy_cost *. per_second o.busy)

let utilization o =
  if o.queue_depth <= 0 then 0.0
  else float_of_int o.in_flight /. float_of_int o.queue_depth

let clamp config price = Float.min config.ceiling (Float.max config.floor price)

let observe t o =
  let c = t.config in
  let p = profit c o in
  let util = utilization o in
  (if util < c.utilization_low && o.degraded = 0 && o.busy = 0 then begin
     (* Comfortably idle and inflicting no pain: decay toward the floor
        and reset the climb so the next congestion episode starts
        fresh. *)
     t.price <- clamp c (t.price *. c.shrink);
     t.rising <- true
   end
   else begin
     (* One extremum-seeking step.  On the very first loaded tick there
        is no previous profit to compare against, so just start the
        climb. *)
     (if t.ticks > 0 && p < t.last_profit then t.rising <- not t.rising);
     let factor = if t.rising then c.growth else c.shrink in
     t.price <- clamp c (t.price *. factor)
   end);
  t.last_profit <- p;
  t.ticks <- t.ticks + 1;
  t.price
