(** The cluster front end: one listening socket routing SOLVE traffic
    over N [rip_serviced] shards.

    Requests route by consistent-hashing the net's canonical digest
    ({!Rip_net.Net.canonical_digest}) over a weighted {!Ring}, keeping
    each shard's solve cache hot for its own key range.  Admission is
    price-based: a poller feeds each shard's STATS deltas to a
    {!Pricing} controller, and the request path forwards to the primary
    while its price is below [spill_price], spills to the key's second
    choice when that one is cheaper, and answers DEGRADED (overload)
    from the router's own analytic fallback tier once every candidate
    has priced past [shed_price].  With a single shard, the shard's
    static high-water mark remains the shed floor.

    The poller doubles as the failure detector: a shard missing
    [down_after] polls stops receiving traffic, after [remove_after]
    more its arcs fall to the survivors (a counted rebalance), and a
    recovery re-adds it — both transitions remap only that shard's
    keys.  A transport failure on the request path fails over
    immediately; with no candidate left the router answers DEGRADED
    (worker lost).  The router never drops a request.

    Two tail-tolerance mechanisms sit on the request path itself:

    - {b Hedged requests}: a forward still unanswered after a delay
      derived from the p99 of recent forward round-trips
      ([hedge_delay_factor] times the p99, floored at
      [hedge_delay_floor]) is also issued to the key's failover
      candidate, and the first answer wins; the loser's late answer is
      discarded when its connection completes.  Counted as
      [rip_router_hedges_total] / [rip_router_hedge_wins_total].
    - {b Circuit breaker}, per shard: [breaker_threshold] consecutive
      transport failures open the breaker, removing the shard from the
      candidate set without waiting for the poller's slower
      failure detector.  A later successful poll half-opens it; the
      next forwarded request closes it again or snaps it back open.
      Exported as [rip_router_shard_<id>_breaker_state] (0 closed,
      1 open, 2 half-open). *)

type shard_spec = { id : string; socket : string; weight : int }

type config = {
  pool_size : int;  (** connections kept per shard *)
  request_timeout : float;  (** per-forward socket timeout, seconds *)
  poll_interval : float;  (** pricing / liveness tick, seconds *)
  vnodes_per_weight : int;
  spill_price : float;  (** primary at/above this may spill *)
  shed_price : float;  (** every candidate at/above this sheds *)
  down_after : int;  (** missed polls before a shard is down *)
  remove_after : int;  (** further misses before ring removal *)
  pricing : Pricing.config;
  solver : Rip_core.Config.t option;  (** for the local fallback tier *)
  max_frame_bytes : int;
  hedge : bool;  (** hedge slow forwards onto the failover candidate *)
  hedge_delay_floor : float;
      (** seconds; the hedge delay never drops below this, so a cold or
          cache-hit-dominated histogram cannot hedge every request *)
  hedge_delay_factor : float;
      (** hedge delay = factor x p99 of recent forward round-trips *)
  breaker_threshold : int;
      (** consecutive transport failures that open a shard's breaker *)
  tracer : Rip_obs.Trace.t option;
      (** when set, every request leaves an ingress span plus one span
          per forward attempt, and forwarded frames carry a TRACE
          context parented on the forward span — shard-side spans nest
          under it in a {!Rip_obs.Trace_merge} timeline.  A request
          arriving without a TRACE header gets a deterministic root
          context minted at ingress. *)
  spool : Rip_obs.Wide_event.spool option;
      (** when set, every request emits exactly one wide event (outcome,
          target shard, hedge/failover/spill/breaker involvement,
          deadline slack) through the spool's tail sampler *)
}

val default_config : config
(** [hedge = true], [hedge_delay_floor = 0.05],
    [hedge_delay_factor = 1.5], [breaker_threshold = 3]. *)

type t

val create : ?config:config -> shards:shard_spec list -> Rip_tech.Process.t -> t
(** @raise Invalid_argument on an empty shard list, a duplicate or
    invalid shard id, or a nonsensical config
    (thresholds must satisfy [0 < spill_price <= shed_price],
    [hedge_delay_floor >= 0], [hedge_delay_factor > 0],
    [breaker_threshold >= 1]). *)

val run : t -> Unix.file_descr -> unit
(** Serve until {!request_shutdown}; starts the poller, owns and closes
    the listener, joins every connection thread and the poller, and
    closes the shard pools. *)

val request_shutdown : t -> unit
(** Idempotent, callable from a signal handler. *)

val stopping : t -> bool
val metrics : t -> Router_metrics.t
val shard_count : t -> int

val aggregate_stats : t -> Rip_service.Protocol.stats
(** The cluster as one server: counters sum live shards, their
    retired-incarnation baselines and the router's own local answers
    (keeping [requests = solved + errors + busy + timeouts + degraded +
    toobig]); percentiles are the max across shards; uptime is the
    router's own. *)

val health : t -> Rip_service.Protocol.health
(** [shard_id = "router"]; queue/high-water are sums of shard bounds. *)

val listen_unix : string -> Unix.file_descr
val listen_tcp : host:string -> port:int -> Unix.file_descr
