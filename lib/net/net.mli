(** A multi-layer two-pin interconnect (Problem LPRI, Section 3):
    [m] wire segments in a linear chain from a driver of width [w_d] to a
    receiver of width [w_r], with forbidden zones where no repeater fits.
    Positions along the net are microns from the driver, in [0, L]. *)

type t = private {
  name : string;
  segments : Segment.t array;  (** non-empty, in routing order *)
  zones : Zone.t list;  (** normalized: sorted, disjoint, inside [0, L] *)
  driver_width : float;  (** w_d in u, strictly positive *)
  receiver_width : float;  (** w_r in u, strictly positive *)
}

val create :
  ?name:string -> segments:Segment.t list -> zones:Zone.t list ->
  driver_width:float -> receiver_width:float -> unit -> t
(** Validates and normalizes.  Zones may be given in any order; they are
    merged and must fit within the net (a zone end may touch [L]).
    @raise Invalid_argument on an empty segment list, non-positive pin
    widths, or a zone outside the net. *)

val total_length : t -> float
(** [L = sum l_i] in um. *)

val segment_count : t -> int

val total_wire_capacitance : t -> float
(** Sum over segments of [l_i *. c_i], F. *)

val total_wire_resistance : t -> float
(** Sum over segments of [l_i *. r_i], Ohm. *)

val position_legal : t -> float -> bool
(** True when the position is inside [0, L] and not strictly inside a
    forbidden zone. *)

val uniform : ?name:string -> Rip_tech.Layer.t -> length:float ->
  segment_count:int -> driver_width:float -> receiver_width:float -> t
(** Convenience: a zone-free uniform net split into equal segments. *)

val canonical_digest : t -> string
(** A hex digest of the net's electrical content: pin widths, per-segment
    (length, unit R, unit C) and normalized zones, each rendered at
    [%.17g].  Two nets share a digest iff they state the same insertion
    problem — the cosmetic net name and segment layer names are excluded.
    This is the net part of a solve-cache key
    ({!Rip_service.Solve_cache}). *)

val equal : t -> t -> bool
val pp : t Fmt.t
