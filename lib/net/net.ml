type t = {
  name : string;
  segments : Segment.t array;
  zones : Zone.t list;
  driver_width : float;
  receiver_width : float;
}

let total_length net =
  Array.fold_left (fun acc s -> acc +. s.Segment.length) 0.0 net.segments

let create ?(name = "net") ~segments ~zones ~driver_width ~receiver_width () =
  (match segments with
  | [] -> invalid_arg "Net.create: a net needs segments"
  | _ :: _ -> ());
  if driver_width <= 0.0 || receiver_width <= 0.0 then
    invalid_arg "Net.create: pin widths must be positive";
  let segments = Array.of_list segments in
  let length =
    Array.fold_left (fun acc s -> acc +. s.Segment.length) 0.0 segments
  in
  let zones = Zone.normalize zones in
  List.iter
    (fun (z : Zone.t) ->
      if z.z_end > length +. 1e-9 then
        invalid_arg "Net.create: forbidden zone extends beyond the net")
    zones;
  { name; segments; zones; driver_width; receiver_width }

let segment_count net = Array.length net.segments

let total_wire_capacitance net =
  Array.fold_left
    (fun acc s -> acc +. Segment.total_capacitance s)
    0.0 net.segments

let total_wire_resistance net =
  Array.fold_left
    (fun acc s -> acc +. Segment.total_resistance s)
    0.0 net.segments

let position_legal net x =
  x >= 0.0 && x <= total_length net && not (Zone.blocked net.zones x)

let uniform ?(name = "uniform") layer ~length ~segment_count ~driver_width
    ~receiver_width =
  if segment_count <= 0 then invalid_arg "Net.uniform: segment_count <= 0";
  let piece = length /. float_of_int segment_count in
  let segments =
    List.init segment_count (fun _ -> Segment.of_layer layer ~length:piece)
  in
  create ~name ~segments ~zones:[] ~driver_width ~receiver_width ()

let equal a b =
  String.equal a.name b.name
  && Array.length a.segments = Array.length b.segments
  && Array.for_all2 Segment.equal a.segments b.segments
  && List.equal Zone.equal a.zones b.zones
  && a.driver_width = b.driver_width
  && a.receiver_width = b.receiver_width

(* The digest covers exactly the fields the solvers read — pin widths,
   per-segment (length, r, c) and normalized zones — rendered at %.17g so
   electrically identical nets collide and any float difference does not.
   The cosmetic [name] and per-segment layer names are excluded. *)
let canonical_digest net =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    (Printf.sprintf "pins %.17g %.17g\n" net.driver_width net.receiver_width);
  Array.iter
    (fun (s : Segment.t) ->
      Buffer.add_string buffer
        (Printf.sprintf "seg %.17g %.17g %.17g\n" s.length s.resistance_per_um
           s.capacitance_per_um))
    net.segments;
  List.iter
    (fun (z : Zone.t) ->
      Buffer.add_string buffer
        (Printf.sprintf "zone %.17g %.17g\n" z.z_start z.z_end))
    net.zones;
  Digest.to_hex (Digest.string (Buffer.contents buffer))

(* [pp] renders a human-readable report, not wire bytes: nothing caches
   or compares its output, so full %.17g precision would only hurt
   readability. *)
let[@lint.allow "float-format-precision"] pp ppf net =
  Fmt.pf ppf "@[<v>net %s: %d segments, %g um, wd=%gu, wr=%gu@,zones: %a@]"
    net.name (segment_count net) (total_length net) net.driver_width
    net.receiver_width
    Fmt.(list ~sep:comma Zone.pp)
    net.zones
