module Repeater_library = Rip_dp.Repeater_library
module Process = Rip_tech.Process

type config = {
  coarse_library : Repeater_library.t;
  coarse_pitch : float;
  refined_granularity : float;
  refined_radius : int;
  refined_pitch : float;
  min_width : float;
  max_width : float;
}

let default_config =
  {
    coarse_library =
      Repeater_library.uniform ~min_width:80.0 ~step:80.0 ~count:5;
    coarse_pitch = 200.0;
    refined_granularity = 10.0;
    refined_radius = 10;
    refined_pitch = 50.0;
    min_width = 10.0;
    max_width = 400.0;
  }

type report = {
  solution : Tree_solution.t;
  total_width : float;
  max_delay : float;
  runtime_seconds : float;
  coarse : Tree_dp.result option;
  sizing : Tree_sizing.result option;
  final : Tree_dp.result option;
}

let fallback_library =
  Repeater_library.range ~min_width:10.0 ~max_width:400.0 ~step:10.0

let tau_min (process : Process.t) tree =
  let sites = Tree_dp.uniform_sites tree ~pitch:100.0 in
  Tree_min_delay.tau_min process.Process.repeater tree
    ~library:(Repeater_library.range ~min_width:10.0 ~max_width:400.0
                ~step:20.0)
    ~sites

let solve ?(config = default_config) (process : Process.t) tree ~budget =
  let started = Rip_numerics.Cpu_clock.thread_seconds () in
  let repeater = process.Process.repeater in
  let coarse_sites = Tree_dp.uniform_sites tree ~pitch:config.coarse_pitch in
  (* Stage 1: coarse DP (fallback library when the 80u grid cannot meet a
     tight budget). *)
  let coarse =
    match
      Tree_dp.solve repeater tree ~library:config.coarse_library
        ~sites:coarse_sites ~budget
    with
    | Some r -> Some r
    | None ->
        Tree_dp.solve repeater tree ~library:fallback_library
          ~sites:coarse_sites ~budget
  in
  match coarse with
  | None ->
      Error
        (Printf.sprintf "infeasible: no tree insertion meets %.4g ps"
           (budget *. 1e12))
  | Some coarse_result ->
      (* Stage 2: continuous sizing at the coarse locations. *)
      let sizing =
        Tree_sizing.solve repeater tree
          ~placements:coarse_result.Tree_dp.solution ~budget
      in
      (* Stage 3: refined library and location set; stage 4: final DP. *)
      let final =
        match sizing with
        | None -> None
        | Some sized ->
            if Array.length sized.Tree_sizing.widths = 0 then None
            else
              let library =
                Repeater_library.round_to_grid
                  ~granularity:config.refined_granularity
                  ~min_width:config.min_width ~max_width:config.max_width
                  (Array.to_list sized.Tree_sizing.widths)
              in
              let sites =
                Tree_dp.around_sites tree
                  ~centers:coarse_result.Tree_dp.solution
                  ~radius:config.refined_radius ~pitch:config.refined_pitch
              in
              Tree_dp.solve repeater tree ~library ~sites ~budget
      in
      let best =
        match final with
        | Some f
          when f.Tree_dp.total_width <= coarse_result.Tree_dp.total_width ->
            f
        | Some _ | None -> coarse_result
      in
      Ok
        {
          solution = best.Tree_dp.solution;
          total_width = best.Tree_dp.total_width;
          max_delay = best.Tree_dp.max_delay;
          runtime_seconds =
            Rip_numerics.Cpu_clock.thread_seconds () -. started;
          coarse = Some coarse_result;
          sizing;
          final;
        }
