module Repeater_model = Rip_tech.Repeater_model
module Bracket = Rip_numerics.Bracket

type result = {
  widths : float array;
  total_width : float;
  max_delay : float;
  sink_weights : float array;
  outer_iterations : int;
}

let width_floor = 1e-3
let width_ceiling = 1e5

type workspace = {
  layout : Tree_layout.t;
  repeater : Repeater_model.t;
  rs : float;
  co : float;
  gate_point : int array;  (* repeater order -> point *)
  order : int array;  (* repeater indices, topological (point ascending) *)
  parent_gate_of : int array;  (* repeater order -> gate point *)
  sink_count : int;
}

let make_workspace repeater tree placements =
  let layout = Tree_layout.expand tree placements in
  let gate_point = Tree_layout.repeater_points layout in
  let order =
    Array.init (Array.length gate_point) (fun i -> i)
  in
  Array.sort (fun a b -> Int.compare gate_point.(a) gate_point.(b)) order;
  {
    layout;
    repeater;
    rs = repeater.Repeater_model.rs;
    co = repeater.Repeater_model.co;
    gate_point;
    order;
    parent_gate_of =
      Array.map (fun q -> Tree_layout.parent_gate layout q) gate_point;
    sink_count = Tree.sink_count tree;
  }

(* Summed sink weight at-and-below each point (crossing gates); points are
   in topological order so one reverse scan suffices. *)
let downstream_weights ws weights =
  let points = ws.layout.Tree_layout.points in
  let w = Array.make (Array.length points) 0.0 in
  for q = Array.length points - 1 downto 0 do
    (match points.(q).Tree_layout.kind with
    | Tree_layout.Sink_load s -> w.(q) <- w.(q) +. weights.(s)
    | Tree_layout.Root_gate | Tree_layout.Repeater_gate _
    | Tree_layout.Junction -> ());
    let parent = points.(q).Tree_layout.parent in
    if parent >= 0 then w.(parent) <- w.(parent) +. w.(q)
  done;
  w

(* Weight-scaled wire resistance from each repeater's parent gate down to
   the repeater: sum over path pieces of r * l * W(piece endpoint). *)
let weighted_upstream_resistance ws wdown =
  let points = ws.layout.Tree_layout.points in
  Array.mapi
    (fun i q ->
      let stop = ws.parent_gate_of.(i) in
      let rec walk q acc =
        if q = stop || q < 0 then acc
        else
          let p = points.(q) in
          walk p.Tree_layout.parent
            (acc
            +. (p.Tree_layout.length *. p.Tree_layout.resistance_per_um
               *. wdown.(q)))
      in
      walk q 0.0)
    ws.gate_point

let gate_width ws widths point =
  match ws.layout.Tree_layout.points.(point).Tree_layout.kind with
  | Tree_layout.Root_gate -> ws.layout.Tree_layout.tree.Tree.driver_width
  | Tree_layout.Repeater_gate i -> widths.(i)
  | Tree_layout.Sink_load _ | Tree_layout.Junction ->
      invalid_arg "Tree_sizing: not a gate"

(* One Gauss-Seidel sweep of the tree stationarity condition; [offset] is
   1.0 for the Lagrangian solve and 0.0 for the min-delay limit. *)
let sweep ws widths wdown wr ~offset =
  let worst = ref 0.0 in
  Array.iter
    (fun i ->
      let q = ws.gate_point.(i) in
      let stage_cap =
        Tree_layout.stage_capacitance ws.repeater ws.layout ~widths ~gate:q
      in
      let p = ws.parent_gate_of.(i) in
      let wp = gate_width ws widths p in
      let numerator = ws.rs *. stage_cap *. wdown.(q) in
      let denominator =
        offset
        +. (ws.co *. ((ws.rs /. wp *. wdown.(p)) +. wr.(i)))
      in
      let w =
        Float.max width_floor
          (Float.min width_ceiling (sqrt (numerator /. denominator)))
      in
      let old = widths.(i) in
      widths.(i) <- w;
      worst := Float.max !worst (Float.abs (w -. old) /. Float.max w 1e-12))
    ws.order;
  !worst

let converge ws widths wdown wr ~offset =
  let rec loop k =
    if sweep ws widths wdown wr ~offset > 1e-12 && k < 300 then loop (k + 1)
  in
  loop 0

let min_delay_widths repeater tree ~placements =
  let ws = make_workspace repeater tree placements in
  let weights = Array.make ws.sink_count 1.0 in
  let wdown = downstream_weights ws weights in
  let wr = weighted_upstream_resistance ws wdown in
  let widths = Array.make (Array.length ws.gate_point) 100.0 in
  converge ws widths wdown wr ~offset:0.0;
  widths

let solve repeater tree ~placements ~budget =
  let ws = make_workspace repeater tree placements in
  let n = Array.length ws.gate_point in
  if n = 0 then begin
    let delay = Tree_layout.max_sink_delay repeater ws.layout ~widths:[||] in
    if delay <= budget then
      Some { widths = [||]; total_width = 0.0; max_delay = delay;
             sink_weights = Array.make ws.sink_count 0.0;
             outer_iterations = 0 }
    else None
  end
  else begin
    let fastest = min_delay_widths repeater tree ~placements in
    if Tree_layout.max_sink_delay repeater ws.layout ~widths:fastest > budget
    then None
    else begin
      let mu = Array.make ws.sink_count (1.0 /. float_of_int ws.sink_count) in
      let widths = Array.copy fastest in
      let outer = ref 0 in
      let result = ref None in
      (* Scale guess: at weight ~ 1/(d tau/d w) the offset term competes
         with the weighted terms. *)
      let scale_guess = ref 1e12 in
      let rounds = 8 in
      for round = 1 to rounds do
        incr outer;
        let weights scale = Array.map (fun m -> scale *. m) mu in
        let delay_at scale =
          let w = weights scale in
          let wdown = downstream_weights ws w in
          let wr = weighted_upstream_resistance ws wdown in
          converge ws widths wdown wr ~offset:1.0;
          Tree_layout.max_sink_delay repeater ws.layout ~widths
        in
        (* Larger scale -> larger widths -> smaller delay. *)
        let f scale = delay_at scale -. budget in
        (match
           Bracket.find_root ~f ~lo:(1e-8 *. !scale_guess)
             ~hi:(1e2 *. !scale_guess) ~tol:1e-12
         with
        | Bracket.No_sign_change _ -> ()
        | Bracket.Root scale ->
            scale_guess := scale;
            let max_delay = delay_at scale in
            let total = Array.fold_left ( +. ) 0.0 widths in
            let keep =
              match !result with
              | Some r -> total < r.total_width
              | None -> true
            in
            if keep && max_delay <= budget *. (1.0 +. 1e-6) then
              result :=
                Some
                  { widths = Array.copy widths; total_width = total;
                    max_delay; sink_weights = weights scale;
                    outer_iterations = !outer });
        (* Rebalance criticality for the next round. *)
        if round < rounds then begin
          let w = weights !scale_guess in
          let wdown = downstream_weights ws w in
          let wr = weighted_upstream_resistance ws wdown in
          converge ws widths wdown wr ~offset:1.0;
          let delays = Tree_layout.sink_delays repeater ws.layout ~widths in
          let sum = ref 0.0 in
          Array.iteri
            (fun s m ->
              let ratio = delays.(s) /. budget in
              let m' = Float.max 1e-9 (m *. ratio *. ratio) in
              mu.(s) <- m';
              sum := !sum +. m')
            (Array.copy mu);
          Array.iteri (fun s m -> mu.(s) <- m /. !sum) mu
        end
      done;
      !result
    end
  end
