type node = {
  id : int;
  parent : int;
  length : float;
  resistance_per_um : float;
  capacitance_per_um : float;
  zones : (float * float) list;
  children : int list;
}

type sink = {
  node : int;
  load_width : float;
}

type t = {
  name : string;
  nodes : node array;
  driver_width : float;
  sinks : sink list;
}

type builder = {
  builder_name : string;
  builder_driver_width : float;
  mutable nodes_rev : node list;  (* excluding the root *)
  mutable next_id : int;
  mutable sinks : (int * float) list;
}

let builder ?(name = "tree") ~driver_width () =
  if driver_width <= 0.0 then
    invalid_arg "Tree.builder: driver width must be positive";
  { builder_name = name; builder_driver_width = driver_width;
    nodes_rev = []; next_id = 1; sinks = [] }

let normalize_zones length zones =
  List.iter
    (fun (lo, hi) ->
      if lo < 0.0 || hi > length || hi <= lo then
        invalid_arg "Tree.add_edge: zone outside the edge")
    zones;
  List.sort
    (fun (a_lo, a_hi) (b_lo, b_hi) ->
      match Float.compare a_lo b_lo with
      | 0 -> Float.compare a_hi b_hi
      | c -> c)
    zones

let add_edge b ~parent ?(zones = []) ~length ~resistance_per_um
    ~capacitance_per_um () =
  if parent < 0 || parent >= b.next_id then
    invalid_arg "Tree.add_edge: unknown parent";
  if length <= 0.0 then invalid_arg "Tree.add_edge: length must be positive";
  if resistance_per_um <= 0.0 || capacitance_per_um <= 0.0 then
    invalid_arg "Tree.add_edge: RC must be positive";
  let id = b.next_id in
  b.next_id <- id + 1;
  b.nodes_rev <-
    { id; parent; length; resistance_per_um; capacitance_per_um;
      zones = normalize_zones length zones; children = [] }
    :: b.nodes_rev;
  id

let add_layer_edge b ~parent ?zones (layer : Rip_tech.Layer.t) ~length =
  add_edge b ~parent ?zones ~length
    ~resistance_per_um:layer.Rip_tech.Layer.resistance_per_um
    ~capacitance_per_um:layer.Rip_tech.Layer.capacitance_per_um ()

let set_sink b ~node ~load_width =
  if node <= 0 || node >= b.next_id then
    invalid_arg "Tree.set_sink: unknown node";
  if load_width <= 0.0 then
    invalid_arg "Tree.set_sink: load width must be positive";
  b.sinks <- (node, load_width) :: List.remove_assoc node b.sinks

let build b =
  let count = b.next_id in
  if count = 1 then invalid_arg "Tree.build: the root has no edges";
  let root =
    { id = 0; parent = -1; length = 0.0; resistance_per_um = 1.0;
      capacitance_per_um = 1.0; zones = []; children = [] }
  in
  let nodes = Array.make count root in
  List.iter (fun n -> nodes.(n.id) <- n) b.nodes_rev;
  (* Rebuild child lists in id order. *)
  for id = count - 1 downto 1 do
    let n = nodes.(id) in
    let p = nodes.(n.parent) in
    nodes.(n.parent) <- { p with children = id :: p.children }
  done;
  let sinks =
    List.filter_map
      (fun id ->
        if id > 0 && nodes.(id).children = [] then
          match List.assoc_opt id b.sinks with
          | Some load_width -> Some { node = id; load_width }
          | None ->
              invalid_arg
                (Printf.sprintf "Tree.build: leaf %d has no sink" id)
        else None)
      (List.init count (fun i -> i))
  in
  List.iter
    (fun (id, _) ->
      if nodes.(id).children <> [] then
        invalid_arg
          (Printf.sprintf "Tree.build: sink %d is not a leaf" id))
    b.sinks;
  { name = b.builder_name; nodes; driver_width = b.builder_driver_width;
    sinks }

let node_count (t : t) = Array.length t.nodes
let sink_count (t : t) = List.length t.sinks
let is_leaf t id = t.nodes.(id).children = []

let total_wire_length t =
  Array.fold_left (fun acc n -> acc +. n.length) 0.0 t.nodes

let total_wire_capacitance t =
  Array.fold_left
    (fun acc n -> acc +. (n.length *. n.capacitance_per_um))
    0.0 t.nodes

let path_to_root t id =
  let rec walk id acc =
    if id < 0 then List.rev acc else walk t.nodes.(id).parent (id :: acc)
  in
  walk id []

let offset_legal t ~edge offset =
  let n = t.nodes.(edge) in
  offset > 0.0 && offset < n.length
  && not (List.exists (fun (lo, hi) -> offset > lo && offset < hi) n.zones)

let chain_of_net (net : Rip_net.Net.t) =
  let b =
    builder ~name:net.Rip_net.Net.name
      ~driver_width:net.Rip_net.Net.driver_width ()
  in
  let start_of = ref 0.0 in
  let last =
    Array.fold_left
      (fun parent (s : Rip_net.Segment.t) ->
        let seg_start = !start_of in
        start_of := seg_start +. s.Rip_net.Segment.length;
        (* Clip the net's global zones onto this segment as offsets. *)
        let zones =
          List.filter_map
            (fun (z : Rip_net.Zone.t) ->
              (* Clamp into the segment: cumulative starts and the net's
                 zone tolerance can each drift by ~1e-9. *)
              let len = s.Rip_net.Segment.length in
              let lo =
                Float.max 0.0 (z.Rip_net.Zone.z_start -. seg_start)
              in
              let hi =
                Float.min len (z.Rip_net.Zone.z_end -. seg_start)
              in
              if hi > lo then Some (lo, hi) else None)
            net.Rip_net.Net.zones
        in
        add_edge b ~parent ~zones ~length:s.Rip_net.Segment.length
          ~resistance_per_um:s.Rip_net.Segment.resistance_per_um
          ~capacitance_per_um:s.Rip_net.Segment.capacitance_per_um ())
      0 net.Rip_net.Net.segments
  in
  set_sink b ~node:last ~load_width:net.Rip_net.Net.receiver_width;
  build b

let pp ppf t =
  Fmt.pf ppf "tree %s: %d nodes, %d sinks, %.0f um wire" t.name
    (node_count t) (sink_count t) (total_wire_length t)
