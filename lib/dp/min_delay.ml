module Solution = Rip_elmore.Solution

type result = {
  solution : Solution.t;
  delay : float;
}

let solve geometry repeater ~library ~candidates =
  let chain = Chain.create geometry repeater ~candidates in
  let n_sites = Chain.site_count chain in
  let last = n_sites - 1 in
  let lib = Repeater_library.to_array library in
  let widths_at site =
    if site = 0 then [| chain.Chain.driver_width |]
    else if site = last then [| chain.Chain.receiver_width |]
    else lib
  in
  (* Flat state columns indexed by [site * stride + width index] — the
     relaxation loop reads and writes these millions of times, and flat
     float/int arrays avoid the pointer chase of per-cell records. *)
  let stride = Stdlib.max 1 (Array.length lib) in
  let n_states = n_sites * stride in
  let best = Array.make n_states Float.infinity in
  let pred_site = Array.make n_states (-1) in
  let pred_width = Array.make n_states (-1) in
  best.(0) <- 0.0;
  (* The stage delay factored exactly as in [Fast_dp]: wire terms are
     fixed per (source, target) pair and [rs /. w] is precomputed, with
     [Chain.stage_delay]'s left-to-right float association preserved so
     every relaxation — and hence [tau_min] — is bit-identical to the
     direct-call version. *)
  let cum_r = chain.Chain.cum_r in
  let cum_c = chain.Chain.cum_c in
  let cum_p = chain.Chain.cum_p in
  let rs = repeater.Rip_tech.Repeater_model.rs in
  let co = repeater.Rip_tech.Repeater_model.co in
  let k_intr = Rip_tech.Repeater_model.intrinsic_delay repeater in
  let inv_lib = Array.map (fun w -> rs /. w) lib in
  let inv_driver = [| rs /. chain.Chain.driver_width |] in
  let inv_receiver = [| rs /. chain.Chain.receiver_width |] in
  let invs_at site =
    if site = 0 then inv_driver
    else if site = last then inv_receiver
    else inv_lib
  in
  for site = 1 to last do
    let site_widths = widths_at site in
    let rt = cum_r.(site) and ct = cum_c.(site) and pt = cum_p.(site) in
    for wj = 0 to Array.length site_widths - 1 do
      let cell = (site * stride) + wj in
      let gate_c = co *. site_widths.(wj) in
      for src = 0 to site - 1 do
        let wire_r = rt -. cum_r.(src) in
        let q = (ct -. cum_c.(src)) +. gate_c in
        let t2 = wire_r *. gate_c in
        let elm = (wire_r *. ct) -. (pt -. cum_p.(src)) in
        let s_invs = invs_at src in
        let srow = src * stride in
        for wi = 0 to Array.length s_invs - 1 do
          let arrival = Array.unsafe_get best (srow + wi) in
          if arrival < Float.infinity then begin
            let total =
              arrival
              +. (((k_intr +. (Array.unsafe_get s_invs wi *. q)) +. t2)
                 +. elm)
            in
            if total < Array.unsafe_get best cell then begin
              Array.unsafe_set best cell total;
              pred_site.(cell) <- src;
              pred_width.(cell) <- wi
            end
          end
        done
      done
    done
  done;
  let rec backtrack site wj acc =
    if site <= 0 then acc
    else
      let cell = (site * stride) + wj in
      let acc =
        if Chain.is_interior chain site then
          (chain.Chain.positions.(site), (widths_at site).(wj)) :: acc
        else acc
      in
      backtrack pred_site.(cell) pred_width.(cell) acc
  in
  let solution = Solution.create (backtrack last 0 []) in
  { solution; delay = best.(last * stride) }

let tau_min geometry repeater ~library ~candidates =
  (solve geometry repeater ~library ~candidates).delay
