module Solution = Rip_elmore.Solution
module Delay = Rip_elmore.Delay
module Hooks = Rip_numerics.Hooks

type stats = {
  sites : int;
  transitions : int;
  labels : int;
}

type result = {
  solution : Solution.t;
  total_width : float;
  delay : float;
  stats : stats;
}

type probe_event =
  | Column of {
      site : int;
      width_index : int;
      collected : int;
      kept : int;
    }

type backend = Reference | Fast | Auto

let backend_name = function
  | Reference -> "reference"
  | Fast -> "fast"
  | Auto -> "auto"

(* [Auto] cutover, in DP states (interior candidate sites x library
   size).  Below it the reference backend's frontiers are tiny and the
   fast backend's backward minF pass plus arena setup are pure
   overhead; above it the pruning and the flat arenas win, and keep
   winning by growing margins.  Measured on the suite's smallest net
   (2000-rep micro, per-solve wall time): break-even sits at n*b = 12
   (ratio 1.05), fast is 2.3-3.5x ahead by n*b = 24 and ~30x ahead on
   the g=40u bench instance (92 x 10 states), while below n*b = 8 the
   reference is 1.4-4x faster in absolute single-digit microseconds.
   16 sits just above break-even, so [Auto] only ever picks
   [Reference] for instances where the choice is immaterial. *)
let auto_cutover = 16

let auto_backend ~interior_sites ~library_size =
  if interior_sites * library_size >= auto_cutover then Fast else Reference

type request = {
  geometry : Rip_net.Geometry.t;
  repeater : Rip_tech.Repeater_model.t;
  library : Repeater_library.t;
  candidates : float list;
  budget : float;
  backend : backend;
  frontier_cap : int option;
  arena : Fast_dp.Arena.t option;
  hooks : probe_event Hooks.t;
}

let request ?(backend = Auto) ?frontier_cap ?arena
    ?(hooks = Hooks.default) geometry repeater ~library ~candidates ~budget =
  { geometry; repeater; library; candidates; budget; backend; frontier_cap;
    arena; hooks }

type label = {
  delay : float;
  width_units : int;  (* total repeater width quantised to milli-u *)
  pred_site : int;
  pred_width : int;  (* index into the predecessor site's width array *)
  pred_label : int;  (* index into the predecessor state's frontier *)
}

let units_per_u = 1000.0
let width_units w = int_of_float (Float.round (w *. units_per_u))

(* Bound a frontier to [cap] labels by sampling it evenly along the width
   axis.  The frontier is width-ascending with strictly decreasing delay,
   so index 0 (the cheapest label) and the last index (the fastest) are
   always kept; dropping interior labels can only cost power optimality,
   never feasibility. *)
let thin_frontier cap frontier =
  let n = Array.length frontier in
  if n <= cap then frontier
  else Array.init cap (fun i -> frontier.(i * (n - 1) / (cap - 1)))

(* Total order on labels.  (width_units, delay) alone is what the DP
   cares about, but the backtracking indices break any remaining tie so
   lists collected from a Hashtbl can be canonicalised independently of
   hash iteration order. *)
let label_order a b =
  match Int.compare a.width_units b.width_units with
  | 0 -> (
      match Float.compare a.delay b.delay with
      | 0 -> (
          match Int.compare a.pred_site b.pred_site with
          | 0 -> (
              match Int.compare a.pred_width b.pred_width with
              | 0 -> Int.compare a.pred_label b.pred_label
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

(* Pareto prune: ascending width, then keep strictly decreasing delay. *)
let freeze_frontier labels =
  let arr = Array.of_list labels in
  Array.sort label_order arr;
  let kept = ref [] in
  let best_delay = ref Float.infinity in
  Array.iter
    (fun l ->
      if l.delay < !best_delay then begin
        kept := l :: !kept;
        best_delay := l.delay
      end)
    arr;
  Array.of_list (List.rev !kept)

(* The reference backend: the textbook Lillis/Cheng/Lin label DP, kept
   as the exactness baseline the fast backend must match bit for bit. *)
let solve_reference ?frontier_cap ~cancel ~probe chain ~library ~budget =
  let geometry = chain.Chain.geometry in
  let repeater = chain.Chain.repeater in
  let n_sites = Chain.site_count chain in
  let last = n_sites - 1 in
  let lib = Repeater_library.to_array library in
  let widths_at site =
    if site = 0 then [| chain.Chain.driver_width |]
    else if site = last then [| chain.Chain.receiver_width |]
    else lib
  in
  (* Thickest driver any predecessor can offer: stage delay is strictly
     decreasing in the driving width, so this width gives a lower bound
     on every stage over a given span. *)
  let widest_driver =
    Float.max chain.Chain.driver_width (Repeater_library.max_width library)
  in
  (* frontiers.(site).(width_index) — filled strictly left to right. *)
  let frontiers =
    Array.init n_sites (fun site ->
        Array.make (Array.length (widths_at site)) [||])
  in
  frontiers.(0).(0) <-
    [| { delay = 0.0; width_units = 0; pred_site = -1; pred_width = -1;
         pred_label = -1 } |];
  let transitions = ref 0 in
  let labels = ref 0 in
  let collected : (int, label) Hashtbl.t = Hashtbl.create 256 in
  for site = 1 to last do
    (* Candidate-column cancellation poll: a fired token stops the solve
       before the next column's transition scan. *)
    cancel ();
    let site_widths = widths_at site in
    let added_units =
      if Chain.is_interior chain site then
        Array.map width_units site_widths
      else Array.map (fun _ -> 0) site_widths
    in
    for wj = 0 to Array.length site_widths - 1 do
      Hashtbl.reset collected;
      let to_width = site_widths.(wj) in
      (* Scan predecessors right to left.  Once even the best case — the
         thickest driver with a zero arrival — overshoots the budget, so
         does every farther predecessor: stage delay only grows with
         span.  Cuts the quadratic site scan to the feasible window. *)
      let src = ref (site - 1) in
      let scanning = ref true in
      while !scanning && !src >= 0 do
        let s = !src in
        if
          Chain.stage_delay chain ~from_site:s ~from_width:widest_driver
            ~to_site:site ~to_width
          > budget
        then scanning := false
        else begin
          let src_widths = widths_at s in
          for wi = 0 to Array.length src_widths - 1 do
            let frontier = frontiers.(s).(wi) in
            if Array.length frontier > 0 then begin
              incr transitions;
              let stage =
                Chain.stage_delay chain ~from_site:s
                  ~from_width:src_widths.(wi) ~to_site:site ~to_width
              in
              Array.iteri
                (fun li l ->
                  let delay = l.delay +. stage in
                  if delay <= budget then begin
                    let width_units = l.width_units + added_units.(wj) in
                    let candidate =
                      { delay; width_units; pred_site = s; pred_width = wi;
                        pred_label = li }
                    in
                    match Hashtbl.find_opt collected width_units with
                    | Some best when best.delay <= delay -> ()
                    | Some _ | None ->
                        Hashtbl.replace collected width_units candidate
                  end)
                frontier
            end
          done
        end;
        decr src
      done;
      let frontier =
        freeze_frontier
          (List.sort label_order
             (Hashtbl.fold (fun _ l acc -> l :: acc) collected []))
      in
      let frontier =
        match frontier_cap with
        | Some cap -> thin_frontier cap frontier
        | None -> frontier
      in
      labels := !labels + Array.length frontier;
      (* Guarded so the event record is never allocated without a
         listener — an absent probe costs one branch per column. *)
      (match probe with
      | None -> ()
      | Some f ->
          f
            (Column
               {
                 site;
                 width_index = wj;
                 collected = Hashtbl.length collected;
                 kept = Array.length frontier;
               }));
      frontiers.(site).(wj) <- frontier
    done
  done;
  let receiver = frontiers.(last).(0) in
  if Array.length receiver = 0 then None
  else begin
    (* The frozen frontier is width-ascending, so entry 0 is min width. *)
    let rec backtrack site wj li acc =
      if site <= 0 then acc
      else
        let l = frontiers.(site).(wj).(li) in
        let acc =
          if Chain.is_interior chain site then
            (chain.Chain.positions.(site), (widths_at site).(wj)) :: acc
          else acc
        in
        backtrack l.pred_site l.pred_width l.pred_label acc
    in
    let placements = backtrack last 0 0 [] in
    let solution = Solution.create placements in
    let delay = Delay.total repeater geometry solution in
    Some
      {
        solution;
        total_width = Solution.total_width solution;
        delay;
        stats = { sites = n_sites; transitions = !transitions;
                  labels = !labels };
      }
  end

let run (r : request) =
  (match r.frontier_cap with
  | Some cap when cap < 2 ->
      invalid_arg "Power_dp.run: frontier_cap must be at least 2"
  | Some _ | None -> ());
  let chain = Chain.create r.geometry r.repeater ~candidates:r.candidates in
  let backend =
    match r.backend with
    | (Reference | Fast) as b -> b
    | Auto ->
        auto_backend ~interior_sites:(Chain.interior_count chain)
          ~library_size:(Repeater_library.size r.library)
  in
  match backend with
  | Auto -> assert false
  | Reference ->
      solve_reference ?frontier_cap:r.frontier_cap
        ~cancel:r.hooks.Hooks.cancel ~probe:r.hooks.Hooks.probe chain
        ~library:r.library ~budget:r.budget
  | Fast -> (
      let on_column =
        match r.hooks.Hooks.probe with
        | None -> None
        | Some f ->
            Some
              (fun ~site ~width_index ~collected ~kept ->
                f (Column { site; width_index; collected; kept }))
      in
      match
        Fast_dp.solve ?frontier_cap:r.frontier_cap
          ~cancel:r.hooks.Hooks.cancel ?on_column ?arena:r.arena chain
          ~library:r.library ~budget:r.budget
      with
      | None -> None
      | Some (placements, fstats) ->
          let solution = Solution.create placements in
          Some
            {
              solution;
              total_width = Solution.total_width solution;
              delay = Delay.total r.repeater r.geometry solution;
              stats =
                {
                  sites = fstats.Fast_dp.sites;
                  transitions = fstats.Fast_dp.transitions;
                  labels = fstats.Fast_dp.labels;
                };
            })

(* Deprecated pre-backend entry point; kept for one release.  Pinned to
   [Reference] so existing callers keep byte-identical behaviour even
   where a binding frontier cap makes the backends diverge. *)
let solve ?frontier_cap ?cancel ?probe geometry repeater ~library ~candidates
    ~budget =
  (match frontier_cap with
  | Some cap when cap < 2 ->
      invalid_arg "Power_dp.solve: frontier_cap must be at least 2"
  | Some _ | None -> ());
  run
    (request ~backend:Reference ?frontier_cap
       ~hooks:(Hooks.make ?cancel ?probe ())
       geometry repeater ~library ~candidates ~budget)
