(** Power-minimal repeater insertion under a delay budget — the DP of
    Lillis, Cheng & Lin (ref. [14] of the paper), specialised to two-pin
    chains.

    Every DP state is a (candidate site, repeater width) pair; a state
    carries the Pareto frontier of [(arrival delay, total width so far)]
    labels over all ways of reaching it.  Transitions append one Eq.-(1)
    stage delay.  Labels exceeding the budget are discarded eagerly
    (delay only grows along the chain), and frontiers are bucketed by
    quantised total width so each distinct width keeps only its fastest
    label — the pseudo-polynomial bound of [14]. *)

type stats = {
  sites : int;  (** candidate sites including driver and receiver *)
  transitions : int;  (** stage-delay evaluations *)
  labels : int;  (** labels surviving pruning, summed over states *)
}

type result = {
  solution : Rip_elmore.Solution.t;
  total_width : float;  (** the optimised power proxy, u *)
  delay : float;  (** Elmore delay of [solution], seconds *)
  stats : stats;
}

type probe_event =
  | Column of {
      site : int;  (** candidate site index, 1-based along the chain *)
      width_index : int;  (** index into the site's width array *)
      collected : int;  (** width-bucketed labels before the Pareto prune *)
      kept : int;  (** frontier size after pruning (and any cap) *)
    }
      (** One DP state finished: its frontier was frozen.  Labels pruned
          at this state = [collected - kept]. *)

val solve :
  ?frontier_cap:int ->
  ?cancel:(unit -> unit) ->
  ?probe:(probe_event -> unit) ->
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t ->
  library:Repeater_library.t -> candidates:float list -> budget:float ->
  result option
(** [None] when no repeater assignment over the given sites and library
    meets the budget.  The returned solution's delay is recomputed through
    {!Rip_elmore.Delay.total} and always satisfies [delay <= budget].

    [frontier_cap] bounds every per-state frontier to that many labels
    (evenly sampled along the width axis, keeping the cheapest and the
    fastest).  Without it the DP is exact but pseudo-polynomial: on tall
    nets with tight budgets the number of distinct quantised total widths
    — and with it the run time — can explode.  With it the DP is an
    anytime approximation that still never returns a budget-violating
    solution.  Must be at least 2.

    [cancel] is a cooperative-cancellation poll called once per candidate
    column (before its transition scan).  It must either return unit —
    in which case the solve is bit-identical to one without the hook — or
    raise, which aborts the DP with that exception
    ({!Rip_engine.Cancel.hook} raises [Cancelled]).  Default: never
    raises.

    [probe], when given, receives one {!probe_event} per DP state in the
    same plain-hook style as [cancel]: the solve is bit-identical with or
    without it, and an absent probe costs one branch per column — no
    allocation.
    @raise Invalid_argument when [frontier_cap < 2]. *)
