(** Power-minimal repeater insertion under a delay budget — the DP of
    Lillis, Cheng & Lin (ref. [14] of the paper), specialised to two-pin
    chains.

    Every DP state is a (candidate site, repeater width) pair; a state
    carries the Pareto frontier of [(arrival delay, total width so far)]
    labels over all ways of reaching it.  Transitions append one Eq.-(1)
    stage delay.  Labels exceeding the budget are discarded eagerly
    (delay only grows along the chain), and frontiers are bucketed by
    quantised total width so each distinct width keeps only its fastest
    label — the pseudo-polynomial bound of [14].

    Two interchangeable backends implement that contract ({!backend});
    {!run} on a {!type-request} is the single dispatch point every caller
    — [Rip.solve]'s passes, the engine's baseline jobs, the service's
    rescue DP, the bench suite — routes through. *)

type stats = {
  sites : int;  (** candidate sites including driver and receiver *)
  transitions : int;  (** per-column source-state scans *)
  labels : int;  (** labels surviving pruning, summed over states *)
}

type result = {
  solution : Rip_elmore.Solution.t;
  total_width : float;  (** the optimised power proxy, u *)
  delay : float;  (** Elmore delay of [solution], seconds *)
  stats : stats;
}

type probe_event =
  | Column of {
      site : int;  (** candidate site index, 1-based along the chain *)
      width_index : int;  (** index into the site's width array *)
      collected : int;  (** width-bucketed labels before the Pareto prune *)
      kept : int;  (** frontier size after pruning (and any cap) *)
    }
      (** One DP state finished: its frontier was frozen.  Labels pruned
          at this state = [collected - kept].  Both backends emit the
          event; under [Fast] the counts reflect its additional
          forward-infeasibility pruning, which is exactly what makes the
          win visible in METRICS. *)

(** {1 Backends} *)

type backend =
  | Reference
      (** the boxed-label Hashtbl DP of [14]: the exactness baseline *)
  | Fast
      (** {!Fast_dp}: Li/Shi-style candidate pruning over flat arenas;
          bit-identical solutions, order-of-magnitude faster on real
          instances *)
  | Auto
      (** picks per instance: [Fast] when
          [interior sites * library size >= auto_cutover], [Reference]
          for the tiny instances below it *)

val backend_name : backend -> string
(** ["reference"], ["fast"], ["auto"] — for reports and bench output. *)

val auto_cutover : int
(** The documented [Auto] threshold, in DP states (interior candidate
    sites times library size).  Sits just above the measured break-even
    (n*b = 12 on the suite's smallest net); [Auto] resolves to
    [Reference] only where the backends are within single-digit
    microseconds of each other. *)

val auto_backend : interior_sites:int -> library_size:int -> backend
(** The [Auto] decision rule; always returns [Reference] or [Fast]. *)

(** {1 Requests and the dispatch point} *)

type request = {
  geometry : Rip_net.Geometry.t;
  repeater : Rip_tech.Repeater_model.t;
  library : Repeater_library.t;
  candidates : float list;
  budget : float;
  backend : backend;
  frontier_cap : int option;
      (** bounds every per-state frontier to that many labels (evenly
          sampled along the width axis, keeping the cheapest and the
          fastest).  Without it the DP is exact but pseudo-polynomial;
          with it, an anytime approximation that still never returns a
          budget-violating solution.  Must be at least 2.  When a cap
          actually binds on a state where [Fast] pruned labels, the two
          backends may sample different survivors and cease to be
          bit-identical — callers needing cross-backend identity under
          all inputs pass [None] (see DESIGN.md). *)
  arena : Fast_dp.Arena.t option;
      (** reusable label store for the [Fast] backend (ignored by
          [Reference]); omitted, the solve allocates a private one *)
  hooks : probe_event Rip_numerics.Hooks.t;
      (** [cancel] is polled once per candidate column; [probe] receives
          one {!probe_event} per DP state; [phase] is unused at this
          layer.  All hooks are bit-identity-preserving observers. *)
}

val request :
  ?backend:backend ->
  ?frontier_cap:int ->
  ?arena:Fast_dp.Arena.t ->
  ?hooks:probe_event Rip_numerics.Hooks.t ->
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t ->
  library:Repeater_library.t -> candidates:float list -> budget:float ->
  request
(** Constructor with the defaults of a plain solve: [Auto] backend, no
    cap, no arena, {!Rip_numerics.Hooks.default}. *)

val run : request -> result option
(** The solve.  [None] when no repeater assignment over the given sites
    and library meets the budget.  The returned solution's delay is
    recomputed through {!Rip_elmore.Delay.total} and always satisfies
    [delay <= budget].
    @raise Invalid_argument when [frontier_cap < 2]. *)

val solve :
  ?frontier_cap:int ->
  ?cancel:(unit -> unit) ->
  ?probe:(probe_event -> unit) ->
  Rip_net.Geometry.t -> Rip_tech.Repeater_model.t ->
  library:Repeater_library.t -> candidates:float list -> budget:float ->
  result option
[@@ocaml.deprecated
  "Use Power_dp.run with a Power_dp.request (and Hooks.t) instead."]
(** The pre-backend entry point, pinned to [Reference]: byte-identical
    to releases before the backend split.  Kept for one release. *)
