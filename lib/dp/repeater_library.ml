type t = float array

let equal_tolerance = 1e-9

let create widths =
  (match widths with
  | [] -> invalid_arg "Repeater_library.create: empty library"
  | _ :: _ -> ());
  List.iter
    (fun w ->
      if w <= 0.0 then
        invalid_arg "Repeater_library.create: widths must be positive")
    widths;
  let sorted = List.sort_uniq Float.compare widths in
  let dedup acc w =
    match acc with
    | prev :: _ when Float.abs (w -. prev) <= equal_tolerance -> acc
    | _ -> w :: acc
  in
  Array.of_list (List.rev (List.fold_left dedup [] sorted))

let uniform ~min_width ~step ~count =
  if count <= 0 then invalid_arg "Repeater_library.uniform: count <= 0";
  if step <= 0.0 then invalid_arg "Repeater_library.uniform: step <= 0";
  create (List.init count (fun k -> min_width +. (float_of_int k *. step)))

let range ~min_width ~max_width ~step =
  if max_width < min_width then
    invalid_arg "Repeater_library.range: max below min";
  if step <= 0.0 then invalid_arg "Repeater_library.range: step <= 0";
  let count = int_of_float ((max_width -. min_width) /. step) + 1 in
  create (List.init count (fun k -> min_width +. (float_of_int k *. step)))

let round_to_grid ~granularity ~min_width ~max_width widths =
  if granularity <= 0.0 then
    invalid_arg "Repeater_library.round_to_grid: granularity <= 0";
  let clamp w = Float.max min_width (Float.min max_width w) in
  let snap w = Float.round (w /. granularity) *. granularity in
  let candidates =
    List.concat_map
      (fun w ->
        let s = snap w in
        [ clamp s; clamp (s -. granularity); clamp (s +. granularity) ])
      widths
  in
  match List.filter (fun w -> w > 0.0) candidates with
  | [] -> invalid_arg "Repeater_library.round_to_grid: no positive widths"
  | candidates -> create candidates

let widths t = Array.to_list t
let to_array t = t
let size = Array.length
let min_width t = t.(0)
let max_width t = t.(Array.length t - 1)

let mem t w =
  Array.exists (fun x -> Float.abs (x -. w) <= equal_tolerance) t

let pp ppf t =
  Fmt.pf ppf "{%a}u" Fmt.(array ~sep:comma float) t
