(** The candidate-pruning power-DP backend (Li/Shi-style redundancy
    predicates over the Lillis/Cheng/Lin label space) with flat-arena
    label storage.

    Semantics are those of {!Power_dp}'s reference backend: same states,
    same Eq.-(1) transitions, same admission test, bucket rule and Pareto
    freeze — plus a sound forward-infeasibility prune.  A backward pass
    computes each state's least stage-delay sum to the receiver ([minF]);
    a label with [delay + minF] beyond the budget (plus a 1e-9 relative
    slack for fold-order rounding) can never be an ancestor of a receiver
    label and is dropped before it is stored.  Because frontier delays
    strictly decrease along the width axis, the survivors of every source
    frontier form a suffix: the inner loop walks from the min-delay end
    and stops at the first inadmissible label, so pruned labels cost one
    comparison for the whole run, not one each.  Admitted labels land in
    a stamped open-addressing bucket table keyed by quantised width —
    per-column epochs replace clearing, and the reference tie rule
    (first admission wins equal delays) is preserved.  A per-site least
    frontier delay ([dsite]) additionally skips whole source states
    whose best label cannot reach the budget through the widest
    repeater.  Returned placements are bit-identical to the reference
    backend's whenever no [frontier_cap] binds (DESIGN.md, "Pluggable DP
    backends").

    This module is deliberately free of {!Power_dp} types so the two
    backends sit side by side; callers go through {!Power_dp.run}, which
    dispatches and builds the shared result record. *)

module Arena : sig
  type t
  (** A reusable label store: struct-of-arrays columns for the labels of
      one solve, the stamped width-bucket hash table, and the per-state
      index/minF tables.  Not thread-safe — an arena belongs to one
      solve at a time; reusing it across sequential solves reaches zero
      steady-state allocation once the high-water mark is hit. *)

  val create : unit -> t
  (** An empty arena; columns are sized on first use. *)

  val capacity : t -> int
  (** Label slots currently allocated — stabilises under repeated solves
      of the same instance (the arena-reuse invariant the tests pin). *)
end

type stats = {
  sites : int;  (** candidate sites including driver and receiver *)
  transitions : int;  (** source states scanned over all columns *)
  labels : int;  (** labels surviving pruning, summed over states *)
}

val solve :
  ?frontier_cap:int ->
  ?cancel:(unit -> unit) ->
  ?on_column:
    (site:int -> width_index:int -> collected:int -> kept:int -> unit) ->
  ?arena:Arena.t ->
  Chain.t ->
  library:Repeater_library.t ->
  budget:float ->
  ((float * float) list * stats) option
(** [None] when no assignment meets the budget.  On success the
    placements are ascending [(position, width)] pairs, exactly the
    reference backend's solution.

    [on_column] fires once per DP state after its frontier is frozen
    (labelled arguments, so an absent listener costs one branch and a
    present one allocates nothing); [collected] counts width buckets
    before the Pareto prune, [kept] the stored frontier size.  [cancel]
    is polled once per candidate column.  [arena] supplies a reusable
    label store; omitted, a private one is allocated.
    @raise Invalid_argument when [frontier_cap < 2]. *)
