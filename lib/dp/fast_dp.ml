(* The O(bn^2)-style candidate-pruning backend of the power DP.

   Same state space and transition semantics as [Power_dp]'s reference
   backend (Lillis/Cheng/Lin labels bucketed by quantised total width),
   with two changes that remove the pseudo-polynomial inner-loop cost:

   - A backward pass first computes, for every (site, width) state, the
     minimum stage-delay sum [minF] from that state to the receiver over
     the exact transition window the forward DP scans.  A label with
     [delay + minF > budget (+ fuzz)] can never be an ancestor of any
     receiver label, so the forward pass drops it before it is stored —
     the Li/Shi-style redundancy predicate, valid here because Eq. (1)
     stage delays are strictly positive and additive along the chain.
     Because source frontiers are sorted with strictly decreasing delay,
     the surviving labels of each source form a suffix: the scan walks
     in from the min-delay end and stops at the first rejection, so
     pruned labels are never even touched.

   - Labels live in one preallocated struct-of-arrays arena (flat
     [float array]/[int array] columns) instead of per-label records and
     list cells; per-state bucket winners accumulate in a stamped
     open-addressing table (O(1) per admitted candidate, no clearing
     between columns), replacing the reference backend's per-state
     Hashtbl + sort.

   Exactness: the admission test [l.delay +. stage <= budget] and the
   bucket/Pareto tie rules are byte-for-byte those of the reference
   backend, and the [minF] predicate only removes labels whose whole
   descendant tree provably never reaches the receiver frontier — so the
   receiver frontier, and with it the returned placements, are
   bit-identical to the reference backend's (see DESIGN.md for the
   argument, and its one caveat about a binding [frontier_cap]). *)

module Arena = struct
  (* One growable struct-of-arrays label store plus the bucket table of
     a solve.  A single solve owns the arena for its whole duration
     (solves on the same arena never overlap); reuse across solves keeps
     steady-state allocation at zero once the high-water mark is hit. *)
  type t = {
    (* per-label columns, indexed by global label id *)
    mutable delay : float array;
    mutable wu : int array;  (* total width, quantised to milli-u *)
    mutable pred : int array;  (* predecessor label id; -1 for the root *)
    mutable owner : int array;  (* state id = site * stride + width index *)
    mutable used : int;
    (* stamped open-addressing bucket table, keyed by quantised width.
       A stamp per slot marks which column last wrote it, so starting a
       fresh column is one integer increment — no clearing.  Capacity is
       a power of two and the load factor stays below 1/2. *)
    mutable h_key : int array;
    mutable h_delay : float array;
    mutable h_pred : int array;
    mutable h_stamp : int array;
    mutable h_live : int;  (* distinct keys this column *)
    mutable stamp : int;
    mutable keys : int array;  (* insertion log of this column's keys *)
    (* per-state tables *)
    mutable start : int array;
    mutable len : int array;
    mutable minf : float array;
    (* least frontier delay per site (over all width states); infinity
       while the site has no labels.  A one-compare skip for sources
       that cannot contribute to the current column. *)
    mutable dsite : float array;
  }

  let create () =
    {
      delay = [||]; wu = [||]; pred = [||]; owner = [||]; used = 0;
      h_key = [||]; h_delay = [||]; h_pred = [||]; h_stamp = [||];
      h_live = 0; stamp = 0; keys = [||];
      start = [||]; len = [||]; minf = [||]; dsite = [||];
    }

  let capacity t = Array.length t.delay

  let grow_float src n =
    let dst = Array.make n 0.0 in
    Array.blit src 0 dst 0 (Array.length src);
    dst

  let grow_int src n =
    let dst = Array.make n 0 in
    Array.blit src 0 dst 0 (Array.length src);
    dst

  (* Room for [n] more labels.  Amortised doubling: the arena never
     shrinks, so a reused arena stops allocating once warm. *)
  let ensure_labels t n =
    let need = t.used + n in
    if need > Array.length t.delay then begin
      let cap = Stdlib.max 1024 (Stdlib.max need (2 * Array.length t.delay)) in
      t.delay <- grow_float t.delay cap;
      t.wu <- grow_int t.wu cap;
      t.pred <- grow_int t.pred cap;
      t.owner <- grow_int t.owner cap
    end

  let reset t ~states ~sites =
    t.used <- 0;
    if states > Array.length t.start then begin
      t.start <- Array.make states 0;
      t.len <- Array.make states 0;
      t.minf <- Array.make states infinity
    end
    else begin
      Array.fill t.len 0 states 0;
      Array.fill t.minf 0 states infinity
    end;
    if sites > Array.length t.dsite then t.dsite <- Array.make sites infinity
    else Array.fill t.dsite 0 sites infinity

  (* Knuth multiplicative hash; keys are small non-negative widths, the
     constant spreads them over the high bits before masking.  Fully
     deterministic — no seeding — as the determinism lint demands. *)
  let hash_wu wu = wu * 2654435761

  let begin_column t =
    t.stamp <- t.stamp + 1;
    t.h_live <- 0;
    if Array.length t.h_key = 0 then begin
      t.h_key <- Array.make 1024 0;
      t.h_delay <- Array.make 1024 0.0;
      t.h_pred <- Array.make 1024 0;
      t.h_stamp <- Array.make 1024 0;
      t.keys <- Array.make 512 0
    end

  let grow_table t =
    let old_cap = Array.length t.h_key in
    let cap = 2 * old_cap in
    let key = Array.make cap 0 in
    let delay = Array.make cap 0.0 in
    let pred = Array.make cap 0 in
    let stamp = Array.make cap 0 in
    let mask = cap - 1 in
    for i = 0 to old_cap - 1 do
      (* only the current column's entries survive the rehash; stale
         stamps are dead by construction *)
      if t.h_stamp.(i) = t.stamp then begin
        let j = ref (hash_wu t.h_key.(i) land mask) in
        while stamp.(!j) = t.stamp do j := (!j + 1) land mask done;
        stamp.(!j) <- t.stamp;
        key.(!j) <- t.h_key.(i);
        delay.(!j) <- t.h_delay.(i);
        pred.(!j) <- t.h_pred.(i)
      end
    done;
    t.h_key <- key;
    t.h_delay <- delay;
    t.h_pred <- pred;
    t.h_stamp <- stamp;
    if Array.length t.keys < cap / 2 then t.keys <- grow_int t.keys (cap / 2)

  (* Slot of a key known to be present in the current column. *)
  let find t ~wu =
    let mask = Array.length t.h_key - 1 in
    let i = ref (hash_wu wu land mask) in
    while not (t.h_stamp.(!i) = t.stamp && t.h_key.(!i) = wu) do
      i := (!i + 1) land mask
    done;
    !i
end

type stats = {
  sites : int;
  transitions : int;
  labels : int;
}

(* Quantisation shared with the reference backend. *)
let units_per_u = 1000.0
let width_units w = int_of_float (Float.round (w *. units_per_u))

(* In-place ascending shell sort of [keys.(0 .. n-1)] (Knuth gap
   sequence).  Columns collect tens of distinct buckets, and a range
   sort avoids both allocation and [Array.sort]'s closure comparisons
   in the freeze path. *)
let[@lint.hot] sort_keys keys n =
  let gap = ref 1 in
  while !gap < n / 3 do
    gap := (3 * !gap) + 1
  done;
  while !gap >= 1 do
    for i = !gap to n - 1 do
      let v = keys.(i) in
      let j = ref i in
      while !j >= !gap && keys.(!j - !gap) > v do
        keys.(!j) <- keys.(!j - !gap);
        j := !j - !gap
      done;
      keys.(!j) <- v
    done;
    gap := !gap / 3
  done

let[@lint.hot] solve ?frontier_cap ?(cancel = ignore) ?on_column ?arena chain
    ~library ~budget =
  (match frontier_cap with
  | Some cap when cap < 2 ->
      invalid_arg "Fast_dp.solve: frontier_cap must be at least 2"
  | Some _ | None -> ());
  let arena = match arena with Some a -> a | None -> Arena.create () in
  let n_sites = Chain.site_count chain in
  let last = n_sites - 1 in
  let lib = Repeater_library.to_array library in
  let stride = Stdlib.max 1 (Array.length lib) in
  let driver_widths = [| chain.Chain.driver_width |] in
  let receiver_widths = [| chain.Chain.receiver_width |] in
  let widths_at site =
    if site = 0 then driver_widths
    else if site = last then receiver_widths
    else lib
  in
  let widest_driver =
    Float.max chain.Chain.driver_width (Repeater_library.max_width library)
  in
  (* The stage delay (chain.ml, Eq. (1)) factored for the scan loops:

       stage = ((k + (rs/w_from) * q) + wire_r*gate_c) + wire_elmore
       q     = (C_t - C_s) + gate_c

     with gate_c fixed per target column and the wire terms fixed per
     (source, target) pair — so the per-width cost is one multiply and
     three adds.  The grouping above is exactly [Chain.stage_delay]'s
     left-to-right association, and [rs /. w] is a deterministic float
     op, so every factored stage is bit-identical to the direct call —
     which the cross-backend fingerprint equality relies on. *)
  let cum_r = chain.Chain.cum_r in
  let cum_c = chain.Chain.cum_c in
  let cum_p = chain.Chain.cum_p in
  let rs = chain.Chain.repeater.Rip_tech.Repeater_model.rs in
  let co = chain.Chain.repeater.Rip_tech.Repeater_model.co in
  let k_intr = Rip_tech.Repeater_model.intrinsic_delay chain.Chain.repeater in
  let inv_lib = Array.map (fun w -> rs /. w) lib in
  let inv_driver = [| rs /. chain.Chain.driver_width |] in
  let inv_receiver = [| rs /. chain.Chain.receiver_width |] in
  let invs_at site =
    if site = 0 then inv_driver
    else if site = last then inv_receiver
    else inv_lib
  in
  let inv_widest = rs /. widest_driver in
  let n_states = n_sites * stride in
  Arena.reset arena ~states:n_states ~sites:n_sites;
  let minf = arena.Arena.minf in
  let dsite = arena.Arena.dsite in
  (* Relative slack absorbing the fold-order rounding gap between the
     backward (right-folded) and forward (left-folded) delay sums: the
     true gap is ~n*eps relative, so 1e-9 is astronomically conservative
     — and a too-large fuzz only weakens pruning, never correctness. *)
  let budget_fuzz = budget +. (1e-9 *. Float.abs budget) in
  (* --- Backward pass: minF(state) = least stage-delay sum to the
     receiver over the transitions the forward DP can take. ------------ *)
  minf.((last * stride) + 0) <- 0.0;
  for t = last downto 1 do
    let t_widths = widths_at t in
    let rt = cum_r.(t) and ct = cum_c.(t) and pt = cum_p.(t) in
    for wj = 0 to Array.length t_widths - 1 do
      let mf_t = minf.((t * stride) + wj) in
      (* A state that cannot reach the receiver contributes no finite
         suffix; skipping it is exactly right, not an approximation. *)
      if mf_t < infinity then begin
        let gate_c = co *. t_widths.(wj) in
        (* Predecessor window: scan right to left, stop once even the
           thickest driver's stage plus the suffix below this target
           overshoots.  Spans only lengthen leftwards, so every farther
           predecessor fails too; and a relaxation with
           [stage + mf_t > budget_fuzz] can only feed minF values that
           the forward admission rejects outright (labels have
           non-negative delay), so cutting them never changes the DP's
           output — it only shrinks the scan. *)
        let s = ref (t - 1) in
        let scanning = ref true in
        while !scanning && !s >= 0 do
          let ss = !s in
          let wire_r = rt -. cum_r.(ss) in
          let q = (ct -. cum_c.(ss)) +. gate_c in
          let t2 = wire_r *. gate_c in
          let elm = (wire_r *. ct) -. (pt -. cum_p.(ss)) in
          if
            ((k_intr +. (inv_widest *. q)) +. t2) +. elm +. mf_t > budget_fuzz
          then scanning := false
          else begin
            let s_invs = invs_at ss in
            (* unsafe: [idx] < states by construction, [wi] < length *)
            for wi = 0 to Array.length s_invs - 1 do
              let v =
                ((k_intr +. (Array.unsafe_get s_invs wi *. q)) +. t2)
                +. elm +. mf_t
              in
              let idx = (ss * stride) + wi in
              if v < Array.unsafe_get minf idx then
                Array.unsafe_set minf idx v
            done
          end;
          decr s
        done
      end
    done
  done;
  (* --- Forward pass --------------------------------------------------- *)
  let transitions = ref 0 in
  let labels = ref 0 in
  (* Root label: the driver state's frontier. *)
  Arena.ensure_labels arena 1;
  (* Arena columns are mutated freely here and below: the arena is owned
     by this solve alone for its whole duration (see [Arena]), so the
     writes need no lock.  The domain-escape analysis agrees — no spawn
     in this library reaches [solve] — so no waiver is needed. *)
  arena.Arena.delay.(0) <- 0.0;
  arena.Arena.wu.(0) <- 0;
  arena.Arena.pred.(0) <- -1;
  arena.Arena.owner.(0) <- 0;
  arena.Arena.used <- 1;
  arena.Arena.start.(0) <- 0;
  arena.Arena.len.(0) <- 1;
  dsite.(0) <- 0.0;
  for site = 1 to last do
    (* Candidate-column cancellation poll, as in the reference backend. *)
    cancel ();
    let site_widths = widths_at site in
    let interior = Chain.is_interior chain site in
    let rt = cum_r.(site) and ct = cum_c.(site) and pt = cum_p.(site) in
    for wj = 0 to Array.length site_widths - 1 do
      let to_width = site_widths.(wj) in
      let added = if interior then width_units to_width else 0 in
      let mf_here = minf.((site * stride) + wj) in
      let gate_c = co *. to_width in
      (* Label columns are only replaced by [ensure_labels], which runs
         at column freeze — never during this column's source scan — so
         they can be hoisted out of the pair loop. *)
      let lab_d = arena.Arena.delay in
      let lab_w = arena.Arena.wu in
      let starts = arena.Arena.start in
      let lens = arena.Arena.len in
      Arena.begin_column arena;
      let stamp = arena.Arena.stamp in
      let src = ref (site - 1) in
      let scanning = ref true in
      (* Source window with the same minF-tightened break as the backward
         pass: every label admitted here must satisfy
         [delay + stage + mf_here <= budget_fuzz] with delay >= 0 and
         stage minimised by the widest driver, so once that lower bound
         overshoots, no farther (longer-span) source can contribute — and
         a dead column (mf_here = infinity) skips its scan entirely. *)
      while !scanning && !src >= 0 do
        let s = !src in
        let wire_r = rt -. cum_r.(s) in
        let q = (ct -. cum_c.(s)) +. gate_c in
        let t2 = wire_r *. gate_c in
        let elm = (wire_r *. ct) -. (pt -. cum_p.(s)) in
        let stage_lb = ((k_intr +. (inv_widest *. q)) +. t2) +. elm in
        if stage_lb +. mf_here > budget_fuzz then scanning := false
        else if
          (* One-compare source skip: [dsite] lower-bounds every label
             delay at [s] and [stage_lb] every stage out of it, so a
             failing sum means the admission test rejects all of the
             source's labels — skipping them changes nothing but time. *)
          let lb = (dsite.(s) +. stage_lb) +. mf_here in
          lb > budget_fuzz || dsite.(s) +. stage_lb > budget
        then ()
        else begin
          let s_invs = invs_at s in
          for wi = 0 to Array.length s_invs - 1 do
            let idx = (s * stride) + wi in
            let flen = Array.unsafe_get lens idx in
            if flen > 0 then begin
              incr transitions;
              let stage =
                ((k_intr +. (Array.unsafe_get s_invs wi *. q)) +. t2) +. elm
              in
              (* Frontier delays strictly decrease with the index, so the
                 labels passing both the exact reference admission test
                 and the minF feasibility predicate form a suffix: walk
                 in from the min-delay end and stop at the first
                 rejection — only survivors plus one failed test are
                 ever touched.  Bucket widths are distinct within one
                 frontier, so the walk direction cannot affect ties.

                 The bucket update is the reference tie rule — a later
                 candidate replaces the incumbent only on a strictly
                 smaller delay — inlined here (no flambda, and this is
                 the hottest loop of the solver).  Unsafe accesses are
                 confined to indices valid by construction: [j] ranges
                 over one frozen frontier, probe indices are masked to
                 the table capacity. *)
              let fstart = Array.unsafe_get starts idx in
              let j = ref (fstart + flen - 1) in
              let walking = ref true in
              while !walking && !j >= fstart do
                let d = Array.unsafe_get lab_d !j +. stage in
                if d <= budget && d +. mf_here <= budget_fuzz then begin
                  let wu = Array.unsafe_get lab_w !j + added in
                  if 2 * (arena.Arena.h_live + 1)
                     > Array.length arena.Arena.h_key
                  then Arena.grow_table arena;
                  let hk = arena.Arena.h_key
                  and hd = arena.Arena.h_delay
                  and hp = arena.Arena.h_pred
                  and hs = arena.Arena.h_stamp in
                  let mask = Array.length hk - 1 in
                  let i = ref (Arena.hash_wu wu land mask) in
                  while
                    Array.unsafe_get hs !i = stamp
                    && Array.unsafe_get hk !i <> wu
                  do
                    i := (!i + 1) land mask
                  done;
                  let i = !i in
                  if Array.unsafe_get hs i = stamp then begin
                    if d < Array.unsafe_get hd i then begin
                      Array.unsafe_set hd i d;
                      Array.unsafe_set hp i !j
                    end
                  end
                  else begin
                    Array.unsafe_set hs i stamp;
                    Array.unsafe_set hk i wu;
                    Array.unsafe_set hd i d;
                    Array.unsafe_set hp i !j;
                    arena.Arena.keys.(arena.Arena.h_live) <- wu;
                    arena.Arena.h_live <- arena.Arena.h_live + 1
                  end;
                  decr j
                end
                else walking := false
              done
            end
          done
        end;
        decr src
      done;
      (* Freeze: sort this column's bucket keys (ascending width), then
         Pareto prune straight into the arena — keep strictly decreasing
         delay, the reference freeze minus its per-state sort of labels. *)
      let collected = arena.Arena.h_live in
      let keys = arena.Arena.keys in
      sort_keys keys collected;
      Arena.ensure_labels arena collected;
      let base = arena.Arena.used in
      let kept = ref 0 in
      let best_delay = ref infinity in
      for i = 0 to collected - 1 do
        let slot = Arena.find arena ~wu:keys.(i) in
        let d = arena.Arena.h_delay.(slot) in
        if d < !best_delay then begin
          best_delay := d;
          let at = base + !kept in
          arena.Arena.delay.(at) <- d;
          arena.Arena.wu.(at) <- keys.(i);
          arena.Arena.pred.(at) <- arena.Arena.h_pred.(slot);
          arena.Arena.owner.(at) <- (site * stride) + wj;
          incr kept
        end
      done;
      (* Frontier cap: the reference backend's even index sampling.  The
         source index is always >= the destination index, so the in-place
         left-to-right copy never reads an overwritten slot. *)
      (match frontier_cap with
      | Some cap when !kept > cap ->
          for i = 0 to cap - 1 do
            let from = base + (i * (!kept - 1) / (cap - 1)) in
            let at = base + i in
            arena.Arena.delay.(at) <- arena.Arena.delay.(from);
            arena.Arena.wu.(at) <- arena.Arena.wu.(from);
            arena.Arena.pred.(at) <- arena.Arena.pred.(from);
            arena.Arena.owner.(at) <- arena.Arena.owner.(from)
          done;
          kept := cap
      | Some _ | None -> ());
      arena.Arena.start.((site * stride) + wj) <- base;
      arena.Arena.len.((site * stride) + wj) <- !kept;
      (* Delays strictly decrease along the frontier and the cap's even
         index sampling keeps the last label, so the frontier's least
         delay is its last entry. *)
      if !kept > 0 then begin
        let least = arena.Arena.delay.(base + !kept - 1) in
        if least < dsite.(site) then dsite.(site) <- least
      end;
      arena.Arena.used <- base + !kept;
      labels := !labels + !kept;
      match on_column with
      | None -> ()
      | Some f -> f ~site ~width_index:wj ~collected ~kept:!kept
    done
  done;
  (* --- Backtrack ------------------------------------------------------- *)
  if arena.Arena.len.(last * stride) = 0 then None
  else begin
    (* The frontier is width-ascending, so its first label is min width. *)
    let placements = ref [] in
    let idx = ref (arena.Arena.start.(last * stride)) in
    while !idx >= 0 do
      let o = arena.Arena.owner.(!idx) in
      let site = o / stride in
      (* alloc-in-hot-loop waiver: the backtrack runs once per solve and
         allocates one pair+cons per placement — O(sites), not O(sites ×
         widths × frontier) like the scan loops the rule is guarding. *)
      (if Chain.is_interior chain site then
         placements :=
           (chain.Chain.positions.(site), (widths_at site).(o mod stride))
           :: !placements)
      [@lint.allow "alloc-in-hot-loop"];
      idx := arena.Arena.pred.(!idx)
    done;
    Some
      ( !placements,
        { sites = n_sites; transitions = !transitions; labels = !labels } )
  end
