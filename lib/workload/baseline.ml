module Repeater_library = Rip_dp.Repeater_library
module Candidates = Rip_dp.Candidates
module Power_dp = Rip_dp.Power_dp
module Geometry = Rip_net.Geometry

type t = {
  name : string;
  library : Repeater_library.t;
  pitch : float;
}

let fixed_size ~granularity =
  {
    name = Printf.sprintf "dp[14] size10 g=%gu" granularity;
    library =
      Repeater_library.uniform ~min_width:10.0 ~step:granularity ~count:10;
    pitch = 200.0;
  }

let fixed_range ~granularity =
  {
    name = Printf.sprintf "dp[14] range(10u,400u) g=%gu" granularity;
    library =
      Repeater_library.range ~min_width:10.0 ~max_width:400.0
        ~step:granularity;
    pitch = 200.0;
  }

type run = {
  result : Power_dp.result option;
  runtime_seconds : float;
}

let solve ?(backend = Power_dp.Auto) t (process : Rip_tech.Process.t) geometry
    ~budget =
  let net = Geometry.net geometry in
  let candidates = Candidates.uniform net ~pitch:t.pitch in
  let started = Rip_numerics.Cpu_clock.thread_seconds () in
  let result =
    Power_dp.run
      (Power_dp.request ~backend geometry process.Rip_tech.Process.repeater
         ~library:t.library ~candidates ~budget)
  in
  {
    result;
    runtime_seconds = Rip_numerics.Cpu_clock.thread_seconds () -. started;
  }
