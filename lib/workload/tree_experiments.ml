module Tree = Rip_tree.Tree
module Tree_dp = Rip_tree.Tree_dp
module Tree_hybrid = Rip_tree.Tree_hybrid
module Repeater_library = Rip_dp.Repeater_library
module Stats = Rip_numerics.Stats

type row = {
  tree_name : string;
  sinks : int;
  tau_min : float;
  hybrid_mean_width : float;
  coarse_mean_width : float;
  fine_mean_width : float;
  saving_vs_coarse : float;
  hybrid_mean_runtime : float;
  fine_mean_runtime : float;
  hybrid_violations : int;
}

let fine_library =
  Repeater_library.range ~min_width:10.0 ~max_width:400.0 ~step:20.0

let run ?trees ?(targets_per_tree = 6) (process : Rip_tech.Process.t) =
  let trees = match trees with Some t -> t | None -> Tree_gen.suite () in
  let repeater = process.Rip_tech.Process.repeater in
  List.map
    (fun tree ->
      let tau_min = Tree_hybrid.tau_min process tree in
      let sites = Tree_dp.uniform_sites tree ~pitch:200.0 in
      let hybrid_w = ref [] and coarse_w = ref [] and fine_w = ref [] in
      let hybrid_t = ref [] and fine_t = ref [] in
      let violations = ref 0 in
      List.iter
        (fun k ->
          let budget =
            (1.1 +. (0.9 *. float_of_int k /. float_of_int
                       (Stdlib.max 1 (targets_per_tree - 1))))
            *. tau_min
          in
          (match Tree_hybrid.solve process tree ~budget with
          | Ok r ->
              hybrid_w := r.Tree_hybrid.total_width :: !hybrid_w;
              hybrid_t := r.Tree_hybrid.runtime_seconds :: !hybrid_t;
              (match r.Tree_hybrid.coarse with
              | Some c -> coarse_w := c.Tree_dp.total_width :: !coarse_w
              | None -> ())
          | Error _ -> incr violations);
          let t0 = Rip_numerics.Cpu_clock.thread_seconds () in
          (match
             Tree_dp.solve repeater tree ~library:fine_library ~sites ~budget
           with
          | Some f -> fine_w := f.Tree_dp.total_width :: !fine_w
          | None -> ());
          fine_t :=
            (Rip_numerics.Cpu_clock.thread_seconds () -. t0) :: !fine_t)
        (List.init targets_per_tree (fun k -> k));
      let hybrid_mean = Stats.mean !hybrid_w in
      let coarse_mean = Stats.mean !coarse_w in
      {
        tree_name = tree.Tree.name;
        sinks = Tree.sink_count tree;
        tau_min;
        hybrid_mean_width = hybrid_mean;
        coarse_mean_width = coarse_mean;
        fine_mean_width = Stats.mean !fine_w;
        saving_vs_coarse = Stats.ratio_percent coarse_mean hybrid_mean;
        hybrid_mean_runtime = Stats.mean !hybrid_t;
        fine_mean_runtime = Stats.mean !fine_t;
        hybrid_violations = !violations;
      })
    trees

let render rows =
  let row r =
    [
      r.tree_name;
      string_of_int r.sinks;
      Printf.sprintf "%.1f" (r.tau_min *. 1e12);
      Printf.sprintf "%.0f" r.hybrid_mean_width;
      Printf.sprintf "%.0f" r.coarse_mean_width;
      Printf.sprintf "%.0f" r.fine_mean_width;
      Table.percent r.saving_vs_coarse;
      Table.seconds r.hybrid_mean_runtime;
      Table.seconds r.fine_mean_runtime;
      string_of_int r.hybrid_violations;
    ]
  in
  Table.render
    ~header:
      [ "tree"; "sinks"; "taumin(ps)"; "hybrid(u)"; "coarse(u)"; "fine(u)";
        "D vs coarse(%)"; "T_hyb(s)"; "T_fine(s)"; "viol" ]
    ~rows:(List.map row rows)
