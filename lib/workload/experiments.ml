module Geometry = Rip_net.Geometry
module Net = Rip_net.Net
module Power_dp = Rip_dp.Power_dp
module Rip = Rip_core.Rip
module Stats = Rip_numerics.Stats
module Engine = Rip_engine.Engine
module Telemetry = Rip_engine.Telemetry

type cell = {
  target_index : int;
  budget : float;
  rip : (Rip.report, Rip.error) result;
  baselines : (float * Baseline.run) list;
}

type net_run = {
  net : Net.t;
  tau_min : float;
  cells : cell list;
}

let saving_percent ~(baseline : Power_dp.result) ~(rip : Rip.report) =
  if baseline.Power_dp.total_width > 0.0 then
    Some
      (100.0
      *. (baseline.Power_dp.total_width -. rip.Rip.total_width)
      /. baseline.Power_dp.total_width)
  else if rip.Rip.total_width = 0.0 then Some 0.0
  else None

(* The whole sweep goes through the batch engine: per-net preparation
   (geometry + the tau_min anchor) in one parallel phase, then every
   (net, budget) cell of every net flattened into a second one.  Per-cell
   work is untouched, so the result is identical to the old sequential
   sweep for any job count. *)
let run_suite_stats ?jobs ?(granularities = [ 10.0; 20.0; 40.0 ])
    ?(fixed_range = false) ?nets ?(targets_per_net = 20) ?config ?hooks
    process =
  let nets = match nets with Some nets -> nets | None -> Suite.nets () in
  let dp_backend =
    (Option.value config ~default:Rip_core.Config.default)
      .Rip_core.Config.dp.Rip_core.Config.backend
  in
  let baseline_of granularity =
    if fixed_range then Baseline.fixed_range ~granularity
    else Baseline.fixed_size ~granularity
  in
  let grouped, telemetry =
    Engine.map_suite ?jobs
      ~prepare:(fun net ->
        let geometry = Geometry.of_net net in
        let tau_min = Rip.tau_min process geometry in
        (net, geometry, tau_min))
      ~targets:(fun (_, _, tau_min) ->
        List.mapi
          (fun target_index budget -> (target_index, budget))
          (Suite.timing_targets ~count:targets_per_net ~tau_min ()))
      ~cell:(fun (net, geometry, _) (target_index, budget) ->
        let rip =
          Rip.solve ?config ?hooks
            { Rip.process; net; geometry = Some geometry; budget }
        in
        let baselines =
          List.map
            (fun g ->
              ( g,
                Baseline.solve ~backend:dp_backend (baseline_of g) process
                  geometry ~budget ))
            granularities
        in
        { target_index; budget; rip; baselines })
      nets
  in
  ( List.map
      (fun ((net, _, tau_min), cells) -> { net; tau_min; cells })
      grouped,
    telemetry )

let run_suite ?jobs ?granularities ?fixed_range ?nets ?targets_per_net
    ?config ?hooks process =
  fst
    (run_suite_stats ?jobs ?granularities ?fixed_range ?nets ?targets_per_net
       ?config ?hooks process)

(* Savings of RIP over the g-granularity baseline across a net's cells. *)
let net_savings ~granularity run =
  List.filter_map
    (fun cell ->
      match (List.assoc_opt granularity cell.baselines, cell.rip) with
      | Some { Baseline.result = Some baseline; _ }, Ok rip ->
          saving_percent ~baseline ~rip
      | Some _, _ | None, _ -> None)
    run.cells

let net_violations ~granularity run =
  List.length
    (List.filter
       (fun cell ->
         match List.assoc_opt granularity cell.baselines with
         | Some { Baseline.result = None; _ } -> true
         | Some _ | None -> false)
       run.cells)

(* --- Table 1 --------------------------------------------------------- *)

type table1_row = {
  net_name : string;
  g10_delta_max : float;
  g10_violations : int;
  g20_delta_max : float;
  g20_delta_mean : float;
  g40_delta_max : float;
  g40_delta_mean : float;
}

type table1 = {
  rows : table1_row list;
  average : table1_row;
}

let max_or_zero = function [] -> 0.0 | xs -> Stats.max_value xs

let table1_row run =
  let s10 = net_savings ~granularity:10.0 run in
  let s20 = net_savings ~granularity:20.0 run in
  let s40 = net_savings ~granularity:40.0 run in
  {
    net_name = run.net.Net.name;
    g10_delta_max = max_or_zero s10;
    g10_violations = net_violations ~granularity:10.0 run;
    g20_delta_max = max_or_zero s20;
    g20_delta_mean = Stats.mean s20;
    g40_delta_max = max_or_zero s40;
    g40_delta_mean = Stats.mean s40;
  }

let table1 runs =
  let rows = List.map table1_row runs in
  let mean f = Stats.mean (List.map f rows) in
  let average =
    {
      net_name = "Ave";
      g10_delta_max = mean (fun r -> r.g10_delta_max);
      g10_violations =
        int_of_float
          (Float.round (mean (fun r -> float_of_int r.g10_violations)));
      g20_delta_max = mean (fun r -> r.g20_delta_max);
      g20_delta_mean = mean (fun r -> r.g20_delta_mean);
      g40_delta_max = mean (fun r -> r.g40_delta_max);
      g40_delta_mean = mean (fun r -> r.g40_delta_mean);
    }
  in
  { rows; average }

let render_table1 { rows; average } =
  let row r =
    [
      r.net_name;
      Table.percent r.g10_delta_max;
      string_of_int r.g10_violations;
      Table.percent r.g20_delta_max;
      Table.percent r.g20_delta_mean;
      Table.percent r.g40_delta_max;
      Table.percent r.g40_delta_mean;
    ]
  in
  Table.render
    ~header:
      [ "Net"; "g10 DMax(%)"; "g10 V_DP"; "g20 DMax(%)"; "g20 DMean(%)";
        "g40 DMax(%)"; "g40 DMean(%)" ]
    ~rows:(List.map row rows @ [ row average ])

(* --- Figure 7 -------------------------------------------------------- *)

type fig7_point = {
  target_multiple : float;
  mean_saving : float;
  max_saving : float;
  min_saving : float;
  baseline_infeasible : int;
}

let fig7 ~granularity runs =
  let target_count =
    List.fold_left (fun acc run -> Stdlib.max acc (List.length run.cells)) 0
      runs
  in
  List.init target_count (fun k ->
      let at_target =
        List.filter_map
          (fun run -> List.nth_opt run.cells k |> Option.map (fun c -> (run, c)))
          runs
      in
      let savings =
        List.filter_map
          (fun (_, cell) ->
            match (List.assoc_opt granularity cell.baselines, cell.rip) with
            | Some { Baseline.result = Some baseline; _ }, Ok rip ->
                saving_percent ~baseline ~rip
            | Some _, _ | None, _ -> None)
          at_target
      in
      let infeasible =
        List.length
          (List.filter
             (fun (_, cell) ->
               match List.assoc_opt granularity cell.baselines with
               | Some { Baseline.result = None; _ } -> true
               | Some _ | None -> false)
             at_target)
      in
      {
        target_multiple = Suite.target_multiple k;
        mean_saving = Stats.mean savings;
        max_saving = max_or_zero savings;
        min_saving = (match savings with [] -> 0.0 | _ -> Stats.min_value savings);
        baseline_infeasible = infeasible;
      })

let render_fig7 ~granularity points =
  let bar v =
    let len = int_of_float (Float.round (Float.max 0.0 v /. 2.0)) in
    String.make (Stdlib.min len 40) '#'
  in
  let zone p =
    if p.baseline_infeasible > 0 then "I"
    else if p.mean_saving > 2.0 then "II"
    else "III"
  in
  let row p =
    [
      Printf.sprintf "%.2f" p.target_multiple;
      Table.percent p.mean_saving;
      Table.percent p.max_saving;
      Table.percent p.min_saving;
      string_of_int p.baseline_infeasible;
      zone p;
      bar p.mean_saving;
    ]
  in
  Printf.sprintf "Figure 7: savings over DP[14] size-10 library, g=%gu\n%s"
    granularity
    (Table.render
       ~header:
         [ "tau_t/tau_min"; "mean(%)"; "max(%)"; "min(%)"; "DP infeasible";
           "zone"; "mean sketch" ]
       ~rows:(List.map row points))

(* --- Table 2 --------------------------------------------------------- *)

type table2_row = {
  granularity : float;
  delta_mean : float;
  t_dp : float;
  t_rip : float;
  speedup : float;
  baseline_infeasible : int;
}

(* Sequential by default: the T_DP / T_RIP columns are the product here,
   and even with thread-CPU timing an oversubscribed pool charges each
   cell its share of minor-GC synchronisation.  Parallelism is opt-in. *)
let table2 ?(jobs = 1) ?(granularities = [ 40.0; 30.0; 20.0; 10.0 ]) ?nets
    ?(targets_per_net = 20) ?config process =
  let runs =
    run_suite ~jobs ~granularities ~fixed_range:true ?nets ~targets_per_net
      ?config process
  in
  let cells = List.concat_map (fun run -> run.cells) runs in
  let rip_times =
    List.filter_map
      (fun cell ->
        match cell.rip with
        | Ok r -> Some r.Rip.runtime_seconds
        | Error _ -> None)
      cells
  in
  let t_rip = Stats.mean rip_times in
  List.map
    (fun granularity ->
      let outcomes =
        List.filter_map (fun c -> List.assoc_opt granularity c.baselines) cells
      in
      let t_dp =
        Stats.mean (List.map (fun b -> b.Baseline.runtime_seconds) outcomes)
      in
      let savings =
        List.filter_map
          (fun cell ->
            match (List.assoc_opt granularity cell.baselines, cell.rip) with
            | Some { Baseline.result = Some baseline; _ }, Ok rip ->
                saving_percent ~baseline ~rip
            | Some _, _ | None, _ -> None)
          cells
      in
      let infeasible =
        List.length
          (List.filter (fun b -> b.Baseline.result = None) outcomes)
      in
      {
        granularity;
        delta_mean = Stats.mean savings;
        t_dp;
        t_rip;
        speedup = (if t_rip > 0.0 then t_dp /. t_rip else Float.infinity);
        baseline_infeasible = infeasible;
      })
    granularities

let render_table2 rows =
  let row r =
    [
      Printf.sprintf "%g" r.granularity;
      Table.percent r.delta_mean;
      Table.seconds r.t_dp;
      Table.seconds r.t_rip;
      Printf.sprintf "%.0f" r.speedup;
      string_of_int r.baseline_infeasible;
    ]
  in
  Table.render
    ~header:
      [ "g_DP(u)"; "Delta(%)"; "T_DP(s)"; "T_RIP(s)"; "Speedup";
        "DP infeasible" ]
    ~rows:(List.map row rows)
