(** Experiment runners regenerating every table and figure of the paper's
    evaluation (Section 6).  See DESIGN.md for the experiment index and
    EXPERIMENTS.md for paper-vs-measured results.

    All runners are deterministic given the process and suite seed; only
    the runtime columns (Table 2) depend on the machine. *)

(** {1 Shared run matrix (Table 1 and Figure 7 reuse one sweep)} *)

type cell = {
  target_index : int;  (** 0-based k; budget is [(1.05 + 0.05 k) tau_min] *)
  budget : float;
  rip : (Rip_core.Rip.report, Rip_core.Rip.error) result;
  baselines : (float * Baseline.run) list;
      (** baseline outcome per width granularity [g] *)
}

type net_run = {
  net : Rip_net.Net.t;
  tau_min : float;
  cells : cell list;
}

val run_suite :
  ?jobs:int ->
  ?granularities:float list ->
  ?fixed_range:bool ->
  ?nets:Rip_net.Net.t list ->
  ?targets_per_net:int ->
  ?config:Rip_core.Config.t ->
  ?hooks:Rip_core.Rip.probe_event Rip_core.Hooks.t ->
  Rip_tech.Process.t ->
  net_run list
(** Sweep every net and timing target, solving RIP once per cell and the
    baseline once per granularity.  Defaults: the 20-net suite, 20 targets,
    granularities [10; 20; 40] with the paper's fixed-size-10 baseline
    libraries ([fixed_range = false]).

    [config] is handed to every RIP solve (its [dp] options also pick the
    baseline DP backend); [hooks] observes every RIP solve — with
    [jobs > 1] its callbacks run concurrently from pool domains, so they
    must be thread-safe (atomic counters are; see the bench suite).

    The sweep runs on the {!Rip_engine.Engine} domain pool ([jobs]
    workers, default {!Rip_engine.Engine.default_jobs}); results are
    independent of [jobs] — cells are reduced in submission order and
    every solver is deterministic. *)

val run_suite_stats :
  ?jobs:int ->
  ?granularities:float list ->
  ?fixed_range:bool ->
  ?nets:Rip_net.Net.t list ->
  ?targets_per_net:int ->
  ?config:Rip_core.Config.t ->
  ?hooks:Rip_core.Rip.probe_event Rip_core.Hooks.t ->
  Rip_tech.Process.t ->
  net_run list * Rip_engine.Telemetry.t
(** As {!run_suite}, also returning the engine's batch summary (batch
    wall seconds vs summed per-cell CPU seconds and pool utilization) —
    the numbers that keep Table 2's runtime columns meaningful under
    parallel execution. *)

(** {1 Table 1 — power reduction for two-pin nets} *)

type table1_row = {
  net_name : string;
  g10_delta_max : float;  (** col 2: max saving vs g=10u baseline, % *)
  g10_violations : int;  (** col 3: targets the baseline cannot meet *)
  g20_delta_max : float;
  g20_delta_mean : float;
  g40_delta_max : float;
  g40_delta_mean : float;
}

type table1 = {
  rows : table1_row list;
  average : table1_row;  (** the paper's "Ave" row *)
}

val table1 : net_run list -> table1
val render_table1 : table1 -> string

(** {1 Figure 7 — power savings vs timing target} *)

type fig7_point = {
  target_multiple : float;  (** budget as a multiple of tau_min *)
  mean_saving : float;  (** mean saving over nets with a feasible baseline *)
  max_saving : float;
  min_saving : float;
  baseline_infeasible : int;  (** nets in zone I at this target *)
}

val fig7 : granularity:float -> net_run list -> fig7_point list
(** One series; the paper plots granularities 10u (a) and 40u (b). *)

val render_fig7 : granularity:float -> fig7_point list -> string
(** Series plus an ASCII bar sketch marking zones I/II/III. *)

(** {1 Table 2 — power savings and speedup tradeoff} *)

type table2_row = {
  granularity : float;  (** g_DP, u *)
  delta_mean : float;  (** mean saving of RIP over the baseline, % *)
  t_dp : float;  (** mean baseline runtime per (net, target), s *)
  t_rip : float;  (** mean RIP runtime per (net, target), s *)
  speedup : float;  (** t_dp / t_rip *)
  baseline_infeasible : int;
}

val table2 :
  ?jobs:int -> ?granularities:float list -> ?nets:Rip_net.Net.t list ->
  ?targets_per_net:int -> ?config:Rip_core.Config.t -> Rip_tech.Process.t ->
  table2_row list
(** Fixed-range (10u, 400u) baselines per the paper; defaults to
    granularities [40; 30; 20; 10] over the full suite.

    Unlike {!run_suite}, [jobs] defaults to [1]: this sweep exists for
    its runtime columns, and per-cell times are only fully trustworthy
    when cells do not compete for cores (thread-CPU timing removes
    descheduling from the measurement but not each domain's share of GC
    synchronisation on an oversubscribed pool).  Pass [jobs] explicitly
    to trade timing fidelity for wall-clock speed. *)

val render_table2 : table2_row list -> string

(** {1 Saving arithmetic shared by the reports} *)

val saving_percent :
  baseline:Rip_dp.Power_dp.result -> rip:Rip_core.Rip.report -> float option
(** [100 (p_base - p_rip) / p_base]; [Some 0.] when both are zero-width,
    [None] when only the baseline is zero-width (no meaningful ratio). *)
