(** The conventional DP scheme of ref. [14] as configured in the paper's
    Section 6 — the comparison baseline for every experiment.

    Two shapes are used: Table 1 / Figure 7 fix the library size at 10 and
    vary the width granularity [g] (so the width range is
    [10u .. 10u + 9 g]), while Table 2 fixes the range at (10u, 400u) and
    varies the step [g_DP].  Candidate locations are uniform at 200 um,
    forbidden zones excluded, in both cases. *)

type t = {
  name : string;
  library : Rip_dp.Repeater_library.t;
  pitch : float;  (** candidate pitch, um *)
}

val fixed_size : granularity:float -> t
(** Library of exactly 10 widths starting at 10u stepping [granularity]. *)

val fixed_range : granularity:float -> t
(** Widths 10u .. 400u stepping [granularity]. *)

type run = {
  result : Rip_dp.Power_dp.result option;  (** [None]: timing violation *)
  runtime_seconds : float;  (** thread-CPU time of the DP call *)
}

val solve :
  ?backend:Rip_dp.Power_dp.backend ->
  t -> Rip_tech.Process.t -> Rip_net.Geometry.t -> budget:float -> run
(** Run the baseline DP on one net and budget, timed.  [backend] selects
    the {!Rip_dp.Power_dp} implementation (default [Auto]). *)
