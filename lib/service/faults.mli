(** Deterministic fault injection for the solve service.

    A fault plan decides, per fault site, whether to inject: delay a
    solve, kill a worker mid-solve, drop a connection after N response
    bytes, or corrupt a cache entry's digest.  All decisions come from
    SplitMix64 streams derived from one seed — a chaos run replays
    exactly given the same spec — and everything is off by default.

    The server consults the plan from worker and connection threads;
    draws are serialised internally, so a [t] is thread-safe. *)

exception Worker_killed
(** Raised inside a worker when the kill fault fires; the server maps it
    to a [DEGRADED worker-lost] response. *)

type spec = {
  seed : int64;
  delay_p : float;  (** probability a solve is delayed *)
  delay_seconds : float;
  kill_p : float;  (** probability a worker dies mid-solve *)
  drop_p : float;  (** probability a response is cut short *)
  drop_bytes : int;  (** response bytes written before the cut *)
  corrupt_p : float;  (** probability a cache insert is corrupted *)
  torn_p : float;  (** probability a journal append is torn short *)
  bitflip_p : float;  (** probability a journal append has a bit flipped *)
  fsync_delay_p : float;  (** probability an fsync is delayed *)
  fsync_delay_seconds : float;
}

type t

val disabled : unit -> t
(** All probabilities zero: every query answers "no fault". *)

val create : spec -> t
(** @raise Invalid_argument on probabilities outside [0, 1], negative
    delay, or negative byte count. *)

val spec : t -> spec

val solve_delay : t -> float option
(** [Some seconds] when the delay fault fires for this solve. *)

val kill_worker : t -> bool
(** Whether to raise {!Worker_killed} in this solve's worker. *)

val drop_after : t -> int option
(** [Some n] when this response should be cut after [n] bytes and the
    connection closed. *)

val corrupt_cache : t -> bool
(** Whether to corrupt the digest of the entry being inserted. *)

val torn_write : t -> len:int -> int option
(** [Some n] when this journal append of [len] bytes should be torn:
    only the first [n] bytes ([0 <= n < len]) reach the file, simulating
    a crash mid-[write].  [None] when [len <= 0]. *)

val journal_bitflip : t -> len:int -> (int * int) option
(** [Some (byte, bit)] when this journal append of [len] bytes should
    have bit [bit] of byte [byte] flipped before it is written,
    simulating silent media corruption.  [None] when [len <= 0]. *)

val fsync_delay : t -> float option
(** [Some seconds] when this journal fsync should be delayed first. *)

val parse_spec : string -> (t, string) result
(** Parse a comma-separated spec, e.g.
    ["seed=7,delay:p=0.5:ms=20,kill:p=0.1,drop:p=0.2:bytes=64,corrupt:p=1"].
    Clauses: [seed=<int64>], [delay[:p=<q>][:ms=<f>]] (default 10 ms),
    [kill[:p=<q>]], [drop[:p=<q>][:bytes=<n>]], [corrupt[:p=<q>]],
    [torn[:p=<q>]], [bitflip[:p=<q>]], [fsyncdelay[:p=<q>][:ms=<f>]]
    (default 5 ms); omitted [p] defaults to 1.  The empty string yields
    a disabled plan. *)

val env_var : string
(** ["RIP_FAULTS"] — the environment hook read by {!of_env}. *)

val of_env : unit -> (t option, string) result
(** [Ok None] when the variable is unset or empty. *)
