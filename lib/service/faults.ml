(* Deterministic fault-injection plane for the solve service.

   Everything is off by default ({!disabled}); when enabled, every draw
   comes from SplitMix64 streams derived from one seed, one independent
   stream per fault site, so a chaos run replays byte-for-byte from
   [--faults seed=N,...].  Draws are serialised by a mutex because the
   server consults the plan from worker and connection threads. *)

exception Worker_killed

type spec = {
  seed : int64;
  delay_p : float;
  delay_seconds : float;
  kill_p : float;
  drop_p : float;
  drop_bytes : int;
  corrupt_p : float;
  torn_p : float;
  bitflip_p : float;
  fsync_delay_p : float;
  fsync_delay_seconds : float;
}

let disabled_spec =
  {
    seed = 1L;
    delay_p = 0.0;
    delay_seconds = 0.0;
    kill_p = 0.0;
    drop_p = 0.0;
    drop_bytes = 0;
    corrupt_p = 0.0;
    torn_p = 0.0;
    bitflip_p = 0.0;
    fsync_delay_p = 0.0;
    fsync_delay_seconds = 0.0;
  }

type t = {
  spec : spec;
  mutex : Mutex.t;
  delay_rng : Rip_numerics.Prng.t;
  kill_rng : Rip_numerics.Prng.t;
  drop_rng : Rip_numerics.Prng.t;
  corrupt_rng : Rip_numerics.Prng.t;
  torn_rng : Rip_numerics.Prng.t;
  bitflip_rng : Rip_numerics.Prng.t;
  fsync_rng : Rip_numerics.Prng.t;
}

let check_p name p =
  if not (Float.is_finite p) || p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Faults: %s must be in [0, 1]" name)

let create spec =
  check_p "delay probability" spec.delay_p;
  check_p "kill probability" spec.kill_p;
  check_p "drop probability" spec.drop_p;
  check_p "corrupt probability" spec.corrupt_p;
  check_p "torn-write probability" spec.torn_p;
  check_p "bit-flip probability" spec.bitflip_p;
  check_p "fsync-delay probability" spec.fsync_delay_p;
  if spec.delay_seconds < 0.0 then
    invalid_arg "Faults: delay must be non-negative";
  if spec.drop_bytes < 0 then
    invalid_arg "Faults: drop byte count must be non-negative";
  if spec.fsync_delay_seconds < 0.0 then
    invalid_arg "Faults: fsync delay must be non-negative";
  let root = Rip_numerics.Prng.create spec.seed in
  {
    spec;
    mutex = Mutex.create ();
    delay_rng = Rip_numerics.Prng.derive root 1L;
    kill_rng = Rip_numerics.Prng.derive root 2L;
    drop_rng = Rip_numerics.Prng.derive root 3L;
    corrupt_rng = Rip_numerics.Prng.derive root 4L;
    torn_rng = Rip_numerics.Prng.derive root 5L;
    bitflip_rng = Rip_numerics.Prng.derive root 6L;
    fsync_rng = Rip_numerics.Prng.derive root 7L;
  }

let disabled () = create disabled_spec

let spec t = t.spec

let draw t rng p =
  if p <= 0.0 then false
  else begin
    Mutex.lock t.mutex;
    let x = Rip_numerics.Prng.float_range rng 0.0 1.0 in
    Mutex.unlock t.mutex;
    x < p
  end

let solve_delay t =
  if draw t t.delay_rng t.spec.delay_p then Some t.spec.delay_seconds
  else None

let kill_worker t = draw t t.kill_rng t.spec.kill_p

let drop_after t =
  if draw t t.drop_rng t.spec.drop_p then Some t.spec.drop_bytes else None

let corrupt_cache t = draw t t.corrupt_rng t.spec.corrupt_p

(* The disk-fault sites need both the coin flip and a position drawn
   from the same stream, atomically, so a replay with the same seed
   tears/flips the same record at the same offset. *)
let draw_with_pos t rng p ~bound =
  if p <= 0.0 || bound <= 0 then None
  else begin
    Mutex.lock t.mutex;
    let x = Rip_numerics.Prng.float_range rng 0.0 1.0 in
    let pos = Rip_numerics.Prng.int_range rng 0 (bound - 1) in
    Mutex.unlock t.mutex;
    if x < p then Some pos else None
  end

let torn_write t ~len = draw_with_pos t t.torn_rng t.spec.torn_p ~bound:len

let journal_bitflip t ~len =
  match draw_with_pos t t.bitflip_rng t.spec.bitflip_p ~bound:(len * 8) with
  | None -> None
  | Some bit -> Some (bit / 8, bit mod 8)

let fsync_delay t =
  if draw t t.fsync_rng t.spec.fsync_delay_p then
    Some t.spec.fsync_delay_seconds
  else None

(* Spec syntax: comma-separated clauses, each [name:key=value:...], e.g.
   "seed=7,delay:p=0.5:ms=20,kill:p=0.1,drop:p=0.2:bytes=64,corrupt:p=1". *)

let parse_error fmt = Printf.ksprintf (fun m -> Error m) fmt

let parse_float what s =
  match float_of_string_opt s with
  | Some v when Float.is_finite v -> Ok v
  | _ -> parse_error "faults: bad %s %S" what s

let parse_clause spec clause =
  let ( let* ) = Result.bind in
  match String.split_on_char ':' clause with
  | [] | [ "" ] -> Ok spec
  | head :: params -> (
      let assoc =
        List.map
          (fun p ->
            match String.index_opt p '=' with
            | Some i ->
                ( String.sub p 0 i,
                  String.sub p (i + 1) (String.length p - i - 1) )
            | None -> (p, ""))
          params
      in
      let prob () =
        match List.assoc_opt "p" assoc with
        | None -> Ok 1.0
        | Some s -> parse_float "probability" s
      in
      match head with
      | _ when String.length head > 5 && String.sub head 0 5 = "seed=" -> (
          let s = String.sub head 5 (String.length head - 5) in
          match Int64.of_string_opt s with
          | Some seed -> Ok { spec with seed }
          | None -> parse_error "faults: bad seed %S" s)
      | "delay" ->
          let* p = prob () in
          let* ms =
            match List.assoc_opt "ms" assoc with
            | None -> Ok 10.0
            | Some s -> parse_float "delay ms" s
          in
          Ok { spec with delay_p = p; delay_seconds = ms /. 1000.0 }
      | "kill" ->
          let* p = prob () in
          Ok { spec with kill_p = p }
      | "drop" ->
          let* p = prob () in
          let* bytes =
            match List.assoc_opt "bytes" assoc with
            | None -> Ok 0
            | Some s -> (
                match int_of_string_opt s with
                | Some v -> Ok v
                | None -> parse_error "faults: bad drop bytes %S" s)
          in
          Ok { spec with drop_p = p; drop_bytes = bytes }
      | "corrupt" ->
          let* p = prob () in
          Ok { spec with corrupt_p = p }
      | "torn" ->
          let* p = prob () in
          Ok { spec with torn_p = p }
      | "bitflip" ->
          let* p = prob () in
          Ok { spec with bitflip_p = p }
      | "fsyncdelay" ->
          let* p = prob () in
          let* ms =
            match List.assoc_opt "ms" assoc with
            | None -> Ok 5.0
            | Some s -> parse_float "fsync delay ms" s
          in
          Ok { spec with fsync_delay_p = p; fsync_delay_seconds = ms /. 1000.0 }
      | other -> parse_error "faults: unknown clause %S" other)

let parse_spec s =
  let clauses =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let rec go spec = function
    | [] -> (
        match create spec with
        | t -> Ok t
        | exception Invalid_argument m -> Error m)
    | clause :: rest -> (
        match parse_clause spec clause with
        | Ok spec -> go spec rest
        | Error _ as e -> e)
  in
  go disabled_spec clauses

let env_var = "RIP_FAULTS"

let of_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok None
  | Some s -> Result.map Option.some (parse_spec s)
