(** The [rip_serviced] daemon core, embeddable in-process.

    One server owns a long-lived {!Rip_engine.Engine.handle} (the worker
    pool), a {!Solve_cache} in front of it, and {!Metrics}.  Connections
    are served by one thread each, speaking {!Protocol}:

    - a SOLVE request is first looked up in the cache — a hit is answered
      immediately, without touching the pool;
    - a miss is admitted only while fewer than [queue_depth] solves are in
      flight across all connections, otherwise the request is rejected
      with a typed BUSY frame (backpressure, not an unbounded queue);
    - admitted solves run on the shared pool; queue wait (wall) and
      solver time (thread-CPU, {!Rip_numerics.Cpu_clock}) are accumulated
      into the metrics and surfaced through STATS.

    Solver errors are answered as typed ERROR frames and are not cached;
    only successful solutions enter the cache. *)

type config = {
  jobs : int option;
      (** worker domains for the pool; [None] is the machine default,
          [Some 1] solves inline in the connection thread *)
  queue_depth : int;  (** max in-flight solves before BUSY *)
  cache_capacity : int;  (** {!Solve_cache} capacity, entries *)
  solver : Rip_core.Config.t option;  (** [None] means the default *)
}

val default_config : config
(** [jobs = None], [queue_depth = 64], [cache_capacity = 512],
    [solver = None]. *)

type t

val create : ?config:config -> Rip_tech.Process.t -> t
(** Spawn the worker pool; the server is ready to serve connections. *)

val stats : t -> Protocol.stats
(** The STATS payload a client would receive now. *)

val stopping : t -> bool

val handle_connection : t -> Unix.file_descr -> unit
(** Serve one established connection (e.g. one end of a socketpair)
    until the peer disconnects, a protocol error occurs, or a SHUTDOWN
    request arrives.  Closes [fd] before returning.  Never raises on
    peer-induced failures (resets, early close). *)

val run : t -> Unix.file_descr -> unit
(** Accept loop over a listening socket: one thread per connection.
    Returns once shutdown is requested (SHUTDOWN frame, or
    {!request_shutdown} from a signal handler) and every connection
    thread has finished; the worker pool is then shut down too.  Closes
    the listening socket. *)

val request_shutdown : t -> unit
(** Stop accepting connections and reject further solves; idempotent and
    async-signal-usable.  In-flight requests complete. *)

val shutdown : t -> unit
(** {!request_shutdown} plus releasing the worker pool.  Embedders that
    drive {!handle_connection} directly (no {!run} loop) must call this;
    after {!run} returns it is a no-op. *)

(** {1 Listening-socket helpers} *)

val listen_unix : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket path, unlinking a stale
    socket file first. *)

val listen_tcp : host:string -> port:int -> Unix.file_descr
(** Bind and listen on [host:port] with [SO_REUSEADDR]. *)
