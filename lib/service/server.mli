(** The [rip_serviced] daemon core, embeddable in-process.

    One server owns a long-lived {!Rip_engine.Engine.handle} (the worker
    pool), a digest-verified {!Solve_cache} in front of it, {!Metrics}, a
    deadline watchdog thread, and a {!Faults} plan (disabled unless
    configured).  Connections are served by one thread each, speaking
    {!Protocol} over a bounded {!Wire} reader.

    A SOLVE request walks a degradation ladder — every rung answers with
    exactly one well-formed typed frame:

    + cache lookup (digest-verified; a corrupted entry self-heals and
      counts as a miss) — a hit is answered immediately, even when the
      request's deadline has already expired: the replay is free;
    + a deadline that expired at admission is answered [TIMEOUT]
      without dispatching any work;
    + admission: [BUSY] when [queue_depth] solves are already in flight
      (backpressure, not an unbounded queue);
    + load shedding: an admitted solve finding the queue deeper than
      [high_water] answers [DEGRADED overload] from the analytic
      fallback tier without running the DP;
    + the full solve runs on the pool under a cancellation token; the
      watchdog fires the token at the deadline (monotonic clock), and a
      cancelled or fault-killed solve answers [DEGRADED] with the
      fallback solution ([deadline] / [worker-lost] reason) — unless
      the solve completed first, in which case the full RESULT wins.

    The analytic fallback tier ({!Rip_refine.Min_delay_analytic} plus a
    short REFINE pass, widths rounded to the coarse library, positions
    re-legalised against forbidden zones) is total and DP-free, so a
    degraded answer costs microseconds-to-milliseconds.  Degraded
    solutions are never cached.

    Request frames larger than [max_frame_bytes] are answered [TOOBIG]
    and the connection closed.  Solver errors are answered as typed
    ERROR frames and are not cached; only full solutions enter the
    cache. *)

type config = {
  shard_id : string;
      (** this server's identity on HEALTH and STATS frames; one token
          over [[A-Za-z0-9._-]] (see {!Protocol.valid_shard_id}).  A
          router uses it to tell its shards apart *)
  jobs : int option;
      (** worker domains for the pool; [None] is the machine default,
          [Some 1] solves inline in the connection thread *)
  queue_depth : int;  (** max in-flight solves before BUSY *)
  high_water : int;
      (** in-flight solves beyond which new admissions degrade to the
          analytic tier instead of queueing a full solve; must be in
          [1, queue_depth] *)
  cache_capacity : int;  (** {!Solve_cache} capacity, entries *)
  max_frame_bytes : int;  (** request-frame byte bound before TOOBIG *)
  solver : Rip_core.Config.t option;  (** [None] means the default *)
  faults : Faults.t option;  (** [None] means no injection *)
  tracer : Rip_obs.Trace.t option;
      (** when set, every request leaves spans (admission, cache lookup,
          queue wait, solve, per-phase solver work) in the tracer, with
          span ids derived from the request's cache key and the tracer's
          scope (collision-free across shards); a request carrying a
          TRACE context gets its [trace_id]/[parent_span_id] attached to
          every span, so a cross-process merge ({!Rip_obs.Trace_merge})
          parents them under the caller's span; the daemon dumps spans
          as Chrome-trace JSON on exit ([--trace-out]) *)
  spool : Rip_obs.Wide_event.spool option;
      (** when set, every SOLVE emits exactly one wide event (outcome,
          cache, queue wait, DP backend, labels pruned, deadline slack)
          through the spool's tail sampler *)
  journal_dir : string option;
      (** when set, every verified cache insert is appended to a
          crash-durable {!Journal} in this directory and the log is
          replayed at {!create} to pre-warm the cache; replayed records
          are digest-verified and RESULT-parsed before admission, so a
          corrupted journal can only shrink the warm set, never poison
          it *)
}

val default_config : config
(** [shard_id = "standalone"], [jobs = None], [queue_depth = 64],
    [high_water = 48], [cache_capacity = 512],
    [max_frame_bytes = Wire.default_max_frame_bytes], [solver = None],
    [faults = None], [tracer = None], [spool = None],
    [journal_dir = None]. *)

type t

val create : ?config:config -> Rip_tech.Process.t -> t
(** Spawn the worker pool and the watchdog; the server is ready to serve
    connections.  When [journal_dir] is set, recovery and replay happen
    here, before anything is served.
    @raise Invalid_argument on a non-positive [queue_depth] or
    [max_frame_bytes], an invalid [shard_id], [high_water] outside
    [1, queue_depth] — the message names the offending values
    (e.g. ["high_water 80 must not exceed queue_depth 64"]) — or a
    journal directory that cannot be created or written (callers
    wanting a typed error should probe with {!Journal.prepare_dir}
    first). *)

val stats : t -> Protocol.stats
(** The STATS payload a client would receive now. *)

val journal_recovery : t -> Journal.recovery option
(** What boot-time replay found: [None] for an unjournaled server.
    Note [recovery.entries] counts raw journal records; the cache's
    [replayed] stat counts those that also passed digest verification
    and RESULT parsing. *)

val journal_flush : t -> unit
(** Force unsynced journal bytes to disk now (no-op unjournaled) — the
    SIGTERM grace path, for embedders that cannot wait for {!run}'s
    clean close. *)

val health : t -> Protocol.health
(** The HEALTHY payload a client would receive now: shard id plus the
    live admission gauges. *)

val stopping : t -> bool

val cache_key : t -> net:Rip_net.Net.t -> budget:float -> string
(** The cache key this server would use for that request — for tests
    and tools that need to poke the cache (see
    {!corrupt_cache_entry}). *)

val corrupt_cache_entry : t -> string -> bool
(** Fault/test hook: tamper with a cached entry's digest so the next
    lookup self-heals ({!Solve_cache.corrupt}). *)

val handle_connection : t -> Unix.file_descr -> unit
(** Serve one established connection (e.g. one end of a socketpair)
    until the peer disconnects, a protocol error occurs, an oversized
    frame arrives (answered TOOBIG), or a SHUTDOWN request arrives.
    Closes [fd] before returning.  Never raises on peer-induced failures
    (resets, early close). *)

val run : t -> Unix.file_descr -> unit
(** Accept loop over a listening socket: one thread per connection.
    Returns once shutdown is requested (SHUTDOWN frame, or
    {!request_shutdown} from a signal handler) and every connection
    thread has finished; the worker pool and the watchdog are then shut
    down too.  Closes the listening socket. *)

val request_shutdown : t -> unit
(** Stop accepting connections and reject further solves; idempotent and
    async-signal-usable.  In-flight requests complete. *)

val shutdown : t -> unit
(** {!request_shutdown} plus releasing the worker pool and the watchdog.
    Embedders that drive {!handle_connection} directly (no {!run} loop)
    must call this; after {!run} returns it is a no-op. *)

(** {1 Listening-socket helpers} *)

val listen_unix : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket path, unlinking a stale
    socket file first. *)

val listen_tcp : host:string -> port:int -> Unix.file_descr
(** Bind and listen on [host:port] with [SO_REUSEADDR]. *)
