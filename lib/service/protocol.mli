(** The line-oriented wire protocol of [rip_serviced].

    Frames are newline-terminated ASCII lines; multi-line frames end with
    a line that is exactly [END].  Floats are rendered with [%.17g], so a
    parse/print round trip is exact.  A trailing [\r] on any line is
    stripped, which keeps interactive [socat]/[telnet] sessions usable.

    Requests:
    {v
    PING
    STATS
    METRICS
    HEALTH
    SHUTDOWN
    SOLVE <budget-seconds> [DEADLINE <milliseconds>] [TRACE <trace-id> <parent-span-id> <flags>]
    <net body in the Rip_net.Net_io file format>
    END
    v}

    The optional [DEADLINE] header bounds how long the client is willing
    to wait for this solve, measured from admission on the server's
    monotonic clock.  Past the deadline the server answers [TIMEOUT]
    (nothing started yet) or degrades to its analytic fallback tier and
    answers [DEGRADED] (see below); it never keeps solving.

    The optional [TRACE] header propagates a distributed-trace context:
    a 32-hex-digit trace id, the 16-hex-digit span id of the caller's
    span (all zeros for a root), and a decimal flags byte (bit 0 =
    sampled).  The two headers may appear in either order.  TRACE is
    best-effort observability: a malformed, truncated, duplicated or
    otherwise invalid TRACE header degrades the request to untraced and
    the solve proceeds normally — a bad DEADLINE is still a protocol
    error, because deadlines affect correctness.

    The net body must not contain a line equal to [END] (bodies produced
    by {!Rip_net.Net_io.to_string} never do).

    Responses:
    {v
    PONG
    BYE
    BUSY
    TIMEOUT
    TOOBIG
    ERROR <kind> <one-line message>
    RESULT <fresh|cached>
    repeater <position-um> <width-u>     (zero or more)
    width <total-width-u>
    delay <seconds>
    power <watts>
    END
    DEGRADED <deadline|overload|worker-lost>
    <same solution body as RESULT>
    END
    STATS
    <field> <value>                      (one line per stats field)
    END
    METRICS
    <Prometheus text exposition lines>
    END
    HEALTHY <shard-id> <in-flight> <queue-depth> <high-water>
    v}

    [HEALTH] is the cheap liveness-and-load probe a router polls between
    METRICS scrapes: one line out, one line back, no END framing on
    either side.  The shard id is the server's configured identity (one
    token of [[A-Za-z0-9._-]]); the three integers are the current
    admission gauges.

    The [METRICS] body is the server registry's Prometheus text
    exposition ({!Rip_obs.Metrics.render}): counters, gauges, and the
    queue-wait / solve-latency histograms.  A Prometheus line never
    equals [END], so the framing is unambiguous.

    [TIMEOUT] answers a SOLVE whose deadline had already expired at
    admission.  [TOOBIG] answers a request frame exceeding the server's
    frame-size bound; the connection is closed after it (framing is
    lost).  [DEGRADED] carries a best-effort solution from the analytic
    fallback tier with the reason the full solve was skipped or
    abandoned; its delay may exceed the budget, but the solution is
    always legal (forbidden zones, width range).

    The body of a [RESULT] frame is deterministic — it carries no
    timestamps or runtimes — so a cache hit replays the cached solve
    byte for byte, except for the [fresh]/[cached] marker on the header
    line.  Per-request timing is aggregated server-side and surfaced
    through [STATS]. *)

(** {1 Frame types} *)

type error_kind =
  | Protocol_error  (** the request could not be parsed *)
  | Infeasible_budget  (** {!Rip_core.Rip.Infeasible_budget} *)
  | Invalid_net  (** {!Rip_core.Rip.Invalid_net} *)
  | Internal_error  (** {!Rip_core.Rip.Internal} or a server bug *)

type solution = {
  repeaters : (float * float) list;  (** (position um, width u), ordered *)
  total_width : float;  (** u *)
  delay : float;  (** seconds *)
  power_watts : float;
}

type served = Fresh | Cached

type degrade_reason =
  | Deadline_exceeded
      (** the deadline fired mid-solve; the DP was cancelled *)
  | Overload
      (** the admission queue crossed its high-water mark; the full
          solve was never attempted *)
  | Worker_lost  (** the worker running the solve died mid-solve *)

type stats = {
  shard_id : string;
      (** the answering server's identity; ["standalone"] unless
          configured (a router aggregating shard stats answers with its
          own id) *)
  uptime_seconds : float;
  requests : int;  (** SOLVE requests received (PING/STATS not counted) *)
  solved : int;  (** SOLVE requests answered with RESULT, hits included *)
  errors : int;  (** SOLVE requests answered with a solver ERROR *)
  rejected_busy : int;  (** SOLVE requests answered with BUSY *)
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_size : int;
  cache_capacity : int;
  queue_wait_seconds : float;
      (** cumulative seconds solves spent queued behind the worker pool *)
  solve_cpu_seconds : float;
      (** cumulative thread-CPU seconds spent inside the solver *)
  timeouts : int;  (** SOLVE requests answered with TIMEOUT *)
  degraded : int;  (** SOLVE requests answered with DEGRADED *)
  toobig : int;  (** request frames rejected with TOOBIG *)
  cache_self_heals : int;
      (** cache entries dropped on read because their digest no longer
          matched their body (and re-solved) *)
  cache_replayed : int;
      (** cache entries admitted from journal replay at boot; they count
          into neither hits nor misses *)
  journal_bytes : int;  (** on-disk journal size, a gauge; 0 unjournaled *)
  journal_compactions : int;  (** live-set rewrites since startup *)
  in_flight : int;  (** SOLVE requests currently admitted, a gauge *)
  queue_depth : int;
      (** of those, how many are waiting or running in the worker pool *)
  queue_wait_p50 : float;  (** seconds; histogram estimates over *)
  queue_wait_p95 : float;  (** every fresh solve since startup — *)
  queue_wait_p99 : float;  (** 0 before the first one *)
  solve_p50 : float;  (** thread-CPU seconds inside the solver *)
  solve_p95 : float;
  solve_p99 : float;
}

type health = {
  health_shard_id : string;
  health_in_flight : int;  (** admitted SOLVEs right now *)
  health_queue_depth : int;  (** the server's admission bound *)
  health_high_water : int;  (** its static load-shed mark *)
}

type request =
  | Ping
  | Stats
  | Metrics
  | Health
  | Shutdown
  | Solve of {
      budget : float;
      deadline_ms : float option;  (** wall-time budget for the request *)
      trace : Rip_obs.Trace.context option;
          (** distributed-trace context from the TRACE header, when one
              was present and valid *)
      net : Rip_net.Net.t;
    }

type response =
  | Pong
  | Bye
  | Busy
  | Timeout
  | Toobig
  | Error_frame of { kind : error_kind; message : string }
  | Result of { served : served; solution : solution }
  | Degraded of { reason : degrade_reason; solution : solution }
  | Stats_frame of stats
  | Metrics_frame of string
      (** the Prometheus text body, newline-terminated lines *)
  | Health_frame of health

(** {1 Printing} *)

val valid_shard_id : string -> bool
(** One non-empty token over [[A-Za-z0-9._-]] — what fits on the
    single-line [HEALTHY] and [STATS shard_id] fields. *)

val print_request : request -> string
(** The frame's wire form, newline-terminated. *)

val print_response : response -> string
(** The frame's wire form, newline-terminated.  The message of an
    [Error_frame] is flattened to one line. *)

val solution_body : solution -> string
(** The deterministic body of a [RESULT] frame (the lines between the
    header and [END]) — what "byte-identical cached replay" promises. *)

val parse_solution_body : string list -> (solution, string) result
(** Inverse of {!solution_body} on its lines (terminators stripped) —
    the journal replay path re-parses persisted bodies through this, so
    a replayed solution is exactly what a RESULT parser would accept. *)

(** {1 Parsing} *)

type reader = unit -> string option
(** Yields the next line (without its terminator) or [None] at end of
    stream. *)

val reader_of_channel : in_channel -> reader
(** Lines via [input_line], stripping one trailing [\r]. *)

val reader_of_lines : string list -> reader
(** An in-memory reader, for tests. *)

val input_request : reader -> (request option, string) result
(** Read one request frame; [Ok None] on a clean end of stream before any
    line of a frame, [Error] on garbage or a truncated frame. *)

val input_response : reader -> (response option, string) result
(** Read one response frame, same conventions. *)

(** {1 Equality (tests)} *)

val request_equal : request -> request -> bool
val response_equal : response -> response -> bool

val error_kind_to_string : error_kind -> string
val degrade_reason_to_string : degrade_reason -> string
val one_line : string -> string
(** Newlines collapsed to ["; "] — error messages must fit one frame
    line. *)
