(** Crash-durable write-ahead journal for the solve cache.

    An append-only log of [(key, value)] records — in the service, the
    cache key and the digest-prefixed response body — framed with a
    CRC32 per record and batched fsyncs.  The journal is the durability
    story behind [rip_serviced --journal-dir]: every verified cache
    insert is appended, and at boot the log is replayed to pre-warm the
    LRU so a restarted shard serves its old key range from microsecond
    byte-replays instead of cold solves.

    Records are written to numbered segment files ([segment-%08d.rj]),
    rotated at a size threshold.  The LRU's eviction feedback
    ({!note_evicted}) marks records dead; once the dead fraction of the
    log crosses a threshold, compaction rewrites the live set into a
    fresh segment and deletes the old ones.

    Recovery invariants (see DESIGN §6e):
    - a torn tail — the partial record a crash leaves behind — is
      truncated at the first bad frame and replay keeps everything
      before it;
    - a record whose CRC32 fails (bit rot, injected bit-flip) is
      skipped, never surfaced;
    - a clean-shutdown footer written by {!close} lets recovery skip
      the torn-tail repair pass entirely;
    - the journal itself never vouches for payload integrity beyond the
      CRC — the caller re-verifies each replayed record against its
      embedded digest before admitting it to the cache (the same
      self-healing verify path used for live reads).

    A [t] is thread-safe: appends, flushes and compactions are
    serialised by an internal mutex. *)

type config = {
  dir : string;  (** journal directory; see {!prepare_dir} *)
  segment_bytes : int;  (** rotate the active segment past this size *)
  fsync_bytes : int;  (** fsync once this many unsynced bytes accrue *)
  fsync_seconds : float;  (** ... or this long since the last fsync *)
  compact_min_bytes : int;  (** never compact a log smaller than this *)
  compact_dead_ratio : float;
      (** compact when [dead_bytes / bytes] reaches this fraction *)
}

val default_config : dir:string -> config
(** 1 MiB segments, 64 KiB / 50 ms fsync batching, compaction at half
    dead once the log exceeds 256 KiB. *)

type recovery = {
  entries : (string * string) list;
      (** live records in replay (append) order, last write per key wins *)
  valid_records : int;  (** CRC-valid records scanned *)
  crc_rejected : int;  (** records dropped for a CRC mismatch *)
  torn_bytes : int;  (** tail bytes truncated at the first bad frame *)
  clean : bool;  (** a clean-shutdown footer terminated the log *)
  segments : int;  (** segment files scanned *)
}

type stats = {
  bytes : int;  (** on-disk size across all segments *)
  segments : int;
  live_entries : int;
  dead_bytes : int;  (** bytes held by superseded or evicted records *)
  appends : int;
  fsyncs : int;
  compactions : int;
}

type t

val prepare_dir : string -> (unit, string) result
(** Create the journal directory (parents included, tolerant of a
    concurrent creator racing us — the [netgen_cli] mkdir idiom) and
    probe it for writability.  [Error] carries a one-line reason fit
    for a typed usage error; nothing is raised. *)

val open_ : ?faults:Faults.t -> config -> (t * recovery, string) result
(** Recover whatever the directory holds (repairing a torn tail in
    place), then open a fresh active segment for appends.  [faults]
    arms the disk fault sites ({!Faults.torn_write},
    {!Faults.journal_bitflip}, {!Faults.fsync_delay}) on the append
    path — recovery and compaction always write faithfully. *)

val append : t -> key:string -> value:string -> unit
(** Append one record.  A re-append of a live key supersedes the old
    record (last-wins on replay; the old bytes count as dead).  No-op
    after {!close} or after an injected torn write wedged the log —
    the torn tail is preserved for the next recovery to repair. *)

val note_evicted : t -> key:string -> unit
(** The cache evicted (or self-healed away) [key]: its record is dead
    weight from now on.  May trigger compaction. *)

val flush : t -> unit
(** Force the unsynced tail to disk now — the SIGTERM grace path. *)

val close : t -> unit
(** Flush, write the clean-shutdown footer, fsync and close.
    Idempotent. *)

val stats : t -> stats

val crc32 : ?crc:int32 -> Bytes.t -> pos:int -> len:int -> int32
(** Running CRC-32 (IEEE 802.3, the zlib polynomial) over a byte range;
    feed the previous return back through [?crc] to span disjoint
    ranges.  Exposed for tests. *)
