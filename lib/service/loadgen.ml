module Suite = Rip_workload.Suite
module Netgen = Rip_workload.Netgen
module Geometry = Rip_net.Geometry
module Net = Rip_net.Net
module Rip = Rip_core.Rip
module Stats = Rip_numerics.Stats

let workload ?(seed = Suite.default_seed) ?(distinct_nets = 8) ?(slack = 1.3)
    ?deadline_ms ?(traced = false) ~requests process =
  if distinct_nets < 1 then invalid_arg "Loadgen.workload: distinct_nets < 1";
  if requests < 0 then invalid_arg "Loadgen.workload: negative requests";
  let rng = Rip_numerics.Prng.create seed in
  let frames =
    Array.init distinct_nets (fun i ->
        let net = Netgen.generate rng ~index:(i + 1) in
        let geometry = Geometry.of_net net in
        let budget = slack *. Rip.tau_min process geometry in
        Protocol.Solve { budget; deadline_ms; trace = None; net })
  in
  Array.init requests (fun i ->
      match frames.(i mod distinct_nets) with
      | Protocol.Solve { budget; deadline_ms; trace = _; net } when traced ->
          (* Each request gets its own deterministic root context, even
             when the net repeats — the trace id is the join key across
             every process the request touches. *)
          let trace =
            Some
              (Rip_obs.Trace.make_context ~scope:"loadgen"
                 ~digest:(Net.canonical_digest net) ~seq:i ())
          in
          Protocol.Solve { budget; deadline_ms; trace; net }
      | frame -> frame)

type result = {
  sent : int;
  solved_fresh : int;
  solved_cached : int;
  degraded : int;
  timeouts : int;
  errors : int;
  busy : int;
  transport_failures : int;
  retried_transport : int;
  retried_busy : int;
  retried_timeout : int;
  verify_mismatches : int;
  wall_seconds : float;
  throughput : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

(* Cross-endpoint answer verification: the first RESULT seen for a
   given (net, budget) pins the solution bytes; every later RESULT for
   the same key — cached or fresh, from whichever shard — must match
   byte for byte.  The solver is deterministic, so a mismatch means a
   shard returned a wrong or stale answer.  DEGRADED answers are
   exempt: the fallback tier makes no bit-exactness promise. *)
type verify_store = {
  verify_mutex : Mutex.t;
  pinned : (string, string) Hashtbl.t;  (* request key -> solution digest *)
}

let verify_key ~budget net =
  Printf.sprintf "%s#%.17g" (Net.canonical_digest net) budget

(* One worker: take the next undrained request, send it through its retry
   session, time the full (retries included) round trip, classify the
   final response; stop on workload exhaustion or a final transport
   error. *)
type shared = {
  requests : Protocol.request array;
  mutex : Mutex.t;
  verify : verify_store option;
  mutable cursor : int;
  mutable sent : int;
  mutable solved_fresh : int;
  mutable solved_cached : int;
  mutable degraded : int;
  mutable timeouts : int;
  mutable errors : int;
  mutable busy : int;
  mutable transport_failures : int;
  mutable retried_transport : int;
  mutable retried_busy : int;
  mutable retried_timeout : int;
  mutable verify_mismatches : int;
  mutable latencies : float list;
}

let make_shared ?verify requests =
  {
    requests;
    mutex = Mutex.create ();
    verify;
    cursor = 0;
    sent = 0;
    solved_fresh = 0;
    solved_cached = 0;
    degraded = 0;
    timeouts = 0;
    errors = 0;
    busy = 0;
    transport_failures = 0;
    retried_transport = 0;
    retried_busy = 0;
    retried_timeout = 0;
    verify_mismatches = 0;
    latencies = [];
  }

let next_request shared =
  Mutex.lock shared.mutex;
  let index = shared.cursor in
  let frame =
    if index < Array.length shared.requests then begin
      shared.cursor <- index + 1;
      shared.sent <- shared.sent + 1;
      Some shared.requests.(index)
    end
    else None
  in
  Mutex.unlock shared.mutex;
  frame

(* Returns [true] when the answer contradicts a pinned one. *)
let check_verified store frame (solution : Protocol.solution) =
  match frame with
  | Protocol.Solve { budget; net; _ } ->
      let key = verify_key ~budget net in
      let digest = Digest.string (Protocol.solution_body solution) in
      Mutex.lock store.verify_mutex;
      let mismatch =
        match Hashtbl.find_opt store.pinned key with
        | Some pinned -> not (String.equal pinned digest)
        | None ->
            Hashtbl.replace store.pinned key digest;
            false
      in
      Mutex.unlock store.verify_mutex;
      mismatch
  | _ -> false

let record shared frame latency (outcome : Client.outcome) =
  let mismatch =
    match (shared.verify, outcome.response) with
    | Some store, Ok (Protocol.Result { solution; _ }) ->
        check_verified store frame solution
    | _ -> false
  in
  Mutex.lock shared.mutex;
  shared.latencies <- latency :: shared.latencies;
  shared.retried_transport <-
    shared.retried_transport + outcome.retried_transport;
  shared.retried_busy <- shared.retried_busy + outcome.retried_busy;
  shared.retried_timeout <- shared.retried_timeout + outcome.retried_timeout;
  if mismatch then shared.verify_mismatches <- shared.verify_mismatches + 1;
  (match outcome.response with
  | Ok (Protocol.Result { served = Protocol.Fresh; _ }) ->
      shared.solved_fresh <- shared.solved_fresh + 1
  | Ok (Protocol.Result { served = Protocol.Cached; _ }) ->
      shared.solved_cached <- shared.solved_cached + 1
  | Ok (Protocol.Degraded _) -> shared.degraded <- shared.degraded + 1
  | Ok Protocol.Timeout -> shared.timeouts <- shared.timeouts + 1
  | Ok Protocol.Busy -> shared.busy <- shared.busy + 1
  | Ok (Protocol.Error_frame _) -> shared.errors <- shared.errors + 1
  | Ok
      ( Protocol.Pong | Protocol.Bye | Protocol.Toobig
      | Protocol.Stats_frame _ | Protocol.Metrics_frame _
      | Protocol.Health_frame _ ) ->
      (* Not a SOLVE answer; treat an off-protocol reply as an error. *)
      shared.errors <- shared.errors + 1
  | Error _ -> shared.transport_failures <- shared.transport_failures + 1);
  Mutex.unlock shared.mutex

let worker session shared () =
  let rec loop () =
    match next_request shared with
    | None -> ()
    | Some frame ->
        let started = Unix.gettimeofday () in
        let outcome = Client.request_with_retry session frame in
        record shared frame (Unix.gettimeofday () -. started) outcome;
        (match outcome.Client.response with Error _ -> () | Ok _ -> loop ())
  in
  Fun.protect ~finally:(fun () -> Client.close_session session) loop

(* The shared quantile convention ({!Stats.quantile_rank}) — the same
   one the server's histograms estimate against, so client and server
   percentiles are comparable at any sample count. *)
let result_of ~wall_seconds ~latencies (shared : shared) =
  let completed = List.length latencies in
  let percentile p =
    match latencies with [] -> 0.0 | l -> Stats.quantile p l
  in
  {
    sent = shared.sent;
    solved_fresh = shared.solved_fresh;
    solved_cached = shared.solved_cached;
    degraded = shared.degraded;
    timeouts = shared.timeouts;
    errors = shared.errors;
    busy = shared.busy;
    transport_failures = shared.transport_failures;
    retried_transport = shared.retried_transport;
    retried_busy = shared.retried_busy;
    retried_timeout = shared.retried_timeout;
    verify_mismatches = shared.verify_mismatches;
    wall_seconds;
    throughput =
      (if wall_seconds > 0.0 then float_of_int completed /. wall_seconds
       else 0.0);
    p50 = percentile 0.5;
    p95 = percentile 0.95;
    p99 = percentile 0.99;
  }

let merge_results ~wall_seconds ~all_latencies (shards : result array) =
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 shards in
  let completed = List.length all_latencies in
  let percentile p =
    match all_latencies with [] -> 0.0 | l -> Stats.quantile p l
  in
  {
    sent = sum (fun r -> r.sent);
    solved_fresh = sum (fun r -> r.solved_fresh);
    solved_cached = sum (fun r -> r.solved_cached);
    degraded = sum (fun r -> r.degraded);
    timeouts = sum (fun r -> r.timeouts);
    errors = sum (fun r -> r.errors);
    busy = sum (fun r -> r.busy);
    transport_failures = sum (fun r -> r.transport_failures);
    retried_transport = sum (fun r -> r.retried_transport);
    retried_busy = sum (fun r -> r.retried_busy);
    retried_timeout = sum (fun r -> r.retried_timeout);
    verify_mismatches = sum (fun r -> r.verify_mismatches);
    wall_seconds;
    throughput =
      (if wall_seconds > 0.0 then float_of_int completed /. wall_seconds
       else 0.0);
    p50 = percentile 0.5;
    p95 = percentile 0.95;
    p99 = percentile 0.99;
  }

type multi = { merged : result; by_endpoint : result array }

(* Endpoints drain their partitions concurrently: endpoint [e]'s
   workers only ever talk to [connects.(e)], so a shard's partition is
   served entirely by its own connections — the client-side mirror of
   the router's consistent-hash placement.  [merged] pools every
   latency sample (the cluster-level percentiles) and takes the overall
   wall clock, so its throughput is the aggregate the bench ladder
   compares across shard counts. *)
let run_multi ~connects ?route ?(connections = 4) ?policy ?(seed = 1L)
    ?(verify = false) requests =
  let endpoints = Array.length connects in
  if endpoints = 0 then invalid_arg "Loadgen.run_multi: no endpoints";
  let route =
    match route with
    | Some f -> f
    | None -> fun ~index:_ _ -> 0
  in
  let partitions = Array.make endpoints [] in
  Array.iteri
    (fun index frame ->
      let e = route ~index frame in
      if e < 0 || e >= endpoints then
        invalid_arg
          (Printf.sprintf
             "Loadgen.run_multi: route sent request %d to endpoint %d (have \
              %d)"
             index e endpoints);
      partitions.(e) <- frame :: partitions.(e))
    requests;
  let verify_store =
    if verify then
      Some { verify_mutex = Mutex.create (); pinned = Hashtbl.create 64 }
    else None
  in
  let shards =
    Array.map
      (fun part ->
        make_shared ?verify:verify_store (Array.of_list (List.rev part)))
      partitions
  in
  let started = Unix.gettimeofday () in
  let threads =
    List.concat
      (List.init endpoints (fun e ->
           let shared = shards.(e) in
           let n =
             Stdlib.max
               (if Array.length shared.requests > 0 then 1 else 0)
               (Stdlib.min connections (Array.length shared.requests))
           in
           List.init n (fun i ->
               (* One session per worker, each with its own jitter
                  stream. *)
               let session =
                 Client.session ?policy
                   ~seed:
                     (Int64.add seed
                        (Int64.of_int ((e * connections) + i)))
                   connects.(e)
               in
               Thread.create (worker session shared) ())))
  in
  List.iter Thread.join threads;
  let wall_seconds = Unix.gettimeofday () -. started in
  let by_endpoint =
    Array.map
      (fun shared ->
        result_of ~wall_seconds ~latencies:shared.latencies shared)
      shards
  in
  let all_latencies =
    Array.fold_left (fun acc s -> List.rev_append s.latencies acc) [] shards
  in
  { merged = merge_results ~wall_seconds ~all_latencies by_endpoint; by_endpoint }

let run ~connect ?(connections = 4) ?policy ?(seed = 1L) requests =
  let connections =
    Stdlib.max 1 (Stdlib.min connections (Array.length requests))
  in
  (run_multi ~connects:[| connect |] ~connections ?policy ~seed requests)
    .merged

let render (r : result) =
  Printf.sprintf
    "requests    : %d (fresh %d, cached %d, degraded %d, timeout %d, error \
     %d, busy %d, transport %d)\n\
     retries     : %d (busy %d, timeout %d, transport %d)\n\
     wall        : %.3f s\n\
     throughput  : %.1f req/s\n\
     latency p50 : %.3f ms\n\
     latency p95 : %.3f ms\n\
     latency p99 : %.3f ms\n"
    r.sent r.solved_fresh r.solved_cached r.degraded r.timeouts r.errors
    r.busy r.transport_failures
    (r.retried_busy + r.retried_timeout + r.retried_transport)
    r.retried_busy r.retried_timeout r.retried_transport r.wall_seconds
    r.throughput (r.p50 *. 1e3) (r.p95 *. 1e3) (r.p99 *. 1e3)
