module Suite = Rip_workload.Suite
module Netgen = Rip_workload.Netgen
module Geometry = Rip_net.Geometry
module Rip = Rip_core.Rip
module Stats = Rip_numerics.Stats

let workload ?(seed = Suite.default_seed) ?(distinct_nets = 8) ?(slack = 1.3)
    ?deadline_ms ~requests process =
  if distinct_nets < 1 then invalid_arg "Loadgen.workload: distinct_nets < 1";
  if requests < 0 then invalid_arg "Loadgen.workload: negative requests";
  let rng = Rip_numerics.Prng.create seed in
  let frames =
    Array.init distinct_nets (fun i ->
        let net = Netgen.generate rng ~index:(i + 1) in
        let geometry = Geometry.of_net net in
        let budget = slack *. Rip.tau_min process geometry in
        Protocol.Solve { budget; deadline_ms; net })
  in
  Array.init requests (fun i -> frames.(i mod distinct_nets))

type result = {
  sent : int;
  solved_fresh : int;
  solved_cached : int;
  degraded : int;
  timeouts : int;
  errors : int;
  busy : int;
  transport_failures : int;
  retried_transport : int;
  retried_busy : int;
  retried_timeout : int;
  wall_seconds : float;
  throughput : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

(* One worker: take the next undrained request, send it through its retry
   session, time the full (retries included) round trip, classify the
   final response; stop on workload exhaustion or a final transport
   error. *)
type shared = {
  requests : Protocol.request array;
  mutex : Mutex.t;
  mutable cursor : int;
  mutable sent : int;
  mutable solved_fresh : int;
  mutable solved_cached : int;
  mutable degraded : int;
  mutable timeouts : int;
  mutable errors : int;
  mutable busy : int;
  mutable transport_failures : int;
  mutable retried_transport : int;
  mutable retried_busy : int;
  mutable retried_timeout : int;
  mutable latencies : float list;
}

let next_request shared =
  Mutex.lock shared.mutex;
  let index = shared.cursor in
  let frame =
    if index < Array.length shared.requests then begin
      shared.cursor <- index + 1;
      shared.sent <- shared.sent + 1;
      Some shared.requests.(index)
    end
    else None
  in
  Mutex.unlock shared.mutex;
  frame

let record shared latency (outcome : Client.outcome) =
  Mutex.lock shared.mutex;
  shared.latencies <- latency :: shared.latencies;
  shared.retried_transport <-
    shared.retried_transport + outcome.retried_transport;
  shared.retried_busy <- shared.retried_busy + outcome.retried_busy;
  shared.retried_timeout <- shared.retried_timeout + outcome.retried_timeout;
  (match outcome.response with
  | Ok (Protocol.Result { served = Protocol.Fresh; _ }) ->
      shared.solved_fresh <- shared.solved_fresh + 1
  | Ok (Protocol.Result { served = Protocol.Cached; _ }) ->
      shared.solved_cached <- shared.solved_cached + 1
  | Ok (Protocol.Degraded _) -> shared.degraded <- shared.degraded + 1
  | Ok Protocol.Timeout -> shared.timeouts <- shared.timeouts + 1
  | Ok Protocol.Busy -> shared.busy <- shared.busy + 1
  | Ok (Protocol.Error_frame _) -> shared.errors <- shared.errors + 1
  | Ok
      ( Protocol.Pong | Protocol.Bye | Protocol.Toobig
      | Protocol.Stats_frame _ | Protocol.Metrics_frame _ ) ->
      (* Not a SOLVE answer; treat an off-protocol reply as an error. *)
      shared.errors <- shared.errors + 1
  | Error _ -> shared.transport_failures <- shared.transport_failures + 1);
  Mutex.unlock shared.mutex

let worker session shared () =
  let rec loop () =
    match next_request shared with
    | None -> ()
    | Some frame ->
        let started = Unix.gettimeofday () in
        let outcome = Client.request_with_retry session frame in
        record shared (Unix.gettimeofday () -. started) outcome;
        (match outcome.Client.response with Error _ -> () | Ok _ -> loop ())
  in
  Fun.protect ~finally:(fun () -> Client.close_session session) loop

let run ~connect ?(connections = 4) ?policy ?(seed = 1L) requests =
  let connections =
    Stdlib.max 1 (Stdlib.min connections (Array.length requests))
  in
  let shared =
    {
      requests;
      mutex = Mutex.create ();
      cursor = 0;
      sent = 0;
      solved_fresh = 0;
      solved_cached = 0;
      degraded = 0;
      timeouts = 0;
      errors = 0;
      busy = 0;
      transport_failures = 0;
      retried_transport = 0;
      retried_busy = 0;
      retried_timeout = 0;
      latencies = [];
    }
  in
  let started = Unix.gettimeofday () in
  let threads =
    List.init connections (fun i ->
        (* One session per worker, each with its own jitter stream. *)
        let session =
          Client.session ?policy ~seed:(Int64.add seed (Int64.of_int i))
            connect
        in
        Thread.create (worker session shared) ())
  in
  List.iter Thread.join threads;
  let wall_seconds = Unix.gettimeofday () -. started in
  let completed = List.length shared.latencies in
  (* The shared quantile convention ({!Stats.quantile_rank}) — the same
     one the server's histograms estimate against, so client and server
     percentiles are comparable at any sample count. *)
  let percentile p =
    match shared.latencies with
    | [] -> 0.0
    | latencies -> Stats.quantile p latencies
  in
  {
    sent = shared.sent;
    solved_fresh = shared.solved_fresh;
    solved_cached = shared.solved_cached;
    degraded = shared.degraded;
    timeouts = shared.timeouts;
    errors = shared.errors;
    busy = shared.busy;
    transport_failures = shared.transport_failures;
    retried_transport = shared.retried_transport;
    retried_busy = shared.retried_busy;
    retried_timeout = shared.retried_timeout;
    wall_seconds;
    throughput =
      (if wall_seconds > 0.0 then float_of_int completed /. wall_seconds
       else 0.0);
    p50 = percentile 0.5;
    p95 = percentile 0.95;
    p99 = percentile 0.99;
  }

let render (r : result) =
  Printf.sprintf
    "requests    : %d (fresh %d, cached %d, degraded %d, timeout %d, error \
     %d, busy %d, transport %d)\n\
     retries     : %d (busy %d, timeout %d, transport %d)\n\
     wall        : %.3f s\n\
     throughput  : %.1f req/s\n\
     latency p50 : %.3f ms\n\
     latency p95 : %.3f ms\n\
     latency p99 : %.3f ms\n"
    r.sent r.solved_fresh r.solved_cached r.degraded r.timeouts r.errors
    r.busy r.transport_failures
    (r.retried_busy + r.retried_timeout + r.retried_transport)
    r.retried_busy r.retried_timeout r.retried_transport r.wall_seconds
    r.throughput (r.p50 *. 1e3) (r.p95 *. 1e3) (r.p99 *. 1e3)
