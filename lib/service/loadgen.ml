module Suite = Rip_workload.Suite
module Netgen = Rip_workload.Netgen
module Geometry = Rip_net.Geometry
module Rip = Rip_core.Rip
module Stats = Rip_numerics.Stats

let workload ?(seed = Suite.default_seed) ?(distinct_nets = 8) ?(slack = 1.3)
    ~requests process =
  if distinct_nets < 1 then invalid_arg "Loadgen.workload: distinct_nets < 1";
  if requests < 0 then invalid_arg "Loadgen.workload: negative requests";
  let rng = Rip_numerics.Prng.create seed in
  let frames =
    Array.init distinct_nets (fun i ->
        let net = Netgen.generate rng ~index:(i + 1) in
        let geometry = Geometry.of_net net in
        let budget = slack *. Rip.tau_min process geometry in
        Protocol.Solve { budget; net })
  in
  Array.init requests (fun i -> frames.(i mod distinct_nets))

type result = {
  sent : int;
  solved_fresh : int;
  solved_cached : int;
  errors : int;
  busy : int;
  transport_failures : int;
  wall_seconds : float;
  throughput : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

(* One worker: take the next undrained request, send it, time the round
   trip, classify the response; stop on workload exhaustion or the first
   transport error. *)
type shared = {
  requests : Protocol.request array;
  mutex : Mutex.t;
  mutable cursor : int;
  mutable sent : int;
  mutable solved_fresh : int;
  mutable solved_cached : int;
  mutable errors : int;
  mutable busy : int;
  mutable transport_failures : int;
  mutable latencies : float list;
}

let next_request shared =
  Mutex.lock shared.mutex;
  let index = shared.cursor in
  let frame =
    if index < Array.length shared.requests then begin
      shared.cursor <- index + 1;
      shared.sent <- shared.sent + 1;
      Some shared.requests.(index)
    end
    else None
  in
  Mutex.unlock shared.mutex;
  frame

let record shared latency outcome =
  Mutex.lock shared.mutex;
  shared.latencies <- latency :: shared.latencies;
  (match outcome with
  | Ok (Protocol.Result { served = Protocol.Fresh; _ }) ->
      shared.solved_fresh <- shared.solved_fresh + 1
  | Ok (Protocol.Result { served = Protocol.Cached; _ }) ->
      shared.solved_cached <- shared.solved_cached + 1
  | Ok Protocol.Busy -> shared.busy <- shared.busy + 1
  | Ok (Protocol.Error_frame _) -> shared.errors <- shared.errors + 1
  | Ok (Protocol.Pong | Protocol.Bye | Protocol.Stats_frame _) ->
      (* Not a SOLVE answer; treat an off-protocol reply as an error. *)
      shared.errors <- shared.errors + 1
  | Error _ -> shared.transport_failures <- shared.transport_failures + 1);
  Mutex.unlock shared.mutex

let worker connect shared () =
  match connect () with
  | exception _ ->
      Mutex.lock shared.mutex;
      shared.transport_failures <- shared.transport_failures + 1;
      Mutex.unlock shared.mutex
  | client ->
      let rec loop () =
        match next_request shared with
        | None -> ()
        | Some frame ->
            let started = Unix.gettimeofday () in
            let outcome = Client.request client frame in
            record shared (Unix.gettimeofday () -. started) outcome;
            (match outcome with Error _ -> () | Ok _ -> loop ())
      in
      Fun.protect ~finally:(fun () -> Client.close client) loop

let run ~connect ?(connections = 4) requests =
  let connections =
    Stdlib.max 1 (Stdlib.min connections (Array.length requests))
  in
  let shared =
    {
      requests;
      mutex = Mutex.create ();
      cursor = 0;
      sent = 0;
      solved_fresh = 0;
      solved_cached = 0;
      errors = 0;
      busy = 0;
      transport_failures = 0;
      latencies = [];
    }
  in
  let started = Unix.gettimeofday () in
  let threads =
    List.init connections (fun _ -> Thread.create (worker connect shared) ())
  in
  List.iter Thread.join threads;
  let wall_seconds = Unix.gettimeofday () -. started in
  let completed = List.length shared.latencies in
  let percentile p =
    match shared.latencies with
    | [] -> 0.0
    | latencies -> Stats.percentile p latencies
  in
  {
    sent = shared.sent;
    solved_fresh = shared.solved_fresh;
    solved_cached = shared.solved_cached;
    errors = shared.errors;
    busy = shared.busy;
    transport_failures = shared.transport_failures;
    wall_seconds;
    throughput =
      (if wall_seconds > 0.0 then float_of_int completed /. wall_seconds
       else 0.0);
    p50 = percentile 0.5;
    p95 = percentile 0.95;
    p99 = percentile 0.99;
  }

let render (r : result) =
  Printf.sprintf
    "requests    : %d (fresh %d, cached %d, error %d, busy %d, transport %d)\n\
     wall        : %.3f s\n\
     throughput  : %.1f req/s\n\
     latency p50 : %.3f ms\n\
     latency p95 : %.3f ms\n\
     latency p99 : %.3f ms\n"
    r.sent r.solved_fresh r.solved_cached r.errors r.busy r.transport_failures
    r.wall_seconds r.throughput (r.p50 *. 1e3) (r.p95 *. 1e3) (r.p99 *. 1e3)
