(** Byte-level socket I/O for the service: exact-length writes and a
    bounded line reader.

    Both sides of the protocol write whole frames with {!send}, which
    loops over partial [write]s and retries [EINTR] — a frame either
    reaches the kernel completely or the write raises.  The server reads
    through a {!reader} that enforces a per-frame byte budget, the
    defence against a peer streaming an endless line or never sending
    [END]. *)

exception Frame_too_big
(** The current frame exceeded the reader's [max_frame_bytes] budget
    (including buffered bytes of an unterminated line).  The connection's
    framing is unrecoverable after this; answer [TOOBIG] and close. *)

val write_all : Unix.file_descr -> string -> int -> int -> unit
(** [write_all fd s off len]: write exactly [len] bytes, looping over
    short writes and [EINTR].  Raises the underlying [Unix_error] on any
    other failure (e.g. [EPIPE]). *)

val send : Unix.file_descr -> string -> unit
(** [write_all fd s 0 (String.length s)]. *)

type reader
(** A buffered line reader over a file descriptor with a per-frame byte
    budget.  Not thread-safe; one reader per connection thread. *)

val default_max_frame_bytes : int
(** 1 MiB — generous for any realistic net body (the Section-6 nets are
    a few hundred bytes). *)

val create : ?max_frame_bytes:int -> Unix.file_descr -> reader
(** @raise Invalid_argument when [max_frame_bytes < 1]. *)

val new_frame : reader -> unit
(** Reset the frame byte budget; call before reading each request. *)

val reader : reader -> Protocol.reader
(** The {!Protocol.reader} view: yields the next line ([\r] stripped,
    terminator excluded) or [None] at end of stream.
    @raise Frame_too_big when the frame budget is exceeded.
    @raise Unix.Unix_error on transport failures other than [EINTR]. *)
