(* A classic intrusive doubly-linked LRU list over a hashtable: [head] is
   the most recently used entry, [tail] the eviction candidate.  All
   operations run under [mutex]; list surgery is O(1). *)

type 'a node = {
  node_key : string;
  mutable value : 'a;
  mutable digest : string option;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cache_capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutex : Mutex.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable self_heals : int;
  mutable replayed : int;
  (* Eviction feedback (journal compaction hook).  Set once before
     serving starts; invoked strictly *after* the mutex is released —
     the callback may do file I/O, which must never run under the cache
     lock.  Atomic because it is read from connection threads without
     taking the mutex. *)
  on_evict : (string -> unit) option Atomic.t;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Solve_cache.create: negative capacity";
  {
    cache_capacity = capacity;
    table = Hashtbl.create (Stdlib.max 16 capacity);
    mutex = Mutex.create ();
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    self_heals = 0;
    replayed = 0;
    on_evict = Atomic.make None;
  }

let set_on_evict t callback = Atomic.set t.on_evict (Some callback)

let notify_evicted t keys =
  match (Atomic.get t.on_evict, keys) with
  | None, _ | _, [] -> ()
  | Some f, keys -> List.iter f (List.rev keys)

let capacity t = t.cache_capacity

let size t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

let key ~process ~net ~budget =
  let repeater = process.Rip_tech.Process.repeater in
  let power = process.Rip_tech.Process.power in
  Printf.sprintf "%s|%.17g,%.17g,%.17g|%.17g,%.17g,%.17g,%.17g|%s|%.17g"
    process.Rip_tech.Process.name repeater.Rip_tech.Repeater_model.rs
    repeater.Rip_tech.Repeater_model.co repeater.Rip_tech.Repeater_model.cp
    power.Rip_tech.Power_model.vdd power.Rip_tech.Power_model.frequency
    power.Rip_tech.Power_model.activity
    power.Rip_tech.Power_model.leakage_per_unit_width
    (Rip_net.Net.canonical_digest net)
    budget

(* Callers hold the mutex for everything below. *)

let unlink t node =
  (match node.prev with
  | Some prev -> prev.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some next -> next.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with
  | Some head -> head.prev <- Some node
  | None -> t.tail <- Some node);
  t.head <- Some node

let evict_lru t =
  match t.tail with
  | None -> None
  | Some lru ->
      unlink t lru;
      Hashtbl.remove t.table lru.node_key;
      t.evictions <- t.evictions + 1;
      Some lru.node_key

(* Verification happens on *read*: a hit whose stored digest disagrees
   with the digest recomputed from the stored value is treated as
   corruption, dropped from the cache (self-heal) and reported as a
   miss, so the caller re-solves and the bad bytes can never be served.
   [digest_of] runs under the mutex; it is a cheap MD5 of the rendered
   body, far below a solve. *)

let find_verified t k ~digest_of =
  Mutex.lock t.mutex;
  let dropped = ref [] in
  let result =
    match Hashtbl.find_opt t.table k with
    | Some node -> (
        let fresh = digest_of node.value in
        match node.digest with
        | Some stored when not (String.equal stored fresh) ->
            unlink t node;
            Hashtbl.remove t.table k;
            t.self_heals <- t.self_heals + 1;
            t.misses <- t.misses + 1;
            dropped := [ k ];
            None
        | _ ->
            t.hits <- t.hits + 1;
            unlink t node;
            push_front t node;
            Some node.value)
    | None ->
        t.misses <- t.misses + 1;
        None
  in
  Mutex.unlock t.mutex;
  notify_evicted t !dropped;
  result

let find t k = find_verified t k ~digest_of:(fun _ -> "")

let add_digested ?(replay = false) t k value digest =
  if t.cache_capacity > 0 then begin
    Mutex.lock t.mutex;
    let dropped = ref [] in
    (match Hashtbl.find_opt t.table k with
    | Some node ->
        node.value <- value;
        node.digest <- digest;
        unlink t node;
        push_front t node
    | None ->
        if Hashtbl.length t.table >= t.cache_capacity then
          Option.iter (fun key -> dropped := key :: !dropped) (evict_lru t);
        let node = { node_key = k; value; digest; prev = None; next = None } in
        Hashtbl.replace t.table k node;
        push_front t node);
    if replay then t.replayed <- t.replayed + 1;
    Mutex.unlock t.mutex;
    notify_evicted t !dropped
  end

let add t k value = add_digested t k value None

let add_verified t k value ~digest = add_digested t k value (Some digest)

let add_replayed t k value ~digest =
  add_digested ~replay:true t k value (Some digest)

(* Test/fault hook: flip the stored digest of [k] (when present and
   digest-carrying) so the next verified read detects corruption. *)
let corrupt t k =
  Mutex.lock t.mutex;
  let did =
    match Hashtbl.find_opt t.table k with
    | Some ({ digest = Some d; _ } as node) ->
        node.digest <- Some (d ^ "!corrupt");
        true
    | Some { digest = None; _ } | None -> false
  in
  Mutex.unlock t.mutex;
  did

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  self_heals : int;
  replayed : int;
  size : int;
  capacity : int;
}

let stats t =
  Mutex.lock t.mutex;
  let snapshot =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      self_heals = t.self_heals;
      replayed = t.replayed;
      size = Hashtbl.length t.table;
      capacity = t.cache_capacity;
    }
  in
  Mutex.unlock t.mutex;
  snapshot
