module Engine = Rip_engine.Engine
module Cancel = Rip_engine.Cancel
module Trace = Rip_obs.Trace
module Wide_event = Rip_obs.Wide_event
module Cpu_clock = Rip_numerics.Cpu_clock
module Rip = Rip_core.Rip
module Net = Rip_net.Net
module Zone = Rip_net.Zone
module Solution = Rip_elmore.Solution

type config = {
  shard_id : string;
  jobs : int option;
  queue_depth : int;
  high_water : int;
  cache_capacity : int;
  max_frame_bytes : int;
  solver : Rip_core.Config.t option;
  faults : Faults.t option;
  tracer : Trace.t option;
  spool : Wide_event.spool option;
  journal_dir : string option;
}

let default_config =
  {
    shard_id = "standalone";
    jobs = None;
    queue_depth = 64;
    high_water = 48;
    cache_capacity = 512;
    max_frame_bytes = Wire.default_max_frame_bytes;
    solver = None;
    faults = None;
    tracer = None;
    spool = None;
    journal_dir = None;
  }

(* --- Deadline watchdog ----------------------------------------------------

   One thread per server owns every armed deadline.  It sleeps on a
   condition while nothing is armed and otherwise polls on a 2 ms tick
   (OCaml's [Condition] has no timed wait), firing each entry's
   cancellation token once the monotonic clock passes its deadline.  The
   solve itself observes the token at DP-column / REFINE-iteration
   granularity, so cancellation latency is tick + poll granularity, both
   small against any meaningful deadline. *)

module Watchdog = struct
  type entry = { id : int; fires_at : float; token : Cancel.t }

  type t = {
    mutex : Mutex.t;
    wake : Condition.t;
    mutable armed : entry list;
    mutable stopped : bool;
    mutable next_id : int;
    mutable thread : Thread.t option;
  }

  let tick_seconds = 0.002

  let rec loop w =
    Mutex.lock w.mutex;
    while
      (match w.armed with [] -> true | _ :: _ -> false) && not w.stopped
    do
      Condition.wait w.wake w.mutex
    done;
    let stop = w.stopped in
    let now = Cpu_clock.monotonic_seconds () in
    let expired, live =
      List.partition (fun e -> e.fires_at <= now) w.armed
    in
    w.armed <- live;
    Mutex.unlock w.mutex;
    List.iter (fun e -> Cancel.cancel e.token) expired;
    if not stop then begin
      Thread.delay tick_seconds;
      loop w
    end

  let create () =
    let w =
      {
        mutex = Mutex.create ();
        wake = Condition.create ();
        armed = [];
        stopped = false;
        next_id = 0;
        thread = None;
      }
    in
    w.thread <- Some (Thread.create loop w);
    w

  let arm w ~fires_at token =
    Mutex.lock w.mutex;
    let id = w.next_id in
    w.next_id <- id + 1;
    w.armed <- { id; fires_at; token } :: w.armed;
    Condition.signal w.wake;
    Mutex.unlock w.mutex;
    id

  let disarm w id =
    Mutex.lock w.mutex;
    w.armed <- List.filter (fun e -> e.id <> id) w.armed;
    Mutex.unlock w.mutex

  let stop w =
    Mutex.lock w.mutex;
    w.stopped <- true;
    let thread = w.thread in
    w.thread <- None;
    Condition.signal w.wake;
    Mutex.unlock w.mutex;
    Option.iter Thread.join thread
end

type t = {
  process : Rip_tech.Process.t;
  config : config;
  handle : Engine.handle;
  cache : Protocol.solution Solve_cache.t;
  metrics : Metrics.t;
  watchdog : Watchdog.t;
  faults : Faults.t;
  journal : Journal.t option;
  journal_recovery : Journal.recovery option;
  mutex : Mutex.t;  (* guards in_flight, stopping, listener, threads *)
  mutable in_flight : int;
  mutable stopping : bool;
  mutable listener : Unix.file_descr option;
  mutable connection_threads : Thread.t list;
}

(* --- Journal persistence ---------------------------------------------------

   A journaled server appends every verified cache insert as
   [digest ^ body]: the MD5 the cache verifies reads against, then the
   rendered RESULT body those 16 digest bytes commit to.  Replay at boot
   recomputes the digest over the persisted body and re-parses it
   through the RESULT grammar; a record failing either check is rejected
   before anything reaches the cache — the same verify-before-serve
   contract as the live read path, so a restart admits zero
   digest-mismatched entries. *)

let digest_len = 16

let replay_solution value =
  if String.length value <= digest_len then None
  else
    let digest = String.sub value 0 digest_len in
    let body = String.sub value digest_len (String.length value - digest_len) in
    if not (String.equal (Digest.string body) digest) then None
    else
      let lines =
        (* [solution_body] terminates every line, so drop the final
           empty split. *)
        match List.rev (String.split_on_char '\n' body) with
        | "" :: rest -> List.rev rest
        | all -> List.rev all
      in
      match Protocol.parse_solution_body lines with
      | Ok solution -> Some (solution, digest)
      | Error _ -> None

let replay_journal cache journal entries =
  List.iter
    (fun (key, value) ->
      match replay_solution value with
      | Some (solution, digest) ->
          Solve_cache.add_replayed cache key solution ~digest
      | None ->
          (* Framing survived but the payload does not verify: purge the
             record from the journal's live set so compaction drops the
             bytes for good. *)
          Journal.note_evicted journal ~key)
    entries

let create ?(config = default_config) process =
  if config.queue_depth < 1 then
    invalid_arg
      (Printf.sprintf "Server.create: queue_depth %d must be at least 1"
         config.queue_depth);
  if config.high_water < 1 then
    invalid_arg
      (Printf.sprintf "Server.create: high_water %d must be at least 1"
         config.high_water);
  if config.high_water > config.queue_depth then
    invalid_arg
      (Printf.sprintf
         "Server.create: high_water %d must not exceed queue_depth %d"
         config.high_water config.queue_depth);
  if not (Protocol.valid_shard_id config.shard_id) then
    invalid_arg
      (Printf.sprintf
         "Server.create: shard_id %S must be one non-empty token over \
          [A-Za-z0-9._-]"
         config.shard_id);
  if config.max_frame_bytes < 1 then
    invalid_arg "Server.create: max_frame_bytes must be positive";
  let faults =
    match config.faults with Some f -> f | None -> Faults.disabled ()
  in
  let journal, journal_recovery =
    match config.journal_dir with
    | None -> (None, None)
    | Some dir -> (
        match Journal.open_ ~faults (Journal.default_config ~dir) with
        | Ok (journal, recovery) -> (Some journal, Some recovery)
        | Error message -> invalid_arg ("Server.create: " ^ message))
  in
  let cache = Solve_cache.create ~capacity:config.cache_capacity in
  (match journal with
  | Some journal ->
      (* Eviction feedback first, so even replay-time evictions (a
         journal holding more live records than the cache's capacity)
         reach the compaction ledger. *)
      Solve_cache.set_on_evict cache (fun key ->
          Journal.note_evicted journal ~key);
      Option.iter
        (fun (recovery : Journal.recovery) ->
          replay_journal cache journal recovery.Journal.entries)
        journal_recovery
  | None -> ());
  {
    process;
    config;
    handle = Engine.create_handle ?jobs:config.jobs ();
    cache;
    metrics =
      Metrics.create
        ~cache_stats:(fun () -> Solve_cache.stats cache)
        ?journal_stats:
          (Option.map (fun journal () -> Journal.stats journal) journal)
        ();
    watchdog = Watchdog.create ();
    faults;
    journal;
    journal_recovery;
    mutex = Mutex.create ();
    in_flight = 0;
    stopping = false;
    listener = None;
    connection_threads = [];
  }

let stats t =
  Metrics.snapshot t.metrics ~shard_id:t.config.shard_id
    ~cache:(Solve_cache.stats t.cache)
    ?journal:(Option.map Journal.stats t.journal)
    ()

let journal_recovery t = t.journal_recovery
let journal_flush t = Option.iter Journal.flush t.journal

let health t =
  Mutex.lock t.mutex;
  let in_flight = t.in_flight in
  Mutex.unlock t.mutex;
  {
    Protocol.health_shard_id = t.config.shard_id;
    health_in_flight = in_flight;
    health_queue_depth = t.config.queue_depth;
    health_high_water = t.config.high_water;
  }

let cache_key t ~net ~budget = Solve_cache.key ~process:t.process ~net ~budget
let corrupt_cache_entry t key = Solve_cache.corrupt t.cache key

let stopping t =
  Mutex.lock t.mutex;
  let s = t.stopping in
  Mutex.unlock t.mutex;
  s

let request_shutdown t =
  Mutex.lock t.mutex;
  let listener = t.listener in
  t.stopping <- true;
  t.listener <- None;
  Mutex.unlock t.mutex;
  (* [shutdown], not [close]: closing an fd another thread is blocked in
     [accept] on does not wake it (the in-kernel wait holds a reference),
     whereas shutting the socket down forces the accept to return.  The
     accept loop still owns the fd and closes it once it exits. *)
  match listener with
  | Some fd -> (
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  | None -> ()

let shutdown t =
  request_shutdown t;
  Engine.shutdown_handle t.handle;
  Watchdog.stop t.watchdog;
  (* Clean shutdown seals the journal with its footer, so the next boot
     replays without the torn-tail repair pass. *)
  Option.iter Journal.close t.journal

(* --- Admission control ----------------------------------------------------

   A solve slot is held from submission to response.  BUSY when
   [queue_depth] solves are already in flight (or the server is draining
   for shutdown) — the bounded queue that keeps a request storm from
   growing the heap without limit.  Below BUSY sits the high-water mark:
   an admitted solve that finds the queue already deeper than
   [high_water] skips the full DP and answers from the analytic fallback
   tier, shedding load gracefully instead of letting every queued
   request wait behind the pool. *)

type admission = Rejected | Admitted of int  (* in-flight after admission *)

let try_acquire_slot t =
  Mutex.lock t.mutex;
  let admitted = (not t.stopping) && t.in_flight < t.config.queue_depth in
  if admitted then t.in_flight <- t.in_flight + 1;
  let depth = t.in_flight in
  Mutex.unlock t.mutex;
  if admitted then Metrics.set_in_flight t.metrics depth;
  if admitted then Admitted depth else Rejected

let release_slot t =
  Mutex.lock t.mutex;
  t.in_flight <- t.in_flight - 1;
  let depth = t.in_flight in
  Mutex.unlock t.mutex;
  Metrics.set_in_flight t.metrics depth

(* --- Solutions ------------------------------------------------------------ *)

let solution_of_report (report : Rip.report) =
  {
    Protocol.repeaters =
      List.map
        (fun (r : Rip_elmore.Solution.repeater) -> (r.position, r.width))
        (Rip_elmore.Solution.repeaters report.solution);
    total_width = report.total_width;
    delay = report.delay;
    power_watts = report.power_watts;
  }

let error_response error =
  let kind =
    match error with
    | Rip.Infeasible_budget _ -> Protocol.Infeasible_budget
    | Rip.Invalid_net _ -> Protocol.Invalid_net
    | Rip.Internal _ -> Protocol.Internal_error
  in
  Protocol.Error_frame
    { kind; message = Protocol.one_line (Rip.error_to_string error) }

let solution_digest solution = Digest.string (Protocol.solution_body solution)

(* --- The analytic fallback tier (see {!Fallback}) ------------------------- *)

let degraded_response t ~budget ~net reason =
  Metrics.incr_degraded t.metrics;
  Protocol.Degraded
    {
      reason;
      solution =
        Fallback.solution ~process:t.process ?solver:t.config.solver ~budget
          ~net ();
    }

(* --- Solving -------------------------------------------------------------- *)

(* A fault-injected solve delay that still honours the deadline: sleep in
   watchdog-tick chunks, aborting the moment the token fires. *)
let interruptible_delay token seconds =
  let finish = Cpu_clock.monotonic_seconds () +. seconds in
  let rec wait () =
    if Cancel.cancelled token then raise Cancel.Cancelled;
    let remaining = finish -. Cpu_clock.monotonic_seconds () in
    if remaining > 0.0 then begin
      Thread.delay (Float.min remaining Watchdog.tick_seconds);
      wait ()
    end
  in
  wait ()

type solve_outcome =
  | Solved of Rip.report
  | Failed of Rip.error
  | Cancelled_mid_solve
  | Worker_lost_mid_solve

(* Probes are always wired: each event is one or two atomic counter
   bumps, cheap enough to keep on for every solve.  Both DP backends
   report through the same [Column] event, so the counters are
   backend-independent. *)
let solver_probe t ~pruned = function
  | Rip.Dp (Rip_dp.Power_dp.Column { collected; kept; _ }) ->
      Metrics.incr_dp_columns t.metrics;
      Metrics.add_dp_labels_pruned t.metrics (collected - kept);
      ignore (Atomic.fetch_and_add pruned (collected - kept))
  | Rip.Refine (Rip_refine.Refine.Iteration _) ->
      Metrics.incr_refine_iterations t.metrics
  | Rip.Refine (Rip_refine.Refine.Newton _) ->
      Metrics.incr_newton_iterations t.metrics

let run_full_solve t ~budget ~net ~key ~trace ~pruned token =
  let tracer = t.config.tracer in
  let scope = match tracer with Some tr -> Trace.scope tr | None -> "" in
  let span_args name =
    ("span_id", Trace.span_id ~scope ~digest:key name)
    :: (match trace with Some c -> Trace.context_args c | None -> [])
  in
  let enqueued = Cpu_clock.monotonic_seconds () in
  (* Started on the connection thread, ended by the worker the moment it
     picks the job up: the span is exactly the queue wait.  The
     connection thread blocks in [map_on_handle] meanwhile, so the
     cross-thread buffer write cannot race its owner. *)
  let end_queue =
    Trace.begin_opt tracer ~cat:"service" ~args:(span_args "queue") "queue"
  in
  let phase =
    Option.map
      (fun tr name ->
        let full = "solve:" ^ name in
        Trace.begin_span tr ~cat:"solver" ~args:(span_args full) full)
      tracer
  in
  Metrics.add_queue_depth t.metrics 1;
  Fun.protect
    ~finally:(fun () -> Metrics.add_queue_depth t.metrics (-1))
    (fun () ->
      let outcomes =
        Engine.map_on_handle t.handle
          (fun () ->
            end_queue ();
            let queue_seconds = Cpu_clock.monotonic_seconds () -. enqueued in
            let cpu_started = Cpu_clock.thread_seconds () in
            let outcome =
              Trace.span tracer ~cat:"service" ~args:(span_args "solve")
                "solve"
                (fun () ->
                  try
                    (match Faults.solve_delay t.faults with
                    | Some seconds -> interruptible_delay token seconds
                    | None -> ());
                    if Faults.kill_worker t.faults then
                      raise Faults.Worker_killed;
                    match
                      Rip.solve ?config:t.config.solver
                        ~hooks:
                          (Rip_core.Hooks.make ~cancel:(Cancel.hook token)
                             ~probe:(solver_probe t ~pruned) ?phase ())
                        { Rip.process = t.process; net; geometry = None;
                          budget }
                    with
                    | Ok report -> Solved report
                    | Error error -> Failed error
                  with
                  | Cancel.Cancelled -> Cancelled_mid_solve
                  | Faults.Worker_killed -> Worker_lost_mid_solve
                  | exn -> Failed (Rip.Internal (Printexc.to_string exn)))
            in
            (outcome, queue_seconds,
             Cpu_clock.thread_seconds () -. cpu_started))
          [| () |]
      in
      outcomes.(0))

let serve_admitted t ~budget ~deadline_ms ~net ~key ~trace ~pruned ~queue_wait
    ~admitted_at =
  let token = Cancel.create () in
  let watchdog_id =
    Option.map
      (fun ms ->
        Watchdog.arm t.watchdog
          ~fires_at:(admitted_at +. (ms /. 1000.0))
          token)
      deadline_ms
  in
  Fun.protect
    ~finally:(fun () -> Option.iter (Watchdog.disarm t.watchdog) watchdog_id)
    (fun () ->
      let outcome, queue_seconds, cpu_seconds =
        run_full_solve t ~budget ~net ~key ~trace ~pruned token
      in
      queue_wait := queue_seconds;
      Metrics.add_solve_times t.metrics ~queue_seconds ~cpu_seconds;
      match outcome with
      | Solved report ->
          (* A solve that completed before the watchdog's cancellation was
             observed wins over the deadline: the work is already paid
             for and the full answer strictly dominates the fallback. *)
          let solution = solution_of_report report in
          let body = Protocol.solution_body solution in
          let digest = Digest.string body in
          Solve_cache.add_verified t.cache key solution ~digest;
          (* Journal the good bytes before any fault can corrupt the
             in-memory entry: durability must persist what was solved,
             not what a fault plan mangled. *)
          (match t.journal with
          | Some journal -> Journal.append journal ~key ~value:(digest ^ body)
          | None -> ());
          if Faults.corrupt_cache t.faults then
            ignore (Solve_cache.corrupt t.cache key);
          Metrics.incr_solved t.metrics;
          Protocol.Result { served = Fresh; solution }
      | Failed error ->
          Metrics.incr_errors t.metrics;
          error_response error
      | Cancelled_mid_solve ->
          degraded_response t ~budget ~net Protocol.Deadline_exceeded
      | Worker_lost_mid_solve ->
          degraded_response t ~budget ~net Protocol.Worker_lost)

let serve_solve t ~budget ~deadline_ms ~trace ~net =
  let started = Cpu_clock.monotonic_seconds () in
  Metrics.incr_requests t.metrics;
  let key = cache_key t ~net ~budget in
  let tracer = t.config.tracer in
  let scope = match tracer with Some tr -> Trace.scope tr | None -> "" in
  (* Span ids derive from the cache key and the tracer's scope — the
     same request traced twice produces the same ids (traces diff
     across runs) while two shards tracing the same digest never
     collide.  A propagated TRACE context rides along on every span, so
     a cross-process merge can parent these under the caller's span. *)
  let span name f =
    Trace.span tracer ~cat:"service"
      ~args:
        (("span_id", Trace.span_id ~scope ~digest:key name)
        :: (match trace with Some c -> Trace.context_args c | None -> []))
      name f
  in
  let pruned = Atomic.make 0 in
  let queue_wait = ref Float.nan in
  let response =
    (* The cache is consulted before the deadline: replaying a cached
       solution is effectively free, so a cached answer always beats a
       TIMEOUT, even for a deadline that expired in transit. *)
    match
      span "cache_lookup" (fun () ->
          Solve_cache.find_verified t.cache key ~digest_of:solution_digest)
    with
    | Some solution ->
        Metrics.incr_solved t.metrics;
        Protocol.Result { served = Cached; solution }
    | None -> (
        match deadline_ms with
        | Some ms when ms <= 0.0 ->
            (* Expired at admission: answer immediately, dispatch nothing. *)
            Metrics.incr_timeouts t.metrics;
            Protocol.Timeout
        | _ -> (
            match span "admission" (fun () -> try_acquire_slot t) with
            | Rejected ->
                Metrics.incr_busy t.metrics;
                Protocol.Busy
            | Admitted depth ->
                Fun.protect
                  ~finally:(fun () -> release_slot t)
                  (fun () ->
                    if depth > t.config.high_water then
                      degraded_response t ~budget ~net Protocol.Overload
                    else
                      let admitted_at = Cpu_clock.monotonic_seconds () in
                      serve_admitted t ~budget ~deadline_ms ~net ~key ~trace
                        ~pruned ~queue_wait ~admitted_at)))
  in
  (* Exactly one wide event per SOLVE: the canonical log line the tail
     sampler and offline [rip_trace query] aggregate over. *)
  (match t.config.spool with
  | None -> ()
  | Some spool ->
      let finished = Cpu_clock.monotonic_seconds () in
      let outcome, degrade_reason, cache =
        match response with
        | Protocol.Result { served = Cached; _ } -> ("cached", "", "hit")
        | Protocol.Result { served = Fresh; _ } -> ("fresh", "", "miss")
        | Protocol.Degraded { reason; _ } ->
            ("degraded", Protocol.degrade_reason_to_string reason, "miss")
        | Protocol.Timeout -> ("timeout", "", "miss")
        | Protocol.Busy -> ("busy", "", "miss")
        | _ -> ("error", "", "miss")
      in
      let solver =
        match t.config.solver with
        | Some c -> c
        | None -> Rip_core.Config.default
      in
      Wide_event.emit spool
        {
          Wide_event.empty with
          process =
            (if String.equal scope "" then t.config.shard_id else scope);
          trace_id =
            (match trace with Some c -> c.Trace.trace_id | None -> "");
          digest = Digest.to_hex (Digest.string key);
          shard = t.config.shard_id;
          outcome;
          degrade_reason;
          cache;
          dp_backend =
            Rip_dp.Power_dp.backend_name solver.Rip_core.Config.dp.backend;
          labels_pruned = Atomic.get pruned;
          queue_wait = !queue_wait;
          latency = finished -. started;
          deadline_slack =
            (match deadline_ms with
            | None -> Float.nan
            | Some ms -> started +. (ms /. 1000.0) -. finished);
        });
  response

(* --- Connection handling -------------------------------------------------- *)

exception Connection_dropped

let handle_connection t fd =
  let wire = Wire.create ~max_frame_bytes:t.config.max_frame_bytes fd in
  let reader = Wire.reader wire in
  let send response =
    let s = Protocol.print_response response in
    match Faults.drop_after t.faults with
    | Some n when n < String.length s ->
        (* Injected transport fault: cut the response short and hang up,
           leaving the client a partial frame to recover from. *)
        Wire.write_all fd s 0 n;
        raise Connection_dropped
    | _ -> Wire.send fd s
  in
  let rec serve () =
    Wire.new_frame wire;
    match Protocol.input_request reader with
    | Ok None -> ()
    | Error message ->
        (* Framing is lost after a malformed request; answer and hang up. *)
        send (Protocol.Error_frame { kind = Protocol.Protocol_error; message })
    | Ok (Some Protocol.Ping) ->
        send Protocol.Pong;
        serve ()
    | Ok (Some Protocol.Stats) ->
        send (Protocol.Stats_frame (stats t));
        serve ()
    | Ok (Some Protocol.Metrics) ->
        send (Protocol.Metrics_frame (Metrics.render t.metrics));
        serve ()
    | Ok (Some Protocol.Health) ->
        send (Protocol.Health_frame (health t));
        serve ()
    | Ok (Some Protocol.Shutdown) ->
        send Protocol.Bye;
        request_shutdown t
    | Ok (Some (Protocol.Solve { budget; deadline_ms; trace; net })) ->
        let response =
          try serve_solve t ~budget ~deadline_ms ~trace ~net
          with exn ->
            Protocol.Error_frame
              {
                kind = Protocol.Internal_error;
                message = Protocol.one_line (Printexc.to_string exn);
              }
        in
        send response;
        serve ()
  in
  (* Peer-induced I/O failures (reset, early close) end the connection,
     never the server.  An oversized frame gets the typed TOOBIG answer
     before the hang-up — framing is unrecoverable after it. *)
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try serve () with
      | Unix.Unix_error _ | Sys_error _ | End_of_file | Connection_dropped ->
          ()
      | Wire.Frame_too_big -> (
          Metrics.incr_toobig t.metrics;
          try Wire.send fd (Protocol.print_response Protocol.Toobig)
          with Unix.Unix_error _ | Sys_error _ -> ()))

(* --- Accept loop ---------------------------------------------------------- *)

let run t listen_fd =
  Mutex.lock t.mutex;
  let refused = t.stopping in
  if not refused then t.listener <- Some listen_fd;
  Mutex.unlock t.mutex;
  if refused then (try Unix.close listen_fd with Unix.Unix_error _ -> ())
  else begin
    let rec accept_loop () =
      match Unix.accept ~cloexec:true listen_fd with
      | client_fd, _ ->
          (match Thread.create (fun () -> handle_connection t client_fd) () with
          | thread ->
              Mutex.lock t.mutex;
              t.connection_threads <- thread :: t.connection_threads;
              Mutex.unlock t.mutex
          | exception e ->
              (* The spawn failed, so no thread owns the fd: close it
                 here or it leaks. *)
              (try Unix.close client_fd with Unix.Unix_error _ -> ());
              raise e);
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ ->
          (* The listener was shut down under us: either
             [request_shutdown] (expected) or a fatal socket error — stop
             accepting both ways. *)
          ()
    in
    accept_loop ();
    request_shutdown t;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    Mutex.lock t.mutex;
    let threads = t.connection_threads in
    t.connection_threads <- [];
    Mutex.unlock t.mutex;
    List.iter Thread.join threads;
    Engine.shutdown_handle t.handle;
    Watchdog.stop t.watchdog;
    Option.iter Journal.close t.journal
  end

(* --- Listening sockets ---------------------------------------------------- *)

let listen_unix path =
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with exn ->
     Unix.close fd;
     raise exn);
  Unix.listen fd 64;
  fd

let listen_tcp ~host ~port =
  let address =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          failwith (Printf.sprintf "cannot resolve host %S" host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found ->
          failwith (Printf.sprintf "cannot resolve host %S" host))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (address, port))
   with exn ->
     Unix.close fd;
     raise exn);
  Unix.listen fd 64;
  fd
