module Engine = Rip_engine.Engine
module Cpu_clock = Rip_numerics.Cpu_clock
module Rip = Rip_core.Rip

type config = {
  jobs : int option;
  queue_depth : int;
  cache_capacity : int;
  solver : Rip_core.Config.t option;
}

let default_config =
  { jobs = None; queue_depth = 64; cache_capacity = 512; solver = None }

type t = {
  process : Rip_tech.Process.t;
  config : config;
  handle : Engine.handle;
  cache : Protocol.solution Solve_cache.t;
  metrics : Metrics.t;
  mutex : Mutex.t;  (* guards in_flight, stopping, listener, threads *)
  mutable in_flight : int;
  mutable stopping : bool;
  mutable listener : Unix.file_descr option;
  mutable connection_threads : Thread.t list;
}

let create ?(config = default_config) process =
  if config.queue_depth < 1 then
    invalid_arg "Server.create: queue_depth must be at least 1";
  {
    process;
    config;
    handle = Engine.create_handle ?jobs:config.jobs ();
    cache = Solve_cache.create ~capacity:config.cache_capacity;
    metrics = Metrics.create ();
    mutex = Mutex.create ();
    in_flight = 0;
    stopping = false;
    listener = None;
    connection_threads = [];
  }

let stats t = Metrics.snapshot t.metrics ~cache:(Solve_cache.stats t.cache)

let stopping t =
  Mutex.lock t.mutex;
  let s = t.stopping in
  Mutex.unlock t.mutex;
  s

let request_shutdown t =
  Mutex.lock t.mutex;
  let listener = t.listener in
  t.stopping <- true;
  t.listener <- None;
  Mutex.unlock t.mutex;
  (* [shutdown], not [close]: closing an fd another thread is blocked in
     [accept] on does not wake it (the in-kernel wait holds a reference),
     whereas shutting the socket down forces the accept to return.  The
     accept loop still owns the fd and closes it once it exits. *)
  match listener with
  | Some fd -> (
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  | None -> ()

let shutdown t =
  request_shutdown t;
  Engine.shutdown_handle t.handle

(* --- Connection handling ------------------------------------------------- *)

let rec write_all fd s off len =
  if len > 0 then begin
    let written = Unix.write_substring fd s off len in
    write_all fd s (off + written) (len - written)
  end

(* Admission control: a solve slot is held from submission to response.
   BUSY when [queue_depth] solves are already in flight (or the server is
   draining for shutdown) — the bounded queue that keeps a request storm
   from growing the heap without limit. *)
let try_acquire_slot t =
  Mutex.lock t.mutex;
  let admitted = (not t.stopping) && t.in_flight < t.config.queue_depth in
  if admitted then t.in_flight <- t.in_flight + 1;
  Mutex.unlock t.mutex;
  admitted

let release_slot t =
  Mutex.lock t.mutex;
  t.in_flight <- t.in_flight - 1;
  Mutex.unlock t.mutex

let solution_of_report (report : Rip.report) =
  {
    Protocol.repeaters =
      List.map
        (fun (r : Rip_elmore.Solution.repeater) -> (r.position, r.width))
        (Rip_elmore.Solution.repeaters report.solution);
    total_width = report.total_width;
    delay = report.delay;
    power_watts = report.power_watts;
  }

let error_response error =
  let kind =
    match error with
    | Rip.Infeasible_budget _ -> Protocol.Infeasible_budget
    | Rip.Invalid_net _ -> Protocol.Invalid_net
    | Rip.Internal _ -> Protocol.Internal_error
  in
  Protocol.Error_frame
    { kind; message = Protocol.one_line (Rip.error_to_string error) }

let serve_solve t ~budget ~net =
  Metrics.incr_requests t.metrics;
  let key = Solve_cache.key ~process:t.process ~net ~budget in
  match Solve_cache.find t.cache key with
  | Some solution ->
      Metrics.incr_solved t.metrics;
      Protocol.Result { served = Cached; solution }
  | None ->
      if not (try_acquire_slot t) then begin
        Metrics.incr_busy t.metrics;
        Protocol.Busy
      end
      else
        Fun.protect
          ~finally:(fun () -> release_slot t)
          (fun () ->
            let enqueued = Unix.gettimeofday () in
            let outcomes =
              Engine.map_on_handle t.handle
                (fun () ->
                  let queue_seconds = Unix.gettimeofday () -. enqueued in
                  let cpu_started = Cpu_clock.thread_seconds () in
                  let result =
                    try
                      Rip.solve ?config:t.config.solver
                        {
                          Rip.process = t.process;
                          net;
                          geometry = None;
                          budget;
                        }
                    with exn -> Error (Rip.Internal (Printexc.to_string exn))
                  in
                  ( result,
                    queue_seconds,
                    Cpu_clock.thread_seconds () -. cpu_started ))
                [| () |]
            in
            let result, queue_seconds, cpu_seconds = outcomes.(0) in
            Metrics.add_solve_times t.metrics ~queue_seconds ~cpu_seconds;
            match result with
            | Ok report ->
                let solution = solution_of_report report in
                Solve_cache.add t.cache key solution;
                Metrics.incr_solved t.metrics;
                Protocol.Result { served = Fresh; solution }
            | Error error ->
                Metrics.incr_errors t.metrics;
                error_response error)

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let reader = Protocol.reader_of_channel ic in
  let send response =
    let s = Protocol.print_response response in
    write_all fd s 0 (String.length s)
  in
  let rec serve () =
    match Protocol.input_request reader with
    | Ok None -> ()
    | Error message ->
        (* Framing is lost after a malformed request; answer and hang up. *)
        send (Protocol.Error_frame { kind = Protocol.Protocol_error; message })
    | Ok (Some Protocol.Ping) ->
        send Protocol.Pong;
        serve ()
    | Ok (Some Protocol.Stats) ->
        send (Protocol.Stats_frame (stats t));
        serve ()
    | Ok (Some Protocol.Shutdown) ->
        send Protocol.Bye;
        request_shutdown t
    | Ok (Some (Protocol.Solve { budget; net })) ->
        let response =
          try serve_solve t ~budget ~net
          with exn ->
            Protocol.Error_frame
              {
                kind = Protocol.Internal_error;
                message = Protocol.one_line (Printexc.to_string exn);
              }
        in
        send response;
        serve ()
  in
  (* Peer-induced I/O failures (reset, early close) end the connection,
     never the server.  [close_in_noerr] closes the shared fd exactly
     once — the out direction writes through the raw fd. *)
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try serve () with Unix.Unix_error _ | Sys_error _ | End_of_file -> ())

(* --- Accept loop ---------------------------------------------------------- *)

let run t listen_fd =
  Mutex.lock t.mutex;
  let refused = t.stopping in
  if not refused then t.listener <- Some listen_fd;
  Mutex.unlock t.mutex;
  if refused then (try Unix.close listen_fd with Unix.Unix_error _ -> ())
  else begin
    let rec accept_loop () =
      match Unix.accept ~cloexec:true listen_fd with
      | client_fd, _ ->
          let thread = Thread.create (fun () -> handle_connection t client_fd) () in
          Mutex.lock t.mutex;
          t.connection_threads <- thread :: t.connection_threads;
          Mutex.unlock t.mutex;
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ ->
          (* The listener was shut down under us: either
             [request_shutdown] (expected) or a fatal socket error — stop
             accepting both ways. *)
          ()
    in
    accept_loop ();
    request_shutdown t;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    Mutex.lock t.mutex;
    let threads = t.connection_threads in
    t.connection_threads <- [];
    Mutex.unlock t.mutex;
    List.iter Thread.join threads;
    Engine.shutdown_handle t.handle
  end

(* --- Listening sockets ---------------------------------------------------- *)

let listen_unix path =
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with exn ->
     Unix.close fd;
     raise exn);
  Unix.listen fd 64;
  fd

let listen_tcp ~host ~port =
  let address =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          failwith (Printf.sprintf "cannot resolve host %S" host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found ->
          failwith (Printf.sprintf "cannot resolve host %S" host))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (address, port))
   with exn ->
     Unix.close fd;
     raise exn);
  Unix.listen fd 64;
  fd
