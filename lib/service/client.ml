type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  reader : Protocol.reader;
  mutable closed : bool;
}

let of_fd fd =
  let ic = Unix.in_channel_of_descr fd in
  { fd; ic; reader = Protocol.reader_of_channel ic; closed = false }

let connect_unix path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with exn ->
     Unix.close fd;
     raise exn);
  of_fd fd

let connect_tcp ~host ~port =
  let address =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          failwith (Printf.sprintf "cannot resolve host %S" host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found ->
          failwith (Printf.sprintf "cannot resolve host %S" host))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (address, port))
   with exn ->
     Unix.close fd;
     raise exn);
  of_fd fd

let rec write_all fd s off len =
  if len > 0 then begin
    let written = Unix.write_substring fd s off len in
    write_all fd s (off + written) (len - written)
  end

let request t frame =
  if t.closed then Error "client is closed"
  else
    match
      let s = Protocol.print_request frame in
      write_all t.fd s 0 (String.length s);
      Protocol.input_response t.reader
    with
    | Ok (Some response) -> Ok response
    | Ok None -> Error "connection closed by server"
    | Error e -> Error e
    | exception Unix.Unix_error (code, _, _) -> Error (Unix.error_message code)
    | exception (Sys_error message | Failure message) -> Error message
    | exception End_of_file -> Error "connection closed by server"

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* Closes the shared fd exactly once; writes go through the raw fd. *)
    close_in_noerr t.ic
  end
