type t = {
  fd : Unix.file_descr;
  reader : Protocol.reader;
  mutable closed : bool;
}

(* A per-attempt timeout is enforced by the kernel through the socket's
   receive/send timeouts: a stalled server surfaces as [EAGAIN] from
   [read]/[write], which [request] reports as a transport [Error] — the
   retry layer's signal to reconnect. *)
let set_timeout fd seconds =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO seconds

let of_fd ?timeout fd =
  Option.iter (set_timeout fd) timeout;
  { fd; reader = Wire.reader (Wire.create fd); closed = false }

let connect_unix ?timeout path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with exn ->
     Unix.close fd;
     raise exn);
  of_fd ?timeout fd

let connect_tcp ?timeout ~host ~port () =
  let address =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          failwith (Printf.sprintf "cannot resolve host %S" host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found ->
          failwith (Printf.sprintf "cannot resolve host %S" host))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (address, port))
   with exn ->
     Unix.close fd;
     raise exn);
  of_fd ?timeout fd

let request t frame =
  if t.closed then Error "client is closed"
  else
    match
      Wire.send t.fd (Protocol.print_request frame);
      Protocol.input_response t.reader
    with
    | Ok (Some response) -> Ok response
    | Ok None -> Error "connection closed by server"
    | Error e -> Error e
    | exception Unix.Unix_error (code, _, _) -> Error (Unix.error_message code)
    | exception (Sys_error message | Failure message) -> Error message
    | exception End_of_file -> Error "connection closed by server"
    | exception Wire.Frame_too_big -> Error "oversized response frame"

(* domain-escape waiver: a [t] is owned by exactly one thread at a time
   — loadgen workers each dial their own connection, and the pool hands
   a checked-out connection to a single requester.  The analysis seeds
   every spawn argument as shared, so it cannot see the per-thread
   ownership transfer. *)
let close t =
  (if not t.closed then begin
     t.closed <- true;
     try Unix.close t.fd with Unix.Unix_error _ -> ()
   end)
[@@lint.allow "domain-escape"]

(* --- Connection pools -----------------------------------------------------

   A router forwards many concurrent requests to the same shard; dialing
   per request would pay connect latency and churn fds.  A pool keeps up
   to [size] idle connections and dials on demand when all are checked
   out — the steady state is [<= size] sockets, but a burst never blocks
   on pool capacity (the overflow connection is simply closed on return
   instead of kept).  A connection that saw a transport error is
   discarded, never re-pooled: its framing may be mid-frame. *)

module Pool = struct
  type conn = t

  type nonrec t = {
    connect : unit -> conn;
    size : int;
    timeout : float option;
    mutex : Mutex.t;
    mutable free : conn list;
    mutable closed : bool;
  }

  let create ?timeout ~size connect =
    if size < 1 then invalid_arg "Client.Pool.create: size must be >= 1";
    {
      connect;
      size;
      timeout;
      mutex = Mutex.create ();
      free = [];
      closed = false;
    }

  let checkout p =
    Mutex.lock p.mutex;
    let pooled =
      if p.closed then Error "pool is closed"
      else
        match p.free with
        | conn :: rest ->
            p.free <- rest;
            Ok (Some conn)
        | [] -> Ok None
    in
    Mutex.unlock p.mutex;
    match pooled with
    | Error _ as e -> e
    | Ok (Some conn) -> Ok conn
    | Ok None -> (
        match p.connect () with
        | conn ->
            Option.iter (set_timeout conn.fd) p.timeout;
            Ok conn
        | exception Unix.Unix_error (code, _, _) ->
            Error (Unix.error_message code)
        | exception (Sys_error message | Failure message) -> Error message)

  let checkin p (conn : conn) =
    Mutex.lock p.mutex;
    let keep =
      (not p.closed) && (not conn.closed) && List.length p.free < p.size
    in
    if keep then p.free <- conn :: p.free;
    Mutex.unlock p.mutex;
    if not keep then close conn

  let request p frame =
    match checkout p with
    | Error _ as e -> e
    | Ok conn -> (
        match request conn frame with
        | Ok _ as ok ->
            checkin p conn;
            ok
        | Error _ as e ->
            (* Transport trouble poisons the connection; drop it so the
               next checkout dials fresh. *)
            close conn;
            e)

  let close_all p =
    Mutex.lock p.mutex;
    let conns = p.free in
    p.free <- [];
    p.closed <- true;
    Mutex.unlock p.mutex;
    List.iter close conns
end

(* --- Retrying sessions ----------------------------------------------------

   Retries are restricted to outcomes that are safe to repeat: transport
   failures (connect refused, reset, per-attempt timeout — a SOLVE is a
   pure computation, so re-sending cannot double-apply anything) and the
   server's explicit backpressure answers BUSY and TIMEOUT.  Any other
   typed response is final.  Backoff is full-jitter exponential from a
   deterministic SplitMix64 stream, so a load test replays exactly given
   the same seed while a thundering herd still spreads out. *)

type retry_policy = {
  attempts : int;
  backoff_seconds : float;
  backoff_cap_seconds : float;
  attempt_timeout : float option;
}

let default_retry_policy =
  {
    attempts = 3;
    backoff_seconds = 0.010;
    backoff_cap_seconds = 0.250;
    attempt_timeout = None;
  }

type session = {
  policy : retry_policy;
  connect : unit -> t;
  rng : Rip_numerics.Prng.t;
  mutable conn : t option;
}

let session ?(policy = default_retry_policy) ~seed connect =
  if policy.attempts < 1 then
    invalid_arg "Client.session: attempts must be at least 1";
  { policy; connect; rng = Rip_numerics.Prng.create seed; conn = None }

(* domain-escape waiver: a session, like a connection, has a single
   owning thread (each loadgen worker gets its own); see [close]. *)
let close_session s =
  Option.iter close s.conn;
  s.conn <- None
[@@lint.allow "domain-escape"]

type outcome = {
  response : (Protocol.response, string) result;
  attempts : int;
  retried_transport : int;
  retried_busy : int;
  retried_timeout : int;
}

(* Full jitter: uniform in [0, min(cap, base * 2^k)). *)
let backoff_delay s ~retry_index =
  let base =
    s.policy.backoff_seconds *. Float.pow 2.0 (float_of_int retry_index)
  in
  let cap = Float.min base s.policy.backoff_cap_seconds in
  if cap <= 0.0 then 0.0 else Rip_numerics.Prng.float_range s.rng 0.0 cap

type retry_class = Transport | Busy_response | Timeout_response

let classify = function
  | Error _ -> Some Transport
  | Ok Protocol.Busy -> Some Busy_response
  | Ok Protocol.Timeout -> Some Timeout_response
  | Ok _ -> None

(* domain-escape waiver: single-owner session, see [close_session]. *)
let attempt_once s frame =
  match s.conn with
  | Some conn -> request conn frame
  | None -> (
      match s.connect () with
      | conn ->
          Option.iter (set_timeout conn.fd) s.policy.attempt_timeout;
          s.conn <- Some conn;
          request conn frame
      | exception Unix.Unix_error (code, _, _) ->
          Error (Unix.error_message code)
      | exception (Sys_error message | Failure message) -> Error message)
[@@lint.allow "domain-escape"]

let request_with_retry s frame =
  let retried_transport = ref 0 in
  let retried_busy = ref 0 in
  let retried_timeout = ref 0 in
  let rec go attempt =
    let response = attempt_once s frame in
    (* A transport failure poisons the connection (framing may be mid-
       frame); drop it so the next attempt reconnects. *)
    (match response with
    | Error _ -> close_session s
    | Ok _ -> ());
    match classify response with
    | Some cls when attempt < s.policy.attempts ->
        (match cls with
        | Transport -> incr retried_transport
        | Busy_response -> incr retried_busy
        | Timeout_response -> incr retried_timeout);
        let delay = backoff_delay s ~retry_index:(attempt - 1) in
        if delay > 0.0 then Thread.delay delay;
        go (attempt + 1)
    | _ ->
        {
          response;
          attempts = attempt;
          retried_transport = !retried_transport;
          retried_busy = !retried_busy;
          retried_timeout = !retried_timeout;
        }
  in
  go 1
