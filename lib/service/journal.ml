(* Append-only CRC32-framed journal with segment rotation, fsync
   batching, and live-set compaction.  See journal.mli for the contract
   and DESIGN §6e for the format and recovery invariants.

   On-disk layout: each segment file starts with a 9-byte magic line,
   then a sequence of frames

     [type:1]['E'|'F'] [klen:4 BE] [vlen:4 BE] [crc:4 BE] [key] [value]

   where the CRC-32 covers everything except the CRC field itself
   (type, both lengths, key, value).  'E' is an entry; 'F' with zero
   lengths is the clean-shutdown footer and must terminate the last
   segment to count. *)

let magic = "RIPJRNL1\n"
let magic_len = String.length magic
let header_len = 13
let segment_format = format_of_string "segment-%08d.rj"

(* Sanity bounds for recovery: a length field beyond these is framing
   garbage (torn tail or corrupted header), not a huge record. *)
let max_key_bytes = 4096
let max_value_bytes = Wire.default_max_frame_bytes

(* --- CRC-32 (IEEE 802.3 / zlib polynomial), table-based -------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(crc = 0l) buf ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let index =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get buf i)))) 0xFFl)
    in
    c := Int32.logxor table.(index) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

(* --- Frames ----------------------------------------------------------- *)

(* CRC over a frame in [buf] at [pos] spanning [total] bytes: the 9
   header bytes before the CRC field, then the payload after it. *)
let frame_crc buf ~pos ~total =
  let head = crc32 buf ~pos ~len:9 in
  crc32 ~crc:head buf ~pos:(pos + header_len) ~len:(total - header_len)

let encode_frame ~typ ~key ~value =
  let klen = String.length key and vlen = String.length value in
  let total = header_len + klen + vlen in
  let b = Bytes.create total in
  Bytes.set b 0 typ;
  Bytes.set_int32_be b 1 (Int32.of_int klen);
  Bytes.set_int32_be b 5 (Int32.of_int vlen);
  Bytes.blit_string key 0 b header_len klen;
  Bytes.blit_string value 0 b (header_len + klen) vlen;
  Bytes.set_int32_be b 9 (frame_crc b ~pos:0 ~total);
  b

let footer_frame () = encode_frame ~typ:'F' ~key:"" ~value:""

(* --- Directory preparation ------------------------------------------- *)

(* Race-tolerant recursive mkdir (the netgen_cli idiom): a concurrent
   creator winning the race is success, not failure. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error _ when Sys.file_exists dir && Sys.is_directory dir -> ()
  end

let prepare_dir dir =
  match mkdir_p dir with
  | () ->
      if not (Sys.is_directory dir) then
        Error (Printf.sprintf "journal path %s exists and is not a directory" dir)
      else begin
        (* Writability probe: creating (and removing) a scratch file is
           the only portable test that covers permissions, read-only
           mounts and full disks alike. *)
        let probe = Filename.concat dir ".rip-journal-probe" in
        match Unix.openfile probe [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 with
        | fd ->
            Unix.close fd;
            (try Sys.remove probe with Sys_error _ -> ());
            Ok ()
        | exception Unix.Unix_error (code, _, _) ->
            Error
              (Printf.sprintf "journal directory %s is not writable: %s" dir
                 (Unix.error_message code))
      end
  | exception Unix.Unix_error (code, _, _) ->
      Error
        (Printf.sprintf "cannot create journal directory %s: %s" dir
           (Unix.error_message code))
  | exception Sys_error message ->
      Error (Printf.sprintf "cannot create journal directory %s: %s" dir message)

(* --- Types ------------------------------------------------------------ *)

type config = {
  dir : string;
  segment_bytes : int;
  fsync_bytes : int;
  fsync_seconds : float;
  compact_min_bytes : int;
  compact_dead_ratio : float;
}

let default_config ~dir =
  {
    dir;
    segment_bytes = 1 lsl 20;
    fsync_bytes = 64 * 1024;
    fsync_seconds = 0.050;
    compact_min_bytes = 256 * 1024;
    compact_dead_ratio = 0.5;
  }

type recovery = {
  entries : (string * string) list;
  valid_records : int;
  crc_rejected : int;
  torn_bytes : int;
  clean : bool;
  segments : int;
}

type stats = {
  bytes : int;
  segments : int;
  live_entries : int;
  dead_bytes : int;
  appends : int;
  fsyncs : int;
  compactions : int;
}

type t = {
  config : config;
  faults : Faults.t option;
  mutex : Mutex.t;
  (* key -> (value, framed record size): the live set, both the
     compaction source and the dead-bytes ledger. *)
  live : (string, string * int) Hashtbl.t;
  mutable old_segments : string list;  (* full paths, oldest first *)
  mutable current_path : string;
  mutable current_fd : Unix.file_descr;
  mutable current_index : int;
  mutable current_bytes : int;  (* active segment size, magic included *)
  mutable total_bytes : int;  (* across all segments, magic included *)
  mutable dead_bytes : int;
  mutable unsynced_bytes : int;
  mutable last_fsync : float;
  mutable appends : int;
  mutable fsyncs : int;
  mutable compactions : int;
  mutable wedged : bool;  (* a torn-write fault fired: freeze the log *)
  mutable closed : bool;
}

(* --- Recovery scan ---------------------------------------------------- *)

type scanned = {
  scan_records : (string * string * int) list;  (* key, value, size; in order *)
  scan_valid : int;
  scan_rejected : int;
  scan_good_end : int;  (* offset of the first bad frame, or the length *)
  scan_footer : bool;  (* a valid footer terminates the buffer *)
}

(* Scan one segment image.  Stops at the first frame whose header is
   unreadable (torn tail / lost framing); a frame with sane lengths but
   a bad CRC is skipped and the scan continues — the lengths still
   frame it.  A valid terminating footer marks the segment clean, so
   the caller skips the truncation repair; the CRC checks above stay on
   regardless, as cheap defence in depth. *)
let scan_segment buf len =
  let records = ref [] in
  let valid = ref 0 in
  let rejected = ref 0 in
  let footer = ref false in
  let pos = ref magic_len in
  let stop = ref false in
  while not !stop do
    if !pos >= len then stop := true
    else if !pos + header_len > len then stop := true
    else begin
      let typ = Bytes.get buf !pos in
      let klen = Int32.to_int (Bytes.get_int32_be buf (!pos + 1)) in
      let vlen = Int32.to_int (Bytes.get_int32_be buf (!pos + 5)) in
      let stored = Bytes.get_int32_be buf (!pos + 9) in
      if
        (typ <> 'E' && typ <> 'F')
        || klen < 0 || klen > max_key_bytes || vlen < 0
        || vlen > max_value_bytes
        || (typ = 'F' && (klen <> 0 || vlen <> 0))
      then stop := true
      else begin
        let total = header_len + klen + vlen in
        if !pos + total > len then stop := true
        else if frame_crc buf ~pos:!pos ~total <> stored then begin
          (* Bit rot inside a well-framed record: drop it, keep going. *)
          incr rejected;
          pos := !pos + total
        end
        else if typ = 'F' then begin
          (* Only a footer that terminates the segment counts as clean;
             one followed by more bytes is stale framing — stop there. *)
          if !pos + total = len then footer := true;
          stop := true;
          pos := !pos + total
        end
        else begin
          let key = Bytes.sub_string buf (!pos + header_len) klen in
          let value = Bytes.sub_string buf (!pos + header_len + klen) vlen in
          records := (key, value, total) :: !records;
          incr valid;
          pos := !pos + total
        end
      end
    end
  done;
  {
    scan_records = List.rev !records;
    scan_valid = !valid;
    scan_rejected = !rejected;
    scan_good_end = (if !footer then len else !pos);
    scan_footer = !footer;
  }

let segment_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         match Scanf.sscanf_opt name "segment-%d.rj%!" (fun i -> i) with
         | Some index -> Some (index, Filename.concat dir name)
         | None -> None)
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = Bytes.create len in
      really_input ic buf 0 len;
      buf)

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd len)

(* --- Open / recover --------------------------------------------------- *)

let open_ ?faults config =
  match prepare_dir config.dir with
  | Error _ as e -> e
  | Ok () -> (
      match
        let files = segment_files config.dir in
        let live = Hashtbl.create 256 in
        let order = ref [] in
        let valid = ref 0 in
        let rejected = ref 0 in
        let torn = ref 0 in
        let clean = ref false in
        let total = ref 0 in
        let last_index = List.fold_left (fun _ (i, _) -> i) 0 files in
        List.iter
          (fun (index, path) ->
            let buf = read_file path in
            let len = Bytes.length buf in
            if len < magic_len || Bytes.sub_string buf 0 magic_len <> magic
            then begin
              (* Unreadable preamble: nothing in this file can be
                 trusted; empty it so the next recovery skips it too. *)
              torn := !torn + len;
              truncate_file path 0
            end
            else begin
              let s = scan_segment buf len in
              valid := !valid + s.scan_valid;
              rejected := !rejected + s.scan_rejected;
              if index = last_index then clean := s.scan_footer;
              if s.scan_good_end < len then begin
                torn := !torn + (len - s.scan_good_end);
                truncate_file path s.scan_good_end
              end;
              total := !total + s.scan_good_end;
              List.iter
                (fun (key, value, size) ->
                  (match Hashtbl.find_opt live key with
                  | Some (_, _) -> ()
                  | None -> order := key :: !order);
                  Hashtbl.replace live key (value, size))
                s.scan_records
            end)
          files;
        (* Live bytes = what a compaction would keep; everything else on
           disk (superseded, rejected, stale footers) is dead weight.
           Integer addition commutes, so hash order cannot change the
           sum. *)
        let live_bytes =
          (Hashtbl.fold [@lint.allow "no-hashtbl-order"])
            (fun _ (_, size) acc -> acc + size)
            live 0
        in
        let entries =
          List.rev !order
          |> List.map (fun key ->
                 let value, _ = Hashtbl.find live key in
                 (key, value))
        in
        let recovery =
          {
            entries;
            valid_records = !valid;
            crc_rejected = !rejected;
            torn_bytes = !torn;
            clean = !clean;
            segments = List.length files;
          }
        in
        (* Appends always go to a fresh segment: old segments are never
           reopened for writing, so a footer can only ever terminate the
           final segment of a cleanly-closed log. *)
        let index = last_index + 1 in
        let path = Filename.concat config.dir (Printf.sprintf segment_format index) in
        let fd =
          Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
        in
        Wire.send fd magic;
        let t =
          {
            config;
            faults;
            mutex = Mutex.create ();
            live;
            old_segments = List.map snd files;
            current_path = path;
            current_fd = fd;
            current_index = index;
            current_bytes = magic_len;
            total_bytes = !total + magic_len;
            dead_bytes =
              !total - live_bytes
              - magic_len * List.length files
              |> max 0;
            unsynced_bytes = 0;
            last_fsync = Rip_numerics.Cpu_clock.monotonic_seconds ();
            appends = 0;
            fsyncs = 0;
            compactions = 0;
            wedged = false;
            closed = false;
          }
        in
        (t, recovery)
      with
      | result -> Ok result
      | exception Unix.Unix_error (code, fn, _) ->
          Error
            (Printf.sprintf "journal open in %s failed: %s (%s)" config.dir
               (Unix.error_message code) fn)
      | exception Sys_error message ->
          Error (Printf.sprintf "journal open in %s failed: %s" config.dir message))

(* --- Write path -------------------------------------------------------
   All I/O below runs under [t.mutex]: the lock is what serialises the
   shared file offset, and every write lands on a local journal file,
   so the hold time is bounded by one page-cache copy (fsyncs are the
   long pole and are batched).  Hence the blocking-under-lock waivers:
   the lint cannot see that this mutex exists precisely to order the
   file appends. *)

let do_fsync t =
  (match t.faults with
  | Some faults -> Option.iter Thread.delay (Faults.fsync_delay faults)
  | None -> ());
  Unix.fsync t.current_fd;
  t.fsyncs <- t.fsyncs + 1;
  t.unsynced_bytes <- 0;
  t.last_fsync <- Rip_numerics.Cpu_clock.monotonic_seconds ()

let maybe_fsync t =
  if
    t.unsynced_bytes >= t.config.fsync_bytes
    || Rip_numerics.Cpu_clock.monotonic_seconds () -. t.last_fsync
       >= t.config.fsync_seconds
  then do_fsync t

let segment_path t index =
  Filename.concat t.config.dir (Printf.sprintf segment_format index)

let rotate t =
  do_fsync t;
  Unix.close t.current_fd;
  t.old_segments <- t.old_segments @ [ t.current_path ];
  let index = t.current_index + 1 in
  let path = segment_path t index in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Wire.send fd magic;
  t.current_index <- index;
  t.current_path <- path;
  t.current_fd <- fd;
  t.current_bytes <- magic_len;
  t.total_bytes <- t.total_bytes + magic_len

(* Rewrite the live set into a fresh segment, fsync it, then delete the
   superseded files.  Crash-safe without any further ceremony: if we die
   before the deletes, recovery replays old segments first and the new
   one last, and last-wins replay converges on the same live set. *)
let compact t =
  let index = t.current_index + 1 in
  let path = segment_path t index in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Wire.send fd magic;
  let written = ref magic_len in
  (* Sorted by key so the compacted segment's bytes are a function of
     the live set alone, not of hash order. *)
  let entries =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun key (value, _) acc -> (key, value) :: acc) t.live [])
  in
  List.iter
    (fun (key, value) ->
      let frame = encode_frame ~typ:'E' ~key ~value in
      Wire.send fd (Bytes.unsafe_to_string frame);
      written := !written + Bytes.length frame)
    entries;
  Unix.fsync fd;
  Unix.close t.current_fd;
  let stale = t.old_segments @ [ t.current_path ] in
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) stale;
  t.old_segments <- [];
  t.current_path <- path;
  t.current_fd <- fd;
  t.current_index <- index;
  t.current_bytes <- !written;
  t.total_bytes <- !written;
  t.dead_bytes <- 0;
  t.unsynced_bytes <- 0;
  t.last_fsync <- Rip_numerics.Cpu_clock.monotonic_seconds ();
  t.fsyncs <- t.fsyncs + 1;
  t.compactions <- t.compactions + 1

let maybe_compact t =
  if
    t.total_bytes >= t.config.compact_min_bytes
    && float_of_int t.dead_bytes
       >= t.config.compact_dead_ratio *. float_of_int t.total_bytes
  then compact t

(* blocking-under-lock waiver: see the write-path comment above — the
   journal mutex exists to serialise appends to one local file. *)
let append t ~key ~value =
  if String.length key > max_key_bytes || String.length value > max_value_bytes
  then invalid_arg "Journal.append: record exceeds frame bounds";
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not (t.closed || t.wedged) then begin
        let frame = encode_frame ~typ:'E' ~key ~value in
        let total = Bytes.length frame in
        (match t.faults with
        | Some faults -> (
            match Faults.journal_bitflip faults ~len:total with
            | Some (byte, bit) ->
                Bytes.set frame byte
                  (Char.chr (Char.code (Bytes.get frame byte) lxor (1 lsl bit)))
            | None -> ())
        | None -> ());
        let torn =
          match t.faults with
          | Some faults -> Faults.torn_write faults ~len:total
          | None -> None
        in
        match torn with
        | Some prefix ->
            (* Simulated crash mid-write: the prefix reaches the file
               and the journal freezes, leaving the torn tail in place
               for the next recovery to truncate. *)
            Wire.write_all t.current_fd (Bytes.unsafe_to_string frame) 0 prefix;
            t.current_bytes <- t.current_bytes + prefix;
            t.total_bytes <- t.total_bytes + prefix;
            t.wedged <- true
        | None -> (
            try
              Wire.send t.current_fd (Bytes.unsafe_to_string frame);
              t.appends <- t.appends + 1;
              t.current_bytes <- t.current_bytes + total;
              t.total_bytes <- t.total_bytes + total;
              t.unsynced_bytes <- t.unsynced_bytes + total;
              (match Hashtbl.find_opt t.live key with
              | Some (_, old_size) -> t.dead_bytes <- t.dead_bytes + old_size
              | None -> ());
              Hashtbl.replace t.live key (value, total);
              maybe_fsync t;
              if t.current_bytes >= t.config.segment_bytes then rotate t;
              maybe_compact t
            with Unix.Unix_error _ | Sys_error _ ->
              (* Disk trouble (full, yanked, ...) must degrade
                 durability, not take down serving: freeze the log and
                 keep answering from memory. *)
              t.wedged <- true)
      end)
[@@lint.allow "blocking-under-lock"]

(* blocking-under-lock waiver: compaction I/O, same single-file
   serialisation argument as [append]. *)
let note_evicted t ~key =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not (t.closed || t.wedged) then
        match Hashtbl.find_opt t.live key with
        | None -> ()
        | Some (_, size) -> (
            Hashtbl.remove t.live key;
            t.dead_bytes <- t.dead_bytes + size;
            try maybe_compact t
            with Unix.Unix_error _ | Sys_error _ -> t.wedged <- true))
[@@lint.allow "blocking-under-lock"]

(* blocking-under-lock waiver: one bounded fsync of a local file. *)
let flush t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if (not (t.closed || t.wedged)) && t.unsynced_bytes > 0 then
        try do_fsync t
        with Unix.Unix_error _ | Sys_error _ -> t.wedged <- true)
[@@lint.allow "blocking-under-lock"]

(* blocking-under-lock waiver: final footer write + fsync. *)
let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        if t.wedged then
          (* A simulated crash must not be followed by a clean footer. *)
          try Unix.close t.current_fd with Unix.Unix_error _ -> ()
        else begin
          (try
             let footer = footer_frame () in
             Wire.send t.current_fd (Bytes.unsafe_to_string footer);
             t.total_bytes <- t.total_bytes + Bytes.length footer;
             Unix.fsync t.current_fd;
             t.fsyncs <- t.fsyncs + 1;
             t.unsynced_bytes <- 0
           with Unix.Unix_error _ | Sys_error _ -> ());
          try Unix.close t.current_fd with Unix.Unix_error _ -> ()
        end
      end)
[@@lint.allow "blocking-under-lock"]

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      bytes = t.total_bytes;
      segments = List.length t.old_segments + 1;
      live_entries = Hashtbl.length t.live;
      dead_bytes = t.dead_bytes;
      appends = t.appends;
      fsyncs = t.fsyncs;
      compactions = t.compactions;
    }
  in
  Mutex.unlock t.mutex;
  s
