type error_kind =
  | Protocol_error
  | Infeasible_budget
  | Invalid_net
  | Internal_error

type solution = {
  repeaters : (float * float) list;
  total_width : float;
  delay : float;
  power_watts : float;
}

type served = Fresh | Cached

type degrade_reason = Deadline_exceeded | Overload | Worker_lost

type stats = {
  shard_id : string;
  uptime_seconds : float;
  requests : int;
  solved : int;
  errors : int;
  rejected_busy : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_size : int;
  cache_capacity : int;
  queue_wait_seconds : float;
  solve_cpu_seconds : float;
  timeouts : int;
  degraded : int;
  toobig : int;
  cache_self_heals : int;
  cache_replayed : int;
  journal_bytes : int;
  journal_compactions : int;
  in_flight : int;
  queue_depth : int;
  queue_wait_p50 : float;
  queue_wait_p95 : float;
  queue_wait_p99 : float;
  solve_p50 : float;
  solve_p95 : float;
  solve_p99 : float;
}

type health = {
  health_shard_id : string;
  health_in_flight : int;
  health_queue_depth : int;
  health_high_water : int;
}

module Trace = Rip_obs.Trace

type request =
  | Ping
  | Stats
  | Metrics
  | Health
  | Shutdown
  | Solve of {
      budget : float;
      deadline_ms : float option;
      trace : Trace.context option;
      net : Rip_net.Net.t;
    }

type response =
  | Pong
  | Bye
  | Busy
  | Timeout
  | Toobig
  | Error_frame of { kind : error_kind; message : string }
  | Result of { served : served; solution : solution }
  | Degraded of { reason : degrade_reason; solution : solution }
  | Stats_frame of stats
  | Metrics_frame of string
      (* Prometheus text exposition, newline-terminated lines *)
  | Health_frame of health

(* --- Printing ------------------------------------------------------------ *)

let error_kind_to_string = function
  | Protocol_error -> "protocol"
  | Infeasible_budget -> "infeasible_budget"
  | Invalid_net -> "invalid_net"
  | Internal_error -> "internal"

let error_kind_of_string = function
  | "protocol" -> Some Protocol_error
  | "infeasible_budget" -> Some Infeasible_budget
  | "invalid_net" -> Some Invalid_net
  | "internal" -> Some Internal_error
  | _ -> None

let one_line message =
  String.concat "; "
    (List.filter
       (fun s -> s <> "")
       (String.split_on_char '\n' (String.map (function '\r' -> '\n' | c -> c) message)))

let served_to_string = function Fresh -> "fresh" | Cached -> "cached"

let degrade_reason_to_string = function
  | Deadline_exceeded -> "deadline"
  | Overload -> "overload"
  | Worker_lost -> "worker-lost"

let degrade_reason_of_string = function
  | "deadline" -> Some Deadline_exceeded
  | "overload" -> Some Overload
  | "worker-lost" -> Some Worker_lost
  | _ -> None

(* A shard id travels on single-line frames (HEALTHY, STATS body), so it
   must be one whitespace-free token.  Enforced here once, for servers
   and routers alike. *)
let valid_shard_id id =
  id <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       id

let print_request = function
  | Ping -> "PING\n"
  | Stats -> "STATS\n"
  | Metrics -> "METRICS\n"
  | Health -> "HEALTH\n"
  | Shutdown -> "SHUTDOWN\n"
  | Solve { budget; deadline_ms; trace; net } ->
      let deadline =
        match deadline_ms with
        | None -> ""
        | Some ms -> Printf.sprintf " DEADLINE %.17g" ms
      in
      let traced =
        match trace with
        | None -> ""
        | Some c ->
            Printf.sprintf " TRACE %s %s %d" c.Trace.trace_id
              c.Trace.parent_span_id c.Trace.flags
      in
      Printf.sprintf "SOLVE %.17g%s%s\n%sEND\n" budget deadline traced
        (Rip_net.Net_io.to_string net)

let solution_body solution =
  let buffer = Buffer.create 128 in
  List.iter
    (fun (position, width) ->
      Buffer.add_string buffer
        (Printf.sprintf "repeater %.17g %.17g\n" position width))
    solution.repeaters;
  Buffer.add_string buffer (Printf.sprintf "width %.17g\n" solution.total_width);
  Buffer.add_string buffer (Printf.sprintf "delay %.17g\n" solution.delay);
  Buffer.add_string buffer (Printf.sprintf "power %.17g\n" solution.power_watts);
  Buffer.contents buffer

(* Field order is the wire order of a STATS frame; the parser accepts any
   order but the printer is canonical so STATS frames round-trip bytewise. *)
let stats_fields stats =
  [
    ("shard_id", stats.shard_id);
    ("uptime_seconds", Printf.sprintf "%.17g" stats.uptime_seconds);
    ("requests", string_of_int stats.requests);
    ("solved", string_of_int stats.solved);
    ("errors", string_of_int stats.errors);
    ("rejected_busy", string_of_int stats.rejected_busy);
    ("cache_hits", string_of_int stats.cache_hits);
    ("cache_misses", string_of_int stats.cache_misses);
    ("cache_evictions", string_of_int stats.cache_evictions);
    ("cache_size", string_of_int stats.cache_size);
    ("cache_capacity", string_of_int stats.cache_capacity);
    ("queue_wait_seconds", Printf.sprintf "%.17g" stats.queue_wait_seconds);
    ("solve_cpu_seconds", Printf.sprintf "%.17g" stats.solve_cpu_seconds);
    ("timeouts", string_of_int stats.timeouts);
    ("degraded", string_of_int stats.degraded);
    ("toobig", string_of_int stats.toobig);
    ("cache_self_heals", string_of_int stats.cache_self_heals);
    ("cache_replayed", string_of_int stats.cache_replayed);
    ("journal_bytes", string_of_int stats.journal_bytes);
    ("journal_compactions", string_of_int stats.journal_compactions);
    ("in_flight", string_of_int stats.in_flight);
    ("queue_depth", string_of_int stats.queue_depth);
    ("queue_wait_p50", Printf.sprintf "%.17g" stats.queue_wait_p50);
    ("queue_wait_p95", Printf.sprintf "%.17g" stats.queue_wait_p95);
    ("queue_wait_p99", Printf.sprintf "%.17g" stats.queue_wait_p99);
    ("solve_p50", Printf.sprintf "%.17g" stats.solve_p50);
    ("solve_p95", Printf.sprintf "%.17g" stats.solve_p95);
    ("solve_p99", Printf.sprintf "%.17g" stats.solve_p99);
  ]

let print_response = function
  | Pong -> "PONG\n"
  | Bye -> "BYE\n"
  | Busy -> "BUSY\n"
  | Timeout -> "TIMEOUT\n"
  | Toobig -> "TOOBIG\n"
  | Error_frame { kind; message } ->
      Printf.sprintf "ERROR %s %s\n" (error_kind_to_string kind)
        (one_line message)
  | Result { served; solution } ->
      Printf.sprintf "RESULT %s\n%sEND\n" (served_to_string served)
        (solution_body solution)
  | Degraded { reason; solution } ->
      Printf.sprintf "DEGRADED %s\n%sEND\n"
        (degrade_reason_to_string reason)
        (solution_body solution)
  | Stats_frame stats ->
      let body =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf "%s %s\n" k v)
             (stats_fields stats))
      in
      Printf.sprintf "STATS\n%sEND\n" body
  | Metrics_frame body -> Printf.sprintf "METRICS\n%sEND\n" body
  | Health_frame h ->
      Printf.sprintf "HEALTHY %s %d %d %d\n" h.health_shard_id
        h.health_in_flight h.health_queue_depth h.health_high_water

(* --- Parsing ------------------------------------------------------------- *)

type reader = unit -> string option

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let reader_of_channel ic () =
  match input_line ic with
  | line -> Some (strip_cr line)
  | exception End_of_file -> None

let reader_of_lines lines =
  let remaining = ref lines in
  fun () ->
    match !remaining with
    | [] -> None
    | line :: rest ->
        remaining := rest;
        Some (strip_cr line)

let ( let* ) = Result.bind

let parse_float what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad %s %S" what s)

let parse_int what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad %s %S" what s)

(* Collect raw lines until the END marker; [Error] when the stream ends
   first (a truncated frame). *)
let body_until_end read =
  let rec loop acc =
    match read () with
    | None -> Error "unexpected end of stream inside a frame (missing END)"
    | Some "END" -> Ok (List.rev acc)
    | Some line -> loop (line :: acc)
  in
  loop []

let split_words line =
  List.filter (fun s -> s <> "") (String.split_on_char ' ' line)

let input_request read =
  match read () with
  | None -> Ok None
  | Some line -> (
      match split_words line with
      | [ "PING" ] -> Ok (Some Ping)
      | [ "STATS" ] -> Ok (Some Stats)
      | [ "METRICS" ] -> Ok (Some Metrics)
      | [ "HEALTH" ] -> Ok (Some Health)
      | [ "SHUTDOWN" ] -> Ok (Some Shutdown)
      | "SOLVE" :: budget :: header ->
          let* budget = parse_float "budget" budget in
          (* DEADLINE affects correctness, so a malformed one is a
             protocol error.  TRACE is best-effort observability: a
             malformed, truncated, oversized or duplicated TRACE
             degrades the request to untraced — the solve must never
             fail because telemetry plumbing did. *)
          let is_keyword t = String.equal t "DEADLINE" || String.equal t "TRACE" in
          let rec drop_until_keyword = function
            | t :: rest when not (is_keyword t) -> drop_until_keyword rest
            | rest -> rest
          in
          let rec parse_header deadline trace header =
            match header with
            | [] -> Ok (deadline, trace)
            | "DEADLINE" :: ms :: rest ->
                let* ms = parse_float "deadline" ms in
                if ms < 0.0 then Error "negative deadline"
                else parse_header (Some ms) trace rest
            | "TRACE" :: tid :: psid :: flags :: rest
              when not (is_keyword tid || is_keyword psid || is_keyword flags)
              ->
                let trace =
                  match
                    ( trace,
                      Trace.context_of_tokens ~trace_id:tid
                        ~parent_span_id:psid ~flags )
                  with
                  | None, Some c -> Some (Some c)
                  | _, _ -> Some None  (* duplicate or invalid: untraced *)
                in
                parse_header deadline trace rest
            | "TRACE" :: rest ->
                (* Truncated TRACE: discard its tokens, keep parsing. *)
                parse_header deadline (Some None) (drop_until_keyword rest)
            | _ -> Error "malformed SOLVE header"
          in
          let* deadline_ms, trace = parse_header None None header in
          let trace = Option.join trace in
          let* body = body_until_end read in
          let* net =
            Result.map_error
              (fun e -> Printf.sprintf "bad net body: %s" e)
              (Rip_net.Net_io.parse_string (String.concat "\n" body))
          in
          Ok (Some (Solve { budget; deadline_ms; trace; net }))
      | [] -> Error "empty request line"
      | word :: _ -> Error (Printf.sprintf "unknown request %S" word))

let parse_solution_body lines =
  let rec loop repeaters_rev = function
    | [] -> Error "truncated RESULT body"
    | line :: rest -> (
        match split_words line with
        | [ "repeater"; position; width ] ->
            let* position = parse_float "repeater position" position in
            let* width = parse_float "repeater width" width in
            loop ((position, width) :: repeaters_rev) rest
        | [ "width"; total ] -> (
            let* total_width = parse_float "total width" total in
            match rest with
            | [ delay_line; power_line ] -> (
                match (split_words delay_line, split_words power_line) with
                | [ "delay"; d ], [ "power"; p ] ->
                    let* delay = parse_float "delay" d in
                    let* power_watts = parse_float "power" p in
                    Ok
                      {
                        repeaters = List.rev repeaters_rev;
                        total_width;
                        delay;
                        power_watts;
                      }
                | _, _ -> Error "malformed RESULT body tail")
            | _ -> Error "malformed RESULT body tail")
        | _ -> Error (Printf.sprintf "bad RESULT body line %S" line))
  in
  loop [] lines

let parse_stats_body lines =
  let* fields =
    List.fold_left
      (fun acc line ->
        let* acc = acc in
        match split_words line with
        | [ key; value ] -> Ok ((key, value) :: acc)
        | _ -> Error (Printf.sprintf "bad STATS body line %S" line))
      (Ok []) lines
  in
  let lookup key =
    match List.assoc_opt key fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "STATS frame missing field %S" key)
  in
  let geti key =
    let* v = lookup key in
    parse_int key v
  in
  let getf key =
    let* v = lookup key in
    parse_float key v
  in
  let* shard_id = lookup "shard_id" in
  let* () =
    if valid_shard_id shard_id then Ok ()
    else Error (Printf.sprintf "bad shard_id %S" shard_id)
  in
  let* uptime_seconds = getf "uptime_seconds" in
  let* requests = geti "requests" in
  let* solved = geti "solved" in
  let* errors = geti "errors" in
  let* rejected_busy = geti "rejected_busy" in
  let* cache_hits = geti "cache_hits" in
  let* cache_misses = geti "cache_misses" in
  let* cache_evictions = geti "cache_evictions" in
  let* cache_size = geti "cache_size" in
  let* cache_capacity = geti "cache_capacity" in
  let* queue_wait_seconds = getf "queue_wait_seconds" in
  let* solve_cpu_seconds = getf "solve_cpu_seconds" in
  let* timeouts = geti "timeouts" in
  let* degraded = geti "degraded" in
  let* toobig = geti "toobig" in
  let* cache_self_heals = geti "cache_self_heals" in
  let* cache_replayed = geti "cache_replayed" in
  let* journal_bytes = geti "journal_bytes" in
  let* journal_compactions = geti "journal_compactions" in
  let* in_flight = geti "in_flight" in
  let* queue_depth = geti "queue_depth" in
  let* queue_wait_p50 = getf "queue_wait_p50" in
  let* queue_wait_p95 = getf "queue_wait_p95" in
  let* queue_wait_p99 = getf "queue_wait_p99" in
  let* solve_p50 = getf "solve_p50" in
  let* solve_p95 = getf "solve_p95" in
  let* solve_p99 = getf "solve_p99" in
  Ok
    {
      shard_id;
      uptime_seconds;
      requests;
      solved;
      errors;
      rejected_busy;
      cache_hits;
      cache_misses;
      cache_evictions;
      cache_size;
      cache_capacity;
      queue_wait_seconds;
      solve_cpu_seconds;
      timeouts;
      degraded;
      toobig;
      cache_self_heals;
      cache_replayed;
      journal_bytes;
      journal_compactions;
      in_flight;
      queue_depth;
      queue_wait_p50;
      queue_wait_p95;
      queue_wait_p99;
      solve_p50;
      solve_p95;
      solve_p99;
    }

let input_response read =
  match read () with
  | None -> Ok None
  | Some line -> (
      match split_words line with
      | [ "PONG" ] -> Ok (Some Pong)
      | [ "BYE" ] -> Ok (Some Bye)
      | [ "BUSY" ] -> Ok (Some Busy)
      | [ "TIMEOUT" ] -> Ok (Some Timeout)
      | [ "TOOBIG" ] -> Ok (Some Toobig)
      | "ERROR" :: kind :: _ -> (
          match error_kind_of_string kind with
          | None -> Error (Printf.sprintf "unknown error kind %S" kind)
          | Some kind ->
              (* The message is the rest of the raw line, spaces intact. *)
              let prefix = "ERROR " ^ error_kind_to_string kind in
              let message =
                if String.length line > String.length prefix + 1 then
                  String.sub line
                    (String.length prefix + 1)
                    (String.length line - String.length prefix - 1)
                else ""
              in
              Ok (Some (Error_frame { kind; message })))
      | [ "RESULT"; served ] ->
          let* served =
            match served with
            | "fresh" -> Ok Fresh
            | "cached" -> Ok Cached
            | other -> Error (Printf.sprintf "unknown RESULT tag %S" other)
          in
          let* body = body_until_end read in
          let* solution = parse_solution_body body in
          Ok (Some (Result { served; solution }))
      | [ "DEGRADED"; reason ] ->
          let* reason =
            match degrade_reason_of_string reason with
            | Some r -> Ok r
            | None -> Error (Printf.sprintf "unknown DEGRADED reason %S" reason)
          in
          let* body = body_until_end read in
          let* solution = parse_solution_body body in
          Ok (Some (Degraded { reason; solution }))
      | [ "STATS" ] ->
          let* body = body_until_end read in
          let* stats = parse_stats_body body in
          Ok (Some (Stats_frame stats))
      | [ "METRICS" ] ->
          (* Keep the raw lines: the body is opaque Prometheus text, and
             Prometheus never emits a bare END line. *)
          let* body = body_until_end read in
          let body =
            String.concat "" (List.map (fun l -> l ^ "\n") body)
          in
          Ok (Some (Metrics_frame body))
      | [ "HEALTHY"; shard_id; in_flight; queue_depth; high_water ] ->
          if not (valid_shard_id shard_id) then
            Error (Printf.sprintf "bad shard_id %S" shard_id)
          else
            let* health_in_flight = parse_int "in_flight" in_flight in
            let* health_queue_depth = parse_int "queue_depth" queue_depth in
            let* health_high_water = parse_int "high_water" high_water in
            Ok
              (Some
                 (Health_frame
                    {
                      health_shard_id = shard_id;
                      health_in_flight;
                      health_queue_depth;
                      health_high_water;
                    }))
      | [] -> Error "empty response line"
      | word :: _ -> Error (Printf.sprintf "unknown response %S" word))

(* --- Equality ------------------------------------------------------------ *)

let request_equal a b =
  match (a, b) with
  | Ping, Ping | Stats, Stats | Metrics, Metrics | Health, Health
  | Shutdown, Shutdown ->
      true
  | Solve a, Solve b ->
      a.budget = b.budget
      && Option.equal Float.equal a.deadline_ms b.deadline_ms
      && Option.equal Trace.context_equal a.trace b.trace
      && Rip_net.Net.equal a.net b.net
  | (Ping | Stats | Metrics | Health | Shutdown | Solve _), _ -> false

let solution_equal a b =
  List.equal
    (fun (p, w) (p', w') -> p = p' && w = w')
    a.repeaters b.repeaters
  && a.total_width = b.total_width && a.delay = b.delay
  && a.power_watts = b.power_watts

let response_equal a b =
  match (a, b) with
  | Pong, Pong | Bye, Bye | Busy, Busy | Timeout, Timeout | Toobig, Toobig ->
      true
  | Error_frame a, Error_frame b -> a.kind = b.kind && a.message = b.message
  | Result a, Result b ->
      a.served = b.served && solution_equal a.solution b.solution
  | Degraded a, Degraded b ->
      a.reason = b.reason && solution_equal a.solution b.solution
  | Stats_frame a, Stats_frame b ->
      String.equal a.shard_id b.shard_id
      && Float.equal a.uptime_seconds b.uptime_seconds
      && a.requests = b.requests && a.solved = b.solved
      && a.errors = b.errors
      && a.rejected_busy = b.rejected_busy
      && a.cache_hits = b.cache_hits
      && a.cache_misses = b.cache_misses
      && a.cache_evictions = b.cache_evictions
      && a.cache_size = b.cache_size
      && a.cache_capacity = b.cache_capacity
      && Float.equal a.queue_wait_seconds b.queue_wait_seconds
      && Float.equal a.solve_cpu_seconds b.solve_cpu_seconds
      && a.timeouts = b.timeouts && a.degraded = b.degraded
      && a.toobig = b.toobig
      && a.cache_self_heals = b.cache_self_heals
      && a.cache_replayed = b.cache_replayed
      && a.journal_bytes = b.journal_bytes
      && a.journal_compactions = b.journal_compactions
      && a.in_flight = b.in_flight
      && a.queue_depth = b.queue_depth
      && Float.equal a.queue_wait_p50 b.queue_wait_p50
      && Float.equal a.queue_wait_p95 b.queue_wait_p95
      && Float.equal a.queue_wait_p99 b.queue_wait_p99
      && Float.equal a.solve_p50 b.solve_p50
      && Float.equal a.solve_p95 b.solve_p95
      && Float.equal a.solve_p99 b.solve_p99
  | Metrics_frame a, Metrics_frame b -> String.equal a b
  | Health_frame a, Health_frame b ->
      String.equal a.health_shard_id b.health_shard_id
      && a.health_in_flight = b.health_in_flight
      && a.health_queue_depth = b.health_queue_depth
      && a.health_high_water = b.health_high_water
  | ( ( Pong | Bye | Busy | Timeout | Toobig | Error_frame _ | Result _
      | Degraded _ | Stats_frame _ | Metrics_frame _ | Health_frame _ ),
      _ ) ->
      false
