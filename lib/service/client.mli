(** A blocking [rip_serviced] client: one connection, one request in
    flight at a time.  Shared by [rip_loadgen], the service bench and the
    end-to-end tests. *)

type t

val of_fd : Unix.file_descr -> t
(** Wrap an established socket (e.g. one end of a socketpair). *)

val connect_unix : string -> t
(** Connect to a Unix-domain socket path.
    @raise Unix.Unix_error when the daemon is not there. *)

val connect_tcp : host:string -> port:int -> t
(** Connect over TCP. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request and read its response.  [Error] carries a transport
    or framing diagnostic (connection reset, truncated frame, garbage);
    the connection should be abandoned after an [Error]. *)

val close : t -> unit
(** Idempotent. *)
