(** A blocking [rip_serviced] client: one connection, one request in
    flight at a time.  Shared by [rip_loadgen], the service bench and the
    end-to-end tests.

    Two layers: a bare connection ({!t}, {!request}) that reports every
    failure as a final [Error], and a retrying {!session} that
    reconnects and retries outcomes safe to repeat — transport failures
    (a SOLVE is a pure computation, so re-sending is idempotent), BUSY
    and TIMEOUT — with deterministic full-jitter exponential backoff. *)

type t

val of_fd : ?timeout:float -> Unix.file_descr -> t
(** Wrap an established socket (e.g. one end of a socketpair).
    [timeout] arms the socket's receive/send timeouts (seconds): a
    stalled peer then surfaces as a transport [Error] instead of
    blocking forever. *)

val connect_unix : ?timeout:float -> string -> t
(** Connect to a Unix-domain socket path.
    @raise Unix.Unix_error when the daemon is not there. *)

val connect_tcp : ?timeout:float -> host:string -> port:int -> unit -> t
(** Connect over TCP.  [timeout] bounds each read/write, not the
    connect itself. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request and read its response.  Writes are EINTR-safe and
    complete ({!Wire.write_all}) — a frame is never half-sent because a
    signal landed.  [Error] carries a transport or framing diagnostic
    (connection reset, truncated frame, timeout, garbage); the
    connection should be abandoned after an [Error]. *)

val close : t -> unit
(** Idempotent. *)

(** {1 Connection pools}

    What a router keeps per shard: up to [size] idle connections, dialed
    on demand, shared by any number of threads.  A burst beyond [size]
    dials extra connections rather than queueing (they are closed on
    return instead of pooled), and a connection that reported a
    transport error is discarded, never re-pooled. *)

module Pool : sig
  type conn = t
  type t

  val create : ?timeout:float -> size:int -> (unit -> conn) -> t
  (** [create ~size connect] pools connections produced by [connect]
      (which may raise; dial failures surface as [Error] from
      {!request}).  [timeout] arms each pooled connection's socket
      timeouts.
      @raise Invalid_argument when [size < 1]. *)

  val request : t -> Protocol.request -> (Protocol.response, string) result
  (** Check a connection out (pooled or freshly dialed), run one
      round trip, check it back in on success.  [Error] carries the
      dial or transport diagnostic; the failed connection is closed,
      not re-pooled. *)

  val close_all : t -> unit
  (** Close every idle connection and refuse further checkouts.
      Connections currently checked out are closed by their users'
      failure path (a request on a closed pool returns [Error]). *)
end

(** {1 Retrying sessions} *)

type retry_policy = {
  attempts : int;  (** total attempts, including the first; >= 1 *)
  backoff_seconds : float;  (** base delay before the first retry *)
  backoff_cap_seconds : float;  (** ceiling on any single delay *)
  attempt_timeout : float option;
      (** per-attempt socket timeout (seconds) applied to every
          connection the session opens *)
}

val default_retry_policy : retry_policy
(** 3 attempts, 10 ms base, 250 ms cap, no attempt timeout. *)

type session

val session : ?policy:retry_policy -> seed:int64 -> (unit -> t) -> session
(** [session ~seed connect] retries through connections produced by
    [connect] (called lazily, re-called after a transport failure).
    Equal seeds give identical backoff schedules.
    @raise Invalid_argument when [policy.attempts < 1]. *)

val close_session : session -> unit
(** Close the session's current connection, if any.  The session remains
    usable (the next request reconnects). *)

type outcome = {
  response : (Protocol.response, string) result;  (** the final answer *)
  attempts : int;  (** attempts actually made, >= 1 *)
  retried_transport : int;  (** retries after a transport [Error] *)
  retried_busy : int;  (** retries after BUSY *)
  retried_timeout : int;  (** retries after TIMEOUT *)
}

val request_with_retry : session -> Protocol.request -> outcome
(** Send [frame], retrying per the session policy with full-jitter
    exponential backoff between attempts.  Non-retryable responses
    (RESULT, DEGRADED, ERROR, ...) return immediately; a retryable
    outcome on the last attempt is returned as-is. *)
