(* Byte-level socket I/O shared by the server and the client.

   Writes loop over short counts and retry EINTR, so a large SOLVE body
   crossing the socket buffer (or a signal landing mid-write) cannot
   silently truncate a frame.  Reads go through a bounded line reader
   that enforces a per-frame byte budget *before* buffering, so a
   malicious or broken peer streaming an endless line (or an endless
   body with no END) is rejected with {!Frame_too_big} instead of
   growing the heap without limit — [input_line] has no such bound. *)

exception Frame_too_big

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | written -> write_all fd s (off + written) (len - written)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let send fd s = write_all fd s 0 (String.length s)

let rec read_retry fd buf off len =
  match Unix.read fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd buf off len

type reader = {
  fd : Unix.file_descr;
  max_frame_bytes : int;
  chunk : Bytes.t;
  mutable pending : string;  (* bytes received, not yet returned as lines *)
  mutable frame_bytes : int;  (* bytes consumed since the last new_frame *)
  mutable eof : bool;
}

let default_max_frame_bytes = 1 lsl 20

let create ?(max_frame_bytes = default_max_frame_bytes) fd =
  if max_frame_bytes < 1 then
    invalid_arg "Wire.create: max_frame_bytes must be positive";
  {
    fd;
    max_frame_bytes;
    chunk = Bytes.create 4096;
    pending = "";
    frame_bytes = 0;
    eof = false;
  }

let new_frame r = r.frame_bytes <- 0

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

(* The budget covers everything a frame makes the server hold: consumed
   lines plus whatever is buffered ahead of the next newline.  Checked on
   every buffer growth, so an unterminated line trips the bound at
   [max_frame_bytes], not at allocation failure. *)
let over_budget r = r.frame_bytes + String.length r.pending > r.max_frame_bytes

let rec next_line r =
  match String.index_opt r.pending '\n' with
  | Some i ->
      let line = String.sub r.pending 0 i in
      r.pending <-
        String.sub r.pending (i + 1) (String.length r.pending - i - 1);
      r.frame_bytes <- r.frame_bytes + i + 1;
      if r.frame_bytes > r.max_frame_bytes then raise Frame_too_big;
      Some (strip_cr line)
  | None ->
      if r.eof then
        if r.pending = "" then None
        else begin
          (* A final line without its terminator, like [input_line]. *)
          let line = r.pending in
          r.pending <- "";
          r.frame_bytes <- r.frame_bytes + String.length line;
          Some (strip_cr line)
        end
      else begin
        let n = read_retry r.fd r.chunk 0 (Bytes.length r.chunk) in
        if n = 0 then r.eof <- true
        else r.pending <- r.pending ^ Bytes.sub_string r.chunk 0 n;
        if over_budget r then raise Frame_too_big;
        next_line r
      end

let reader r () = next_line r
