(** Closed-loop load generation against a {!Server} (in-process or over a
    socket): [connections] worker threads each hold one retrying
    {!Client.session} and issue requests back to back from a shared
    workload until it is drained.  Used by the [rip_loadgen] binary and
    the [service] bench. *)

val workload :
  ?seed:int64 ->
  ?distinct_nets:int ->
  ?slack:float ->
  ?deadline_ms:float ->
  ?traced:bool ->
  requests:int ->
  Rip_tech.Process.t ->
  Protocol.request array
(** A deterministic SOLVE workload: [distinct_nets] Section-6 nets
    (default 8) generated from [seed] (default the suite seed), each
    given the budget [slack * tau_min] (default 1.3), repeated
    round-robin to [requests] frames.  Repetition is the point — a
    distinct-net count far below [requests] is what exercises the solve
    cache, mimicking a router re-querying the same global nets during
    timing closure.  [deadline_ms] stamps every frame with a DEADLINE
    header (none by default).  [traced] (default false) stamps every
    frame with its own deterministic root TRACE context
    ({!Rip_obs.Trace.make_context}, scope ["loadgen"], the request index
    as sequence), so traces join across client, router and shard. *)

type result = {
  sent : int;  (** requests issued *)
  solved_fresh : int;  (** RESULT fresh responses *)
  solved_cached : int;  (** RESULT cached responses *)
  degraded : int;  (** DEGRADED fallback responses *)
  timeouts : int;  (** final TIMEOUT answers (retries exhausted) *)
  errors : int;  (** typed ERROR responses *)
  busy : int;  (** final BUSY rejections (retries exhausted) *)
  transport_failures : int;
      (** requests abandoned on a final transport/framing error *)
  retried_transport : int;  (** attempts retried after a transport error *)
  retried_busy : int;  (** attempts retried after BUSY *)
  retried_timeout : int;  (** attempts retried after TIMEOUT *)
  verify_mismatches : int;
      (** RESULT answers whose solution bytes contradicted the first
          answer pinned for the same (net, budget) — always 0 unless
          {!run_multi} ran with [verify:true] *)
  wall_seconds : float;
  throughput : float;  (** responses per wall second *)
  p50 : float;  (** response-latency percentiles, seconds *)
  p95 : float;
  p99 : float;
}

val run :
  connect:(unit -> Client.t) ->
  ?connections:int ->
  ?policy:Client.retry_policy ->
  ?seed:int64 ->
  Protocol.request array ->
  result
(** Drain the workload through [connections] threads (default 4, capped
    at the workload size), each holding one {!Client.session} built from
    [policy] (default {!Client.default_retry_policy}) with a jitter
    stream derived from [seed] (default 1) and the worker index.  Each
    thread measures per-request wall latency including retries;
    percentiles are over all completed requests.  A thread whose request
    fails even after retries stops (its remaining share is picked up by
    the others). *)

type multi = { merged : result; by_endpoint : result array }

val run_multi :
  connects:(unit -> Client.t) array ->
  ?route:(index:int -> Protocol.request -> int) ->
  ?connections:int ->
  ?policy:Client.retry_policy ->
  ?seed:int64 ->
  ?verify:bool ->
  Protocol.request array ->
  multi
(** Drain one workload across several endpoints concurrently.  [route]
    assigns each request (by position and frame) to an endpoint index —
    the client-side mirror of the router's consistent-hash placement;
    the default sends everything to endpoint 0.  Endpoint [e]'s
    partition is served only by sessions built from [connects.(e)],
    [connections] workers each (capped at the partition size).
    [merged] pools every latency sample and uses the overall wall
    clock, so its throughput is the cluster aggregate; [by_endpoint]
    keeps per-shard results for per-shard reconciliation.  With
    [verify] (default false), the first RESULT for each (net, budget)
    pins the solution bytes and any later contradicting RESULT — from
    any endpoint — counts in [verify_mismatches]; DEGRADED answers are
    exempt.
    @raise Invalid_argument on zero endpoints or a [route] result out
    of range. *)

val render : result -> string
(** A human-readable multi-line summary. *)
