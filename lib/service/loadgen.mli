(** Closed-loop load generation against a {!Server} (in-process or over a
    socket): [connections] worker threads each hold one connection and
    issue requests back to back from a shared workload until it is
    drained.  Used by the [rip_loadgen] binary and the [service] bench. *)

val workload :
  ?seed:int64 ->
  ?distinct_nets:int ->
  ?slack:float ->
  requests:int ->
  Rip_tech.Process.t ->
  Protocol.request array
(** A deterministic SOLVE workload: [distinct_nets] Section-6 nets
    (default 8) generated from [seed] (default the suite seed), each
    given the budget [slack * tau_min] (default 1.3), repeated
    round-robin to [requests] frames.  Repetition is the point — a
    distinct-net count far below [requests] is what exercises the solve
    cache, mimicking a router re-querying the same global nets during
    timing closure. *)

type result = {
  sent : int;  (** requests issued *)
  solved_fresh : int;  (** RESULT fresh responses *)
  solved_cached : int;  (** RESULT cached responses *)
  errors : int;  (** typed ERROR responses *)
  busy : int;  (** BUSY rejections *)
  transport_failures : int;
      (** connections abandoned on a transport/framing error *)
  wall_seconds : float;
  throughput : float;  (** responses per wall second *)
  p50 : float;  (** response-latency percentiles, seconds *)
  p95 : float;
  p99 : float;
}

val run :
  connect:(unit -> Client.t) ->
  ?connections:int ->
  Protocol.request array ->
  result
(** Drain the workload through [connections] threads (default 4, capped
    at the workload size).  Each thread measures per-request wall
    latency; percentiles are over all completed requests.  A thread that
    hits a transport error stops (its remaining share is picked up by the
    others). *)

val render : result -> string
(** A human-readable multi-line summary. *)
