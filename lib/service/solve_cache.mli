(** The canonical-form result cache in front of the solver.

    Keys are strings built by {!key} from the exact triple the solver
    reads: the process constants, the net's electrical content
    ({!Rip_net.Net.canonical_digest} — cosmetic names excluded) and the
    budget, all floats rendered at [%.17g].  Budgets are exact-matched:
    a router re-querying the same net under a nearby-but-different budget
    is a miss by design, because RIP's answer is not continuous in the
    budget and serving a neighbour's solution could violate timing.

    Eviction is LRU with a fixed capacity; {!find} and {!add} are
    O(1) and thread-safe (one internal mutex), so worker domains and
    connection threads share one cache.  Values are immutable snapshots —
    callers must not mutate what {!find} returns. *)

type 'a t

val create : capacity:int -> 'a t
(** A cache holding at most [capacity] entries; [capacity = 0] disables
    caching (every lookup misses, every insert is dropped).
    @raise Invalid_argument on a negative capacity. *)

val capacity : 'a t -> int
val size : 'a t -> int

val key :
  process:Rip_tech.Process.t -> net:Rip_net.Net.t -> budget:float -> string
(** The canonical cache key of a solve request.  Process identity is the
    process name plus its repeater RC and power-model constants, so two
    processes differing in any solver-visible float never share keys. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit refreshes the entry's recency.  Counts into
    {!stats}' hits/misses. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or overwrite, refreshing recency); evicts the least recently
    used entry when full. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

val stats : 'a t -> stats
