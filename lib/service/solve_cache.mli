(** The canonical-form result cache in front of the solver.

    Keys are strings built by {!key} from the exact triple the solver
    reads: the process constants, the net's electrical content
    ({!Rip_net.Net.canonical_digest} — cosmetic names excluded) and the
    budget, all floats rendered at [%.17g].  Budgets are exact-matched:
    a router re-querying the same net under a nearby-but-different budget
    is a miss by design, because RIP's answer is not continuous in the
    budget and serving a neighbour's solution could violate timing.

    Eviction is LRU with a fixed capacity; {!find} and {!add} are
    O(1) and thread-safe (one internal mutex), so worker domains and
    connection threads share one cache.  Values are immutable snapshots —
    callers must not mutate what {!find} returns. *)

type 'a t

val create : capacity:int -> 'a t
(** A cache holding at most [capacity] entries; [capacity = 0] disables
    caching (every lookup misses, every insert is dropped).
    @raise Invalid_argument on a negative capacity. *)

val capacity : 'a t -> int
val size : 'a t -> int

val key :
  process:Rip_tech.Process.t -> net:Rip_net.Net.t -> budget:float -> string
(** The canonical cache key of a solve request.  Process identity is the
    process name plus its repeater RC and power-model constants, so two
    processes differing in any solver-visible float never share keys. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit refreshes the entry's recency.  Counts into
    {!stats}' hits/misses.  Digest verification is skipped. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or overwrite, refreshing recency); evicts the least recently
    used entry when full.  The entry carries no digest, so verified
    reads accept it unconditionally. *)

(** {1 Digest-verified entries}

    The service stores each solution together with a digest of its
    rendered body.  Reads recompute the digest and compare: a mismatch
    means the stored value was corrupted (bit rot, a fault-injection
    run, a bug), so the entry is evicted on the spot — the cache
    self-heals and the caller re-solves.  A corrupted entry is therefore
    served zero times. *)

val add_verified : 'a t -> string -> 'a -> digest:string -> unit
(** Like {!add}, attaching the integrity digest. *)

val add_replayed : 'a t -> string -> 'a -> digest:string -> unit
(** {!add_verified}, but counts into {!stats}' [replayed] — the journal
    replay path at boot.  The caller is expected to have verified the
    digest against the replayed bytes already; a mismatched record must
    be rejected before this call, never inserted. *)

val set_on_evict : 'a t -> (string -> unit) -> unit
(** Register eviction feedback: the callback receives the key of every
    entry dropped by capacity eviction or a self-heal (not overwrites —
    the key stays live).  Call once, before the cache is shared; the
    callback runs outside the cache lock (it may do I/O, e.g. journal
    compaction accounting) and must tolerate concurrent invocations. *)

val find_verified : 'a t -> string -> digest_of:('a -> string) -> 'a option
(** Like {!find}, but a hit first recomputes [digest_of value] and
    compares it with the stored digest; on mismatch the entry is removed
    and the lookup counts as a miss plus one [self_heals]. *)

val corrupt : 'a t -> string -> bool
(** Fault/test hook: tamper with the stored digest of an entry so the
    next verified read detects corruption.  Returns [false] when the key
    is absent or the entry carries no digest. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  self_heals : int;  (** corrupted entries detected and evicted on read *)
  replayed : int;  (** entries admitted by journal replay at boot *)
  size : int;
  capacity : int;
}

val stats : 'a t -> stats
