(** The DP-free analytic fallback tier behind every [DEGRADED] answer.

    Shared by the shard server (overload, deadline, worker loss — see
    {!Server}) and the router (price-based load shedding, shards lost
    mid-forward): {!Rip_refine.Min_delay_analytic} plus a short REFINE
    pass when the budget has slack, widths rounded to the coarse
    library, positions re-legalised against forbidden zones.  Total and
    cheap — microseconds to milliseconds, never a DP — with the empty
    insertion as the last resort. *)

val solution :
  process:Rip_tech.Process.t ->
  ?solver:Rip_core.Config.t ->
  budget:float ->
  net:Rip_net.Net.t ->
  unit ->
  Protocol.solution
(** Best-effort solution for [net] under [budget].  [solver] supplies
    the width range, REFINE configuration and coarse library ([None]
    means {!Rip_core.Config.default}).  The result is always legal
    (zones, width range) but its delay may exceed the budget. *)
