module Rip = Rip_core.Rip
module Net = Rip_net.Net
module Zone = Rip_net.Zone
module Solution = Rip_elmore.Solution

(* The analytic fallback tier, shared by the shard server (overload,
   deadline, worker loss) and the router (price-shed requests, shards
   lost mid-forward).  When the full solve is skipped or abandoned, the
   reply still carries a usable insertion: the analytical minimum-delay
   solution, budget-improved by a short REFINE run when it has slack,
   with widths rounded to the coarse library and positions re-legalised
   against the forbidden zones.  Every step is cheap (no DP) and total —
   the empty insertion is the last resort — so a degraded answer is
   produced in microseconds-to-milliseconds regardless of how hostile
   the request was. *)

let nearest_library_width library w =
  Array.fold_left
    (fun best candidate ->
      if Float.abs (candidate -. w) < Float.abs (best -. w) then candidate
      else best)
    library.(0) library

let legalise_positions net length pairs =
  let zones = net.Net.zones in
  let shifted =
    List.map
      (fun (p, w) ->
        if Net.position_legal net p then (p, w)
        else
          let after = Zone.first_allowed_at_or_after zones p in
          let before = Zone.last_allowed_at_or_before zones p in
          let q =
            if after -. p <= p -. before && after < length then after
            else before
          in
          (q, w))
      pairs
  in
  (* Keep strictly increasing interior positions; drop offenders rather
     than shuffling them (a dropped repeater only costs delay, never
     legality). *)
  let _, kept =
    List.fold_left
      (fun (last, acc) (p, w) ->
        if p > last && p < length && Net.position_legal net p then
          (p, (p, w) :: acc)
        else (last, acc))
      (0.0, []) shifted
  in
  List.rev kept

let solution ~process ?solver ~budget ~net () =
  let repeater = process.Rip_tech.Process.repeater in
  let power = process.Rip_tech.Process.power in
  let solver_config = Option.value solver ~default:Rip_core.Config.default in
  let geometry = Rip_net.Geometry.of_net net in
  let length = Rip_net.Geometry.total_length geometry in
  let continuous =
    let analytic =
      Rip_refine.Min_delay_analytic.solve
        ~min_width:solver_config.Rip_core.Config.min_width
        ~max_width:solver_config.Rip_core.Config.max_width geometry repeater
    in
    if analytic.Rip_refine.Min_delay_analytic.delay > budget then
      analytic.Rip_refine.Min_delay_analytic.solution
    else
      (* Slack available: spend a short REFINE run trading it for width.
         Capped iterations keep the fallback fast even on long nets. *)
      let refine_config =
        { solver_config.Rip_core.Config.refine with max_iterations = 16 }
      in
      match
        Rip_refine.Refine.run ~config:refine_config geometry repeater ~budget
          ~initial:analytic.Rip_refine.Min_delay_analytic.solution
      with
      | Some outcome -> outcome.Rip_refine.Refine.solution
      | None -> analytic.Rip_refine.Min_delay_analytic.solution
  in
  let library =
    Rip_dp.Repeater_library.to_array
      solver_config.Rip_core.Config.coarse_library
  in
  let rounded =
    List.map
      (fun (r : Solution.repeater) ->
        (r.position, nearest_library_width library r.width))
      (Solution.repeaters continuous)
  in
  let solution =
    match Solution.create (legalise_positions net length rounded) with
    | s -> s
    | exception Invalid_argument _ -> Solution.empty
  in
  let total_width = Solution.total_width solution in
  {
    Protocol.repeaters =
      List.map
        (fun (r : Solution.repeater) -> (r.position, r.width))
        (Solution.repeaters solution);
    total_width;
    delay = Rip_elmore.Delay.total repeater geometry solution;
    power_watts =
      Rip_tech.Power_model.repeater_power power ~repeater ~total_width;
  }
