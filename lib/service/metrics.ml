module Obs = Rip_obs.Metrics
module Cpu_clock = Rip_numerics.Cpu_clock

type t = {
  registry : Obs.t;
  started : float;  (* monotonic; uptime survives wall-clock steps *)
  requests : Obs.Counter.t;
  solved : Obs.Counter.t;
  errors : Obs.Counter.t;
  rejected_busy : Obs.Counter.t;
  timeouts : Obs.Counter.t;
  degraded : Obs.Counter.t;
  toobig : Obs.Counter.t;
  in_flight : Obs.Gauge.t;
  queue_depth : Obs.Gauge.t;
  queue_wait : Obs.Histogram.t;
  solve_cpu : Obs.Histogram.t;
  dp_columns : Obs.Counter.t;
  dp_labels_pruned : Obs.Counter.t;
  refine_iterations : Obs.Counter.t;
  newton_iterations : Obs.Counter.t;
}

let queue_wait_metric = "rip_queue_wait_seconds"
let solve_cpu_metric = "rip_solve_cpu_seconds"

let create ?cache_stats ?journal_stats () =
  let registry = Obs.create () in
  let started = Cpu_clock.monotonic_seconds () in
  let counter name help = Obs.counter registry ~name ~help in
  Obs.gauge_fn registry ~name:"rip_uptime_seconds"
    ~help:"Seconds since server start (monotonic clock)" (fun () ->
      Cpu_clock.monotonic_seconds () -. started);
  let t =
    {
      registry;
      started;
      requests = counter "rip_requests_total" "SOLVE requests received";
      solved = counter "rip_solved_total" "SOLVE requests answered RESULT";
      errors = counter "rip_errors_total" "SOLVE requests answered ERROR";
      rejected_busy = counter "rip_rejected_busy_total"
          "SOLVE requests answered BUSY";
      timeouts = counter "rip_timeouts_total"
          "SOLVE requests answered TIMEOUT";
      degraded = counter "rip_degraded_total"
          "SOLVE requests answered DEGRADED";
      toobig = counter "rip_toobig_total" "request frames answered TOOBIG";
      in_flight =
        Obs.gauge registry ~name:"rip_in_flight"
          ~help:"SOLVE requests currently holding an admission slot";
      queue_depth =
        Obs.gauge registry ~name:"rip_queue_depth"
          ~help:"solves currently queued or running in the worker pool";
      queue_wait =
        Obs.histogram registry ~name:queue_wait_metric
          ~help:"per-solve wall seconds queued behind the worker pool";
      solve_cpu =
        Obs.histogram registry ~name:solve_cpu_metric
          ~help:"per-solve thread-CPU seconds inside the solver";
      dp_columns =
        counter "rip_dp_columns_total" "DP state frontiers frozen";
      dp_labels_pruned =
        counter "rip_dp_labels_pruned_total"
          "DP labels dropped at frontier freezing (Pareto prune + cap)";
      refine_iterations =
        counter "rip_refine_iterations_total" "REFINE move rounds";
      newton_iterations =
        counter "rip_newton_iterations_total"
          "Newton steps in the KKT width solver";
    }
  in
  (match cache_stats with
  | None -> ()
  | Some stats ->
      let cache_gauge name help read =
        Obs.gauge_fn registry ~name ~help (fun () ->
            float_of_int (read (stats ())))
      in
      cache_gauge "rip_cache_hits" "solve cache hits" (fun s ->
          s.Solve_cache.hits);
      cache_gauge "rip_cache_misses" "solve cache misses" (fun s ->
          s.Solve_cache.misses);
      cache_gauge "rip_cache_evictions" "solve cache LRU evictions" (fun s ->
          s.Solve_cache.evictions);
      cache_gauge "rip_cache_self_heals"
        "cache entries dropped on digest mismatch" (fun s ->
          s.Solve_cache.self_heals);
      cache_gauge "rip_cache_replayed"
        "cache entries admitted from journal replay at boot" (fun s ->
          s.Solve_cache.replayed);
      cache_gauge "rip_cache_size" "solve cache entries" (fun s ->
          s.Solve_cache.size));
  (match journal_stats with
  | None -> ()
  | Some stats ->
      let journal_gauge name help read =
        Obs.gauge_fn registry ~name ~help (fun () ->
            float_of_int (read (stats ())))
      in
      journal_gauge "rip_journal_bytes" "on-disk journal size" (fun s ->
          s.Journal.bytes);
      journal_gauge "rip_journal_segments" "journal segment files" (fun s ->
          s.Journal.segments);
      journal_gauge "rip_journal_live_entries" "journal live records" (fun s ->
          s.Journal.live_entries);
      journal_gauge "rip_journal_dead_bytes"
        "journal bytes held by superseded or evicted records" (fun s ->
          s.Journal.dead_bytes);
      journal_gauge "rip_journal_appends" "journal records appended" (fun s ->
          s.Journal.appends);
      journal_gauge "rip_journal_fsyncs" "journal fsync batches" (fun s ->
          s.Journal.fsyncs);
      journal_gauge "rip_journal_compactions" "journal live-set rewrites"
        (fun s -> s.Journal.compactions));
  t

let incr_requests t = Obs.Counter.incr t.requests
let incr_solved t = Obs.Counter.incr t.solved
let incr_errors t = Obs.Counter.incr t.errors
let incr_busy t = Obs.Counter.incr t.rejected_busy
let incr_timeouts t = Obs.Counter.incr t.timeouts
let incr_degraded t = Obs.Counter.incr t.degraded
let incr_toobig t = Obs.Counter.incr t.toobig

let add_solve_times t ~queue_seconds ~cpu_seconds =
  Obs.Histogram.observe t.queue_wait queue_seconds;
  Obs.Histogram.observe t.solve_cpu cpu_seconds

let incr_dp_columns t = Obs.Counter.incr t.dp_columns
let add_dp_labels_pruned t n = Obs.Counter.add t.dp_labels_pruned n
let incr_refine_iterations t = Obs.Counter.incr t.refine_iterations
let incr_newton_iterations t = Obs.Counter.incr t.newton_iterations
let set_in_flight t n = Obs.Gauge.set t.in_flight (float_of_int n)
let add_queue_depth t delta = Obs.Gauge.add t.queue_depth (float_of_int delta)
let registry t = t.registry
let render t = Obs.render t.registry
let uptime_seconds t = Cpu_clock.monotonic_seconds () -. t.started

let snapshot t ~shard_id ~cache ?journal () =
  let queue_wait = Obs.Histogram.snapshot t.queue_wait in
  let solve_cpu = Obs.Histogram.snapshot t.solve_cpu in
  let q s p = Obs.Histogram.quantile s p in
  let journal_bytes, journal_compactions =
    match journal with
    | None -> (0, 0)
    | Some (s : Journal.stats) -> (s.Journal.bytes, s.Journal.compactions)
  in
  {
    Protocol.shard_id;
    uptime_seconds = uptime_seconds t;
    requests = Obs.Counter.value t.requests;
    solved = Obs.Counter.value t.solved;
    errors = Obs.Counter.value t.errors;
    rejected_busy = Obs.Counter.value t.rejected_busy;
    timeouts = Obs.Counter.value t.timeouts;
    degraded = Obs.Counter.value t.degraded;
    toobig = Obs.Counter.value t.toobig;
    cache_self_heals = cache.Solve_cache.self_heals;
    cache_replayed = cache.Solve_cache.replayed;
    journal_bytes;
    journal_compactions;
    cache_hits = cache.Solve_cache.hits;
    cache_misses = cache.Solve_cache.misses;
    cache_evictions = cache.Solve_cache.evictions;
    cache_size = cache.Solve_cache.size;
    cache_capacity = cache.Solve_cache.capacity;
    queue_wait_seconds = queue_wait.Obs.Histogram.sum;
    solve_cpu_seconds = solve_cpu.Obs.Histogram.sum;
    in_flight = int_of_float (Obs.Gauge.value t.in_flight);
    queue_depth = int_of_float (Obs.Gauge.value t.queue_depth);
    queue_wait_p50 = q queue_wait 0.50;
    queue_wait_p95 = q queue_wait 0.95;
    queue_wait_p99 = q queue_wait 0.99;
    solve_p50 = q solve_cpu 0.50;
    solve_p95 = q solve_cpu 0.95;
    solve_p99 = q solve_cpu 0.99;
  }
