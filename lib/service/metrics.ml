type t = {
  started : float;  (* Unix.gettimeofday at creation *)
  mutex : Mutex.t;
  mutable requests : int;
  mutable solved : int;
  mutable errors : int;
  mutable rejected_busy : int;
  mutable timeouts : int;
  mutable degraded : int;
  mutable toobig : int;
  mutable queue_wait_seconds : float;
  mutable solve_cpu_seconds : float;
}

let create () =
  {
    started = Unix.gettimeofday ();
    mutex = Mutex.create ();
    requests = 0;
    solved = 0;
    errors = 0;
    rejected_busy = 0;
    timeouts = 0;
    degraded = 0;
    toobig = 0;
    queue_wait_seconds = 0.0;
    solve_cpu_seconds = 0.0;
  }

let locked t f =
  Mutex.lock t.mutex;
  let result = f () in
  Mutex.unlock t.mutex;
  result

let incr_requests t = locked t (fun () -> t.requests <- t.requests + 1)
let incr_solved t = locked t (fun () -> t.solved <- t.solved + 1)
let incr_errors t = locked t (fun () -> t.errors <- t.errors + 1)
let incr_busy t = locked t (fun () -> t.rejected_busy <- t.rejected_busy + 1)
let incr_timeouts t = locked t (fun () -> t.timeouts <- t.timeouts + 1)
let incr_degraded t = locked t (fun () -> t.degraded <- t.degraded + 1)
let incr_toobig t = locked t (fun () -> t.toobig <- t.toobig + 1)

let add_solve_times t ~queue_seconds ~cpu_seconds =
  locked t (fun () ->
      t.queue_wait_seconds <- t.queue_wait_seconds +. queue_seconds;
      t.solve_cpu_seconds <- t.solve_cpu_seconds +. cpu_seconds)

let snapshot t ~cache =
  locked t (fun () ->
      {
        Protocol.uptime_seconds = Unix.gettimeofday () -. t.started;
        requests = t.requests;
        solved = t.solved;
        errors = t.errors;
        rejected_busy = t.rejected_busy;
        timeouts = t.timeouts;
        degraded = t.degraded;
        toobig = t.toobig;
        cache_self_heals = cache.Solve_cache.self_heals;
        cache_hits = cache.Solve_cache.hits;
        cache_misses = cache.Solve_cache.misses;
        cache_evictions = cache.Solve_cache.evictions;
        cache_size = cache.Solve_cache.size;
        cache_capacity = cache.Solve_cache.capacity;
        queue_wait_seconds = t.queue_wait_seconds;
        solve_cpu_seconds = t.solve_cpu_seconds;
      })
