(** Request counters and cumulative timing for one server instance.

    Counters are mutated from connection threads and read from any
    thread; a single mutex keeps the snapshot consistent (a STATS frame
    never shows, say, a solved count ahead of its requests count). *)

type t

val create : unit -> t
(** Fresh counters; uptime starts now. *)

val incr_requests : t -> unit
(** One SOLVE request received (before it is classified). *)

val incr_solved : t -> unit
(** One SOLVE answered with RESULT (fresh or cached). *)

val incr_errors : t -> unit
(** One SOLVE answered with a solver ERROR. *)

val incr_busy : t -> unit
(** One SOLVE rejected with BUSY (queue full). *)

val incr_timeouts : t -> unit
(** One SOLVE answered with TIMEOUT (deadline expired before any usable
    result, including expiry at admission). *)

val incr_degraded : t -> unit
(** One SOLVE answered with a DEGRADED analytic fallback (deadline,
    overload or worker loss). *)

val incr_toobig : t -> unit
(** One request frame rejected with TOOBIG (frame byte budget). *)

val add_solve_times : t -> queue_seconds:float -> cpu_seconds:float -> unit
(** Account one fresh solve: time spent queued behind the worker pool and
    thread-CPU time inside the solver. *)

val snapshot : t -> cache:Solve_cache.stats -> Protocol.stats
(** A consistent point-in-time STATS payload, merging the cache's own
    counters. *)
