(** Request counters, gauges and latency histograms for one server
    instance, backed by the lock-free {!Rip_obs.Metrics} registry.

    Counters are mutated from connection threads and read from any
    thread without locking; a STATS frame derives every percentile and
    cumulative sum from one histogram snapshot, so it can never show a
    histogram disagreeing with itself.  Uptime runs on the monotonic
    clock — a wall-clock step must not move it. *)

type t

val create :
  ?cache_stats:(unit -> Solve_cache.stats) ->
  ?journal_stats:(unit -> Journal.stats) ->
  unit ->
  t
(** Fresh instruments; uptime starts now.  When [cache_stats] is given,
    the solve cache's own counters are exposed as scrape-time gauges in
    the Prometheus rendering (they remain owned by the cache); likewise
    [journal_stats] exposes the [rip_journal_*] family for a journaled
    server. *)

val incr_requests : t -> unit
(** One SOLVE request received (before it is classified). *)

val incr_solved : t -> unit
(** One SOLVE answered with RESULT (fresh or cached). *)

val incr_errors : t -> unit
(** One SOLVE answered with a solver ERROR. *)

val incr_busy : t -> unit
(** One SOLVE rejected with BUSY (queue full). *)

val incr_timeouts : t -> unit
(** One SOLVE answered with TIMEOUT (deadline expired before any usable
    result, including expiry at admission). *)

val incr_degraded : t -> unit
(** One SOLVE answered with a DEGRADED analytic fallback (deadline,
    overload or worker loss). *)

val incr_toobig : t -> unit
(** One request frame rejected with TOOBIG (frame byte budget). *)

val add_solve_times : t -> queue_seconds:float -> cpu_seconds:float -> unit
(** Account one fresh solve into the queue-wait and solve-CPU
    histograms (sums and percentiles both derive from them). *)

(** {1 Solver-probe counters}

    Fed by the server's {!Rip_core.Rip.probe} hooks; they aggregate what
    the probes report per event.  All lock-free. *)

val incr_dp_columns : t -> unit
(** One DP state frontier frozen ({!Rip_dp.Power_dp.probe_event}). *)

val add_dp_labels_pruned : t -> int -> unit
(** Labels dropped at that freeze ([collected - kept]). *)

val incr_refine_iterations : t -> unit
(** One REFINE move round ({!Rip_refine.Refine.probe_event}). *)

val incr_newton_iterations : t -> unit
(** One Newton step in the KKT width solver. *)

val set_in_flight : t -> int -> unit
(** Admission slots currently held (call under the admission lock). *)

val add_queue_depth : t -> int -> unit
(** +1 when a solve enters the worker pool, -1 when it leaves. *)

val registry : t -> Rip_obs.Metrics.t
(** The underlying registry — the METRICS verb renders it. *)

val render : t -> string
(** [Rip_obs.Metrics.render (registry t)]: the Prometheus text body of a
    METRICS response. *)

val uptime_seconds : t -> float

val queue_wait_metric : string
(** Name of the queue-wait histogram in the exposition
    (["rip_queue_wait_seconds"]). *)

val solve_cpu_metric : string
(** Name of the solve-CPU histogram (["rip_solve_cpu_seconds"]). *)

val snapshot :
  t ->
  shard_id:string ->
  cache:Solve_cache.stats ->
  ?journal:Journal.stats ->
  unit ->
  Protocol.stats
(** A point-in-time STATS payload, merging the cache's own counters;
    percentile fields are histogram estimates (0 before the first fresh
    solve).  [shard_id] stamps the frame with the answering server's
    identity; [journal] fills the journal fields (0 when absent). *)
