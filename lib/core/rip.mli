(** Algorithm RIP (Figure 6 of the paper): the hybrid repeater insertion
    scheme.

    {ol
    {- run the power DP with a coarse library and coarse uniform candidate
       locations;}
    {- improve the seed with the analytical solver REFINE;}
    {- synthesise a concise refined library (REFINE widths snapped to the
       discrete grid) and a small refined candidate set (REFINE locations
       plus/minus a few fine-pitch slots);}
    {- rerun the power DP on the refined space.}}

    When the coarse DP finds no solution (the coarse library may simply
    lack the right sizes for very tight budgets), line 1 is retried with
    the configured fallback library before giving up; when the final DP is
    infeasible despite the refined space (rare rounding corner), the best
    earlier feasible solution is returned.  Every returned solution is
    legal and meets the budget. *)

type phase_trace = {
  coarse : Rip_dp.Power_dp.result option;
      (** line 1 result ([None] only if even the fallback failed) *)
  used_fallback_library : bool;
  refined : Rip_refine.Refine.outcome option;  (** line 2 result *)
  refined_library : Rip_dp.Repeater_library.t option;  (** line 3 library B *)
  refined_candidates : float list;  (** line 3 location set S *)
  final : Rip_dp.Power_dp.result option;  (** line 4 result *)
  rescue : Rip_dp.Power_dp.result option;
      (** last-resort pass for budgets so tight that every DP grid missed:
          a DP over fine-pitch candidates around the analytical min-delay
          locations ({!Rip_refine.Min_delay_analytic}) with the full
          reference library.  [None] unless it was needed. *)
}

type report = {
  solution : Rip_elmore.Solution.t;
  total_width : float;  (** power proxy p = sum w_i, u *)
  delay : float;  (** seconds, <= budget *)
  power_watts : float;  (** via the process power model, Eq. (3) *)
  runtime_seconds : float;
      (** thread-CPU time of the whole pipeline
          ({!Rip_numerics.Cpu_clock}), valid under parallel sweeps *)
  trace : phase_trace;
}

(** {1 Typed failures}

    Solving can only fail in three ways, each carrying what a caller
    needs to react programmatically — no string matching. *)

type error =
  | Infeasible_budget of { budget : float; tau_min_hint : float option }
      (** no legal insertion meets [budget]; [tau_min_hint] is the net's
          minimum achievable delay when the solver computed one (the
          smallest budget worth retrying with) *)
  | Invalid_net of Validate.violation list
      (** the problem statement is malformed (see
          {!Validate.check_problem}); never empty *)
  | Internal of string
      (** an invariant of the pipeline broke — a bug, not a property of
          the input *)

val pp_error : error Fmt.t

val error_to_string : error -> string
(** [Fmt.str "%a" pp_error]; always non-empty. *)

(** {1 Problem statement and the single solve entry point} *)

type problem = {
  process : Rip_tech.Process.t;
  net : Rip_net.Net.t;
  geometry : Rip_net.Geometry.t option;
      (** a prebuilt prefix-sum geometry of [net], to be reused across
          many budgets of the same net; [None] builds one internally *)
  budget : float;  (** delay budget, seconds *)
}

val problem :
  ?geometry:Rip_net.Geometry.t -> Rip_tech.Process.t -> Rip_net.Net.t ->
  budget:float -> problem
(** Convenience constructor for {!type-problem}. *)

type probe_event =
  | Dp of Rip_dp.Power_dp.probe_event
      (** from every DP pass: coarse, final and rescue — whichever
          backend ran it *)
  | Refine of Rip_refine.Refine.probe_event
      (** from REFINE rounds (and, via [Refine.Newton], the KKT Newton
          iterations when that backend is configured) *)
(** Everything the pipeline can report through [hooks.probe]. *)

type probe = {
  dp : (Rip_dp.Power_dp.probe_event -> unit) option;
  refine : (Rip_refine.Refine.probe_event -> unit) option;
}
(** Pre-[Hooks] probe record, kept only for {!solve_callbacks}. *)

val solve :
  ?config:Config.t -> ?hooks:probe_event Hooks.t -> problem ->
  (report, error) result
(** Solve Problem LPRI.  The only entry point: batch callers build one
    {!Rip_net.Geometry.t} per net and stamp out problems per budget.

    All observation and cancellation goes through one {!Hooks.t} bundle:

    - [hooks.cancel] is a cooperative-cancellation poll threaded through
      every DP pass (candidate-column granularity) and REFINE run
      (iteration granularity).  Returning unit leaves the solve
      bit-identical to one without the hook; raising aborts the pipeline
      with that exception — {!Rip_engine.Cancel.hook} raises [Cancelled],
      which the solve service maps to its deadline/degradation ladder.
    - [hooks.probe] receives every sub-solver event, tagged {!Dp} or
      {!Refine}.  Results are bit-identical with or without it, and when
      absent the sub-solvers allocate nothing for events.
    - [hooks.phase] is a span hook: entering pipeline phase [name]
      (["coarse_dp"], ["refine"], ["final_dp"], ["rescue_dp"]) calls
      [phase name] and the returned closure when the phase ends (also on
      exceptions) — the shape of {!Rip_obs.Trace.begin_span}, without a
      dependency on it.

    The DP backend and frontier cap come from [config.dp]
    ({!Config.dp_options}); every DP pass of one solve shares a single
    label arena, so batch callers amortise allocation by reusing warmed
    capacity across the coarse, final and rescue passes. *)

val solve_callbacks :
  ?config:Config.t -> ?cancel:(unit -> unit) -> ?probe:probe ->
  ?phase:(string -> unit -> unit) -> problem ->
  (report, error) result
[@@ocaml.deprecated
  "Use Rip.solve with ?hooks (Hooks.make ?cancel ?probe ?phase ())."]
(** Pre-[Hooks] calling convention, kept for one release as a thin shim
    over {!solve}. *)

val tau_min : Rip_tech.Process.t -> Rip_net.Geometry.t -> float
(** The timing-target anchor, "the minimum delay of the net": the better
    of the analytical continuous minimum
    ({!Rip_refine.Min_delay_analytic}) and a fine-grid DP minimum
    ({!Config.tau_min_library} at {!Config.tau_min_pitch}). *)
