(* The shared hook bundle, re-exported at the pipeline level: callers of
   [Rip.solve] write [Rip_core.Hooks.make ...] without reaching into the
   numerics layer the type actually lives in (rip_dp and rip_refine
   cannot depend on rip_core, so the definition sits below them). *)
include Rip_numerics.Hooks
