(** Legality and timing checks for insertion solutions (Problem LPRI). *)

type violation =
  | Outside_net of float  (** repeater position beyond [0, L] *)
  | In_forbidden_zone of float
  | Width_out_of_range of float  (** outside the configured [min, max] *)
  | Over_budget of { delay : float; budget : float }
  | Nonpositive_budget of float
      (** the problem statement itself is malformed: a delay budget must
          be a finite positive number *)
  | Geometry_mismatch
      (** a {!Rip.problem} carried a prebuilt geometry derived from a
          different net than the one being solved *)

val pp_violation : violation Fmt.t

val check_problem :
  ?geometry:Rip_net.Geometry.t -> Rip_net.Net.t -> budget:float ->
  violation list
(** Problem-statement checks run before any solving: the budget must be
    finite and positive, and a prebuilt geometry (if supplied) must belong
    to the net.  [Net.t] is already valid by construction, so these are
    the only ways to hand the solver a malformed problem. *)

val check :
  ?min_width:float -> ?max_width:float -> Rip_tech.Process.t ->
  Rip_net.Net.t -> budget:float -> Rip_elmore.Solution.t -> violation list
(** Every LPRI violation of the solution; empty means valid.  Width bounds
    default to accepting any positive width (REFINE's continuous solutions
    are checkable too). *)

val is_valid :
  ?min_width:float -> ?max_width:float -> Rip_tech.Process.t ->
  Rip_net.Net.t -> budget:float -> Rip_elmore.Solution.t -> bool
