module Net = Rip_net.Net
module Zone = Rip_net.Zone
module Geometry = Rip_net.Geometry
module Solution = Rip_elmore.Solution
module Delay = Rip_elmore.Delay

type violation =
  | Outside_net of float
  | In_forbidden_zone of float
  | Width_out_of_range of float
  | Over_budget of { delay : float; budget : float }
  | Nonpositive_budget of float
  | Geometry_mismatch

let pp_violation ppf = function
  | Outside_net x -> Fmt.pf ppf "repeater at %gum is outside the net" x
  | In_forbidden_zone x ->
      Fmt.pf ppf "repeater at %gum sits in a forbidden zone" x
  | Width_out_of_range w -> Fmt.pf ppf "width %gu out of range" w
  | Over_budget { delay; budget } ->
      Fmt.pf ppf "delay %.4gps exceeds budget %.4gps" (delay *. 1e12)
        (budget *. 1e12)
  | Nonpositive_budget b ->
      Fmt.pf ppf "delay budget %.4gps is not a positive finite number"
        (b *. 1e12)
  | Geometry_mismatch ->
      Fmt.pf ppf "the prebuilt geometry belongs to a different net"

let check_problem ?geometry net ~budget =
  let budget_ok = Float.is_finite budget && budget > 0.0 in
  let geometry_ok =
    match geometry with
    | Some g -> Net.equal (Geometry.net g) net
    | None -> true
  in
  (if budget_ok then [] else [ Nonpositive_budget budget ])
  @ if geometry_ok then [] else [ Geometry_mismatch ]

let check ?(min_width = 0.0) ?(max_width = Float.infinity)
    (process : Rip_tech.Process.t) net ~budget solution =
  let length = Net.total_length net in
  let placement_violations =
    List.concat_map
      (fun (r : Solution.repeater) ->
        let position =
          if r.position < 0.0 || r.position > length then
            [ Outside_net r.position ]
          else if Zone.blocked net.Net.zones r.position then
            [ In_forbidden_zone r.position ]
          else []
        in
        let width =
          if r.width < min_width || r.width > max_width then
            [ Width_out_of_range r.width ]
          else []
        in
        position @ width)
      (Solution.repeaters solution)
  in
  let in_range =
    List.for_all
      (fun (r : Solution.repeater) -> r.position >= 0.0 && r.position <= length)
      (Solution.repeaters solution)
  in
  let timing =
    (* Delay is only evaluable when every repeater lies on the net; an
       out-of-range placement is already reported above. *)
    if not in_range then []
    else
      let geometry = Geometry.of_net net in
      if
        Delay.meets_budget process.Rip_tech.Process.repeater geometry solution
          ~budget
      then []
      else
        [ Over_budget
            { delay =
                Delay.total process.Rip_tech.Process.repeater geometry
                  solution;
              budget } ]
  in
  placement_violations @ timing

let is_valid ?min_width ?max_width process net ~budget solution =
  match check ?min_width ?max_width process net ~budget solution with
  | [] -> true
  | _ :: _ -> false
