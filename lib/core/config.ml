module Repeater_library = Rip_dp.Repeater_library

type dp_options = {
  backend : Rip_dp.Power_dp.backend;
  frontier_cap : int option;
}

type t = {
  coarse_library : Repeater_library.t;
  coarse_pitch : float;
  fallback_library : Repeater_library.t;
  refined_granularity : float;
  refined_radius : int;
  refined_pitch : float;
  min_width : float;
  max_width : float;
  refine : Rip_refine.Refine.config;
  refine_passes : int;
  dp : dp_options;
}

let reference_library =
  Repeater_library.range ~min_width:10.0 ~max_width:400.0 ~step:10.0

let tau_min_library =
  Repeater_library.range ~min_width:10.0 ~max_width:400.0 ~step:20.0

let tau_min_pitch = 100.0

let default =
  {
    coarse_library = Repeater_library.uniform ~min_width:80.0 ~step:80.0 ~count:5;
    coarse_pitch = 200.0;
    fallback_library = reference_library;
    refined_granularity = 10.0;
    refined_radius = 10;
    refined_pitch = 50.0;
    min_width = 10.0;
    max_width = 400.0;
    refine = Rip_refine.Refine.default_config;
    refine_passes = 1;
    dp = { backend = Rip_dp.Power_dp.Auto; frontier_cap = Some 128 };
  }

let pp ppf t =
  Fmt.pf ppf
    "@[<v>rip config:@,\
     coarse library %a at %gum pitch@,\
     refined grid %gu, +/-%d slots at %gum@,\
     width range [%gu, %gu]@,\
     dp backend %s, frontier cap %a@]"
    Repeater_library.pp t.coarse_library t.coarse_pitch t.refined_granularity
    t.refined_radius t.refined_pitch t.min_width t.max_width
    (Rip_dp.Power_dp.backend_name t.dp.backend)
    Fmt.(option ~none:(any "none") int)
    t.dp.frontier_cap
