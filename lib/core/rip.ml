module Geometry = Rip_net.Geometry
module Net = Rip_net.Net
module Solution = Rip_elmore.Solution
module Delay = Rip_elmore.Delay
module Power_dp = Rip_dp.Power_dp
module Fast_dp = Rip_dp.Fast_dp
module Min_delay = Rip_dp.Min_delay
module Candidates = Rip_dp.Candidates
module Repeater_library = Rip_dp.Repeater_library
module Refine = Rip_refine.Refine
module Process = Rip_tech.Process
module Power_model = Rip_tech.Power_model

type phase_trace = {
  coarse : Power_dp.result option;
  used_fallback_library : bool;
  refined : Refine.outcome option;
  refined_library : Repeater_library.t option;
  refined_candidates : float list;
  final : Power_dp.result option;
  rescue : Power_dp.result option;
}

type report = {
  solution : Solution.t;
  total_width : float;
  delay : float;
  power_watts : float;
  runtime_seconds : float;
  trace : phase_trace;
}

(* The anchor takes the better of the analytical continuous minimum and a
   fine-grid DP minimum: the analytic descent can miss globally (greedy),
   the DP is grid-limited; their min is a tight yet reachable target. *)
let tau_min (process : Process.t) geometry =
  let net = Geometry.net geometry in
  let candidates = Candidates.uniform net ~pitch:Config.tau_min_pitch in
  let gridded =
    Min_delay.tau_min geometry process.Process.repeater
      ~library:Config.tau_min_library ~candidates
  in
  let analytic =
    Rip_refine.Min_delay_analytic.tau_min geometry process.Process.repeater
  in
  Float.min gridded analytic

(* Line 3: library B from the refined continuous widths, location set S
   around the refined positions. *)
let refined_space (config : Config.t) net (outcome : Refine.outcome) =
  let widths = Solution.widths outcome.Refine.solution in
  let library =
    match widths with
    | [] -> None
    | _ :: _ ->
      Some
        (Repeater_library.round_to_grid
           ~granularity:config.Config.refined_granularity
           ~min_width:config.Config.min_width
           ~max_width:config.Config.max_width widths)
  in
  let candidates =
    Candidates.around net
      ~centers:(Solution.positions outcome.Refine.solution)
      ~radius:config.Config.refined_radius
      ~pitch:config.Config.refined_pitch
  in
  (library, candidates)

let make_report process geometry ~runtime_seconds ~trace
    (dp : Power_dp.result) =
  let repeater = process.Process.repeater in
  {
    solution = dp.Power_dp.solution;
    total_width = dp.Power_dp.total_width;
    delay = Delay.total repeater geometry dp.Power_dp.solution;
    power_watts =
      Power_model.repeater_power process.Process.power ~repeater
        ~total_width:dp.Power_dp.total_width;
    runtime_seconds;
    trace;
  }

type error =
  | Infeasible_budget of { budget : float; tau_min_hint : float option }
  | Invalid_net of Validate.violation list
  | Internal of string

let pp_error ppf = function
  | Infeasible_budget { budget; tau_min_hint } -> (
      Fmt.pf ppf "infeasible: no legal insertion meets %.4g ps"
        (budget *. 1e12);
      match tau_min_hint with
      | Some tau ->
          Fmt.pf ppf " (the net's minimum achievable delay is %.4g ps)"
            (tau *. 1e12)
      | None -> ())
  | Invalid_net violations ->
      Fmt.pf ppf "invalid problem: %a"
        (Fmt.list ~sep:(Fmt.any "; ") Validate.pp_violation)
        violations
  | Internal message -> Fmt.pf ppf "internal error: %s" message

let error_to_string error = Fmt.str "%a" pp_error error

type problem = {
  process : Process.t;
  net : Net.t;
  geometry : Geometry.t option;
  budget : float;
}

let problem ?geometry process net ~budget = { process; net; geometry; budget }

type probe_event =
  | Dp of Power_dp.probe_event
  | Refine of Refine.probe_event

type probe = {
  dp : (Power_dp.probe_event -> unit) option;
  refine : (Refine.probe_event -> unit) option;
}

let solve_prepared ?(config = Config.default) ?(hooks = Hooks.default) process
    geometry ~budget =
  let started = Rip_numerics.Cpu_clock.thread_seconds () in
  (* Sub-solver hook bundles: same cancel token, events re-tagged with the
     pipeline-level constructors.  When [hooks.probe] is [None] the
     contramapped probes are [None] too, so the sub-solvers stay on their
     allocation-free paths. *)
  let dp_hooks = Hooks.contramap (fun e -> Dp e) hooks in
  let refine_hooks = Hooks.contramap (fun e -> Refine e) hooks in
  let in_phase name f = Hooks.in_phase hooks name f in
  let net = Geometry.net geometry in
  let repeater = process.Process.repeater in
  let backend = config.Config.dp.Config.backend in
  let frontier_cap = config.Config.dp.Config.frontier_cap in
  (* One label arena shared by every DP pass of this solve (coarse,
     final-per-round, rescue): the final DPs reuse the capacity the coarse
     pass grew.  Arenas are single-owner; a solve is single-threaded, so
     this is safe. *)
  let arena = Fast_dp.Arena.create () in
  let run_dp geometry repeater ~library ~candidates ~budget =
    Power_dp.run
      (Power_dp.request ~backend ?frontier_cap ~arena ~hooks:dp_hooks geometry
         repeater ~library ~candidates ~budget)
  in
  let coarse_candidates =
    Candidates.uniform net ~pitch:config.Config.coarse_pitch
  in
  (* Line 1, with a fallback library for budgets the coarse grid misses.
     For budgets below what any 200 um-pitch DP can reach, seed REFINE
     with the min-delay insertion instead: the analytical movement plus
     the fine-pitch final DP can still land under the budget. *)
  let coarse, used_fallback_library =
    in_phase "coarse_dp" @@ fun () ->
    match
      run_dp geometry repeater ~library:config.Config.coarse_library
        ~candidates:coarse_candidates ~budget
    with
    | Some r -> (Some r, false)
    | None -> (
        match
          run_dp geometry repeater ~library:config.Config.fallback_library
            ~candidates:coarse_candidates ~budget
        with
        | Some r -> (Some r, true)
        | None ->
            let fastest =
              Min_delay.solve geometry repeater
                ~library:config.Config.fallback_library
                ~candidates:coarse_candidates
            in
            ( Some
                {
                  Power_dp.solution = fastest.Min_delay.solution;
                  total_width =
                    Solution.total_width fastest.Min_delay.solution;
                  delay = fastest.Min_delay.delay;
                  stats = { Power_dp.sites = 0; transitions = 0; labels = 0 };
                },
              true ))
  in
  match coarse with
  | None ->
      Error
        (Infeasible_budget
           { budget; tau_min_hint = Some (tau_min process geometry) })
  | Some coarse_result ->
      (* Lines 2-4, optionally iterated (config.refine_passes): each round
         seeds REFINE with the previous round's discrete solution. *)
      let run_round seed =
        match
          in_phase "refine" (fun () ->
              Rip_refine.Refine.run ~config:config.Config.refine
                ~hooks:refine_hooks geometry repeater ~budget ~initial:seed)
        with
        | None -> (None, None, [], None)
        | Some outcome ->
            let library, candidates = refined_space config net outcome in
            let final =
              match library with
              | None ->
                  (* REFINE emptied the net: the bare wire meets timing. *)
                  Some
                    {
                      Power_dp.solution = Solution.empty;
                      total_width = 0.0;
                      delay = Delay.total repeater geometry Solution.empty;
                      stats =
                        { Power_dp.sites = 2; transitions = 0; labels = 0 };
                    }
              | Some library ->
                  in_phase "final_dp" (fun () ->
                      run_dp geometry repeater ~library ~candidates ~budget)
            in
            (Some outcome, library, candidates, final)
      in
      let refined, refined_library, refined_candidates, first_final =
        run_round coarse_result.Power_dp.solution
      in
      let final =
        let passes = Stdlib.max 1 config.Config.refine_passes in
        let rec iterate best k =
          if k >= passes then best
          else
            match best with
            | None -> best
            | Some (previous : Power_dp.result) -> (
                match run_round previous.Power_dp.solution with
                | _, _, _, Some next
                  when next.Power_dp.total_width
                       < previous.Power_dp.total_width ->
                    iterate (Some next) (k + 1)
                | _, _, _, (Some _ | None) -> best)
        in
        iterate first_final 1
      in
      (* Last resort for budgets every grid missed: fine-pitch DP around
         the analytical min-delay locations with the full library. *)
      let tolerance = 1e-6 *. Float.abs budget in
      let coarse_feasible =
        coarse_result.Power_dp.delay <= budget +. tolerance
      in
      let rescue =
        let need =
          (not coarse_feasible)
          && (match final with
             | Some f -> f.Power_dp.delay > budget +. tolerance
             | None -> true)
        in
        if not need then None
        else
          in_phase "rescue_dp" @@ fun () ->
          let fastest =
            Rip_refine.Min_delay_analytic.solve
              ~min_width:config.Config.min_width
              ~max_width:config.Config.max_width geometry repeater
          in
          let candidates =
            Candidates.around net
              ~centers:
                (Solution.positions
                   fastest.Rip_refine.Min_delay_analytic.solution)
              ~radius:config.Config.refined_radius
              ~pitch:config.Config.refined_pitch
          in
          (* Same trick as line 3: a tiny library synthesised from the
             analytical widths.  The full reference library here would
             reintroduce the pseudo-polynomial blow-up the hybrid scheme
             exists to avoid. *)
          let library =
            match
              Solution.widths fastest.Rip_refine.Min_delay_analytic.solution
            with
            | [] -> config.Config.fallback_library
            | widths ->
                Repeater_library.round_to_grid
                  ~granularity:config.Config.refined_granularity
                  ~min_width:config.Config.min_width
                  ~max_width:config.Config.max_width widths
          in
          run_dp geometry repeater ~library ~candidates ~budget
      in
      let trace =
        { coarse = Some coarse_result; used_fallback_library; refined;
          refined_library; refined_candidates; final; rescue }
      in
      (* Keep the best budget-meeting result among line 4, line 1 and the
         rescue pass.  A min-delay seed that itself misses the budget is
         never returned. *)
      let candidates_for_best =
        List.filter_map
          (fun r -> r)
          [
            final;
            (if coarse_feasible then Some coarse_result else None);
            rescue;
          ]
      in
      let feasible =
        List.filter
          (fun (r : Power_dp.result) ->
            r.Power_dp.delay <= budget +. tolerance)
          candidates_for_best
      in
      let best =
        List.fold_left
          (fun acc (r : Power_dp.result) ->
            match acc with
            | None -> Some r
            | Some b ->
                if r.Power_dp.total_width < b.Power_dp.total_width then Some r
                else acc)
          None feasible
      in
      let runtime_seconds =
        Rip_numerics.Cpu_clock.thread_seconds () -. started
      in
      (match best with
      | None ->
          Error
            (Infeasible_budget
               { budget; tau_min_hint = Some (tau_min process geometry) })
      | Some best ->
          Ok (make_report process geometry ~runtime_seconds ~trace best))

let solve ?config ?hooks { process; net; geometry; budget } =
  match Validate.check_problem ?geometry net ~budget with
  | _ :: _ as violations -> Error (Invalid_net violations)
  | [] ->
      let geometry =
        match geometry with Some g -> g | None -> Geometry.of_net net
      in
      solve_prepared ?config ?hooks process geometry ~budget

let solve_callbacks ?config ?cancel ?probe ?phase problem =
  let probe_fn =
    match probe with
    | None | Some { dp = None; refine = None } -> None
    | Some { dp; refine } ->
        Some
          (function
          | Dp e -> ( match dp with None -> () | Some f -> f e)
          | Refine e -> ( match refine with None -> () | Some f -> f e))
  in
  solve ?config ~hooks:(Hooks.make ?cancel ?probe:probe_fn ?phase ()) problem
