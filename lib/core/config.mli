(** All knobs of Algorithm RIP, with the defaults of the paper's Section 6. *)

type dp_options = {
  backend : Rip_dp.Power_dp.backend;
      (** which DP backend every {!Rip_dp.Power_dp} pass (coarse, final,
          rescue, and the engine's baseline jobs) runs on; default
          [Auto], which resolves per instance against
          {!Rip_dp.Power_dp.auto_cutover} *)
  frontier_cap : int option;
      (** per-state label cap handed to every DP pass: bounds the
          pseudo-polynomial DP on tall nets with tight budgets, at worst
          trading a little power optimality; default [Some 128], far
          above what healthy nets produce.  [None] runs the exact DP. *)
}
(** Backend options shared by all DP passes of a solve. *)

type t = {
  coarse_library : Rip_dp.Repeater_library.t;
      (** RIP line 1 library; default 5 widths, 80u..400u step 80u *)
  coarse_pitch : float;
      (** uniform candidate pitch for line 1, um; default 200 *)
  fallback_library : Rip_dp.Repeater_library.t;
      (** used to retry line 1 if the coarse DP is infeasible; default the
          reference 10u..400u step 10u library *)
  refined_granularity : float;
      (** width grid for RIP line 3 rounding, u; default 10 *)
  refined_radius : int;
      (** candidate slots kept before/after each REFINE location; default 10 *)
  refined_pitch : float;
      (** pitch of those slots, um; default 50 *)
  min_width : float;  (** smallest manufacturable repeater, u; default 10 *)
  max_width : float;  (** largest allowed repeater, u; default 400 *)
  refine : Rip_refine.Refine.config;
  refine_passes : int;
      (** how many REFINE -> refined-DP rounds to run, each seeded with
          the previous round's discrete solution; default 1 as in the
          paper, whose conclusion notes that "REFINE may be performed
          several times for further power reduction" *)
  dp : dp_options;  (** DP backend selection and frontier cap *)
}

val default : t

val reference_library : Rip_dp.Repeater_library.t
(** The full-range discrete library 10u..400u step 10u: the finest design
    space any algorithm in the evaluation is allowed to use. *)

val tau_min_library : Rip_dp.Repeater_library.t
(** Library used when anchoring timing targets at [tau_min]: same range,
    coarser step (the minimum delay is insensitive to library granularity,
    Section 2). *)

val tau_min_pitch : float
(** Candidate pitch for the tau_min anchor, um: finer than the algorithms'
    working pitch so the anchor is a tight lower reference. *)

val pp : t Fmt.t
