(** Known-findings baseline ("file [rule] message" lines, [#] comments)
    so CI fails only on new findings. *)

type entry = { b_file : string; b_rule : string; b_message : string }

val load : string -> entry list
(** Parses a baseline file, ignoring blank and comment lines.
    @raise Failure when the file cannot be read. *)

val filter : baseline:entry list -> Finding.t list -> Finding.t list
(** Drops findings matched by the baseline.  Multiplicity-aware: each
    entry absorbs at most one finding, so a second occurrence of a
    baselined defect is still reported. *)

val render : Finding.t list -> string
(** Renders findings as a baseline file with an explanatory header. *)
