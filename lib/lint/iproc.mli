(** Phase 2 of the interprocedural analysis: call-graph construction
    over one library's summaries, plus the two whole-program rules. *)

type graph

val build : Summary.t list -> graph
(** Indexes every function summary of the library by its qualified name
    and pools the spawn sites. *)

val domain_escape : graph -> emit:(Location.t -> string -> unit) -> unit
(** From every [Domain.spawn]/[Thread.create] target, propagates
    parameter locality and held-lock state along resolved call edges
    and reports every access to shared mutable state made with no lock
    held. *)

val blocking_under_lock :
  graph -> emit:(Location.t -> string -> unit) -> unit
(** Reports calls made with a mutex held that are, or transitively
    reach, a blocking primitive ([Unix.read]/[write]/[connect]/
    [accept]/[select]/[sleepf], [Thread.delay]/[join], [Domain.join]);
    [Condition.wait] is exempt. *)
