(* Rule identifiers and the per-library rule sets.

   The library names here are the dune library names ([rip_dp], ...).
   The split encodes the repo's determinism contract:

   - the solver pipeline (core, dp, tree, net, numerics, elmore, refine,
     tech, workload) must be bit-reproducible, so it gets the
     determinism rules and the wall-clock ban;
   - engine and service are the only libraries allowed to read wall
     clocks (batch/queue telemetry), and the only ones that spawn, so
     they get the race-detector rule instead;
   - obs times spans and histograms, but only on the monotonic stub:
     it keeps the wall-clock ban alongside the race-detector rule;
   - net and service own the wire formats whose float rendering feeds
     the byte-identical cached-replay guarantee. *)

type rule_id =
  | No_poly_compare
  | No_hashtbl_order
  | No_wall_clock
  | Guarded_mutation
  | Float_format_precision
  | Domain_escape
  | Fd_leak
  | Blocking_under_lock
  | Alloc_in_hot_loop

let id = function
  | No_poly_compare -> "no-poly-compare"
  | No_hashtbl_order -> "no-hashtbl-order"
  | No_wall_clock -> "no-wall-clock"
  | Guarded_mutation -> "guarded-mutation"
  | Float_format_precision -> "float-format-precision"
  | Domain_escape -> "domain-escape"
  | Fd_leak -> "fd-leak"
  | Blocking_under_lock -> "blocking-under-lock"
  | Alloc_in_hot_loop -> "alloc-in-hot-loop"

let of_id = function
  | "no-poly-compare" -> Some No_poly_compare
  | "no-hashtbl-order" -> Some No_hashtbl_order
  | "no-wall-clock" -> Some No_wall_clock
  | "guarded-mutation" -> Some Guarded_mutation
  | "float-format-precision" -> Some Float_format_precision
  | "domain-escape" -> Some Domain_escape
  | "fd-leak" -> Some Fd_leak
  | "blocking-under-lock" -> Some Blocking_under_lock
  | "alloc-in-hot-loop" -> Some Alloc_in_hot_loop
  | _ -> None

let all =
  [
    No_poly_compare;
    No_hashtbl_order;
    No_wall_clock;
    Guarded_mutation;
    Float_format_precision;
    Domain_escape;
    Fd_leak;
    Blocking_under_lock;
    Alloc_in_hot_loop;
  ]

(* In the concurrent libraries the interprocedural [Domain_escape] pass
   supersedes the intraprocedural [Guarded_mutation]: it proves the same
   property (spawn-reachable mutable state is lock-guarded or
   thread-local) across call boundaries, so helpers whose callers hold
   the lock no longer need waivers, and closure parameters fed by
   unknown higher-order iterators are no longer assumed local.
   [Guarded_mutation] stays available under --rules and in [all]. *)
let rules_for_library = function
  | "rip_core" | "rip_elmore" | "rip_refine" | "rip_tech" | "rip_workload" ->
      [ No_poly_compare; No_wall_clock ]
  | "rip_dp" ->
      (* The fast DP backend mutates its flat label arenas in place;
         the escape rule rides along so any future attempt to share an
         arena across a spawn gets flagged, and the hot-loop rule
         protects the arena loops' allocation-free property behind the
         backend's measured speedup. *)
      [ No_poly_compare; No_hashtbl_order; No_wall_clock; Domain_escape;
        Alloc_in_hot_loop ]
  | "rip_tree" | "rip_numerics" ->
      [ No_poly_compare; No_hashtbl_order; No_wall_clock ]
  | "rip_net" ->
      [ No_poly_compare; No_hashtbl_order; No_wall_clock;
        Float_format_precision ]
  | "rip_engine" ->
      [ No_poly_compare; Domain_escape; Blocking_under_lock ]
  | "rip_obs" ->
      (* Observability must time on the monotonic stub
         ([Rip_numerics.Cpu_clock.monotonic_seconds], not in the banned
         set), so the wall-clock ban stays on: [Unix.gettimeofday] in
         lib/obs is still a finding.  Prometheus text and Chrome-trace
         JSON are scrape/tooling formats, never byte-compared the way
         cache keys are, so the float-format rule does not apply.  The
         hot-loop rule guards the lock-free counter/histogram paths the
         server touches per request. *)
      [ No_poly_compare; No_hashtbl_order; No_wall_clock; Domain_escape;
        Blocking_under_lock; Alloc_in_hot_loop ]
  | "rip_service" ->
      [ No_poly_compare; No_hashtbl_order; Domain_escape;
        Blocking_under_lock; Fd_leak; Float_format_precision ]
  | "rip_router" ->
      (* The router reads wall clocks only through poll timestamps taken
         with the monotonic stub, owns one listening socket plus
         per-connection fds, and shares per-shard state between the
         poller, the supervisor and connection threads. *)
      [ No_poly_compare; No_hashtbl_order; No_wall_clock; Domain_escape;
        Blocking_under_lock; Fd_leak ]
  | _ -> all

(* The float-format rule protects wire formats (cache keys, protocol
   frames, canonical net text), not human-readable reports.  Inside the
   two wire libraries it therefore applies only to the modules that
   render bytes a cache or client may compare; everywhere else (e.g.
   test fixtures linted with an explicit --rules) it applies to the
   whole unit. *)
let format_rule_applies ~library ~unit_name =
  match library with
  | "rip_net" -> List.mem unit_name [ "Net"; "Net_io" ]
  | "rip_service" -> List.mem unit_name [ "Protocol"; "Solve_cache" ]
  | _ -> true

let parse_rules s =
  String.split_on_char ',' s
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun r -> r <> "")
  |> List.map (fun r ->
         match of_id r with
         | Some rule -> rule
         | None -> invalid_arg (Printf.sprintf "unknown lint rule %S" r))
