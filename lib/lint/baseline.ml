(* Known-findings baseline: CI fails only on findings not present in
   the checked-in file.

   Entries are one finding per line as "file [rule] message" — line and
   column are deliberately dropped so unrelated edits shifting a waived
   finding do not churn the baseline.  Matching is multiplicity-aware:
   a baseline entry absorbs at most one live finding, so a *second*
   occurrence of a baselined defect is still reported. *)

type entry = { b_file : string; b_rule : string; b_message : string }

let key e = e.b_file ^ "\x00" ^ e.b_rule ^ "\x00" ^ e.b_message

let entry_of_finding (f : Finding.t) =
  { b_file = f.Finding.file; b_rule = f.rule; b_message = f.message }

let render_entry e = Printf.sprintf "%s [%s] %s" e.b_file e.b_rule e.b_message

(* "file [rule] message" — the rule id is the first bracketed token. *)
let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.index_opt line '[' with
    | None -> None
    | Some i -> (
        match String.index_from_opt line i ']' with
        | None -> None
        | Some j ->
            let b_file = String.trim (String.sub line 0 i) in
            let b_rule = String.sub line (i + 1) (j - i - 1) in
            let b_message =
              String.trim
                (String.sub line (j + 1) (String.length line - j - 1))
            in
            Some { b_file; b_rule; b_message })

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents ->
      String.split_on_char '\n' contents |> List.filter_map parse_line
  | exception Sys_error msg -> failwith ("cannot read baseline: " ^ msg)

let filter ~baseline findings =
  let budget = Hashtbl.create 32 in
  List.iter
    (fun e ->
      let k = key e in
      Hashtbl.replace budget k
        (1 + Option.value (Hashtbl.find_opt budget k) ~default:0))
    baseline;
  List.filter
    (fun f ->
      let k = key (entry_of_finding f) in
      match Hashtbl.find_opt budget k with
      | Some n when n > 0 ->
          Hashtbl.replace budget k (n - 1);
          false
      | _ -> true)
    findings

let header =
  "# rip_lint baseline: known findings CI tolerates while they are being\n\
   # fixed.  One finding per line as \"file [rule] message\" (line/column\n\
   # dropped so edits elsewhere in the file do not churn entries).\n\
   # Regenerate with: rip_lint --update-baseline <this file> ...\n"

let render findings =
  header
  ^ String.concat ""
      (List.map
         (fun f -> render_entry (entry_of_finding f) ^ "\n")
         findings)
