(** Minimal SARIF 2.1.0 rendering of a finding list. *)

val render : tool_version:string -> Finding.t list -> string
(** One run, one result per finding; columns converted to SARIF's
    1-based convention.  The output is stable (findings keep their
    given order, rule ids are sorted) so CI artifacts diff cleanly. *)
