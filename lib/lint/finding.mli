(** A lint finding anchored at [file:line:col]. *)

type t = {
  file : string;
  line : int;
  col : int;  (** 0-based, compiler convention *)
  offset : int;  (** absolute character offset of the anchor *)
  rule : string;
  message : string;
}

val of_loc : rule:string -> message:string -> Location.t -> t

val to_string : t -> string
(** Renders as [file:line:col [rule-id] message]. *)

val order : t -> t -> int
(** Total order by (file, line, col, rule) for stable reports. *)
