(* A single lint finding, anchored to a source location.  [offset] keeps
   the absolute character position of the anchor so suppression ranges
   (which are collected as character spans) can be matched without
   re-reading the source. *)

type t = {
  file : string;
  line : int;
  col : int;
  offset : int;
  rule : string;
  message : string;
}

let of_loc ~rule ~message (loc : Location.t) =
  let p = loc.Location.loc_start in
  {
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    offset = p.Lexing.pos_cnum;
    rule;
    message;
  }

let to_string f =
  Printf.sprintf "%s:%d:%d [%s] %s" f.file f.line f.col f.rule f.message

let order a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c
