(** Rule identifiers and per-library rule enablement. *)

type rule_id =
  | No_poly_compare
      (** Polymorphic [compare]/[=]/[min]-style calls at types carrying
          [float]: NaN-unsafe and dependent on the runtime value layout. *)
  | No_hashtbl_order
      (** [Hashtbl.fold]/[iter]/[to_seq] whose result is not immediately
          re-sorted: iteration order depends on hashing. *)
  | No_wall_clock
      (** [Unix.gettimeofday]/[Unix.time]/[Sys.time] outside the
          engine/service telemetry layers; solver timing must use
          [Rip_numerics.Cpu_clock]. *)
  | Guarded_mutation
      (** A mutable record field or [ref] captured by a
          [Domain.spawn]/[Thread.create] closure must only be accessed
          between [Mutex.lock]/[unlock] on the owning structure's mutex
          (or be an [Atomic.t]).  Intraprocedural; superseded in the
          concurrent libraries' default sets by [Domain_escape]. *)
  | Float_format_precision
      (** Float conversions in the wire-format libraries must be exactly
          [%.17g] so cached replay stays byte-identical. *)
  | Domain_escape
      (** Interprocedural escape analysis: a [ref] or mutable field
          reachable from a [Domain.spawn]/[Thread.create] closure —
          through any chain of same-library calls — must be accessed
          with a lock held or be provably thread-local ([Atomic.t]
          operations are ordinary calls and naturally exempt). *)
  | Fd_leak
      (** A [Unix.socket]/[openfile]/[accept]/[pipe]/[socketpair]
          result must reach [Unix.close] (directly, via
          [Fun.protect ~finally], or in an exception handler), or
          escape to an owner (returned / stored / handed off); flags
          leaks, unprotected spawn-captures, and double closes. *)
  | Blocking_under_lock
      (** No blocking call ([Unix.read]/[write]/[connect]/[accept]/
          [select]/[sleepf], [Thread.delay]/[join], [Domain.join])
          while a [Mutex] is held, including through same-library
          call chains; [Condition.wait] is exempt (it releases the
          mutex). *)
  | Alloc_in_hot_loop
      (** No boxing allocation (tuple, record, non-constant
          constructor, array literal, closure) inside [for]/[while]
          loops of functions annotated [\[@lint.hot\]]; allocations on
          raise/failwith/invalid_arg paths are exempt. *)

val id : rule_id -> string
val of_id : string -> rule_id option
val all : rule_id list

val rules_for_library : string -> rule_id list
(** Default rule set for a dune library name; unknown names get [all]. *)

val format_rule_applies : library:string -> unit_name:string -> bool
(** Whether [Float_format_precision] applies to a unit: inside the wire
    libraries it is scoped to the byte-rendering modules; elsewhere it
    applies to every unit. [unit_name] is the unprefixed module name
    ("Net_io"). *)

val parse_rules : string -> rule_id list
(** Parses a comma/space-separated rule list.
    @raise Invalid_argument on an unknown rule id. *)
