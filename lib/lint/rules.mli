(** The per-unit rule passes over one compilation unit's typed tree
    (the interprocedural rules live in {!Summary}/{!Iproc} and are
    orchestrated by {!Driver}). *)

type ctx = {
  library : string;  (** dune library name the unit belongs to *)
  modname : string;  (** compilation unit name, e.g. "Rip_net__Net" *)
  float_types : (string, bool) Hashtbl.t;
      (** type name -> declared representation carries a float *)
  source : string option;  (** full source text of the unit, when found *)
  emit : Lint_config.rule_id -> Location.t -> string -> unit;
}

val harvest_float_types :
  (string * Typedtree.structure) list -> (string, bool) Hashtbl.t
(** Builds the float-carrying-type table from the type declarations of
    every unit under lint ([(modname, structure)] pairs), iterated to a
    fixpoint so nesting is recognised. *)

val run : Lint_config.rule_id -> ctx -> Typedtree.structure -> unit
(** Runs one rule, reporting through [ctx.emit]. *)

(**/**)

val bad_float_conversions : string -> string list
(* exposed for unit tests *)
