(* Phase 1 of the interprocedural analysis (DESIGN §7a): one walk per
   compilation unit producing, for every function-like binding, the
   facts phase 2 ([Iproc]) consumes — which non-local mutable roots the
   function reads or writes (and whether a lock was held at the access
   site), which statically-named functions it calls (with the lock
   state and the locality class of every argument), and where it spawns
   threads or domains.

   Locality is tracked the way the intraprocedural guarded-mutation
   rule pioneered, with two deliberate differences:

   - parameters are not assumed local: each access or call argument
     records *which* parameter it roots in ([Param i]), and phase 2
     decides locality per call context;
   - anonymous closures handed to unknown higher-order functions are
     walked inline with the surrounding lock state, but their own
     parameters stay shared — [Array.iter (fun shard -> ...)] over a
     shared array feeds shared elements, which the old rule's
     "case-pattern variables are local" approximation missed.

   Let-bound values stay thread-local (an alias extracted from a shared
   structure is invisible, as before), and let-bound *functions* become
   separate summaries whose bodies are analysed under their callers'
   lock state rather than their definition site's. *)

open Typedtree
module S = Set.Make (String)

type arg_class =
  | Local  (* rooted in a let-bound value of the caller *)
  | Param of int  (* rooted in the caller's i-th parameter *)
  | Opaque  (* free variable, global, or unrenderable: assume shared *)

type access = {
  acc_what : string;  (* "mutable field t.count" / "ref total" / "<expr>" *)
  acc_kind : [ `Read | `Write ];
  acc_class : arg_class;  (* never [Local]: local accesses are dropped *)
  acc_locked : bool;  (* some mutex provably held at the access site *)
  acc_loc : Location.t;
}

type call = {
  call_name : string;  (* canonical: "take", "Ring.lookup", "Unix.read" *)
  call_args : arg_class list;  (* value arguments, in application order *)
  call_locked : bool;
  call_loc : Location.t;
}

type fn = {
  fn_unit : string;  (* unprefixed unit name, "Router" *)
  fn_sub : string;  (* "poll_loop", "Watchdog.arm", "worker.take" *)
  fn_params : int;  (* number of peeled value parameters *)
  mutable fn_accesses : access list;
  mutable fn_calls : call list;
}

type spawn = {
  sp_caller : fn;  (* summary whose body contains the spawn site *)
  sp_target : [ `Named of string | `Closure of fn ];
  sp_loc : Location.t;
}

type t = { fns : fn list; spawns : spawn list }

(* --- Path naming (canonical, library-relative) ---------------------------- *)

let strip_component c =
  (* "Rip_router__Ring" -> "Ring", "Stdlib__Mutex" -> "Mutex" *)
  let n = String.length c in
  let rec last_sep i =
    if i < 0 then None
    else if c.[i] = '_' && c.[i + 1] = '_' then Some i
    else last_sep (i - 1)
  in
  match last_sep (n - 2) with
  | Some i when i + 2 < n -> String.sub c (i + 2) (n - i - 2)
  | _ -> c

let canonical ~library path =
  let alias = String.capitalize_ascii library in
  let parts =
    String.split_on_char '.' (Path.name path) |> List.map strip_component
  in
  let parts =
    match parts with
    | hd :: (_ :: _ as tl) when hd = alias || hd = "Stdlib" -> tl
    | _ -> parts
  in
  String.concat "." parts

let rec render_path e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some (Path.last p)
  | Texp_field (b, _, ld) ->
      Option.map (fun s -> s ^ "." ^ ld.Types.lbl_name) (render_path b)
  | _ -> None

let base_of path =
  match String.index_opt path '.' with
  | Some i -> String.sub path 0 i
  | None -> path

let pat_names pat =
  List.fold_left
    (fun acc id -> S.add (Ident.name id) acc)
    S.empty (pat_bound_idents pat)

let spawners = [ "Domain.spawn"; "Thread.create" ]

(* --- The walk -------------------------------------------------------------- *)

let of_structure ~library ~unit_name str =
  let fns = ref [] in
  let spawns = ref [] in
  let new_fn sub params =
    let f =
      {
        fn_unit = unit_name;
        fn_sub = sub;
        fn_params = params;
        fn_accesses = [];
        fn_calls = [];
      }
    in
    fns := f :: !fns;
    f
  in
  let canon p = canonical ~library p in
  let head_name e =
    match e.exp_desc with Texp_ident (p, _, _) -> Some (canon p) | _ -> None
  in
  (* Peel the Texp_function chain off a binding, collecting one entry
     per value parameter: [Some name] for a simple variable pattern,
     [None] for unit/wildcard/destructuring patterns (still a position,
     but unnameable — accesses through its components read as free
     variables, i.e. shared, which is the conservative direction). *)
  let rec peel_params acc e =
    match e.exp_desc with
    | Texp_function { cases = [ c ]; _ } -> (
        match c.c_guard with
        | Some _ -> (List.rev acc, e)
        | None ->
            let name =
              match c.c_lhs.pat_desc with
              | Tpat_var (id, _) -> Some (Ident.name id)
              | Tpat_alias (_, id, _) -> Some (Ident.name id)
              | _ -> None
            in
            peel_params (name :: acc) c.c_rhs)
    | Texp_function _ ->
        (* [function | A -> ... | B -> ...]: one anonymous scrutinee
           parameter; the cases are walked as the body. *)
        (List.rev (None :: acc), e)
    | _ -> (List.rev acc, e)
  in
  let param_index params =
    List.mapi (fun i n -> (i, n)) params
    |> List.filter_map (fun (i, n) -> Option.map (fun n -> (n, i)) n)
  in
  let lock_op e =
    match e.exp_desc with
    | Texp_apply (f, [ (_, Some m) ]) -> (
        match head_name f with
        | Some "Mutex.lock" ->
            Some (`Lock, Option.value (render_path m) ~default:"?")
        | Some "Mutex.unlock" ->
            Some (`Unlock, Option.value (render_path m) ~default:"?")
        | _ -> None)
    | _ -> None
  in
  let classify params bound e =
    match render_path e with
    | Some p -> (
        let b = base_of p in
        if S.mem b bound then (Local, p)
        else
          match List.assoc_opt b params with
          | Some i -> (Param i, p)
          | None -> (Opaque, p))
    | None -> (
        match e.exp_desc with
        | Texp_constant _ | Texp_construct (_, _, []) -> (Local, "<expr>")
        | _ -> (Opaque, "<expr>"))
  in
  let record_access fn params bound held kind base_expr what loc =
    let cls, path = classify params bound base_expr in
    match cls with
    | Local -> ()
    | cls ->
        fn.fn_accesses <-
          {
            acc_what = what path;
            acc_kind = kind;
            acc_class = cls;
            acc_locked = not (S.is_empty held);
            acc_loc = loc;
          }
          :: fn.fn_accesses
  in
  let record_call fn name args locked loc =
    fn.fn_calls <-
      {
        call_name = name;
        call_args = args;
        call_locked = locked;
        call_loc = loc;
      }
      :: fn.fn_calls
  in
  (* [walk fn params bound held e] accumulates facts about [e] into
     [fn].  [params] maps parameter names to indices; [bound] is the
     set of let/case-bound (thread-local) names; [held] the set of
     mutex keys provably held. *)
  let rec walk fn params bound held e =
    let locked = not (S.is_empty held) in
    match e.exp_desc with
    | Texp_constant _ -> ()
    | Texp_ident (p, _, _) ->
        (* A bare reference to a statically-named value: record an
           argument-less edge so a function handed to a higher-order
           iterator is still analysed (all parameters shared). *)
        let b = Path.last p in
        if not (S.mem b bound || List.mem_assoc b params) then
          record_call fn (canon p) [] locked e.exp_loc
    | Texp_sequence (a, b) -> (
        match lock_op a with
        | Some (`Lock, key) -> walk fn params bound (S.add key held) b
        | Some (`Unlock, key) -> walk fn params bound (S.remove key held) b
        | None ->
            walk fn params bound held a;
            walk fn params bound held b)
    | Texp_let (_, vbs, body) ->
        let is_fn vb =
          match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
          | Tpat_var _, Texp_function _ -> true
          | _ -> false
        in
        (* Function bindings stay *out* of the thread-local set: a bare
           reference to [loop] (say, as a Fun.protect thunk) must
           resolve as a call edge, not read as a local value. *)
        let bound' =
          List.fold_left
            (fun acc vb ->
              if is_fn vb then acc else S.union acc (pat_names vb.vb_pat))
            bound vbs
        in
        List.iter
          (fun vb ->
            match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
            | Tpat_var (id, _), Texp_function _ ->
                (* A let-bound helper becomes its own summary: its body
                   is analysed under the *callers'* lock state, and its
                   captured locals stay thread-local. *)
                let name = Ident.name id in
                let ps, body_e = peel_params [] vb.vb_expr in
                let nested =
                  new_fn (fn.fn_sub ^ "." ^ name) (List.length ps)
                in
                walk_body nested (param_index ps) bound body_e
            | _ -> walk fn params bound' held vb.vb_expr)
          vbs;
        walk fn params bound' held body
    | Texp_function { cases; _ } ->
        (* An anonymous closure handed to an unknown higher-order
           function: assume it runs at this call site (same thread,
           same locks), but its parameters carry whatever the iterator
           feeds it — shared, not local. *)
        List.iter
          (fun c ->
            Option.iter (walk fn params bound held) c.c_guard;
            walk fn params bound held c.c_rhs)
          cases
    | Texp_setfield (b, _, ld, v) ->
        record_access fn params bound held `Write b
          (fun p -> Printf.sprintf "mutable field %s.%s" p ld.Types.lbl_name)
          e.exp_loc;
        walk fn params bound held b;
        walk fn params bound held v
    | Texp_field (b, _, ld) ->
        if ld.Types.lbl_mut = Asttypes.Mutable then
          record_access fn params bound held `Read b
            (fun p -> Printf.sprintf "mutable field %s.%s" p ld.Types.lbl_name)
            e.exp_loc;
        walk fn params bound held b
    | Texp_apply (f, args) -> (
        match head_name f with
        | Some name when List.mem name spawners -> (
            (match
               List.find_opt
                 (fun (lbl, arg) -> lbl = Asttypes.Nolabel && arg <> None)
                 args
             with
            | Some (_, Some a) -> spawn_arg fn params bound held a e.exp_loc
            | _ -> ());
            (* The remaining arguments (the value passed to the new
               thread) are evaluated here, on this thread. *)
            List.iteri
              (fun i (_, arg) ->
                if i > 0 then
                  Option.iter (walk fn params bound held) arg)
              args)
        | Some "Mutex.protect" -> (
            match args with
            | (_, Some m) :: rest ->
                let key = Option.value (render_path m) ~default:"?" in
                let held' = S.add key held in
                List.iter
                  (fun (_, arg) ->
                    Option.iter (walk fn params bound held') arg)
                  rest
            | _ ->
                List.iter
                  (fun (_, arg) -> Option.iter (walk fn params bound held) arg)
                  args)
        | Some "!" -> (
            match args with
            | [ (_, Some r) ] ->
                record_access fn params bound held `Read r
                  (fun p -> Printf.sprintf "ref %s" p)
                  e.exp_loc
            | _ ->
                List.iter
                  (fun (_, arg) -> Option.iter (walk fn params bound held) arg)
                  args)
        | Some (":=" | "incr" | "decr") -> (
            match args with
            | (_, Some r) :: rest ->
                record_access fn params bound held `Write r
                  (fun p -> Printf.sprintf "ref %s" p)
                  e.exp_loc;
                List.iter
                  (fun (_, arg) -> Option.iter (walk fn params bound held) arg)
                  rest
            | _ -> ())
        | Some name ->
            let arg_classes =
              List.filter_map
                (fun (_, arg) ->
                  Option.map (fun a -> fst (classify params bound a)) arg)
                args
            in
            record_call fn name arg_classes locked e.exp_loc;
            List.iter
              (fun (_, arg) -> Option.iter (walk fn params bound held) arg)
              args
        | None ->
            (* Applying a local closure value ([task ()], [reader ()]):
               unresolvable, so only the arguments are inspected. *)
            walk fn params bound held f;
            List.iter
              (fun (_, arg) -> Option.iter (walk fn params bound held) arg)
              args)
    | Texp_match (scrut, cases, _) ->
        walk fn params bound held scrut;
        List.iter
          (fun c ->
            let bound' = S.union bound (pat_names c.c_lhs) in
            Option.iter (walk fn params bound' held) c.c_guard;
            walk fn params bound' held c.c_rhs)
          cases
    | Texp_try (body, cases) ->
        walk fn params bound held body;
        List.iter
          (fun c ->
            let bound' = S.union bound (pat_names c.c_lhs) in
            Option.iter (walk fn params bound' held) c.c_guard;
            walk fn params bound' held c.c_rhs)
          cases
    | Texp_ifthenelse (c, t, f) ->
        walk fn params bound held c;
        walk fn params bound held t;
        Option.iter (walk fn params bound held) f
    | Texp_while (c, b) ->
        walk fn params bound held c;
        walk fn params bound held b
    | Texp_for (id, _, lo, hi, _, body) ->
        walk fn params bound held lo;
        walk fn params bound held hi;
        walk fn params (S.add (Ident.name id) bound) held body
    | _ ->
        let sub =
          {
            Tast_iterator.default_iterator with
            expr = (fun _ child -> walk fn params bound held child);
          }
        in
        Tast_iterator.default_iterator.expr sub e
  and walk_body fn params bound e =
    (* A function body always starts lock-free; locks held by callers
       reach it through the call edge's [call_locked] flag. *)
    match e.exp_desc with
    | Texp_function { cases; _ } ->
        List.iter
          (fun c ->
            let bound' = S.union bound (pat_names c.c_lhs) in
            Option.iter (walk fn params bound' S.empty) c.c_guard;
            walk fn params bound' S.empty c.c_rhs)
          cases
    | _ -> walk fn params bound S.empty e
  and spawn_arg fn params bound held a loc =
    match a.exp_desc with
    | Texp_ident (p, _, _) ->
        spawns := { sp_caller = fn; sp_target = `Named (canon p); sp_loc = loc }
          :: !spawns
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
        (* Partial application: the target runs with *all* parameters
           shared, so the pre-supplied arguments need no classes; they
           are still evaluated on the spawning thread. *)
        spawns := { sp_caller = fn; sp_target = `Named (canon p); sp_loc = loc }
          :: !spawns;
        List.iter
          (fun (_, arg) -> Option.iter (walk fn params bound held) arg)
          args
    | Texp_function _ ->
        (* A literal closure: a fresh summary walked with no locals —
           everything it captures crosses the thread boundary. *)
        let line = loc.Location.loc_start.Lexing.pos_lnum in
        let closure =
          new_fn (Printf.sprintf "%s.<spawn:%d>" fn.fn_sub line) 0
        in
        let ps, body_e = peel_params [] a in
        ignore ps;
        walk_body closure [] S.empty body_e;
        spawns :=
          { sp_caller = fn; sp_target = `Closure closure; sp_loc = loc }
          :: !spawns
    | _ -> walk fn params bound held a
  in
  (* Top-level structure: register one summary per value binding,
     descending into submodules with a qualified [fn_sub]. *)
  let rec do_structure prefix s =
    List.iter (do_item prefix) s.str_items
  and do_item prefix item =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) ->
                let sub = prefix ^ Ident.name id in
                let ps, body_e = peel_params [] vb.vb_expr in
                let f = new_fn sub (List.length ps) in
                walk_body f (param_index ps) S.empty body_e
            | _ ->
                let f = new_fn (prefix ^ "<init>") 0 in
                walk_body f [] S.empty vb.vb_expr)
          vbs
    | Tstr_eval (e, _) ->
        let f = new_fn (prefix ^ "<init>") 0 in
        walk_body f [] S.empty e
    | Tstr_module mb -> (
        match (mb.mb_id, mb.mb_expr.mod_desc) with
        | Some id, Tmod_structure s ->
            do_structure (prefix ^ Ident.name id ^ ".") s
        | Some id, Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _)
          ->
            do_structure (prefix ^ Ident.name id ^ ".") s
        | _ -> ())
    | _ -> ()
  in
  do_structure "" str;
  { fns = List.rev !fns; spawns = List.rev !spawns }
