(* The five rule passes, each a Tast_iterator walk over one unit's typed
   tree.  Rules never look at the parse tree: every check is driven by
   resolved paths ([Path.t]) and inferred types, so aliases, opens and
   operator re-exports cannot dodge them. *)

open Typedtree
module S = Set.Make (String)

type ctx = {
  library : string;
  modname : string;  (* compilation unit name, e.g. "Rip_net__Net" *)
  float_types : (string, bool) Hashtbl.t;
      (* type name -> declared representation carries a float *)
  source : string option;  (* full source text of the unit, when found *)
  emit : Lint_config.rule_id -> Location.t -> string -> unit;
}

(* --- Path naming ---------------------------------------------------------- *)

(* Resolved stdlib paths render as "Stdlib.compare" or, for sub-modules,
   "Stdlib__Hashtbl.fold" / "Stdlib.Hashtbl.fold" depending on how the
   alias was reached.  Normalise all three spellings to the short form
   rules match on ("compare", "Hashtbl.fold"). *)
let drop_prefix ~prefix s =
  if String.starts_with ~prefix s then
    Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

let normalized_name path =
  let s = Path.name path in
  match drop_prefix ~prefix:"Stdlib__" s with
  | Some rest -> rest
  | None -> (
      match drop_prefix ~prefix:"Stdlib." s with Some rest -> rest | None -> s)

let ident_name e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some (normalized_name p)
  | _ -> None

(* --- Float-carrying types ------------------------------------------------- *)

(* [float] reaches the cmt either as the predef path or through the
   [Float.t] alias. *)
let is_float_path p =
  Path.last p = "float"
  ||
  match normalized_name p with
  | "Float.t" -> true
  | _ -> false

(* Structural check, backed by a table of type declarations harvested
   from every unit under lint (see [harvest_float_types]).  Abstract
   types we know nothing about are treated as float-free: a lint must
   not drown real findings in unknown-type noise.  Unqualified (Pident)
   references resolve against the current unit first, then against the
   sticky bare-name pool; qualified references resolve only against
   their full name, so a foreign [X.t] is never confused with a local
   [t]. *)
let rec contains_float tbl ~modname ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
      is_float_path p
      || (match lookup tbl ~modname p with Some b -> b | None -> false)
      || List.exists (contains_float tbl ~modname) args
  | Types.Ttuple l -> List.exists (contains_float tbl ~modname) l
  | Types.Tpoly (t, _) -> contains_float tbl ~modname t
  | _ -> false

and lookup tbl ~modname p =
  match p with
  | Path.Pident id -> (
      let name = Ident.name id in
      match Hashtbl.find_opt tbl (modname ^ "." ^ name) with
      | Some _ as r -> r
      | None -> Hashtbl.find_opt tbl ("#" ^ name))
  | _ -> Hashtbl.find_opt tbl (Path.name p)

type float_kind = Bare | Composite | Clean

let classify tbl ~modname ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) when is_float_path p -> Bare
  | _ -> if contains_float tbl ~modname ty then Composite else Clean

let decl_contains_float tbl ~modname (td : Types.type_declaration) =
  let cf = contains_float tbl ~modname in
  let manifest =
    match td.Types.type_manifest with Some ty -> cf ty | None -> false
  in
  manifest
  ||
  match td.Types.type_kind with
  | Types.Type_record (labels, _) ->
      List.exists (fun l -> cf l.Types.ld_type) labels
  | Types.Type_variant (cstrs, _) ->
      List.exists
        (fun c ->
          match c.Types.cd_args with
          | Types.Cstr_tuple tys -> List.exists cf tys
          | Types.Cstr_record labels ->
              List.exists (fun l -> cf l.Types.ld_type) labels)
        cstrs
  | Types.Type_abstract | Types.Type_open -> false

(* Harvest declarations from every unit, then iterate to a fixpoint so a
   record of records of floats is still recognised.  Each declaration is
   stored under its unit-qualified names ("Rip_net__Net.t" and
   "Rip_net.Net.t") and, sticky-true, under its bare name: a bare-name
   collision can only make the lint stricter, never blinder. *)
let harvest_float_types units =
  let tbl : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  let decls = ref [] in
  List.iter
    (fun (modname, str) ->
      let it =
        {
          Tast_iterator.default_iterator with
          type_declaration =
            (fun sub td ->
              decls := (modname, Ident.name td.typ_id, td.typ_type) :: !decls;
              Tast_iterator.default_iterator.type_declaration sub td);
        }
      in
      it.structure it str)
    units;
  let aliased modname =
    (* Rip_net__Net -> Rip_net.Net *)
    let b = Buffer.create (String.length modname) in
    let n = String.length modname in
    let i = ref 0 in
    while !i < n do
      if !i + 1 < n && modname.[!i] = '_' && modname.[!i + 1] = '_' then begin
        Buffer.add_char b '.';
        i := !i + 2
      end
      else begin
        Buffer.add_char b modname.[!i];
        incr i
      end
    done;
    Buffer.contents b
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 6 do
    changed := false;
    incr rounds;
    List.iter
      (fun (modname, name, td) ->
        let flag = decl_contains_float tbl ~modname td in
        let set key sticky =
          let prev = Hashtbl.find_opt tbl key in
          let next =
            if sticky then flag || Option.value prev ~default:false else flag
          in
          if prev <> Some next then begin
            Hashtbl.replace tbl key next;
            changed := true
          end
        in
        set (modname ^ "." ^ name) false;
        set (aliased modname ^ "." ^ name) false;
        (* Bare-name pool ("#zone"): fallback for unqualified references
           the unit-qualified key missed; sticky-true so a collision can
           only make the lint stricter. *)
        set ("#" ^ name) true)
      !decls
  done;
  tbl

(* --- Rule: no-poly-compare ------------------------------------------------ *)

(* Three-way comparisons are flagged even at bare [float] (polymorphic
   [compare] boxes and runs the generic walker; [Stdlib.min]/[max]
   disagree with [Float.min]/[max] on NaN).  Equality/ordering operators
   at bare float are IEEE-idiomatic and compile to float primitives, so
   only composite (tuple/record/variant/container) float-carrying types
   are flagged for them. *)
let three_way = [ "compare"; "min"; "max" ]
let operators = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

let membership =
  [ "List.mem"; "List.assoc"; "List.assoc_opt"; "List.mem_assoc";
    "List.remove_assoc"; "Array.mem" ]

let first_arg_type ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | Types.Tpoly (t, _) -> (
      match Types.get_desc t with
      | Types.Tarrow (_, a, _, _) -> Some a
      | _ -> None)
  | _ -> None

let no_poly_compare ctx str =
  let expr sub e =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        let name = normalized_name p in
        let is3 = List.mem name three_way in
        let isop = List.mem name operators in
        let ismem = List.mem name membership in
        if is3 || isop || ismem then
          match first_arg_type e.exp_type with
          | None -> ()
          | Some arg -> (
              match classify ctx.float_types ~modname:ctx.modname arg with
              | Bare when is3 ->
                  ctx.emit Lint_config.No_poly_compare e.exp_loc
                    (Printf.sprintf
                       "polymorphic %s on float is NaN-unsafe; use Float.%s"
                       name name)
              | Composite ->
                  ctx.emit Lint_config.No_poly_compare e.exp_loc
                    (Printf.sprintf
                       "polymorphic %s at a float-carrying type; use an \
                        explicit comparator built from Float.compare"
                       name)
              | Bare | Clean -> ()))
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str

(* --- Rule: no-hashtbl-order ----------------------------------------------- *)

let hashtbl_sources =
  [ "Hashtbl.fold"; "Hashtbl.iter"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values" ]

let sorters =
  [ "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq";
    "Array.sort"; "Array.stable_sort"; "Array.fast_sort" ]

let span_of_loc (loc : Location.t) =
  ( loc.Location.loc_start.Lexing.pos_cnum,
    loc.Location.loc_end.Lexing.pos_cnum )

let no_hashtbl_order ctx str =
  (* Pass 1: character spans of every argument to a recognised sort —
     a Hashtbl traversal inside one of these is explicitly re-ordered
     and therefore canonical. *)
  let sorted_spans = ref [] in
  let collect sub e =
    (match e.exp_desc with
    | Texp_apply (f, args) when
        (match ident_name f with
        | Some n -> List.mem n sorters
        | None -> false) ->
        List.iter
          (fun (_, arg) ->
            match arg with
            | Some a -> sorted_spans := span_of_loc a.exp_loc :: !sorted_spans
            | None -> ())
          args
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr = collect } in
  it.structure it str;
  let sanctioned (loc : Location.t) =
    let pos = loc.Location.loc_start.Lexing.pos_cnum in
    List.exists (fun (s, e) -> s <= pos && pos < e) !sorted_spans
  in
  let expr sub e =
    (match e.exp_desc with
    | Texp_ident (p, _, _) ->
        let name = normalized_name p in
        if List.mem name hashtbl_sources && not (sanctioned e.exp_loc) then
          ctx.emit Lint_config.No_hashtbl_order e.exp_loc
            (Printf.sprintf
               "%s iterates in hash order; sort the result explicitly (e.g. \
                List.sort) before it feeds a deterministic path"
               name)
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str

(* --- Rule: no-wall-clock -------------------------------------------------- *)

let wall_clocks = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

let no_wall_clock ctx str =
  let expr sub e =
    (match e.exp_desc with
    | Texp_ident (p, _, _) ->
        let name = normalized_name p in
        if List.mem name wall_clocks then
          ctx.emit Lint_config.No_wall_clock e.exp_loc
            (Printf.sprintf
               "%s reads a process clock; solver code must be \
                clock-free (timing belongs to engine/service telemetry or \
                Rip_numerics.Cpu_clock)"
               name)
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str

(* --- Rule: guarded-mutation ----------------------------------------------- *)

(* Intraprocedural race check.  For every closure handed to
   [Domain.spawn]/[Thread.create] (literal, named function, or partial
   application — one resolution hop through this unit's bindings), walk
   its body tracking the set of mutexes held along each path
   ([Mutex.lock m; ...; Mutex.unlock m] sequences, [Mutex.protect], and
   closures passed to [Fun.protect]).  A read or write of a mutable
   record field or [ref] that the thread did not create locally is a
   finding unless a lock on the same base structure is held.  [Atomic.t]
   operations are ordinary function calls and are naturally exempt.

   Approximations, by design: lock ownership is matched on the base
   identifier of the access path (a lock on [t.mutex] sanctions accesses
   to [t.*]); bodies of locally-defined helper closures are analysed
   with an empty lock set (their call sites are not tracked), so a
   helper whose callers all hold the lock needs a [@lint.allow]
   annotation with a justification. *)

let spawners = [ "Domain.spawn"; "Thread.create" ]

let rec render_path e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some (Path.last p)
  | Texp_field (b, _, ld) ->
      Option.map (fun s -> s ^ "." ^ ld.Types.lbl_name) (render_path b)
  | _ -> None

let base_of path =
  match String.index_opt path '.' with
  | Some i -> String.sub path 0 i
  | None -> path

let pat_names pat =
  List.fold_left
    (fun acc id -> S.add (Ident.name id) acc)
    S.empty (pat_bound_idents pat)

let guarded_mutation ctx str =
  (* Unit-local value bindings, for resolving [Domain.spawn (worker st)]
     to [worker]'s body. *)
  let bindings : (string, expression) Hashtbl.t = Hashtbl.create 64 in
  let record_bindings sub vb =
    (match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) -> Hashtbl.replace bindings (Ident.name id) vb.vb_expr
    | _ -> ());
    Tast_iterator.default_iterator.value_binding sub vb
  in
  let it =
    { Tast_iterator.default_iterator with value_binding = record_bindings }
  in
  it.structure it str;

  let lock_op e =
    match e.exp_desc with
    | Texp_apply (f, [ (_, Some m) ]) -> (
        match ident_name f with
        | Some "Mutex.lock" ->
            Some (`Lock, Option.value (render_path m) ~default:"?")
        | Some "Mutex.unlock" ->
            Some (`Unlock, Option.value (render_path m) ~default:"?")
        | _ -> None)
    | _ -> None
  in
  let report kind what loc =
    let verb = match kind with `Read -> "read" | `Write -> "written" in
    ctx.emit Lint_config.Guarded_mutation loc
      (Printf.sprintf
         "%s is %s by a spawned thread outside a lock on its structure; \
          guard it with the owning mutex or make it Atomic.t"
         what verb)
  in
  let access bound held kind base_expr what loc =
    match render_path base_expr with
    | Some path ->
        let base = base_of path in
        if not (S.mem base bound) then
          let sanctioned =
            S.mem "?" held || S.exists (fun k -> base_of k = base) held
          in
          if not sanctioned then report kind (what path) loc
    | None -> if S.is_empty held then report kind (what "<expr>") loc
  in
  let rec walk bound held e =
    match e.exp_desc with
    | Texp_ident _ | Texp_constant _ -> ()
    | Texp_sequence (a, b) -> (
        match lock_op a with
        | Some (`Lock, key) -> walk bound (S.add key held) b
        | Some (`Unlock, key) -> walk bound (S.remove key held) b
        | None ->
            walk bound held a;
            walk bound held b)
    | Texp_let (_, vbs, body) ->
        let bound' =
          List.fold_left
            (fun acc vb -> S.union acc (pat_names vb.vb_pat))
            bound vbs
        in
        List.iter (fun vb -> walk bound' held vb.vb_expr) vbs;
        walk bound' held body
    | Texp_function { cases; _ } ->
        (* A helper closure defined inside the thread: its call sites are
           unknown, so analyse its body with no locks assumed held. *)
        List.iter
          (fun c ->
            let bound' = S.union bound (pat_names c.c_lhs) in
            Option.iter (walk bound' S.empty) c.c_guard;
            walk bound' S.empty c.c_rhs)
          cases
    | Texp_setfield (b, _, ld, v) ->
        access bound held `Write b
          (fun p -> Printf.sprintf "mutable field %s.%s" p ld.Types.lbl_name)
          e.exp_loc;
        walk bound held b;
        walk bound held v
    | Texp_field (b, _, ld) ->
        if ld.Types.lbl_mut = Asttypes.Mutable then
          access bound held `Read b
            (fun p -> Printf.sprintf "mutable field %s.%s" p ld.Types.lbl_name)
            e.exp_loc;
        walk bound held b
    | Texp_apply (f, args) -> (
        let walk_fun_arg_with_held a =
          (* Closure argument whose body runs with the current locks:
             Fun.protect's thunk/finally and Mutex.protect's body. *)
          match a.exp_desc with
          | Texp_function { cases; _ } ->
              List.iter
                (fun c ->
                  let bound' = S.union bound (pat_names c.c_lhs) in
                  Option.iter (walk bound' held) c.c_guard;
                  walk bound' held c.c_rhs)
                cases
          | _ -> walk bound held a
        in
        match ident_name f with
        | Some "Mutex.protect" -> (
            match args with
            | (_, Some m) :: rest ->
                let key = Option.value (render_path m) ~default:"?" in
                let held' = S.add key held in
                List.iter
                  (fun (_, arg) ->
                    match arg with
                    | Some a -> (
                        match a.exp_desc with
                        | Texp_function { cases; _ } ->
                            List.iter
                              (fun c ->
                                let bound' =
                                  S.union bound (pat_names c.c_lhs)
                                in
                                walk bound' held' c.c_rhs)
                              cases
                        | _ -> walk bound held' a)
                    | None -> ())
                  rest
            | _ -> ())
        | Some "Fun.protect" ->
            List.iter
              (fun (_, arg) -> Option.iter walk_fun_arg_with_held arg)
              args
        | Some "!" -> (
            match args with
            | [ (_, Some r) ] ->
                access bound held `Read r
                  (fun p -> Printf.sprintf "ref %s" p)
                  e.exp_loc
            | _ -> List.iter (fun (_, a) -> Option.iter (walk bound held) a) args)
        | Some (":=" | "incr" | "decr") -> (
            match args with
            | (_, Some r) :: rest ->
                access bound held `Write r
                  (fun p -> Printf.sprintf "ref %s" p)
                  e.exp_loc;
                List.iter (fun (_, a) -> Option.iter (walk bound held) a) rest
            | _ -> ())
        | _ ->
            walk bound held f;
            List.iter (fun (_, a) -> Option.iter (walk bound held) a) args)
    | Texp_match (scrut, cases, _) ->
        walk bound held scrut;
        List.iter
          (fun c ->
            let bound' = S.union bound (pat_names c.c_lhs) in
            Option.iter (walk bound' held) c.c_guard;
            walk bound' held c.c_rhs)
          cases
    | Texp_try (body, cases) ->
        walk bound held body;
        List.iter
          (fun c ->
            let bound' = S.union bound (pat_names c.c_lhs) in
            Option.iter (walk bound' held) c.c_guard;
            walk bound' held c.c_rhs)
          cases
    | Texp_ifthenelse (c, t, f) ->
        walk bound held c;
        walk bound held t;
        Option.iter (walk bound held) f
    | Texp_while (c, b) ->
        walk bound held c;
        walk bound held b
    | Texp_for (id, _, lo, hi, _, body) ->
        walk bound held lo;
        walk bound held hi;
        walk (S.add (Ident.name id) bound) held body
    | _ ->
        (* Generic fallback: visit children with the same lock state. *)
        let sub =
          {
            Tast_iterator.default_iterator with
            expr = (fun _ child -> walk bound held child);
          }
        in
        Tast_iterator.default_iterator.expr sub e
  in
  (* Spawn-target function: every parameter receives a value computed by
     the spawning thread, so parameters are shared, not thread-local. *)
  let rec analyze_fn_body e =
    match e.exp_desc with
    | Texp_function { cases; _ } ->
        List.iter
          (fun c ->
            Option.iter (walk S.empty S.empty) c.c_guard;
            analyze_fn_body c.c_rhs)
          cases
    | _ -> walk S.empty S.empty e
  in
  let resolved = Hashtbl.create 8 in
  let resolve name =
    if not (Hashtbl.mem resolved name) then begin
      Hashtbl.add resolved name ();
      match Hashtbl.find_opt bindings name with
      | Some fn -> analyze_fn_body fn
      | None -> ()
    end
  in
  let analyze_spawn_arg a =
    match a.exp_desc with
    | Texp_ident (p, _, _) -> resolve (Path.last p)
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
        resolve (Path.last p)
    | Texp_function _ -> (
        analyze_fn_body a;
        (* One resolution hop: [fun () -> run shared] is analysed as
           [run] itself. *)
        let rec body e =
          match e.exp_desc with
          | Texp_function { cases = [ c ]; _ } -> body c.c_rhs
          | _ -> e
        in
        match (body a).exp_desc with
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
            resolve (Path.last p)
        | Texp_ident (p, _, _) -> resolve (Path.last p)
        | _ -> ())
    | _ -> analyze_fn_body a
  in
  let expr sub e =
    (match e.exp_desc with
    | Texp_apply (f, args) when
        (match ident_name f with
        | Some n -> List.mem n spawners
        | None -> false) -> (
        match
          List.find_opt
            (fun (lbl, arg) -> lbl = Asttypes.Nolabel && arg <> None)
            args
        with
        | Some (_, Some a) -> analyze_spawn_arg a
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str

(* --- Rule: float-format-precision ----------------------------------------- *)

let format_type_names = [ "format"; "format4"; "format6" ]

let is_format_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> List.mem (Path.last p) format_type_names
  | _ -> false

(* Scan a format-literal source slice for float conversions.  Returns
   the offending conversion specs (anything float-typed that is not
   exactly "%.17g"). *)
let bad_float_conversions text =
  let n = String.length text in
  let bad = ref [] in
  let i = ref 0 in
  while !i < n do
    if text.[!i] = '%' then begin
      let j = ref (!i + 1) in
      while
        !j < n
        && (match text.[!j] with
           | '0' .. '9' | '.' | '-' | '+' | ' ' | '#' | '*' | 'l' | 'L' | 'n'
             ->
               true
           | _ -> false)
      do
        incr j
      done;
      if !j < n then begin
        let spec = String.sub text !i (!j - !i + 1) in
        (match text.[!j] with
        | 'f' | 'F' | 'e' | 'E' | 'g' | 'G' | 'h' | 'H' ->
            if spec <> "%.17g" then bad := spec :: !bad
        | _ -> ());
        i := !j + 1
      end
      else i := n
    end
    else incr i
  done;
  List.rev !bad

let float_format_precision ctx str =
  match ctx.source with
  | None -> ()  (* no source text: literal conversions cannot be checked *)
  | Some source ->
      let seen = Hashtbl.create 16 in
      let expr sub e =
        (if is_format_type e.exp_type then
           let s, fin = span_of_loc e.exp_loc in
           if
             (not (Hashtbl.mem seen (s, fin)))
             && s >= 0
             && fin <= String.length source
             && fin > s
             && source.[s] = '"'
           then begin
             Hashtbl.add seen (s, fin) ();
             List.iter
               (fun spec ->
                 ctx.emit Lint_config.Float_format_precision e.exp_loc
                   (Printf.sprintf
                      "float conversion %S must be \"%%.17g\" so rendered \
                       floats round-trip byte-identically"
                      spec))
               (bad_float_conversions (String.sub source s (fin - s)))
           end);
        Tast_iterator.default_iterator.expr sub e
      in
      let it = { Tast_iterator.default_iterator with expr } in
      it.structure it str

(* --- Rule: fd-leak --------------------------------------------------------- *)

(* Per-function resource tracking of raw file descriptors.  A binding
   whose right-hand side is a creator call is tracked through its scope:

   - used by a whitelisted non-owning call (read/write/bind/listen/
     setsockopt/...): neutral;
   - closed by [Unix.close]: consumed;
   - any other occurrence (returned, stored in a structure, passed to a
     non-whitelisted function): ownership escapes to the receiver, and
     the binding is the receiver's problem, not a leak here;
   - captured by a [Thread.create]/[Domain.spawn] argument: ownership
     moves to the new thread *only if the spawn succeeds*, so the spawn
     must sit under an exception handler that closes the fd;
   - two closes in one straight-line sequence: double close.

   Approximation, by design: a binding with at least one close (or an
   escape) is accepted — per-branch path sensitivity is phase-2 work
   the fixture set documents as out of scope.  "No close anywhere, no
   escape" is the leak shape this rule exists for. *)

let fd_creators =
  [
    ("Unix.socket", `Whole);
    ("Unix.openfile", `Whole);
    ("Unix.accept", `Fst);
    ("Unix.pipe", `Both);
    ("Unix.socketpair", `Both);
  ]

let fd_whitelist =
  [
    "Unix.read"; "Unix.write"; "Unix.write_substring"; "Unix.single_write";
    "Unix.single_write_substring"; "Unix.recv"; "Unix.send";
    "Unix.send_substring"; "Unix.listen"; "Unix.bind"; "Unix.connect";
    "Unix.setsockopt"; "Unix.setsockopt_int"; "Unix.setsockopt_optint";
    "Unix.setsockopt_float"; "Unix.getsockopt"; "Unix.getsockname";
    "Unix.getpeername"; "Unix.shutdown"; "Unix.select"; "Unix.set_nonblock";
    "Unix.clear_nonblock"; "Unix.dup2"; "Unix.in_channel_of_descr";
    "Unix.out_channel_of_descr";
  ]

let is_id id e =
  match e.exp_desc with
  | Texp_ident (Path.Pident i, _, _) -> Ident.same i id
  | _ -> false

let subtree_mentions id e =
  let found = ref false in
  let expr sub child =
    if is_id id child then found := true;
    Tast_iterator.default_iterator.expr sub child
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

let is_close_of id e =
  match e.exp_desc with
  | Texp_apply (f, [ (_, Some a) ]) ->
      (match ident_name f with Some "Unix.close" -> true | _ -> false)
      && is_id id a
  | _ -> false

let subtree_closes id e =
  let found = ref false in
  let expr sub child =
    if is_close_of id child then found := true;
    Tast_iterator.default_iterator.expr sub child
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

let fd_leak ctx str =
  let analyze name id creator scope binding_loc =
    let closes = ref 0 in
    let escaped = ref false in
    let unprotected_spawns = ref [] in
    let rec scan ~protects e =
      match e.exp_desc with
      | Texp_ident _ -> if is_id id e then escaped := true
      | Texp_apply (f, args) -> (
          match ident_name f with
          | Some "Unix.close" -> (
              match args with
              | [ (_, Some a) ] when is_id id a -> incr closes
              | _ ->
                  List.iter
                    (fun (_, a) -> Option.iter (scan ~protects) a)
                    args)
          | Some n when List.mem n spawners ->
              if List.exists
                   (fun (_, a) ->
                     match a with
                     | Some a -> subtree_mentions id a
                     | None -> false)
                   args
                 && not protects
              then unprotected_spawns := e.exp_loc :: !unprotected_spawns
          | Some n when List.mem n fd_whitelist ->
              List.iter
                (fun (_, a) ->
                  match a with
                  | Some a when is_id id a -> ()
                  | Some a -> scan ~protects a
                  | None -> ())
                args
          | _ ->
              scan ~protects f;
              List.iter (fun (_, a) -> Option.iter (scan ~protects) a) args)
      | Texp_try (body, cases) ->
          let handler_closes =
            List.exists (fun c -> subtree_closes id c.c_rhs) cases
          in
          scan ~protects:(protects || handler_closes) body;
          List.iter (fun c -> scan ~protects c.c_rhs) cases
      | Texp_match (scrut, cases, _) ->
          let handler_closes =
            List.exists
              (fun c ->
                match c.c_lhs.pat_desc with
                | Tpat_exception _ -> subtree_closes id c.c_rhs
                | _ -> false)
              cases
          in
          scan ~protects:(protects || handler_closes) scrut;
          List.iter (fun c -> scan ~protects c.c_rhs) cases
      | _ ->
          let sub =
            {
              Tast_iterator.default_iterator with
              expr = (fun _ child -> scan ~protects child);
            }
          in
          Tast_iterator.default_iterator.expr sub e
    in
    scan ~protects:false scope;
    (* Double close: two closes in one straight-line sequence. *)
    let rec chain e =
      match e.exp_desc with
      | Texp_sequence (a, b) -> chain a @ chain b
      | Texp_let (_, vbs, body) ->
          List.concat_map (fun vb -> chain vb.vb_expr) vbs @ chain body
      | _ -> if is_close_of id e then [ e.exp_loc ] else []
    in
    let rec find_chains ~root e =
      (if root then
         match chain e with
         | _ :: second :: _ ->
             ctx.emit Lint_config.Fd_leak second
               (Printf.sprintf "%s is closed twice on the same path" name)
         | _ -> ());
      match e.exp_desc with
      | Texp_sequence (a, b) ->
          find_chains ~root:false a;
          find_chains ~root:false b
      | Texp_let (_, vbs, body) ->
          List.iter (fun vb -> find_chains ~root:false vb.vb_expr) vbs;
          find_chains ~root:false body
      | _ ->
          let sub =
            {
              Tast_iterator.default_iterator with
              expr = (fun _ child -> find_chains ~root:true child);
            }
          in
          Tast_iterator.default_iterator.expr sub e
    in
    find_chains ~root:true scope;
    List.iter
      (fun loc ->
        ctx.emit Lint_config.Fd_leak loc
          (Printf.sprintf
             "%s from %s is captured by a spawned thread with no close on \
              the spawn-failure path; close it in an exception handler \
              around the spawn"
             name creator))
      !unprotected_spawns;
    if !closes = 0 && (not !escaped) && !unprotected_spawns = [] then
      ctx.emit Lint_config.Fd_leak binding_loc
        (Printf.sprintf
           "%s bound from %s is never closed; close it on every path, wrap \
            it in Fun.protect ~finally, or hand it to an owner"
           name creator)
  in
  let creator_of e =
    match e.exp_desc with
    | Texp_apply (f, _) -> (
        match ident_name f with
        | Some n -> (
            match List.assoc_opt n fd_creators with
            | Some pos -> Some (n, pos)
            | None -> None)
        | None -> None)
    | _ -> None
  in
  let tracked_of_pat pos (pat : pattern) =
    match (pos, pat.pat_desc) with
    | `Whole, Tpat_var (id, _) -> [ id ]
    | ((`Fst | `Both) as pos), Tpat_tuple (first :: rest) -> (
        let of_var p =
          match p.pat_desc with Tpat_var (id, _) -> [ id ] | _ -> []
        in
        match pos with
        | `Fst -> of_var first
        | `Both -> of_var first @ List.concat_map of_var rest)
    | _ -> []
  in
  let expr sub e =
    (match e.exp_desc with
    | Texp_let (_, vbs, body) ->
        List.iter
          (fun vb ->
            match creator_of vb.vb_expr with
            | Some (creator, pos) ->
                List.iter
                  (fun id ->
                    analyze (Ident.name id) id creator body vb.vb_pat.pat_loc)
                  (tracked_of_pat pos vb.vb_pat)
            | None -> ())
          vbs
    | Texp_match (scrut, cases, _) -> (
        match creator_of scrut with
        | Some (creator, pos) ->
            List.iter
              (fun c ->
                match c.c_lhs.pat_desc with
                | Tpat_value arg ->
                    List.iter
                      (fun id ->
                        analyze (Ident.name id) id creator c.c_rhs
                          c.c_lhs.pat_loc)
                      (tracked_of_pat pos (arg :> pattern))
                | _ -> ())
              cases
        | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str

(* --- Rule: alloc-in-hot-loop ----------------------------------------------- *)

(* Boxing allocations inside for/while loops of [@lint.hot]-annotated
   functions.  Only direct boxing constructs are flagged (tuples,
   records, non-constant constructors, array literals, closures) —
   allocation hidden behind calls is the callee's business, and [ref]s
   deliberately hoisted per-column in the DP are accepted idiom.
   Allocations feeding raise/failwith/invalid_arg are cold paths and
   exempt. *)

let raising = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let alloc_in_hot_loop ctx str =
  let report loc what fname =
    ctx.emit Lint_config.Alloc_in_hot_loop loc
      (Printf.sprintf
         "%s inside a loop of [@lint.hot] %s; hoist it out of the loop or \
          shrink the hot region"
         what fname)
  in
  let rec hot_walk fname in_loop e =
    match e.exp_desc with
    | Texp_for (_, _, lo, hi, _, body) ->
        hot_walk fname in_loop lo;
        hot_walk fname in_loop hi;
        hot_walk fname true body
    | Texp_while (c, b) ->
        hot_walk fname true c;
        hot_walk fname true b
    | Texp_apply (f, args) when
        (match ident_name f with
        | Some n -> List.mem n raising
        | None -> false) ->
        List.iter (fun (_, a) -> Option.iter (hot_walk fname false) a) args
    | Texp_assert (e', _) -> hot_walk fname false e'
    | Texp_tuple parts ->
        if in_loop then report e.exp_loc "tuple allocation" fname;
        List.iter (hot_walk fname in_loop) parts
    | Texp_record { fields; extended_expression; _ } ->
        if in_loop then report e.exp_loc "record allocation" fname;
        Option.iter (hot_walk fname in_loop) extended_expression;
        Array.iter
          (fun (_, def) ->
            match def with
            | Overridden (_, e') -> hot_walk fname in_loop e'
            | Kept _ -> ())
          fields
    | Texp_array parts ->
        if in_loop then report e.exp_loc "array allocation" fname;
        List.iter (hot_walk fname in_loop) parts
    | Texp_construct (_, cd, args) ->
        if in_loop && args <> [] then
          report e.exp_loc
            (Printf.sprintf "constructor %s allocation" cd.Types.cstr_name)
            fname;
        List.iter (hot_walk fname in_loop) args
    | Texp_function { cases; _ } ->
        if in_loop then begin
          report e.exp_loc "closure allocation" fname;
          (* The closure body runs on call, not per allocation — reset. *)
          List.iter (fun c -> hot_walk fname false c.c_rhs) cases
        end
        else List.iter (fun c -> hot_walk fname false c.c_rhs) cases
    | _ ->
        let sub =
          {
            Tast_iterator.default_iterator with
            expr = (fun _ child -> hot_walk fname in_loop child);
          }
        in
        Tast_iterator.default_iterator.expr sub e
  in
  let value_binding sub vb =
    (if
       List.exists
         (fun a -> a.Parsetree.attr_name.Asttypes.txt = "lint.hot")
         vb.vb_attributes
     then
       let fname =
         match vb.vb_pat.pat_desc with
         | Tpat_var (id, _) -> Ident.name id
         | _ -> "<binding>"
       in
       hot_walk fname false vb.vb_expr);
    Tast_iterator.default_iterator.value_binding sub vb
  in
  let it = { Tast_iterator.default_iterator with value_binding } in
  it.structure it str

(* --- Dispatch ------------------------------------------------------------- *)

let run rule ctx str =
  match rule with
  | Lint_config.No_poly_compare -> no_poly_compare ctx str
  | Lint_config.No_hashtbl_order -> no_hashtbl_order ctx str
  | Lint_config.No_wall_clock -> no_wall_clock ctx str
  | Lint_config.Guarded_mutation -> guarded_mutation ctx str
  | Lint_config.Float_format_precision -> float_format_precision ctx str
  | Lint_config.Fd_leak -> fd_leak ctx str
  | Lint_config.Alloc_in_hot_loop -> alloc_in_hot_loop ctx str
  | Lint_config.Domain_escape | Lint_config.Blocking_under_lock ->
      (* Whole-program rules: phase 2 runs in [Driver] over the pooled
         [Summary]/[Iproc] graph, not per unit. *)
      ()
