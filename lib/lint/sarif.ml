(* Minimal SARIF 2.1.0 emitter.  Only the fields CI viewers actually
   read (ruleId, message.text, one physicalLocation per result) are
   produced; columns are converted from the compiler's 0-based
   convention to SARIF's 1-based one. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render ~tool_version findings =
  let b = Buffer.create 4096 in
  let rule_ids =
    List.sort_uniq String.compare
      (List.map (fun f -> f.Finding.rule) findings)
  in
  Buffer.add_string b
    "{\n\
    \  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [\n\
    \    {\n\
    \      \"tool\": {\n\
    \        \"driver\": {\n\
    \          \"name\": \"rip_lint\",\n";
  Buffer.add_string b
    (Printf.sprintf "          \"version\": %S,\n" tool_version);
  Buffer.add_string b "          \"rules\": [";
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "{\"id\": \"%s\"}" (escape id)))
    rule_ids;
  Buffer.add_string b "]\n        }\n      },\n      \"results\": [";
  List.iteri
    (fun i (f : Finding.t) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n\
           \        {\n\
           \          \"ruleId\": \"%s\",\n\
           \          \"level\": \"error\",\n\
           \          \"message\": {\"text\": \"%s\"},\n\
           \          \"locations\": [\n\
           \            {\n\
           \              \"physicalLocation\": {\n\
           \                \"artifactLocation\": {\"uri\": \"%s\"},\n\
           \                \"region\": {\"startLine\": %d, \"startColumn\": \
            %d}\n\
           \              }\n\
           \            }\n\
           \          ]\n\
           \        }"
           (escape f.rule) (escape f.message) (escape f.file) f.line
           (f.col + 1)))
    findings;
  if findings <> [] then Buffer.add_string b "\n      ";
  Buffer.add_string b "]\n    }\n  ]\n}\n";
  Buffer.contents b
