(* Phase 2 of the interprocedural analysis: a call-graph traversal over
   the per-function summaries of one library.

   Call resolution is per-library: a canonical call name is looked up
   first lexically (siblings of the calling function, then its
   ancestors, then the unit's top level), then as a [Unit.fn] path into
   another unit of the same library.  Cross-library calls stay
   unresolved — each library is linted against its own rule set, so the
   boundary is a documented soundness frontier, not silent noise.

   domain-escape walks every spawn target with "no parameter is local,
   no lock is held" and propagates two facts along call edges: which
   callee parameters are rooted in caller-local values, and whether a
   lock is held (a lock at the call site, or one inherited from further
   up the chain).  Any lock sanctions an access — matching the *right*
   lock across call boundaries is out of scope (intraprocedurally, the
   guarded-mutation rule still checks lock/structure affinity). *)

module S = Set.Make (String)

type graph = {
  by_qual : (string, Summary.fn) Hashtbl.t;
  all_fns : Summary.fn list;
  spawns : Summary.spawn list;
}

let build (summaries : Summary.t list) =
  let by_qual = Hashtbl.create 256 in
  let all_fns = List.concat_map (fun s -> s.Summary.fns) summaries in
  List.iter
    (fun (f : Summary.fn) ->
      Hashtbl.replace by_qual (f.fn_unit ^ "." ^ f.fn_sub) f)
    all_fns;
  {
    by_qual;
    all_fns;
    spawns = List.concat_map (fun s -> s.Summary.spawns) summaries;
  }

(* Scope prefixes a name can resolve under from inside a function,
   innermost first — the function's own nested helpers, then its
   siblings, up to the unit's top level:
   "worker.loop" -> ["worker.loop."; "worker."; ""]. *)
let scope_prefixes sub =
  let parts = String.split_on_char '.' sub in
  let rec drop_last = function
    | [] | [ _ ] -> []
    | x :: tl -> x :: drop_last tl
  in
  let rec prefixes parts =
    match parts with
    | [] -> [ "" ]
    | _ -> (String.concat "." parts ^ ".") :: prefixes (drop_last parts)
  in
  prefixes parts

let resolve graph (caller : Summary.fn) name =
  let find key = Hashtbl.find_opt graph.by_qual key in
  let lexical =
    List.find_map
      (fun prefix -> find (caller.fn_unit ^ "." ^ prefix ^ name))
      (scope_prefixes caller.fn_sub)
  in
  match lexical with
  | Some _ as r -> r
  | None -> if String.contains name '.' then find name else None

(* --- domain-escape --------------------------------------------------------- *)

let locals_sig locals =
  String.init (Array.length locals) (fun i -> if locals.(i) then '1' else '0')

let domain_escape graph ~emit =
  let memo = Hashtbl.create 256 in
  let rec analyze (fn : Summary.fn) locals locked depth =
    let key = (fn.fn_unit ^ "." ^ fn.fn_sub, locals_sig locals, locked) in
    if depth > 60 || Hashtbl.mem memo key then ()
    else begin
      Hashtbl.add memo key ();
      List.iter
        (fun (a : Summary.access) ->
          let shared =
            match a.acc_class with
            | Summary.Opaque -> true
            | Summary.Param i ->
                i >= Array.length locals || not locals.(i)
            | Summary.Local -> false
          in
          if shared && not (a.acc_locked || locked) then
            let verb =
              match a.acc_kind with `Read -> "read" | `Write -> "written"
            in
            emit a.acc_loc
              (Printf.sprintf
                 "%s is %s on a spawn-reachable path with no lock held; \
                  guard it with the owning mutex, make it Atomic.t, or keep \
                  it thread-local"
                 a.acc_what verb))
        fn.fn_accesses;
      List.iter
        (fun (c : Summary.call) ->
          match resolve graph fn c.call_name with
          | None -> ()
          | Some callee ->
              let locals' =
                Array.init callee.fn_params (fun j ->
                    match List.nth_opt c.call_args j with
                    | Some Summary.Local -> true
                    | Some (Summary.Param i) ->
                        i < Array.length locals && locals.(i)
                    | Some Summary.Opaque | None -> false)
              in
              analyze callee locals' (locked || c.call_locked) (depth + 1))
        fn.fn_calls
    end
  in
  List.iter
    (fun (sp : Summary.spawn) ->
      let target =
        match sp.sp_target with
        | `Closure fn -> Some fn
        | `Named name -> resolve graph sp.sp_caller name
      in
      match target with
      | Some fn ->
          (* Everything a spawn target receives or captures crossed the
             thread boundary: no parameter is local, no lock is held. *)
          analyze fn (Array.make fn.fn_params false) false 0
      | None -> ())
    graph.spawns

(* --- blocking-under-lock --------------------------------------------------- *)

(* [Condition.wait] is deliberately absent: it releases the mutex while
   waiting, which is the sanctioned way to block under a lock.
   [Unix.waitpid] is also absent — the supervisor's WNOHANG reaps are
   non-blocking, and a flag-sensitive check is not worth the noise. *)
let blocking_prims =
  [
    "Unix.read"; "Unix.write"; "Unix.write_substring"; "Unix.single_write";
    "Unix.single_write_substring"; "Unix.recv"; "Unix.send";
    "Unix.send_substring"; "Unix.connect"; "Unix.accept"; "Unix.select";
    "Unix.sleep"; "Unix.sleepf"; "Thread.delay"; "Thread.join";
    "Domain.join";
  ]

let blocking_under_lock graph ~emit =
  (* [may_block fn] = the first blocking primitive reachable from [fn]
     through resolved same-library calls, at any lock state. *)
  let memo : (string, string option) Hashtbl.t = Hashtbl.create 256 in
  let rec may_block (fn : Summary.fn) visiting =
    let key = fn.fn_unit ^ "." ^ fn.fn_sub in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
        if S.mem key visiting then None
        else begin
          let visiting = S.add key visiting in
          let r =
            List.find_map
              (fun (c : Summary.call) ->
                if List.mem c.call_name blocking_prims then Some c.call_name
                else
                  match resolve graph fn c.call_name with
                  | Some callee -> may_block callee visiting
                  | None -> None)
              fn.fn_calls
          in
          Hashtbl.replace memo key r;
          r
        end
  in
  List.iter
    (fun (fn : Summary.fn) ->
      List.iter
        (fun (c : Summary.call) ->
          if c.call_locked then
            if List.mem c.call_name blocking_prims then
              emit c.call_loc
                (Printf.sprintf
                   "blocking %s while a mutex is held; move it outside the \
                    lock region (to wait under a lock, use Condition.wait)"
                   c.call_name)
            else
              match resolve graph fn c.call_name with
              | Some callee -> (
                  match may_block callee S.empty with
                  | Some prim ->
                      emit c.call_loc
                        (Printf.sprintf
                           "call to %s may block (reaches %s) while a mutex \
                            is held; move it outside the lock region"
                           c.call_name prim)
                  | None -> ())
              | None -> ())
        fn.fn_calls)
    graph.all_fns
