(** Phase 1 of the interprocedural analysis: per-function summaries of
    mutable-root accesses, statically-resolvable calls, and spawn sites,
    harvested in one walk per compilation unit. *)

type arg_class =
  | Local  (** rooted in a let/case-bound value of the caller *)
  | Param of int  (** rooted in the caller's i-th parameter *)
  | Opaque  (** free variable, global, or unrenderable: assume shared *)

type access = {
  acc_what : string;  (** "mutable field t.count", "ref total", "<expr>" *)
  acc_kind : [ `Read | `Write ];
  acc_class : arg_class;  (** never [Local]: local accesses are dropped *)
  acc_locked : bool;  (** some mutex provably held at the access site *)
  acc_loc : Location.t;
}

type call = {
  call_name : string;
      (** canonical, library-relative: "take", "Ring.lookup",
          "Unix.read" *)
  call_args : arg_class list;  (** value arguments, in application order *)
  call_locked : bool;
  call_loc : Location.t;
}

type fn = {
  fn_unit : string;  (** unprefixed unit name, "Router" *)
  fn_sub : string;  (** "poll_loop", "Watchdog.arm", "worker.take" *)
  fn_params : int;
  mutable fn_accesses : access list;
  mutable fn_calls : call list;
}

type spawn = {
  sp_caller : fn;
  sp_target : [ `Named of string | `Closure of fn ];
  sp_loc : Location.t;
}

type t = { fns : fn list; spawns : spawn list }

val of_structure :
  library:string -> unit_name:string -> Typedtree.structure -> t
(** [of_structure ~library ~unit_name str] summarises every value
    binding of the unit (top level, submodules, and let-bound helper
    functions as separate entries).  [library] drives canonical call
    naming (the "Rip_router__Ring" prefixes are stripped so call names
    match across units of the same library). *)
