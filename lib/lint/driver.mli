(** Loads [.cmt] typed trees and runs the rule engine over them: the
    per-unit rules first, then — when [Domain_escape] or
    [Blocking_under_lock] is requested — the two-phase whole-program
    analysis ([Summary] harvest, [Iproc] call-graph traversal) over
    every unit of the run at once. *)

val run :
  library:string ->
  rules:Lint_config.rule_id list ->
  string list ->
  Finding.t list
(** [run ~library ~rules cmt_paths] lints every implementation unit
    among [cmt_paths] with [rules], applies inline
    [\[@lint.allow "rule-id"\]] suppressions (including to
    interprocedural findings, routed by source file), and returns
    findings sorted by position.  Interface-only and partial cmts are
    skipped.  The call graph is scoped to the units of one invocation —
    one dune library — so cross-library calls are a documented
    soundness frontier. *)
