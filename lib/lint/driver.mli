(** Loads [.cmt] typed trees and runs the rule engine over them. *)

val run :
  library:string ->
  rules:Lint_config.rule_id list ->
  string list ->
  Finding.t list
(** [run ~library ~rules cmt_paths] lints every implementation unit
    among [cmt_paths] with [rules], applies inline
    [\[@lint.allow "rule-id"\]] suppressions, and returns findings
    sorted by position.  Interface-only and partial cmts are skipped. *)
