(* Loads .cmt files, runs the configured rules over each unit, applies
   inline [@lint.allow "rule-id"] suppressions, and returns the sorted
   findings. *)

type unit_info = {
  modname : string;
  structure : Typedtree.structure;
  source : string option;
}

(* dune compiles with paths relative to the build-context root, so a
   cmt's recorded source file ("lib/net/net_io.ml") resolves against
   the recorded build dir when linting on the machine that built it,
   and against an ancestor of the cwd when running sandboxed (the
   action's cwd is the build dir of the dune file that declared it). *)
let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Some contents
  | exception Sys_error _ -> None

let find_source ~builddir fname =
  let candidates =
    fname
    :: Filename.concat builddir fname
    :: List.init 6 (fun depth ->
           let rec up n acc = if n = 0 then acc else up (n - 1) ("../" ^ acc) in
           up (depth + 1) fname)
  in
  List.find_map
    (fun p -> if Sys.file_exists p then read_file p else None)
    candidates

let load_cmt path =
  let cmt = Cmt_format.read_cmt path in
  match cmt.Cmt_format.cmt_annots with
  | Cmt_format.Implementation structure ->
      let source =
        match cmt.Cmt_format.cmt_sourcefile with
        | Some f -> find_source ~builddir:cmt.Cmt_format.cmt_builddir f
        | None -> None
      in
      Some { modname = cmt.Cmt_format.cmt_modname; structure; source }
  | _ -> None

(* --- Suppressions --------------------------------------------------------- *)

(* [@lint.allow "rule-id ..."] on an expression or a let-binding
   suppresses the named rules (all rules when the payload is empty)
   within the attributed node's span; a floating [@@@lint.allow ...]
   suppresses them for the whole unit. *)

type suppression = {
  sup_rules : string list option;  (* None = every rule *)
  sup_start : int;
  sup_stop : int;
}

let allow_payload (attr : Parsetree.attribute) =
  if attr.Parsetree.attr_name.Asttypes.txt <> "lint.allow" then None
  else
    match attr.Parsetree.attr_payload with
    | Parsetree.PStr
        [
          {
            Parsetree.pstr_desc =
              Parsetree.Pstr_eval
                ( {
                    Parsetree.pexp_desc =
                      Parsetree.Pexp_constant
                        (Parsetree.Pconst_string (ids, _, _));
                    _;
                  },
                  _ );
            _;
          };
        ] ->
        let rules =
          String.split_on_char ',' ids
          |> List.concat_map (String.split_on_char ' ')
          |> List.filter (fun r -> r <> "")
        in
        Some (if rules = [] then None else Some rules)
    | Parsetree.PStr [] -> Some None
    | _ -> Some None

let collect_suppressions structure =
  let acc = ref [] in
  let add attrs (loc : Location.t) =
    List.iter
      (fun attr ->
        match allow_payload attr with
        | Some sup_rules ->
            acc :=
              {
                sup_rules;
                sup_start = loc.Location.loc_start.Lexing.pos_cnum;
                sup_stop = loc.Location.loc_end.Lexing.pos_cnum;
              }
              :: !acc
        | None -> ())
      attrs
  in
  let open Tast_iterator in
  let expr sub e =
    add e.Typedtree.exp_attributes e.Typedtree.exp_loc;
    default_iterator.expr sub e
  in
  let value_binding sub vb =
    add vb.Typedtree.vb_attributes vb.Typedtree.vb_loc;
    default_iterator.value_binding sub vb
  in
  let structure_item sub item =
    (match item.Typedtree.str_desc with
    | Typedtree.Tstr_attribute attr -> (
        match allow_payload attr with
        | Some sup_rules ->
            acc := { sup_rules; sup_start = 0; sup_stop = max_int } :: !acc
        | None -> ())
    | _ -> ());
    default_iterator.structure_item sub item
  in
  let it = { default_iterator with expr; value_binding; structure_item } in
  it.structure it structure;
  !acc

let suppressed suppressions (f : Finding.t) =
  List.exists
    (fun s ->
      s.sup_start <= f.Finding.offset
      && f.Finding.offset < s.sup_stop
      && match s.sup_rules with
         | None -> true
         | Some rules -> List.mem f.Finding.rule rules)
    suppressions

(* --- Entry point ---------------------------------------------------------- *)

let dedup findings =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (f : Finding.t) ->
      let key = (f.file, f.line, f.col, f.rule, f.message) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    findings

(* "Rip_net__Net_io" -> "Net_io": split at the rightmost "__" *)
let unit_name_of modname =
  let n = String.length modname in
  let rec last_sep i =
    if i < 0 then None
    else if modname.[i] = '_' && modname.[i + 1] = '_' then Some i
    else last_sep (i - 1)
  in
  match last_sep (n - 2) with
  | Some i when i + 2 < n -> String.sub modname (i + 2) (n - i - 2)
  | _ -> modname

(* Source path a unit's findings will carry, for routing the
   whole-program phase's findings back to the right suppression set. *)
let file_of_unit u =
  match u.structure.Typedtree.str_items with
  | item :: _ ->
      Some item.Typedtree.str_loc.Location.loc_start.Lexing.pos_fname
  | [] -> None

let run ~library ~rules paths =
  let units = List.filter_map load_cmt paths in
  let float_types =
    Rules.harvest_float_types
      (List.map (fun u -> (u.modname, u.structure)) units)
  in
  let sups_by_file = Hashtbl.create 16 in
  (* Phase 0: the per-unit rules, exactly as before. *)
  let per_unit =
    units
    |> List.concat_map (fun u ->
           let findings = ref [] in
           let ctx =
             {
               Rules.library;
               modname = u.modname;
               float_types;
               source = u.source;
               emit =
                 (fun rule loc message ->
                   findings :=
                     Finding.of_loc ~rule:(Lint_config.id rule) ~message loc
                     :: !findings);
             }
           in
           let unit_name = unit_name_of u.modname in
           let unit_rules =
             List.filter
               (fun rule ->
                 match rule with
                 | Lint_config.Float_format_precision ->
                     Lint_config.format_rule_applies ~library ~unit_name
                 | _ -> true)
               rules
           in
           List.iter (fun rule -> Rules.run rule ctx u.structure) unit_rules;
           let sups = collect_suppressions u.structure in
           Option.iter
             (fun file -> Hashtbl.replace sups_by_file file sups)
             (file_of_unit u);
           List.filter (fun f -> not (suppressed sups f)) !findings)
  in
  (* Phases 1–2: summaries over every unit at once, then the
     interprocedural rules over the pooled call graph.  Suppressions
     still apply — a finding lands in some unit's source file, and that
     unit's [@lint.allow] spans cover it. *)
  let interproc =
    let want_escape = List.mem Lint_config.Domain_escape rules in
    let want_blocking = List.mem Lint_config.Blocking_under_lock rules in
    if not (want_escape || want_blocking) then []
    else begin
      let summaries =
        List.map
          (fun u ->
            Summary.of_structure ~library
              ~unit_name:(unit_name_of u.modname) u.structure)
          units
      in
      let graph = Iproc.build summaries in
      let findings = ref [] in
      let emit rule loc message =
        findings :=
          Finding.of_loc ~rule:(Lint_config.id rule) ~message loc
          :: !findings
      in
      if want_escape then
        Iproc.domain_escape graph ~emit:(emit Lint_config.Domain_escape);
      if want_blocking then
        Iproc.blocking_under_lock graph
          ~emit:(emit Lint_config.Blocking_under_lock);
      List.filter
        (fun (f : Finding.t) ->
          match Hashtbl.find_opt sups_by_file f.Finding.file with
          | Some sups -> not (suppressed sups f)
          | None -> true)
        !findings
    end
  in
  per_unit @ interproc |> dedup |> List.sort Finding.order
