type status =
  | Converged of int
  | Max_iterations
  | Diverged

type result = {
  solution : float array;
  residual : float;
  status : status;
}

type probe_event = Iteration of { iteration : int; residual_norm : float }

let max_norm v =
  Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 v

let all_finite v = Array.for_all Float.is_finite v

let solve_system ~residual ~jacobian ~init ?(tol = 1e-10) ?(max_iter = 60)
    ?(damping = 1.0) ?lower_bounds ?(hooks = Hooks.default) () =
  let n = Array.length init in
  let notify k norm =
    match hooks.Hooks.probe with
    | None -> ()
    | Some f -> f (Iteration { iteration = k; residual_norm = norm })
  in
  let respects_bounds x =
    match lower_bounds with
    | None -> true
    | Some lb ->
        let ok = ref true in
        for i = 0 to n - 1 do
          if x.(i) < lb.(i) then ok := false
        done;
        !ok
  in
  let rec iterate x fx norm k =
    (* Step-granularity cancellation poll; [Hooks.default] never fires. *)
    hooks.Hooks.cancel ();
    if norm <= tol then { solution = x; residual = norm; status = Converged k }
    else if k >= max_iter then
      { solution = x; residual = norm; status = Max_iterations }
    else
      match jacobian x with
      | exception _ -> { solution = x; residual = norm; status = Diverged }
      | jac -> (
          match Matrix.solve jac fx with
          | exception Matrix.Singular ->
              { solution = x; residual = norm; status = Diverged }
          | step ->
              (* Backtracking line search on the residual norm. *)
              let rec try_step alpha attempts =
                if attempts > 40 then None
                else
                  let candidate =
                    Array.init n (fun i -> x.(i) -. (alpha *. step.(i)))
                  in
                  if not (respects_bounds candidate) then
                    try_step (alpha /. 2.0) (attempts + 1)
                  else
                    let fc = residual candidate in
                    if all_finite fc && (max_norm fc < norm || alpha < 1e-6)
                    then Some (candidate, fc)
                    else try_step (alpha /. 2.0) (attempts + 1)
              in
              (match try_step damping 0 with
              | None -> { solution = x; residual = norm; status = Diverged }
              | Some (x', fx') ->
                  let norm' = max_norm fx' in
                  notify (k + 1) norm';
                  iterate x' fx' norm' (k + 1)))
  in
  let f0 = residual init in
  if not (all_finite f0) then
    { solution = init; residual = Float.infinity; status = Diverged }
  else iterate (Array.copy init) f0 (max_norm f0) 0

let solve_scalar ~f ~df ~init ?(tol = 1e-12) ?(max_iter = 80) () =
  let rec loop x k =
    if k >= max_iter then None
    else
      let fx = f x in
      if not (Float.is_finite fx) then None
      else if Float.abs fx <= tol then Some x
      else
        let d = df x in
        if d = 0.0 || not (Float.is_finite d) then None
        else loop (x -. (fx /. d)) (k + 1)
  in
  loop init 0
