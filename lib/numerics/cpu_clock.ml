external thread_seconds_raw : unit -> float = "rip_cpu_clock_thread_seconds"

let available = thread_seconds_raw () >= 0.0

let thread_seconds () =
  if available then thread_seconds_raw () else Sys.time ()
