external thread_seconds_raw : unit -> float = "rip_cpu_clock_thread_seconds"

let available = thread_seconds_raw () >= 0.0

let thread_seconds () =
  (* [Sys.time] is the documented portability fallback when the
     per-thread clock primitive is unavailable: this module IS the
     sanctioned clock the no-wall-clock rule points everyone at. *)
  if available then thread_seconds_raw ()
  else (Sys.time () [@lint.allow "no-wall-clock"])

external monotonic_seconds_raw : unit -> float
  = "rip_cpu_clock_monotonic_seconds"

let monotonic_available = monotonic_seconds_raw () >= 0.0

let monotonic_seconds () =
  (* The wall clock is the only portable stand-in when CLOCK_MONOTONIC is
     missing: a deadline watchdog needs a clock that advances while a
     thread sleeps, which no CPU clock does.  Deliberate and waived — a
     wall-clock step under an armed watchdog merely fires a deadline
     early or late, it cannot corrupt results. *)
  if monotonic_available then monotonic_seconds_raw ()
  else (Unix.gettimeofday () [@lint.allow "no-wall-clock"])
