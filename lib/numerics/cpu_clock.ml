external thread_seconds_raw : unit -> float = "rip_cpu_clock_thread_seconds"

let available = thread_seconds_raw () >= 0.0

let thread_seconds () =
  (* [Sys.time] is the documented portability fallback when the
     per-thread clock primitive is unavailable: this module IS the
     sanctioned clock the no-wall-clock rule points everyone at. *)
  if available then thread_seconds_raw ()
  else (Sys.time () [@lint.allow "no-wall-clock"])
