(** Small summary statistics used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val max_value : float list -> float
(** Maximum; negative infinity on the empty list. *)

val min_value : float list -> float
(** Minimum; positive infinity on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val quantile_rank : n:int -> float -> float
(** [quantile_rank ~n q] is the fractional 0-based order-statistic rank
    of the [q]-quantile of [n] samples: [q * (n - 1)] (the "type 7" /
    linear-interpolation convention).  Shared by the exact list/array
    quantiles below and the histogram quantile estimator in [rip_obs],
    so client-side and server-side percentiles agree on what is being
    estimated.  @raise Invalid_argument when [n < 1] or [q] is outside
    [0,1]. *)

val quantile_sorted : float array -> float -> float
(** [quantile_sorted arr q] on an already-sorted (ascending) array, by
    linear interpolation between the order statistics bracketing
    {!quantile_rank}.  @raise Invalid_argument on the empty array or [q]
    outside [0,1]. *)

val quantile : float -> float list -> float
(** [quantile q xs]: sorts [xs] and applies {!quantile_sorted}.
    @raise Invalid_argument on the empty list or [q] outside [0,1]. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0,1], by linear interpolation between
    order statistics; an alias of {!quantile}.  @raise Invalid_argument
    on the empty list or [p] outside [0,1]. *)

val ratio_percent : float -> float -> float
(** [ratio_percent base v] is the saving [(base - v) / base] in percent;
    0 when [base = 0]. *)
