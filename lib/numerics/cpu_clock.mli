(** CPU-time clock for per-job timing.

    {!thread_seconds} reads the calling thread's (in OCaml 5 terms, the
    calling domain's) own CPU time — POSIX [CLOCK_THREAD_CPUTIME_ID] — so
    a job's measured cost counts only cycles that job actually burned.
    Wall clock, by contrast, keeps ticking while a worker domain sits
    descheduled behind its siblings, which inflates per-job times by the
    oversubscription factor on a contended pool and makes runtime columns
    (Table 2) meaningless under parallel execution. *)

val available : bool
(** Whether the per-thread clock is usable on this platform.  When
    [false], {!thread_seconds} falls back to process CPU time
    ([Sys.time]) — still a CPU clock, but summed over all threads. *)

val thread_seconds : unit -> float
(** Seconds of CPU consumed by the calling thread.  Arbitrary origin:
    only differences between two reads on the {e same} thread are
    meaningful. *)

val monotonic_available : bool
(** Whether POSIX [CLOCK_MONOTONIC] is usable on this platform.  When
    [false], {!monotonic_seconds} falls back to the wall clock. *)

val monotonic_seconds : unit -> float
(** Seconds on a monotonic clock that keeps ticking while the caller
    sleeps — the timebase for request deadlines and watchdogs, immune to
    wall-clock steps.  Arbitrary origin: only differences between two
    reads are meaningful (any thread). *)
