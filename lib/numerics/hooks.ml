type 'event t = {
  cancel : unit -> unit;
  probe : ('event -> unit) option;
  phase : (string -> unit -> unit) option;
}

let default = { cancel = ignore; probe = None; phase = None }

let make ?(cancel = ignore) ?probe ?phase () = { cancel; probe; phase }

let poll t = t.cancel ()

let emit t event = match t.probe with None -> () | Some f -> f event

let contramap f t =
  {
    cancel = t.cancel;
    probe = (match t.probe with None -> None | Some g -> Some (fun e -> g (f e)));
    phase = t.phase;
  }

let in_phase t name f =
  match t.phase with
  | None -> f ()
  | Some start ->
      let finish = start name in
      Fun.protect ~finally:finish f
