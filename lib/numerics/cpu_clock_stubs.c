/* Per-thread CPU clock (POSIX CLOCK_THREAD_CPUTIME_ID) for job timing.
   Returns -1.0 when the clock is unavailable so the OCaml side can fall
   back to process CPU time. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value rip_cpu_clock_thread_seconds(value unit)
{
  (void) unit;
#if defined(CLOCK_THREAD_CPUTIME_ID)
  {
    struct timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
      return caml_copy_double((double) ts.tv_sec
                              + (double) ts.tv_nsec * 1e-9);
  }
#endif
  return caml_copy_double(-1.0);
}
