/* Per-thread CPU clock (POSIX CLOCK_THREAD_CPUTIME_ID) for job timing.
   Returns -1.0 when the clock is unavailable so the OCaml side can fall
   back to process CPU time. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value rip_cpu_clock_thread_seconds(value unit)
{
  (void) unit;
#if defined(CLOCK_THREAD_CPUTIME_ID)
  {
    struct timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
      return caml_copy_double((double) ts.tv_sec
                              + (double) ts.tv_nsec * 1e-9);
  }
#endif
  return caml_copy_double(-1.0);
}

/* Monotonic clock for deadlines and watchdogs: immune to wall-clock
   steps (NTP, manual adjustment), which a request deadline must be. */
CAMLprim value rip_cpu_clock_monotonic_seconds(value unit)
{
  (void) unit;
#if defined(CLOCK_MONOTONIC)
  {
    struct timespec ts;
    if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
      return caml_copy_double((double) ts.tv_sec
                              + (double) ts.tv_nsec * 1e-9);
  }
#endif
  return caml_copy_double(-1.0);
}
