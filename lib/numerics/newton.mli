(** Newton–Raphson solvers.

    The multi-dimensional variant is used by the full-KKT backend of the
    width solver (Section 5.1 of the paper solves Eqs. (5) and (8) with
    Newton–Raphson). *)

type status =
  | Converged of int  (** iterations used *)
  | Max_iterations
  | Diverged  (** non-finite residual or singular Jacobian *)

type result = {
  solution : float array;
  residual : float;  (** max-norm of the final residual *)
  status : status;
}

type probe_event = Iteration of { iteration : int; residual_norm : float }
(** One completed Newton step: the 1-based iteration count and the
    post-step residual max-norm. *)

val solve_system :
  residual:(float array -> float array) ->
  jacobian:(float array -> float array array) ->
  init:float array ->
  ?tol:float ->
  ?max_iter:int ->
  ?damping:float ->
  ?lower_bounds:float array ->
  ?hooks:probe_event Hooks.t ->
  unit ->
  result
(** [solve_system ~residual ~jacobian ~init ()] iterates
    [x <- x - J(x)^-1 F(x)] from [init] until the residual max-norm drops
    below [tol] (default [1e-10]).  Steps are damped by halving (starting
    from [damping], default [1.0]) whenever they fail to reduce the residual
    norm or leave a coordinate below its entry in [lower_bounds].
    [hooks.probe] is called once per completed step and [hooks.cancel]
    polled once per iteration; both are bit-identity-preserving
    observers in the uniform {!Hooks} style (default: {!Hooks.default},
    which observes nothing and never cancels). *)

val solve_scalar :
  f:(float -> float) -> df:(float -> float) -> init:float ->
  ?tol:float -> ?max_iter:int -> unit -> float option
(** One-dimensional Newton iteration; [None] on divergence. *)
