let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let max_value xs = List.fold_left Float.max Float.neg_infinity xs
let min_value xs = List.fold_left Float.min Float.infinity xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let sum_sq =
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      in
      sqrt (sum_sq /. float_of_int (List.length xs))

let quantile_rank ~n q =
  if n < 1 then invalid_arg "Stats.quantile_rank: n must be positive";
  if q < 0.0 || q > 1.0 then
    invalid_arg "Stats.quantile_rank: q outside [0,1]";
  q *. float_of_int (n - 1)

let quantile_sorted arr q =
  let n = Array.length arr in
  if n = 0 then invalid_arg "Stats.quantile_sorted: empty array";
  let pos = quantile_rank ~n q in
  let k = int_of_float (Float.floor pos) in
  if k >= n - 1 then arr.(n - 1)
  else
    let frac = pos -. float_of_int k in
    arr.(k) +. (frac *. (arr.(k + 1) -. arr.(k)))

let quantile q xs =
  (match xs with [] -> invalid_arg "Stats.quantile: empty list" | _ -> ());
  let arr = Array.of_list (List.sort Float.compare xs) in
  quantile_sorted arr q

let percentile p xs =
  (match xs with [] -> invalid_arg "Stats.percentile: empty list" | _ -> ());
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p outside [0,1]";
  quantile p xs

let ratio_percent base v =
  if base = 0.0 then 0.0 else 100.0 *. (base -. v) /. base
