(** The uniform solver-hook bundle: cooperative cancellation, a typed
    probe, and a phase-span hook, threaded through every solver entry
    point ({!Rip_dp.Power_dp.run}, [Refine.run], {!Newton.solve_system},
    [Rip.solve]) instead of per-function piles of optional arguments.

    All three hooks share one contract: a hook that does nothing leaves
    the solve bit-identical to one without it.  [cancel] may raise to
    abort the solve with that exception (the engine's cancellation token
    raises [Cancelled]); [probe] observes solver events; [phase] brackets
    named pipeline phases in the shape of [Rip_obs.Trace.begin_span] —
    [phase name] is called on entry and the closure it returns on exit
    (also on exceptions).

    The record is polymorphic in the probe's event type so each solver
    layer publishes its own event vocabulary; {!contramap} re-tags events
    when one layer forwards a sub-solver's hooks. *)

type 'event t = {
  cancel : unit -> unit;  (** polled at solver-defined granularity *)
  probe : ('event -> unit) option;
      (** optional so call sites can skip building the event entirely —
          an absent probe costs one branch, never an allocation *)
  phase : (string -> unit -> unit) option;  (** span hook, see above *)
}

val default : 'event t
(** Never cancels, observes nothing: the hook bundle of a plain solve. *)

val make :
  ?cancel:(unit -> unit) ->
  ?probe:('event -> unit) ->
  ?phase:(string -> unit -> unit) ->
  unit -> 'event t

val poll : 'event t -> unit
(** [poll t] runs the cancellation hook. *)

val emit : 'event t -> 'event -> unit
(** [emit t e] feeds [e] to the probe if one is present.  Prefer matching
    on [t.probe] directly when building [e] allocates. *)

val contramap : ('a -> 'b) -> 'b t -> 'a t
(** [contramap f t] is [t] listening to ['a] events by re-tagging each
    through [f] — how a pipeline forwards its hooks to a sub-solver with
    a narrower event type. *)

val in_phase : 'event t -> string -> (unit -> 'a) -> 'a
(** [in_phase t name f] brackets [f] with the phase hook (a plain call
    when absent). *)
