type state = {
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
}

type t = {
  state : state;
  workers : unit Domain.t array;
  mutable joined : bool;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Worker loop: sleep on the condvar until a task or the stop flag shows
   up; only exit once the queue is fully drained so shutdown never drops
   accepted work. *)
let worker state () =
  (* [take] only ever runs between the [Mutex.lock]/[unlock] pair in
     [loop] below, so [state.stopping] and the queue are mutex-guarded.
     The interprocedural domain-escape analysis proves this itself — it
     propagates the held lock from [loop]'s call site into [take] — so
     no waiver is needed here anymore. *)
  let rec take () =
    match Queue.take_opt state.queue with
    | Some task -> Some task
    | None ->
        if state.stopping then None
        else begin
          Condition.wait state.work_available state.mutex;
          take ()
        end
  in
  let rec loop () =
    Mutex.lock state.mutex;
    let task = take () in
    Mutex.unlock state.mutex;
    match task with
    | None -> ()
    | Some task ->
        (try task () with _ -> ());
        loop ()
  in
  loop ()

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j -> Stdlib.max 1 j
    | None -> default_jobs ()
  in
  let state =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stopping = false;
    }
  in
  let workers = Array.init jobs (fun _ -> Domain.spawn (worker state)) in
  { state; workers; joined = false }

let size t = Array.length t.workers

let submit t task =
  Mutex.lock t.state.mutex;
  if t.state.stopping then begin
    Mutex.unlock t.state.mutex;
    invalid_arg "Rip_engine.Pool.submit: pool is shut down"
  end;
  Queue.add task t.state.queue;
  Condition.signal t.state.work_available;
  Mutex.unlock t.state.mutex

let shutdown t =
  Mutex.lock t.state.mutex;
  if not t.state.stopping then begin
    t.state.stopping <- true;
    Condition.broadcast t.state.work_available
  end;
  Mutex.unlock t.state.mutex;
  if not t.joined then begin
    t.joined <- true;
    Array.iter Domain.join t.workers
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
