(** A fixed-size OCaml 5 domain pool draining a mutex/condvar work queue.

    Workers are spawned once at {!create} and block on the condition
    variable until tasks arrive; {!shutdown} drains the queue and joins
    every worker.  Tasks are opaque thunks — result plumbing (order,
    timing, error capture) lives in {!Engine}, which wraps every task so
    that an exception can never kill a worker domain. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the parallelism the machine can
    actually use. *)

val create : ?jobs:int -> unit -> t
(** Spawn [jobs] worker domains (default {!default_jobs}, floored at 1). *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task; some idle worker will pick it up.  Tasks should not
    raise — a stray exception is swallowed to keep the worker alive.
    @raise Invalid_argument after {!shutdown}. *)

val shutdown : t -> unit
(** Stop accepting work, let the workers finish every queued task, and
    join them.  Idempotent from the owning domain. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ?jobs f] runs [f] over a fresh pool and shuts it down
    afterwards, also on exceptions. *)
