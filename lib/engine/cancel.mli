(** Cooperative cancellation for long-running solves.

    A token is a single atomic flag shared between the thread that may
    want a solve stopped (a deadline watchdog, a shutdown path) and the
    worker running it.  The worker side is wired in as a plain
    [?cancel:(unit -> unit)] hook on {!Rip_dp.Power_dp.solve},
    {!Rip_refine.Refine.run} and {!Rip_core.Rip.solve} — those libraries
    never depend on this module; {!hook} adapts a token to the hook shape.

    Polling granularity is one DP candidate column / one REFINE
    iteration, so a fired token stops a pseudo-polynomial label explosion
    within one column's work, not after it. *)

exception Cancelled
(** Raised by a {!hook} once its token has been {!cancel}ed.  Escapes
    through the solver's polling points; never raised spontaneously. *)

type t
(** A cancellation token.  Thread-safe: any thread may {!cancel} while
    workers poll. *)

val create : unit -> t
(** A fresh, unfired token. *)

val cancel : t -> unit
(** Fire the token.  Idempotent; takes effect at the workers' next poll. *)

val cancelled : t -> bool
(** Whether the token has fired. *)

val hook : t -> unit -> unit
(** [hook t] is the poll closure to pass as [?cancel]: it raises
    {!Cancelled} when [t] has fired and returns unit otherwise. *)

val protect : (unit -> 'a) -> 'a option
(** [protect f] runs [f], mapping an escaped {!Cancelled} to [None]. *)
