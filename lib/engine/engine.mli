(** The parallel batch-solve engine.

    Every (net, budget) cell of a sweep is independent, so batches run on
    a {!Pool} of OCaml 5 domains; results are reduced back in submission
    order regardless of completion order, making every entry point
    deterministic: [run ~jobs:1] and [run ~jobs:8] return equal arrays
    (see {!Job.outcome_equal}).  The solvers keep all mutable state
    call-local, and the SplitMix64 streams used to *generate* workloads
    are consumed before jobs are built, so workers share nothing stateful.

    The pool is sized [min jobs tasks] — a batch never spawns more
    domains than it has work for — and one effective worker runs the
    batch inline in the calling domain, with no domain startup at all.

    Timing is reported on two axes (see {!Telemetry}): per-job CPU
    seconds read from each worker's own thread-CPU clock
    ({!Rip_numerics.Cpu_clock}), which stay comparable with the paper's
    per-cell runtime columns because descheduled time is never charged to
    a job, and batch wall seconds, the operator-facing cost.  Caveat: an
    oversubscribed pool (more domains than cores) still pays minor-GC
    synchronisation inside each job's CPU time, so runtime-{e sensitive}
    sweeps (Table 2) should run with [jobs = 1] — see
    {!Rip_workload.Experiments.table2}, which defaults to that. *)

val default_jobs : unit -> int
(** [Pool.default_jobs ()], i.e. [Domain.recommended_domain_count ()]. *)

(** {1 Typed solve batches} *)

val run : ?jobs:int -> Job.t array -> Job.outcome array
(** Execute every job on a fresh pool of [min jobs (Array.length batch)]
    domains (inline when that is 1); [outcomes.(i)] belongs to
    [jobs.(i)].  Default [jobs] is {!default_jobs}. *)

val run_stats : ?jobs:int -> Job.t array -> Job.outcome array * Telemetry.t
(** As {!run}, also returning the pool-level batch summary. *)

(** {1 Long-lived pool handles}

    The entry points below spin a pool up per batch, which is right for
    sweeps but wrong for a long-lived service: a daemon solving requests
    as they arrive must not pay domain spawn/join per request.  A handle
    owns one pool (or the inline runner when [jobs <= 1]) and runs any
    number of batches on it until {!shutdown_handle}. *)

type handle

val create_handle : ?jobs:int -> unit -> handle
(** Spawn a reusable runner of [jobs] workers (default {!default_jobs};
    [jobs <= 1] runs batches inline in the calling thread, with no worker
    domain). *)

val handle_jobs : handle -> int
(** Effective worker count (1 for the inline runner). *)

val map_on_handle : handle -> ('a -> 'b) -> 'a array -> 'b array
(** As {!map}, on the handle's existing pool.  Safe to call from several
    threads at once — batches interleave on the shared workers.
    @raise Invalid_argument after {!shutdown_handle}. *)

val timed_map_on_handle :
  handle -> ('a -> 'b) -> 'a array -> ('b * float) array * Telemetry.t
(** As {!timed_map}, on the handle's existing pool. *)

val shutdown_handle : handle -> unit
(** Drain queued work, join the workers; idempotent. *)

val with_handle : ?jobs:int -> (handle -> 'a) -> 'a
(** [with_handle ?jobs f] runs [f] over a fresh handle and shuts it down
    afterwards, also on exceptions. *)

(** {1 Generic parallel mapping} *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map.  If [f] raises on any element, the
    batch still drains and the first exception (by submission order) is
    re-raised with its backtrace. *)

val timed_map :
  ?jobs:int -> ('a -> 'b) -> 'a array -> ('b * float) array * Telemetry.t
(** As {!map}, with each element's thread-CPU execution time in seconds
    and the batch summary. *)

(** {1 Suite-shaped batches} *)

val map_suite :
  ?jobs:int ->
  prepare:('a -> 'ctx) ->
  targets:('ctx -> 'k list) ->
  cell:('ctx -> 'k -> 'cell) ->
  'a list ->
  ('ctx * 'cell list) list * Telemetry.t
(** The shape of every sweep in the paper's evaluation: an expensive
    per-net preparation ([prepare], e.g. geometry plus the tau_min
    anchor), a list of per-net targets derived from it, and one [cell]
    per (net, target).  Both layers are parallelised — all preparations
    first, then every cell of every net flattened into one batch for
    load balance — and results come back grouped per input, in input
    order.  The telemetry merges both phases.  The pool is sized for the
    cell phase, i.e. [jobs] is not capped at the input count. *)
