(* Cooperative cancellation tokens.

   The solver pipeline stays dependency-free: Power_dp/Refine/Rip take a
   plain [?cancel:(unit -> unit)] poll hook and never name this module.
   The hook built by {!hook} raises {!Cancelled} once the token fires;
   the exception unwinds the solve through the polling points (DP
   candidate columns, REFINE iterations) and is caught by whoever armed
   the token — typically the service's deadline watchdog path. *)

exception Cancelled

type t = bool Atomic.t

let create () = Atomic.make false
let cancel t = Atomic.set t true
let cancelled t = Atomic.get t

let hook t () = if Atomic.get t then raise Cancelled

let protect f = match f () with v -> Some v | exception Cancelled -> None
