type t = {
  workers : int;
  tasks : int;
  wall_seconds : float;
  cpu_seconds : float;
  utilization : float;
}

let make ~workers ~tasks ~wall_seconds ~cpu_seconds =
  let utilization =
    if wall_seconds > 0.0 && workers > 0 then
      cpu_seconds /. (wall_seconds *. float_of_int workers)
    else 0.0
  in
  { workers; tasks; wall_seconds; cpu_seconds; utilization }

let merge a b =
  make
    ~workers:(Stdlib.max a.workers b.workers)
    ~tasks:(a.tasks + b.tasks)
    ~wall_seconds:(a.wall_seconds +. b.wall_seconds)
    ~cpu_seconds:(a.cpu_seconds +. b.cpu_seconds)

let pp ppf t =
  Fmt.pf ppf
    "%d tasks on %d workers: wall %.3fs, cpu %.3fs, utilization %.0f%%"
    t.tasks t.workers t.wall_seconds t.cpu_seconds (100.0 *. t.utilization)

(* --- Registry feed ------------------------------------------------------- *)

module Obs = Rip_obs.Metrics

module Recorder = struct
  type nonrec telemetry = t

  type t = {
    batches : Obs.Counter.t;
    tasks : Obs.Counter.t;
    wall : Obs.Histogram.t;
    cpu : Obs.Histogram.t;
    workers : Obs.Gauge.t;
    utilization : Obs.Gauge.t;
  }

  let create registry =
    {
      batches =
        Obs.counter registry ~name:"rip_engine_batches_total"
          ~help:"Engine batch summaries recorded (a merged summary counts \
                 once)";
      tasks =
        Obs.counter registry ~name:"rip_engine_tasks_total"
          ~help:"Jobs executed across all engine batches";
      wall =
        Obs.histogram registry ~name:"rip_engine_batch_wall_seconds"
          ~help:"Per-batch wall-clock time (submission to last completion)";
      cpu =
        Obs.histogram registry ~name:"rip_engine_batch_cpu_seconds"
          ~help:"Per-batch summed thread-CPU time across jobs";
      workers =
        Obs.gauge registry ~name:"rip_engine_workers"
          ~help:"Pool size of the most recent batch";
      utilization =
        Obs.gauge registry ~name:"rip_engine_utilization"
          ~help:"cpu / (wall * workers) of the most recent batch";
    }

  let observe r (telemetry : telemetry) =
    Obs.Counter.incr r.batches;
    Obs.Counter.add r.tasks telemetry.tasks;
    Obs.Histogram.observe r.wall telemetry.wall_seconds;
    Obs.Histogram.observe r.cpu telemetry.cpu_seconds;
    Obs.Gauge.set r.workers (float_of_int telemetry.workers);
    Obs.Gauge.set r.utilization telemetry.utilization
end
