type t = {
  workers : int;
  tasks : int;
  wall_seconds : float;
  cpu_seconds : float;
  utilization : float;
}

let make ~workers ~tasks ~wall_seconds ~cpu_seconds =
  let utilization =
    if wall_seconds > 0.0 && workers > 0 then
      cpu_seconds /. (wall_seconds *. float_of_int workers)
    else 0.0
  in
  { workers; tasks; wall_seconds; cpu_seconds; utilization }

let merge a b =
  make
    ~workers:(Stdlib.max a.workers b.workers)
    ~tasks:(a.tasks + b.tasks)
    ~wall_seconds:(a.wall_seconds +. b.wall_seconds)
    ~cpu_seconds:(a.cpu_seconds +. b.cpu_seconds)

let pp ppf t =
  Fmt.pf ppf
    "%d tasks on %d workers: wall %.3fs, cpu %.3fs, utilization %.0f%%"
    t.tasks t.workers t.wall_seconds t.cpu_seconds (100.0 *. t.utilization)
