let default_jobs = Pool.default_jobs

(* Run one batch on an existing pool: submit every element as a task that
   writes its slot, wait on a batch-local condvar until all slots are in,
   then re-raise the earliest failure if any.  Slots make the reduction
   order equal to the submission order by construction. *)
let map_on_pool pool f input =
  let n = Array.length input in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let remaining = ref n in
    let mutex = Mutex.create () in
    let finished = Condition.create () in
    Array.iteri
      (fun i x ->
        Pool.submit pool (fun () ->
            (match f x with
            | result -> results.(i) <- Some result
            | exception exn ->
                failures.(i) <- Some (exn, Printexc.get_raw_backtrace ()));
            Mutex.lock mutex;
            decr remaining;
            if !remaining = 0 then Condition.signal finished;
            Mutex.unlock mutex))
      input;
    Mutex.lock mutex;
    while !remaining > 0 do
      Condition.wait finished mutex
    done;
    Mutex.unlock mutex;
    Array.iter
      (function
        | Some (exn, backtrace) -> Printexc.raise_with_backtrace exn backtrace
        | None -> ())
      failures;
    Array.map
      (function Some result -> result | None -> assert false)
      results
  end

let timed_map_on_pool pool f input =
  let started = Unix.gettimeofday () in
  let timed =
    map_on_pool pool
      (fun x ->
        let t0 = Unix.gettimeofday () in
        let result = f x in
        (result, Unix.gettimeofday () -. t0))
      input
  in
  let wall_seconds = Unix.gettimeofday () -. started in
  let cpu_seconds =
    Array.fold_left (fun acc (_, seconds) -> acc +. seconds) 0.0 timed
  in
  ( timed,
    Telemetry.make ~workers:(Pool.size pool) ~tasks:(Array.length input)
      ~wall_seconds ~cpu_seconds )

let map ?jobs f input =
  Pool.with_pool ?jobs (fun pool -> map_on_pool pool f input)

let timed_map ?jobs f input =
  Pool.with_pool ?jobs (fun pool -> timed_map_on_pool pool f input)

let run_stats ?jobs batch =
  let timed, telemetry = timed_map ?jobs Job.execute batch in
  ( Array.map
      (fun (result, cpu_seconds) -> { Job.result; cpu_seconds })
      timed,
    telemetry )

let run ?jobs batch = fst (run_stats ?jobs batch)

let map_suite ?jobs ~prepare ~targets ~cell inputs =
  Pool.with_pool ?jobs (fun pool ->
      let input = Array.of_list inputs in
      let prepared, prepare_telemetry =
        timed_map_on_pool pool prepare input
      in
      let contexts = Array.map fst prepared in
      let keys = Array.map (fun ctx -> Array.of_list (targets ctx)) contexts in
      let flattened =
        Array.concat
          (Array.to_list
             (Array.mapi
                (fun i ks -> Array.map (fun k -> (i, k)) ks)
                keys))
      in
      let cells, cell_telemetry =
        timed_map_on_pool pool
          (fun (i, k) -> cell contexts.(i) k)
          flattened
      in
      (* Regroup the flat cell array per input, preserving target order. *)
      let grouped = Array.map (fun _ -> ref []) contexts in
      Array.iteri
        (fun flat_index (input_index, _) ->
          let cell_result, _seconds = cells.(flat_index) in
          grouped.(input_index) := cell_result :: !(grouped.(input_index)))
        flattened;
      ( Array.to_list
          (Array.mapi
             (fun i ctx -> (ctx, List.rev !(grouped.(i))))
             contexts),
        Telemetry.merge prepare_telemetry cell_telemetry ))
