module Cpu_clock = Rip_numerics.Cpu_clock

let default_jobs = Pool.default_jobs

(* Run one batch on an existing pool: submit every element as a task that
   writes its slot, wait on a batch-local condvar until all slots are in,
   then re-raise the earliest failure if any.  Slots make the reduction
   order equal to the submission order by construction. *)
let map_on_pool pool f input =
  let n = Array.length input in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let remaining = ref n in
    let mutex = Mutex.create () in
    let finished = Condition.create () in
    Array.iteri
      (fun i x ->
        Pool.submit pool (fun () ->
            (match f x with
            | result -> results.(i) <- Some result
            | exception exn ->
                failures.(i) <- Some (exn, Printexc.get_raw_backtrace ()));
            Mutex.lock mutex;
            decr remaining;
            if !remaining = 0 then Condition.signal finished;
            Mutex.unlock mutex))
      input;
    Mutex.lock mutex;
    while !remaining > 0 do
      Condition.wait finished mutex
    done;
    Mutex.unlock mutex;
    Array.iter
      (function
        | Some (exn, backtrace) -> Printexc.raise_with_backtrace exn backtrace
        | None -> ())
      failures;
    Array.map
      (function Some result -> result | None -> assert false)
      results
  end

(* Inline path for one effective worker: same drain-everything semantics
   as the pool (every element runs, then the earliest failure re-raises),
   without paying domain startup/teardown for no parallelism. *)
let map_inline f input =
  let n = Array.length input in
  let results = Array.make n None in
  let failures = Array.make n None in
  Array.iteri
    (fun i x ->
      match f x with
      | result -> results.(i) <- Some result
      | exception exn ->
          failures.(i) <- Some (exn, Printexc.get_raw_backtrace ()))
    input;
  Array.iter
    (function
      | Some (exn, backtrace) -> Printexc.raise_with_backtrace exn backtrace
      | None -> ())
    failures;
  Array.map
    (function Some result -> result | None -> assert false)
    results

type runner = Inline | Pooled of Pool.t

let runner_size = function Inline -> 1 | Pooled pool -> Pool.size pool

let map_on runner f input =
  match runner with
  | Inline -> map_inline f input
  | Pooled pool -> map_on_pool pool f input

(* Per-element times come from the worker's own CPU clock
   (CLOCK_THREAD_CPUTIME_ID), so they stay comparable whatever the pool
   size: time a domain spends descheduled behind its siblings is not
   charged to the job it happens to be holding. *)
let timed_map_on runner f input =
  (* When a global tracer is installed ([Rip_obs.Trace.set_global]) the
     batch leaves one "engine:batch" span on the submitting thread and
     one "engine:job" span per element on whichever worker ran it; with
     no tracer both hooks are nops.  The tracer is fetched once per
     batch, not per job. *)
  let tracer = Rip_obs.Trace.global () in
  let finish_batch =
    Rip_obs.Trace.begin_opt tracer ~cat:"engine"
      ~args:
        [
          ("tasks", string_of_int (Array.length input));
          ("workers", string_of_int (runner_size runner));
        ]
      "engine:batch"
  in
  let started = Unix.gettimeofday () in
  let timed =
    map_on runner
      (fun x ->
        Rip_obs.Trace.span tracer ~cat:"engine" "engine:job" @@ fun () ->
        let t0 = Cpu_clock.thread_seconds () in
        let result = f x in
        (result, Cpu_clock.thread_seconds () -. t0))
      input
  in
  let wall_seconds = Unix.gettimeofday () -. started in
  finish_batch ();
  let cpu_seconds =
    Array.fold_left (fun acc (_, seconds) -> acc +. seconds) 0.0 timed
  in
  ( timed,
    Telemetry.make ~workers:(runner_size runner) ~tasks:(Array.length input)
      ~wall_seconds ~cpu_seconds )

(* Effective pool size: the request (or the machine default), floored at
   one and capped at [cap] tasks — a batch never spawns more domains than
   it has work for. *)
let resolve_jobs ?cap jobs =
  let requested =
    match jobs with Some j -> Stdlib.max 1 j | None -> default_jobs ()
  in
  match cap with
  | Some cap -> Stdlib.min requested (Stdlib.max 1 cap)
  | None -> requested

let with_runner jobs f =
  if jobs <= 1 then f Inline
  else Pool.with_pool ~jobs (fun pool -> f (Pooled pool))

let map ?jobs f input =
  with_runner
    (resolve_jobs ~cap:(Array.length input) jobs)
    (fun runner -> map_on runner f input)

let timed_map ?jobs f input =
  with_runner
    (resolve_jobs ~cap:(Array.length input) jobs)
    (fun runner -> timed_map_on runner f input)

(* --- Long-lived pool handles -------------------------------------------- *)

(* A handle keeps one runner alive across many batches: a service that
   solves requests as they arrive must not pay domain spawn/join per
   request the way the one-shot entry points above do per batch. *)
type handle = { runner : runner; mutable closed : bool }

let create_handle ?jobs () =
  let jobs = resolve_jobs jobs in
  let runner = if jobs <= 1 then Inline else Pooled (Pool.create ~jobs ()) in
  { runner; closed = false }

let handle_jobs handle = runner_size handle.runner

let check_open handle =
  if handle.closed then
    invalid_arg "Rip_engine.Engine: handle is shut down"

let map_on_handle handle f input =
  check_open handle;
  map_on handle.runner f input

let timed_map_on_handle handle f input =
  check_open handle;
  timed_map_on handle.runner f input

let shutdown_handle handle =
  if not handle.closed then begin
    handle.closed <- true;
    match handle.runner with
    | Inline -> ()
    | Pooled pool -> Pool.shutdown pool
  end

let with_handle ?jobs f =
  let handle = create_handle ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown_handle handle) (fun () -> f handle)

let run_stats ?jobs batch =
  let timed, telemetry = timed_map ?jobs Job.execute batch in
  ( Array.map
      (fun (result, cpu_seconds) -> { Job.result; cpu_seconds })
      timed,
    telemetry )

let run ?jobs batch = fst (run_stats ?jobs batch)

let map_suite ?jobs ~prepare ~targets ~cell inputs =
  (* No cap here: the cell phase usually holds far more tasks than there
     are inputs, so the requested size is sized for it. *)
  with_runner (resolve_jobs jobs) (fun runner ->
      let input = Array.of_list inputs in
      let prepared, prepare_telemetry =
        timed_map_on runner prepare input
      in
      let contexts = Array.map fst prepared in
      let keys = Array.map (fun ctx -> Array.of_list (targets ctx)) contexts in
      let flattened =
        Array.concat
          (Array.to_list
             (Array.mapi
                (fun i ks -> Array.map (fun k -> (i, k)) ks)
                keys))
      in
      let cells, cell_telemetry =
        timed_map_on runner
          (fun (i, k) -> cell contexts.(i) k)
          flattened
      in
      (* Regroup the flat cell array per input, preserving target order. *)
      let grouped = Array.map (fun _ -> ref []) contexts in
      Array.iteri
        (fun flat_index (input_index, _) ->
          let cell_result, _seconds = cells.(flat_index) in
          grouped.(input_index) := cell_result :: !(grouped.(input_index)))
        flattened;
      ( Array.to_list
          (Array.mapi
             (fun i ctx -> (ctx, List.rev !(grouped.(i))))
             contexts),
        Telemetry.merge prepare_telemetry cell_telemetry ))
