module Geometry = Rip_net.Geometry
module Solution = Rip_elmore.Solution
module Candidates = Rip_dp.Candidates
module Power_dp = Rip_dp.Power_dp
module Rip = Rip_core.Rip

type algo =
  | Rip
  | Baseline_dp of { library : Rip_dp.Repeater_library.t; pitch : float }

type t = {
  process : Rip_tech.Process.t;
  net : Rip_net.Net.t;
  geometry : Rip_net.Geometry.t option;
  budget : float;
  config : Rip_core.Config.t option;
  algo : algo;
}

let make ?geometry ?config ?(algo = Rip) process net ~budget =
  { process; net; geometry; budget; config; algo }

type solution =
  | Rip_report of Rip_core.Rip.report
  | Dp_result of Rip_dp.Power_dp.result

type outcome = {
  result : (solution, Rip_core.Rip.error) result;
  cpu_seconds : float;
}

let execute job =
  try
    match job.algo with
    | Rip ->
        Result.map
          (fun report -> Rip_report report)
          (Rip.solve ?config:job.config
             {
               Rip.process = job.process;
               net = job.net;
               geometry = job.geometry;
               budget = job.budget;
             })
    | Baseline_dp { library; pitch } -> (
        let geometry =
          match job.geometry with
          | Some g -> g
          | None -> Geometry.of_net job.net
        in
        let candidates = Candidates.uniform job.net ~pitch in
        let dp =
          (Option.value job.config ~default:Rip_core.Config.default)
            .Rip_core.Config.dp
        in
        match
          Power_dp.run
            (Power_dp.request ~backend:dp.Rip_core.Config.backend
               ?frontier_cap:dp.Rip_core.Config.frontier_cap geometry
               job.process.Rip_tech.Process.repeater ~library ~candidates
               ~budget:job.budget)
        with
        | Some result -> Ok (Dp_result result)
        | None ->
            Error
              (Rip.Infeasible_budget
                 { budget = job.budget; tau_min_hint = None }))
  with exn -> Error (Rip.Internal (Printexc.to_string exn))

let solution_equal a b =
  match (a, b) with
  | Rip_report a, Rip_report b ->
      Solution.equal a.Rip.solution b.Rip.solution
      && a.Rip.total_width = b.Rip.total_width
      && a.Rip.delay = b.Rip.delay
  | Dp_result a, Dp_result b ->
      Solution.equal a.Power_dp.solution b.Power_dp.solution
      && a.Power_dp.total_width = b.Power_dp.total_width
  | (Rip_report _ | Dp_result _), _ -> false

let outcome_equal a b =
  match (a.result, b.result) with
  | Ok a, Ok b -> solution_equal a b
  | Error a, Error b -> a = b
  | (Ok _ | Error _), _ -> false

let pp_outcome ppf outcome =
  match outcome.result with
  | Ok (Rip_report r) ->
      Fmt.pf ppf "rip: width %.1fu, delay %.4gps (%.1fms)" r.Rip.total_width
        (r.Rip.delay *. 1e12)
        (outcome.cpu_seconds *. 1e3)
  | Ok (Dp_result r) ->
      Fmt.pf ppf "dp: width %.1fu (%.1fms)" r.Power_dp.total_width
        (outcome.cpu_seconds *. 1e3)
  | Error e -> Rip.pp_error ppf e
