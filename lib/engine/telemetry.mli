(** Pool-level execution summary for one batch (or a sequence of batches).

    Under parallel execution a batch has two meaningful times: the sum of
    per-job solver times (comparable with the paper's per-cell runtime
    columns, Table 2) and the batch wall clock (what the operator waits
    for).  Both are carried here so reports can state each explicitly. *)

type t = {
  workers : int;  (** pool size the batch ran on *)
  tasks : int;  (** jobs executed *)
  wall_seconds : float;  (** submission-to-last-completion wall clock *)
  cpu_seconds : float;
      (** sum of per-job thread-CPU times ({!Rip_numerics.Cpu_clock}) *)
  utilization : float;
      (** [cpu / (wall * workers)]: 1.0 means every worker was busy for
          the whole batch; 0.0 for an empty batch *)
}

val make :
  workers:int -> tasks:int -> wall_seconds:float -> cpu_seconds:float -> t
(** Computes {!field-utilization}; guards the [wall = 0] corner. *)

val merge : t -> t -> t
(** Summary of two batches run back to back: walls and cpu add, tasks
    add, workers take the max, utilization is recomputed. *)

val pp : t Fmt.t

(** Feed batch summaries into a {!Rip_obs.Metrics} registry: batch and
    task counters, wall/cpu histograms, and workers/utilization gauges
    under the [rip_engine_*] names.  A recorder registers its
    instruments once at {!Recorder.create}; {!Recorder.observe} per
    batch is then a handful of atomic bumps. *)
module Recorder : sig
  type telemetry := t

  type t

  val create : Rip_obs.Metrics.t -> t
  (** Register [rip_engine_batches_total], [rip_engine_tasks_total],
      [rip_engine_batch_wall_seconds], [rip_engine_batch_cpu_seconds],
      [rip_engine_workers] and [rip_engine_utilization] in [registry].
      @raise Invalid_argument if any of those names is already taken. *)

  val observe : t -> telemetry -> unit
  (** Record one batch: counters and histograms accumulate, the gauges
      track the most recent batch. *)
end
