(** One solve job for the batch engine: a (net, budget) cell of the
    paper's evaluation sweep, tagged with the algorithm to run.

    Jobs are self-contained and immutable, so any worker domain can
    execute any job: the solvers keep all mutable state call-local and
    the prebuilt {!Rip_net.Geometry.t} is read-only, which is what makes
    result arrays independent of scheduling order. *)

type algo =
  | Rip  (** Algorithm RIP (Fig. 6) via {!Rip_core.Rip.solve} *)
  | Baseline_dp of { library : Rip_dp.Repeater_library.t; pitch : float }
      (** the conventional DP of ref. [14] over a fixed library, with
          uniform candidate sites at [pitch] um — the comparison baseline
          of every experiment *)

type t = {
  process : Rip_tech.Process.t;
  net : Rip_net.Net.t;
  geometry : Rip_net.Geometry.t option;
      (** prebuilt geometry of [net] to reuse across budgets *)
  budget : float;  (** delay budget, seconds *)
  config : Rip_core.Config.t option;
      (** [None] means {!Rip_core.Config.default}; only read by {!Rip} *)
  algo : algo;
}

val make :
  ?geometry:Rip_net.Geometry.t -> ?config:Rip_core.Config.t -> ?algo:algo ->
  Rip_tech.Process.t -> Rip_net.Net.t -> budget:float -> t
(** Convenience constructor; [algo] defaults to {!constructor-Rip}. *)

type solution =
  | Rip_report of Rip_core.Rip.report  (** from an {!constructor-Rip} job *)
  | Dp_result of Rip_dp.Power_dp.result
      (** from a feasible {!Baseline_dp} job *)

type outcome = {
  result : (solution, Rip_core.Rip.error) result;
  cpu_seconds : float;
      (** this job's own solver time — per-cell CPU cost, comparable with
          Table 2's runtime columns; batch wall time lives in
          {!Telemetry.t} *)
}

val execute : t -> (solution, Rip_core.Rip.error) result
(** Run the job's algorithm.  Never raises: a stray exception is returned
    as {!Rip_core.Rip.Internal}. *)

val solution_equal : solution -> solution -> bool
(** Same inserted repeaters (positions and widths) and total width; the
    machine-dependent runtime and trace fields are ignored. *)

val outcome_equal : outcome -> outcome -> bool
(** {!solution_equal} on successes, structural equality on errors;
    [cpu_seconds] is ignored (it is never deterministic). *)

val pp_outcome : outcome Fmt.t
