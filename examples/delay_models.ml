(* Delay-model study: the paper optimises under Elmore and notes that a
   more accurate metric can be dropped in.  This example solves a net with
   RIP (Elmore) and re-evaluates the result under the two-moment D2M
   metric, showing how much Elmore pessimism the design carries and that
   the timing budget still holds under the tighter model.

     dune exec examples/delay_models.exe *)

module Geometry = Rip_net.Geometry
module Delay = Rip_elmore.Delay
module Two_moment = Rip_elmore.Two_moment
module Rip = Rip_core.Rip
module Suite = Rip_workload.Suite

let process = Rip_tech.Process.default_180nm
let repeater = process.Rip_tech.Process.repeater

let () =
  let net = List.nth (Suite.nets ~count:4 ()) 3 in
  let geometry = Geometry.of_net net in
  let tau_min = Rip.tau_min process geometry in
  Printf.printf "net %s (%.0f um), tau_min %.1f ps\n\n" net.Rip_net.Net.name
    (Rip_net.Net.total_length net) (tau_min *. 1e12);
  Printf.printf "budget(x)  width(u)  Elmore(ps)  D2M(ps)  D2M/Elmore\n";
  Printf.printf "----------------------------------------------------\n";
  List.iter
    (fun slack ->
      let budget = slack *. tau_min in
      match Rip.solve (Rip.problem ~geometry process net ~budget) with
      | Error e -> Printf.printf "%-10.2f %s\n" slack (Rip.error_to_string e)
      | Ok r ->
          let elmore = Delay.total repeater geometry r.Rip.solution in
          let d2m = Two_moment.total repeater geometry r.Rip.solution in
          Printf.printf "%-10.2f %-9.0f %-11.1f %-8.1f %.3f\n" slack
            r.Rip.total_width (elmore *. 1e12) (d2m *. 1e12) (d2m /. elmore))
    [ 1.05; 1.2; 1.4; 1.7; 2.0 ];
  Printf.printf
    "\nElmore upper-bounds the 50%% delay, so every design above also\n\
     meets its budget under the tighter D2M metric.\n"
