(* Library granularity study — "what repeater library do we need?".

   Runs the conventional DP over libraries of decreasing width granularity
   on one net, showing the paper's core tension: fine grids are slow,
   coarse grids waste power.  RIP sidesteps it by *deriving* a tiny
   net-specific library analytically; the study prints the library RIP
   synthesised for comparison.

     dune exec examples/library_study.exe *)

module Geometry = Rip_net.Geometry
module Repeater_library = Rip_dp.Repeater_library
module Candidates = Rip_dp.Candidates
module Power_dp = Rip_dp.Power_dp
module Rip = Rip_core.Rip
module Suite = Rip_workload.Suite

let process = Rip_tech.Process.default_180nm

let () =
  let net = List.nth (Suite.nets ~count:2 ()) 1 in
  let geometry = Geometry.of_net net in
  let repeater = process.Rip_tech.Process.repeater in
  let tau_min = Rip.tau_min process geometry in
  let budget = 1.20 *. tau_min in
  Printf.printf "net %s, budget %.1f ps (1.20 x tau_min)\n\n"
    net.Rip_net.Net.name (budget *. 1e12);
  let candidates = Candidates.uniform net ~pitch:200.0 in
  Printf.printf "conventional DP, library range (10u, 400u):\n";
  Printf.printf "g_DP(u)  widths  result(u)  time(ms)\n";
  List.iter
    (fun g ->
      let library =
        Repeater_library.range ~min_width:10.0 ~max_width:400.0 ~step:g
      in
      let t0 = Unix.gettimeofday () in
      let result =
        Power_dp.run
          (Power_dp.request geometry repeater ~library ~candidates ~budget)
      in
      let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      match result with
      | Some r ->
          Printf.printf "%-8.0f %-7d %-10.0f %.1f\n" g
            (Repeater_library.size library) r.Power_dp.total_width ms
      | None -> Printf.printf "%-8.0f %-7d infeasible  %.1f\n" g
                  (Repeater_library.size library) ms)
    [ 80.0; 40.0; 20.0; 10.0 ];
  print_newline ();
  match Rip.solve (Rip.problem ~geometry process net ~budget) with
  | Error e -> Printf.printf "RIP failed: %s\n" (Rip.error_to_string e)
  | Ok r ->
      Printf.printf "RIP: result %.0fu in %.1f ms\n" r.Rip.total_width
        (r.Rip.runtime_seconds *. 1e3);
      (match r.Rip.trace.Rip.refined_library with
      | Some b ->
          Printf.printf
            "library synthesised by REFINE for this net: %s (%d entries, \
             %d candidate sites)\n"
            (Fmt.str "%a" Repeater_library.pp b)
            (Repeater_library.size b)
            (List.length r.Rip.trace.Rip.refined_candidates)
      | None -> Printf.printf "no refined library (bare wire met timing)\n")
