(* Macro blockage study: the paper's forbidden zones in action.

   The same net is solved twice under the same absolute timing budget —
   once with a free track and once routed across a 3.2 mm macro where no
   repeater can land — to show how RIP shifts repeaters to the macro's
   edges and what the blockage costs in repeater power.

     dune exec examples/macro_blockage.exe *)

module Net = Rip_net.Net
module Segment = Rip_net.Segment
module Zone = Rip_net.Zone
module Geometry = Rip_net.Geometry
module Solution = Rip_elmore.Solution
module Rip = Rip_core.Rip

let process = Rip_tech.Process.default_180nm

let segments () =
  [
    Segment.of_layer Rip_tech.Layer.metal4 ~length:2400.0;
    Segment.of_layer Rip_tech.Layer.metal5 ~length:2100.0;
    Segment.of_layer Rip_tech.Layer.metal4 ~length:2300.0;
    Segment.of_layer Rip_tech.Layer.metal5 ~length:2600.0;
    Segment.of_layer Rip_tech.Layer.metal4 ~length:2100.0;
  ]

let build name zones =
  Net.create ~name ~segments:(segments ()) ~zones ~driver_width:20.0
    ~receiver_width:40.0 ()

let solve net ~budget =
  let geometry = Geometry.of_net net in
  match Rip.solve (Rip.problem ~geometry process net ~budget) with
  | Error e -> failwith (Rip.error_to_string e)
  | Ok report ->
      Printf.printf "%-12s width %.0fu, %.4f mW, delay %.1f ps\n"
        net.Net.name report.Rip.total_width
        (report.Rip.power_watts *. 1e3)
        (report.Rip.delay *. 1e12);
      List.iter
        (fun (r : Solution.repeater) ->
          let blocked =
            List.exists (fun z -> Zone.contains z r.position) net.Net.zones
          in
          Printf.printf "    %6.0f um : %5.0fu%s\n" r.position r.width
            (if blocked then "  <- ILLEGAL" else ""))
        (Solution.repeaters report.Rip.solution);
      report

let () =
  let zone = Zone.create ~z_start:4200.0 ~z_end:7400.0 in
  let free = build "free_track" [] in
  let crossed = build "macro_cross" [ zone ] in
  (* Budget anchored on the *blocked* net so both variants are feasible. *)
  let budget =
    1.25 *. Rip.tau_min process (Geometry.of_net crossed)
  in
  Printf.printf "shared timing budget: %.1f ps\n\n" (budget *. 1e12);
  let free_report = solve free ~budget in
  Printf.printf "\nmacro blocks (%.0f, %.0f) um:\n" zone.Zone.z_start
    zone.Zone.z_end;
  let crossed_report = solve crossed ~budget in
  Printf.printf
    "\nblockage cost: +%.1f%% repeater power for the same timing budget\n"
    (100.0
    *. (crossed_report.Rip.total_width -. free_report.Rip.total_width)
    /. free_report.Rip.total_width)
