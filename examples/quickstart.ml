(* Quickstart: build a two-pin global net, pick a timing budget, and let
   RIP insert power-minimal repeaters.

     dune exec examples/quickstart.exe *)

module Net = Rip_net.Net
module Segment = Rip_net.Segment
module Geometry = Rip_net.Geometry
module Solution = Rip_elmore.Solution
module Rip = Rip_core.Rip

let () =
  (* 1. Describe the routed net: an 11 mm spine on metal4/metal5 driven by
     a 20u driver into a 40u receiver. *)
  let net =
    Net.create ~name:"demo_spine"
      ~segments:
        [
          Segment.of_layer Rip_tech.Layer.metal4 ~length:2500.0;
          Segment.of_layer Rip_tech.Layer.metal5 ~length:3000.0;
          Segment.of_layer Rip_tech.Layer.metal4 ~length:2500.0;
          Segment.of_layer Rip_tech.Layer.metal5 ~length:3000.0;
        ]
      ~zones:[] ~driver_width:20.0 ~receiver_width:40.0 ()
  in
  let process = Rip_tech.Process.default_180nm in
  let geometry = Geometry.of_net net in

  (* 2. Anchor the budget at the net's minimum achievable delay. *)
  let tau_min = Rip.tau_min process geometry in
  let budget = 1.30 *. tau_min in
  Printf.printf "net %s: %.0f um; tau_min = %.1f ps; budget = %.1f ps\n\n"
    net.Net.name (Net.total_length net) (tau_min *. 1e12) (budget *. 1e12);

  (* 3. Solve and inspect. *)
  match Rip.solve (Rip.problem ~geometry process net ~budget) with
  | Error e -> Printf.printf "%s\n" (Rip.error_to_string e)
  | Ok report ->
      Printf.printf "RIP inserted %d repeaters:\n"
        (Solution.count report.Rip.solution);
      List.iter
        (fun (r : Solution.repeater) ->
          Printf.printf "  %6.0f um : %5.0fu\n" r.position r.width)
        (Solution.repeaters report.Rip.solution);
      Printf.printf
        "\ntotal width %.0fu -> %.4f mW; delay %.1f ps (budget %.1f ps); \
         solved in %.1f ms\n"
        report.Rip.total_width
        (report.Rip.power_watts *. 1e3)
        (report.Rip.delay *. 1e12) (budget *. 1e12)
        (report.Rip.runtime_seconds *. 1e3)
