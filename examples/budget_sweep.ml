(* Power-delay tradeoff: sweep the timing budget from 1.05 to 2.05 times
   the minimum delay on one benchmark net and plot (as a text table) how
   repeater power falls as timing relaxes — RIP against the conventional
   DP baseline of ref. [14] — the per-net view behind Figure 7.

     dune exec examples/budget_sweep.exe *)

module Geometry = Rip_net.Geometry
module Solution = Rip_elmore.Solution
module Rip = Rip_core.Rip
module Suite = Rip_workload.Suite
module Baseline = Rip_workload.Baseline

let process = Rip_tech.Process.default_180nm

let () =
  let net = List.nth (Suite.nets ~count:3 ()) 2 in
  let geometry = Geometry.of_net net in
  let tau_min = Rip.tau_min process geometry in
  Printf.printf "net %s: %.0f um, tau_min %.1f ps\n\n" net.Rip_net.Net.name
    (Rip_net.Net.total_length net)
    (tau_min *. 1e12);
  Printf.printf
    "budget      RIP                    DP[14] g=40u           saving\n";
  Printf.printf
    "(x tau_min) width(u)  power(mW)    width(u)  power(mW)    (%%)\n";
  Printf.printf
    "----------------------------------------------------------------\n";
  List.iteri
    (fun k budget ->
      let multiple = Suite.target_multiple k in
      let rip = Rip.solve (Rip.problem ~geometry process net ~budget) in
      let base =
        Baseline.solve (Baseline.fixed_size ~granularity:40.0) process
          geometry ~budget
      in
      let power w =
        Rip_tech.Power_model.repeater_power process.Rip_tech.Process.power
          ~repeater:process.Rip_tech.Process.repeater ~total_width:w
      in
      match (rip, base.Baseline.result) with
      | Ok r, Some b ->
          let bw = b.Rip_dp.Power_dp.total_width in
          let saving =
            if bw > 0.0 then 100.0 *. (bw -. r.Rip.total_width) /. bw else 0.0
          in
          Printf.printf "%-11.2f %-9.0f %-12.4f %-9.0f %-12.4f %+.1f\n"
            multiple r.Rip.total_width
            (power r.Rip.total_width *. 1e3)
            bw
            (power bw *. 1e3)
            saving
      | Ok r, None ->
          Printf.printf "%-11.2f %-9.0f %-12.4f DP infeasible (zone I)\n"
            multiple r.Rip.total_width
            (power r.Rip.total_width *. 1e3)
      | Error e, _ ->
          Printf.printf "%-11.2f RIP: %s\n" multiple (Rip.error_to_string e))
    (Suite.timing_targets ~tau_min ())
